package evm

import (
	"testing"
	"time"
)

// TestRandomFieldDeterministicDeploy: the 50-node random scatter is
// driven by a dedicated fork of the cell seed — equal seeds place every
// node identically, different seeds differently, and every node lands
// inside the 20 m square (well within radio range of every peer).
func TestRandomFieldDeterministicDeploy(t *testing.T) {
	positions := func(seed uint64) []Position {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRandomField, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		out := make([]Position, 0, RandomFieldNodes)
		for _, id := range exp.Cell.Members() {
			r := exp.Cell.Medium().Radio(id)
			if r == nil {
				t.Fatalf("node %d has no radio", id)
			}
			out = append(out, r.Position())
		}
		return out
	}
	a, b, other := positions(5), positions(5), positions(6)
	if len(a) != RandomFieldNodes {
		t.Fatalf("deployed %d nodes, want %d", len(a), RandomFieldNodes)
	}
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d moved between same-seed deploys: %+v vs %+v", i+1, a[i], b[i])
		}
		if a[i] != other[i] {
			differs = true
		}
		if a[i].X < 0 || a[i].X > 20 || a[i].Y < 0 || a[i].Y > 20 {
			t.Fatalf("node %d outside the field: %+v", i+1, a[i])
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical placements")
	}
}

// TestRandomFieldScheduleFeasibility: 50 members do not fit the default
// 50-slot frame (the reason the scenario widens it), and the widened
// frame admits the full membership with the default two TX slots each.
func TestRandomFieldScheduleFeasibility(t *testing.T) {
	if _, err := NewCellWith(CellConfig{Seed: 1},
		WithNodeCount(RandomFieldNodes), WithPlacement(RandomUniform(20)), WithPER(0)); err == nil {
		t.Fatal("50 nodes fit the default 50-slot frame — feasibility guard lost")
	}
	cell, err := NewCellWith(CellConfig{Seed: 1, Link: randomFieldLink()},
		WithNodeCount(RandomFieldNodes), WithPlacement(RandomUniform(20)), WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Stop()
	if got := len(cell.Members()); got != RandomFieldNodes {
		t.Fatalf("cell admitted %d members, want %d", got, RandomFieldNodes)
	}
	if sched := cell.Network().Schedule(); len(sched) < 2*RandomFieldNodes {
		t.Fatalf("schedule holds %d assignments, want %d TX slots", len(sched), 2*RandomFieldNodes)
	}
}

// TestRandomFieldByteIdenticalStreams: two same-seed 50-node runs emit
// byte-identical event streams, the loops actuate, and a mid-run crash
// of a primary fails over — the control plane works at this scale.
func TestRandomFieldByteIdenticalStreams(t *testing.T) {
	crash := FaultPlan{Name: "crash-3", Steps: []FaultStep{{At: 10 * time.Second, CrashNode: 3}}}
	run := func() ([]string, int, float64) {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioRandomField, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		log := exp.Cell.Events().Log()
		if err := exp.Cell.ApplyFaultPlan(crash); err != nil {
			t.Fatal(err)
		}
		exp.Cell.Run(40 * time.Second)
		acts := log.Count(func(ev Event) bool { _, ok := ev.(ActuationEvent); return ok })
		return log.Strings(), acts, exp.Metrics()["coverage"]
	}
	lines, acts, coverage := run()
	if acts == 0 {
		t.Fatal("no actuations in the 50-node cell")
	}
	if coverage != 1 {
		t.Fatalf("coverage = %g after fail-over, want 1", coverage)
	}
	failedOver := false
	for _, l := range lines {
		if len(l) > 0 && containsFailover(l) {
			failedOver = true
			break
		}
	}
	if !failedOver {
		t.Fatal("primary crash produced no fail-over at 50 nodes")
	}
	again, _, _ := run()
	if len(lines) != len(again) {
		t.Fatalf("same-seed streams differ in length: %d vs %d", len(lines), len(again))
	}
	for i := range lines {
		if lines[i] != again[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, lines[i], again[i])
		}
	}
}

func containsFailover(line string) bool {
	for i := 0; i+8 <= len(line); i++ {
		if line[i:i+8] == "failover" {
			return true
		}
	}
	return false
}
