package evm

import (
	"fmt"
	"strconv"
	"time"

	"evm/internal/trace"
)

// Event is one structured observation from a cell, stamped with virtual
// time. All events are published synchronously on the cell's simulation
// engine, so subscription callbacks see them in deterministic order: two
// runs with equal seeds produce byte-identical event streams.
//
// The event bus is the only observation surface: the per-object callback
// fields it replaced (Head.OnFailover, Gateway.OnActuate,
// Node.OnMigrationIn) have been removed.
type Event interface {
	// When returns the virtual time at which the event occurred.
	When() time.Duration
	// String renders a stable one-line form suitable for logging and
	// byte-comparison across runs.
	String() string
}

// FailoverEvent fires after the component head switches a task's master.
type FailoverEvent struct {
	At   time.Duration
	Task string
	From NodeID
	To   NodeID
}

// When implements Event.
func (e FailoverEvent) When() time.Duration { return e.At }

// String implements Event.
func (e FailoverEvent) String() string {
	return fmt.Sprintf("%v failover task=%s from=%d to=%d", e.At, e.Task, e.From, e.To)
}

// ActuationEvent fires when the gateway's operation switch accepts an
// actuation and writes it to the plant.
type ActuationEvent struct {
	At    time.Duration
	Node  NodeID
	Task  string
	Port  uint8
	Value float64
}

// When implements Event.
func (e ActuationEvent) When() time.Duration { return e.At }

// String implements Event.
func (e ActuationEvent) String() string {
	return fmt.Sprintf("%v actuation node=%d task=%s port=%d value=%s",
		e.At, e.Node, e.Task, e.Port, strconv.FormatFloat(e.Value, 'g', -1, 64))
}

// MigrationEvent fires when a migrated task's state becomes ready on the
// destination node.
type MigrationEvent struct {
	At   time.Duration
	Task string
	From NodeID
	To   NodeID
}

// When implements Event.
func (e MigrationEvent) When() time.Duration { return e.At }

// String implements Event.
func (e MigrationEvent) String() string {
	return fmt.Sprintf("%v migration task=%s from=%d to=%d", e.At, e.Task, e.From, e.To)
}

// JoinEvent fires when the component head admits a member announcement.
type JoinEvent struct {
	At   time.Duration
	Node NodeID
}

// When implements Event.
func (e JoinEvent) When() time.Duration { return e.At }

// String implements Event.
func (e JoinEvent) String() string {
	return fmt.Sprintf("%v join node=%d", e.At, e.Node)
}

// ModeChangeEvent fires when the component head issues a synchronized
// task-set switch (planned reconfiguration, paper §1.1 item 4): the new
// mode activates at the named TDMA frame on every member that hears the
// broadcast.
type ModeChangeEvent struct {
	At   time.Duration
	Node NodeID // the issuing head
	Mode uint8
	// AtFrame is the TDMA frame at which the mode takes effect.
	AtFrame uint64
}

// When implements Event.
func (e ModeChangeEvent) When() time.Duration { return e.At }

// String implements Event.
func (e ModeChangeEvent) String() string {
	return fmt.Sprintf("%v mode-change head=%d mode=%d frame=%d", e.At, e.Node, e.Mode, e.AtFrame)
}

// FaultKind classifies a FaultEvent.
type FaultKind string

// Fault kinds emitted by fault-plan execution.
const (
	FaultCrash        FaultKind = "crash"
	FaultRecover      FaultKind = "recover"
	FaultCompute      FaultKind = "compute"
	FaultComputeClear FaultKind = "compute-clear"
	FaultPERBurst     FaultKind = "per-burst"
	FaultPERRestore   FaultKind = "per-restore"
	FaultBatteryDrain FaultKind = "battery-drain"
	FaultClockDrift   FaultKind = "clock-drift"
)

// FaultEvent fires when a fault-plan step executes against the cell.
type FaultEvent struct {
	At   time.Duration
	Kind FaultKind
	// Node is the affected node (zero for cell-wide faults like a PER
	// burst).
	Node NodeID
	// Task is set for compute faults.
	Task string
	// Value carries the fault magnitude: the wrong output for compute
	// faults, the forced packet error rate for PER bursts.
	Value float64
}

// When implements Event.
func (e FaultEvent) When() time.Duration { return e.At }

// String implements Event.
func (e FaultEvent) String() string {
	return fmt.Sprintf("%v fault kind=%s node=%d task=%s value=%s",
		e.At, e.Kind, e.Node, e.Task, strconv.FormatFloat(e.Value, 'g', -1, 64))
}

// Bus is a cell's typed event stream. Subscribe registers a callback that
// runs synchronously, on the simulation engine's goroutine, for every
// published event. Callbacks run in subscription order, so event handling
// is as deterministic as the simulation itself.
type Bus struct {
	subs []*Subscription
	// publishing guards the subs slice: cancellations during delivery
	// only mark the entry and are compacted after the loop, so no
	// subscriber is skipped or double-invoked.
	publishing bool
	dirty      bool
}

// Subscription is a handle on one Subscribe registration.
type Subscription struct {
	bus *Bus
	fn  func(Event)
}

// Cancel removes the subscription; it is safe to call more than once,
// including from inside an event callback (the subscription stops
// receiving immediately, other subscribers are unaffected).
func (s *Subscription) Cancel() {
	if s.bus == nil {
		return
	}
	b := s.bus
	s.bus = nil
	if b.publishing {
		b.dirty = true
		return
	}
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
}

// Subscribe registers fn for every subsequent event. Do not call Cell.Run
// from inside a callback.
func (b *Bus) Subscribe(fn func(Event)) *Subscription {
	sub := &Subscription{bus: b, fn: fn}
	b.subs = append(b.subs, sub)
	return sub
}

// publish delivers the event to every subscriber in subscription order.
// Subscriptions added during delivery start with the next event.
func (b *Bus) publish(ev Event) {
	b.publishing = true
	n := len(b.subs)
	for i := 0; i < n; i++ {
		sub := b.subs[i]
		if sub.bus != nil {
			sub.fn(ev)
		}
	}
	b.publishing = false
	if !b.dirty {
		return
	}
	b.dirty = false
	live := b.subs[:0]
	for _, sub := range b.subs {
		if sub.bus != nil {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(b.subs); i++ {
		b.subs[i] = nil
	}
	b.subs = live
}

// Log subscribes a recorder that accumulates every event; useful for
// experiment post-processing and determinism checks.
func (b *Bus) Log() *EventLog {
	l := &EventLog{}
	l.sub = b.Subscribe(func(ev Event) { l.events = append(l.events, ev) })
	return l
}

// EventLog records every event published after Bus.Log was called.
type EventLog struct {
	sub    *Subscription
	events []Event
}

// Events returns the recorded events in publication order.
func (l *EventLog) Events() []Event { return append([]Event(nil), l.events...) }

// Strings renders the recorded events one line each; equal seeds yield
// byte-identical slices.
func (l *EventLog) Strings() []string {
	out := make([]string, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.String()
	}
	return out
}

// Count returns how many recorded events satisfy pred (pred nil counts
// everything).
func (l *EventLog) Count(pred func(Event) bool) int {
	if pred == nil {
		return len(l.events)
	}
	n := 0
	for _, ev := range l.events {
		if pred(ev) {
			n++
		}
	}
	return n
}

// Close stops recording.
func (l *EventLog) Close() { l.sub.Cancel() }

// Recorder renders the log as trace time series: one cumulative counter
// per event type, sampled at every event's virtual timestamp. Campus
// streams are counted by their inner event type (CellEvent unwrapped).
// Equal-seed runs produce byte-identical CSV from Recorder().WriteCSV.
func (l *EventLog) Recorder() *trace.Recorder {
	rec := trace.NewRecorder()
	counts := make(map[string]float64)
	for _, ev := range l.events {
		name := SeriesName(ev)
		counts[name]++
		rec.Series(name).Add(ev.When(), counts[name])
	}
	return rec
}

// SeriesName maps an event to its stable telemetry series name — the
// same key used by EventLog.Recorder CSV columns, Runner metrics and
// evmd's flat telemetry samples. Campus streams are named by their inner
// event type (CellEvent unwrapped).
func SeriesName(ev Event) string {
	if ce, ok := ev.(CellEvent); ok {
		return SeriesName(ce.Inner)
	}
	switch ev.(type) {
	case FailoverEvent:
		return "failovers"
	case ActuationEvent:
		return "actuations"
	case MigrationEvent:
		return "migrations"
	case JoinEvent:
		return "joins"
	case FaultEvent:
		return "faults"
	case InterCellMigrationEvent:
		return "intercell_migrations"
	case CellOverloadEvent:
		return "cell_overloads"
	case CellRecoveredEvent:
		return "cell_recoveries"
	case BackboneEvent:
		return "backbone_transfers"
	case BackboneRouteEvent:
		return "backbone_routes"
	case BackboneLinkEvent:
		return "backbone_links"
	case ModeChangeEvent:
		return "mode_changes"
	case RolloutEvent:
		return "rollouts"
	case CapsuleDeliveryEvent:
		return "capsule_deliveries"
	case RollbackEvent:
		return "rollbacks"
	case RebalanceAbortEvent:
		return "rebalance_aborts"
	default:
		return "other"
	}
}
