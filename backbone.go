package evm

import (
	"fmt"
	"time"

	"evm/internal/sim"
)

// BackboneConfig parameterizes the campus backbone: the wired (or
// long-range) network bridging cell gateways. Unlike RT-Link slots the
// backbone is connection-less and always on; transfers pay a fixed
// one-way latency plus serialization time, and each transfer is lost
// independently with probability PER (lost transfers retransmit after
// RetryAfter, up to MaxRetries attempts).
type BackboneConfig struct {
	// Latency is the one-way gateway-to-gateway propagation delay.
	Latency time.Duration
	// BandwidthBPS is the serialization rate (default: 10 Mbit/s).
	BandwidthBPS float64
	// PER is the per-transfer loss probability in [0, 1).
	PER float64
	// RetryAfter is the retransmit delay after a lost transfer.
	RetryAfter time.Duration
	// MaxRetries bounds retransmissions per transfer.
	MaxRetries int
}

// DefaultBackboneConfig returns a campus-Ethernet-like backbone: 20 ms
// one-way latency (plant backhaul, not a LAN switch), 10 Mbit/s, lossless.
func DefaultBackboneConfig() BackboneConfig {
	return BackboneConfig{
		Latency:      20 * time.Millisecond,
		BandwidthBPS: 10_000_000,
		PER:          0,
		RetryAfter:   100 * time.Millisecond,
		MaxRetries:   10,
	}
}

func (c BackboneConfig) withDefaults() BackboneConfig {
	d := DefaultBackboneConfig()
	if c.Latency <= 0 {
		c.Latency = d.Latency
	}
	if c.BandwidthBPS <= 0 {
		c.BandwidthBPS = d.BandwidthBPS
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	return c
}

func (c BackboneConfig) validate() error {
	if c.PER < 0 || c.PER >= 1 {
		return fmt.Errorf("evm: backbone PER %g outside [0,1)", c.PER)
	}
	return nil
}

// BackboneStats counts backbone activity.
type BackboneStats struct {
	Sent      int
	Delivered int
	Dropped   int
	Failed    int
}

// Backbone is the inter-cell network of a Campus: a full mesh of
// latency/loss-modeled links between cell gateways, running on the
// shared simulation engine with its own PRNG fork so loss draws never
// perturb any cell's radio stream.
type Backbone struct {
	eng   *sim.Engine
	rng   *sim.RNG
	cfg   BackboneConfig
	names []string
	bus   *Bus
	stats BackboneStats
}

func newBackbone(eng *sim.Engine, rng *sim.RNG, cfg BackboneConfig, names []string, bus *Bus) *Backbone {
	return &Backbone{eng: eng, rng: rng, cfg: cfg, names: names, bus: bus}
}

// Config returns the backbone configuration.
func (b *Backbone) Config() BackboneConfig { return b.cfg }

// Stats returns a copy of the backbone counters.
func (b *Backbone) Stats() BackboneStats { return b.stats }

// transferTime returns latency plus serialization for a payload.
func (b *Backbone) transferTime(bytes int) time.Duration {
	ser := time.Duration(float64(bytes*8) / b.cfg.BandwidthBPS * float64(time.Second))
	return b.cfg.Latency + ser
}

// Send ships payload from one cell's gateway to another's. onDeliver
// runs when the transfer arrives; onFail runs if every retransmission is
// lost (both may be nil). Every attempt publishes a BackboneEvent on the
// campus bus.
func (b *Backbone) Send(from, to int, payload []byte, onDeliver func([]byte), onFail func()) {
	b.attempt(from, to, payload, 0, onDeliver, onFail)
}

func (b *Backbone) attempt(from, to int, payload []byte, try int, onDeliver func([]byte), onFail func()) {
	b.stats.Sent++
	b.bus.publish(BackboneEvent{
		At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneSend, Bytes: len(payload),
	})
	b.eng.After(b.transferTime(len(payload)), func() {
		if b.cfg.PER > 0 && b.rng.Bool(b.cfg.PER) {
			b.stats.Dropped++
			b.bus.publish(BackboneEvent{
				At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneDrop, Bytes: len(payload),
			})
			if try+1 > b.cfg.MaxRetries {
				b.stats.Failed++
				b.bus.publish(BackboneEvent{
					At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneFail, Bytes: len(payload),
				})
				if onFail != nil {
					onFail()
				}
				return
			}
			b.eng.After(b.cfg.RetryAfter, func() {
				b.attempt(from, to, payload, try+1, onDeliver, onFail)
			})
			return
		}
		b.stats.Delivered++
		b.bus.publish(BackboneEvent{
			At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneDeliver, Bytes: len(payload),
		})
		if onDeliver != nil {
			onDeliver(payload)
		}
	})
}

// BackboneEventKind classifies a BackboneEvent.
type BackboneEventKind string

// Backbone event kinds.
const (
	BackboneSend    BackboneEventKind = "send"
	BackboneDeliver BackboneEventKind = "deliver"
	BackboneDrop    BackboneEventKind = "drop"
	BackboneFail    BackboneEventKind = "fail"
)

// BackboneEvent fires for every backbone transfer attempt, delivery and
// loss. From/To are cell names.
type BackboneEvent struct {
	At    time.Duration
	From  string
	To    string
	Kind  BackboneEventKind
	Bytes int
}

// When implements Event.
func (e BackboneEvent) When() time.Duration { return e.At }

// String implements Event.
func (e BackboneEvent) String() string {
	return fmt.Sprintf("%v backbone kind=%s from=%s to=%s bytes=%d", e.At, e.Kind, e.From, e.To, e.Bytes)
}
