package evm

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
)

// BackboneConfig parameterizes the campus backbone: the wired (or
// long-range) network bridging cell gateways. Unlike RT-Link slots the
// backbone is connection-less and always on; transfers pay a per-link
// one-way latency plus serialization time at every hop, and each hop
// loses the transfer independently with the link's PER (lost transfers
// retransmit end-to-end from the source after RetryAfter, up to
// MaxRetries attempts).
//
// The zero value describes an implicit full mesh: every cell pair is
// one hop apart with the Latency/BandwidthBPS/PER below. The first
// Backbone.AddLink call switches the backbone to an explicit per-link
// topology where only added links exist and transfers follow
// shortest-path multi-hop routes.
type BackboneConfig struct {
	// Latency is the one-way gateway-to-gateway propagation delay of a
	// default (mesh) link.
	Latency time.Duration
	// BandwidthBPS is the serialization rate (default: 10 Mbit/s).
	BandwidthBPS float64
	// PER is the per-hop loss probability in [0, 1).
	PER float64
	// RetryAfter is the end-to-end retransmit delay after a lost hop.
	RetryAfter time.Duration
	// MaxRetries bounds retransmissions per transfer.
	MaxRetries int
}

// DefaultBackboneConfig returns a campus-Ethernet-like backbone: 20 ms
// one-way latency (plant backhaul, not a LAN switch), 10 Mbit/s, lossless.
func DefaultBackboneConfig() BackboneConfig {
	return BackboneConfig{
		Latency:      20 * time.Millisecond,
		BandwidthBPS: 10_000_000,
		PER:          0,
		RetryAfter:   100 * time.Millisecond,
		MaxRetries:   10,
	}
}

func (c BackboneConfig) withDefaults() BackboneConfig {
	d := DefaultBackboneConfig()
	if c.Latency <= 0 {
		c.Latency = d.Latency
	}
	if c.BandwidthBPS <= 0 {
		c.BandwidthBPS = d.BandwidthBPS
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	return c
}

func (c BackboneConfig) validate() error {
	if c.PER < 0 || c.PER >= 1 {
		return fmt.Errorf("evm: backbone PER %g outside [0,1)", c.PER)
	}
	return nil
}

// LinkConfig describes one explicit backbone link. Zero fields inherit
// the backbone's defaults (PER inherits 0, not the mesh default: an
// explicit link is lossless unless said otherwise).
type LinkConfig struct {
	// Latency is the link's one-way propagation delay.
	Latency time.Duration
	// BandwidthBPS is the link's serialization rate.
	BandwidthBPS float64
	// PER is the per-hop loss probability in [0, 1).
	PER float64
}

// BackboneLink declares one explicit link between two named cells — the
// declarative form of Backbone.AddLink for CampusConfig.Links.
type BackboneLink struct {
	A, B   string
	Config LinkConfig
}

// BackboneStats counts backbone activity.
type BackboneStats struct {
	Sent      int
	Delivered int
	Dropped   int
	Failed    int
	// Forwarded counts hop traversals beyond the first — multi-hop
	// forwarding volume at intermediate cells.
	Forwarded int
}

// Backbone is the inter-cell network of a Campus. It starts as an
// implicit full mesh of identical links between every cell gateway; an
// explicit topology built with AddLink replaces the mesh, and transfers
// then follow deterministic weighted shortest-path routes — links are
// priced by expected delay, latency / (1 - PER), so a clean multi-hop
// detour beats a lossy short-cut (equal-weight links reduce to min-hop
// with lowest-index tie-breaks) — with per-hop delay and loss. It runs
// on the shared simulation engine with its own PRNG fork so loss draws
// never perturb any cell's radio stream.
type Backbone struct {
	eng   *sim.Engine
	rng   *sim.RNG
	cfg   BackboneConfig
	names []string
	bus   *Bus
	stats BackboneStats

	// explicit per-link topology; nil until the first AddLink.
	links map[int]map[int]LinkConfig
	// down marks severed links (kept symmetric); a downed link is removed
	// from the route table and drops frames still in flight on it.
	down map[int]map[int]bool
	// next[from][to] is the cached next-hop matrix (-1 = unreachable);
	// nil when stale.
	next [][]int
}

func newBackbone(eng *sim.Engine, rng *sim.RNG, cfg BackboneConfig, names []string, bus *Bus) *Backbone {
	return &Backbone{eng: eng, rng: rng, cfg: cfg, names: names, bus: bus}
}

// Config returns the backbone configuration.
func (b *Backbone) Config() BackboneConfig { return b.cfg }

// Stats returns a copy of the backbone counters.
func (b *Backbone) Stats() BackboneStats { return b.stats }

// Mesh reports whether the backbone still uses the implicit full mesh
// (no explicit link added yet).
func (b *Backbone) Mesh() bool { return b.links == nil }

// cellIndex resolves a cell name.
func (b *Backbone) cellIndex(name string) (int, bool) {
	for i, n := range b.names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// AddLink adds (or replaces) a bidirectional link between two named
// cells. The first call switches the backbone from the implicit full
// mesh to the explicit topology: from then on only added links exist
// and transfers route across them hop by hop. Zero LinkConfig fields
// inherit the backbone defaults; call before the campus runs.
func (b *Backbone) AddLink(a, c string, cfg LinkConfig) error {
	ai, ci, err := b.resolveLink(a, c)
	if err != nil {
		return err
	}
	if cfg.PER < 0 || cfg.PER >= 1 {
		return fmt.Errorf("evm: backbone link %s-%s PER %g outside [0,1)", a, c, cfg.PER)
	}
	if cfg.Latency <= 0 {
		cfg.Latency = b.cfg.Latency
	}
	if cfg.BandwidthBPS <= 0 {
		cfg.BandwidthBPS = b.cfg.BandwidthBPS
	}
	if b.links == nil {
		b.links = make(map[int]map[int]LinkConfig)
	}
	for _, pair := range [][2]int{{ai, ci}, {ci, ai}} {
		m := b.links[pair[0]]
		if m == nil {
			m = make(map[int]LinkConfig)
			b.links[pair[0]] = m
		}
		m[pair[1]] = cfg
	}
	b.next = nil // invalidate routes
	return nil
}

// materializeMesh converts the implicit full mesh into the equivalent
// explicit topology (every cell pair one mesh link apart), so link-level
// dynamics can sever individual mesh links and BFS reroutes the rest.
func (b *Backbone) materializeMesh() {
	b.links = make(map[int]map[int]LinkConfig, len(b.names))
	for i := range b.names {
		b.links[i] = make(map[int]LinkConfig, len(b.names)-1)
		for j := range b.names {
			if i != j {
				b.links[i][j] = b.meshLink()
			}
		}
	}
	b.next = nil
}

// resolveLink validates a named cell pair and returns its indices.
func (b *Backbone) resolveLink(a, c string) (int, int, error) {
	ai, ok := b.cellIndex(a)
	if !ok {
		return 0, 0, fmt.Errorf("evm: backbone link names unknown cell %q", a)
	}
	ci, ok := b.cellIndex(c)
	if !ok {
		return 0, 0, fmt.Errorf("evm: backbone link names unknown cell %q", c)
	}
	if ai == ci {
		return 0, 0, fmt.Errorf("evm: backbone link from cell %q to itself", a)
	}
	return ai, ci, nil
}

// SetLinkDown severs the link between two named cells: the link leaves
// the BFS route table (routes recompute deterministically on the next
// transfer), frames still in flight on it drop on arrival, and a
// BackboneLinkEvent records the change. Severing a link of the implicit
// full mesh first materializes the mesh into the equivalent explicit
// topology, so the remaining mesh links keep forwarding multi-hop.
func (b *Backbone) SetLinkDown(a, c string) error {
	ai, ci, err := b.resolveLink(a, c)
	if err != nil {
		return err
	}
	if b.links == nil {
		b.materializeMesh()
	}
	if _, ok := b.links[ai][ci]; !ok {
		return fmt.Errorf("evm: no backbone link %s-%s to sever", a, c)
	}
	if b.down[ai][ci] {
		return nil // already down
	}
	if b.down == nil {
		b.down = make(map[int]map[int]bool)
	}
	for _, pair := range [][2]int{{ai, ci}, {ci, ai}} {
		m := b.down[pair[0]]
		if m == nil {
			m = make(map[int]bool)
			b.down[pair[0]] = m
		}
		m[pair[1]] = true
	}
	b.next = nil // invalidate routes
	b.bus.publish(BackboneLinkEvent{At: b.eng.Now(), A: b.names[ai], B: b.names[ci], Up: false})
	return nil
}

// SetLinkUp restores a previously severed link and publishes the
// matching BackboneLinkEvent. Restoring a live link is a no-op.
func (b *Backbone) SetLinkUp(a, c string) error {
	ai, ci, err := b.resolveLink(a, c)
	if err != nil {
		return err
	}
	if b.links == nil {
		return nil // implicit mesh: nothing was ever severed
	}
	if _, ok := b.links[ai][ci]; !ok {
		return fmt.Errorf("evm: no backbone link %s-%s to restore", a, c)
	}
	if !b.down[ai][ci] {
		return nil
	}
	delete(b.down[ai], ci)
	delete(b.down[ci], ai)
	b.next = nil
	b.bus.publish(BackboneLinkEvent{At: b.eng.Now(), A: b.names[ai], B: b.names[ci], Up: true})
	return nil
}

// LinkDown reports whether the link between two named cells is severed.
func (b *Backbone) LinkDown(a, c string) bool {
	ai, ok := b.cellIndex(a)
	if !ok {
		return false
	}
	ci, ok := b.cellIndex(c)
	if !ok {
		return false
	}
	return b.down[ai][ci]
}

// linkDown reports whether a directed cell-index pair is severed.
func (b *Backbone) linkDown(from, to int) bool { return b.down[from][to] }

// hasLink reports whether a cell-index pair is linked in the current
// topology, severed or not (every pair is linked on the implicit mesh).
func (b *Backbone) hasLink(ai, ci int) bool {
	if b.links == nil {
		return true
	}
	_, ok := b.links[ai][ci]
	return ok
}

// meshLink is the implicit full-mesh link configuration.
func (b *Backbone) meshLink() LinkConfig {
	return LinkConfig{Latency: b.cfg.Latency, BandwidthBPS: b.cfg.BandwidthBPS, PER: b.cfg.PER}
}

// linkConfig returns the link between two adjacent cells.
func (b *Backbone) linkConfig(from, to int) LinkConfig {
	if b.links == nil {
		return b.meshLink()
	}
	return b.links[from][to]
}

// neighbors returns a cell's live explicit neighbors in ascending order
// (severed links are not neighbors).
func (b *Backbone) neighbors(of int) []int {
	out := make([]int, 0, len(b.links[of]))
	//evm:allow-maporder linkDown is a pure predicate and the result is sorted before return, so visit order cannot leak out
	for n := range b.links[of] {
		if !b.linkDown(of, n) {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// linkWeight prices one traversal of a link: its expected one-way delay
// including end-to-end retransmits, latency / (1 - PER). A lossy link is
// as expensive as its retry amplification, so a clean three-hop detour
// can beat a 90%-loss direct hop (3x20 ms = 60 ms vs 20 ms / 0.1 =
// 200 ms) while uniform clean links still reduce to min-hop routing.
func linkWeight(link LinkConfig) float64 {
	return link.Latency.Seconds() / (1 - link.PER)
}

// computeRoutes fills the next-hop matrix with weighted shortest paths
// (Dijkstra over linkWeight). Tie-breaks are deterministic: equal-cost
// routes prefer fewer hops, then the lowest-index predecessor — so
// uniform link weights reduce to min-hop routing with lowest-index
// detours, and recomputation after a link change is reproducible.
func (b *Backbone) computeRoutes() {
	n := len(b.names)
	b.next = make([][]int, n)
	for src := 0; src < n; src++ {
		b.next[src] = make([]int, n)
		dist := make([]float64, n)
		hops := make([]int, n)
		prev := make([]int, n)
		done := make([]bool, n)
		for i := range prev {
			dist[i] = -1 // unreached
			prev[i] = -1
		}
		dist[src], prev[src] = 0, src
		for {
			cur := -1
			for i := 0; i < n; i++ {
				if done[i] || dist[i] < 0 {
					continue
				}
				if cur < 0 || dist[i] < dist[cur] || //evm:allow-floatacc deliberate tie-break: both sides are the same deterministic sum of link weights, equal only when bit-identical
					(dist[i] == dist[cur] && hops[i] < hops[cur]) {
					cur = i
				}
			}
			if cur < 0 {
				break
			}
			done[cur] = true
			for _, nb := range b.neighbors(cur) {
				if done[nb] {
					continue
				}
				nd := dist[cur] + linkWeight(b.linkConfig(cur, nb))
				nh := hops[cur] + 1
				better := dist[nb] < 0 || nd < dist[nb] ||
					(nd == dist[nb] && nh < hops[nb]) || //evm:allow-floatacc deliberate tie-break on exactly-equal path weights; the same weights sum in the same order on every run
					(nd == dist[nb] && nh == hops[nb] && cur < prev[nb])
				if better {
					dist[nb], hops[nb], prev[nb] = nd, nh, cur
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src || prev[dst] < 0 {
				b.next[src][dst] = -1
				continue
			}
			// Walk back from dst to the first hop out of src.
			hop := dst
			for prev[hop] != src {
				hop = prev[hop]
			}
			b.next[src][dst] = hop
		}
	}
}

// Route returns the cell-index path of a transfer from one cell to
// another (inclusive of both endpoints), or nil when the backbone has
// no route.
func (b *Backbone) Route(from, to int) []int {
	if from == to || from < 0 || to < 0 || from >= len(b.names) || to >= len(b.names) {
		return nil
	}
	if b.links == nil {
		return []int{from, to}
	}
	if b.next == nil {
		b.computeRoutes()
	}
	path := []int{from}
	for cur := from; cur != to; {
		nxt := b.next[cur][to]
		if nxt < 0 {
			return nil
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// Hops returns the backbone hop count between two cells, or -1 when no
// route exists.
func (b *Backbone) Hops(from, to int) int {
	if from == to {
		return 0
	}
	path := b.Route(from, to)
	if path == nil {
		return -1
	}
	return len(path) - 1
}

// pathNames renders a route as cell names.
func (b *Backbone) pathNames(path []int) []string {
	out := make([]string, len(path))
	for i, idx := range path {
		out[i] = b.names[idx]
	}
	return out
}

// transferTime returns one hop's latency plus serialization for a payload.
func (b *Backbone) transferTime(link LinkConfig, bytes int) time.Duration {
	ser := time.Duration(float64(bytes*8) / link.BandwidthBPS * float64(time.Second))
	return link.Latency + ser
}

// Send ships payload from one cell's gateway to another's along the
// shortest backbone route. onDeliver runs when the transfer arrives;
// onFail runs if no route exists or every retransmission is lost (both
// may be nil). Every transfer publishes a BackboneRouteEvent with the
// chosen path; a retransmission that finds the route table changed (a
// link severed or restored mid-transfer) publishes a fresh
// BackboneRouteEvent marked Reroute. Every attempt, delivery and loss
// publishes a BackboneEvent on the campus bus.
func (b *Backbone) Send(from, to int, payload []byte, onDeliver func([]byte), onFail func()) {
	path := b.Route(from, to)
	if path == nil {
		b.fail(from, to, len(payload), onFail)
		return
	}
	if t := b.eng.Tracer(); t != nil {
		// One span covers the whole end-to-end transfer including every
		// retransmission; per-hop child spans record the route legs.
		tid := t.Open("backbone-transfer", "backbone", "backbone", b.eng.Now(),
			span.Arg{Key: "from", Val: b.names[from]},
			span.Arg{Key: "to", Val: b.names[to]},
			span.Arg{Key: "bytes", Val: strconv.Itoa(len(payload))})
		inner, innerFail := onDeliver, onFail
		onDeliver = func(p []byte) {
			t.Close(tid, b.eng.Now(), span.Arg{Key: "outcome", Val: "deliver"})
			if inner != nil {
				inner(p)
			}
		}
		onFail = func() {
			t.Close(tid, b.eng.Now(), span.Arg{Key: "outcome", Val: "fail"})
			if innerFail != nil {
				innerFail()
			}
		}
	}
	b.bus.publish(BackboneRouteEvent{
		At: b.eng.Now(), From: b.names[from], To: b.names[to],
		Path: b.pathNames(path), Bytes: len(payload),
	})
	b.attempt(path, payload, 0, onDeliver, onFail)
}

// fail records a terminally failed transfer.
func (b *Backbone) fail(from, to, bytes int, onFail func()) {
	b.stats.Failed++
	b.bus.publish(BackboneEvent{
		At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneFail, Bytes: bytes,
	})
	if onFail != nil {
		onFail()
	}
}

// attempt starts one end-to-end transmission along the route.
func (b *Backbone) attempt(path []int, payload []byte, try int, onDeliver func([]byte), onFail func()) {
	from, to := path[0], path[len(path)-1]
	b.stats.Sent++
	b.bus.publish(BackboneEvent{
		At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneSend, Bytes: len(payload),
	})
	b.hop(path, 0, payload, try, onDeliver, onFail)
}

// retry schedules the next end-to-end retransmission after a loss. The
// route is re-resolved at retransmit time, so a transfer whose link was
// severed mid-flight reroutes around it (or fails if the destination is
// partitioned off); a changed path is recorded as a Reroute event.
func (b *Backbone) retry(prev []int, payload []byte, try int, onDeliver func([]byte), onFail func()) {
	from, to := prev[0], prev[len(prev)-1]
	if try+1 > b.cfg.MaxRetries {
		b.fail(from, to, len(payload), onFail)
		return
	}
	b.eng.After(b.cfg.RetryAfter, func() {
		path := b.Route(from, to)
		if path == nil {
			b.fail(from, to, len(payload), onFail)
			return
		}
		if !slices.Equal(path, prev) {
			b.eng.Tracer().Instant("backbone-reroute", "backbone", "backbone", b.eng.Now(),
				span.Arg{Key: "from", Val: b.names[from]},
				span.Arg{Key: "to", Val: b.names[to]},
				span.Arg{Key: "path", Val: strings.Join(b.pathNames(path), ">")})
			b.bus.publish(BackboneRouteEvent{
				At: b.eng.Now(), From: b.names[from], To: b.names[to],
				Path: b.pathNames(path), Bytes: len(payload), Reroute: true,
			})
		}
		b.attempt(path, payload, try+1, onDeliver, onFail)
	})
}

// hop traverses one link of the route: pay the link's delay, then drop
// the frame if the link was severed while it was in flight, draw the
// link's loss, and forward or deliver.
func (b *Backbone) hop(path []int, i int, payload []byte, try int, onDeliver func([]byte), onFail func()) {
	from, to := path[0], path[len(path)-1]
	link := b.linkConfig(path[i], path[i+1])
	if t := b.eng.Tracer(); t != nil {
		now := b.eng.Now()
		t.Complete("backbone-hop", "backbone", "backbone", now, now+b.transferTime(link, len(payload)),
			span.Arg{Key: "from", Val: b.names[path[i]]},
			span.Arg{Key: "to", Val: b.names[path[i+1]]},
			span.Arg{Key: "try", Val: strconv.Itoa(try)})
	}
	b.eng.After(b.transferTime(link, len(payload)), func() {
		lost := b.linkDown(path[i], path[i+1])
		if !lost && link.PER > 0 && b.rng.Bool(link.PER) {
			lost = true
		}
		if lost {
			b.stats.Dropped++
			via := ""
			if path[i] != from {
				via = b.names[path[i]]
			}
			b.bus.publish(BackboneEvent{
				At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneDrop,
				Bytes: len(payload), Via: via,
			})
			b.retry(path, payload, try, onDeliver, onFail)
			return
		}
		if i+1 < len(path)-1 {
			b.stats.Forwarded++
			b.hop(path, i+1, payload, try, onDeliver, onFail)
			return
		}
		b.stats.Delivered++
		b.bus.publish(BackboneEvent{
			At: b.eng.Now(), From: b.names[from], To: b.names[to], Kind: BackboneDeliver, Bytes: len(payload),
		})
		if onDeliver != nil {
			onDeliver(payload)
		}
	})
}

// BackboneEventKind classifies a BackboneEvent.
type BackboneEventKind string

// Backbone event kinds.
const (
	BackboneSend    BackboneEventKind = "send"
	BackboneDeliver BackboneEventKind = "deliver"
	BackboneDrop    BackboneEventKind = "drop"
	BackboneFail    BackboneEventKind = "fail"
)

// BackboneEvent fires for every backbone transfer attempt, delivery and
// loss. From/To are the end-to-end cell names; Via names the
// intermediate cell a multi-hop transfer was lost at ("" when the loss
// happened on the first hop or the route is single-hop).
type BackboneEvent struct {
	At    time.Duration
	From  string
	To    string
	Kind  BackboneEventKind
	Bytes int
	Via   string
}

// When implements Event.
func (e BackboneEvent) When() time.Duration { return e.At }

// String implements Event.
func (e BackboneEvent) String() string {
	if e.Via != "" {
		return fmt.Sprintf("%v backbone kind=%s from=%s to=%s via=%s bytes=%d",
			e.At, e.Kind, e.From, e.To, e.Via, e.Bytes)
	}
	return fmt.Sprintf("%v backbone kind=%s from=%s to=%s bytes=%d", e.At, e.Kind, e.From, e.To, e.Bytes)
}

// BackboneRouteEvent fires once per backbone transfer with the route the
// transfer will follow (inclusive of both endpoint cells), and again —
// marked Reroute — whenever a retransmission of the same transfer picks
// a different path because the link set changed mid-flight.
type BackboneRouteEvent struct {
	At      time.Duration
	From    string
	To      string
	Path    []string
	Bytes   int
	Reroute bool
}

// When implements Event.
func (e BackboneRouteEvent) When() time.Duration { return e.At }

// String implements Event.
func (e BackboneRouteEvent) String() string {
	kind := "backbone-route"
	if e.Reroute {
		kind = "backbone-reroute"
	}
	return fmt.Sprintf("%v %s from=%s to=%s path=%s bytes=%d",
		e.At, kind, e.From, e.To, strings.Join(e.Path, ">"), e.Bytes)
}

// BackboneLinkEvent fires when a backbone link is severed or restored by
// link-level fault dynamics (FaultStep.LinkDown / FaultStep.LinkUp).
type BackboneLinkEvent struct {
	At time.Duration
	A  string
	B  string
	// Up is false when the link went down, true when it came back.
	Up bool
}

// When implements Event.
func (e BackboneLinkEvent) When() time.Duration { return e.At }

// String implements Event.
func (e BackboneLinkEvent) String() string {
	state := "down"
	if e.Up {
		state = "up"
	}
	return fmt.Sprintf("%v backbone-link a=%s b=%s state=%s", e.At, e.A, e.B, state)
}
