// Command evmasm assembles EVM control programs into attested capsules
// and disassembles capsules back to text.
//
// Usage:
//
//	evmasm -task lts-level -o lts.cap program.asm   # assemble
//	evmasm -d lts.cap                               # disassemble
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"evm/internal/vm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		taskID  = flag.String("task", "task", "task ID embedded in the capsule")
		version = flag.Uint("version", 1, "capsule version")
		out     = flag.String("o", "", "output capsule file (assemble mode)")
		disasm  = flag.Bool("d", false, "disassemble a capsule instead of assembling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: evmasm [-d] [-task id] [-o out.cap] <file>")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	if *disasm {
		c, err := vm.Decode(data)
		if err != nil {
			return fmt.Errorf("decode %s: %w", path, err)
		}
		fmt.Printf("; capsule task=%q version=%d code=%d bytes (attestation ok)\n",
			c.TaskID, c.Version, len(c.Code))
		fmt.Print(vm.Disassemble(c.Code))
		return nil
	}

	code, err := vm.Assemble(string(data))
	if err != nil {
		return err
	}
	c := vm.Capsule{TaskID: *taskID, Version: uint8(*version), Code: code}
	enc, err := c.Encode()
	if err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		dest = path + ".cap"
	}
	if err := os.WriteFile(dest, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %d bytes of code into %s (%d bytes with header+checksum)\n",
		len(code), dest, len(enc))
	return nil
}
