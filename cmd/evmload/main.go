// Command evmload is the admission-controlled load harness for evmd: it
// hammers the daemon with concurrent scenario submissions and reports
// admission latency, throughput and queue depth — the first benchmark
// that measures the repo as a *service* rather than a single simulation.
// It also verifies the service-level guarantees the daemon makes:
//
//   - no lost or duplicated runs: every accepted submission appears in
//     the run table exactly once and completes without error;
//   - multi-tenant determinism: streamed event logs for a sampled set of
//     seeds are byte-identical across tenants AND identical to a serial
//     (no daemon, no concurrency) execution of the same spec.
//
// By default it spawns an in-process daemon on a loopback port, so CI
// can run a full load smoke test with one command:
//
//	evmload -n 1000 -c 64 -tenants 8 -verify 4
//
// Point it at a running daemon instead with -addr.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"evm"
	"evm/evmd"
)

// outcome records one submission attempt.
type outcome struct {
	idx     int
	status  int
	latency time.Duration
	runID   string
	seed    uint64
	err     error
}

func main() {
	addr := flag.String("addr", "", "target daemon base URL (empty = spawn an in-process daemon)")
	n := flag.Int("n", 1000, "total submissions")
	conc := flag.Int("c", 64, "concurrent submitters")
	tenants := flag.Int("tenants", 8, "distinct tenants to submit under")
	seeds := flag.Int("seeds", 8, "distinct seeds cycled across submissions")
	scenario := flag.String("scenario", evm.ScenarioEightController, "scenario to submit")
	horizon := flag.Duration("horizon", 2*time.Second, "virtual-time horizon per run")
	verify := flag.Int("verify", 4, "seeds to verify byte-identical against serial execution (0 = skip)")
	perSeed := flag.Int("verify-runs", 3, "daemon runs compared per verified seed")
	workers := flag.Int("workers", 0, "in-process daemon workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "in-process daemon queue bound (0 = max(n, 1024))")
	allow429 := flag.Bool("allow-429", false, "treat backpressure rejections as expected (stress mode)")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall completion deadline")
	benchJSON := flag.String("bench-json", "", "merge admission latency percentiles and throughput into this BENCH_pr*.json artifact")
	benchPR := flag.Int("bench-pr", 7, "pr number stamped on -bench-json when creating the file")
	flag.Parse()

	base := *addr
	if base == "" {
		bound := *queue
		if bound <= 0 {
			bound = *n
			if bound < 1024 {
				bound = 1024
			}
		}
		srv := evmd.NewServer(evmd.Config{Workers: *workers, QueueDepth: bound})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("evmload: %v", err)
		}
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("evmload: in-process daemon on %s (workers=%d queue=%d)\n",
			base, srv.Stats().Workers, bound)
		defer srv.Drain(0)
	}

	fmt.Printf("evmload: %d submissions, %d concurrent, %d tenants, scenario %s, %d seeds, horizon %v\n",
		*n, *conc, *tenants, *scenario, *seeds, *horizon)

	outcomes := make([]outcome, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	submitStart := time.Now() //evm:allow-wallclock load harness measures real daemon throughput, not simulated time
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := uint64(1 + i%*seeds)
				body, _ := json.Marshal(evmd.SubmitRequest{
					Tenant:    fmt.Sprintf("tenant-%d", i%*tenants),
					Scenario:  *scenario,
					Seed:      seed,
					HorizonMS: horizon.Milliseconds(),
				})
				start := time.Now() //evm:allow-wallclock real HTTP request latency is the measurement
				resp, err := client.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
				oc := outcome{idx: i, seed: seed, latency: time.Since(start), err: err} //evm:allow-wallclock real HTTP request latency is the measurement
				if err == nil {
					oc.status = resp.StatusCode
					var sub evmd.SubmitResponse
					if decErr := json.NewDecoder(resp.Body).Decode(&sub); decErr == nil && len(sub.Runs) == 1 {
						oc.runID = sub.Runs[0].ID
					}
					resp.Body.Close()
				}
				outcomes[i] = oc
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	submitWall := time.Since(submitStart) //evm:allow-wallclock load harness measures real daemon throughput

	accepted, rejected429, refused503, hardErrs := 0, 0, 0, 0
	var latencies []time.Duration
	ids := make(map[string]int)
	dups := 0
	for _, oc := range outcomes {
		switch {
		case oc.err != nil:
			hardErrs++
		case oc.status == http.StatusAccepted:
			accepted++
			latencies = append(latencies, oc.latency)
			if oc.runID == "" {
				hardErrs++
			} else if ids[oc.runID]++; ids[oc.runID] > 1 {
				dups++
			}
		case oc.status == http.StatusTooManyRequests:
			rejected429++
		case oc.status == http.StatusServiceUnavailable:
			refused503++
		default:
			hardErrs++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("  accepted           %6d  (429: %d, 503: %d, errors: %d)\n",
		accepted, rejected429, refused503, hardErrs)
	fmt.Printf("  admission latency  p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("  submission phase   %d in %v (%.0f/sec)\n",
		*n, submitWall.Round(time.Millisecond), float64(*n)/submitWall.Seconds())

	// Wait for the daemon to finish every accepted run.
	var stats evmd.Stats
	deadline := time.Now().Add(*timeout) //evm:allow-wallclock harness timeout against a real daemon
	for {
		stats = getStats(client, base)
		if int(stats.Completed+stats.Failed+stats.Cancelled) >= accepted {
			break
		}
		//evm:allow-wallclock harness timeout against a real daemon
		if time.Now().After(deadline) {
			fmt.Printf("evmload: FAIL — timeout with %d/%d runs finished\n",
				stats.Completed+stats.Failed+stats.Cancelled, accepted)
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond) //evm:allow-wallclock completion polling against a real daemon
	}
	totalWall := time.Since(submitStart) //evm:allow-wallclock load harness measures real daemon throughput
	fmt.Printf("  completion         %d done in %v (%.0f runs/sec end-to-end)\n",
		stats.Completed, totalWall.Round(time.Millisecond), float64(accepted)/totalWall.Seconds())
	fmt.Printf("  queue depth        peak %d (bound %d)\n", stats.PeakQueueDepth, stats.QueueBound)

	// Service-level checks.
	failures := 0
	if hardErrs > 0 {
		fmt.Printf("evmload: FAIL — %d submissions errored\n", hardErrs)
		failures++
	}
	if rejected429 > 0 && !*allow429 {
		fmt.Printf("evmload: FAIL — %d backpressure rejections with an adequate queue (-allow-429 to permit)\n", rejected429)
		failures++
	}
	if dups > 0 {
		fmt.Printf("evmload: FAIL — %d duplicated run IDs\n", dups)
		failures++
	}
	if stats.Failed > 0 {
		fmt.Printf("evmload: FAIL — %d runs finished with errors\n", stats.Failed)
		failures++
	}
	if lost := accepted - runCount(client, base); lost != 0 {
		fmt.Printf("evmload: FAIL — run table disagrees with acceptances by %d (lost runs)\n", lost)
		failures++
	} else {
		fmt.Printf("  lost/duplicated    0/0\n")
	}

	if mc, err := checkMetrics(client, base, *addr == "", accepted, pct); err != nil {
		fmt.Printf("evmload: FAIL — /metrics: %v\n", err)
		failures++
	} else {
		fmt.Printf("  /metrics           %s\n", mc)
	}

	if *verify > 0 {
		compared, err := verifyDeterminism(client, base, outcomes[:], *scenario, *horizon, *verify, *perSeed)
		if err != nil {
			fmt.Printf("evmload: FAIL — determinism: %v\n", err)
			failures++
		} else {
			fmt.Printf("  determinism        %s\n", compared)
		}
	}
	if *benchJSON != "" {
		rows := []benchRow{
			{Name: "EvmloadAdmission/p50", Iters: accepted, NsPerOp: float64(pct(0.50))},
			{Name: "EvmloadAdmission/p95", Iters: accepted, NsPerOp: float64(pct(0.95))},
			{Name: "EvmloadAdmission/p99", Iters: accepted, NsPerOp: float64(pct(0.99))},
			{Name: "EvmloadThroughput", Iters: accepted,
				NsPerOp: float64(totalWall) / float64(max(accepted, 1)),
				Extra: map[string]float64{
					"runs-per-sec":    round1(float64(accepted) / totalWall.Seconds()),
					"submits-per-sec": round1(float64(*n) / submitWall.Seconds()),
				}},
		}
		if err := mergeBench(*benchJSON, *benchPR, rows); err != nil {
			fmt.Printf("evmload: FAIL — bench artifact: %v\n", err)
			failures++
		} else {
			fmt.Printf("  bench artifact     %d rows merged into %s\n", len(rows), *benchJSON)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Printf("evmload: PASS\n")
}

// benchRow is one BENCH_pr*.json benchmark entry; Extra flattens into
// the same JSON object, matching the metric columns the go-bench
// renderer emits (and the evmbench -trend reader consumes).
type benchRow struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	Extra   map[string]float64
}

func (r benchRow) MarshalJSON() ([]byte, error) {
	m := map[string]any{"name": r.Name, "iters": r.Iters, "ns_per_op": r.NsPerOp}
	for k, v := range r.Extra {
		m[k] = v
	}
	return json.Marshal(m)
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

// mergeBench inserts rows into the BENCH artifact at path, replacing
// same-named entries, so the load harness composes with the go-bench
// rows CI renders first.
func mergeBench(path string, pr int, rows []benchRow) error {
	artifact := struct {
		PR         int               `json:"pr"`
		Benchmarks []json.RawMessage `json:"benchmarks"`
	}{PR: pr}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &artifact); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	replaced := make(map[string]bool, len(rows))
	for _, r := range rows {
		replaced[r.Name] = true
	}
	kept := artifact.Benchmarks[:0]
	for _, raw := range artifact.Benchmarks {
		var probe struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(raw, &probe) == nil && replaced[probe.Name] {
			continue
		}
		kept = append(kept, raw)
	}
	artifact.Benchmarks = kept
	for _, r := range rows {
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		artifact.Benchmarks = append(artifact.Benchmarks, raw)
	}
	out, err := json.MarshalIndent(artifact, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// checkMetrics scrapes GET /metrics and cross-checks the daemon's own
// admission-latency histogram against the client-side measurements: the
// server handler time for any request is bounded by the client's round
// trip, so with equal observation counts each server percentile must
// sit at or below the matching client percentile. A spawned in-process
// daemon saw exactly this harness's traffic, so its accepted counter
// must equal ours too. Catches the Prometheus surface drifting from the
// /v1/stats view it is rendered from.
func checkMetrics(client *http.Client, base string, inProcess bool, accepted int, pct func(float64) time.Duration) (string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	samples, buckets, err := parseMetrics(resp.Body)
	if err != nil {
		return "", err
	}
	if inProcess {
		if got, ok := samples["evmd_submissions_accepted_total"]; !ok || int(got) != accepted {
			return "", fmt.Errorf("evmd_submissions_accepted_total = %g, harness accepted %d", got, accepted)
		}
	}
	count, ok := samples["evmd_admission_latency_seconds_count"]
	if !ok {
		return "", fmt.Errorf("evmd_admission_latency_seconds histogram missing")
	}
	if int(count) < accepted {
		return "", fmt.Errorf("admission histogram count %g < %d accepted submissions", count, accepted)
	}
	if int(count) == accepted && accepted > 0 {
		for _, p := range []float64{0.50, 0.95, 0.99} {
			lb := bucketLowerBound(buckets, int(count), p)
			if cl := pct(p).Seconds(); cl < lb {
				return "", fmt.Errorf("server admission p%d sits above %gs but client round-trip p%d is %gs",
					int(p*100), lb, int(p*100), cl)
			}
		}
		return fmt.Sprintf("admission histogram count=%d, server p50/p95/p99 within client round-trips", int(count)), nil
	}
	return fmt.Sprintf("admission histogram count=%d covers %d accepted submissions", int(count), accepted), nil
}

// histBucket is one cumulative bucket of the scraped admission histogram.
type histBucket struct {
	le  float64
	cum int
}

// parseMetrics reads Prometheus text exposition, returning unlabelled
// samples by name plus the admission-latency bucket series.
func parseMetrics(r io.Reader) (map[string]float64, []histBucket, error) {
	samples := make(map[string]float64)
	var buckets []histBucket
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		const bucketPrefix = `evmd_admission_latency_seconds_bucket{le="`
		if strings.HasPrefix(fields[0], bucketPrefix) {
			leStr := strings.TrimSuffix(strings.TrimPrefix(fields[0], bucketPrefix), `"}`)
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					return nil, nil, fmt.Errorf("bad bucket bound %q", leStr)
				}
			}
			buckets = append(buckets, histBucket{le: le, cum: int(v)})
			continue
		}
		samples[fields[0]] = v
	}
	return samples, buckets, sc.Err()
}

// bucketLowerBound returns the lower edge of the histogram bucket that
// holds the p-quantile observation (same nearest-rank convention as the
// harness's own pct helper), i.e. a value the true server-side quantile
// is known to be at or above.
func bucketLowerBound(buckets []histBucket, count int, p float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	rank := int(p*float64(count-1)) + 1 // 1-based order statistic
	lower := 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			return lower
		}
		lower = b.le
	}
	return lower
}

func getStats(client *http.Client, base string) evmd.Stats {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return evmd.Stats{}
	}
	defer resp.Body.Close()
	var st evmd.Stats
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func runCount(client *http.Client, base string) int {
	resp, err := client.Get(base + "/v1/runs")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var list struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return -1
	}
	return list.Count
}

// verifyDeterminism compares, for up to maxSeeds seeds, the event
// streams of several daemon runs against a serial in-process execution
// of the identical spec. Any divergence — across tenants, or between
// service and serial — is a hard failure.
func verifyDeterminism(client *http.Client, base string, outcomes []outcome, scenario string, horizon time.Duration, maxSeeds, perSeed int) (string, error) {
	bySeed := make(map[uint64][]string)
	var seedOrder []uint64
	for _, oc := range outcomes {
		if oc.status != http.StatusAccepted || oc.runID == "" {
			continue
		}
		if len(bySeed[oc.seed]) == 0 {
			seedOrder = append(seedOrder, oc.seed)
		}
		if len(bySeed[oc.seed]) < perSeed {
			bySeed[oc.seed] = append(bySeed[oc.seed], oc.runID)
		}
	}
	sort.Slice(seedOrder, func(i, j int) bool { return seedOrder[i] < seedOrder[j] })
	if len(seedOrder) > maxSeeds {
		seedOrder = seedOrder[:maxSeeds]
	}
	events, runsCompared := 0, 0
	for _, seed := range seedOrder {
		spec := evm.RunSpec{Scenario: scenario, Seed: seed, Horizon: horizon}
		serial, err := evmd.SerialEvents(spec)
		if err != nil {
			return "", fmt.Errorf("serial %s: %w", spec.Label(), err)
		}
		for _, id := range bySeed[seed] {
			streamed, err := fetchEvents(client, base, id)
			if err != nil {
				return "", fmt.Errorf("run %s: %w", id, err)
			}
			if len(streamed) != len(serial) {
				return "", fmt.Errorf("run %s (seed %d): %d streamed events vs %d serial",
					id, seed, len(streamed), len(serial))
			}
			for i := range streamed {
				if streamed[i] != serial[i] {
					return "", fmt.Errorf("run %s (seed %d) diverges at event %d:\n  daemon: %+v\n  serial: %+v",
						id, seed, i, streamed[i], serial[i])
				}
			}
			events += len(streamed)
			runsCompared++
		}
	}
	return fmt.Sprintf("%d seeds x %d runs byte-identical to serial (%d events compared)",
		len(seedOrder), runsCompared, events), nil
}

func fetchEvents(client *http.Client, base, runID string) ([]evmd.EventRecord, error) {
	resp, err := client.Get(base + "/v1/runs/" + runID + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events status %d", resp.StatusCode)
	}
	var out []evmd.EventRecord
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var rec evmd.EventRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
