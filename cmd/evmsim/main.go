// Command evmsim runs the closed-loop gas-plant simulation (the paper's
// hardware-in-loop testbed, Fig. 5) and regenerates the Fig. 6(b) series.
//
// Usage:
//
//	evmsim -fault 300s -horizon 1000s -window 1200 -csv fig6.csv
//	evmsim -crash            # silent node crash instead of wrong output
//	evmsim -per 0.2          # 20% packet loss on every link
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"evm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		faultAt = flag.Duration("fault", 300*time.Second, "fault injection time (T1)")
		horizon = flag.Duration("horizon", 1000*time.Second, "simulation horizon")
		window  = flag.Int("window", 1200, "backup deviation window in control cycles")
		crash   = flag.Bool("crash", false, "crash the primary instead of injecting a wrong output")
		per     = flag.Float64("per", 0, "forced packet error rate on every link")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		useVM   = flag.Bool("vm", false, "run the control law as EVM byte code")
		csvPath = flag.String("csv", "", "write the recorded series to this CSV file")
	)
	flag.Parse()

	cfg := evm.DefaultGasPlantConfig()
	cfg.Seed = *seed
	cfg.DeviationWindow = *window
	cfg.PER = *per
	cfg.UseVM = *useVM
	s, err := evm.NewGasPlant(cfg)
	if err != nil {
		return err
	}

	// The whole experiment is declarative: the fault is a plan applied to
	// the cell, and observability rides the typed event bus.
	var failoverAt time.Duration
	s.Cell.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.FailoverEvent:
			if failoverAt == 0 {
				failoverAt = e.At
			}
			fmt.Printf("[%10v] failover: %s %v -> %v\n", e.At, e.Task, e.From, e.To)
		case evm.FaultEvent:
			fmt.Printf("[%10v] fault injected: %s node %v\n", e.At, e.Kind, e.Node)
		}
	})
	plan := evm.PrimaryFaultPlan(*faultAt)
	if *crash {
		plan = evm.PrimaryCrashPlan(*faultAt)
	}
	if err := s.Cell.ApplyFaultPlan(plan); err != nil {
		return err
	}

	fmt.Printf("gas plant under EVM control: cycle=%v, window=%d cycles, per=%.2f, plan=%s\n",
		cfg.ControlPeriod, cfg.DeviationWindow, cfg.PER, plan.Label())
	if !*crash {
		fmt.Printf("at %v Ctrl-A will output 75%% instead of %.2f%%\n", *faultAt, s.Plant.NominalValvePct())
	}
	s.Run(*horizon)

	fmt.Println("--- summary ---")
	fmt.Printf("fault at           %v\n", *faultAt)
	if failoverAt > 0 {
		fmt.Printf("fail-over at       %v (detection+arbitration %v)\n", failoverAt, failoverAt-*faultAt)
	} else {
		fmt.Println("fail-over          did not occur")
	}
	fmt.Printf("active controller  %v\n", s.ActiveController())
	fmt.Printf("LTS level          %.2f%%\n", s.Plant.LTSLevelPct())
	fmt.Printf("gateway            %d broadcasts, %d actuations ok, %d denied\n",
		s.GW.Stats().SensorBroadcasts, s.GW.Stats().ActuationsOK, s.GW.Stats().ActuationsDenied)
	lat := s.ActuationLatencies()
	if len(lat) > 0 {
		var max time.Duration
		for _, l := range lat {
			if l > max {
				max = l
			}
		}
		fmt.Printf("actuation latency  max %v (%.1f%% of the control cycle)\n",
			max, 100*max.Seconds()/cfg.ControlPeriod.Seconds())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.Recorder().WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("series written to  %s\n", *csvPath)
	}
	return nil
}
