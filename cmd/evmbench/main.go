// Command evmbench regenerates every experiment in DESIGN.md §4 and
// prints paper-style result rows. Run all experiments or select one:
//
//	evmbench            # everything
//	evmbench -exp e3    # only the MAC lifetime comparison
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"evm"
	"evm/internal/bqp"
	"evm/internal/mac"
	"evm/internal/radio"
	"evm/internal/rtos"
	"evm/internal/sim"
	"evm/internal/trace"
	"evm/internal/vm"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1..e10, fed, policy, pipe, sever, ota, grid or all)")
	trend := flag.String("trend", "", "directory holding BENCH_pr*.json artifacts; print the cross-PR benchmark trend table and exit")
	flag.StringVar(&eventDir, "events", "", "directory for per-run event CSVs from the grid sweep (empty = off)")
	flag.Parse()
	if *trend != "" {
		if err := trendTable(*trend); err != nil {
			log.Fatal(err)
		}
		return
	}
	experiments := map[string]func() error{
		"e1": e1Fig6, "e2": e2Failover, "e3": e3MACLifetime, "e4": e4SyncJitter,
		"e5": e5ControlCycle, "e6": e6Migration, "e7": e7BQP, "e8": e8Degradation,
		"e9": e9Admission, "e10": e10Attestation, "fed": fedCampus,
		"policy": policyCompare, "pipe": pipeLine, "sever": severDemo, "ota": otaRollouts, "grid": gridSweep,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "fed", "policy", "pipe", "sever", "ota", "grid"}
	if *exp != "all" {
		fn, ok := experiments[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, name := range order {
		if err := experiments[name](); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}
}

func header(id, title string) {
	fmt.Printf("=== %s: %s ===\n", id, title)
}

// e1Fig6 reruns the Fig. 6(b) timeline at the paper's own pacing.
func e1Fig6() error {
	header("E1 / Fig. 6(b)", "LTS fail-over timeline (fault 300s, paper switch ~600s)")
	cfg := evm.DefaultGasPlantConfig()
	cfg.DeviationWindow = 1200 // ~300 s deliberation as in the paper's plot
	s, err := evm.NewGasPlant(cfg)
	if err != nil {
		return err
	}
	res, err := s.RunFig6(300*time.Second, 1000*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("T1 fault injected      %8.0fs   (paper: 300s)\n", res.FaultAt.Seconds())
	fmt.Printf("T2 backup activated    %8.0fs   (paper: ~600s)\n", res.FailoverAt.Seconds())
	fmt.Printf("LTS level before/min/end   %.1f / %.1f / %.1f %%\n",
		res.LevelBefore, res.LevelMin, res.LevelEnd)
	fmt.Printf("tower feed nominal/peak    %.1f / %.1f kmol/h\n", res.FlowNominal, res.FlowPeak)
	fmt.Printf("active controller          %v (was %v)\n", s.ActiveController(), evm.GasCtrlAID)
	return nil
}

// e2Failover sweeps packet loss and measures fail-over latency.
func e2Failover() error {
	header("E2", "fail-over latency vs packet loss (10 trials each)")
	fmt.Println("  PER   mean-latency   success   false-positives")
	for _, per := range []float64{0, 0.1, 0.2, 0.3} {
		var total time.Duration
		ok, falsePos := 0, 0
		const trials = 10
		for i := 0; i < trials; i++ {
			cfg := evm.DefaultGasPlantConfig()
			cfg.Seed = uint64(i + 1)
			cfg.PER = per
			cfg.DeviationWindow = 8
			s, err := evm.NewGasPlant(cfg)
			if err != nil {
				return err
			}
			var failAt time.Duration
			s.Cell.Events().Subscribe(func(ev evm.Event) {
				if _, isFO := ev.(evm.FailoverEvent); isFO && failAt == 0 {
					failAt = ev.When()
				}
			})
			s.Run(30 * time.Second)
			if failAt > 0 {
				falsePos++
				continue
			}
			faultAt := s.Cell.Now()
			s.InjectPrimaryFault()
			s.Run(120 * time.Second)
			if failAt > 0 {
				total += failAt - faultAt
				ok++
			}
		}
		mean := time.Duration(0)
		if ok > 0 {
			mean = total / time.Duration(ok)
		}
		fmt.Printf("  %.1f   %12v   %d/%d       %d\n", per, mean.Round(time.Millisecond), ok, trials-falsePos, falsePos)
	}
	return nil
}

// e3MACLifetime prints the RT-Link vs B-MAC vs S-MAC lifetime table.
func e3MACLifetime() error {
	header("E3", "battery lifetime vs duty cycle (years; paper: RT-Link ~1.8y @5%)")
	p := mac.DefaultParams()
	p.EventRateHz = 0.1
	fmt.Println("  duty   RT-Link   B-MAC   S-MAC")
	for _, d := range []float64{0.01, 0.02, 0.05, 0.10, 0.25} {
		rtCfg, err := mac.RTLinkForDutyCycle(d)
		if err != nil {
			return err
		}
		rt, err := mac.RTLink(p, rtCfg)
		if err != nil {
			return err
		}
		bCfg, err := mac.BMACForDutyCycle(d)
		if err != nil {
			return err
		}
		bm, err := mac.BMAC(p, bCfg)
		if err != nil {
			return err
		}
		sCfg, err := mac.SMACForDutyCycle(d)
		if err != nil {
			return err
		}
		sm, err := mac.SMAC(p, sCfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %4.0f%%  %7.2f  %6.2f  %6.2f\n",
			d*100, rt.Lifetime.Hours()/8760, bm.Lifetime.Hours()/8760, sm.Lifetime.Hours()/8760)
	}
	return nil
}

// e4SyncJitter measures the AM-carrier synchronization jitter.
func e4SyncJitter() error {
	header("E4", "AM time-sync jitter (paper: sub-150us)")
	eng := sim.New()
	med := radio.NewMedium(eng, sim.NewRNG(1), radio.DefaultConfig())
	for i := 1; i <= 10; i++ {
		if _, err := med.Attach(radio.NodeID(i), radio.Position{X: float64(i)}, nil, radio.DefaultEnergyModel()); err != nil {
			return err
		}
	}
	var us []float64
	for k := 0; k < 10_000; k++ {
		for _, j := range med.BroadcastSync() {
			us = append(us, float64(j.Microseconds()))
		}
	}
	st := trace.Summarize(us)
	fmt.Printf("  pulses %d: mean %.1fus  p95 %.1fus  p99 %.1fus  max %.1fus\n",
		st.N, st.Mean, st.P95, st.P99, st.Max)
	return nil
}

// e5ControlCycle measures actuation latency vs the 250ms cycle.
func e5ControlCycle() error {
	header("E5", "control cycle latency (paper objective: <=1/3 of a <=250ms cycle)")
	s, err := evm.NewGasPlant(evm.DefaultGasPlantConfig())
	if err != nil {
		return err
	}
	s.Run(120 * time.Second)
	lats := s.ActuationLatencies()
	st := trace.DurationStats(lats)
	cycle := 250 * time.Millisecond
	fmt.Printf("  actuations %d: mean %v  p99 %v  max %v (%.1f%% of cycle)\n",
		st.N,
		time.Duration(st.Mean).Round(time.Microsecond),
		time.Duration(st.P99).Round(time.Microsecond),
		time.Duration(st.Max).Round(time.Microsecond),
		100*st.Max/float64(cycle))
	return nil
}

// e6Migration measures task-migration time vs state size.
func e6Migration() error {
	header("E6", "task migration cost vs state size (TDMA frames)")
	fmt.Println("  state    time      frames")
	for _, size := range []int{64, 512, 2048, 8192} {
		d, err := migrateOnce(size)
		if err != nil {
			return err
		}
		frames := d.Seconds() / 0.25
		fmt.Printf("  %5dB   %8v  %6.1f\n", size, d.Round(time.Millisecond), frames)
	}
	return nil
}

type blobLogic struct{ state []byte }

func (l *blobLogic) Step(input, dt float64) (float64, error) { return input, nil }
func (l *blobLogic) Snapshot() ([]byte, error)               { return l.state, nil }
func (l *blobLogic) Restore(b []byte) error {
	l.state = append([]byte(nil), b...)
	return nil
}

func migrateOnce(size int) (time.Duration, error) {
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 1},
		evm.WithNodes(1, 2, 3, 4), evm.WithPER(0))
	if err != nil {
		return 0, err
	}
	vc := evm.VCConfig{
		Name: "mig", Head: 4, Gateway: 1,
		Tasks: []evm.TaskSpec{{
			ID: "t", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []evm.NodeID{2},
			DeviationTol: 1, DeviationWindow: 3, SilenceWindow: 8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return &blobLogic{state: make([]byte, size)}, nil
			},
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		return 0, err
	}
	cell.Run(time.Second)
	start := cell.Now()
	var done time.Duration
	cell.Events().Subscribe(func(ev evm.Event) {
		if _, isMig := ev.(evm.MigrationEvent); isMig && done == 0 {
			done = ev.When()
		}
	})
	if err := cell.Node(2).MigrateTask("t", 3); err != nil {
		return 0, err
	}
	cell.Run(300 * time.Second)
	if done == 0 {
		return 0, fmt.Errorf("migration of %dB never completed", size)
	}
	return done - start, nil
}

// e7BQP compares assignment solvers.
func e7BQP() error {
	header("E7", "runtime task-assignment optimization (BQP anneal vs greedy vs optimal)")
	rng := sim.NewRNG(17)
	fmt.Println("  size      anneal/opt  greedy/opt")
	var annGap, greedyGap float64
	n := 0
	for i := 0; i < 25; i++ {
		p := randomProblem(rng, 5, 3)
		opt, err := bqp.SolveExhaustive(p)
		if err != nil {
			return err
		}
		g, err := bqp.SolveGreedy(p)
		if err != nil {
			return err
		}
		a, err := bqp.SolveAnneal(p, rng.Fork(), 20_000)
		if err != nil {
			return err
		}
		if opt.Cost > 0 {
			annGap += a.Cost / opt.Cost
			greedyGap += g.Cost / opt.Cost
			n++
		}
	}
	fmt.Printf("  5tx3n     %9.3f  %9.3f   (25 random instances)\n",
		annGap/float64(n), greedyGap/float64(n))
	return nil
}

func randomProblem(rng *sim.RNG, tasks, nodes int) *bqp.Problem {
	p := &bqp.Problem{
		Cost: make([][]float64, tasks),
		Pair: make([][]float64, tasks),
		Util: make([]float64, tasks),
		Cap:  make([]float64, nodes),
	}
	for t := 0; t < tasks; t++ {
		p.Cost[t] = make([]float64, nodes)
		p.Pair[t] = make([]float64, tasks)
		for nn := 0; nn < nodes; nn++ {
			p.Cost[t][nn] = rng.Float64() * 10
		}
		p.Util[t] = 0.05 + rng.Float64()*0.1
	}
	for nn := 0; nn < nodes; nn++ {
		p.Cap[nn] = 1
	}
	return p
}

// e8Degradation compares coverage with and without EVM reorganization.
func e8Degradation() error {
	header("E8", "graceful degradation: task coverage vs failed nodes")
	fmt.Println("  failures   EVM   static")
	for _, kills := range []int{0, 1, 2, 3} {
		withEVM, err := coverageAfterKills(kills, true)
		if err != nil {
			return err
		}
		static, err := coverageAfterKills(kills, false)
		if err != nil {
			return err
		}
		fmt.Printf("  %8d   %.2f  %.2f\n", kills, withEVM, static)
	}
	return nil
}

func coverageAfterKills(kills int, reorganize bool) (float64, error) {
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 1},
		evm.WithNodeCount(6), evm.WithPER(0))
	if err != nil {
		return 0, err
	}
	vc := evm.VCConfig{
		Name: "deg", Head: 6, Gateway: 1,
		Tasks: []evm.TaskSpec{{
			ID: "t", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []evm.NodeID{2, 3, 4, 5},
			DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return evm.NewPIDLogic(evm.PIDParams{Kp: 1, Ki: 0.1, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		return 0, err
	}
	feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		return 0, err
	}
	defer feed.Stop()
	cell.Run(5 * time.Second)
	if !reorganize {
		for _, n := range cell.Nodes() {
			n.Stop()
		}
	}
	// The kill sequence is a declarative plan: one crash every 10 s.
	steps := make([]evm.FaultStep, 0, kills)
	for k := 0; k < kills; k++ {
		steps = append(steps, evm.FaultStep{
			At:        time.Duration(k) * 10 * time.Second,
			CrashNode: evm.NodeID(2 + k),
		})
	}
	if err := cell.ApplyFaultPlan(evm.FaultPlan{Name: "sequential-kills", Steps: steps}); err != nil {
		return 0, err
	}
	cell.Run(time.Duration(kills) * 10 * time.Second)
	return evm.EvaluateQoS(vc, cell.Nodes()).CoverageRatio, nil
}

// e9Admission sweeps offered utilization against both admission tests.
func e9Admission() error {
	header("E9", "schedulability-gated admission (acceptance ratio, 200 sets each)")
	rng := sim.NewRNG(5)
	fmt.Println("  offered-U   UB     RTA")
	for _, u := range []float64{0.3, 0.5, 0.7, 0.8, 0.9, 1.0} {
		ub, rta := 0, 0
		const trials = 200
		for i := 0; i < trials; i++ {
			ts := rtos.AssignRM(randomTaskSet(rng, 5, u))
			if rtos.Schedulable(ts, rtos.TestUB) {
				ub++
			}
			if rtos.Schedulable(ts, rtos.TestRTA) {
				rta++
			}
		}
		fmt.Printf("  %9.1f   %.2f   %.2f\n", u, float64(ub)/trials, float64(rta)/trials)
	}
	return nil
}

func randomTaskSet(rng *sim.RNG, n int, targetUtil float64) rtos.TaskSet {
	ts := make(rtos.TaskSet, 0, n)
	per := targetUtil / float64(n)
	for i := 0; i < n; i++ {
		period := time.Duration(10+rng.Intn(200)) * time.Millisecond
		u := per * (0.5 + rng.Float64())
		wcet := time.Duration(float64(period) * u)
		if wcet <= 0 {
			wcet = time.Millisecond
		}
		if wcet > period {
			wcet = period
		}
		ts = append(ts, rtos.Task{ID: rtos.TaskID(fmt.Sprintf("t%d", i)), Period: period, WCET: wcet})
	}
	return ts
}

// e10Attestation measures corruption detection on migrated capsules.
func e10Attestation() error {
	header("E10", "software attestation: corruption detection on capsules")
	rng := sim.NewRNG(3)
	for _, size := range []int{64, 1024, 16384} {
		code := make([]byte, size)
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		c := vm.Capsule{TaskID: "att", Version: 1, Code: code}
		enc, err := c.Encode()
		if err != nil {
			return err
		}
		detected := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			bad := append([]byte(nil), enc...)
			pos := 2 + rng.Intn(len(bad)-2)
			bad[pos] ^= 1 << uint(rng.Intn(8))
			if _, err := vm.Decode(bad); err != nil {
				detected++
			}
		}
		fmt.Printf("  code %6dB: %d/%d single-bit corruptions detected\n", size, detected, trials)
	}
	return nil
}

// eventDir is the -events flag: per-run event CSV capture for the grid.
var eventDir string

// fedCampus demonstrates the federation subsystem: the two-cell
// campus-failover scenario (one cell dies wholesale, its loop resumes
// across the backbone) plus a seeded refinery sweep under a whole-cell
// kill plan on the parallel Runner.
func fedCampus() error {
	header("FED", "campus federation: whole-cell outage -> backbone escalation")
	exp, err := evm.BuildScenario(evm.RunSpec{Scenario: evm.ScenarioCampusFailover, Seed: 1})
	if err != nil {
		return err
	}
	defer exp.Cleanup()
	var overloadAt, migratedAt time.Duration
	var mig evm.InterCellMigrationEvent
	resumed := 0
	exp.Campus.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.CellOverloadEvent:
			if overloadAt == 0 {
				overloadAt = e.At
			}
		case evm.InterCellMigrationEvent:
			if migratedAt == 0 {
				migratedAt, mig = e.At, e
			}
		case evm.CellEvent:
			if act, ok := e.Inner.(evm.ActuationEvent); ok && act.Task == "w-loop" && e.Cell == "east" {
				resumed++
			}
		}
	})
	exp.Campus.Run(30 * time.Second)
	if migratedAt == 0 {
		return fmt.Errorf("fed: whole-cell outage produced no inter-cell migration")
	}
	fmt.Printf("  cell west killed              10s\n")
	fmt.Printf("  overload detected         %8v\n", overloadAt)
	fmt.Printf("  task resumed in peer      %8v   (%s: %s/%d -> %s/%d)\n",
		migratedAt, mig.Task, mig.FromCell, mig.From, mig.ToCell, mig.To)
	fmt.Printf("  actuations after failover %8d   (from cell east)\n", resumed)
	bb := exp.Campus.Backbone().Stats()
	fmt.Printf("  backbone sent/delivered   %5d/%d\n", bb.Sent, bb.Delivered)

	// Refinery sweep: 4 cells x 16 nodes, kill unit-a at 10s, 4 seeds.
	kill := evm.KillNodesPlan("kill-unit-a", 10*time.Second, evm.RefineryMembers()...)
	specs := make([]evm.RunSpec, 0, 4)
	for seed := uint64(1); seed <= 4; seed++ {
		specs = append(specs, evm.RunSpec{
			Scenario: evm.ScenarioRefinery, Seed: seed, Horizon: 25 * time.Second,
			Faults: kill, FaultCell: "unit-a",
		})
	}
	start := time.Now() //evm:allow-wallclock host benchmark stopwatch around whole runs; never read inside the simulation
	results := (&evm.Runner{}).Run(specs)
	elapsed := time.Since(start) //evm:allow-wallclock host benchmark stopwatch
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Spec.Label(), r.Err)
		}
	}
	agg := evm.Aggregate(results)[evm.ScenarioRefinery]
	fmt.Printf("  refinery sweep: %d runs (4 cells x 16 nodes) in %v wall\n",
		len(results), elapsed.Round(time.Millisecond))
	fmt.Printf("    intercell migrations  %s\n", agg[evm.MetricInterCellMigrations])
	fmt.Printf("    tasks alive at end    %s\n", agg["tasks_alive"])
	fmt.Printf("    backbone delivered    %s\n", agg[evm.MetricBackboneDelivered])
	return nil
}

// policyCompare sweeps the three placement policies over identical
// seeds on the refinery-ring scenario: an explicit ring backbone whose
// far side is lossy, with a whole-cell outage window on unit-a
// (killed at 10s, recovered at 22s) and homeward rebalancing. The
// routing-aware campus-BQP policy keeps every escalation on clean
// one-hop links, so the outage resolves in one coordinator tick; the
// topology-blind least-loaded policy ships a task into the lossy
// two-hop path and pays extra overload ticks (and backbone drops) for
// it.
func policyCompare() error {
	header("POLICY", "placement policies on a lossy ring backbone (refinery, outage 10s-22s)")
	plan := evm.RefineryOutagePlan(10*time.Second, 22*time.Second)
	seeds := []uint64{1, 2, 3, 4}
	fmt.Println("  policy         overloads  migrations  rebalances  bb-drops  foreign-end  home-end")
	type row struct {
		policy    string
		overloads float64
	}
	var rows []row
	for _, pol := range []string{evm.PolicyLeastLoaded, evm.PolicyCampusBQP, evm.PolicyAffinity} {
		specs := make([]evm.RunSpec, 0, len(seeds))
		for _, seed := range seeds {
			specs = append(specs, evm.RunSpec{
				Scenario: evm.ScenarioRefineryRing, Seed: seed, Horizon: 35 * time.Second,
				Faults: plan, FaultCell: "unit-a", Policy: pol,
			})
		}
		results := (&evm.Runner{}).Run(specs)
		for _, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.Spec.Label(), r.Err)
			}
			if r.Policy != pol {
				return fmt.Errorf("%s: builder resolved policy %q, want %q", r.Spec.Label(), r.Policy, pol)
			}
		}
		agg := evm.Aggregate(results)[evm.ScenarioRefineryRing]
		fmt.Printf("  %-13s  %9.2f  %10.2f  %10.2f  %8.2f  %11.2f  %8.2f\n",
			results[0].Policy,
			agg[evm.MetricCellOverloads].Mean,
			agg[evm.MetricInterCellMigrations].Mean,
			agg[evm.MetricRebalances].Mean,
			agg[evm.MetricBackboneDropped].Mean,
			agg["tasks_foreign"].Mean,
			agg["tasks_home"].Mean)
		rows = append(rows, row{policy: pol, overloads: agg[evm.MetricCellOverloads].Mean})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].overloads < rows[j].overloads })
	fmt.Printf("  fewest overload ticks: %s (same seeds, same faults — only the policy differs)\n",
		rows[0].policy)
	return nil
}

// pipeLine demonstrates the multi-hop line cell: sensor snapshots relay
// down the line, actuations relay back, and a far-end primary crash
// fails over across the line without losing the actuation path.
func pipeLine() error {
	header("PIPE", "multi-hop pipeline line cell (BuildLineSchedule + static line routes)")
	exp, err := evm.BuildScenario(evm.RunSpec{Scenario: evm.ScenarioPipeline, Seed: 1})
	if err != nil {
		return err
	}
	defer exp.Cleanup()
	log := exp.Cell.Events().Log()
	exp.Cell.Run(10 * time.Second)
	isAct := func(ev evm.Event) bool { _, ok := ev.(evm.ActuationEvent); return ok }
	pre := log.Count(isAct)
	if err := exp.Cell.ApplyFaultPlan(evm.PipelinePrimaryCrashPlan(0)); err != nil {
		return err
	}
	exp.Cell.Run(20 * time.Second)
	post := log.Count(isAct) - pre
	m := exp.Metrics()
	fmt.Printf("  actuations at gateway   %4d before crash, %d after (relayed hop by hop)\n", pre, post)
	fmt.Printf("  fail-over across line   primary %d -> active %v\n", evm.PipePrimary, m["active_controller"])
	fmt.Printf("  fragments relayed       %6.0f\n", m["relayed_frags"])
	fmt.Printf("  mean line duty cycle    %6.3f (mesh equivalent: %.3f)\n",
		m["line_duty"], float64(1+3+3*4)/50.0) // sync + 3 own + 12 listen slots
	return nil
}

// severDemo runs the link-dynamics acceptance scenario: the refinery
// ring loses unit-a at 10s and its d-a link at 12s; the recovered
// unit-a takes its loops back through the prepare/commit handshake, with
// unit-d's traffic forced the long way round. The invariant harness
// replays the stream and must find nothing.
func severDemo() error {
	header("SEVER", "ring sever + prepare/commit rebalance (outage 10s-22s, d-a link down 12s-30s)")
	exp, err := evm.BuildScenario(evm.RunSpec{Scenario: evm.ScenarioRefineryRingSever, Seed: 1})
	if err != nil {
		return err
	}
	defer exp.Cleanup()
	log2 := exp.Campus.Events().Log()
	exp.Campus.Run(40 * time.Second)
	rebalances, longWay := 0, 0
	var firstLong []string
	for _, ev := range log2.Events() {
		switch e := ev.(type) {
		case evm.InterCellMigrationEvent:
			if e.Rebalance {
				rebalances++
			}
		case evm.BackboneRouteEvent:
			if len(e.Path) == 4 {
				longWay++
				if firstLong == nil {
					firstLong = e.Path
				}
			}
		}
	}
	violations := evm.CheckEvents(log2.Events(), evm.DefaultInvariants()...)
	bb := exp.Campus.Backbone().Stats()
	fmt.Printf("  rebalanced home            %5d loops (prepare/commit handshake)\n", rebalances)
	fmt.Printf("  long-way transfers         %5d (e.g. %v)\n", longWay, firstLong)
	fmt.Printf("  backbone sent/delivered    %5d/%d (dropped %d)\n", bb.Sent, bb.Delivered, bb.Dropped)
	fmt.Printf("  invariant violations       %5d (single-master, demoted-silence, route-monotonicity)\n",
		len(violations))
	for _, v := range violations {
		fmt.Printf("    %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("sever: %d invariant violations", len(violations))
	}
	return nil
}

// otaRollouts compares the three rollout strategies on identical seeds:
// the ota-campus federation upgrades every loop from capsule v1 to v2
// over the lossy ring backbone, and the staging strategy decides how the
// campus trades upgrade latency against blast radius. A second pass
// seeds a bad capsule (attests cleanly, never actuates) and shows the
// health window tripping an automatic rollback.
func otaRollouts() error {
	header("OTA", "staged capsule rollouts: strategy comparison + bad-capsule rollback")
	fmt.Println("  strategy      stages  deliveries  completed-at  bb sent/delivered  rollbacks")
	for _, strategy := range []string{evm.RolloutCanaryCell, evm.RolloutCellByCell, evm.RolloutAllAtOnce} {
		campus, err := evm.NewOTACampus(1)
		if err != nil {
			return err
		}
		log := campus.Events().Log()
		var rollout *evm.Rollout
		campus.Engine().After(evm.OTARolloutAt, func() {
			rollout, err = campus.StartRollout(evm.OTACampusRolloutSpec(strategy))
		})
		campus.Run(30 * time.Second)
		if err != nil {
			campus.Stop()
			return err
		}
		deliveries, rollbacks := 0, 0
		var completedAt time.Duration
		for _, ev := range log.Events() {
			switch e := ev.(type) {
			case evm.CapsuleDeliveryEvent:
				deliveries++
			case evm.RollbackEvent:
				rollbacks++
			case evm.RolloutEvent:
				if e.Phase == evm.RolloutPhaseComplete {
					completedAt = e.At
				}
			}
		}
		bb := campus.Backbone().Stats()
		fmt.Printf("  %-12s  %6d  %10d  %12v  %9d/%d  %9d\n",
			strategy, len(rollout.Stages()), deliveries, completedAt,
			bb.Sent, bb.Delivered, rollbacks)
		if rollout.State() != evm.RolloutComplete {
			campus.Stop()
			return fmt.Errorf("ota: %s rollout ended %s (%s)", strategy, rollout.State(), rollout.Reason())
		}
		campus.Stop()
	}

	campus, err := evm.NewOTACampus(1)
	if err != nil {
		return err
	}
	defer campus.Stop()
	log := campus.Events().Log()
	campus.Run(5 * time.Second)
	bad, err := evm.OTABadCapsule("a-press-0", 3)
	if err != nil {
		return err
	}
	if err := campus.Capsules().Register(bad); err != nil {
		return err
	}
	rollout, err := campus.StartRollout(evm.RolloutSpec{
		Tasks:          []string{"a-press-0"},
		Version:        3,
		Strategy:       evm.RolloutAllAtOnce,
		HealthWindow:   1500 * time.Millisecond,
		ActuationBound: time.Second,
	})
	if err != nil {
		return err
	}
	campus.Run(10 * time.Second)
	for _, ev := range log.Events() {
		if rb, ok := ev.(evm.RollbackEvent); ok {
			fmt.Printf("  bad capsule:  v%d rolled back to v%d at %v (%s, cells %v)\n",
				rb.FromVersion, rb.ToVersion, rb.At, rb.Reason, rb.Cells)
		}
	}
	if rollout.State() != evm.RolloutRolledBack {
		return fmt.Errorf("ota: bad capsule ended %s, want rolled-back", rollout.State())
	}
	return nil
}

// trendRow is one benchmark row of a BENCH_pr*.json artifact. The fixed
// columns decode into fields; every other numeric key — the custom units
// benchmarks report via b.ReportMetric, such as the span-derived latency
// percentiles (failover_p95_ms, handshake_p99_ms, ...) — lands in Extra
// so trendTable can chart them across PRs without a schema change per
// metric.
type trendRow struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	Extra       map[string]float64
}

func (r *trendRow) UnmarshalJSON(data []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for k, v := range m {
		switch k {
		case "name":
			if err := json.Unmarshal(v, &r.Name); err != nil {
				return err
			}
		case "ns_per_op":
			if err := json.Unmarshal(v, &r.NsPerOp); err != nil {
				return err
			}
		case "allocs/op":
			if err := json.Unmarshal(v, &r.AllocsPerOp); err != nil {
				return err
			}
		case "B/op":
			if err := json.Unmarshal(v, &r.BytesPerOp); err != nil {
				return err
			}
		case "iters":
			// run count, not a metric
		default:
			var f float64
			if json.Unmarshal(v, &f) == nil {
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[k] = f
			}
		}
	}
	return nil
}

// trendTable reads every BENCH_pr*.json artifact in dir and prints one
// row per benchmark with its ns/op across PRs — the cross-PR performance
// trend (CI emits one artifact per PR; collect them into a directory and
// run `evmbench -trend <dir>`). Artifacts recorded with -benchmem carry
// allocation counts too; when any artifact has them, a second table with
// allocs/op columns follows the timing table. Benchmarks that report
// custom metrics (span-derived latency percentiles and friends) get a
// third table with one row per benchmark/metric pair.
func trendTable(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_pr*.json"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_pr*.json artifacts in %s", dir)
	}
	type benchRow = trendRow
	type artifact struct {
		PR         int        `json:"pr"`
		Benchmarks []benchRow `json:"benchmarks"`
	}
	perPR := make(map[int]map[string]benchRow)
	names := make(map[string]bool)
	var prs []int
	haveAllocs := make(map[int]bool)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var a artifact
		if err := json.Unmarshal(data, &a); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if _, dup := perPR[a.PR]; dup {
			return fmt.Errorf("duplicate artifact for PR %d", a.PR)
		}
		rows := make(map[string]benchRow, len(a.Benchmarks))
		for _, bm := range a.Benchmarks {
			rows[bm.Name] = bm
			names[bm.Name] = true
			if bm.AllocsPerOp > 0 || bm.BytesPerOp > 0 {
				haveAllocs[a.PR] = true
			}
		}
		perPR[a.PR] = rows
		prs = append(prs, a.PR)
	}
	sort.Ints(prs)
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Printf("%-40s", "benchmark (ms/op)")
	for _, pr := range prs {
		fmt.Printf("  %10s", fmt.Sprintf("pr%d", pr))
	}
	fmt.Println()
	for _, name := range sorted {
		fmt.Printf("%-40s", name)
		for _, pr := range prs {
			if bm, ok := perPR[pr][name]; ok {
				fmt.Printf("  %10.3f", bm.NsPerOp/1e6)
			} else {
				fmt.Printf("  %10s", "-")
			}
		}
		fmt.Println()
	}
	if len(haveAllocs) > 0 {
		// Allocation table: only PRs benchmarked with -benchmem get a column;
		// earlier artifacts predate alloc recording and stay timing-only.
		var allocPRs []int
		for _, pr := range prs {
			if haveAllocs[pr] {
				allocPRs = append(allocPRs, pr)
			}
		}
		fmt.Println()
		fmt.Printf("%-40s", "benchmark (allocs/op)")
		for _, pr := range allocPRs {
			fmt.Printf("  %10s", fmt.Sprintf("pr%d", pr))
		}
		fmt.Println()
		for _, name := range sorted {
			fmt.Printf("%-40s", name)
			for _, pr := range allocPRs {
				if bm, ok := perPR[pr][name]; ok && (bm.AllocsPerOp > 0 || bm.BytesPerOp > 0) {
					fmt.Printf("  %10.0f", bm.AllocsPerOp)
				} else {
					fmt.Printf("  %10s", "-")
				}
			}
			fmt.Println()
		}
	}
	// Custom-metric table: one row per benchmark/metric pair, covering
	// everything reported via ReportMetric — the span-derived latency
	// percentiles land here.
	type metricRow struct{ bench, key string }
	var metricRows []metricRow
	for _, name := range sorted {
		keySet := make(map[string]bool)
		for _, pr := range prs {
			if bm, ok := perPR[pr][name]; ok {
				for k := range bm.Extra {
					keySet[k] = true
				}
			}
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			metricRows = append(metricRows, metricRow{name, k})
		}
	}
	if len(metricRows) == 0 {
		return nil
	}
	fmt.Println()
	fmt.Printf("%-40s", "benchmark metric")
	for _, pr := range prs {
		fmt.Printf("  %10s", fmt.Sprintf("pr%d", pr))
	}
	fmt.Println()
	for _, row := range metricRows {
		fmt.Printf("%-40s", row.bench+" "+row.key)
		for _, pr := range prs {
			if bm, ok := perPR[pr][row.bench]; ok {
				if v, ok := bm.Extra[row.key]; ok {
					fmt.Printf("  %10.3f", v)
					continue
				}
			}
			fmt.Printf("  %10s", "-")
		}
		fmt.Println()
	}
	return nil
}

// gridSweep exercises the scenario registry and the parallel Runner: a
// scenario x seed x fault-plan grid fans out across worker goroutines and
// the per-run metrics are aggregated per scenario (the ROADMAP's
// "hundreds of seeded runs" workflow).
func gridSweep() error {
	// One worker per core, but always enough to demonstrate the sharding
	// even on single-core hosts.
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	header("GRID", fmt.Sprintf("registry sweep on the parallel Runner (%d workers)", workers))
	crash := evm.FaultPlan{
		Name:  "crash-2",
		Steps: []evm.FaultStep{{At: 10 * time.Second, CrashNode: 2}},
	}
	scenarios := []string{
		evm.ScenarioGasPlant, evm.ScenarioEightController, evm.ScenarioCapacity,
		evm.ScenarioCampusFailover, evm.ScenarioRefinery, evm.ScenarioRefineryRing,
		evm.ScenarioRefineryRingSever, evm.ScenarioPipeline, evm.ScenarioRandomField,
		evm.ScenarioOTACampus, evm.ScenarioModeChangeLine,
	}
	specs := evm.SpecGrid(scenarios,
		[]uint64{1, 2, 3, 4},
		[]evm.FaultPlan{{}, crash},
		60*time.Second)
	if eventDir != "" {
		if err := os.MkdirAll(eventDir, 0o755); err != nil {
			return err
		}
		fmt.Printf("  per-run event CSVs -> %s\n", eventDir)
	}
	start := time.Now() //evm:allow-wallclock host benchmark stopwatch around whole runs; never read inside the simulation
	results := (&evm.Runner{Workers: workers, EventDir: eventDir}).Run(specs)
	elapsed := time.Since(start) //evm:allow-wallclock host benchmark stopwatch
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("  FAILED %s: %v\n", r.Spec.Label(), r.Err)
		}
	}
	fmt.Printf("  %d runs (%d scenarios x 4 seeds x 2 plans) in %v wall, %d failed\n",
		len(specs), len(scenarios), elapsed.Round(time.Millisecond), failed)
	agg := evm.Aggregate(results)
	for _, sc := range scenarios {
		sum, ok := agg[sc]
		if !ok {
			continue
		}
		fmt.Printf("  %-18s", sc)
		keys := []string{evm.MetricFailovers, evm.MetricActuations, "coverage", "lts_level_pct", "members",
			evm.MetricInterCellMigrations, "tasks_alive"}
		shown := 0
		for _, k := range keys {
			if m, has := sum[k]; has {
				fmt.Printf("  %s mean=%.2f", k, m.Mean)
				shown++
			}
		}
		if shown == 0 {
			names := make([]string, 0, len(sum))
			for k := range sum {
				names = append(names, k)
			}
			sort.Strings(names)
			fmt.Printf("  metrics: %v", names)
		}
		fmt.Println()
	}
	return nil
}
