// Command evmvet is the project's determinism/safety multichecker: it
// runs the internal/lint analyzer suite (maporder, wallclock,
// goroutine, eventorder, floatacc) over the module and exits non-zero
// on any finding. CI runs it as a required lint job; run it locally as
//
//	go run ./cmd/evmvet ./...
//
// The suite mirrors the golang.org/x/tools/go/analysis shapes but
// ships its own stdlib-only driver (the build environment pins the
// module to the standard library), so evmvet is invoked directly
// rather than through `go vet -vettool=`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"evm/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also list suppressed findings (//evm:allow-* annotations) with their reasons")
	doc := flag.Bool("doc", false, "print each analyzer's contract and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: evmvet [-v] [-doc] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *doc {
		for _, a := range lint.Suite() {
			fmt.Printf("# %s\n\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evmvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.RunSuite(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evmvet:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, s := range res.Suppressed {
			fmt.Printf("%s: suppressed [%s]: %s (reason: %s)\n", s.Pos, s.Analyzer, s.Message, s.Reason)
		}
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "evmvet: %d finding(s) across %d package(s)\n", len(res.Findings), res.Packages)
		os.Exit(1)
	}
	fmt.Printf("evmvet: clean — %d package(s), %d suppressed annotation site(s)\n", res.Packages, len(res.Suppressed))
}

// moduleRoot resolves the enclosing module's directory so evmvet works
// from any cwd inside the repo.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("not inside a Go module: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
