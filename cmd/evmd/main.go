// Command evmd runs the campus-as-a-service daemon: a multi-tenant HTTP
// front end over the evm library. Tenants POST scenario submissions to
// /v1/runs, follow them as SSE/NDJSON event streams and flat telemetry
// samples, and read per-run / per-tenant status snapshots. SIGTERM (or
// SIGINT) drains gracefully: new submissions get 503, queued runs are
// cancelled, in-flight runs finish within the drain deadline and flush
// their event CSVs.
//
//	evmd -addr :8080 -workers 8 -queue 4096 -event-dir /tmp/evmd-events
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evm/evmd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "run concurrency (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 4096, "admission queue bound across tenants (backpressure past it)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queue share (0 = no per-tenant bound)")
	eventDir := flag.String("event-dir", "", "flush per-run event CSVs under this directory")
	drain := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight runs at shutdown")
	runTTL := flag.Duration("run-ttl", 0, "evict finished runs this long after completion (410 Gone; 0 = keep forever)")
	maxRuns := flag.Int("max-runs", 0, "cap the run table, evicting the oldest finished runs (0 = unbounded)")
	traceRuns := flag.Bool("trace", true, "record per-run causal traces, served at /v1/runs/{id}/trace")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := evmd.NewServer(evmd.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		TenantQueueDepth: *tenantQueue,
		EventDir:         *eventDir,
		DrainTimeout:     *drain,
		RunTTL:           *runTTL,
		MaxRuns:          *maxRuns,
		Trace:            *traceRuns,
		EnablePprof:      *pprofOn,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		log.Printf("evmd: %v — draining (deadline %v)", sig, *drain)
		rep := srv.Drain(*drain)
		if rep.TimedOut {
			log.Printf("evmd: drain deadline hit with runs still in flight")
		}
		log.Printf("evmd: drained (%d queued runs cancelled)", rep.Cancelled)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		close(done)
	}()

	log.Printf("evmd: serving on %s (workers=%d queue=%d)", *addr, srv.Stats().Workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("evmd: %v", err)
	}
	<-done
	st := srv.Stats()
	log.Printf("evmd: exit — accepted=%d completed=%d failed=%d cancelled=%d rejected=%d",
		st.Accepted, st.Completed, st.Failed, st.Cancelled, st.RejectedBackpressur+st.RejectedDraining)
}
