package evm

import (
	"fmt"
	"testing"
	"time"
)

// buildEightControllerVC mirrors the paper's deployment: "8 different
// controllers are used (4 in top-level system and 4 in DePropanizer)",
// here as 4 control tasks each with a primary and a backup spread over 8
// controller nodes, plus a gateway (1) and a head (10).
func buildEightControllerVC(t *testing.T, seed uint64) (*Cell, VCConfig) {
	t.Helper()
	ids := make([]NodeID, 0, 10)
	ids = append(ids, 1) // gateway
	for i := NodeID(2); i <= 9; i++ {
		ids = append(ids, i) // 8 controllers
	}
	ids = append(ids, 10) // head
	cell, err := NewCell(CellConfig{Seed: seed, PerfectChannel: true, SlotsPerNode: 3}, ids)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]TaskSpec, 0, 4)
	for i := 0; i < 4; i++ {
		primary := NodeID(2 + 2*i)
		backup := NodeID(3 + 2*i)
		tasks = append(tasks, TaskSpec{
			ID:              fmt.Sprintf("loop-%d", i),
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{primary, backup},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (TaskLogic, error) {
				return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		})
	}
	vc := VCConfig{Name: "eight", Head: 10, Gateway: 1, Tasks: tasks, DormantAfter: 5 * time.Second}
	if err := cell.Deploy(vc); err != nil {
		t.Fatal(err)
	}
	_, err = cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{
			{Port: 0, Value: 50}, {Port: 1, Value: 49},
			{Port: 2, Value: 51}, {Port: 3, Value: 50},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return cell, vc
}

func TestEightControllerSteadyState(t *testing.T) {
	cell, vc := buildEightControllerVC(t, 1)
	cell.Run(20 * time.Second)
	rep := EvaluateQoS(vc, cell.Nodes())
	if rep.CoverageRatio != 1 || rep.Redundant != 4 {
		t.Fatalf("steady QoS = %+v", rep)
	}
	head := cell.Node(10).Head()
	if head.Stats().Failovers != 0 {
		t.Fatalf("%d spurious failovers in an 8-controller cell", head.Stats().Failovers)
	}
	// Every task's primary actuates.
	for i := 0; i < 4; i++ {
		primary := NodeID(2 + 2*i)
		if cell.Node(primary).Stats().ActuationsSent == 0 {
			t.Fatalf("task %d primary never actuated", i)
		}
	}
}

func TestEightControllerSequentialFailures(t *testing.T) {
	// Kill every primary in sequence; each task must fail over to its
	// backup and coverage must stay total.
	cell, vc := buildEightControllerVC(t, 2)
	cell.Run(10 * time.Second)
	for i := 0; i < 4; i++ {
		cell.Node(NodeID(2 + 2*i)).Link().Radio().Fail()
		cell.Run(15 * time.Second)
	}
	rep := EvaluateQoS(vc, cell.Nodes())
	if rep.CoverageRatio != 1 {
		t.Fatalf("coverage %.2f after 4 primary failures, want 1.0", rep.CoverageRatio)
	}
	head := cell.Node(10).Head()
	if head.Stats().Failovers != 4 {
		t.Fatalf("failovers = %d, want 4", head.Stats().Failovers)
	}
	for i := 0; i < 4; i++ {
		backup := NodeID(3 + 2*i)
		if active, _ := head.ActiveNode(fmt.Sprintf("loop-%d", i)); active != backup {
			t.Fatalf("task %d master = %v, want backup %v", i, active, backup)
		}
	}
}

func TestEightControllerByzantineStorm(t *testing.T) {
	// Simultaneous byzantine faults on two primaries: both fail over
	// independently without disturbing the healthy loops.
	cell, vc := buildEightControllerVC(t, 3)
	cell.Run(10 * time.Second)
	cell.Node(2).InjectComputeFault("loop-0", 99)
	cell.Node(6).InjectComputeFault("loop-2", 99)
	cell.Run(30 * time.Second)
	head := cell.Node(10).Head()
	if a, _ := head.ActiveNode("loop-0"); a != 3 {
		t.Fatalf("loop-0 master = %v, want 3", a)
	}
	if a, _ := head.ActiveNode("loop-2"); a != 7 {
		t.Fatalf("loop-2 master = %v, want 7", a)
	}
	for _, task := range []string{"loop-1", "loop-3"} {
		if a, _ := head.ActiveNode(task); a != NodeID(map[string]NodeID{"loop-1": 4, "loop-3": 8}[task]) {
			t.Fatalf("healthy task %s moved to %v", task, a)
		}
	}
	rep := EvaluateQoS(vc, cell.Nodes())
	if rep.CoverageRatio != 1 {
		t.Fatalf("coverage %.2f", rep.CoverageRatio)
	}
}
