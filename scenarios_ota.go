package evm

import (
	"fmt"
	"strings"
	"time"
)

// OTA scenario names registered with the global registry.
const (
	// ScenarioOTACampus is the over-the-air acceptance workload: a 4-cell
	// campus running a VM control law on every loop receives a staged
	// campus-wide rollout to capsule v2 at OTARolloutAt (canary cell
	// first), over a lossy ring backbone and through a radio PER burst in
	// unit-b — the rollout must complete with zero invariant violations
	// and byte-identical same-seed campus streams.
	ScenarioOTACampus = "ota-campus"
	// ScenarioModeChangeLine is the mixed-workload "mode changes under
	// loss" scenario (open since PR 1): the pipeline line cell runs two
	// control laws — normal boost (mode 1) and purge (mode 2) — and the
	// segment head switches the whole line between them mid-run with
	// synchronized TDMA-frame mode changes, through baseline radio loss
	// and a PER burst covering one switch.
	ScenarioModeChangeLine = "mode-change-line"
)

// OTARolloutAt is when the ota-campus scenario starts its staged v2
// rollout.
const OTARolloutAt = 10 * time.Second

// OTACellNodes is the member count of every ota-campus cell: gateway 1,
// head 2, loop candidate pairs 3/4 and 5/6, spares 7/8.
const OTACellNodes = 8

// otaLawV1 is the deployed v1 control law: out = 2 x (50 - in), the
// direct-acting proportional law from the OTA example.
const otaLawV1 = `
	PUSHQ 50.0
	IN 0
	SUB
	PUSHQ 2.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// otaLawV2 is the retuned v2 law shipped over the air: setpoint 70,
// gain 3.
const otaLawV2 = `
	PUSHQ 70.0
	IN 0
	SUB
	PUSHQ 3.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// otaLawBad is a syntactically valid capsule that attests and
// instantiates cleanly but never produces an actuator command — the
// "seeded bad capsule" for rollback experiments. Activating it silences
// the task (VMLogic.Step errors on a program with no OUT), so the
// rollout's post-activation health window trips missed-actuation and
// reverts to the prior version.
const otaLawBad = `
	IN 0
	DROP
	HALT`

func init() {
	MustRegisterScenario(ScenarioOTACampus, buildOTACampusScenario)
	MustRegisterScenario(ScenarioModeChangeLine, buildModeChangeLineScenario)
}

// OTACampusTasks lists the task IDs of the ota-campus scenario: two
// pressure loops per unit.
func OTACampusTasks() []string {
	out := make([]string, 0, 8)
	for _, u := range []string{"a", "b", "c", "d"} {
		for i := 0; i < 2; i++ {
			out = append(out, fmt.Sprintf("%s-press-%d", u, i))
		}
	}
	return out
}

// OTABadCapsule assembles the seeded bad capsule for a task: it attests
// and instantiates but never actuates, so a rollout activating it trips
// the health window's missed-actuation signal.
func OTABadCapsule(taskID string, version uint8) (Capsule, error) {
	return AssembleCapsule(taskID, version, otaLawBad)
}

// RegisterOTACapsules registers capsule versions v1 (the deployed law)
// and v2 (the retuned law) for every listed task.
func RegisterOTACapsules(store *CapsuleStore, tasks []string) error {
	versions := []struct {
		v   uint8
		src string
	}{{1, otaLawV1}, {2, otaLawV2}}
	for _, task := range tasks {
		for _, ver := range versions {
			c, err := AssembleCapsule(task, ver.v, ver.src)
			if err != nil {
				return err
			}
			if err := store.Register(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// otaUnit declares one ota-campus cell: OTACellNodes nodes on a 4x2
// grid, two VM-law pressure loops on candidate pairs 3/4 and 5/6, and a
// synthetic two-port feed.
func otaUnit(letter string) CellSpec {
	tasks := make([]TaskSpec, 0, 2)
	for i := 0; i < 2; i++ {
		taskID := fmt.Sprintf("%s-press-%d", letter, i)
		tasks = append(tasks, TaskSpec{
			ID:              taskID,
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{NodeID(3 + 2*i), NodeID(4 + 2*i)},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (TaskLogic, error) {
				c, err := AssembleCapsule(taskID, 1, otaLawV1)
				if err != nil {
					return nil, err
				}
				return NewVMLogic(c)
			},
		})
	}
	name := "unit-" + letter
	return CellSpec{
		Name: name,
		Options: []CellOption{
			WithNodeCount(OTACellNodes),
			WithPlacement(Grid(4, 2)),
			WithSlotsPerNode(3),
			WithPER(0),
		},
		VC: VCConfig{Name: name, Head: 2, Gateway: 1, Tasks: tasks, DormantAfter: 5 * time.Second},
		Feed: &FeedSpec{
			Source: 1,
			Period: 250 * time.Millisecond,
			Sample: func() []SensorReading {
				return []SensorReading{{Port: 0, Value: 48}, {Port: 1, Value: 46}}
			},
		},
	}
}

// NewOTACampus builds the 4-cell ota campus: units a..d on a lossy ring
// backbone (every link drops 20% of hops, so rollout legs retransmit),
// with capsule versions v1 and v2 registered for every loop.
func NewOTACampus(seed uint64) (*Campus, error) {
	store := NewCapsuleStore()
	if err := RegisterOTACapsules(store, OTACampusTasks()); err != nil {
		return nil, err
	}
	cfg := CampusConfig{
		Seed:     seed,
		Capsules: store,
		Backbone: BackboneConfig{
			RetryAfter: 150 * time.Millisecond,
			MaxRetries: 6,
		},
		Links: []BackboneLink{
			{A: "unit-a", B: "unit-b", Config: LinkConfig{PER: 0.2}},
			{A: "unit-b", B: "unit-c", Config: LinkConfig{PER: 0.2}},
			{A: "unit-c", B: "unit-d", Config: LinkConfig{PER: 0.2}},
			{A: "unit-d", B: "unit-a", Config: LinkConfig{PER: 0.2}},
		},
	}
	return NewCampus(cfg, otaUnit("a"), otaUnit("b"), otaUnit("c"), otaUnit("d"))
}

// OTACampusRolloutSpec is the scenario's staged upgrade: every loop to
// capsule v2, canary cell first (strategy "" = canary-cell).
func OTACampusRolloutSpec(strategy string) RolloutSpec {
	return RolloutSpec{
		Tasks:    OTACampusTasks(),
		Version:  2,
		Strategy: strategy,
	}
}

// buildOTACampusScenario assembles the ota campus with its choreography
// built in: at OTARolloutAt the campus starts the staged v2 rollout
// while unit-b's radios run a 25% PER burst covering every stage's
// health window. Metrics report the rollout's terminal state and how
// many loop masters ended up executing v2.
func buildOTACampusScenario(spec RunSpec) (*Experiment, error) {
	campus, err := NewOTACampus(spec.Seed)
	if err != nil {
		return nil, err
	}
	burst := FaultPlan{
		Name: "per-burst-unit-b",
		Steps: []FaultStep{
			{At: OTARolloutAt, PERBurst: &PERBurst{PER: 0.25, For: 8 * time.Second}},
		},
	}
	if err := campus.ApplyFaultPlan("unit-b", burst); err != nil {
		campus.Stop()
		return nil, err
	}
	var rollout *Rollout
	campus.eng.After(OTARolloutAt, func() {
		// A refused start (e.g. a task escalated away mid-run) surfaces
		// through the metrics: rollout_complete stays 0.
		rollout, _ = campus.StartRollout(OTACampusRolloutSpec(""))
	})
	return &Experiment{
		Campus:         campus,
		DefaultHorizon: 30 * time.Second,
		Metrics: func() map[string]float64 {
			m := map[string]float64{
				"rollout_complete":    0,
				"rollout_rolled_back": 0,
				"tasks_v2":            float64(tasksOnVersion(campus, 2)),
			}
			if rollout != nil {
				if rollout.State() == RolloutComplete {
					m["rollout_complete"] = 1
				}
				if rollout.State() == RolloutRolledBack {
					m["rollout_rolled_back"] = 1
				}
			}
			return m
		},
		Cleanup: campus.Stop,
	}, nil
}

// tasksOnVersion counts tasks whose current master executes the given
// capsule version. Placement keys are "<origin-cell>/<task-id>".
func tasksOnVersion(campus *Campus, version uint8) int {
	n := 0
	//evm:allow-maporder commutative integer count over pure read-only lookups; visit order cannot change the total
	for key, p := range campus.TaskPlacements() {
		task := key
		if i := strings.IndexByte(key, '/'); i >= 0 {
			task = key[i+1:]
		}
		node := campus.Cell(p.Cell).Node(p.Node)
		if node == nil {
			continue
		}
		if v, ok := node.CapsuleVersion(task); ok && v == version {
			n++
		}
	}
	return n
}

// --- mode-change-line ---------------------------------------------------------

// Mode-change-line station IDs, in line order: gateway at the plant, a
// relay station, then the backup and primary boost controllers with the
// segment head between them — the head is line-adjacent to BOTH
// controllers, so its synchronized mode broadcasts (and role changes)
// reach them in one hop.
const (
	ModeLineGateway NodeID = 1
	ModeLineRelay   NodeID = 2
	ModeLineBackup  NodeID = 3
	ModeLineHead    NodeID = 4
	ModeLinePrimary NodeID = 5
)

// Mode-change-line task IDs and modes: mode 1 runs the normal boost
// law, mode 2 the purge law.
const (
	ModeLineNormalTask = "line-normal"
	ModeLinePurgeTask  = "line-purge"
	ModeLineNormal     = 1
	ModeLinePurge      = 2
)

// modeLineOrder returns the station sequence along the line.
func modeLineOrder() []NodeID {
	return []NodeID{ModeLineGateway, ModeLineRelay, ModeLineBackup, ModeLineHead, ModeLinePrimary}
}

// modeLineTask declares one of the two line laws.
func modeLineTask(id string, actuator uint8, setpoint float64) TaskSpec {
	return TaskSpec{
		ID:              id,
		SensorPort:      0,
		ActuatorPort:    actuator,
		Period:          250 * time.Millisecond,
		WCET:            5 * time.Millisecond,
		Candidates:      []NodeID{ModeLinePrimary, ModeLineBackup},
		DeviationTol:    5,
		DeviationWindow: 4,
		SilenceWindow:   8,
		MakeLogic: func() (TaskLogic, error) {
			return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
				Setpoint: setpoint, CutoffHz: 0.4, RateHz: 4})
		},
	}
}

// buildModeChangeLineScenario assembles the mode-switching pipeline: the
// five-station line cell runs both laws on the far-end controller pair,
// gated by the node mode. The head drives the production schedule —
// normal from 2s, purge at 10s, back to normal at 18s, purge again at
// 26s — with each switch broadcast two TDMA frames ahead. Baseline
// radio PER is 2% and a 30% burst covers the 18s switch, so mode
// changes, sensor relaying and actuation relaying all run under loss.
func buildModeChangeLineScenario(spec RunSpec) (*Experiment, error) {
	line := modeLineOrder()
	cell, err := NewCellWith(CellConfig{Seed: spec.Seed},
		WithNodes(line...),
		WithPlacement(Line(3)),
		WithSlotsPerNode(3),
		WithPER(0.02),
		WithLineSchedule(line...))
	if err != nil {
		return nil, err
	}
	vc := VCConfig{
		Name:    "mode-line",
		Head:    ModeLineHead,
		Gateway: ModeLineGateway,
		Tasks: []TaskSpec{
			modeLineTask(ModeLineNormalTask, 10, 50),
			modeLineTask(ModeLinePurgeTask, 11, 80),
		},
		DormantAfter: 5 * time.Second,
	}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}
	if err := cell.InstallLineRoutes(line...); err != nil {
		return nil, err
	}
	for _, n := range cell.Nodes() {
		n.SetModeTasks(ModeLineNormal, []string{ModeLineNormalTask})
		n.SetModeTasks(ModeLinePurge, []string{ModeLinePurgeTask})
	}
	feed, err := cell.StartSensorFeedTo(ModeLineGateway, 250*time.Millisecond,
		func() []SensorReading { return []SensorReading{{Port: 0, Value: 48}} },
		ModeLinePrimary, ModeLineBackup)
	if err != nil {
		return nil, err
	}
	normalActs, purgeActs := 0, 0
	sub := cell.Events().Subscribe(func(ev Event) {
		if act, ok := ev.(ActuationEvent); ok {
			switch act.Task {
			case ModeLineNormalTask:
				normalActs++
			case ModeLinePurgeTask:
				purgeActs++
			}
		}
	})
	head := cell.Node(ModeLineHead).Head()
	schedule := []struct {
		at   time.Duration
		mode uint8
	}{
		{2 * time.Second, ModeLineNormal},
		{10 * time.Second, ModeLinePurge},
		{18 * time.Second, ModeLineNormal},
		{26 * time.Second, ModeLinePurge},
	}
	for _, sw := range schedule {
		mode := sw.mode
		cell.Engine().After(sw.at, func() { head.SetMode(mode, 2) })
	}
	if err := cell.ApplyFaultPlan(FaultPlan{
		Name: "per-burst-at-switch",
		Steps: []FaultStep{
			{At: 17 * time.Second, PERBurst: &PERBurst{PER: 0.3, For: 3 * time.Second}},
		},
	}); err != nil {
		feed.Stop()
		cell.Stop()
		return nil, err
	}
	return &Experiment{
		Cell:           cell,
		DefaultHorizon: 32 * time.Second,
		Metrics: func() map[string]float64 {
			return map[string]float64{
				"normal_actuations": float64(normalActs),
				"purge_actuations":  float64(purgeActs),
				"primary_mode":      float64(cell.Node(ModeLinePrimary).Mode()),
				"backup_mode":       float64(cell.Node(ModeLineBackup).Mode()),
			}
		},
		Cleanup: func() {
			sub.Cancel()
			feed.Stop()
			cell.Stop()
		},
	}, nil
}
