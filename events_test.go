package evm

import (
	"testing"
	"time"
)

// testVC builds the standard 4-node component: gateway 1, candidates 2/3,
// head 4.
func testVC(window int) VCConfig {
	return VCConfig{
		Name: "bus", Head: 4, Gateway: 1,
		Tasks: []TaskSpec{{
			ID: "loop", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []NodeID{2, 3},
			DeviationTol: 5, DeviationWindow: window, SilenceWindow: 8,
			MakeLogic: func() (TaskLogic, error) {
				return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.5, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		}},
	}
}

func startFeed(t *testing.T, cell *Cell) {
	t.Helper()
	_, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEventBusPublishesFaultAndFailover(t *testing.T) {
	cell, err := NewCellWith(CellConfig{Seed: 7}, WithNodes(1, 2, 3, 4), WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.Deploy(testVC(4)); err != nil {
		t.Fatal(err)
	}
	startFeed(t, cell)
	log := cell.Events().Log()
	plan := FaultPlan{
		Name: "byzantine",
		Steps: []FaultStep{{
			At:           5 * time.Second,
			ComputeFault: &ComputeFault{Node: 2, Task: "loop", Output: 75},
		}},
	}
	if err := cell.ApplyFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cell.Run(30 * time.Second)
	if n := log.Count(func(ev Event) bool { _, ok := ev.(FaultEvent); return ok }); n != 1 {
		t.Fatalf("fault events = %d, want 1", n)
	}
	var fo *FailoverEvent
	for _, ev := range log.Events() {
		if f, ok := ev.(FailoverEvent); ok {
			fo = &f
			break
		}
	}
	if fo == nil {
		t.Fatal("no FailoverEvent after injected compute fault")
	}
	if fo.Task != "loop" || fo.From != 2 || fo.To != 3 {
		t.Fatalf("failover event = %+v, want loop 2->3", fo)
	}
	if fo.At <= 5*time.Second {
		t.Fatalf("failover at %v, before the fault at 5s", fo.At)
	}
}

func TestEventBusJoinAndMigration(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioCapacity, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	log := exp.Cell.Events().Log()
	exp.Cell.Run(exp.DefaultHorizon)
	joins := log.Count(func(ev Event) bool { _, ok := ev.(JoinEvent); return ok })
	migs := log.Count(func(ev Event) bool { _, ok := ev.(MigrationEvent); return ok })
	if joins == 0 {
		t.Fatal("no JoinEvent from the runtime admission")
	}
	if migs == 0 {
		t.Fatal("no MigrationEvent from the commanded migration")
	}
}

// TestBatteryDrainFaultTriggersEnergyFailover covers the battery-drain
// fault kind end to end: draining the primary below the 5% threshold
// makes the head migrate its duties proactively (§3.1.1 op 5).
func TestBatteryDrainFaultTriggersEnergyFailover(t *testing.T) {
	cell, err := NewCellWith(CellConfig{Seed: 7}, WithNodes(1, 2, 3, 4), WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.Deploy(testVC(4)); err != nil {
		t.Fatal(err)
	}
	startFeed(t, cell)
	log := cell.Events().Log()
	plan := FaultPlan{
		Name: "energy",
		Steps: []FaultStep{{
			At:           2 * time.Second,
			BatteryDrain: &BatteryDrain{Node: 2, Fraction: 0.97},
		}},
	}
	if err := cell.ApplyFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cell.Run(10 * time.Second)
	drains := log.Count(func(ev Event) bool {
		f, ok := ev.(FaultEvent)
		return ok && f.Kind == FaultBatteryDrain && f.Node == 2
	})
	if drains != 1 {
		t.Fatalf("battery-drain fault events = %d, want 1", drains)
	}
	var fo *FailoverEvent
	for _, ev := range log.Events() {
		if f, ok := ev.(FailoverEvent); ok {
			fo = &f
			break
		}
	}
	if fo == nil {
		t.Fatal("no proactive failover after draining the primary's battery")
	}
	if fo.From != 2 || fo.To != 3 {
		t.Fatalf("energy failover = %+v, want 2->3", fo)
	}
}

// TestClockDriftFaultSetsOscillator covers the clock-drift fault kind:
// the step publishes a FaultEvent and the node's clock error grows with
// time since the last sync pulse.
func TestClockDriftFaultSetsOscillator(t *testing.T) {
	cell, err := NewCellWith(CellConfig{Seed: 7}, WithNodes(1, 2, 3, 4), WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.Deploy(testVC(4)); err != nil {
		t.Fatal(err)
	}
	log := cell.Events().Log()
	plan := FaultPlan{
		Name:  "drift",
		Steps: []FaultStep{{At: time.Second, ClockDrift: &ClockDrift{Node: 3, PPM: 500}}},
	}
	if err := cell.ApplyFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cell.Run(5 * time.Second)
	drifts := log.Count(func(ev Event) bool {
		f, ok := ev.(FaultEvent)
		return ok && f.Kind == FaultClockDrift && f.Node == 3 && f.Value == 500
	})
	if drifts != 1 {
		t.Fatalf("clock-drift fault events = %d, want 1", drifts)
	}
}

// TestEventStreamDeterministic checks the redesign's core guarantee:
// equal seeds yield byte-identical event streams, including under
// stochastic loss and a multi-step fault plan.
func TestEventStreamDeterministic(t *testing.T) {
	run := func() []string {
		cfg := DefaultGasPlantConfig()
		cfg.Seed = 42
		cfg.DeviationWindow = 8
		cfg.PER = 0.15
		s, err := NewGasPlant(cfg)
		if err != nil {
			t.Fatal(err)
		}
		log := s.Cell.Events().Log()
		plan := FaultPlan{
			Name: "mixed",
			Steps: []FaultStep{
				{At: 10 * time.Second, ComputeFault: &ComputeFault{Node: GasCtrlAID, Task: LTSTaskID, Output: 75, For: 20 * time.Second}},
				{At: 40 * time.Second, PERBurst: &PERBurst{PER: 0.5, For: 5 * time.Second}},
			},
		}
		if err := s.Cell.ApplyFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		s.Run(60 * time.Second)
		return log.Strings()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event stream lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

func TestDeployStopsStartedNodesOnFailure(t *testing.T) {
	cell, err := NewCellWith(CellConfig{Seed: 1}, WithNodes(1, 2, 3, 4), WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	vc := testVC(4)
	calls := 0
	vc.Tasks[0].MakeLogic = func() (TaskLogic, error) {
		calls++
		if calls >= 2 {
			return nil, errTestLogic
		}
		return NewPIDLogic(PIDParams{Kp: 1, OutMin: 0, OutMax: 100, Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
	}
	if err := cell.Deploy(vc); err == nil {
		t.Fatal("Deploy succeeded despite failing logic factory")
	}
	if len(cell.nodes) != 0 {
		t.Fatalf("%d node runtimes leaked after failed Deploy", len(cell.nodes))
	}
	// The started-then-stopped node must not leave its watchdog ticking.
	if p := cell.Engine().Pending(); p != 0 {
		t.Fatalf("%d events still pending after failed Deploy (leaked watchdog?)", p)
	}
}

var errTestLogic = &logicError{}

type logicError struct{}

func (*logicError) Error() string { return "logic factory exploded" }

func TestAddNodeRuntimeRollsBackOnFailure(t *testing.T) {
	// 7 nodes x 7 slots + sync = 50 fills the default frame exactly, so
	// admitting an 8th node cannot fit a schedule and must roll back.
	cell, err := NewCellWith(CellConfig{Seed: 1},
		WithNodes(1, 2, 3, 4, 5, 6, 7),
		WithSlotsPerNode(7),
		WithPER(0))
	if err != nil {
		t.Fatal(err)
	}
	vc := testVC(4)
	if err := cell.Deploy(vc); err != nil {
		t.Fatal(err)
	}
	oldSched := cell.Network().Schedule()
	before := len(cell.Members())
	if _, err := cell.AddNodeRuntime(8, vc); err == nil {
		t.Fatal("AddNodeRuntime succeeded despite full TDMA frame")
	}
	if got := len(cell.Members()); got != before {
		t.Fatalf("member list grew to %d after failed admission", got)
	}
	if cell.Medium().Radio(8) != nil {
		t.Fatal("radio leaked on the medium after failed admission")
	}
	if cell.Network().Link(8) != nil {
		t.Fatal("link leaked after failed admission")
	}
	if got := cell.Network().Schedule(); len(got) != len(oldSched) {
		t.Fatalf("schedule not restored: %d slots, want %d", len(got), len(oldSched))
	}
	// The cell still works: a later valid admission is unaffected.
	cell.Run(time.Second)
}

func TestBusCancelDuringPublish(t *testing.T) {
	b := &Bus{}
	got := make(map[string]int)
	var subA *Subscription
	subA = b.Subscribe(func(Event) {
		got["a"]++
		subA.Cancel() // self-cancel mid-delivery
	})
	b.Subscribe(func(Event) { got["b"]++ })
	b.Subscribe(func(Event) { got["c"]++ })
	b.publish(JoinEvent{Node: 1})
	if got["a"] != 1 || got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("first publish deliveries = %v, want 1 each", got)
	}
	b.publish(JoinEvent{Node: 2})
	if got["a"] != 1 {
		t.Fatalf("cancelled subscriber still receiving: %v", got)
	}
	if got["b"] != 2 || got["c"] != 2 {
		t.Fatalf("live subscribers skipped after compaction: %v", got)
	}
}

func TestPERBurstRestoresForcedRate(t *testing.T) {
	cell, err := NewCellWith(CellConfig{Seed: 1}, WithNodes(1, 2, 3, 4), WithPER(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if got := cell.Medium().ForcedPER(); got != 0.3 {
		t.Fatalf("forced PER = %g, want 0.3", got)
	}
	plan := FaultPlan{Steps: []FaultStep{{At: time.Second, PERBurst: &PERBurst{PER: 0.9, For: 2 * time.Second}}}}
	if err := cell.ApplyFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cell.Run(2 * time.Second)
	if got := cell.Medium().ForcedPER(); got != 0.9 {
		t.Fatalf("mid-burst forced PER = %g, want 0.9", got)
	}
	cell.Run(2 * time.Second)
	if got := cell.Medium().ForcedPER(); got != 0.3 {
		t.Fatalf("post-burst forced PER = %g, want the pre-burst 0.3", got)
	}
}
