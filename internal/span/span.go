// Package span records deterministic causal spans in virtual time.
//
// A Tracer is owned by one sim.Engine and is therefore single-threaded;
// span IDs are derived from the run seed and a creation counter (a
// splitmix64 mix), parent links come from an explicit enter/exit stack,
// and the export walks the append-ordered span slice — so the same seed
// produces a byte-identical trace on every run and every machine. The
// export format is the Chrome trace-event JSON array, loadable directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing; virtual-time
// nanoseconds map onto the format's microsecond timestamps.
package span

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// ID identifies one span. The zero ID is "no span": it is returned when
// the tracer is saturated and acts as the root parent.
type ID uint64

// Arg is one key/value annotation on a span. Values are plain strings so
// exports never depend on float formatting of caller state.
type Arg struct {
	Key string
	Val string
}

// Span is one recorded interval (or instant) on the virtual timeline.
type Span struct {
	ID     ID
	Parent ID
	Name   string
	Cat    string
	// Track groups spans onto one Perfetto thread row ("rtlink",
	// "radio", "backbone", ...). Tracks materialize in first-appearance
	// order, which is deterministic because span creation is.
	Track   string
	Start   time.Duration
	End     time.Duration
	Args    []Arg
	Instant bool
	open    bool
}

// Duration returns the span length (zero for instants and open spans).
func (s Span) Duration() time.Duration {
	if s.open || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// DefaultMaxSpans caps a tracer's buffer; past it new spans are counted
// as dropped instead of recorded, so a runaway run cannot eat the host.
const DefaultMaxSpans = 200_000

// Tracer accumulates spans for one run. It is not safe for concurrent
// use — by design it lives on a single-threaded simulation engine.
type Tracer struct {
	seed    uint64
	n       uint64
	max     int
	dropped int
	spans   []Span
	// index maps still-open span IDs to their slot for Close.
	index map[ID]int
	// stack is the current enter/exit nesting; the top is the parent of
	// every new span.
	stack []ID
	// dispatch gates per-event engine dispatch spans (high volume).
	dispatch bool
}

// New returns a tracer whose span IDs derive from seed.
func New(seed uint64) *Tracer {
	return &Tracer{seed: seed, max: DefaultMaxSpans, index: make(map[ID]int)}
}

// Seed returns the ID-derivation seed.
func (t *Tracer) Seed() uint64 { return t.seed }

// SetMaxSpans overrides the span cap (values <= 0 keep the default).
func (t *Tracer) SetMaxSpans(n int) {
	if n > 0 {
		t.max = n
	}
}

// SetDispatch toggles per-event engine dispatch spans. They give the
// Perfetto timeline its scheduling backbone but multiply span volume,
// so they default off.
func (t *Tracer) SetDispatch(on bool) { t.dispatch = on }

// Dispatch reports whether engine dispatch spans are recorded.
func (t *Tracer) Dispatch() bool { return t.dispatch }

// Len returns the number of recorded spans.
func (t *Tracer) Len() int { return len(t.spans) }

// Dropped returns how many spans the cap rejected.
func (t *Tracer) Dropped() int { return t.dropped }

// splitmix64 finalizer: a full-avalanche mix so sequential counters
// yield well-spread, seed-dependent IDs.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() ID {
	t.n++
	id := ID(mix64(t.seed + t.n))
	if id == 0 {
		id = 1 // keep the zero ID reserved for "no span"
	}
	return id
}

// parent returns the current enclosing span.
func (t *Tracer) parent() ID {
	if len(t.stack) == 0 {
		return 0
	}
	return t.stack[len(t.stack)-1]
}

// record appends a span, honoring the cap. Returns the assigned ID, or
// zero when the span was dropped.
func (t *Tracer) record(s Span) ID {
	if t == nil {
		return 0
	}
	if len(t.spans) >= t.max {
		t.dropped++
		return 0
	}
	s.ID = t.nextID()
	s.Parent = t.parent()
	t.spans = append(t.spans, s)
	if s.open {
		t.index[s.ID] = len(t.spans) - 1
	}
	return s.ID
}

// Complete records a fully-formed span with known endpoints.
func (t *Tracer) Complete(name, cat, track string, start, end time.Duration, args ...Arg) ID {
	if t == nil {
		return 0
	}
	if end < start {
		end = start
	}
	return t.record(Span{Name: name, Cat: cat, Track: track, Start: start, End: end, Args: args})
}

// Instant records a zero-duration marker (a Perfetto instant event).
func (t *Tracer) Instant(name, cat, track string, at time.Duration, args ...Arg) ID {
	if t == nil {
		return 0
	}
	return t.record(Span{Name: name, Cat: cat, Track: track, Start: at, End: at, Args: args, Instant: true})
}

// Open starts a span whose end is not yet known (a cross-event interval:
// an in-flight backbone transfer, a pending handshake). Close it with
// Close; a never-closed span exports with zero duration and open=true.
func (t *Tracer) Open(name, cat, track string, start time.Duration, args ...Arg) ID {
	if t == nil {
		return 0
	}
	return t.record(Span{Name: name, Cat: cat, Track: track, Start: start, End: start, Args: args, open: true})
}

// Close ends a previously opened span, appending any extra args.
// Closing the zero ID (a dropped Open) or an already-closed span is a
// no-op.
func (t *Tracer) Close(id ID, end time.Duration, args ...Arg) {
	if t == nil || id == 0 {
		return
	}
	i, ok := t.index[id]
	if !ok {
		return
	}
	delete(t.index, id)
	s := &t.spans[i]
	s.open = false
	if end > s.Start {
		s.End = end
	}
	s.Args = append(s.Args, args...)
}

// Enter opens a span and makes it the parent of everything recorded
// until the matching Exit. The engine wraps every event dispatch in an
// Enter/Exit pair (when dispatch spans are on) so causality follows the
// scheduler.
func (t *Tracer) Enter(name, cat, track string, start time.Duration, args ...Arg) ID {
	if t == nil {
		return 0
	}
	id := t.Open(name, cat, track, start, args...)
	t.stack = append(t.stack, id)
	return id
}

// Exit closes an Enter span and pops the parent stack.
func (t *Tracer) Exit(id ID, end time.Duration) {
	if t == nil {
		return
	}
	if len(t.stack) > 0 {
		t.stack = t.stack[:len(t.stack)-1]
	}
	t.Close(id, end)
}

// Spans returns the recorded spans in creation order (shared backing
// array; callers must not mutate).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// DurationsMS returns the durations (in milliseconds) of every closed,
// non-instant span with the given name, in creation order — the input
// for derived latency histograms.
func (t *Tracer) DurationsMS(name string) []float64 {
	if t == nil {
		return nil
	}
	var out []float64
	for i := range t.spans {
		s := &t.spans[i]
		if s.Name != name || s.Instant || s.open {
			continue
		}
		out = append(out, float64(s.End-s.Start)/float64(time.Millisecond))
	}
	return out
}

// Names returns the sorted set of distinct closed span names.
func (t *Tracer) Names() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for i := range t.spans {
		s := &t.spans[i]
		if s.Instant || s.open || seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// traceEvent is one Chrome trace-event record. encoding/json marshals
// map keys sorted, so args serialize deterministically.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// us converts virtual-time nanoseconds to trace-event microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func hexID(id ID) string {
	const digits = "0123456789abcdef"
	var buf [18]byte
	buf[0], buf[1] = '0', 'x'
	for i := 0; i < 16; i++ {
		buf[2+i] = digits[(uint64(id)>>uint(60-4*i))&0xF]
	}
	return string(buf[:])
}

// WriteJSON exports the trace as Chrome trace-event JSON. The output is
// byte-identical for identical span sequences: events emit in creation
// order, tracks take thread IDs in first-appearance order, and args
// marshal with sorted keys.
func (t *Tracer) WriteJSON(w io.Writer) error {
	tracks := make(map[string]int)
	var trackOrder []string
	tidFor := func(track string) int {
		if track == "" {
			track = "main"
		}
		tid, ok := tracks[track]
		if !ok {
			tid = len(tracks) + 1
			tracks[track] = tid
			trackOrder = append(trackOrder, track)
		}
		return tid
	}
	events := make([]traceEvent, 0, len(t.spans)+len(t.spans)/8+2)
	for i := range t.spans {
		s := &t.spans[i]
		ev := traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			TS:   us(s.Start),
			Pid:  1,
			Tid:  tidFor(s.Track),
		}
		args := make(map[string]string, len(s.Args)+2)
		args["id"] = hexID(s.ID)
		if s.Parent != 0 {
			args["parent"] = hexID(s.Parent)
		}
		for _, a := range s.Args {
			args[a.Key] = a.Val
		}
		if s.Instant {
			ev.Ph, ev.S = "i", "t"
		} else {
			ev.Ph = "X"
			d := us(s.Duration())
			ev.Dur = &d
			if s.open {
				args["open"] = "true"
			}
		}
		ev.Args = args
		events = append(events, ev)
	}
	// Metadata names the process and threads; emitted after the spans
	// are walked (track assignment) but placed first in the file.
	meta := make([]traceEvent, 0, len(trackOrder)+1)
	meta = append(meta, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "evm-virtual-time"},
	})
	for _, track := range trackOrder {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tracks[track],
			Args: map[string]string{"name": track},
		})
	}
	out := traceFile{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
