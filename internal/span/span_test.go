package span

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// record a small representative trace: nesting, open/close, instants.
func sampleTrace(seed uint64) *Tracer {
	t := New(seed)
	d := t.Enter("dispatch", "sim", "engine", ms(0))
	t.Complete("slot", "rtlink", "rtlink", ms(0), ms(5), Arg{"slot", "3"}, Arg{"owner", "2"})
	t.Instant("drop", "radio", "radio", ms(2), Arg{"reason", "loss"})
	t.Exit(d, ms(5))
	h := t.Open("handshake", "federation", "federation", ms(10), Arg{"task", "w-loop"})
	t.Complete("prepare", "federation", "federation", ms(10), ms(30))
	t.Close(h, ms(42), Arg{"outcome", "commit"})
	t.Open("transfer", "backbone", "backbone", ms(50)) // never closed
	return t
}

func TestIDsAreSeededAndStable(t *testing.T) {
	a, b := sampleTrace(7), sampleTrace(7)
	for i := range a.Spans() {
		if a.Spans()[i].ID != b.Spans()[i].ID {
			t.Fatalf("span %d: id %x != %x for the same seed", i, a.Spans()[i].ID, b.Spans()[i].ID)
		}
	}
	c := sampleTrace(8)
	if a.Spans()[0].ID == c.Spans()[0].ID {
		t.Fatalf("different seeds produced the same first span ID %x", a.Spans()[0].ID)
	}
}

func TestParentLinks(t *testing.T) {
	tr := sampleTrace(1)
	spans := tr.Spans()
	dispatch := spans[0]
	if dispatch.Parent != 0 {
		t.Fatalf("root span has parent %x", dispatch.Parent)
	}
	for _, i := range []int{1, 2} { // slot + drop recorded inside the dispatch scope
		if spans[i].Parent != dispatch.ID {
			t.Fatalf("span %q parent %x, want dispatch %x", spans[i].Name, spans[i].Parent, dispatch.ID)
		}
	}
	if spans[4].Parent != 0 {
		t.Fatalf("post-Exit span %q still parented to %x", spans[4].Name, spans[4].Parent)
	}
}

func TestExportByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTrace(42).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTrace(42).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed exports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"ph":"i"`, `"ph":"M"`, `"open":"true"`, `"thread_name"`} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("export missing %s:\n%s", want, a.String())
		}
	}
}

func TestDurationsAndNames(t *testing.T) {
	tr := sampleTrace(1)
	hs := tr.DurationsMS("handshake")
	if len(hs) != 1 || hs[0] != 32 {
		t.Fatalf("handshake durations = %v, want [32]", hs)
	}
	names := tr.Names()
	want := []string{"dispatch", "handshake", "prepare", "slot"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if got := tr.DurationsMS("transfer"); got != nil {
		t.Fatalf("open span reported durations %v", got)
	}
}

func TestCapDropsAndZeroIDIsSafe(t *testing.T) {
	tr := New(1)
	tr.SetMaxSpans(2)
	tr.Complete("a", "", "", 0, ms(1))
	id := tr.Open("b", "", "", 0)
	dropped := tr.Open("c", "", "", 0)
	if dropped != 0 {
		t.Fatalf("span past the cap got ID %x", dropped)
	}
	if tr.Dropped() != 1 || tr.Len() != 2 {
		t.Fatalf("len=%d dropped=%d, want 2/1", tr.Len(), tr.Dropped())
	}
	tr.Close(dropped, ms(5)) // no-op
	tr.Close(id, ms(5))
	tr.Close(id, ms(9)) // double close is a no-op
	if got := tr.Spans()[1].End; got != ms(5) {
		t.Fatalf("double close moved end to %v", got)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if id := tr.Complete("x", "", "", 0, ms(1)); id != 0 {
		t.Fatalf("nil tracer returned id %x", id)
	}
	tr.Close(tr.Enter("x", "", "", 0), ms(1))
	tr.Exit(0, ms(1))
	tr.Instant("x", "", "", 0)
	if tr.Spans() != nil || tr.Names() != nil || tr.DurationsMS("x") != nil {
		t.Fatal("nil tracer leaked state")
	}
}
