package plant

import (
	"fmt"
	"math"
)

// Config parameterizes the flowsheet. Defaults place the plant at the
// Fig. 6 operating point: LTS level 50% with the valve at 11.48%.
type Config struct {
	// FeedKmolH is the combined raw gas feed rate.
	FeedKmolH float64
	// FeedLiquidFrac is the free-liquid fraction removed by the inlet
	// separator.
	FeedLiquidFrac float64
	// FeedC3Frac is the propane mole fraction of the feed liquids.
	FeedC3Frac float64
	// FeedTempC is the raw feed temperature.
	FeedTempC float64
	// CondenseFracDesign is the LTS liquid fraction at the design chill
	// temperature.
	CondenseFracDesign float64
	// DesignChillC is the LTS design temperature.
	DesignChillC float64
	// InletHoldupKmol / LTSHoldupKmol are drum inventories at 100%.
	InletHoldupKmol float64
	LTSHoldupKmol   float64
	// NominalValvePct and NominalLevelPct anchor the steady state; the
	// valve Cv is derived so these balance.
	NominalValvePct float64
	NominalLevelPct float64
	// SepCouplingK couples LTS outflow excursions back into the inlet
	// separator (pressure interaction along the liquid header).
	SepCouplingK float64
	// ColumnTauHours is the Depropanizer composition lag (0 = default
	// 0.02 h).
	ColumnTauHours float64
}

// DefaultConfig returns the Fig. 6 operating point.
func DefaultConfig() Config {
	return Config{
		FeedKmolH:          1000,
		FeedLiquidFrac:     0.08,
		FeedC3Frac:         0.30,
		FeedTempC:          25,
		CondenseFracDesign: 0.055,
		DesignChillC:       -20,
		InletHoldupKmol:    40,
		LTSHoldupKmol:      25,
		NominalValvePct:    11.48,
		NominalLevelPct:    50,
		SepCouplingK:       0.35,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"FeedKmolH", c.FeedKmolH},
		{"FeedLiquidFrac", c.FeedLiquidFrac},
		{"CondenseFracDesign", c.CondenseFracDesign},
		{"InletHoldupKmol", c.InletHoldupKmol},
		{"LTSHoldupKmol", c.LTSHoldupKmol},
		{"NominalValvePct", c.NominalValvePct},
		{"NominalLevelPct", c.NominalLevelPct},
	}
	for _, ch := range checks {
		if err := validatePositive(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.FeedLiquidFrac >= 1 || c.CondenseFracDesign >= 1 {
		return fmt.Errorf("plant: fractions must be < 1")
	}
	if c.NominalValvePct > 100 || c.NominalLevelPct > 100 {
		return fmt.Errorf("plant: nominal operating point out of range")
	}
	return nil
}

// Flows is a snapshot of the molar flows plotted in Fig. 6(b).
type Flows struct {
	SepLiq    float64 // inlet separator liquid outflow (kmol/h)
	LTSLiq    float64 // LTS liquid through the control valve (kmol/h)
	TowerFeed float64 // mixed liquids into the Depropanizer (kmol/h)
}

// Plant is the composed flowsheet.
type Plant struct {
	cfg       Config
	inletSep  Separator
	lts       Separator
	ltsValve  Valve
	exchanger Exchanger
	chiller   Chiller
	column    Column
	flows     Flows
	ltsTempC  float64
}

// New builds a plant at steady state.
func New(cfg Config) (*Plant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plant{
		cfg:       cfg,
		inletSep:  Separator{HoldupKmol: cfg.InletHoldupKmol, LevelPct: 50},
		lts:       Separator{HoldupKmol: cfg.LTSHoldupKmol, LevelPct: cfg.NominalLevelPct},
		exchanger: Exchanger{Effectiveness: 0.6},
		chiller:   Chiller{SetpointC: cfg.DesignChillC, Approach: 0.05},
		column:    Column{TauHours: cfg.ColumnTauHours, ReboilDutyPct: 50},
	}
	if p.column.TauHours <= 0 {
		p.column.TauHours = 0.02
	}
	// Derive the valve Cv so the nominal opening balances the nominal
	// condensate inflow at the nominal level.
	gasFlow := cfg.FeedKmolH * (1 - cfg.FeedLiquidFrac)
	ltsLiqIn := gasFlow * cfg.CondenseFracDesign
	head := math.Sqrt(cfg.NominalLevelPct / 100)
	p.ltsValve = Valve{Cv: ltsLiqIn / (cfg.NominalValvePct / 100 * head)}
	p.ltsValve.SetOpen(cfg.NominalValvePct)
	// Initialize flows and column at the balanced point.
	sepLiq := cfg.FeedKmolH * cfg.FeedLiquidFrac
	p.flows = Flows{SepLiq: sepLiq, LTSLiq: ltsLiqIn, TowerFeed: sepLiq + ltsLiqIn}
	p.column.DesignFeed = p.flows.TowerFeed
	p.column.BottomsC3 = cfg.FeedC3Frac * 0.08
	p.ltsTempC = cfg.DesignChillC
	return p, nil
}

// Step advances the plant by dt seconds.
func (p *Plant) Step(dtSeconds float64) {
	if dtSeconds <= 0 {
		return
	}
	dtH := dtSeconds / 3600
	cfg := p.cfg

	// Feed split at the inlet separator.
	feedLiq := cfg.FeedKmolH * cfg.FeedLiquidFrac
	gasFlow := cfg.FeedKmolH * (1 - cfg.FeedLiquidFrac)

	// Temperature chain: feed gas -> gas/gas exchanger (cooled by LTS
	// overhead) -> chiller -> LTS.
	preCooled := p.exchanger.HotOutletC(cfg.FeedTempC, p.ltsTempC)
	p.ltsTempC = p.chiller.OutletC(preCooled)

	// Condensation at the LTS.
	ltsLiqIn := gasFlow * CondensedFraction(cfg.CondenseFracDesign, cfg.DesignChillC, p.ltsTempC)

	// LTS liquid outflow through the control valve.
	ltsOut := p.ltsValve.Flow(p.lts.LevelPct)
	p.lts.Step(dtH, ltsLiqIn, ltsOut)

	// Inlet separator: nominal liquid in, outflow self-regulating on its
	// level, disturbed by LTS outflow excursions through the shared
	// liquid header (this produces the SepLiq variation in Fig. 6(b)).
	nominalLTS := gasFlow * cfg.CondenseFracDesign
	disturb := cfg.SepCouplingK * (ltsOut - nominalLTS)
	sepOut := feedLiq*(1+0.8*(p.inletSep.LevelPct-50)/50) - disturb
	if sepOut < 0 {
		sepOut = 0
	}
	p.inletSep.Step(dtH, feedLiq, sepOut)

	// Mix and feed the Depropanizer.
	towerFeed := sepOut + ltsOut
	p.column.Step(dtH, towerFeed, cfg.FeedC3Frac)

	p.flows = Flows{SepLiq: sepOut, LTSLiq: ltsOut, TowerFeed: towerFeed}
}

// --- sensors -------------------------------------------------------------

// LTSLevelPct returns the LTS liquid level percent (the controlled
// variable of the Fig. 6 loop).
func (p *Plant) LTSLevelPct() float64 { return p.lts.LevelPct }

// InletSepLevelPct returns the inlet separator level percent.
func (p *Plant) InletSepLevelPct() float64 { return p.inletSep.LevelPct }

// Flows returns the current molar-flow snapshot.
func (p *Plant) Flows() Flows { return p.flows }

// LTSTempC returns the LTS operating temperature.
func (p *Plant) LTSTempC() float64 { return p.ltsTempC }

// BottomsC3 returns the Depropanizer bottoms propane fraction.
func (p *Plant) BottomsC3() float64 { return p.column.BottomsC3 }

// ValveOpenPct returns the physical LTS valve opening.
func (p *Plant) ValveOpenPct() float64 { return p.ltsValve.EffectiveOpen() }

// NominalValvePct returns the steady-state valve opening (11.48% at the
// Fig. 6 operating point).
func (p *Plant) NominalValvePct() float64 { return p.cfg.NominalValvePct }

// --- actuators and faults ------------------------------------------------

// SetLTSValve commands the LTS liquid valve opening in percent.
func (p *Plant) SetLTSValve(pct float64) { p.ltsValve.SetOpen(pct) }

// SetChillerDuty commands the propane-refrigeration duty in percent:
// 0% holds 0 C, 100% holds -40 C; 50% is the -20 C design point.
func (p *Plant) SetChillerDuty(pct float64) {
	p.chiller.SetpointC = -0.4 * clampPct(pct)
}

// ChillerDutyPct returns the current commanded duty.
func (p *Plant) ChillerDutyPct() float64 { return -p.chiller.SetpointC / 0.4 }

// DisturbFeedTemp shifts the raw feed temperature (used to exercise the
// chiller temperature loop).
func (p *Plant) DisturbFeedTemp(deltaC float64) { p.cfg.FeedTempC += deltaC }

// SetReboilDuty commands the Depropanizer reboiler duty in percent (50%
// is the design point; more duty strips more propane from the bottoms).
func (p *Plant) SetReboilDuty(pct float64) { p.column.ReboilDutyPct = clampPct(pct) }

// ReboilDutyPct returns the commanded reboiler duty.
func (p *Plant) ReboilDutyPct() float64 {
	if p.column.ReboilDutyPct <= 0 {
		return 50
	}
	return p.column.ReboilDutyPct
}

// DisturbFeedC3 shifts the feed propane fraction (used to exercise the
// composition loop).
func (p *Plant) DisturbFeedC3(delta float64) {
	p.cfg.FeedC3Frac += delta
	if p.cfg.FeedC3Frac < 0 {
		p.cfg.FeedC3Frac = 0
	}
}

// StickLTSValve injects the Fig. 6 fault: the valve output is forced to
// pct regardless of controller commands.
func (p *Plant) StickLTSValve(pct float64) { p.ltsValve.Stick(pct) }

// UnstickLTSValve clears the valve fault.
func (p *Plant) UnstickLTSValve() { p.ltsValve.Unstick() }

// ValveStuck reports whether the fault is active.
func (p *Plant) ValveStuck() bool { return p.ltsValve.Stuck() }
