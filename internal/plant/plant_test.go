package plant

import (
	"math"
	"testing"
)

func newPlant(t *testing.T) *Plant {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func stepFor(p *Plant, seconds, dt float64) {
	for elapsed := 0.0; elapsed < seconds; elapsed += dt {
		p.Step(dt)
	}
}

func TestSteadyStateHolds(t *testing.T) {
	p := newPlant(t)
	level0 := p.LTSLevelPct()
	stepFor(p, 600, 0.25)
	if math.Abs(p.LTSLevelPct()-level0) > 2 {
		t.Fatalf("level drifted from %.2f to %.2f at nominal opening", level0, p.LTSLevelPct())
	}
	f := p.Flows()
	if f.TowerFeed <= 0 || f.SepLiq <= 0 || f.LTSLiq <= 0 {
		t.Fatalf("flows collapsed at steady state: %+v", f)
	}
	if math.Abs(f.TowerFeed-(f.SepLiq+f.LTSLiq)) > 1e-6 {
		t.Fatalf("mass balance broken: %+v", f)
	}
}

func TestStuckValveDrainsLTS(t *testing.T) {
	// The Fig. 6(b) fault: valve forced to 75% instead of 11.48%.
	p := newPlant(t)
	p.StickLTSValve(75)
	level0 := p.LTSLevelPct()
	stepFor(p, 300, 0.25)
	if p.LTSLevelPct() >= level0-10 {
		t.Fatalf("level only fell from %.1f to %.1f under 75%% stuck valve", level0, p.LTSLevelPct())
	}
}

func TestStuckValveSpikesTowerFeed(t *testing.T) {
	p := newPlant(t)
	nominal := p.Flows().TowerFeed
	p.StickLTSValve(75)
	p.Step(0.25)
	p.Step(0.25)
	if p.Flows().TowerFeed <= nominal*1.5 {
		t.Fatalf("tower feed %.1f did not spike above nominal %.1f", p.Flows().TowerFeed, nominal)
	}
}

func TestRecoveryAfterUnstick(t *testing.T) {
	// After the fault clears and the (healthy) controller restores the
	// nominal opening, the level must climb back toward the setpoint.
	p := newPlant(t)
	p.StickLTSValve(75)
	stepFor(p, 300, 0.25)
	low := p.LTSLevelPct()
	p.UnstickLTSValve()
	p.SetLTSValve(5) // close below nominal to refill
	stepFor(p, 600, 0.25)
	if p.LTSLevelPct() <= low+5 {
		t.Fatalf("level %.1f did not recover from %.1f", p.LTSLevelPct(), low)
	}
}

func TestValveCommandsIgnoredWhileStuck(t *testing.T) {
	p := newPlant(t)
	p.StickLTSValve(75)
	p.SetLTSValve(11.48)
	if p.ValveOpenPct() != 75 {
		t.Fatalf("stuck valve moved: %.1f", p.ValveOpenPct())
	}
	if !p.ValveStuck() {
		t.Fatal("fault flag lost")
	}
	p.UnstickLTSValve()
	if p.ValveOpenPct() != 11.48 {
		t.Fatalf("commanded opening lost across fault: %.2f", p.ValveOpenPct())
	}
}

func TestSepLiqDisturbedByLTSExcursion(t *testing.T) {
	// Fig. 6(b): the inlet separator flow varies during the fault.
	p := newPlant(t)
	nominal := p.Flows().SepLiq
	p.StickLTSValve(75)
	p.Step(0.25)
	if math.Abs(p.Flows().SepLiq-nominal) < 1 {
		t.Fatalf("sep liquid flow unperturbed (%.2f vs %.2f)", p.Flows().SepLiq, nominal)
	}
}

func TestLevelBounded(t *testing.T) {
	p := newPlant(t)
	p.StickLTSValve(100)
	stepFor(p, 3600, 0.5)
	if p.LTSLevelPct() < 0 {
		t.Fatalf("level went negative: %f", p.LTSLevelPct())
	}
	p.UnstickLTSValve()
	p.SetLTSValve(0)
	stepFor(p, 7200, 0.5)
	if p.LTSLevelPct() > 100 {
		t.Fatalf("level above 100%%: %f", p.LTSLevelPct())
	}
}

func TestChillerTemperatureChain(t *testing.T) {
	p := newPlant(t)
	stepFor(p, 60, 0.25)
	tc := p.LTSTempC()
	if tc > -15 || tc < -30 {
		t.Fatalf("LTS temperature %.1fC implausible for a -20C chiller", tc)
	}
}

func TestColdPlantCondensesMore(t *testing.T) {
	base := CondensedFraction(0.055, -20, -20)
	colder := CondensedFraction(0.055, -20, -30)
	warmer := CondensedFraction(0.055, -20, -10)
	if colder <= base || warmer >= base {
		t.Fatalf("condensation trend wrong: %f / %f / %f", colder, base, warmer)
	}
	if CondensedFraction(0.5, 0, 1e9) != 0 {
		t.Fatal("condensed fraction not clamped at 0")
	}
	if CondensedFraction(0.5, 1e9, 0) != 1 {
		t.Fatal("condensed fraction not clamped at 1")
	}
}

func TestColumnLagsTowardFeed(t *testing.T) {
	c := Column{TauHours: 0.1, DesignFeed: 100}
	c.Step(0.5, 100, 0.3) // long step relative to tau
	want := 0.3 * 0.08
	if math.Abs(c.BottomsC3-want) > 0.01 {
		t.Fatalf("bottoms C3 = %f, want ~%f", c.BottomsC3, want)
	}
	// Overload degrades separation.
	c2 := Column{TauHours: 0.1, DesignFeed: 100, BottomsC3: want}
	c2.Step(1.0, 200, 0.3)
	if c2.BottomsC3 <= want {
		t.Fatal("overloaded column did not slip more C3")
	}
}

func TestClosedLoopPIDHoldsLevel(t *testing.T) {
	// A simple proportional controller on the valve keeps the level at
	// setpoint despite a feed disturbance.
	cfg := DefaultConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setpoint := 50.0
	for i := 0; i < 4000; i++ {
		if i == 2000 {
			cfg.FeedKmolH = 1100 // +10% feed
			p.cfg = cfg
		}
		err := p.LTSLevelPct() - setpoint
		p.SetLTSValve(cfg.NominalValvePct + 2*err)
		p.Step(0.25)
	}
	if math.Abs(p.LTSLevelPct()-setpoint) > 3 {
		t.Fatalf("closed loop settled at %.2f, want ~%.0f", p.LTSLevelPct(), setpoint)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.FeedKmolH = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero feed accepted")
	}
	bad = DefaultConfig()
	bad.FeedLiquidFrac = 1.5
	if _, err := New(bad); err == nil {
		t.Fatal("liquid fraction > 1 accepted")
	}
	bad = DefaultConfig()
	bad.NominalValvePct = 150
	if _, err := New(bad); err == nil {
		t.Fatal("valve opening > 100 accepted")
	}
}

func TestSeparatorLevelIntegration(t *testing.T) {
	s := Separator{HoldupKmol: 10, LevelPct: 50}
	s.Step(0.1, 20, 10) // net +10 kmol/h for 0.1h = +1 kmol = +10%
	if math.Abs(s.LevelPct-60) > 1e-9 {
		t.Fatalf("level = %f, want 60", s.LevelPct)
	}
	s.Step(10, 0, 100)
	if s.LevelPct != 0 {
		t.Fatal("level not clamped at 0")
	}
}

func TestValveCharacteristic(t *testing.T) {
	v := Valve{Cv: 100}
	v.SetOpen(50)
	fullHead := v.Flow(100)
	halfHead := v.Flow(50)
	if fullHead <= halfHead {
		t.Fatal("flow must grow with head")
	}
	if math.Abs(fullHead-50) > 1e-9 {
		t.Fatalf("flow at 50%% open, full head = %f, want 50", fullHead)
	}
	if v.Flow(0) != 0 || v.Flow(-5) != 0 {
		t.Fatal("flow with no head")
	}
	v.SetOpen(150)
	if v.OpenPct != 100 {
		t.Fatal("opening not clamped")
	}
}
