// Package plant is a lumped-parameter dynamic model of the natural-gas
// processing facility from the paper's case study (Fig. 4): raw gas feeds
// combine into the Inlet Separator; overhead gas is pre-cooled in the
// gas/gas exchanger and chilled; the cold stream flashes in the
// Low-Temperature Separator (LTS); separator liquids mix and feed the
// Depropanizer column.
//
// It replaces the Honeywell UniSim hardware-in-loop simulator: the EVM
// experiments only need the *shape* of the Fig. 6(b) transients (LTS level
// collapse under a stuck valve, molar-flow excursions, slow recovery), and
// those are governed by holdup mass balances that this model integrates
// explicitly.
package plant

import (
	"fmt"
	"math"
)

// Separator is a liquid holdup drum: level integrates inflow minus
// outflow. Level is expressed in percent of full range.
type Separator struct {
	// HoldupKmol is the liquid inventory at 100% level.
	HoldupKmol float64
	// LevelPct is the current liquid level in [0,100].
	LevelPct float64
}

// Step integrates the level over dt hours with the given molar flows
// (kmol/h). The level saturates at [0,100].
func (s *Separator) Step(dtHours, inflow, outflow float64) {
	if s.HoldupKmol <= 0 {
		return
	}
	s.LevelPct += (inflow - outflow) / s.HoldupKmol * 100 * dtHours
	if s.LevelPct < 0 {
		s.LevelPct = 0
	}
	if s.LevelPct > 100 {
		s.LevelPct = 100
	}
}

// Valve is a control valve with a square-root installed characteristic.
// A stuck-output fault (the Fig. 6 failure: 75% instead of 11.48%)
// overrides the commanded opening.
type Valve struct {
	// Cv scales flow at full opening and unit head.
	Cv float64
	// OpenPct is the commanded opening in [0,100].
	OpenPct float64

	stuck    bool
	stuckPct float64
}

// SetOpen commands the valve opening (clamped to [0,100]).
func (v *Valve) SetOpen(pct float64) {
	v.OpenPct = clampPct(pct)
}

// Stick forces the valve to a fixed opening regardless of commands,
// modeling the failed controller output.
func (v *Valve) Stick(pct float64) {
	v.stuck = true
	v.stuckPct = clampPct(pct)
}

// Unstick clears the fault.
func (v *Valve) Unstick() { v.stuck = false }

// Stuck reports whether the fault is active.
func (v *Valve) Stuck() bool { return v.stuck }

// EffectiveOpen returns the physical opening, accounting for the fault.
func (v *Valve) EffectiveOpen() float64 {
	if v.stuck {
		return v.stuckPct
	}
	return v.OpenPct
}

// Flow returns the molar flow (kmol/h) for the given upstream head,
// expressed as level percent of the feeding drum.
func (v *Valve) Flow(headPct float64) float64 {
	if headPct <= 0 {
		return 0
	}
	return v.Cv * (v.EffectiveOpen() / 100) * math.Sqrt(headPct/100)
}

// Exchanger is the gas/gas pre-cooler: a fixed-effectiveness counterflow
// heat exchanger between the warm inlet gas and the cold LTS overhead.
type Exchanger struct {
	// Effectiveness in [0,1].
	Effectiveness float64
}

// HotOutletC returns the pre-cooled gas temperature for the given hot
// inlet and cold return temperatures.
func (e *Exchanger) HotOutletC(hotInC, coldInC float64) float64 {
	eff := e.Effectiveness
	if eff < 0 {
		eff = 0
	}
	if eff > 1 {
		eff = 1
	}
	return hotInC - eff*(hotInC-coldInC)
}

// Chiller is the propane refrigeration unit: it cools its inlet toward a
// setpoint with a first-order approach.
type Chiller struct {
	// SetpointC is the target outlet temperature.
	SetpointC float64
	// Approach is the residual fraction of (inlet - setpoint) that
	// survives (0 = ideal chiller).
	Approach float64
}

// OutletC returns the chilled stream temperature.
func (c *Chiller) OutletC(inC float64) float64 {
	return c.SetpointC + c.Approach*(inC-c.SetpointC)
}

// CondensedFraction returns the fraction of the gas stream that flashes to
// liquid in the LTS at temperature tC. Colder gas condenses more heavies;
// the linear slope is anchored at the design point.
func CondensedFraction(designFrac, designTempC, tC float64) float64 {
	f := designFrac * (1 + 0.015*(designTempC-tC))
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Column is the Depropanizer: bottoms propane content follows the feed
// with a first-order lag; heavier feed rates degrade separation slightly
// and more reboil duty strips more propane out of the bottoms.
type Column struct {
	// TauHours is the composition lag time constant.
	TauHours float64
	// DesignFeed is the nominal feed rate (kmol/h).
	DesignFeed float64
	// BottomsC3 is the current bottoms propane mole fraction.
	BottomsC3 float64
	// ReboilDutyPct modulates separation: 50% is the design point;
	// higher duty leaves less propane in the bottoms.
	ReboilDutyPct float64
}

// separation returns the fraction of feed C3 that slips to the bottoms
// at the current reboil duty (0.08 at the 50% design point).
func (c *Column) separation() float64 {
	duty := c.ReboilDutyPct
	if duty <= 0 {
		duty = 50
	}
	s := 0.08 * (1.5 - duty/100)
	if s < 0.01 {
		s = 0.01
	}
	return s
}

// Step advances the bottoms composition for dt hours given the current
// feed flow and feed propane fraction.
func (c *Column) Step(dtHours, feedFlow, feedC3 float64) {
	if c.TauHours <= 0 {
		return
	}
	// Overloaded column separates worse: more C3 slips to the bottoms.
	overload := 0.0
	if c.DesignFeed > 0 && feedFlow > c.DesignFeed {
		overload = 0.05 * (feedFlow/c.DesignFeed - 1)
	}
	target := feedC3*c.separation() + overload
	f := dtHours / c.TauHours
	if f > 1 {
		f = 1
	}
	c.BottomsC3 += (target - c.BottomsC3) * f
	if c.BottomsC3 < 0 {
		c.BottomsC3 = 0
	}
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// validatePositive is a small helper for config checks.
func validatePositive(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("plant: %s must be positive, got %f", name, v)
	}
	return nil
}
