package mac

import (
	"fmt"
	"time"
)

// AMSyncCurrentMA is the continuous draw of the passive AM time-sync
// receiver on the FireFly add-on board. The paper stresses that sync is
// hardware-based and passive, so it costs almost nothing.
const AMSyncCurrentMA = 0.02

// RTLinkConfig parameterizes the TDMA energy model: a frame of
// SlotsPerFrame slots of SlotDuration, in which the node owns OwnedSlots
// and listens in ListenSlots, participating in every ActiveFrameEvery-th
// frame and sleeping whole frames in between.
type RTLinkConfig struct {
	SlotDuration  time.Duration
	SlotsPerFrame int
	OwnedSlots    int
	ListenSlots   int
	// ActiveFrameEvery skips frames to reach low duty cycles.
	ActiveFrameEvery int
	// SampleFraction is the fraction of a scheduled listen slot spent
	// sampling before aborting when the owner has nothing to send
	// (scheduled slots allow aggressive early abort because the receiver
	// knows exactly when a preamble would start).
	SampleFraction float64
}

// DefaultRTLinkConfig mirrors internal/rtlink.DefaultConfig for a node in
// a 6-node mesh Virtual Component.
func DefaultRTLinkConfig() RTLinkConfig {
	return RTLinkConfig{
		SlotDuration:     5 * time.Millisecond,
		SlotsPerFrame:    50,
		OwnedSlots:       1,
		ListenSlots:      5,
		ActiveFrameEvery: 1,
		SampleFraction:   0.1,
	}
}

// slotDuty returns the node's active-slot fraction within one superframe
// (the quantity the paper calls the duty cycle).
func (c RTLinkConfig) slotDuty() float64 {
	perFrame := float64(1+c.OwnedSlots+c.ListenSlots) / float64(c.SlotsPerFrame)
	return perFrame / float64(c.ActiveFrameEvery)
}

// RTLinkForDutyCycle scales ActiveFrameEvery so the active-slot duty cycle
// approximates d. Duty cycles above the single-frame fraction
// ((1+owned+listen)/slots) are clamped to it.
func RTLinkForDutyCycle(d float64) (RTLinkConfig, error) {
	if d <= 0 || d > 1 {
		return RTLinkConfig{}, fmt.Errorf("mac: duty cycle %f out of (0,1]", d)
	}
	cfg := DefaultRTLinkConfig()
	perFrame := cfg.slotDuty()
	every := int(perFrame/d + 0.5)
	if every < 1 {
		every = 1
	}
	cfg.ActiveFrameEvery = every
	return cfg, nil
}

// RTLink evaluates the TDMA energy/latency model. Scheduled, collision-
// free slots mean: no preambles, no overhearing, TX only when a message is
// queued, and idle listen slots aborted after a short channel sample. Time
// synchronization comes from the passive AM receiver at ~zero cost.
func RTLink(p Params, cfg RTLinkConfig) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.SlotDuration <= 0 || cfg.SlotsPerFrame < 2 || cfg.ActiveFrameEvery < 1 ||
		cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		return Result{}, fmt.Errorf("mac: rtlink config %+v", cfg)
	}
	frame := cfg.SlotDuration * time.Duration(cfg.SlotsPerFrame)
	superframe := frame * time.Duration(cfg.ActiveFrameEvery)

	data := airTime(p, p.PayloadBytes)
	rate := p.EventRateHz
	// TX only when traffic exists, bounded by owned slot capacity.
	txFrac := rate * data.Seconds()
	maxTxFrac := (time.Duration(cfg.OwnedSlots) * cfg.SlotDuration).Seconds() / superframe.Seconds()
	if txFrac > maxTxFrac {
		return Result{}, fmt.Errorf("mac: rtlink saturated (need %.4f of air, slots give %.4f)", txFrac, maxTxFrac)
	}
	// RX: short samples in idle listen slots plus actual frame receptions
	// at the event rate (each node hears its neighbors' messages).
	idleSample := float64(cfg.ListenSlots) * cfg.SlotDuration.Seconds() * cfg.SampleFraction / superframe.Seconds()
	rxFrac := idleSample + rate*data.Seconds()
	avg := blend(p.Model, txFrac, rxFrac) + AMSyncCurrentMA
	return Result{
		Protocol:     "RT-Link",
		DutyCycle:    cfg.slotDuty(),
		AvgCurrentMA: avg,
		Lifetime:     lifetime(p, avg),
		AvgLatency:   superframe / 2,
	}, nil
}
