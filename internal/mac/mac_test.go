package mac

import (
	"testing"
	"time"
)

func workload(rate float64) Params {
	p := DefaultParams()
	p.EventRateHz = rate
	return p
}

func TestRTLinkLifetimeAt5PercentNear1_8Years(t *testing.T) {
	// Paper §2.1: effective battery lifetime of 1.8 years with a 5% duty
	// cycle under RT-Link. We accept the right ballpark (1-3 years).
	cfg, err := RTLinkForDutyCycle(0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RTLink(workload(0.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	years := res.Lifetime.Hours() / (24 * 365)
	if years < 1.0 || years > 3.5 {
		t.Fatalf("RT-Link lifetime at 5%% duty = %.2f years, want ~1.8", years)
	}
}

func TestRTLinkBeatsBMACAndSMACAcrossDutyCycles(t *testing.T) {
	// Paper §2.1: RT-Link outperforms B-MAC and S-MAC across all duty
	// cycles.
	p := workload(0.1)
	for _, d := range []float64{0.02, 0.05, 0.10, 0.25, 0.50} {
		rtCfg, err := RTLinkForDutyCycle(d)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RTLink(p, rtCfg)
		if err != nil {
			t.Fatal(err)
		}
		bCfg, err := BMACForDutyCycle(d)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := BMAC(p, bCfg)
		if err != nil {
			t.Fatal(err)
		}
		sCfg, err := SMACForDutyCycle(d)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := SMAC(p, sCfg)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Lifetime <= bm.Lifetime {
			t.Errorf("duty %.2f: RT-Link %.2fy <= B-MAC %.2fy", d,
				rt.Lifetime.Hours()/8760, bm.Lifetime.Hours()/8760)
		}
		if rt.Lifetime <= sm.Lifetime {
			t.Errorf("duty %.2f: RT-Link %.2fy <= S-MAC %.2fy", d,
				rt.Lifetime.Hours()/8760, sm.Lifetime.Hours()/8760)
		}
	}
}

func TestRTLinkBeatsBaselinesAcrossEventRates(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5, 1.0} {
		p := workload(rate)
		rtCfg, _ := RTLinkForDutyCycle(0.1)
		bCfg, _ := BMACForDutyCycle(0.1)
		sCfg, _ := SMACForDutyCycle(0.1)
		rt, err := RTLink(p, rtCfg)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := BMAC(p, bCfg)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := SMAC(p, sCfg)
		if err != nil {
			t.Fatal(err)
		}
		if rt.AvgCurrentMA >= bm.AvgCurrentMA || rt.AvgCurrentMA >= sm.AvgCurrentMA {
			t.Errorf("rate %.2f: RT-Link current %.3f not lowest (B-MAC %.3f, S-MAC %.3f)",
				rate, rt.AvgCurrentMA, bm.AvgCurrentMA, sm.AvgCurrentMA)
		}
	}
}

func TestBMACEnergyGrowsWithEventRate(t *testing.T) {
	cfg := DefaultBMACConfig()
	lo, err := BMAC(workload(0.01), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := BMAC(workload(1.0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.AvgCurrentMA <= lo.AvgCurrentMA {
		t.Fatal("B-MAC current did not grow with event rate")
	}
	// B-MAC's per-message preamble cost makes it very rate-sensitive:
	// two orders of magnitude rate increase must cost at least 5x.
	if hi.AvgCurrentMA < 5*lo.AvgCurrentMA {
		t.Fatalf("B-MAC rate sensitivity too low: %.4f -> %.4f", lo.AvgCurrentMA, hi.AvgCurrentMA)
	}
}

func TestBMACLatencyHalfCheckInterval(t *testing.T) {
	cfg := DefaultBMACConfig()
	res, err := BMAC(workload(0.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency < cfg.CheckInterval/2 || res.AvgLatency > cfg.CheckInterval {
		t.Fatalf("B-MAC latency %v not ~ half the 100ms check interval", res.AvgLatency)
	}
}

func TestSMACIdleListeningDominatesAtLowRate(t *testing.T) {
	// At near-zero traffic S-MAC still pays its listen window, so current
	// should be roughly ListenFraction * RX current.
	cfg := DefaultSMACConfig()
	res, err := SMAC(workload(0.001), cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx := cfg.ListenFraction * DefaultParams().Model.RXCurrentMA
	if res.AvgCurrentMA < approx*0.8 || res.AvgCurrentMA > approx*1.5 {
		t.Fatalf("S-MAC idle current %.3f, want ~%.3f", res.AvgCurrentMA, approx)
	}
}

func TestSaturationDetected(t *testing.T) {
	if _, err := BMAC(workload(50), DefaultBMACConfig()); err == nil {
		t.Fatal("saturated B-MAC accepted")
	}
	cfg := DefaultRTLinkConfig()
	cfg.ActiveFrameEvery = 100
	if _, err := RTLink(workload(10), cfg); err == nil {
		t.Fatal("saturated RT-Link accepted")
	}
}

func TestLowerDutyCycleExtendsLifetime(t *testing.T) {
	p := workload(0.05)
	var prev time.Duration
	for _, d := range []float64{0.1, 0.05, 0.02, 0.01} {
		cfg, err := RTLinkForDutyCycle(d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RTLink(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && res.Lifetime <= prev {
			t.Fatalf("lifetime did not grow as duty cycle fell (%.3f)", d)
		}
		prev = res.Lifetime
	}
}

func TestRTLinkLatencyTracksFrameSkip(t *testing.T) {
	p := workload(0.01)
	cfg := DefaultRTLinkConfig()
	r1, err := RTLink(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ActiveFrameEvery = 4
	r4, err := RTLink(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r4.AvgLatency != 4*r1.AvgLatency {
		t.Fatalf("latency %v -> %v, want 4x", r1.AvgLatency, r4.AvgLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := BMACForDutyCycle(0); err == nil {
		t.Fatal("zero duty accepted")
	}
	if _, err := SMACForDutyCycle(1.5); err == nil {
		t.Fatal("duty > 1 accepted")
	}
	if _, err := RTLinkForDutyCycle(-1); err == nil {
		t.Fatal("negative duty accepted")
	}
	bad := DefaultParams()
	bad.PayloadBytes = 0
	if _, err := BMAC(bad, DefaultBMACConfig()); err == nil {
		t.Fatal("bad params accepted")
	}
}
