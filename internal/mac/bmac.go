package mac

import (
	"fmt"
	"time"
)

// BMACConfig parameterizes low-power listening: receivers briefly sample
// the channel every CheckInterval; senders prefix every frame with a
// preamble as long as the check interval so the sample catches it.
type BMACConfig struct {
	CheckInterval time.Duration
	// SampleTime is the duration of one channel sample.
	SampleTime time.Duration
}

// DefaultBMACConfig returns B-MAC defaults (100 ms check interval, 2.5 ms
// channel sample).
func DefaultBMACConfig() BMACConfig {
	return BMACConfig{CheckInterval: 100 * time.Millisecond, SampleTime: 2500 * time.Microsecond}
}

// BMACForDutyCycle returns a config whose idle-listening duty cycle (the
// sampling alone, without traffic) equals d.
func BMACForDutyCycle(d float64) (BMACConfig, error) {
	if d <= 0 || d > 1 {
		return BMACConfig{}, fmt.Errorf("mac: duty cycle %f out of (0,1]", d)
	}
	cfg := DefaultBMACConfig()
	cfg.CheckInterval = time.Duration(float64(cfg.SampleTime) / d)
	return cfg, nil
}

// BMAC evaluates the B-MAC energy/latency model.
//
// Sender cost per message: preamble (= check interval, worst case the
// receiver samples just after the preamble starts) + data frame.
// Receiver cost: periodic channel samples + half the preamble on average +
// the data frame. Both roles are averaged (every node both sends at the
// event rate and receives its neighbors' traffic at the same rate).
func BMAC(p Params, cfg BMACConfig) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.CheckInterval <= 0 || cfg.SampleTime <= 0 {
		return Result{}, fmt.Errorf("mac: bmac config %+v", cfg)
	}
	data := airTime(p, p.PayloadBytes)
	preamble := cfg.CheckInterval

	// Per-second time fractions.
	rate := p.EventRateHz
	txFrac := rate * (preamble + data).Seconds()
	sampleFrac := cfg.SampleTime.Seconds() / cfg.CheckInterval.Seconds()
	rxFrac := sampleFrac + rate*(preamble/2+data).Seconds()
	if txFrac+rxFrac > 1 {
		return Result{}, fmt.Errorf("mac: bmac saturated (tx %.2f + rx %.2f > 1)", txFrac, rxFrac)
	}
	avg := blend(p.Model, txFrac, rxFrac)
	return Result{
		Protocol:     "B-MAC",
		DutyCycle:    txFrac + rxFrac,
		AvgCurrentMA: avg,
		Lifetime:     lifetime(p, avg),
		AvgLatency:   preamble/2 + data,
	}, nil
}
