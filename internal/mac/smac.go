package mac

import (
	"fmt"
	"time"
)

// SMACConfig parameterizes S-MAC duty cycling: every CycleLen the node
// listens for ListenFraction of the cycle (carrying SYNC + RTS/CTS
// exchanges) and sleeps the rest.
type SMACConfig struct {
	CycleLen       time.Duration
	ListenFraction float64
	// SyncBytes is the per-cycle synchronization packet cost.
	SyncBytes int
}

// DefaultSMACConfig returns S-MAC defaults (1.15 s cycle, 10% listen).
func DefaultSMACConfig() SMACConfig {
	return SMACConfig{CycleLen: 1150 * time.Millisecond, ListenFraction: 0.10, SyncBytes: 9}
}

// SMACForDutyCycle returns a config with the given listen fraction.
func SMACForDutyCycle(d float64) (SMACConfig, error) {
	if d <= 0 || d > 1 {
		return SMACConfig{}, fmt.Errorf("mac: duty cycle %f out of (0,1]", d)
	}
	cfg := DefaultSMACConfig()
	cfg.ListenFraction = d
	return cfg, nil
}

// SMAC evaluates the S-MAC energy/latency model.
//
// The node listens for ListenFraction of every cycle regardless of
// traffic, transmits a SYNC packet each cycle, and exchanges
// RTS/CTS/DATA/ACK for each message. Messages wait for the next listen
// window (average latency CycleLen*(1-ListenFraction)/2 plus the
// handshake).
func SMAC(p Params, cfg SMACConfig) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.CycleLen <= 0 || cfg.ListenFraction <= 0 || cfg.ListenFraction > 1 {
		return Result{}, fmt.Errorf("mac: smac config %+v", cfg)
	}
	data := airTime(p, p.PayloadBytes)
	ctrl := airTime(p, 10) // RTS/CTS/ACK-sized control frames
	sync := airTime(p, cfg.SyncBytes)

	rate := p.EventRateHz
	perCycleTX := sync.Seconds() / cfg.CycleLen.Seconds()
	// Each message: sender TX (RTS + DATA), RX (CTS + ACK); receiver the
	// mirror image. Averaged both directions -> 2 ctrl + 1 data each way.
	msgTX := rate * (ctrl + data).Seconds()
	msgRX := rate * (2*ctrl + data).Seconds()
	listenFrac := cfg.ListenFraction
	txFrac := perCycleTX + msgTX
	rxFrac := listenFrac + msgRX
	if txFrac+rxFrac > 1 {
		return Result{}, fmt.Errorf("mac: smac saturated")
	}
	avg := blend(p.Model, txFrac, rxFrac)
	return Result{
		Protocol:     "S-MAC",
		DutyCycle:    txFrac + rxFrac,
		AvgCurrentMA: avg,
		Lifetime:     lifetime(p, avg),
		AvgLatency:   time.Duration(float64(cfg.CycleLen)*(1-listenFrac)/2) + 2*ctrl + data,
	}, nil
}
