// Package mac provides energy/latency models and event-driven simulations
// for the three medium-access protocols the paper compares: RT-Link
// (hardware-synchronized TDMA), B-MAC (asynchronous low-power-listen CSMA)
// and S-MAC (loosely synchronized duty cycling).
//
// The paper (§2.1) states that RT-Link achieves an effective battery
// lifetime of 1.8 years at a 5% duty cycle and outperforms B-MAC and S-MAC
// across all duty cycles and event rates; experiment E3 regenerates that
// comparison with these models.
package mac

import (
	"fmt"
	"time"

	"evm/internal/radio"
)

// Params holds the workload and platform parameters shared by all three
// protocol models.
type Params struct {
	Model        radio.EnergyModel
	BatteryMAH   float64
	BitrateBPS   float64
	PayloadBytes int
	// EventRateHz is the application message rate per node.
	EventRateHz float64
}

// DefaultParams returns FireFly-like parameters: 2xAA cells, 802.15.4
// radio, 32-byte samples.
func DefaultParams() Params {
	return Params{
		Model:        radio.DefaultEnergyModel(),
		BatteryMAH:   2600,
		BitrateBPS:   250_000,
		PayloadBytes: 32,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.BatteryMAH <= 0 || p.BitrateBPS <= 0 || p.PayloadBytes <= 0 {
		return fmt.Errorf("mac: invalid params %+v", p)
	}
	if p.EventRateHz < 0 {
		return fmt.Errorf("mac: negative event rate")
	}
	return nil
}

// Result is the outcome of one protocol/configuration evaluation.
type Result struct {
	Protocol     string
	DutyCycle    float64 // achieved radio duty cycle in [0,1]
	AvgCurrentMA float64
	Lifetime     time.Duration
	AvgLatency   time.Duration
}

// airTime returns the on-air duration of a frame carrying n payload bytes.
func airTime(p Params, n int) time.Duration {
	bytes := n + radio.Overhead
	return time.Duration(float64(bytes*8) / p.BitrateBPS * float64(time.Second))
}

// lifetime converts an average current draw to battery lifetime.
func lifetime(p Params, avgMA float64) time.Duration {
	if avgMA <= 0 {
		return 0
	}
	hours := p.BatteryMAH / avgMA
	return time.Duration(hours * float64(time.Hour))
}

// blend returns the average current for a node that spends the given
// fractions of time in TX, RX and sleep (fractions must sum to <= 1; the
// remainder is sleep).
func blend(m radio.EnergyModel, txFrac, rxFrac float64) float64 {
	sleepFrac := 1 - txFrac - rxFrac
	if sleepFrac < 0 {
		sleepFrac = 0
	}
	return m.TXCurrentMA*txFrac + m.RXCurrentMA*rxFrac + m.SleepCurrentMA*sleepFrac
}
