package control

import (
	"math"
	"testing"
)

// simulateTank runs a PID against a first-order integrating process
// (like the LTS level) and returns the final value and max overshoot.
func simulateTank(pid *PID, setpoint float64, steps int) (final, maxV float64) {
	level := 0.0
	const dt = 0.25
	for i := 0; i < steps; i++ {
		u := pid.Update(setpoint, level, dt)
		// Valve feeds the tank; leakage proportional to the level.
		level += dt * (0.1*u - 0.05*level)
		if level > maxV {
			maxV = level
		}
	}
	return level, maxV
}

func TestPIDConvergesOnIntegratingProcess(t *testing.T) {
	pid, err := NewPID(2.0, 0.5, 0.1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	final, _ := simulateTank(pid, 50, 4000)
	if math.Abs(final-50) > 1.0 {
		t.Fatalf("level settled at %.2f, want ~50", final)
	}
}

func TestPIDOutputClamped(t *testing.T) {
	pid, err := NewPID(100, 0, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := pid.Update(1000, 0, 0.1)
	if out != 10 {
		t.Fatalf("out = %f, want clamp at 10", out)
	}
	out = pid.Update(-1000, 0, 0.1)
	if out != 0 {
		t.Fatalf("out = %f, want clamp at 0", out)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Saturate hard for a long time, then reverse the error: with
	// anti-windup the output must leave the rail quickly.
	pid, err := NewPID(1, 1, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		pid.Update(100, 0, 0.1) // error +100, output pinned at 10
	}
	// Now the measurement overshoots: error becomes negative.
	steps := 0
	for ; steps < 50; steps++ {
		if pid.Update(100, 150, 0.1) < 10 {
			break
		}
	}
	if steps >= 50 {
		t.Fatal("integral wind-up: output stuck at rail after error reversal")
	}
}

func TestPIDProportionalOnly(t *testing.T) {
	pid, err := NewPID(2, 0, 0, -100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out := pid.Update(10, 4, 1); out != 12 {
		t.Fatalf("P-only out = %f, want 12", out)
	}
}

func TestPIDDerivativeNotPrimedFirstStep(t *testing.T) {
	pid, err := NewPID(0, 0, 10, -100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// First step: no derivative kick even with a big error.
	if out := pid.Update(50, 0, 0.1); out != 0 {
		t.Fatalf("derivative kick on first sample: %f", out)
	}
	// Second step with unchanged error: derivative 0.
	if out := pid.Update(50, 0, 0.1); out != 0 {
		t.Fatalf("derivative on constant error: %f", out)
	}
}

func TestPIDStateMigration(t *testing.T) {
	a, err := NewPID(2, 0.5, 0.1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.Update(50, float64(i)*0.3, 0.25)
	}
	integ, prevErr, primed := a.State()
	b, err := NewPID(2, 0.5, 0.1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	b.SetState(integ, prevErr, primed)
	// Identical next outputs.
	ua := a.Update(50, 31, 0.25)
	ub := b.Update(50, 31, 0.25)
	if ua != ub {
		t.Fatalf("migrated PID diverged: %f vs %f", ua, ub)
	}
}

func TestPIDReset(t *testing.T) {
	p, err := NewPID(1, 1, 1, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Update(5, 0, 1)
	p.Reset()
	integ, prevErr, primed := p.State()
	if integ != 0 || prevErr != 0 || primed {
		t.Fatal("reset incomplete")
	}
}

func TestPIDBadRange(t *testing.T) {
	if _, err := NewPID(1, 0, 0, 10, 10); err == nil {
		t.Fatal("degenerate output range accepted")
	}
}

func TestBiquadDCGainUnity(t *testing.T) {
	f, err := NewLowPass(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var y float64
	for i := 0; i < 2000; i++ {
		y = f.Filter(1.0)
	}
	if math.Abs(y-1.0) > 0.001 {
		t.Fatalf("DC gain = %f, want 1", y)
	}
}

func TestBiquadAttenuatesHighFrequency(t *testing.T) {
	// 0.1 Hz cutoff at 4 Hz sampling: a 1.9 Hz tone must be strongly
	// attenuated, a DC offset passed.
	f, err := NewLowPass(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxOut := 0.0
	for i := 0; i < 4000; i++ {
		x := math.Sin(2 * math.Pi * 1.9 * float64(i) / 4)
		y := f.Filter(x)
		if i > 2000 && math.Abs(y) > maxOut {
			maxOut = math.Abs(y)
		}
	}
	if maxOut > 0.05 {
		t.Fatalf("1.9Hz leakage amplitude = %f, want < 0.05", maxOut)
	}
}

func TestBiquadSmoothsSteps(t *testing.T) {
	f, err := NewLowPass(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A unit step must rise gradually (second-order: starts slow).
	y1 := f.Filter(1)
	if y1 > 0.1 {
		t.Fatalf("first response %f too fast for a 2nd-order LPF", y1)
	}
}

func TestBiquadStateMigration(t *testing.T) {
	a, err := NewLowPass(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a.Filter(float64(i % 7))
	}
	b, err := NewLowPass(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.SetState(a.State())
	if a.Filter(3.3) != b.Filter(3.3) {
		t.Fatal("migrated filter diverged")
	}
}

func TestBiquadInvalidDesign(t *testing.T) {
	if _, err := NewLowPass(3, 4); err == nil {
		t.Fatal("cutoff above Nyquist accepted")
	}
	if _, err := NewLowPass(0, 4); err == nil {
		t.Fatal("zero cutoff accepted")
	}
}

func TestFilteredPIDComposite(t *testing.T) {
	c, err := NewFilteredPID(2, 0, 0.5, -1000, 1000, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Noisy measurement around 20: outputs must be smoother than a raw
	// PID fed the same noise.
	raw, err := NewPID(2, 0, 0.5, -1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var filtVar, rawVar, prevF, prevR float64
	for i := 0; i < 400; i++ {
		noise := 5 * math.Sin(2*math.Pi*1.9*float64(i)/4)
		m := 20 + noise
		uf := c.Update(50, m, 0.25)
		ur := raw.Update(50, m, 0.25)
		if i > 100 {
			filtVar += (uf - prevF) * (uf - prevF)
			rawVar += (ur - prevR) * (ur - prevR)
		}
		prevF, prevR = uf, ur
	}
	if filtVar >= rawVar {
		t.Fatalf("filtered output rougher than raw: %f vs %f", filtVar, rawVar)
	}
	c.Reset()
}

func TestZeroDTUpdate(t *testing.T) {
	p, err := NewPID(1, 1, 1, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.Update(5, 0, 0); out != 5 {
		t.Fatalf("zero-dt update = %f, want proportional-only 5", out)
	}
}
