// Package control implements the controller primitives from the paper's
// case study (§4.2): a PID regulator with output limiting and integral
// anti-windup, preceded by second-order (biquad) low-pass filtering of the
// measured variable — "the liquid's percentage level in LTS is used as an
// input to the controllers, which perform second order filtering with a
// PID regulator".
package control

import (
	"fmt"
	"math"
)

// PID is a discrete PID regulator with clamped output and conditional
// anti-windup (integration pauses while the output saturates).
type PID struct {
	Kp, Ki, Kd float64
	OutMin     float64
	OutMax     float64
	// Reverse flips the control action: the output grows when the
	// measurement exceeds the setpoint (a level controller draining a
	// vessel through a valve is reverse-acting).
	Reverse bool

	integ   float64
	prevErr float64
	primed  bool
}

// NewPID returns a PID with the given gains and output range.
func NewPID(kp, ki, kd, outMin, outMax float64) (*PID, error) {
	if outMin >= outMax {
		return nil, fmt.Errorf("control: output range [%f,%f]", outMin, outMax)
	}
	return &PID{Kp: kp, Ki: ki, Kd: kd, OutMin: outMin, OutMax: outMax}, nil
}

// Update advances the regulator by dt seconds and returns the new output.
func (p *PID) Update(setpoint, measured, dt float64) float64 {
	if dt <= 0 {
		e := setpoint - measured
		if p.Reverse {
			e = -e
		}
		return p.clamp(p.Kp*e + p.integ)
	}
	err := setpoint - measured
	if p.Reverse {
		err = -err
	}
	deriv := 0.0
	if p.primed {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.primed = true

	raw := p.Kp*err + p.integ + p.Ki*err*dt + p.Kd*deriv
	out := p.clamp(raw)
	// Anti-windup: only integrate when not pushing further into the rail.
	//evm:allow-floatacc clamp returns raw unchanged or the exact rail constant, so these equalities are exact by construction
	if out == raw || (out == p.OutMax && err < 0) || (out == p.OutMin && err > 0) {
		p.integ += p.Ki * err * dt
	}
	return out
}

func (p *PID) clamp(v float64) float64 {
	if v > p.OutMax {
		return p.OutMax
	}
	if v < p.OutMin {
		return p.OutMin
	}
	return v
}

// Reset clears the regulator state (integral and derivative history).
func (p *PID) Reset() {
	p.integ = 0
	p.prevErr = 0
	p.primed = false
}

// State returns the internal state for migration.
func (p *PID) State() (integ, prevErr float64, primed bool) {
	return p.integ, p.prevErr, p.primed
}

// SetState restores state captured by State (used when a backup takes
// over a control task mid-flight).
func (p *PID) SetState(integ, prevErr float64, primed bool) {
	p.integ = integ
	p.prevErr = prevErr
	p.primed = primed
}

// Biquad is a direct-form-I second-order IIR filter.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	x1, x2     float64
	y1, y2     float64
}

// NewLowPass designs a second-order Butterworth-style low-pass biquad
// with the given cutoff and sample rates (cutoff < sample/2).
func NewLowPass(cutoffHz, sampleHz float64) (*Biquad, error) {
	if cutoffHz <= 0 || sampleHz <= 0 || cutoffHz >= sampleHz/2 {
		return nil, fmt.Errorf("control: cutoff %f Hz invalid for sample rate %f Hz", cutoffHz, sampleHz)
	}
	const q = 0.7071 // Butterworth
	w0 := 2 * math.Pi * cutoffHz / sampleHz
	alpha := math.Sin(w0) / (2 * q)
	cosW0 := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosW0) / 2 / a0,
		b1: (1 - cosW0) / a0,
		b2: (1 - cosW0) / 2 / a0,
		a1: -2 * cosW0 / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// Filter processes one sample.
func (f *Biquad) Filter(x float64) float64 {
	y := f.b0*x + f.b1*f.x1 + f.b2*f.x2 - f.a1*f.y1 - f.a2*f.y2
	f.x2, f.x1 = f.x1, x
	f.y2, f.y1 = f.y1, y
	return y
}

// Reset zeroes the filter history.
func (f *Biquad) Reset() {
	f.x1, f.x2, f.y1, f.y2 = 0, 0, 0, 0
}

// State returns the filter history for migration.
func (f *Biquad) State() [4]float64 { return [4]float64{f.x1, f.x2, f.y1, f.y2} }

// SetState restores history captured by State.
func (f *Biquad) SetState(s [4]float64) { f.x1, f.x2, f.y1, f.y2 = s[0], s[1], s[2], s[3] }

// FilteredPID composes the paper's controller: biquad pre-filter feeding
// a PID regulator.
type FilteredPID struct {
	Filter *Biquad
	PID    *PID
}

// NewFilteredPID builds the composite controller.
func NewFilteredPID(kp, ki, kd, outMin, outMax, cutoffHz, sampleHz float64) (*FilteredPID, error) {
	pid, err := NewPID(kp, ki, kd, outMin, outMax)
	if err != nil {
		return nil, err
	}
	f, err := NewLowPass(cutoffHz, sampleHz)
	if err != nil {
		return nil, err
	}
	return &FilteredPID{Filter: f, PID: pid}, nil
}

// Update filters the measurement and advances the PID.
func (c *FilteredPID) Update(setpoint, measured, dt float64) float64 {
	return c.PID.Update(setpoint, c.Filter.Filter(measured), dt)
}

// Reset clears both stages.
func (c *FilteredPID) Reset() {
	c.Filter.Reset()
	c.PID.Reset()
}
