package rtlink

import (
	"fmt"
	"slices"
	"strconv"
	"time"

	"evm/internal/radio"
	"evm/internal/sim"
	"evm/internal/span"
)

// dataKind is the radio.Kind used for RT-Link data frames.
const dataKind radio.Kind = 1

// Network drives the TDMA frame structure for a set of links sharing a
// medium. One Network corresponds to one synchronized RT-Link cell.
type Network struct {
	eng   *sim.Engine
	med   *radio.Medium
	cfg   Config
	sched Schedule
	links map[radio.NodeID]*Link
	// order holds the joined node IDs sorted ascending. Frame-loop state
	// changes (reserve replenish, sync wake/sleep) iterate it instead of
	// the links map: map order is randomized, and per-frame radio state
	// transitions must land in the same order every run.
	order []radio.NodeID
	// slots caches the sorted slot indices of sched, so per-frame slot
	// scheduling is deterministic without re-sorting each frame.
	slots []int
	frame uint64

	started bool
	stopped bool
}

// NewNetwork creates a TDMA network over the medium. The schedule may be
// replaced at runtime with SetSchedule.
func NewNetwork(med *radio.Medium, cfg Config, sched Schedule) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(cfg); err != nil {
		return nil, err
	}
	// A maximal fragment must fit on air inside one slot, or listeners
	// would sleep mid-frame and every full slot would be lost.
	airBytes := cfg.MaxPayload + fragHeaderLen + radio.Overhead
	airTime := time.Duration(float64(airBytes*8) / med.Config().BitrateBPS * float64(time.Second))
	if airTime > cfg.SlotDuration {
		return nil, fmt.Errorf("rtlink: max fragment air time %v exceeds slot %v", airTime, cfg.SlotDuration)
	}
	return &Network{
		eng:   med.Engine(),
		med:   med,
		cfg:   cfg,
		sched: sched,
		slots: sim.SortedKeys(sched),
		links: make(map[radio.NodeID]*Link),
	}, nil
}

// Config returns the frame configuration.
func (n *Network) Config() Config { return n.cfg }

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Frame returns the number of frames started so far.
func (n *Network) Frame() uint64 { return n.frame }

// Schedule returns the current slot schedule.
func (n *Network) Schedule() Schedule { return n.sched }

// SetSchedule swaps the slot schedule; it takes effect at the next frame
// boundary (the EVM uses this for runtime slot reassignment).
func (n *Network) SetSchedule(s Schedule) error {
	if err := s.Validate(n.cfg); err != nil {
		return err
	}
	n.sched = s
	n.slots = sim.SortedKeys(s)
	return nil
}

// Join creates the link layer for a node whose radio is already attached
// to the medium.
func (n *Network) Join(id radio.NodeID) (*Link, error) {
	r := n.med.Radio(id)
	if r == nil {
		return nil, fmt.Errorf("rtlink: node %v has no radio on the medium", id)
	}
	if _, ok := n.links[id]; ok {
		return nil, fmt.Errorf("rtlink: node %v already joined", id)
	}
	l := &Link{
		net:    n,
		r:      r,
		reasm:  newReassembler(),
		routes: make(map[radio.NodeID]radio.NodeID),
	}
	r.SetHandler(l.onFrame)
	n.links[id] = l
	n.order = append(n.order, id)
	slices.Sort(n.order)
	return l, nil
}

// Leave removes a node's link layer (the rollback of Join, used when a
// runtime admission fails partway). The node's radio stays attached; the
// caller decides whether to detach it from the medium as well.
func (n *Network) Leave(id radio.NodeID) {
	l, ok := n.links[id]
	if !ok {
		return
	}
	l.r.SetHandler(nil)
	delete(n.links, id)
	if i := slices.Index(n.order, id); i >= 0 {
		n.order = append(n.order[:i], n.order[i+1:]...)
	}
}

// Link returns the link layer for id, or nil.
func (n *Network) Link(id radio.NodeID) *Link { return n.links[id] }

// Start begins the TDMA frame loop at the current virtual time.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	n.eng.At(n.eng.Now(), n.runFrame)
}

// Stop halts the frame loop after the current frame completes.
func (n *Network) Stop() { n.stopped = true }

func (n *Network) runFrame() {
	if n.stopped {
		return
	}
	frameStart := n.eng.Now()
	n.frame++
	active := (n.frame-1)%uint64(n.cfg.ActiveFrameEvery) == 0
	if t := n.eng.Tracer(); t != nil && active {
		t.Complete("frame", "rtlink", "rtlink", frameStart, frameStart+n.cfg.FrameDuration(),
			span.Arg{Key: "frame", Val: strconv.FormatUint(n.frame, 10)})
	}
	for _, id := range n.order {
		n.links[id].txThisFrame = 0 // replenish network reserves
	}
	if active {
		// Sync slot: every live node wakes to catch the AM pulse.
		n.med.BroadcastSync()
		for _, id := range n.order {
			if l := n.links[id]; !l.r.Failed() {
				l.r.SetState(radio.StateRX)
			}
		}
		n.eng.AtPrio(frameStart+n.cfg.SlotDuration, -1, func() {
			for _, id := range n.order {
				if l := n.links[id]; !l.r.Failed() {
					l.r.SetState(radio.StateSleep)
				}
			}
		})
		// Capture: SetSchedule applies next frame. Slots schedule in
		// ascending order so engine insertion order (the tie-break for
		// same-time, same-priority events) never depends on map order.
		sched, slots := n.sched, n.slots
		tracer := n.eng.Tracer()
		for _, slot := range slots {
			as := sched[slot]
			at := frameStart + time.Duration(slot)*n.cfg.SlotDuration
			if tracer != nil {
				tracer.Complete("slot", "rtlink", "rtlink", at, at+n.cfg.SlotDuration,
					span.Arg{Key: "slot", Val: strconv.Itoa(slot)},
					span.Arg{Key: "owner", Val: strconv.Itoa(int(as.Owner))})
			}
			n.eng.AtPrio(at, 0, func() { n.openSlot(as) })
			n.eng.AtPrio(at+n.cfg.SlotDuration, -1, func() { n.closeSlot(as) })
		}
	}
	n.eng.At(frameStart+n.cfg.FrameDuration(), n.runFrame)
}

// openSlot wakes the listeners and fires the owner's transmission.
func (n *Network) openSlot(as SlotAssign) {
	for _, id := range as.Listeners {
		if l, ok := n.links[id]; ok && !l.r.Failed() {
			l.r.SetState(radio.StateRX)
		}
	}
	owner, ok := n.links[as.Owner]
	if !ok || owner.r.Failed() {
		return
	}
	owner.transmitNext()
}

// closeSlot returns all participants to sleep.
func (n *Network) closeSlot(as SlotAssign) {
	for _, id := range as.Listeners {
		if l, ok := n.links[id]; ok && !l.r.Failed() {
			l.r.SetState(radio.StateSleep)
		}
	}
	if owner, ok := n.links[as.Owner]; ok && !owner.r.Failed() {
		owner.r.SetState(radio.StateSleep)
	}
}
