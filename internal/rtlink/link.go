package rtlink

import (
	"fmt"

	"evm/internal/radio"
)

// LinkStats counts link-layer activity for one node.
type LinkStats struct {
	MsgsSent      int // messages accepted for transmission
	MsgsDelivered int // whole messages delivered to the handler
	FragsSent     int
	FragsReceived int
	FragsRelayed  int
	QueueDrops    int
	// ReserveDeferrals counts slots skipped because the per-frame
	// network reservation was exhausted.
	ReserveDeferrals int
}

// Link is the per-node RT-Link layer: an outgoing fragment queue drained
// one fragment per owned slot, a reassembler, and a static next-hop
// routing table for multi-hop forwarding.
type Link struct {
	net     *Network
	r       *radio.Radio
	txq     []fragment
	nextID  uint16
	reasm   *reassembler
	handler func(Message)
	routes  map[radio.NodeID]radio.NodeID
	stats   LinkStats
	// MaxQueue bounds the fragment queue; 0 means unbounded.
	MaxQueue int
	// txBudget caps fragments transmitted per frame (nano-RK network
	// reservation); 0 means unlimited.
	txBudget    int
	txThisFrame int
}

// SetNetworkReservation caps the node's transmissions to n fragments per
// TDMA frame, enforcing a nano-RK-style network reserve. Pass 0 to
// remove the cap.
func (l *Link) SetNetworkReservation(n int) { l.txBudget = n }

// ID returns the node ID.
func (l *Link) ID() radio.NodeID { return l.r.ID() }

// Radio exposes the underlying radio (for failure injection and energy
// accounting in experiments).
func (l *Link) Radio() *radio.Radio { return l.r }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of fragments waiting for slots.
func (l *Link) QueueLen() int { return len(l.txq) }

// SetHandler installs the message delivery callback.
func (l *Link) SetHandler(fn func(Message)) { l.handler = fn }

// SetRoute installs dst -> nextHop for multi-hop forwarding.
func (l *Link) SetRoute(dst, nextHop radio.NodeID) { l.routes[dst] = nextHop }

// nextHop resolves the link-layer hop for an end-to-end destination.
func (l *Link) nextHop(dst radio.NodeID) radio.NodeID {
	if dst == radio.Broadcast {
		return radio.Broadcast
	}
	if h, ok := l.routes[dst]; ok {
		return h
	}
	return dst // assume one hop
}

// Send queues a message for transmission in this node's owned slots.
func (l *Link) Send(msg Message) error {
	if l.r.Failed() {
		return fmt.Errorf("rtlink: node %v is failed", l.ID())
	}
	msg.Src = l.ID()
	l.nextID++
	frags, err := fragmentMessage(msg, l.nextID, l.net.cfg.MaxPayload)
	if err != nil {
		return err
	}
	if l.MaxQueue > 0 && len(l.txq)+len(frags) > l.MaxQueue {
		l.stats.QueueDrops++
		return fmt.Errorf("rtlink: node %v queue full (%d)", l.ID(), len(l.txq))
	}
	l.txq = append(l.txq, frags...)
	l.stats.MsgsSent++
	return nil
}

// FramesNeeded returns how many TDMA frames a payload of the given size
// occupies for a node owning slotsPerFrame slots.
func (l *Link) FramesNeeded(payloadBytes, slotsOwned int) int {
	if slotsOwned <= 0 {
		return 0
	}
	frags := (payloadBytes + l.net.cfg.MaxPayload - 1) / l.net.cfg.MaxPayload
	if frags == 0 {
		frags = 1
	}
	return (frags + slotsOwned - 1) / slotsOwned
}

// transmitNext sends the head-of-line fragment in the current slot.
func (l *Link) transmitNext() {
	if len(l.txq) == 0 {
		return
	}
	if l.txBudget > 0 && l.txThisFrame >= l.txBudget {
		l.stats.ReserveDeferrals++
		return // network reserve exhausted for this frame
	}
	l.txThisFrame++
	f := l.txq[0]
	l.txq = l.txq[1:]
	pkt := radio.Packet{
		Dst:     f.dst,
		Hop:     l.nextHop(f.dst),
		Kind:    dataKind,
		Payload: f.encode(),
	}
	if _, err := l.r.Send(pkt); err == nil {
		l.stats.FragsSent++
	}
}

// onFrame handles a radio frame addressed to this node's hop.
func (l *Link) onFrame(pkt radio.Packet) {
	if pkt.Kind != dataKind {
		return
	}
	f, err := decodeFragment(pkt.Payload)
	if err != nil {
		return
	}
	l.stats.FragsReceived++
	if f.dst != l.ID() && f.dst != radio.Broadcast {
		// Relay toward the destination if a route exists.
		if _, ok := l.routes[f.dst]; ok {
			l.txq = append(l.txq, f)
			l.stats.FragsRelayed++
		}
		return
	}
	msg, done := l.reasm.add(f)
	if !done {
		return
	}
	l.stats.MsgsDelivered++
	if l.handler != nil {
		l.handler(msg)
	}
	// Broadcast fragments are also relayed by nodes with explicit routes?
	// No: broadcast stays single-hop in this model.
}
