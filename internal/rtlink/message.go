// Package rtlink implements an RT-Link-style time-synchronized TDMA link
// protocol over the internal/radio medium.
//
// RT-Link (Rowe, Mangharam, Rajkumar; SECON 2006) organizes time into
// fixed-length frames of transmission slots. A global out-of-band AM sync
// pulse marks every frame boundary; nodes transmit only in slots they own
// and listen only in slots where a neighbor may address them, sleeping the
// rest of the frame. Communication in owned slots is collision-free, which
// is what gives the EVM its bounded-latency control loops.
package rtlink

import (
	"encoding/binary"
	"errors"
	"fmt"

	"evm/internal/radio"
)

// Kind is the application-level message type carried end-to-end.
type Kind uint8

// Message is the unit handed to and received from the link layer. Messages
// larger than the slot payload are fragmented transparently.
type Message struct {
	Src     radio.NodeID
	Dst     radio.NodeID // end-to-end destination (Broadcast allowed)
	Kind    Kind
	Payload []byte
}

// fragment header layout (big endian):
//
//	0:2  src
//	2:4  dst
//	4    kind
//	5:7  msgID
//	7    frag index
//	8    frag total
const fragHeaderLen = 9

var errShortFrame = errors.New("rtlink: frame shorter than fragment header")

type fragment struct {
	src   radio.NodeID
	dst   radio.NodeID
	kind  Kind
	msgID uint16
	idx   uint8
	total uint8
	chunk []byte
}

func (f *fragment) encode() []byte {
	out := make([]byte, fragHeaderLen+len(f.chunk))
	binary.BigEndian.PutUint16(out[0:2], uint16(f.src))
	binary.BigEndian.PutUint16(out[2:4], uint16(f.dst))
	out[4] = byte(f.kind)
	binary.BigEndian.PutUint16(out[5:7], f.msgID)
	out[7] = f.idx
	out[8] = f.total
	copy(out[fragHeaderLen:], f.chunk)
	return out
}

func decodeFragment(b []byte) (fragment, error) {
	if len(b) < fragHeaderLen {
		return fragment{}, errShortFrame
	}
	f := fragment{
		src:   radio.NodeID(binary.BigEndian.Uint16(b[0:2])),
		dst:   radio.NodeID(binary.BigEndian.Uint16(b[2:4])),
		kind:  Kind(b[4]),
		msgID: binary.BigEndian.Uint16(b[5:7]),
		idx:   b[7],
		total: b[8],
	}
	f.chunk = make([]byte, len(b)-fragHeaderLen)
	copy(f.chunk, b[fragHeaderLen:])
	return f, nil
}

// fragmentMessage splits a message into slot-sized fragments.
func fragmentMessage(msg Message, msgID uint16, maxChunk int) ([]fragment, error) {
	if maxChunk <= 0 {
		return nil, fmt.Errorf("rtlink: maxChunk %d", maxChunk)
	}
	n := (len(msg.Payload) + maxChunk - 1) / maxChunk
	if n == 0 {
		n = 1
	}
	if n > 255 {
		return nil, fmt.Errorf("rtlink: message of %d bytes needs %d fragments (max 255)", len(msg.Payload), n)
	}
	frags := make([]fragment, 0, n)
	for i := 0; i < n; i++ {
		lo := i * maxChunk
		hi := lo + maxChunk
		if hi > len(msg.Payload) {
			hi = len(msg.Payload)
		}
		frags = append(frags, fragment{
			src:   msg.Src,
			dst:   msg.Dst,
			kind:  msg.Kind,
			msgID: msgID,
			idx:   uint8(i),
			total: uint8(n),
			chunk: msg.Payload[lo:hi],
		})
	}
	return frags, nil
}

// reassembler collects fragments into whole messages.
type reassembler struct {
	partial map[reasmKey]*reasmState
}

type reasmKey struct {
	src   radio.NodeID
	msgID uint16
}

type reasmState struct {
	total  uint8
	have   int
	chunks [][]byte
	kind   Kind
	dst    radio.NodeID
}

func newReassembler() *reassembler {
	return &reassembler{partial: make(map[reasmKey]*reasmState)}
}

// add returns the completed message when the final fragment arrives.
func (r *reassembler) add(f fragment) (Message, bool) {
	if f.total <= 1 {
		return Message{Src: f.src, Dst: f.dst, Kind: f.kind, Payload: f.chunk}, true
	}
	key := reasmKey{f.src, f.msgID}
	st, ok := r.partial[key]
	if !ok {
		st = &reasmState{total: f.total, chunks: make([][]byte, f.total), kind: f.kind, dst: f.dst}
		r.partial[key] = st
	}
	if int(f.idx) < len(st.chunks) && st.chunks[f.idx] == nil {
		st.chunks[f.idx] = f.chunk
		st.have++
	}
	if st.have < int(st.total) {
		return Message{}, false
	}
	delete(r.partial, key)
	var payload []byte
	for _, c := range st.chunks {
		payload = append(payload, c...)
	}
	return Message{Src: f.src, Dst: f.dst, Kind: st.kind, Payload: payload}, true
}
