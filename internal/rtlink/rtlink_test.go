package rtlink

import (
	"bytes"
	"testing"
	"time"

	"evm/internal/radio"
	"evm/internal/sim"
)

// testNet builds a mesh network of n nodes with a perfect channel.
func testNet(t *testing.T, n int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New()
	rcfg := radio.DefaultConfig()
	rcfg.RefPER = 0
	rcfg.Burst = radio.GilbertElliott{}
	med := radio.NewMedium(eng, sim.NewRNG(7), rcfg)
	ids := make([]radio.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		id := radio.NodeID(i)
		if _, err := med.Attach(id, radio.Position{X: float64(i), Y: 0}, radio.NewBattery(2600), radio.DefaultEnergyModel()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	cfg := DefaultConfig()
	sched, err := BuildMeshSchedule(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(med, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := net.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	return eng, net
}

func TestUnicastOneFrame(t *testing.T) {
	eng, net := testNet(t, 3)
	var got []Message
	net.Link(2).SetHandler(func(m Message) { got = append(got, m) })
	if err := net.Link(1).Send(Message{Dst: 2, Kind: 9, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 2)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].Kind != 9 || string(got[0].Payload) != "ping" || got[0].Src != 1 {
		t.Fatalf("bad message: %+v", got[0])
	}
}

func TestBroadcastMesh(t *testing.T) {
	eng, net := testNet(t, 4)
	count := 0
	for i := 2; i <= 4; i++ {
		net.Link(radio.NodeID(i)).SetHandler(func(Message) { count++ })
	}
	if err := net.Link(1).Send(Message{Dst: radio.Broadcast, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 2)
	if count != 3 {
		t.Fatalf("broadcast delivered to %d, want 3", count)
	}
}

func TestFragmentationLargeMessage(t *testing.T) {
	eng, net := testNet(t, 2)
	payload := make([]byte, 1000) // ~11 fragments at 96B
	for i := range payload {
		payload[i] = byte(i)
	}
	var got Message
	done := false
	net.Link(2).SetHandler(func(m Message) { got = m; done = true })
	if err := net.Link(1).Send(Message{Dst: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	net.Start()
	// 11 fragments, 1 owned slot per frame -> 11 frames.
	_ = eng.RunUntil(net.Config().FrameDuration() * 13)
	if !done {
		t.Fatal("large message not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("payload corrupted in reassembly")
	}
}

func TestFragmentMath(t *testing.T) {
	msg := Message{Src: 1, Dst: 2, Kind: 3, Payload: make([]byte, 250)}
	frags, err := fragmentMessage(msg, 42, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frags))
	}
	if len(frags[2].chunk) != 50 {
		t.Fatalf("tail chunk = %d, want 50", len(frags[2].chunk))
	}
	// Empty payload still produces one fragment.
	frags, err = fragmentMessage(Message{Dst: 2}, 1, 100)
	if err != nil || len(frags) != 1 {
		t.Fatalf("empty message fragments = %d err %v, want 1", len(frags), err)
	}
	// Oversize message rejected.
	if _, err := fragmentMessage(Message{Payload: make([]byte, 100*256)}, 1, 100); err == nil {
		t.Fatal("oversize message accepted")
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	f := fragment{src: 10, dst: 20, kind: 5, msgID: 999, idx: 3, total: 7, chunk: []byte("data")}
	got, err := decodeFragment(f.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.src != 10 || got.dst != 20 || got.kind != 5 || got.msgID != 999 ||
		got.idx != 3 || got.total != 7 || string(got.chunk) != "data" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := decodeFragment([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestReassemblerOutOfOrderAndDup(t *testing.T) {
	r := newReassembler()
	mk := func(idx uint8) fragment {
		return fragment{src: 1, dst: 2, msgID: 5, idx: idx, total: 3, chunk: []byte{idx}}
	}
	if _, done := r.add(mk(2)); done {
		t.Fatal("early completion")
	}
	if _, done := r.add(mk(2)); done { // duplicate
		t.Fatal("duplicate completed message")
	}
	if _, done := r.add(mk(0)); done {
		t.Fatal("early completion")
	}
	msg, done := r.add(mk(1))
	if !done {
		t.Fatal("not completed")
	}
	if !bytes.Equal(msg.Payload, []byte{0, 1, 2}) {
		t.Fatalf("payload = %v", msg.Payload)
	}
}

func TestMultiHopRelay(t *testing.T) {
	// Line topology 1-2-3 with node 3 out of radio range of node 1.
	eng := sim.New()
	rcfg := radio.DefaultConfig()
	rcfg.RefPER = 0
	rcfg.Burst = radio.GilbertElliott{}
	rcfg.RangeM = 15
	med := radio.NewMedium(eng, sim.NewRNG(7), rcfg)
	for i, x := range []float64{0, 10, 20} {
		if _, err := med.Attach(radio.NodeID(i+1), radio.Position{X: x}, nil, radio.DefaultEnergyModel()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	sched, err := BuildLineSchedule([]radio.NodeID{1, 2, 3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(med, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := net.Join(radio.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	net.Link(1).SetRoute(3, 2)
	net.Link(2).SetRoute(3, 3)
	var got []Message
	net.Link(3).SetHandler(func(m Message) { got = append(got, m) })
	if err := net.Link(1).Send(Message{Dst: 3, Payload: []byte("hop")}); err != nil {
		t.Fatal(err)
	}
	net.Start()
	_ = eng.RunUntil(cfg.FrameDuration() * 4)
	if len(got) != 1 {
		t.Fatalf("relayed delivery = %d, want 1", len(got))
	}
	if got[0].Src != 1 || string(got[0].Payload) != "hop" {
		t.Fatalf("bad relayed message: %+v", got[0])
	}
	if net.Link(2).Stats().FragsRelayed != 1 {
		t.Fatalf("relay count = %d, want 1", net.Link(2).Stats().FragsRelayed)
	}
}

func TestFailedOwnerSlotSilent(t *testing.T) {
	eng, net := testNet(t, 2)
	got := 0
	net.Link(2).SetHandler(func(Message) { got++ })
	if err := net.Link(1).Send(Message{Dst: 2, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	net.Link(1).Radio().Fail()
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 3)
	if got != 0 {
		t.Fatal("failed node transmitted")
	}
	if err := net.Link(1).Send(Message{Dst: 2}); err == nil {
		t.Fatal("send on failed node accepted")
	}
}

func TestQueueBound(t *testing.T) {
	_, net := testNet(t, 2)
	l := net.Link(1)
	l.MaxQueue = 2
	if err := l.Send(Message{Dst: 2, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(Message{Dst: 2, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(Message{Dst: 2, Payload: []byte("c")}); err == nil {
		t.Fatal("queue overflow accepted")
	}
	if l.Stats().QueueDrops != 1 {
		t.Fatalf("QueueDrops = %d, want 1", l.Stats().QueueDrops)
	}
}

func TestLatencyWithinOneFrame(t *testing.T) {
	// E5 invariant: a message queued before the owner's slot is delivered
	// within the same frame; worst case latency < 2 frame durations.
	eng, net := testNet(t, 6)
	var deliveredAt time.Duration
	net.Link(6).SetHandler(func(Message) { deliveredAt = eng.Now() })
	sentAt := time.Duration(0)
	if err := net.Link(1).Send(Message{Dst: 6, Payload: []byte("ctl")}); err != nil {
		t.Fatal(err)
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 2)
	if deliveredAt == 0 {
		t.Fatal("not delivered")
	}
	lat := deliveredAt - sentAt
	if lat > net.Config().FrameDuration() {
		t.Fatalf("latency %v exceeds one frame %v", lat, net.Config().FrameDuration())
	}
}

func TestDutyCycleEnergySavings(t *testing.T) {
	// A node in a 50-slot frame owning 1 slot and listening in a few
	// others must consume far less than an always-on radio.
	eng, net := testNet(t, 3)
	net.Start()
	_ = eng.RunUntil(10 * time.Second)
	consumed := net.Link(1).Radio().EnergyConsumedMAH()
	alwaysOn := radio.DefaultEnergyModel().RXCurrentMA * (10.0 / 3600.0)
	if consumed >= alwaysOn/2 {
		t.Fatalf("TDMA node consumed %.4f mAh, always-on %.4f — no duty-cycle savings", consumed, alwaysOn)
	}
	if consumed <= 0 {
		t.Fatal("no energy consumed at all")
	}
}

func TestActiveFrameEveryReducesEnergy(t *testing.T) {
	build := func(every int) float64 {
		eng := sim.New()
		rcfg := radio.DefaultConfig()
		rcfg.RefPER = 0
		rcfg.Burst = radio.GilbertElliott{}
		med := radio.NewMedium(eng, sim.NewRNG(7), rcfg)
		ids := []radio.NodeID{1, 2}
		for i, id := range ids {
			_, err := med.Attach(id, radio.Position{X: float64(i)}, radio.NewBattery(2600), radio.DefaultEnergyModel())
			if err != nil {
				t.Fatal(err)
			}
		}
		cfg := DefaultConfig()
		cfg.ActiveFrameEvery = every
		sched, err := BuildMeshSchedule(ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewNetwork(med, cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if _, err := net.Join(id); err != nil {
				t.Fatal(err)
			}
		}
		net.Start()
		_ = eng.RunUntil(20 * time.Second)
		return net.Link(1).Radio().EnergyConsumedMAH()
	}
	full := build(1)
	sparse := build(10)
	if sparse >= full/4 {
		t.Fatalf("sparse frames consumed %.5f, full %.5f — expected big reduction", sparse, full)
	}
}

func TestScheduleValidation(t *testing.T) {
	cfg := DefaultConfig()
	bad := Schedule{0: {Owner: 1}} // slot 0 is the sync slot
	if err := bad.Validate(cfg); err == nil {
		t.Fatal("sync-slot assignment accepted")
	}
	bad = Schedule{cfg.SlotsPerFrame: {Owner: 1}}
	if err := bad.Validate(cfg); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	bad = Schedule{1: {Owner: 1, Listeners: []radio.NodeID{1}}}
	if err := bad.Validate(cfg); err == nil {
		t.Fatal("owner-as-listener accepted")
	}
}

func TestBuildSchedules(t *testing.T) {
	cfg := DefaultConfig()
	ids := []radio.NodeID{3, 1, 2}
	star, err := BuildStarSchedule(1, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(star.OwnedSlots(1)) != 1 {
		t.Fatal("hub must own exactly one slot")
	}
	if len(star.ListenSlots(1)) != 2 {
		t.Fatalf("hub listens in %d slots, want 2", len(star.ListenSlots(1)))
	}
	mesh, err := BuildMeshSchedule(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got := len(mesh.ListenSlots(id)); got != 2 {
			t.Fatalf("mesh node %v listens in %d slots, want 2", id, got)
		}
	}
	frac := mesh.ActiveSlotFraction(1, cfg)
	want := 4.0 / 50.0 // sync + own + 2 listens
	if frac != want {
		t.Fatalf("active fraction = %f, want %f", frac, want)
	}
	// Too many nodes for the frame.
	big := make([]radio.NodeID, cfg.SlotsPerFrame+1)
	for i := range big {
		big[i] = radio.NodeID(i + 1)
	}
	if _, err := BuildMeshSchedule(big, cfg); err == nil {
		t.Fatal("oversized mesh accepted")
	}
}

func TestRuntimeScheduleSwap(t *testing.T) {
	eng, net := testNet(t, 3)
	got := 0
	net.Link(3).SetHandler(func(Message) { got++ })
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration())
	// Give node 1 a second slot at runtime.
	sched := net.Schedule()
	sched2 := make(Schedule, len(sched)+1)
	for k, v := range sched {
		sched2[k] = v
	}
	sched2[10] = SlotAssign{Owner: 1, Listeners: []radio.NodeID{2, 3}}
	if err := net.SetSchedule(sched2); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(1).Send(Message{Dst: 3, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(1).Send(Message{Dst: 3, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	// Both messages fit in a single frame now that node 1 owns 2 slots.
	_ = eng.RunUntil(net.Config().FrameDuration() * 3)
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{SlotDuration: 0, SlotsPerFrame: 10, MaxPayload: 10, ActiveFrameEvery: 1},
		{SlotDuration: time.Millisecond, SlotsPerFrame: 1, MaxPayload: 10, ActiveFrameEvery: 1},
		{SlotDuration: time.Millisecond, SlotsPerFrame: 10, MaxPayload: 0, ActiveFrameEvery: 1},
		{SlotDuration: time.Millisecond, SlotsPerFrame: 10, MaxPayload: 10, ActiveFrameEvery: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("bad config accepted: %+v", bad)
		}
	}
}

func TestSlotAirTimeGuard(t *testing.T) {
	eng := sim.New()
	med := radio.NewMedium(eng, sim.NewRNG(1), radio.DefaultConfig())
	cfg := DefaultConfig()
	cfg.SlotDuration = 100 * time.Microsecond // too short for 96B payloads
	if _, err := NewNetwork(med, cfg, Schedule{}); err == nil {
		t.Fatal("slot shorter than air time accepted")
	}
}
