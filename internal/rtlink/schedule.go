package rtlink

import (
	"fmt"
	"sort"
	"time"

	"evm/internal/radio"
	"evm/internal/sim"
)

// Config parameterizes the TDMA frame structure.
type Config struct {
	// SlotDuration is the length of one transmission slot.
	SlotDuration time.Duration
	// SlotsPerFrame includes the implicit sync slot at index 0.
	SlotsPerFrame int
	// MaxPayload is the application payload bytes per slot after the
	// fragment header.
	MaxPayload int
	// ActiveFrameEvery makes nodes participate only in every k-th frame
	// (sleeping whole frames in between) to reach low duty cycles; 1
	// means every frame is active.
	ActiveFrameEvery int
}

// DefaultConfig returns a frame of 50 slots of 5 ms: a 250 ms frame, which
// is exactly the paper's "1/4 second or less" control cycle (objective 5).
// A 96-byte payload plus headers occupies ~3.9 ms on air at 250 kbit/s and
// fits one slot.
func DefaultConfig() Config {
	return Config{
		SlotDuration:     5 * time.Millisecond,
		SlotsPerFrame:    50,
		MaxPayload:       96,
		ActiveFrameEvery: 1,
	}
}

// FrameDuration returns the length of one TDMA frame.
func (c Config) FrameDuration() time.Duration {
	return c.SlotDuration * time.Duration(c.SlotsPerFrame)
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.SlotDuration <= 0 {
		return fmt.Errorf("rtlink: slot duration %v", c.SlotDuration)
	}
	if c.SlotsPerFrame < 2 {
		return fmt.Errorf("rtlink: need >=2 slots per frame, got %d", c.SlotsPerFrame)
	}
	if c.MaxPayload <= 0 {
		return fmt.Errorf("rtlink: max payload %d", c.MaxPayload)
	}
	if c.ActiveFrameEvery < 1 {
		return fmt.Errorf("rtlink: active frame every %d", c.ActiveFrameEvery)
	}
	return nil
}

// SlotAssign names the owner of a slot and the set of nodes that listen
// during it. Slot 0 is reserved for the sync pulse and may not be assigned.
type SlotAssign struct {
	Owner     radio.NodeID
	Listeners []radio.NodeID
}

// Schedule maps slot index -> assignment. Unassigned slots are silent (all
// nodes sleep).
type Schedule map[int]SlotAssign

// Validate checks the schedule against the config. Slots are checked
// in ascending order so the reported error is deterministic when
// several slots are invalid.
func (s Schedule) Validate(cfg Config) error {
	for _, slot := range sim.SortedKeys(s) {
		as := s[slot]
		if slot <= 0 || slot >= cfg.SlotsPerFrame {
			return fmt.Errorf("rtlink: slot %d out of range 1..%d", slot, cfg.SlotsPerFrame-1)
		}
		for _, l := range as.Listeners {
			if l == as.Owner {
				return fmt.Errorf("rtlink: slot %d owner %v also listens", slot, as.Owner)
			}
		}
	}
	return nil
}

// OwnedSlots returns the sorted slots owned by id.
func (s Schedule) OwnedSlots(id radio.NodeID) []int {
	var out []int
	for slot, as := range s {
		if as.Owner == id {
			out = append(out, slot)
		}
	}
	sort.Ints(out)
	return out
}

// ListenSlots returns the sorted slots in which id listens.
func (s Schedule) ListenSlots(id radio.NodeID) []int {
	var out []int
	for slot, as := range s {
		for _, l := range as.Listeners {
			if l == id {
				out = append(out, slot)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// ActiveSlotFraction returns the fraction of frame slots (incl. the sync
// slot) in which id is awake — the node's radio duty cycle within an
// active frame.
func (s Schedule) ActiveSlotFraction(id radio.NodeID, cfg Config) float64 {
	active := 1 // sync slot
	active += len(s.OwnedSlots(id))
	active += len(s.ListenSlots(id))
	return float64(active) / float64(cfg.SlotsPerFrame)
}

// BuildStarSchedule assigns one TX slot per node in a star topology rooted
// at hub: every node's transmissions are heard by the hub, and the hub's
// slot is heard by everyone. Slots are assigned in ascending node order
// starting at slot 1.
func BuildStarSchedule(hub radio.NodeID, nodes []radio.NodeID, cfg Config) (Schedule, error) {
	ordered := append([]radio.NodeID(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	sched := make(Schedule, len(ordered)+1)
	slot := 1
	// Hub slot first: all spokes listen.
	spokes := make([]radio.NodeID, 0, len(ordered))
	for _, n := range ordered {
		if n != hub {
			spokes = append(spokes, n)
		}
	}
	sched[slot] = SlotAssign{Owner: hub, Listeners: spokes}
	slot++
	for _, n := range spokes {
		if slot >= cfg.SlotsPerFrame {
			return nil, fmt.Errorf("rtlink: %d nodes do not fit in %d slots", len(ordered), cfg.SlotsPerFrame)
		}
		sched[slot] = SlotAssign{Owner: n, Listeners: []radio.NodeID{hub}}
		slot++
	}
	return sched, nil
}

// BuildMeshSchedule assigns one TX slot per node where every other node
// listens — full connectivity inside a Virtual Component (the paper's
// controllers all hear each other's outputs for passive observation).
func BuildMeshSchedule(nodes []radio.NodeID, cfg Config) (Schedule, error) {
	return BuildMeshScheduleK(nodes, cfg, 1)
}

// BuildMeshScheduleK is BuildMeshSchedule with k TX slots per node,
// interleaved round-robin (node order repeats k times). Controllers that
// send both an actuation and a health message every control cycle need
// k >= 2.
func BuildMeshScheduleK(nodes []radio.NodeID, cfg Config, k int) (Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("rtlink: slots per node %d", k)
	}
	ordered := append([]radio.NodeID(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	if len(ordered)*k+1 > cfg.SlotsPerFrame {
		return nil, fmt.Errorf("rtlink: %d nodes x %d slots do not fit in %d slots", len(ordered), k, cfg.SlotsPerFrame)
	}
	sched := make(Schedule, len(ordered)*k)
	slot := 1
	for round := 0; round < k; round++ {
		for _, n := range ordered {
			listeners := make([]radio.NodeID, 0, len(ordered)-1)
			for _, o := range ordered {
				if o != n {
					listeners = append(listeners, o)
				}
			}
			sched[slot] = SlotAssign{Owner: n, Listeners: listeners}
			slot++
		}
	}
	return sched, nil
}

// BuildLineSchedule assigns slots along a multi-hop line a-b-c-...: each
// node owns one slot heard by its immediate neighbors.
func BuildLineSchedule(line []radio.NodeID, cfg Config) (Schedule, error) {
	if len(line)+1 > cfg.SlotsPerFrame {
		return nil, fmt.Errorf("rtlink: line of %d does not fit in %d slots", len(line), cfg.SlotsPerFrame)
	}
	sched := make(Schedule, len(line))
	for i, n := range line {
		var listeners []radio.NodeID
		if i > 0 {
			listeners = append(listeners, line[i-1])
		}
		if i < len(line)-1 {
			listeners = append(listeners, line[i+1])
		}
		sched[i+1] = SlotAssign{Owner: n, Listeners: listeners}
	}
	return sched, nil
}
