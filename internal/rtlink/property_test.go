package rtlink

import (
	"bytes"
	"testing"
	"testing/quick"

	"evm/internal/radio"
	"evm/internal/sim"
)

func TestFragmentationRoundTripProperty(t *testing.T) {
	// Any payload up to the 255-fragment limit must reassemble exactly,
	// regardless of chunk size.
	f := func(data []byte, chunkSeed uint8) bool {
		chunk := int(chunkSeed%96) + 1
		if len(data) > chunk*255 {
			data = data[:chunk*255]
		}
		msg := Message{Src: 1, Dst: 2, Kind: 7, Payload: data}
		frags, err := fragmentMessage(msg, 42, chunk)
		if err != nil {
			return false
		}
		r := newReassembler()
		for i, fr := range frags {
			// Encode/decode each fragment as it would travel on air.
			dec, err := decodeFragment(fr.encode())
			if err != nil {
				return false
			}
			got, done := r.add(dec)
			if done != (i == len(frags)-1) {
				return false
			}
			if done {
				return bytes.Equal(got.Payload, data) && got.Kind == 7 && got.Src == 1
			}
		}
		return len(frags) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblyShuffledOrderProperty(t *testing.T) {
	rng := sim.NewRNG(9)
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{1}
		}
		if len(data) > 500 {
			data = data[:500]
		}
		frags, err := fragmentMessage(Message{Src: 3, Dst: 4, Payload: data}, 7, 32)
		if err != nil {
			return false
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := newReassembler()
		var got Message
		done := false
		for _, fr := range frags {
			if m, ok := r.add(fr); ok {
				got = m
				done = true
			}
		}
		return done && bytes.Equal(got.Payload, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBuildersNoSlotConflicts(t *testing.T) {
	cfg := DefaultConfig()
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%10) + 2
		k := int(kRaw%3) + 1
		ids := make([]radio.NodeID, n)
		for i := range ids {
			ids[i] = radio.NodeID(i + 1)
		}
		sched, err := BuildMeshScheduleK(ids, cfg, k)
		if err != nil {
			// Legitimately too large for the frame.
			return n*k+1 > cfg.SlotsPerFrame
		}
		if err := sched.Validate(cfg); err != nil {
			return false
		}
		// Every node owns exactly k slots; slot 0 never assigned.
		for _, id := range ids {
			if len(sched.OwnedSlots(id)) != k {
				return false
			}
		}
		if _, ok := sched[0]; ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
