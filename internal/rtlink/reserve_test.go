package rtlink

import (
	"testing"
	"time"

	"evm/internal/radio"
	"evm/internal/sim"
)

// reserveNet builds a 2-node network where node 1 owns 3 slots per frame.
func reserveNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New()
	rcfg := radio.DefaultConfig()
	rcfg.RefPER = 0
	rcfg.Burst = radio.GilbertElliott{}
	med := radio.NewMedium(eng, sim.NewRNG(2), rcfg)
	ids := []radio.NodeID{1, 2}
	for i, id := range ids {
		if _, err := med.Attach(id, radio.Position{X: float64(i * 3)}, nil, radio.DefaultEnergyModel()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	sched, err := BuildMeshScheduleK(ids, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(med, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := net.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	return eng, net
}

func TestNetworkReservationCapsThroughput(t *testing.T) {
	eng, net := reserveNet(t)
	l := net.Link(1)
	l.SetNetworkReservation(1) // 1 fragment per frame despite 3 owned slots
	delivered := 0
	net.Link(2).SetHandler(func(Message) { delivered++ })
	for i := 0; i < 6; i++ {
		if err := l.Send(Message{Dst: 2, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 3)
	// 3 frames x 1 fragment budget = 3 deliveries.
	if delivered != 3 {
		t.Fatalf("delivered %d in 3 frames under budget 1, want 3", delivered)
	}
	if l.Stats().ReserveDeferrals == 0 {
		t.Fatal("deferrals not counted")
	}
	// Remaining traffic drains in later frames (budget replenishes).
	_ = eng.RunUntil(net.Config().FrameDuration() * 7)
	if delivered != 6 {
		t.Fatalf("delivered %d total, want 6", delivered)
	}
}

func TestNoReservationUsesAllSlots(t *testing.T) {
	eng, net := reserveNet(t)
	l := net.Link(1)
	delivered := 0
	net.Link(2).SetHandler(func(Message) { delivered++ })
	for i := 0; i < 6; i++ {
		if err := l.Send(Message{Dst: 2, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * 2)
	// 2 frames x 3 owned slots = 6 deliveries.
	if delivered != 6 {
		t.Fatalf("delivered %d in 2 frames, want 6", delivered)
	}
}

func TestReservationRemovable(t *testing.T) {
	eng, net := reserveNet(t)
	l := net.Link(1)
	l.SetNetworkReservation(1)
	l.SetNetworkReservation(0) // back to unlimited
	delivered := 0
	net.Link(2).SetHandler(func(Message) { delivered++ })
	for i := 0; i < 3; i++ {
		if err := l.Send(Message{Dst: 2, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	_ = eng.RunUntil(net.Config().FrameDuration() * time.Duration(2))
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3 with no cap", delivered)
	}
}
