// Package wire defines the EVM's on-air message formats: the control,
// data and fault communication exchanged inside a Virtual Component
// (paper §3.1: "The EVM architecture defines explicit mechanisms for
// control, data and fault communication within the virtual component").
//
// Encodings are hand-rolled fixed binary layouts so every message fits a
// single RT-Link slot payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"evm/internal/rtlink"
)

// Message kinds carried over RT-Link.
const (
	KindSensor      rtlink.Kind = 10 // gateway -> all: sensor snapshot
	KindActuate     rtlink.Kind = 11 // active controller -> gateway
	KindHealth      rtlink.Kind = 12 // all -> all: health assessment
	KindFaultReport rtlink.Kind = 13 // backup -> VC head
	KindRoleChange  rtlink.Kind = 14 // head -> member
	KindCapsule     rtlink.Kind = 15 // code migration
	KindState       rtlink.Kind = 16 // task state migration
	KindJoin        rtlink.Kind = 17 // new node -> head
	KindAdmit       rtlink.Kind = 18 // head -> new node
	KindModeChange  rtlink.Kind = 19 // head -> all: planned mode switch
	KindMigrateCmd  rtlink.Kind = 20 // head -> holder: ship task to dest
	KindStateSync   rtlink.Kind = 21 // primary -> backups: active state replication
)

// ErrTruncated is returned when a payload is shorter than its layout.
var ErrTruncated = errors.New("wire: truncated message")

// Role is a controller's role for one task (paper Fig. 6: Active, Backup,
// Dormant; Indicator is the passive display mode the demoted primary
// enters).
type Role uint8

// Roles.
const (
	RoleDormant Role = iota + 1
	RoleBackup
	RoleActive
	RoleIndicator
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleDormant:
		return "dormant"
	case RoleBackup:
		return "backup"
	case RoleActive:
		return "active"
	case RoleIndicator:
		return "indicator"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// FaultReason classifies a detected fault.
type FaultReason uint8

// Fault reasons.
const (
	FaultOutputDeviation FaultReason = iota + 1 // primary output diverges
	FaultSilent                                 // no health heard
	FaultEnergy                                 // battery below threshold
)

// String implements fmt.Stringer.
func (f FaultReason) String() string {
	switch f {
	case FaultOutputDeviation:
		return "output-deviation"
	case FaultSilent:
		return "silent"
	case FaultEnergy:
		return "energy"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// --- primitive helpers -----------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) str(s string) error {
	if len(s) > 255 {
		return fmt.Errorf("wire: string %q too long", s)
	}
	w.u8(uint8(len(s)))
	w.buf = append(w.buf, s...)
	return nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// blob reads a u32-length-prefixed byte slice (copied out of the frame).
func (r *reader) blob() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.off+int(n) > len(r.buf) {
		return nil, ErrTruncated
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// --- sensor snapshot ---------------------------------------------------------

// SensorReading is one sensor port sample.
type SensorReading struct {
	Port  uint8
	Value float64
}

// SensorSnapshot is a timestamped set of readings. The timestamp (global
// virtual time at sampling) lets consumers enforce temporal-conditional
// transfers: data older than the relation's MaxAge is discarded.
type SensorSnapshot struct {
	At       time.Duration
	Readings []SensorReading
}

// Encode packs the snapshot.
func (s SensorSnapshot) Encode() ([]byte, error) {
	if len(s.Readings) > 255 {
		return nil, fmt.Errorf("wire: %d readings exceed 255", len(s.Readings))
	}
	w := writer{buf: make([]byte, 0, 9+9*len(s.Readings))}
	w.u64(uint64(s.At))
	w.u8(uint8(len(s.Readings)))
	for _, rd := range s.Readings {
		w.u8(rd.Port)
		w.f64(rd.Value)
	}
	return w.buf, nil
}

// EncodeSensors packs an un-timestamped snapshot (At = 0 means "age
// unknown"; temporal checks treat it as fresh).
func EncodeSensors(readings []SensorReading) ([]byte, error) {
	return SensorSnapshot{Readings: readings}.Encode()
}

// DecodeSnapshot unpacks a sensor snapshot.
func DecodeSnapshot(b []byte) (SensorSnapshot, error) {
	r := reader{buf: b}
	var s SensorSnapshot
	at, err := r.u64()
	if err != nil {
		return s, err
	}
	s.At = time.Duration(at)
	n, err := r.u8()
	if err != nil {
		return s, err
	}
	s.Readings = make([]SensorReading, 0, n)
	for i := 0; i < int(n); i++ {
		port, err := r.u8()
		if err != nil {
			return s, err
		}
		v, err := r.f64()
		if err != nil {
			return s, err
		}
		s.Readings = append(s.Readings, SensorReading{Port: port, Value: v})
	}
	return s, nil
}

// DecodeSensors unpacks just the readings of a snapshot.
func DecodeSensors(b []byte) ([]SensorReading, error) {
	s, err := DecodeSnapshot(b)
	if err != nil {
		return nil, err
	}
	return s.Readings, nil
}

// --- actuation ---------------------------------------------------------------

// Actuate commands an actuator port.
type Actuate struct {
	Port  uint8
	Value float64
	// TaskID names the control task issuing the command (lets the
	// gateway reject commands from non-active controllers).
	TaskID string
	Seq    uint32
}

// Encode packs the command.
func (a Actuate) Encode() ([]byte, error) {
	var w writer
	w.u8(a.Port)
	w.f64(a.Value)
	w.u32(a.Seq)
	if err := w.str(a.TaskID); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// DecodeActuate unpacks an actuation command.
func DecodeActuate(b []byte) (Actuate, error) {
	r := reader{buf: b}
	var a Actuate
	var err error
	if a.Port, err = r.u8(); err != nil {
		return a, err
	}
	if a.Value, err = r.f64(); err != nil {
		return a, err
	}
	if a.Seq, err = r.u32(); err != nil {
		return a, err
	}
	if a.TaskID, err = r.str(); err != nil {
		return a, err
	}
	return a, nil
}

// --- health assessment ---------------------------------------------------------

// Health is one task's health-assessment record: the controller's role
// and latest computed output, which backups passively observe (§3.1.2).
type Health struct {
	Node    uint16
	TaskID  string
	Role    Role
	Seq     uint32
	Output  float64
	HasOut  bool
	Battery float64 // remaining fraction [0,1]
}

// HealthBundle aggregates all of one node's per-task health records into
// a single frame so a node's per-cycle traffic stays within its slot
// budget regardless of how many tasks it holds.
type HealthBundle struct {
	Node    uint16
	Battery float64
	Records []HealthRecord
}

// HealthRecord is one task's entry in a bundle.
type HealthRecord struct {
	TaskID string
	Role   Role
	Seq    uint32
	Output float64
	HasOut bool
}

// Encode packs the bundle.
func (hb HealthBundle) Encode() ([]byte, error) {
	if len(hb.Records) > 255 {
		return nil, fmt.Errorf("wire: %d health records exceed 255", len(hb.Records))
	}
	var w writer
	w.u16(hb.Node)
	w.f64(hb.Battery)
	w.u8(uint8(len(hb.Records)))
	for _, rec := range hb.Records {
		w.u8(uint8(rec.Role))
		w.u32(rec.Seq)
		if rec.HasOut {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.f64(rec.Output)
		if err := w.str(rec.TaskID); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

// DecodeHealthBundle unpacks a bundle.
func DecodeHealthBundle(b []byte) (HealthBundle, error) {
	r := reader{buf: b}
	var hb HealthBundle
	var err error
	if hb.Node, err = r.u16(); err != nil {
		return hb, err
	}
	if hb.Battery, err = r.f64(); err != nil {
		return hb, err
	}
	n, err := r.u8()
	if err != nil {
		return hb, err
	}
	hb.Records = make([]HealthRecord, 0, n)
	for i := 0; i < int(n); i++ {
		var rec HealthRecord
		role, err := r.u8()
		if err != nil {
			return hb, err
		}
		rec.Role = Role(role)
		if rec.Seq, err = r.u32(); err != nil {
			return hb, err
		}
		hasOut, err := r.u8()
		if err != nil {
			return hb, err
		}
		rec.HasOut = hasOut == 1
		if rec.Output, err = r.f64(); err != nil {
			return hb, err
		}
		if rec.TaskID, err = r.str(); err != nil {
			return hb, err
		}
		hb.Records = append(hb.Records, rec)
	}
	return hb, nil
}

// Encode packs the health record.
func (h Health) Encode() ([]byte, error) {
	var w writer
	w.u16(h.Node)
	w.u8(uint8(h.Role))
	w.u32(h.Seq)
	if h.HasOut {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.f64(h.Output)
	w.f64(h.Battery)
	if err := w.str(h.TaskID); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// DecodeHealth unpacks a health record.
func DecodeHealth(b []byte) (Health, error) {
	r := reader{buf: b}
	var h Health
	var err error
	if h.Node, err = r.u16(); err != nil {
		return h, err
	}
	role, err := r.u8()
	if err != nil {
		return h, err
	}
	h.Role = Role(role)
	if h.Seq, err = r.u32(); err != nil {
		return h, err
	}
	hasOut, err := r.u8()
	if err != nil {
		return h, err
	}
	h.HasOut = hasOut == 1
	if h.Output, err = r.f64(); err != nil {
		return h, err
	}
	if h.Battery, err = r.f64(); err != nil {
		return h, err
	}
	if h.TaskID, err = r.str(); err != nil {
		return h, err
	}
	return h, nil
}

// --- fault report ---------------------------------------------------------------

// FaultReport is sent by a backup to the VC head when it determines the
// primary's outputs are inappropriate (paper §4.2).
type FaultReport struct {
	Reporter  uint16
	Suspect   uint16
	TaskID    string
	Reason    FaultReason
	Deviation float64
	Cycles    uint16 // consecutive deviating cycles observed
}

// Encode packs the report.
func (f FaultReport) Encode() ([]byte, error) {
	var w writer
	w.u16(f.Reporter)
	w.u16(f.Suspect)
	w.u8(uint8(f.Reason))
	w.f64(f.Deviation)
	w.u16(f.Cycles)
	if err := w.str(f.TaskID); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// DecodeFaultReport unpacks a report.
func DecodeFaultReport(b []byte) (FaultReport, error) {
	r := reader{buf: b}
	var f FaultReport
	var err error
	if f.Reporter, err = r.u16(); err != nil {
		return f, err
	}
	if f.Suspect, err = r.u16(); err != nil {
		return f, err
	}
	reason, err := r.u8()
	if err != nil {
		return f, err
	}
	f.Reason = FaultReason(reason)
	if f.Deviation, err = r.f64(); err != nil {
		return f, err
	}
	if f.Cycles, err = r.u16(); err != nil {
		return f, err
	}
	if f.TaskID, err = r.str(); err != nil {
		return f, err
	}
	return f, nil
}

// --- role change ---------------------------------------------------------------

// RoleChange is the head's arbitration decision: node takes the given
// role for the task.
type RoleChange struct {
	Node   uint16
	TaskID string
	Role   Role
	Seq    uint32
}

// Encode packs the role change.
func (rc RoleChange) Encode() ([]byte, error) {
	var w writer
	w.u16(rc.Node)
	w.u8(uint8(rc.Role))
	w.u32(rc.Seq)
	if err := w.str(rc.TaskID); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// DecodeRoleChange unpacks a role change.
func DecodeRoleChange(b []byte) (RoleChange, error) {
	r := reader{buf: b}
	var rc RoleChange
	var err error
	if rc.Node, err = r.u16(); err != nil {
		return rc, err
	}
	role, err := r.u8()
	if err != nil {
		return rc, err
	}
	rc.Role = Role(role)
	if rc.Seq, err = r.u32(); err != nil {
		return rc, err
	}
	if rc.TaskID, err = r.str(); err != nil {
		return rc, err
	}
	return rc, nil
}

// --- migration ---------------------------------------------------------------

// StateXfer carries a task's serialized execution state (TCB, stacks,
// data and timing metadata) to the node taking the task over.
type StateXfer struct {
	TaskID string
	Seq    uint32
	Blob   []byte
}

// Encode packs the transfer.
func (sx StateXfer) Encode() ([]byte, error) {
	var w writer
	w.u32(sx.Seq)
	if err := w.str(sx.TaskID); err != nil {
		return nil, err
	}
	w.u32(uint32(len(sx.Blob)))
	w.buf = append(w.buf, sx.Blob...)
	return w.buf, nil
}

// DecodeStateXfer unpacks a transfer.
func DecodeStateXfer(b []byte) (StateXfer, error) {
	r := reader{buf: b}
	var sx StateXfer
	var err error
	if sx.Seq, err = r.u32(); err != nil {
		return sx, err
	}
	if sx.TaskID, err = r.str(); err != nil {
		return sx, err
	}
	n, err := r.u32()
	if err != nil {
		return sx, err
	}
	if r.off+int(n) > len(r.buf) {
		return sx, ErrTruncated
	}
	sx.Blob = append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	return sx, nil
}

// --- membership ---------------------------------------------------------------

// Join announces a new node to the VC head with its spare capacity.
type Join struct {
	Node        uint16
	CPUCapacity float64 // spare utilization [0,1]
	Battery     float64 // remaining fraction [0,1]
}

// Encode packs the join request.
func (j Join) Encode() ([]byte, error) {
	var w writer
	w.u16(j.Node)
	w.f64(j.CPUCapacity)
	w.f64(j.Battery)
	return w.buf, nil
}

// DecodeJoin unpacks a join request.
func DecodeJoin(b []byte) (Join, error) {
	r := reader{buf: b}
	var j Join
	var err error
	if j.Node, err = r.u16(); err != nil {
		return j, err
	}
	if j.CPUCapacity, err = r.f64(); err != nil {
		return j, err
	}
	if j.Battery, err = r.f64(); err != nil {
		return j, err
	}
	return j, nil
}

// MigrateCmd instructs the current holder of a task to transfer its code
// and state to another node (paper §3.1.1 op 1: task migration).
type MigrateCmd struct {
	TaskID string
	Dest   uint16
	// WithCapsule requests code transfer ahead of the state.
	WithCapsule bool
}

// Encode packs the command.
func (mc MigrateCmd) Encode() ([]byte, error) {
	var w writer
	w.u16(mc.Dest)
	if mc.WithCapsule {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if err := w.str(mc.TaskID); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// DecodeMigrateCmd unpacks the command.
func DecodeMigrateCmd(b []byte) (MigrateCmd, error) {
	r := reader{buf: b}
	var mc MigrateCmd
	var err error
	if mc.Dest, err = r.u16(); err != nil {
		return mc, err
	}
	wc, err := r.u8()
	if err != nil {
		return mc, err
	}
	mc.WithCapsule = wc == 1
	if mc.TaskID, err = r.str(); err != nil {
		return mc, err
	}
	return mc, nil
}

// ModeChange schedules a synchronized task-set switch at a future TDMA
// frame (planned reconfiguration, §1.1 item 4).
type ModeChange struct {
	Mode    uint8
	AtFrame uint64
}

// Encode packs the mode change.
func (mc ModeChange) Encode() ([]byte, error) {
	var w writer
	w.u8(mc.Mode)
	w.u64(mc.AtFrame)
	return w.buf, nil
}

// DecodeModeChange unpacks a mode change.
func DecodeModeChange(b []byte) (ModeChange, error) {
	r := reader{buf: b}
	var mc ModeChange
	var err error
	if mc.Mode, err = r.u8(); err != nil {
		return mc, err
	}
	if mc.AtFrame, err = r.u64(); err != nil {
		return mc, err
	}
	return mc, nil
}

// --- federation: cross-cell task transfer -------------------------------------

// Rebalance handshake phases. The federation coordinator rehomes a
// foreign task with a two-leg prepare/commit exchange over the backbone:
// the prepare leg ships the checkpoint from the hosting cell to the
// recovered origin (which restores it into an inactive home replica),
// and the commit leg travels back to the hosting cell, whose delivery
// retires the foreign master before the home replica activates. A lost
// leg aborts the handshake and the foreign master keeps actuating.
const (
	RebalancePrepare uint8 = iota + 1
	RebalanceCommit
)

// RebalanceMsg is one leg of the prepare/commit rebalance handshake.
// Prepare carries the encoded TaskExport; Commit carries only the ID.
type RebalanceMsg struct {
	Phase  uint8
	TaskID string
	Export []byte
}

// Encode packs the handshake leg.
func (m RebalanceMsg) Encode() ([]byte, error) {
	if m.Phase != RebalancePrepare && m.Phase != RebalanceCommit {
		return nil, fmt.Errorf("wire: rebalance phase %d", m.Phase)
	}
	var w writer
	w.u8(m.Phase)
	if err := w.str(m.TaskID); err != nil {
		return nil, err
	}
	w.u32(uint32(len(m.Export)))
	w.buf = append(w.buf, m.Export...)
	return w.buf, nil
}

// DecodeRebalanceMsg unpacks a handshake leg.
func DecodeRebalanceMsg(b []byte) (RebalanceMsg, error) {
	r := reader{buf: b}
	var m RebalanceMsg
	var err error
	if m.Phase, err = r.u8(); err != nil {
		return m, err
	}
	if m.Phase != RebalancePrepare && m.Phase != RebalanceCommit {
		return m, fmt.Errorf("wire: rebalance phase %d", m.Phase)
	}
	if m.TaskID, err = r.str(); err != nil {
		return m, err
	}
	if m.Export, err = r.blob(); err != nil {
		return m, err
	}
	return m, nil
}

// Capsule rollout phases. An over-the-air rollout upgrades every replica
// of a task through a two-leg prepare/commit exchange (the same pattern
// as the rebalance handshake): the prepare leg carries the encoded
// capsule to the hosting cell, whose replicas attest and stage it
// without activating; the commit leg, sent once every cell of the
// rollout stage is staged, swaps all of a cell's replicas to the new
// version at one instant — so a task's master and backups never run
// mixed versions past the commit point.
const (
	CapsulePrepare uint8 = iota + 1
	CapsuleCommit
)

// CapsuleMsg is one leg of the capsule rollout handshake on the campus
// backbone. Prepare carries the encoded vm.Capsule; Commit carries only
// the task and version.
type CapsuleMsg struct {
	Phase   uint8
	TaskID  string
	Version uint8
	Capsule []byte
}

// Encode packs the rollout leg.
func (m CapsuleMsg) Encode() ([]byte, error) {
	if m.Phase != CapsulePrepare && m.Phase != CapsuleCommit {
		return nil, fmt.Errorf("wire: capsule phase %d", m.Phase)
	}
	var w writer
	w.u8(m.Phase)
	w.u8(m.Version)
	if err := w.str(m.TaskID); err != nil {
		return nil, err
	}
	w.u32(uint32(len(m.Capsule)))
	w.buf = append(w.buf, m.Capsule...)
	return w.buf, nil
}

// DecodeCapsuleMsg unpacks a rollout leg.
func DecodeCapsuleMsg(b []byte) (CapsuleMsg, error) {
	r := reader{buf: b}
	var m CapsuleMsg
	var err error
	if m.Phase, err = r.u8(); err != nil {
		return m, err
	}
	if m.Phase != CapsulePrepare && m.Phase != CapsuleCommit {
		return m, fmt.Errorf("wire: capsule phase %d", m.Phase)
	}
	if m.Version, err = r.u8(); err != nil {
		return m, err
	}
	if m.TaskID, err = r.str(); err != nil {
		return m, err
	}
	if m.Capsule, err = r.blob(); err != nil {
		return m, err
	}
	return m, nil
}

// TaskExport is the cross-cell capsule: everything a peer cell needs to
// resume a control task after its home cell exhausted local migration
// candidates — the latest state snapshot, the output sequence number and,
// for byte-code tasks, the attested code capsule. TaskExports travel on
// the federation backbone (gateway-to-gateway), not in RT-Link slots.
type TaskExport struct {
	TaskID string
	Seq    uint32
	// Blob is the serialized task state (TaskLogic.Snapshot).
	Blob []byte
	// Capsule is the encoded vm.Capsule for byte-code tasks; empty for
	// tasks re-instantiated from the campus spec catalog.
	Capsule []byte
}

// Encode packs the export.
func (e TaskExport) Encode() ([]byte, error) {
	var w writer
	w.u32(e.Seq)
	if err := w.str(e.TaskID); err != nil {
		return nil, err
	}
	w.u32(uint32(len(e.Blob)))
	w.buf = append(w.buf, e.Blob...)
	w.u32(uint32(len(e.Capsule)))
	w.buf = append(w.buf, e.Capsule...)
	return w.buf, nil
}

// DecodeTaskExport unpacks an export.
func DecodeTaskExport(b []byte) (TaskExport, error) {
	r := reader{buf: b}
	var e TaskExport
	var err error
	if e.Seq, err = r.u32(); err != nil {
		return e, err
	}
	if e.TaskID, err = r.str(); err != nil {
		return e, err
	}
	if e.Blob, err = r.blob(); err != nil {
		return e, err
	}
	if e.Capsule, err = r.blob(); err != nil {
		return e, err
	}
	return e, nil
}
