package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestHealthBundleRoundTrip(t *testing.T) {
	in := HealthBundle{
		Node:    7,
		Battery: 0.83,
		Records: []HealthRecord{
			{TaskID: "lts-level", Role: RoleActive, Seq: 12, Output: 42.5, HasOut: true},
			{TaskID: "chiller-temp", Role: RoleBackup, Seq: 11, Output: 50.1, HasOut: true},
			{TaskID: "idle", Role: RoleBackup, Seq: 0, HasOut: false},
		},
	}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHealthBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Node != in.Node || out.Battery != in.Battery || len(out.Records) != 3 {
		t.Fatalf("bundle mismatch: %+v", out)
	}
	for i := range in.Records {
		if out.Records[i] != in.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestHealthBundleTruncation(t *testing.T) {
	in := HealthBundle{Node: 1, Battery: 1, Records: []HealthRecord{{TaskID: "t", Role: RoleActive, Seq: 1, HasOut: true}}}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeHealthBundle(b[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d accepted", cut)
		}
	}
}

func TestHealthBundleEmpty(t *testing.T) {
	b, err := HealthBundle{Node: 3, Battery: 0.5}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHealthBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 0 {
		t.Fatalf("records = %d", len(out.Records))
	}
}

func TestHealthBundleTooManyRecords(t *testing.T) {
	hb := HealthBundle{Records: make([]HealthRecord, 300)}
	if _, err := hb.Encode(); err == nil {
		t.Fatal("300 records accepted")
	}
}

func TestHealthBundleFitsSlot(t *testing.T) {
	// Two realistic records must fit a 96-byte slot payload minus the
	// 9-byte fragment header.
	hb := HealthBundle{
		Node:    65535,
		Battery: 0.5,
		Records: []HealthRecord{
			{TaskID: "lts-level", Role: RoleActive, Seq: 1 << 30, Output: 11.48, HasOut: true},
			{TaskID: "chiller-temp", Role: RoleBackup, Seq: 1 << 30, Output: 50, HasOut: true},
		},
	}
	b, err := hb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 96-9 {
		t.Fatalf("two-record bundle is %d bytes, exceeds slot budget", len(b))
	}
}

func TestMigrateCmdRoundTrip(t *testing.T) {
	in := MigrateCmd{TaskID: "lts-level", Dest: 9, WithCapsule: true}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMigrateCmd(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := DecodeMigrateCmd(b[:1]); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated cmd accepted")
	}
}

func TestSensorSnapshotTimestamp(t *testing.T) {
	in := SensorSnapshot{
		At:       42 * time.Second,
		Readings: []SensorReading{{Port: 5, Value: -19.5}},
	}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.At != in.At || len(out.Readings) != 1 || out.Readings[0] != in.Readings[0] {
		t.Fatalf("snapshot mismatch: %+v", out)
	}
	// Legacy encoder produces At == 0.
	legacy, err := EncodeSensors(in.Readings)
	if err != nil {
		t.Fatal(err)
	}
	out, err = DecodeSnapshot(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if out.At != 0 {
		t.Fatalf("legacy At = %v, want 0", out.At)
	}
}

func TestBundleProperty(t *testing.T) {
	f := func(node uint16, battery float64, seq uint32, out float64) bool {
		hb := HealthBundle{Node: node, Battery: battery, Records: []HealthRecord{
			{TaskID: "x", Role: RoleBackup, Seq: seq, Output: out, HasOut: true},
		}}
		b, err := hb.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeHealthBundle(b)
		if err != nil {
			return false
		}
		return got.Node == node && got.Battery == battery &&
			got.Records[0].Seq == seq && got.Records[0].Output == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
