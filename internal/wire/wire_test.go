package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSensorsRoundTrip(t *testing.T) {
	in := []SensorReading{{Port: 0, Value: 50.25}, {Port: 3, Value: -12.5}}
	b, err := EncodeSensors(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSensors(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestSensorsTruncated(t *testing.T) {
	b, err := EncodeSensors([]SensorReading{{Port: 1, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSensors(b[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestActuateRoundTrip(t *testing.T) {
	in := Actuate{Port: 2, Value: 11.48, TaskID: "lts-level", Seq: 99}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeActuate(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestHealthRoundTrip(t *testing.T) {
	in := Health{Node: 7, TaskID: "lts-level", Role: RoleBackup, Seq: 12, Output: 42.5, HasOut: true, Battery: 0.83}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHealth(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestFaultReportRoundTrip(t *testing.T) {
	in := FaultReport{Reporter: 3, Suspect: 2, TaskID: "t", Reason: FaultOutputDeviation, Deviation: 63.5, Cycles: 4}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFaultReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestRoleChangeRoundTrip(t *testing.T) {
	in := RoleChange{Node: 4, TaskID: "x", Role: RoleActive, Seq: 5}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRoleChange(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestStateXferRoundTrip(t *testing.T) {
	in := StateXfer{TaskID: "pid", Seq: 8, Blob: []byte{1, 2, 3, 4, 5}}
	b, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStateXfer(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TaskID != in.TaskID || out.Seq != in.Seq || string(out.Blob) != string(in.Blob) {
		t.Fatalf("round trip: %+v", out)
	}
	// Truncated blob length.
	if _, err := DecodeStateXfer(b[:len(b)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestJoinAndModeChangeRoundTrip(t *testing.T) {
	j := Join{Node: 9, CPUCapacity: 0.6, Battery: 0.95}
	b, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotJ, err := DecodeJoin(b)
	if err != nil || gotJ != j {
		t.Fatalf("join round trip: %+v err %v", gotJ, err)
	}
	mc := ModeChange{Mode: 2, AtFrame: 1234567}
	b, err = mc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := DecodeModeChange(b)
	if err != nil || gotM != mc {
		t.Fatalf("mode round trip: %+v err %v", gotM, err)
	}
}

func TestLongTaskIDRejected(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	a := Actuate{TaskID: string(long)}
	if _, err := a.Encode(); err == nil {
		t.Fatal("300-byte task ID accepted")
	}
}

func TestHealthProperty(t *testing.T) {
	f := func(node uint16, seq uint32, out float64, hasOut bool) bool {
		h := Health{Node: node, TaskID: "t", Role: RoleActive, Seq: seq, Output: out, HasOut: hasOut, Battery: 1}
		b, err := h.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeHealth(b)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoleStrings(t *testing.T) {
	for _, r := range []Role{RoleDormant, RoleBackup, RoleActive, RoleIndicator} {
		if r.String() == "" {
			t.Fatal("empty role string")
		}
	}
	for _, f := range []FaultReason{FaultOutputDeviation, FaultSilent, FaultEnergy} {
		if f.String() == "" {
			t.Fatal("empty reason string")
		}
	}
}

func TestEmptyDecodes(t *testing.T) {
	if _, err := DecodeHealth(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("nil health decoded")
	}
	if _, err := DecodeActuate([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short actuate decoded")
	}
	if _, err := DecodeJoin([]byte{}); !errors.Is(err, ErrTruncated) {
		t.Fatal("empty join decoded")
	}
}

func TestRebalanceMsgRoundTrip(t *testing.T) {
	ex, err := TaskExport{TaskID: "loop", Seq: 7, Blob: []byte{1, 2, 3}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []RebalanceMsg{
		{Phase: RebalancePrepare, TaskID: "loop", Export: ex},
		{Phase: RebalanceCommit, TaskID: "loop"},
	} {
		b, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeRebalanceMsg(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.Phase != in.Phase || out.TaskID != in.TaskID || string(out.Export) != string(in.Export) {
			t.Fatalf("round trip: %+v vs %+v", out, in)
		}
	}
}

func TestRebalanceMsgRejectsBadPhase(t *testing.T) {
	if _, err := (RebalanceMsg{Phase: 9, TaskID: "x"}).Encode(); err == nil {
		t.Fatal("phase 9 encoded")
	}
	b, err := (RebalanceMsg{Phase: RebalanceCommit, TaskID: "x"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 0
	if _, err := DecodeRebalanceMsg(b); err == nil {
		t.Fatal("phase 0 decoded")
	}
	if _, err := DecodeRebalanceMsg(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("nil rebalance msg decoded")
	}
}
