package radio

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
)

// State is the radio power state.
type State int

// Radio power states. Sleep is the deepest state; Idle means the MCU is
// awake with the radio off; RX and TX are the active radio states.
const (
	StateSleep State = iota + 1
	StateIdle
	StateRX
	StateTX
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateIdle:
		return "idle"
	case StateRX:
		return "rx"
	case StateTX:
		return "tx"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DropReason classifies why a frame was not delivered to a receiver.
type DropReason int

// Drop reasons recorded in Stats.
const (
	DropLoss DropReason = iota + 1 // stochastic channel loss
	DropCollision
	DropNotListening
	DropOutOfRange
)

// Config parameterizes the medium.
type Config struct {
	// BitrateBPS is the air data rate (802.15.4: 250 kbit/s).
	BitrateBPS float64
	// RangeM is the maximum communication distance.
	RangeM float64
	// RefPER is the packet error rate at RangeM/2 used by the
	// distance-loss curve (PER grows with distance^2 up to RangeM).
	RefPER float64
	// Burst enables a Gilbert-Elliott two-state burst-loss overlay.
	Burst GilbertElliott
	// PropDelay is a fixed propagation delay (effectively zero at
	// sensor-network scales but kept explicit).
	PropDelay time.Duration
}

// DefaultConfig returns 802.15.4-like parameters.
func DefaultConfig() Config {
	return Config{
		BitrateBPS: 250_000,
		RangeM:     30,
		RefPER:     0.02,
		Burst:      DefaultGilbertElliott(),
		PropDelay:  0,
	}
}

// GilbertElliott is a classical two-state burst-loss channel: in the Good
// state packets drop with PGood, in Bad with PBad; states flip with the
// given per-packet transition probabilities.
type GilbertElliott struct {
	PGood     float64 // loss probability in Good state
	PBad      float64 // loss probability in Bad state
	GoodToBad float64
	BadToGood float64
}

// DefaultGilbertElliott returns a mild burst-loss channel.
func DefaultGilbertElliott() GilbertElliott {
	return GilbertElliott{PGood: 0, PBad: 0.6, GoodToBad: 0.01, BadToGood: 0.25}
}

type linkState struct {
	bad bool
}

type linkKey struct{ a, b NodeID }

// Position is a 2-D node location in meters.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Stats accumulates medium-wide counters.
type Stats struct {
	Sent         int
	Delivered    int
	DroppedLoss  int
	DroppedColl  int
	DroppedNoRX  int
	DroppedRange int
}

// Medium is the shared wireless channel. It owns all radios and performs
// propagation, loss and collision resolution on the simulation engine.
type Medium struct {
	eng    *sim.Engine
	rng    *sim.RNG
	cfg    Config
	radios map[NodeID]*Radio
	// order lists attached IDs sorted ascending. Every loss/collision
	// draw iterates radios through it so the PRNG stream assignment is
	// independent of map layout — same seed, byte-identical runs.
	order []NodeID
	links map[linkKey]*linkState
	stats Stats
	// forcedPER overrides the distance model when >= 0 (used by
	// experiments that sweep loss rates directly).
	forcedPER float64
	seq       uint32
}

// NewMedium creates a medium on the given engine with its own PRNG stream.
func NewMedium(eng *sim.Engine, rng *sim.RNG, cfg Config) *Medium {
	return &Medium{
		eng:       eng,
		rng:       rng,
		cfg:       cfg,
		radios:    make(map[NodeID]*Radio),
		links:     make(map[linkKey]*linkState),
		forcedPER: -1,
	}
}

// Engine returns the simulation engine the medium runs on.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// Config returns the medium configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// ForcePER overrides the distance-based loss model with a fixed packet
// error rate on every link. Pass a negative value to restore the model.
func (m *Medium) ForcePER(per float64) { m.forcedPER = per }

// ForcedPER returns the forced packet error rate, or a negative value
// when the distance model is active.
func (m *Medium) ForcedPER() float64 { return m.forcedPER }

// Attach creates and registers a radio for the node. Attaching a duplicate
// ID returns an error.
func (m *Medium) Attach(id NodeID, pos Position, battery *Battery, model EnergyModel) (*Radio, error) {
	if _, ok := m.radios[id]; ok {
		return nil, fmt.Errorf("radio: node %v already attached", id)
	}
	r := &Radio{
		id:        id,
		med:       m,
		pos:       pos,
		state:     StateSleep,
		lastSince: m.eng.Now(),
		battery:   battery,
		model:     model,
	}
	m.radios[id] = r
	at := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
	m.order = append(m.order, 0)
	copy(m.order[at+1:], m.order[at:])
	m.order[at] = id
	return r, nil
}

// Detach removes a node's radio from the medium (the rollback of Attach,
// used when a runtime admission fails partway). Frames still in flight
// toward the node are silently lost.
func (m *Medium) Detach(id NodeID) {
	if _, ok := m.radios[id]; !ok {
		return
	}
	delete(m.radios, id)
	at := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
	m.order = append(m.order[:at], m.order[at+1:]...)
}

// Radio returns the radio attached for id, or nil.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// Nodes returns the IDs of all attached radios in ascending order, so
// callers iterating the result stay deterministic without re-sorting.
func (m *Medium) Nodes() []NodeID {
	return sim.SortedKeys(m.radios)
}

func (m *Medium) link(a, b NodeID) *linkState {
	if a > b {
		a, b = b, a
	}
	k := linkKey{a, b}
	ls, ok := m.links[k]
	if !ok {
		ls = &linkState{}
		m.links[k] = ls
	}
	return ls
}

// perFor returns the packet error rate between two radios.
func (m *Medium) perFor(tx, rx *Radio) float64 {
	if m.forcedPER >= 0 {
		return m.forcedPER
	}
	d := tx.pos.Distance(rx.pos)
	if d >= m.cfg.RangeM {
		return 1
	}
	// Quadratic growth anchored so PER(Range/2) = RefPER.
	norm := d / (m.cfg.RangeM / 2)
	per := m.cfg.RefPER * norm * norm
	if per > 1 {
		per = 1
	}
	return per
}

// airTime returns the on-air duration for n bytes.
func (m *Medium) airTime(bytes int) time.Duration {
	secs := float64(bytes*8) / m.cfg.BitrateBPS
	return time.Duration(secs * float64(time.Second))
}

// transmission tracks one frame in flight.
type transmission struct {
	pkt      Packet
	from     *Radio
	start    time.Duration
	end      time.Duration
	collided map[NodeID]bool
}

// Transmit sends pkt from the radio. The caller must have put the radio in
// TX state; Transmit enforces this. Delivery callbacks fire at the end of
// the air time. The returned duration is the air time.
func (m *Medium) transmit(from *Radio, pkt Packet) (time.Duration, error) {
	if from.state != StateTX {
		return 0, fmt.Errorf("radio: node %v transmit in state %v", from.id, from.state)
	}
	m.seq++
	pkt.Seq = m.seq
	m.stats.Sent++
	air := m.airTime(pkt.AirBytes())
	tx := &transmission{
		pkt:      pkt,
		from:     from,
		start:    m.eng.Now(),
		end:      m.eng.Now() + air,
		collided: make(map[NodeID]bool),
	}
	if t := m.eng.Tracer(); t != nil {
		hop := "broadcast"
		if pkt.Hop != Broadcast {
			hop = strconv.Itoa(int(pkt.Hop))
		}
		t.Complete("tx", "radio", "radio", tx.start, tx.end+m.cfg.PropDelay,
			span.Arg{Key: "from", Val: strconv.Itoa(int(from.id))},
			span.Arg{Key: "hop", Val: hop},
			span.Arg{Key: "bytes", Val: strconv.Itoa(pkt.AirBytes())})
	}
	// Collision marking: any receiver already capturing another frame has
	// both frames destroyed.
	for _, id := range m.order {
		r := m.radios[id]
		if id == from.id {
			continue
		}
		if from.pos.Distance(r.pos) >= m.cfg.RangeM {
			continue
		}
		if r.capture != nil && m.eng.Now() < r.capture.end {
			r.capture.collided[id] = true
			tx.collided[id] = true
			continue
		}
		r.capture = tx
	}
	m.eng.At(tx.end+m.cfg.PropDelay, func() { m.complete(tx) })
	return air, nil
}

func (m *Medium) complete(tx *transmission) {
	for _, id := range m.order {
		r := m.radios[id]
		if id == tx.from.id {
			continue
		}
		if r.capture == tx {
			r.capture = nil
		}
		m.deliverTo(tx, r)
	}
}

func (m *Medium) deliverTo(tx *transmission, r *Radio) {
	if tx.pkt.Hop != Broadcast && tx.pkt.Hop != r.id {
		return
	}
	if tx.from.pos.Distance(r.pos) >= m.cfg.RangeM {
		m.stats.DroppedRange++
		r.drops[DropOutOfRange]++
		m.traceDrop(tx, r, "out-of-range")
		return
	}
	if tx.collided[r.id] {
		m.stats.DroppedColl++
		r.drops[DropCollision]++
		m.traceDrop(tx, r, "collision")
		return
	}
	// The receiver must have been in RX for the whole frame.
	if r.state != StateRX || r.lastSince > tx.start {
		m.stats.DroppedNoRX++
		r.drops[DropNotListening]++
		return
	}
	if m.lossDraw(tx.from, r) {
		m.stats.DroppedLoss++
		r.drops[DropLoss]++
		m.traceDrop(tx, r, "loss")
		return
	}
	m.stats.Delivered++
	r.received++
	if r.handler != nil {
		r.handler(tx.pkt.Clone())
	}
}

// traceDrop records a drop instant for the attached tracer. Not-listening
// drops are deliberately untraced: most radios sleep through most slots,
// so tracing them would bury the channel losses the histograms care about.
func (m *Medium) traceDrop(tx *transmission, r *Radio, reason string) {
	t := m.eng.Tracer()
	if t == nil {
		return
	}
	t.Instant("drop", "radio", "radio", m.eng.Now(),
		span.Arg{Key: "from", Val: strconv.Itoa(int(tx.from.id))},
		span.Arg{Key: "at", Val: strconv.Itoa(int(r.id))},
		span.Arg{Key: "reason", Val: reason})
}

// lossDraw decides whether the channel destroys the frame, combining the
// distance PER with the Gilbert-Elliott burst overlay.
func (m *Medium) lossDraw(tx, rx *Radio) bool {
	ls := m.link(tx.id, rx.id)
	ge := m.cfg.Burst
	// State transition per packet.
	if ls.bad {
		if m.rng.Bool(ge.BadToGood) {
			ls.bad = false
		}
	} else if m.rng.Bool(ge.GoodToBad) {
		ls.bad = true
	}
	p := m.perFor(tx, rx)
	if ls.bad {
		p = 1 - (1-p)*(1-ge.PBad)
	} else if ge.PGood > 0 {
		p = 1 - (1-p)*(1-ge.PGood)
	}
	return m.rng.Bool(p)
}
