package radio

import (
	"math"
	"testing"
	"time"

	"evm/internal/sim"
)

func newTestMedium(t *testing.T, cfg Config) (*sim.Engine, *Medium) {
	t.Helper()
	eng := sim.New()
	return eng, NewMedium(eng, sim.NewRNG(1), cfg)
}

func attach(t *testing.T, m *Medium, id NodeID, pos Position) *Radio {
	t.Helper()
	r, err := m.Attach(id, pos, NewBattery(2600), DefaultEnergyModel())
	if err != nil {
		t.Fatalf("attach %v: %v", id, err)
	}
	return r
}

func perfectConfig() Config {
	cfg := DefaultConfig()
	cfg.RefPER = 0
	cfg.Burst = GilbertElliott{} // no burst loss
	return cfg
}

func TestDeliveryPerfectChannel(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	var got []Packet
	b.SetHandler(func(p Packet) { got = append(got, p) })
	b.SetState(StateRX)
	eng.At(time.Millisecond, func() {
		if _, err := a.Send(Packet{Dst: 2, Payload: []byte("hello")}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if string(got[0].Payload) != "hello" {
		t.Fatalf("payload = %q", got[0].Payload)
	}
	if got[0].Src != 1 || got[0].Dst != 2 {
		t.Fatalf("addressing wrong: %+v", got[0])
	}
}

func TestPayloadIsCopied(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	buf := []byte("mutable")
	var got Packet
	b.SetHandler(func(p Packet) { got = p })
	b.SetState(StateRX)
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 2, Payload: buf}) })
	eng.Run()
	buf[0] = 'X'
	if string(got.Payload) != "mutable" {
		t.Fatal("receiver payload aliases sender buffer")
	}
}

func TestNoDeliveryWhenSleeping(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	delivered := 0
	b.SetHandler(func(Packet) { delivered++ })
	// b stays in sleep.
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 2, Payload: []byte("x")}) })
	eng.Run()
	if delivered != 0 {
		t.Fatal("sleeping radio received a packet")
	}
	if b.Drops(DropNotListening) != 1 {
		t.Fatalf("DropNotListening = %d, want 1", b.Drops(DropNotListening))
	}
}

func TestLateRXTurnOnDrops(t *testing.T) {
	// Receiver turns on mid-frame: frame must be lost (must listen for
	// the whole air time).
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	delivered := 0
	b.SetHandler(func(Packet) { delivered++ })
	eng.At(0, func() {
		_, _ = a.Send(Packet{Dst: 2, Payload: make([]byte, 100)})
	})
	// 117 bytes at 250kbps is ~3.7ms; turn on at 1ms.
	eng.At(time.Millisecond, func() { b.SetState(StateRX) })
	eng.Run()
	if delivered != 0 {
		t.Fatal("packet delivered despite partial listen")
	}
}

func TestOutOfRange(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{100, 0}) // beyond 30m range
	delivered := 0
	b.SetHandler(func(Packet) { delivered++ })
	b.SetState(StateRX)
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 2, Payload: []byte("x")}) })
	eng.Run()
	if delivered != 0 {
		t.Fatal("out-of-range delivery")
	}
}

func TestCollisionBothLost(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{10, 0})
	c := attach(t, m, 3, Position{5, 5})
	delivered := 0
	c.SetHandler(func(Packet) { delivered++ })
	c.SetState(StateRX)
	// a and b transmit overlapping frames audible at c.
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 3, Payload: make([]byte, 50)}) })
	eng.At(100*time.Microsecond, func() { _, _ = b.Send(Packet{Dst: 3, Payload: make([]byte, 50)}) })
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d frames through a collision", delivered)
	}
	if c.Drops(DropCollision) == 0 {
		t.Fatal("collision not recorded")
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{10, 0})
	c := attach(t, m, 3, Position{5, 5})
	delivered := 0
	c.SetHandler(func(Packet) { delivered++ })
	c.SetState(StateRX)
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 3, Payload: make([]byte, 20)}) })
	// Well after the first frame ends (~1.2ms).
	eng.At(10*time.Millisecond, func() { _, _ = b.Send(Packet{Dst: 3, Payload: make([]byte, 20)}) })
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
}

func TestForcedPERLossRate(t *testing.T) {
	cfg := perfectConfig()
	eng, m := newTestMedium(t, cfg)
	m.ForcePER(0.3)
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	delivered := 0
	b.SetHandler(func(Packet) { delivered++ })
	b.SetState(StateRX)
	const n = 5000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() { _, _ = a.Send(Packet{Dst: 2, Payload: []byte{1}}) })
	}
	eng.Run()
	rate := float64(delivered) / n
	if math.Abs(rate-0.7) > 0.03 {
		t.Fatalf("delivery rate %.3f, want ~0.7", rate)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	rx := []*Radio{
		attach(t, m, 2, Position{5, 0}),
		attach(t, m, 3, Position{0, 5}),
		attach(t, m, 4, Position{-5, 0}),
	}
	count := 0
	for _, r := range rx {
		r.SetHandler(func(Packet) { count++ })
		r.SetState(StateRX)
	}
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: Broadcast, Payload: []byte("b")}) })
	eng.Run()
	if count != 3 {
		t.Fatalf("broadcast reached %d, want 3", count)
	}
}

func TestFailedNodeCannotSendOrReceive(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	delivered := 0
	b.SetHandler(func(Packet) { delivered++ })
	b.SetState(StateRX)
	b.Fail()
	if _, err := a.Send(Packet{Dst: 2}); err != nil {
		t.Fatalf("healthy node send: %v", err)
	}
	eng.Run()
	if delivered != 0 {
		t.Fatal("failed node received")
	}
	if _, err := b.Send(Packet{Dst: 1}); err == nil {
		t.Fatal("failed node send succeeded")
	}
	b.Recover()
	b.SetState(StateRX)
	eng.At(eng.Now()+time.Millisecond, func() { _, _ = a.Send(Packet{Dst: 2}) })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("recovered node delivered = %d, want 1", delivered)
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	a.SetState(StateRX)
	eng.At(time.Hour, func() { a.SetState(StateSleep) })
	_ = eng.RunUntil(time.Hour)
	got := a.EnergyConsumedMAH()
	want := DefaultEnergyModel().RXCurrentMA // 1 hour at RX current
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("consumed %.3f mAh, want ~%.1f", got, want)
	}
}

func TestLifetimeExtrapolation(t *testing.T) {
	b := NewBattery(2600)
	b.Drain(1.0, time.Hour) // 1 mA average
	life := b.LifetimeAt(time.Hour)
	wantHours := 2600.0
	if math.Abs(life.Hours()-wantHours) > 1 {
		t.Fatalf("lifetime %.0f h, want %.0f h", life.Hours(), wantHours)
	}
}

func TestBatteryDepletion(t *testing.T) {
	b := NewBattery(1)
	if b.Depleted() {
		t.Fatal("fresh battery depleted")
	}
	b.Drain(2, time.Hour)
	if !b.Depleted() {
		t.Fatal("over-drained battery not depleted")
	}
	if b.RemainingFraction() != 0 {
		t.Fatalf("remaining = %f, want clamp to 0", b.RemainingFraction())
	}
}

func TestSyncJitterBounded(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	for i := 1; i <= 10; i++ {
		attach(t, m, NodeID(i), Position{float64(i), 0})
	}
	_ = eng
	maxJ := time.Duration(0)
	var sum time.Duration
	n := 0
	for k := 0; k < 1000; k++ {
		for _, j := range m.BroadcastSync() {
			if j > maxJ {
				maxJ = j
			}
			sum += j
			n++
		}
	}
	if maxJ > 250*time.Microsecond {
		t.Fatalf("max jitter %v implausibly large", maxJ)
	}
	mean := sum / time.Duration(n)
	// Half-normal mean = sigma*sqrt(2/pi) ~ 32us for sigma=40us.
	if mean < 20*time.Microsecond || mean > 45*time.Microsecond {
		t.Fatalf("mean jitter %v outside expected band", mean)
	}
}

func TestClockDriftAccumulates(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	a.SetDriftPPM(10)
	m.BroadcastSync()
	base := a.ClockError()
	_ = eng.RunUntil(10 * time.Second)
	grown := a.ClockError() - base
	want := 100 * time.Microsecond // 10ppm over 10s
	if grown < want-time.Microsecond || grown > want+time.Microsecond {
		t.Fatalf("drift grew %v, want ~%v", grown, want)
	}
}

func TestAttachDuplicate(t *testing.T) {
	_, m := newTestMedium(t, perfectConfig())
	attach(t, m, 1, Position{})
	if _, err := m.Attach(1, Position{}, nil, DefaultEnergyModel()); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestUnicastNotDeliveredToOthers(t *testing.T) {
	eng, m := newTestMedium(t, perfectConfig())
	a := attach(t, m, 1, Position{0, 0})
	b := attach(t, m, 2, Position{5, 0})
	c := attach(t, m, 3, Position{0, 5})
	bGot, cGot := 0, 0
	b.SetHandler(func(Packet) { bGot++ })
	c.SetHandler(func(Packet) { cGot++ })
	b.SetState(StateRX)
	c.SetState(StateRX)
	eng.At(0, func() { _, _ = a.Send(Packet{Dst: 2, Payload: []byte("u")}) })
	eng.Run()
	if bGot != 1 || cGot != 0 {
		t.Fatalf("bGot=%d cGot=%d, want 1/0", bGot, cGot)
	}
}
