// Package radio models the physical wireless layer of a FireFly-class
// sensor network: an IEEE 802.15.4-like shared medium with distance-based
// packet error rates, Gilbert-Elliott burst losses, collision detection,
// a radio power-state machine with per-state current draw, and an AM-carrier
// global time-synchronization pulse with configurable jitter.
//
// The paper's EVM runs over exactly this substrate (FireFly + CC2420 +
// passive AM sync receiver); here it is simulated on the internal/sim
// discrete-event engine so experiments are deterministic.
package radio

import "fmt"

// NodeID identifies a node on the medium.
type NodeID uint16

// Broadcast addresses a packet to every node in range.
const Broadcast NodeID = 0xFFFF

// String implements fmt.Stringer.
func (id NodeID) String() string {
	if id == Broadcast {
		return "node(*)"
	}
	return fmt.Sprintf("node(%d)", uint16(id))
}

// Kind classifies link-layer payloads. Higher layers (RT-Link, the EVM)
// define their own kinds; the radio treats them opaquely.
type Kind uint8

// Packet is a link-layer frame. Src/Dst are end-to-end addresses; Hop is
// the link-layer next hop chosen by the routing layer (Broadcast means
// every listener delivers the frame).
type Packet struct {
	Src     NodeID
	Dst     NodeID
	Hop     NodeID
	Kind    Kind
	Seq     uint32
	Payload []byte
}

// Overhead is the fixed per-frame byte cost (preamble, SFD, FCF, addresses,
// FCS) modeled after an 802.15.4 data frame.
const Overhead = 17

// AirBytes returns the number of bytes the frame occupies on air.
func (p *Packet) AirBytes() int { return Overhead + len(p.Payload) }

// Clone returns a deep copy of the packet (the payload is copied so
// receivers can never alias the sender's buffer).
func (p *Packet) Clone() Packet {
	c := *p
	if p.Payload != nil {
		c.Payload = make([]byte, len(p.Payload))
		copy(c.Payload, p.Payload)
	}
	return c
}
