package radio

import "time"

// EnergyModel holds per-state current draw. Defaults follow the FireFly
// platform (ATmega1281 + CC2420) numbers the paper builds on.
type EnergyModel struct {
	TXCurrentMA    float64 // radio transmitting
	RXCurrentMA    float64 // radio receiving / listening
	IdleCurrentMA  float64 // MCU active, radio off
	SleepCurrentMA float64 // deep sleep
	VoltageV       float64
}

// DefaultEnergyModel returns CC2420/FireFly-like current draws.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		TXCurrentMA:    17.4,
		RXCurrentMA:    19.7,
		IdleCurrentMA:  6.0,
		SleepCurrentMA: 0.021,
		VoltageV:       3.0,
	}
}

// Current returns the draw for a radio state in mA.
func (m EnergyModel) Current(s State) float64 {
	switch s {
	case StateTX:
		return m.TXCurrentMA
	case StateRX:
		return m.RXCurrentMA
	case StateIdle:
		return m.IdleCurrentMA
	case StateSleep:
		return m.SleepCurrentMA
	default:
		return 0
	}
}

// Battery integrates charge consumption over virtual time.
type Battery struct {
	CapacityMAH float64
	consumedMAS float64 // milliamp-seconds
}

// NewBattery returns a battery with the given capacity in mAh. Two AA
// cells (~2600 mAh) are the FireFly reference supply.
func NewBattery(capacityMAH float64) *Battery {
	return &Battery{CapacityMAH: capacityMAH}
}

// Drain consumes currentMA for dur of virtual time.
func (b *Battery) Drain(currentMA float64, dur time.Duration) {
	b.consumedMAS += currentMA * dur.Seconds()
}

// ConsumeFraction instantly consumes the given fraction of the total
// capacity (fault injection: sudden energy loss from a shorted cell or a
// stuck transmitter). Negative fractions are ignored; draining past
// empty leaves the battery depleted.
func (b *Battery) ConsumeFraction(f float64) {
	if f <= 0 {
		return
	}
	b.consumedMAS += f * b.CapacityMAH * 3600
}

// ConsumedMAH returns the total charge consumed so far.
func (b *Battery) ConsumedMAH() float64 { return b.consumedMAS / 3600 }

// RemainingFraction returns remaining charge in [0,1].
func (b *Battery) RemainingFraction() float64 {
	if b.CapacityMAH <= 0 {
		return 0
	}
	f := 1 - b.ConsumedMAH()/b.CapacityMAH
	if f < 0 {
		return 0
	}
	return f
}

// Depleted reports whether the battery is exhausted.
func (b *Battery) Depleted() bool { return b.RemainingFraction() <= 0 }

// LifetimeAt extrapolates total battery lifetime assuming the average
// current observed over elapsed continues indefinitely. Returns 0 if no
// charge has been consumed yet.
func (b *Battery) LifetimeAt(elapsed time.Duration) time.Duration {
	if b.consumedMAS <= 0 || elapsed <= 0 {
		return 0
	}
	avgMA := b.consumedMAS / elapsed.Seconds()
	hours := b.CapacityMAH / avgMA
	return time.Duration(hours * float64(time.Hour))
}
