package radio

import (
	"testing"
	"time"

	"evm/internal/sim"
)

// lossPattern transmits n packets over one link and returns the
// delivered/lost pattern.
func lossPattern(t *testing.T, cfg Config, n int) []bool {
	t.Helper()
	eng := sim.New()
	m := NewMedium(eng, sim.NewRNG(12), cfg)
	a, err := m.Attach(1, Position{0, 0}, nil, DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Attach(2, Position{5, 0}, nil, DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([]bool, 0, n)
	got := false
	b.SetHandler(func(Packet) { got = true })
	b.SetState(StateRX)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		eng.At(at, func() {
			got = false
			_, _ = a.Send(Packet{Dst: 2, Payload: []byte{1}})
		})
		eng.At(at+9*time.Millisecond, func() {
			pattern = append(pattern, got)
		})
	}
	eng.Run()
	return pattern
}

// burstiness returns the conditional loss probability P(loss | previous
// loss) divided by the marginal loss probability — 1.0 for independent
// losses, >1 for bursty channels.
func burstiness(pattern []bool) float64 {
	losses, lossPairs, prevLoss := 0, 0, 0
	for i, ok := range pattern {
		if !ok {
			losses++
			if i > 0 && !pattern[i-1] {
				lossPairs++
			}
		}
		if i > 0 && !pattern[i-1] {
			prevLoss++
		}
	}
	if losses == 0 || prevLoss == 0 {
		return 0
	}
	marginal := float64(losses) / float64(len(pattern))
	conditional := float64(lossPairs) / float64(prevLoss)
	return conditional / marginal
}

func TestGilbertElliottProducesBursts(t *testing.T) {
	bursty := DefaultConfig()
	bursty.RefPER = 0
	bursty.Burst = GilbertElliott{PBad: 0.8, GoodToBad: 0.02, BadToGood: 0.2}
	pattern := lossPattern(t, bursty, 20000)
	ratio := burstiness(pattern)
	if ratio < 2 {
		t.Fatalf("burstiness ratio %.2f, want clearly > 1 (correlated losses)", ratio)
	}
}

func TestUniformLossNotBursty(t *testing.T) {
	uniform := DefaultConfig()
	uniform.RefPER = 0
	uniform.Burst = GilbertElliott{}
	eng := sim.New()
	_ = eng
	// Force a flat 10% PER.
	cfgPattern := func() []bool {
		engine := sim.New()
		m := NewMedium(engine, sim.NewRNG(12), uniform)
		m.ForcePER(0.1)
		a, err := m.Attach(1, Position{0, 0}, nil, DefaultEnergyModel())
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Attach(2, Position{5, 0}, nil, DefaultEnergyModel())
		if err != nil {
			t.Fatal(err)
		}
		pattern := make([]bool, 0, 20000)
		got := false
		b.SetHandler(func(Packet) { got = true })
		b.SetState(StateRX)
		for i := 0; i < 20000; i++ {
			at := time.Duration(i) * 10 * time.Millisecond
			engine.At(at, func() {
				got = false
				_, _ = a.Send(Packet{Dst: 2, Payload: []byte{1}})
			})
			engine.At(at+9*time.Millisecond, func() { pattern = append(pattern, got) })
		}
		engine.Run()
		return pattern
	}
	ratio := burstiness(cfgPattern())
	if ratio > 1.3 {
		t.Fatalf("uniform loss burstiness %.2f, want ~1", ratio)
	}
}

func TestBurstLossRecoversToGoodState(t *testing.T) {
	// Long-run loss rate must match the stationary distribution, not the
	// bad-state rate: pi_bad = g2b/(g2b+b2g).
	cfg := DefaultConfig()
	cfg.RefPER = 0
	cfg.Burst = GilbertElliott{PBad: 1.0, GoodToBad: 0.05, BadToGood: 0.45}
	pattern := lossPattern(t, cfg, 20000)
	losses := 0
	for _, ok := range pattern {
		if !ok {
			losses++
		}
	}
	rate := float64(losses) / float64(len(pattern))
	want := 0.05 / (0.05 + 0.45) // 0.10
	if rate < want-0.03 || rate > want+0.03 {
		t.Fatalf("long-run loss %.3f, want ~%.2f (stationary)", rate, want)
	}
}
