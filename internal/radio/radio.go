package radio

import (
	"fmt"
	"time"
)

// Radio is one node's transceiver. All methods must be called from the
// simulation goroutine (the engine is single-threaded by design).
type Radio struct {
	id        NodeID
	med       *Medium
	pos       Position
	state     State
	lastSince time.Duration // when the current state was entered
	battery   *Battery
	model     EnergyModel
	handler   func(Packet)
	capture   *transmission // frame currently being captured, if any
	received  int
	drops     [5]int // indexed by DropReason

	// Clock synchronization (AM carrier): offset of the local clock
	// relative to global time, refreshed by sync pulses.
	clockOffset time.Duration
	driftPPM    float64
	lastSync    time.Duration
	failed      bool
}

// ID returns the node ID.
func (r *Radio) ID() NodeID { return r.id }

// Position returns the node location.
func (r *Radio) Position() Position { return r.pos }

// State returns the current power state.
func (r *Radio) State() State { return r.state }

// Battery returns the attached battery (may be nil for mains-powered nodes).
func (r *Radio) Battery() *Battery { return r.battery }

// Received returns the count of frames delivered to this radio.
func (r *Radio) Received() int { return r.received }

// Drops returns the count of frames dropped for the given reason.
func (r *Radio) Drops(reason DropReason) int {
	if reason < 1 || int(reason) >= len(r.drops) {
		return 0
	}
	return r.drops[reason]
}

// SetHandler installs the receive callback. The packet passed to the
// handler is a private copy.
func (r *Radio) SetHandler(fn func(Packet)) { r.handler = fn }

// SetDriftPPM sets the local oscillator drift in parts per million.
func (r *Radio) SetDriftPPM(ppm float64) { r.driftPPM = ppm }

// Fail marks the radio as failed: it stops transmitting and receiving and
// drains no further energy. Models a node crash.
func (r *Radio) Fail() {
	r.settle()
	r.failed = true
	r.state = StateSleep
}

// Failed reports whether the node has crashed.
func (r *Radio) Failed() bool { return r.failed }

// Recover clears the failed flag, returning the radio to sleep state.
func (r *Radio) Recover() {
	r.failed = false
	r.settle()
	r.state = StateSleep
}

// settle charges the battery for the time spent in the current state and
// restarts the accounting window.
func (r *Radio) settle() {
	now := r.med.eng.Now()
	if r.battery != nil && !r.failed {
		r.battery.Drain(r.model.Current(r.state), now-r.lastSince)
	}
	r.lastSince = now
}

// SetState transitions the power state, charging energy for the state
// being left.
func (r *Radio) SetState(s State) {
	if r.failed {
		return
	}
	if s == r.state {
		return
	}
	r.settle()
	r.state = s
}

// Send transmits a frame. The radio is put in TX for the air time and then
// returned to the state it was in before the call. Returns the air time.
func (r *Radio) Send(pkt Packet) (time.Duration, error) {
	if r.failed {
		return 0, fmt.Errorf("radio: node %v is failed", r.id)
	}
	pkt.Src = r.id
	if pkt.Hop == 0 {
		pkt.Hop = pkt.Dst
	}
	prev := r.state
	r.SetState(StateTX)
	air, err := r.med.transmit(r, pkt)
	if err != nil {
		r.SetState(prev)
		return 0, err
	}
	r.med.eng.At(r.med.eng.Now()+air, func() {
		if r.state == StateTX {
			r.SetState(prev)
		}
	})
	return air, nil
}

// EnergyConsumedMAH returns battery charge consumed so far including the
// current (unsettled) state interval.
func (r *Radio) EnergyConsumedMAH() float64 {
	if r.battery == nil {
		return 0
	}
	r.settle()
	return r.battery.ConsumedMAH()
}

// --- AM-carrier time synchronization -----------------------------------

// SyncJitterSigma is the standard deviation of the sync-pulse detection
// jitter. The paper reports sub-150us jitter on FireFly; a sigma of 40us
// puts the 3-sigma envelope near 120us.
const SyncJitterSigma = 40 * time.Microsecond

// ClockError returns the node's current clock error relative to global
// time: the residual sync jitter plus drift accumulated since last sync.
func (r *Radio) ClockError() time.Duration {
	drift := float64(r.med.eng.Now()-r.lastSync) * r.driftPPM / 1e6
	return r.clockOffset + time.Duration(drift)
}

// BroadcastSync delivers an out-of-band AM synchronization pulse to every
// non-failed radio. Each node's clock offset is reset to a fresh jitter
// sample. It returns the jitter applied to each node.
func (m *Medium) BroadcastSync() map[NodeID]time.Duration {
	out := make(map[NodeID]time.Duration, len(m.radios))
	for _, id := range m.order {
		r := m.radios[id]
		if r.failed {
			continue
		}
		j := time.Duration(m.rng.NormFloat64() * float64(SyncJitterSigma))
		if j < 0 {
			j = -j
		}
		r.clockOffset = j
		r.lastSync = m.eng.Now()
		out[id] = j
	}
	return out
}
