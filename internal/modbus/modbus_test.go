package modbus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newPair() (*Server, *Client) {
	srv := &Server{UnitID: 9, Regs: NewRegisterMap(99)}
	return srv, &Client{UnitID: 9}
}

func TestCRCKnownVector(t *testing.T) {
	// Classic ModBus test vector: 01 03 00 00 00 0A -> CRC C5 CD.
	frame := []byte{0x01, 0x03, 0x00, 0x00, 0x00, 0x0A}
	if got := CRC16(frame); got != 0xCDC5 {
		t.Fatalf("CRC = %#04x, want 0xCDC5", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	srv, cli := newPair()
	resp, err := srv.Handle(cli.WriteSingleRequest(5, 1234))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.CheckWriteResponse(resp); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Handle(cli.ReadHoldingRequest(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cli.ParseReadResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 1234 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestReadMultiple(t *testing.T) {
	srv, cli := newPair()
	for i := uint16(0); i < 4; i++ {
		srv.Regs.Write(10+i, 100+i)
	}
	resp, err := srv.Handle(cli.ReadHoldingRequest(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cli.ParseReadResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != uint16(100+i) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestIllegalAddressException(t *testing.T) {
	srv, cli := newPair()
	resp, err := srv.Handle(cli.ReadHoldingRequest(98, 5)) // crosses max 99
	if err != nil {
		t.Fatal(err)
	}
	_, err = cli.ParseReadResponse(resp)
	var exc *ExceptionError
	if !errors.As(err, &exc) || exc.Code != ExcIllegalAddress {
		t.Fatalf("err = %v, want illegal-address exception", err)
	}
}

func TestIllegalFunction(t *testing.T) {
	srv, cli := newPair()
	frame := appendCRC([]byte{9, 0x55, 0, 0})
	resp, err := srv.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	err = cli.CheckWriteResponse(resp)
	var exc *ExceptionError
	if !errors.As(err, &exc) || exc.Code != ExcIllegalFunction {
		t.Fatalf("err = %v, want illegal-function exception", err)
	}
}

func TestCorruptedFrameRejected(t *testing.T) {
	srv, cli := newPair()
	req := cli.ReadHoldingRequest(0, 1)
	req[2] ^= 0xFF // damage the body
	if _, err := srv.Handle(req); !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
	if _, err := srv.Handle([]byte{1, 2}); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestWrongUnitSilent(t *testing.T) {
	srv, _ := newPair()
	other := &Client{UnitID: 3}
	resp, err := srv.Handle(other.ReadHoldingRequest(0, 1))
	if err != nil || resp != nil {
		t.Fatalf("resp=%v err=%v, want silence for other unit", resp, err)
	}
}

func TestWriteMultiple(t *testing.T) {
	srv, cli := newPair()
	// Build a write-multiple by hand: addr=20 count=2 values 7,8.
	body := []byte{9, FuncWriteMultiple, 0, 20, 0, 2, 4, 0, 7, 0, 8}
	resp, err := srv.Handle(appendCRC(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.CheckWriteResponse(resp); err != nil {
		t.Fatal(err)
	}
	v, _ := srv.Regs.Read(21)
	if v != 8 {
		t.Fatalf("reg 21 = %d, want 8", v)
	}
	// Mismatched byte count rejected with exception.
	bad := appendCRC([]byte{9, FuncWriteMultiple, 0, 20, 0, 2, 3, 0, 7, 0})
	resp, err = srv.Handle(bad)
	if err != nil {
		t.Fatal(err)
	}
	var exc *ExceptionError
	if err := cli.CheckWriteResponse(resp); !errors.As(err, &exc) {
		t.Fatalf("err = %v, want exception", err)
	}
}

func TestOnWriteHook(t *testing.T) {
	srv, cli := newPair()
	var gotAddr, gotVal uint16
	srv.Regs.OnWrite = func(a, v uint16) { gotAddr, gotVal = a, v }
	if _, err := srv.Handle(cli.WriteSingleRequest(7, 42)); err != nil {
		t.Fatal(err)
	}
	if gotAddr != 7 || gotVal != 42 {
		t.Fatalf("hook saw %d=%d", gotAddr, gotVal)
	}
}

func TestRegisterScaling(t *testing.T) {
	cases := []struct {
		v     float64
		scale float64
	}{
		{50.25, 100}, {11.48, 100}, {0, 100}, {655.35, 100}, {123.4, 10},
	}
	for _, c := range cases {
		got := FromReg(ToReg(c.v, c.scale), c.scale)
		if math.Abs(got-c.v) > 1/c.scale {
			t.Errorf("scale %v: %v -> %v", c.scale, c.v, got)
		}
	}
	if ToReg(-5, 100) != 0 {
		t.Error("negative not clamped")
	}
	if ToReg(1e9, 100) != 65535 {
		t.Error("overflow not clamped")
	}
}

func TestRequestResponseProperty(t *testing.T) {
	// Any written value must read back identically through the protocol.
	srv, cli := newPair()
	f := func(addr uint16, value uint16) bool {
		addr %= 100
		resp, err := srv.Handle(cli.WriteSingleRequest(addr, value))
		if err != nil || cli.CheckWriteResponse(resp) != nil {
			return false
		}
		resp, err = srv.Handle(cli.ReadHoldingRequest(addr, 1))
		if err != nil {
			return false
		}
		vals, err := cli.ParseReadResponse(resp)
		return err == nil && len(vals) == 1 && vals[0] == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseResponseWrongUnit(t *testing.T) {
	srv, _ := newPair()
	cli := &Client{UnitID: 9}
	resp, err := srv.Handle(cli.ReadHoldingRequest(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	wrong := &Client{UnitID: 4}
	if _, err := wrong.ParseReadResponse(resp); !errors.Is(err, ErrUnitID) {
		t.Fatalf("err = %v, want ErrUnitID", err)
	}
}

func TestZeroCountRejected(t *testing.T) {
	srv, cli := newPair()
	resp, err := srv.Handle(cli.ReadHoldingRequest(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var exc *ExceptionError
	if _, err := cli.ParseReadResponse(resp); !errors.As(err, &exc) || exc.Code != ExcIllegalValue {
		t.Fatalf("err = %v, want illegal-value", err)
	}
}
