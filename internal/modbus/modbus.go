// Package modbus implements the small subset of the ModBus protocol the
// paper's testbed uses to connect the RT-Link gateway to the UniSim plant
// workstation (§4: "The gateway communicates with Unisim (on the
// workstation) via ModBus"): RTU-style frames with CRC-16, holding-
// register reads (0x03), single writes (0x06) and multiple writes (0x10),
// plus standard exception responses.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Function codes.
const (
	FuncReadHolding   = 0x03
	FuncWriteSingle   = 0x06
	FuncWriteMultiple = 0x10
)

// Exception codes.
const (
	ExcIllegalFunction = 0x01
	ExcIllegalAddress  = 0x02
	ExcIllegalValue    = 0x03
)

// Protocol errors.
var (
	ErrCRC       = errors.New("modbus: CRC mismatch")
	ErrShort     = errors.New("modbus: frame too short")
	ErrUnitID    = errors.New("modbus: response from wrong unit")
	ErrMalformed = errors.New("modbus: malformed frame")
)

// ExceptionError is a ModBus exception response.
type ExceptionError struct {
	Function byte
	Code     byte
}

// Error implements the error interface.
func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: exception %#02x on function %#02x", e.Code, e.Function)
}

// CRC16 computes the ModBus RTU CRC over data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// appendCRC appends the little-endian CRC to a frame body.
func appendCRC(frame []byte) []byte {
	crc := CRC16(frame)
	return append(frame, byte(crc), byte(crc>>8))
}

// checkCRC verifies and strips the CRC, returning the body.
func checkCRC(frame []byte) ([]byte, error) {
	if len(frame) < 4 {
		return nil, ErrShort
	}
	body := frame[:len(frame)-2]
	want := uint16(frame[len(frame)-2]) | uint16(frame[len(frame)-1])<<8
	if CRC16(body) != want {
		return nil, ErrCRC
	}
	return body, nil
}

// RegisterMap is a bank of 16-bit holding registers with an allowed
// address window.
type RegisterMap struct {
	regs map[uint16]uint16
	max  uint16
	// OnWrite, when set, observes every successful register write.
	OnWrite func(addr, value uint16)
}

// NewRegisterMap creates a map accepting addresses [0, maxAddr].
func NewRegisterMap(maxAddr uint16) *RegisterMap {
	return &RegisterMap{regs: make(map[uint16]uint16), max: maxAddr}
}

// Read returns the register value (unset registers read as zero).
func (m *RegisterMap) Read(addr uint16) (uint16, bool) {
	if addr > m.max {
		return 0, false
	}
	return m.regs[addr], true
}

// Write sets a register value.
func (m *RegisterMap) Write(addr, value uint16) bool {
	if addr > m.max {
		return false
	}
	m.regs[addr] = value
	if m.OnWrite != nil {
		m.OnWrite(addr, value)
	}
	return true
}

// Server answers ModBus requests against a register map.
type Server struct {
	UnitID byte
	Regs   *RegisterMap
}

// Handle processes one request frame and returns the response frame.
// Frames addressed to other units return nil (silent, per RTU semantics).
func (s *Server) Handle(frame []byte) ([]byte, error) {
	body, err := checkCRC(frame)
	if err != nil {
		return nil, err
	}
	if len(body) < 2 {
		return nil, ErrShort
	}
	if body[0] != s.UnitID {
		return nil, nil
	}
	fn := body[1]
	pdu := body[2:]
	switch fn {
	case FuncReadHolding:
		return s.readHolding(pdu)
	case FuncWriteSingle:
		return s.writeSingle(pdu)
	case FuncWriteMultiple:
		return s.writeMultiple(pdu)
	default:
		return s.exception(fn, ExcIllegalFunction), nil
	}
}

func (s *Server) exception(fn, code byte) []byte {
	return appendCRC([]byte{s.UnitID, fn | 0x80, code})
}

func (s *Server) readHolding(pdu []byte) ([]byte, error) {
	if len(pdu) != 4 {
		return nil, ErrMalformed
	}
	addr := binary.BigEndian.Uint16(pdu[0:2])
	count := binary.BigEndian.Uint16(pdu[2:4])
	if count == 0 || count > 125 {
		return s.exception(FuncReadHolding, ExcIllegalValue), nil
	}
	out := []byte{s.UnitID, FuncReadHolding, byte(count * 2)}
	for i := uint16(0); i < count; i++ {
		v, ok := s.Regs.Read(addr + i)
		if !ok {
			return s.exception(FuncReadHolding, ExcIllegalAddress), nil
		}
		out = binary.BigEndian.AppendUint16(out, v)
	}
	return appendCRC(out), nil
}

func (s *Server) writeSingle(pdu []byte) ([]byte, error) {
	if len(pdu) != 4 {
		return nil, ErrMalformed
	}
	addr := binary.BigEndian.Uint16(pdu[0:2])
	value := binary.BigEndian.Uint16(pdu[2:4])
	if !s.Regs.Write(addr, value) {
		return s.exception(FuncWriteSingle, ExcIllegalAddress), nil
	}
	// Echo per spec.
	out := []byte{s.UnitID, FuncWriteSingle}
	out = binary.BigEndian.AppendUint16(out, addr)
	out = binary.BigEndian.AppendUint16(out, value)
	return appendCRC(out), nil
}

func (s *Server) writeMultiple(pdu []byte) ([]byte, error) {
	if len(pdu) < 5 {
		return nil, ErrMalformed
	}
	addr := binary.BigEndian.Uint16(pdu[0:2])
	count := binary.BigEndian.Uint16(pdu[2:4])
	byteCount := int(pdu[4])
	if count == 0 || count > 123 || byteCount != int(count)*2 || len(pdu) != 5+byteCount {
		return s.exception(FuncWriteMultiple, ExcIllegalValue), nil
	}
	// Validate the whole window first (atomic write).
	for i := uint16(0); i < count; i++ {
		if _, ok := s.Regs.Read(addr + i); !ok {
			return s.exception(FuncWriteMultiple, ExcIllegalAddress), nil
		}
	}
	for i := uint16(0); i < count; i++ {
		v := binary.BigEndian.Uint16(pdu[5+2*i:])
		s.Regs.Write(addr+i, v)
	}
	out := []byte{s.UnitID, FuncWriteMultiple}
	out = binary.BigEndian.AppendUint16(out, addr)
	out = binary.BigEndian.AppendUint16(out, count)
	return appendCRC(out), nil
}

// Client builds requests for and parses responses from a Server.
type Client struct {
	UnitID byte
}

// ReadHoldingRequest builds a read request for count registers at addr.
func (c *Client) ReadHoldingRequest(addr, count uint16) []byte {
	out := []byte{c.UnitID, FuncReadHolding}
	out = binary.BigEndian.AppendUint16(out, addr)
	out = binary.BigEndian.AppendUint16(out, count)
	return appendCRC(out)
}

// WriteSingleRequest builds a single-register write.
func (c *Client) WriteSingleRequest(addr, value uint16) []byte {
	out := []byte{c.UnitID, FuncWriteSingle}
	out = binary.BigEndian.AppendUint16(out, addr)
	out = binary.BigEndian.AppendUint16(out, value)
	return appendCRC(out)
}

// ParseReadResponse extracts register values from a read response.
func (c *Client) ParseReadResponse(frame []byte) ([]uint16, error) {
	body, err := checkCRC(frame)
	if err != nil {
		return nil, err
	}
	if len(body) < 3 {
		return nil, ErrShort
	}
	if body[0] != c.UnitID {
		return nil, ErrUnitID
	}
	if body[1]&0x80 != 0 {
		if len(body) < 3 {
			return nil, ErrMalformed
		}
		return nil, &ExceptionError{Function: body[1] &^ 0x80, Code: body[2]}
	}
	if body[1] != FuncReadHolding {
		return nil, ErrMalformed
	}
	n := int(body[2])
	if n%2 != 0 || len(body) != 3+n {
		return nil, ErrMalformed
	}
	vals := make([]uint16, n/2)
	for i := range vals {
		vals[i] = binary.BigEndian.Uint16(body[3+2*i:])
	}
	return vals, nil
}

// CheckWriteResponse validates a write echo (single or multiple).
func (c *Client) CheckWriteResponse(frame []byte) error {
	body, err := checkCRC(frame)
	if err != nil {
		return err
	}
	if len(body) < 2 {
		return ErrShort
	}
	if body[0] != c.UnitID {
		return ErrUnitID
	}
	if body[1]&0x80 != 0 {
		return &ExceptionError{Function: body[1] &^ 0x80, Code: body[2]}
	}
	return nil
}

// --- fixed-point register scaling -----------------------------------------

// ToReg encodes a float into a register with the given scale (e.g. scale
// 100 stores 50.25 as 5025). Values are clamped to the uint16 range.
func ToReg(v float64, scale float64) uint16 {
	x := v * scale
	if x < 0 {
		return 0
	}
	if x > 65535 {
		return 65535
	}
	return uint16(x + 0.5)
}

// FromReg decodes a register written by ToReg.
func FromReg(r uint16, scale float64) float64 {
	return float64(r) / scale
}
