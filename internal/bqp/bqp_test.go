package bqp

import (
	"errors"
	"math"
	"testing"

	"evm/internal/sim"
)

// twoTaskProblem: 2 tasks, 2 nodes; task 0 cheap on node 0, task 1 cheap
// on node 1, big penalty for co-location.
func twoTaskProblem() *Problem {
	return &Problem{
		Cost: [][]float64{{1, 5}, {5, 1}},
		Pair: [][]float64{{0, 100}, {100, 0}},
		Util: []float64{0.3, 0.3},
		Cap:  []float64{1, 1},
	}
}

func TestExhaustiveOptimal(t *testing.T) {
	sol, err := SolveExhaustive(twoTaskProblem())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 2 {
		t.Fatalf("cost = %f, want 2", sol.Cost)
	}
	if sol.Assign[0] != 0 || sol.Assign[1] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestPairPenaltySeparates(t *testing.T) {
	// Make node 0 cheap for both tasks; the pair penalty must still force
	// them apart (primary/backup anti-affinity).
	p := &Problem{
		Cost: [][]float64{{1, 2}, {1, 2}},
		Pair: [][]float64{{0, 1000}, {1000, 0}},
		Util: []float64{0.1, 0.1},
		Cap:  []float64{1, 1},
	}
	sol, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] == sol.Assign[1] {
		t.Fatalf("pair penalty ignored: %v", sol.Assign)
	}
}

func TestCapacityConstraint(t *testing.T) {
	// Two heavy tasks cannot share the single cheap node.
	p := &Problem{
		Cost: [][]float64{{0, 10}, {0, 10}},
		Util: []float64{0.6, 0.6},
		Cap:  []float64{1, 1},
	}
	sol, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] == sol.Assign[1] {
		t.Fatalf("capacity violated: %v", sol.Assign)
	}
}

func TestForbiddenPlacement(t *testing.T) {
	p := &Problem{
		Cost: [][]float64{{math.Inf(1), 1}},
		Util: []float64{0.1},
		Cap:  []float64{1, 1},
	}
	sol, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != 1 {
		t.Fatal("forbidden placement chosen")
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Cost: [][]float64{{1, 1}},
		Util: []float64{2.0}, // exceeds every capacity
		Cap:  []float64{1, 1},
	}
	if _, err := SolveExhaustive(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := SolveGreedy(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("greedy err = %v, want ErrInfeasible", err)
	}
}

func TestGreedyFeasibleButMaybeSuboptimal(t *testing.T) {
	sol, err := SolveGreedy(twoTaskProblem())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := twoTaskProblem().Evaluate(sol.Assign); !ok {
		t.Fatal("greedy produced infeasible assignment")
	}
	opt, err := SolveExhaustive(twoTaskProblem())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost < opt.Cost {
		t.Fatal("greedy beat the optimum — evaluation inconsistent")
	}
}

// randomProblem builds a feasible random instance.
func randomProblem(rng *sim.RNG, tasks, nodes int) *Problem {
	p := &Problem{
		Cost: make([][]float64, tasks),
		Pair: make([][]float64, tasks),
		Util: make([]float64, tasks),
		Cap:  make([]float64, nodes),
	}
	for t := 0; t < tasks; t++ {
		p.Cost[t] = make([]float64, nodes)
		p.Pair[t] = make([]float64, tasks)
		for n := 0; n < nodes; n++ {
			p.Cost[t][n] = rng.Float64() * 10
		}
		p.Util[t] = 0.05 + rng.Float64()*0.15
	}
	for t := 0; t < tasks; t++ {
		for u := t + 1; u < tasks; u++ {
			if rng.Bool(0.3) {
				v := rng.Float64() * 5
				p.Pair[t][u] = v
				p.Pair[u][t] = v
			}
		}
	}
	for n := 0; n < nodes; n++ {
		p.Cap[n] = 1
	}
	return p
}

func TestAnnealMatchesExhaustiveOnSmallInstances(t *testing.T) {
	rng := sim.NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 5, 3)
		opt, err := SolveExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		ann, err := SolveAnneal(p, rng.Fork(), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if ann.Cost > opt.Cost*1.05+1e-9 {
			t.Fatalf("trial %d: anneal %.3f vs optimal %.3f", trial, ann.Cost, opt.Cost)
		}
	}
}

func TestAnnealNeverWorseThanGreedy(t *testing.T) {
	rng := sim.NewRNG(9)
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 8, 4)
		greedy, err := SolveGreedy(p)
		if err != nil {
			t.Fatal(err)
		}
		ann, err := SolveAnneal(p, rng.Fork(), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		if ann.Cost > greedy.Cost+1e-9 {
			t.Fatalf("trial %d: anneal %.3f worse than its greedy start %.3f", trial, ann.Cost, greedy.Cost)
		}
	}
}

func TestExhaustiveRefusesHugeInstances(t *testing.T) {
	p := randomProblem(sim.NewRNG(1), 30, 8)
	if _, err := SolveExhaustive(p); err == nil {
		t.Fatal("8^30 enumeration accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Problem{
		{},
		{Cost: [][]float64{{1, 2}, {1}}, Util: []float64{0.1, 0.1}, Cap: []float64{1, 1}},
		{Cost: [][]float64{{1, 2}}, Util: []float64{}, Cap: []float64{1, 1}},
		{Cost: [][]float64{{1, 2}}, Util: []float64{0.1}, Cap: []float64{1}},
		{Cost: [][]float64{{1, 2}}, Pair: [][]float64{{0, 0}}, Util: []float64{0.1}, Cap: []float64{1, 1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestEvaluateRejectsBadAssignments(t *testing.T) {
	p := twoTaskProblem()
	if _, ok := p.Evaluate([]int{0}); ok {
		t.Fatal("short assignment accepted")
	}
	if _, ok := p.Evaluate([]int{0, 5}); ok {
		t.Fatal("out-of-range node accepted")
	}
}
