// Package bqp solves the binary quadratic program the EVM uses for
// runtime optimization of task-to-node assignment (paper §3.1.1 op 7:
// "We use Binary Quadratic Programming for fixed-point optimization for
// functional and para-functional requirements across controller nodes").
//
// The model: binary variables x[t][n] assign task t to node n. The
// objective combines a linear placement cost (proximity to sensors,
// calibration, energy) with pairwise costs between tasks placed on the
// same node (e.g. a large penalty keeps a primary and its backup on
// different nodes). Node capacity constraints bound the total utilization
// placed on each node.
//
// Three solvers are provided: exhaustive enumeration (optimal, small
// instances), a greedy constructor (the baseline the ablation compares
// against) and simulated annealing (near-optimal for larger instances).
package bqp

import (
	"errors"
	"fmt"
	"math"

	"evm/internal/sim"
)

// ErrInfeasible is returned when no feasible assignment exists (or none
// was found by a heuristic solver).
var ErrInfeasible = errors.New("bqp: no feasible assignment found")

// Problem is a task-to-node assignment instance.
type Problem struct {
	// Cost[t][n] is the linear cost of placing task t on node n. Use
	// math.Inf(1) to forbid a placement (e.g. node lacks the sensor).
	Cost [][]float64
	// Pair[t][u] is added to the objective when tasks t and u share a
	// node (symmetric; only t<u is read).
	Pair [][]float64
	// Util[t] is the CPU utilization demand of task t.
	Util []float64
	// Cap[n] is the CPU capacity of node n.
	Cap []float64
}

// Tasks returns the number of tasks.
func (p *Problem) Tasks() int { return len(p.Cost) }

// Nodes returns the number of nodes.
func (p *Problem) Nodes() int {
	if len(p.Cost) == 0 {
		return 0
	}
	return len(p.Cost[0])
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	t, n := p.Tasks(), p.Nodes()
	if t == 0 || n == 0 {
		return fmt.Errorf("bqp: empty problem (%d tasks, %d nodes)", t, n)
	}
	for i, row := range p.Cost {
		if len(row) != n {
			return fmt.Errorf("bqp: cost row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if p.Pair != nil {
		if len(p.Pair) != t {
			return fmt.Errorf("bqp: pair matrix has %d rows, want %d", len(p.Pair), t)
		}
		for i, row := range p.Pair {
			if len(row) != t {
				return fmt.Errorf("bqp: pair row %d has %d entries, want %d", i, len(row), t)
			}
		}
	}
	if len(p.Util) != t {
		return fmt.Errorf("bqp: util has %d entries, want %d", len(p.Util), t)
	}
	if len(p.Cap) != n {
		return fmt.Errorf("bqp: cap has %d entries, want %d", len(p.Cap), n)
	}
	return nil
}

// Evaluate returns the objective value of an assignment (assign[t] =
// node) and whether it is feasible.
func (p *Problem) Evaluate(assign []int) (float64, bool) {
	if len(assign) != p.Tasks() {
		return math.Inf(1), false
	}
	var cost float64
	load := make([]float64, p.Nodes())
	for t, n := range assign {
		if n < 0 || n >= p.Nodes() {
			return math.Inf(1), false
		}
		c := p.Cost[t][n]
		if math.IsInf(c, 1) {
			return math.Inf(1), false
		}
		cost += c
		load[n] += p.Util[t]
	}
	for n := range load {
		if load[n] > p.Cap[n]+1e-9 {
			return math.Inf(1), false
		}
	}
	if p.Pair != nil {
		for t := 0; t < p.Tasks(); t++ {
			for u := t + 1; u < p.Tasks(); u++ {
				if assign[t] == assign[u] {
					cost += p.Pair[t][u]
				}
			}
		}
	}
	return cost, true
}

// Solution is the result of a solver run.
type Solution struct {
	Assign []int
	Cost   float64
	// Evaluated counts candidate assignments examined (solver effort).
	Evaluated int
}

// SolveExhaustive enumerates every assignment; optimal but O(nodes^tasks).
// It refuses instances with more than ~20M candidates.
func SolveExhaustive(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t, n := p.Tasks(), p.Nodes()
	total := math.Pow(float64(n), float64(t))
	if total > 20e6 {
		return Solution{}, fmt.Errorf("bqp: %d^%d candidates too many for exhaustive search", n, t)
	}
	assign := make([]int, t)
	best := Solution{Cost: math.Inf(1)}
	for {
		best.Evaluated++
		if c, ok := p.Evaluate(assign); ok && c < best.Cost {
			best.Cost = c
			best.Assign = append([]int(nil), assign...)
		}
		// Odometer increment.
		i := 0
		for ; i < t; i++ {
			assign[i]++
			if assign[i] < n {
				break
			}
			assign[i] = 0
		}
		if i == t {
			break
		}
	}
	if best.Assign == nil {
		return best, ErrInfeasible
	}
	return best, nil
}

// SolveGreedy places tasks in order of decreasing utilization on the
// cheapest feasible node. Fast; the ablation baseline.
func SolveGreedy(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t, n := p.Tasks(), p.Nodes()
	order := make([]int, t)
	for i := range order {
		order[i] = i
	}
	// Sort by decreasing utilization (stable insertion for determinism).
	for i := 1; i < t; i++ {
		for j := i; j > 0 && p.Util[order[j]] > p.Util[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assign := make([]int, t)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]float64, n)
	sol := Solution{}
	for _, task := range order {
		bestNode, bestCost := -1, math.Inf(1)
		for node := 0; node < n; node++ {
			sol.Evaluated++
			if load[node]+p.Util[task] > p.Cap[node]+1e-9 {
				continue
			}
			c := p.Cost[task][node]
			if math.IsInf(c, 1) {
				continue
			}
			// Include pairwise cost against already-placed tasks.
			for other, on := range assign {
				if on == node && p.Pair != nil {
					lo, hi := task, other
					if lo > hi {
						lo, hi = hi, lo
					}
					c += p.Pair[lo][hi]
				}
			}
			if c < bestCost {
				bestCost, bestNode = c, node
			}
		}
		if bestNode < 0 {
			return sol, ErrInfeasible
		}
		assign[task] = bestNode
		load[bestNode] += p.Util[task]
	}
	cost, ok := p.Evaluate(assign)
	if !ok {
		return sol, ErrInfeasible
	}
	sol.Assign = assign
	sol.Cost = cost
	return sol, nil
}

// SolveAnneal runs simulated annealing from the greedy solution (or a
// random feasible start). Deterministic given the RNG.
func SolveAnneal(p *Problem, rng *sim.RNG, iters int) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if iters <= 0 {
		iters = 10_000
	}
	cur, err := SolveGreedy(p)
	if err != nil {
		cur, err = randomFeasible(p, rng, 10_000)
		if err != nil {
			return Solution{}, err
		}
	}
	best := Solution{Assign: append([]int(nil), cur.Assign...), Cost: cur.Cost}
	t, n := p.Tasks(), p.Nodes()
	curAssign := append([]int(nil), cur.Assign...)
	curCost := cur.Cost
	temp0 := math.Max(1.0, curCost*0.1)
	evaluated := cur.Evaluated
	for i := 0; i < iters; i++ {
		temp := temp0 * (1 - float64(i)/float64(iters))
		task := rng.Intn(t)
		node := rng.Intn(n)
		if node == curAssign[task] {
			continue
		}
		old := curAssign[task]
		curAssign[task] = node
		c, ok := p.Evaluate(curAssign)
		evaluated++
		accept := ok && (c <= curCost || rng.Float64() < math.Exp((curCost-c)/math.Max(temp, 1e-9)))
		if accept {
			curCost = c
			if c < best.Cost {
				best.Cost = c
				copy(best.Assign, curAssign)
			}
		} else {
			curAssign[task] = old
		}
	}
	best.Evaluated = evaluated
	return best, nil
}

// randomFeasible samples random assignments until one is feasible.
func randomFeasible(p *Problem, rng *sim.RNG, tries int) (Solution, error) {
	t, n := p.Tasks(), p.Nodes()
	assign := make([]int, t)
	for k := 0; k < tries; k++ {
		for i := range assign {
			assign[i] = rng.Intn(n)
		}
		if c, ok := p.Evaluate(assign); ok {
			return Solution{Assign: append([]int(nil), assign...), Cost: c, Evaluated: k + 1}, nil
		}
	}
	return Solution{}, ErrInfeasible
}
