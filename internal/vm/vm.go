// Package vm implements the EVM's FORTH-like byte-code interpreter.
//
// Like Maté, the interpreter is a small stack machine; unlike Maté, the
// instruction set is extensible at runtime (RegisterOp) and the
// instructions are oriented toward node-to-node control: code and state
// travel between nodes in attested capsules (capsule.go), and the complete
// interpreter state (pc, stacks, memory) can be snapshotted and restored
// on another node, which is the mechanism behind the EVM's task migration.
package vm

import (
	"errors"
	"fmt"
)

// Op is a byte-code opcode.
type Op byte

// Core instruction set. Opcodes 0x80 and above are reserved for runtime
// extensions.
const (
	OpNop Op = iota
	OpHalt
	OpPush8  // push sign-extended 1-byte literal
	OpPush64 // push 8-byte big-endian literal
	OpDup
	OpDrop
	OpSwap
	OpOver
	OpRot
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpAbs
	OpMin
	OpMax
	OpEq
	OpLt
	OpGt
	OpAnd
	OpOr
	OpNot
	OpLoad  // ( addr -- mem[addr] )
	OpStore // ( val addr -- )
	OpJmp   // 2-byte absolute target
	OpJz    // pop; jump if zero
	OpCall  // 2-byte absolute target, push return address
	OpRet
	OpIn   // 1-byte port; push host input
	OpOut  // 1-byte port; pop to host output
	OpMulQ // Q16.16 fixed-point multiply
	OpDivQ // Q16.16 fixed-point divide
)

// ExtBase is the first opcode available to runtime extensions.
const ExtBase Op = 0x80

// Interpreter limits.
const (
	DefaultStackDepth = 64
	DefaultMemWords   = 256
	DefaultGas        = 10_000
)

// QOne is 1.0 in Q16.16 fixed point.
const QOne int64 = 1 << 16

// ToQ converts a float to Q16.16.
func ToQ(f float64) int64 { return int64(f * float64(QOne)) }

// FromQ converts Q16.16 to float.
func FromQ(q int64) float64 { return float64(q) / float64(QOne) }

// Interpreter errors.
var (
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrBadAddress     = errors.New("vm: memory address out of range")
	ErrBadJump        = errors.New("vm: jump target out of range")
	ErrDivByZero      = errors.New("vm: division by zero")
	ErrGasExhausted   = errors.New("vm: gas exhausted")
	ErrHalted         = errors.New("vm: halted")
	ErrTruncated      = errors.New("vm: truncated instruction")
	ErrUnknownOp      = errors.New("vm: unknown opcode")
	ErrNoHost         = errors.New("vm: IN/OUT without host")
)

// Host provides the node-side environment: sensor inputs and actuator
// outputs addressed by port number.
type Host interface {
	In(port uint8) (int64, error)
	Out(port uint8, value int64) error
}

// ExtOp is a runtime-registered instruction.
type ExtOp struct {
	Name string
	Fn   func(*Interp) error
}

// Interp is one interpreter instance executing one program.
type Interp struct {
	code   []byte
	pc     int
	data   []int64
	ret    []int64
	mem    []int64
	host   Host
	ext    map[Op]ExtOp
	halted bool
}

// New creates an interpreter for the given code with default limits.
func New(code []byte, host Host) *Interp {
	return &Interp{
		code: append([]byte(nil), code...),
		data: make([]int64, 0, DefaultStackDepth),
		ret:  make([]int64, 0, DefaultStackDepth),
		mem:  make([]int64, DefaultMemWords),
		host: host,
		ext:  make(map[Op]ExtOp),
	}
}

// RegisterOp installs a runtime extension opcode (>= ExtBase).
func (in *Interp) RegisterOp(code Op, name string, fn func(*Interp) error) error {
	if code < ExtBase {
		return fmt.Errorf("vm: extension opcode %#x below ExtBase", byte(code))
	}
	if _, dup := in.ext[code]; dup {
		return fmt.Errorf("vm: opcode %#x already registered", byte(code))
	}
	in.ext[code] = ExtOp{Name: name, Fn: fn}
	return nil
}

// Halted reports whether the program executed HALT.
func (in *Interp) Halted() bool { return in.halted }

// PC returns the current program counter.
func (in *Interp) PC() int { return in.pc }

// Depth returns the data-stack depth.
func (in *Interp) Depth() int { return len(in.data) }

// Push pushes a value onto the data stack (for host use and extensions).
func (in *Interp) Push(v int64) error {
	if len(in.data) >= cap(in.data) {
		return ErrStackOverflow
	}
	in.data = append(in.data, v)
	return nil
}

// Pop pops a value from the data stack.
func (in *Interp) Pop() (int64, error) {
	if len(in.data) == 0 {
		return 0, ErrStackUnderflow
	}
	v := in.data[len(in.data)-1]
	in.data = in.data[:len(in.data)-1]
	return v, nil
}

// Peek returns the top of stack without popping.
func (in *Interp) Peek() (int64, error) {
	if len(in.data) == 0 {
		return 0, ErrStackUnderflow
	}
	return in.data[len(in.data)-1], nil
}

// Mem returns the memory word at addr.
func (in *Interp) Mem(addr int) (int64, error) {
	if addr < 0 || addr >= len(in.mem) {
		return 0, ErrBadAddress
	}
	return in.mem[addr], nil
}

// SetMem writes the memory word at addr.
func (in *Interp) SetMem(addr int, v int64) error {
	if addr < 0 || addr >= len(in.mem) {
		return ErrBadAddress
	}
	in.mem[addr] = v
	return nil
}

// Reset rewinds the program to the start, clearing stacks (memory is
// preserved — it is the task's persistent state across activations).
func (in *Interp) Reset() {
	in.pc = 0
	in.data = in.data[:0]
	in.ret = in.ret[:0]
	in.halted = false
}

// Run executes until HALT, gas exhaustion or an error. Each instruction
// costs one gas unit.
func (in *Interp) Run(gas int) error {
	if in.halted {
		return ErrHalted
	}
	for g := 0; g < gas; g++ {
		if in.pc >= len(in.code) {
			in.halted = true
			return nil
		}
		if err := in.step(); err != nil {
			return err
		}
		if in.halted {
			return nil
		}
	}
	return ErrGasExhausted
}

func (in *Interp) fetch8() (byte, error) {
	if in.pc >= len(in.code) {
		return 0, ErrTruncated
	}
	b := in.code[in.pc]
	in.pc++
	return b, nil
}

func (in *Interp) fetch16() (int, error) {
	hi, err := in.fetch8()
	if err != nil {
		return 0, err
	}
	lo, err := in.fetch8()
	if err != nil {
		return 0, err
	}
	return int(hi)<<8 | int(lo), nil
}

func (in *Interp) binop(fn func(a, b int64) (int64, error)) error {
	b, err := in.Pop()
	if err != nil {
		return err
	}
	a, err := in.Pop()
	if err != nil {
		return err
	}
	v, err := fn(a, b)
	if err != nil {
		return err
	}
	return in.Push(v)
}

func (in *Interp) step() error {
	op8, err := in.fetch8()
	if err != nil {
		return err
	}
	op := Op(op8)
	if op >= ExtBase {
		ext, ok := in.ext[op]
		if !ok {
			return fmt.Errorf("%w: %#x", ErrUnknownOp, op8)
		}
		return ext.Fn(in)
	}
	switch op {
	case OpNop:
		return nil
	case OpHalt:
		in.halted = true
		return nil
	case OpPush8:
		b, err := in.fetch8()
		if err != nil {
			return err
		}
		return in.Push(int64(int8(b)))
	case OpPush64:
		var v uint64
		for i := 0; i < 8; i++ {
			b, err := in.fetch8()
			if err != nil {
				return err
			}
			v = v<<8 | uint64(b)
		}
		return in.Push(int64(v))
	case OpDup:
		v, err := in.Peek()
		if err != nil {
			return err
		}
		return in.Push(v)
	case OpDrop:
		_, err := in.Pop()
		return err
	case OpSwap:
		b, err := in.Pop()
		if err != nil {
			return err
		}
		a, err := in.Pop()
		if err != nil {
			return err
		}
		if err := in.Push(b); err != nil {
			return err
		}
		return in.Push(a)
	case OpOver:
		if len(in.data) < 2 {
			return ErrStackUnderflow
		}
		return in.Push(in.data[len(in.data)-2])
	case OpRot: // ( a b c -- b c a )
		if len(in.data) < 3 {
			return ErrStackUnderflow
		}
		n := len(in.data)
		a := in.data[n-3]
		copy(in.data[n-3:], in.data[n-2:])
		in.data[n-1] = a
		return nil
	case OpAdd:
		return in.binop(func(a, b int64) (int64, error) { return a + b, nil })
	case OpSub:
		return in.binop(func(a, b int64) (int64, error) { return a - b, nil })
	case OpMul:
		return in.binop(func(a, b int64) (int64, error) { return a * b, nil })
	case OpDiv:
		return in.binop(func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, ErrDivByZero
			}
			return a / b, nil
		})
	case OpMod:
		return in.binop(func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, ErrDivByZero
			}
			return a % b, nil
		})
	case OpNeg:
		v, err := in.Pop()
		if err != nil {
			return err
		}
		return in.Push(-v)
	case OpAbs:
		v, err := in.Pop()
		if err != nil {
			return err
		}
		if v < 0 {
			v = -v
		}
		return in.Push(v)
	case OpMin:
		return in.binop(func(a, b int64) (int64, error) {
			if a < b {
				return a, nil
			}
			return b, nil
		})
	case OpMax:
		return in.binop(func(a, b int64) (int64, error) {
			if a > b {
				return a, nil
			}
			return b, nil
		})
	case OpEq:
		return in.binop(func(a, b int64) (int64, error) { return b2i(a == b), nil })
	case OpLt:
		return in.binop(func(a, b int64) (int64, error) { return b2i(a < b), nil })
	case OpGt:
		return in.binop(func(a, b int64) (int64, error) { return b2i(a > b), nil })
	case OpAnd:
		return in.binop(func(a, b int64) (int64, error) { return b2i(a != 0 && b != 0), nil })
	case OpOr:
		return in.binop(func(a, b int64) (int64, error) { return b2i(a != 0 || b != 0), nil })
	case OpNot:
		v, err := in.Pop()
		if err != nil {
			return err
		}
		return in.Push(b2i(v == 0))
	case OpLoad:
		addr, err := in.Pop()
		if err != nil {
			return err
		}
		v, err := in.Mem(int(addr))
		if err != nil {
			return err
		}
		return in.Push(v)
	case OpStore:
		addr, err := in.Pop()
		if err != nil {
			return err
		}
		v, err := in.Pop()
		if err != nil {
			return err
		}
		return in.SetMem(int(addr), v)
	case OpJmp:
		tgt, err := in.fetch16()
		if err != nil {
			return err
		}
		return in.jump(tgt)
	case OpJz:
		tgt, err := in.fetch16()
		if err != nil {
			return err
		}
		v, err := in.Pop()
		if err != nil {
			return err
		}
		if v == 0 {
			return in.jump(tgt)
		}
		return nil
	case OpCall:
		tgt, err := in.fetch16()
		if err != nil {
			return err
		}
		if len(in.ret) >= cap(in.ret) {
			return ErrStackOverflow
		}
		in.ret = append(in.ret, int64(in.pc))
		return in.jump(tgt)
	case OpRet:
		if len(in.ret) == 0 {
			return ErrStackUnderflow
		}
		tgt := in.ret[len(in.ret)-1]
		in.ret = in.ret[:len(in.ret)-1]
		return in.jump(int(tgt))
	case OpIn:
		port, err := in.fetch8()
		if err != nil {
			return err
		}
		if in.host == nil {
			return ErrNoHost
		}
		v, err := in.host.In(port)
		if err != nil {
			return err
		}
		return in.Push(v)
	case OpOut:
		port, err := in.fetch8()
		if err != nil {
			return err
		}
		v, err := in.Pop()
		if err != nil {
			return err
		}
		if in.host == nil {
			return ErrNoHost
		}
		return in.host.Out(port, v)
	case OpMulQ:
		return in.binop(func(a, b int64) (int64, error) { return a * b / QOne, nil })
	case OpDivQ:
		return in.binop(func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, ErrDivByZero
			}
			return a * QOne / b, nil
		})
	default:
		return fmt.Errorf("%w: %#x", ErrUnknownOp, op8)
	}
}

func (in *Interp) jump(tgt int) error {
	if tgt < 0 || tgt > len(in.code) {
		return ErrBadJump
	}
	in.pc = tgt
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
