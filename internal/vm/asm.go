package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// mnemonics maps assembler names to opcodes for argument-less ops.
var mnemonics = map[string]Op{
	"NOP": OpNop, "HALT": OpHalt, "DUP": OpDup, "DROP": OpDrop,
	"SWAP": OpSwap, "OVER": OpOver, "ROT": OpRot,
	"ADD": OpAdd, "SUB": OpSub, "MUL": OpMul, "DIV": OpDiv, "MOD": OpMod,
	"NEG": OpNeg, "ABS": OpAbs, "MIN": OpMin, "MAX": OpMax,
	"EQ": OpEq, "LT": OpLt, "GT": OpGt,
	"AND": OpAnd, "OR": OpOr, "NOT": OpNot,
	"LOAD": OpLoad, "STORE": OpStore, "RET": OpRet,
	"MULQ": OpMulQ, "DIVQ": OpDivQ,
}

// opNames is the reverse mapping for the disassembler.
var opNames = buildOpNames()

func buildOpNames() map[Op]string {
	m := make(map[Op]string, len(mnemonics)+6)
	for name, op := range mnemonics {
		m[op] = name
	}
	m[OpPush8] = "PUSH"
	m[OpPush64] = "PUSH"
	m[OpJmp] = "JMP"
	m[OpJz] = "JZ"
	m[OpCall] = "CALL"
	m[OpIn] = "IN"
	m[OpOut] = "OUT"
	return m
}

// Assemble translates assembler text into byte code. Syntax: one
// instruction per line; "name:" defines a label; ";" starts a comment;
// PUSH takes an integer literal, PUSHQ a decimal Q16.16 literal; JMP, JZ
// and CALL take a label; IN and OUT take a port number.
func Assemble(src string) ([]byte, error) {
	type pending struct {
		label string
		pos   int // offset of the 2-byte operand
		line  int
	}
	labels := make(map[string]int)
	var out []byte
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if name == "" {
				return nil, fmt.Errorf("vm: line %d: empty label", lineNo+1)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("vm: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(out)
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToUpper(fields[0])
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("vm: line %d: too many operands", lineNo+1)
		}
		switch mnem {
		case "PUSH", "PUSHQ":
			if arg == "" {
				return nil, fmt.Errorf("vm: line %d: %s needs a literal", lineNo+1, mnem)
			}
			var v int64
			if mnem == "PUSHQ" {
				f, err := strconv.ParseFloat(arg, 64)
				if err != nil {
					return nil, fmt.Errorf("vm: line %d: bad literal %q", lineNo+1, arg)
				}
				v = ToQ(f)
			} else {
				parsed, err := strconv.ParseInt(arg, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("vm: line %d: bad literal %q", lineNo+1, arg)
				}
				v = parsed
			}
			if v >= -128 && v <= 127 {
				out = append(out, byte(OpPush8), byte(int8(v)))
			} else {
				out = append(out, byte(OpPush64))
				for shift := 56; shift >= 0; shift -= 8 {
					out = append(out, byte(uint64(v)>>uint(shift)))
				}
			}
		case "JMP", "JZ", "CALL":
			if arg == "" {
				return nil, fmt.Errorf("vm: line %d: %s needs a label", lineNo+1, mnem)
			}
			var op Op
			switch mnem {
			case "JMP":
				op = OpJmp
			case "JZ":
				op = OpJz
			default:
				op = OpCall
			}
			out = append(out, byte(op))
			fixups = append(fixups, pending{label: arg, pos: len(out), line: lineNo + 1})
			out = append(out, 0, 0)
		case "IN", "OUT":
			if arg == "" {
				return nil, fmt.Errorf("vm: line %d: %s needs a port", lineNo+1, mnem)
			}
			port, err := strconv.ParseUint(arg, 0, 8)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: bad port %q", lineNo+1, arg)
			}
			if mnem == "IN" {
				out = append(out, byte(OpIn), byte(port))
			} else {
				out = append(out, byte(OpOut), byte(port))
			}
		default:
			op, ok := mnemonics[mnem]
			if !ok {
				return nil, fmt.Errorf("vm: line %d: unknown mnemonic %q", lineNo+1, mnem)
			}
			if arg != "" {
				return nil, fmt.Errorf("vm: line %d: %s takes no operand", lineNo+1, mnem)
			}
			out = append(out, byte(op))
		}
	}
	for _, fx := range fixups {
		tgt, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("vm: line %d: undefined label %q", fx.line, fx.label)
		}
		if tgt > 0xFFFF {
			return nil, fmt.Errorf("vm: label %q target %d exceeds 16 bits", fx.label, tgt)
		}
		out[fx.pos] = byte(tgt >> 8)
		out[fx.pos+1] = byte(tgt)
	}
	return out, nil
}

// Disassemble renders byte code as one instruction per line with byte
// offsets; jump targets are shown as absolute offsets.
func Disassemble(code []byte) string {
	var sb strings.Builder
	pc := 0
	for pc < len(code) {
		fmt.Fprintf(&sb, "%04d  ", pc)
		op := Op(code[pc])
		pc++
		name, ok := opNames[op]
		if !ok {
			if op >= ExtBase {
				fmt.Fprintf(&sb, "EXT(%#x)\n", byte(op))
			} else {
				fmt.Fprintf(&sb, "??(%#x)\n", byte(op))
			}
			continue
		}
		switch op {
		case OpPush8:
			if pc < len(code) {
				fmt.Fprintf(&sb, "%s %d\n", name, int8(code[pc]))
				pc++
			} else {
				sb.WriteString("PUSH <truncated>\n")
			}
		case OpPush64:
			if pc+8 <= len(code) {
				var v uint64
				for i := 0; i < 8; i++ {
					v = v<<8 | uint64(code[pc+i])
				}
				fmt.Fprintf(&sb, "%s %d\n", name, int64(v))
				pc += 8
			} else {
				sb.WriteString("PUSH <truncated>\n")
				pc = len(code)
			}
		case OpJmp, OpJz, OpCall:
			if pc+2 <= len(code) {
				tgt := int(code[pc])<<8 | int(code[pc+1])
				fmt.Fprintf(&sb, "%s %04d\n", name, tgt)
				pc += 2
			} else {
				fmt.Fprintf(&sb, "%s <truncated>\n", name)
				pc = len(code)
			}
		case OpIn, OpOut:
			if pc < len(code) {
				fmt.Fprintf(&sb, "%s %d\n", name, code[pc])
				pc++
			} else {
				fmt.Fprintf(&sb, "%s <truncated>\n", name)
			}
		default:
			sb.WriteString(name)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
