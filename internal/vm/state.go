package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// State is a portable snapshot of a running interpreter: the task control
// state the EVM migrates between nodes (paper §4: "migration of the task
// control block, stack, data and timing/precedence-related metadata").
type State struct {
	PC     int
	Data   []int64
	Ret    []int64
	Mem    []int64
	Halted bool
}

// Snapshot captures the interpreter's execution state.
func (in *Interp) Snapshot() State {
	return State{
		PC:     in.pc,
		Data:   append([]int64(nil), in.data...),
		Ret:    append([]int64(nil), in.ret...),
		Mem:    append([]int64(nil), in.mem...),
		Halted: in.halted,
	}
}

// Restore loads a snapshot into the interpreter. The code is unchanged;
// the caller is responsible for pairing a snapshot with the capsule it
// came from.
func (in *Interp) Restore(st State) error {
	if st.PC < 0 || st.PC > len(in.code) {
		return fmt.Errorf("vm: restore pc %d out of range", st.PC)
	}
	if len(st.Data) > DefaultStackDepth || len(st.Ret) > DefaultStackDepth {
		return ErrStackOverflow
	}
	in.pc = st.PC
	in.data = append(in.data[:0], st.Data...)
	in.ret = append(in.ret[:0], st.Ret...)
	in.mem = append([]int64(nil), st.Mem...)
	in.halted = st.Halted
	return nil
}

const stateMagic = 0x45564d53 // "EVMS"

var errBadState = errors.New("vm: malformed state encoding")

// MarshalBinary encodes the state deterministically (used to size and
// transfer migration payloads).
func (st State) MarshalBinary() ([]byte, error) {
	size := 4 + 4 + 1 + 4*3 + 8*(len(st.Data)+len(st.Ret)+len(st.Mem))
	out := make([]byte, 0, size)
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		out = append(out, scratch[:4]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:8], v)
		out = append(out, scratch[:8]...)
	}
	put32(stateMagic)
	put32(uint32(st.PC))
	if st.Halted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	for _, sl := range [][]int64{st.Data, st.Ret, st.Mem} {
		put32(uint32(len(sl)))
		for _, v := range sl {
			put64(uint64(v))
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a state produced by MarshalBinary.
func (st *State) UnmarshalBinary(b []byte) error {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, errBadState
		}
		v := binary.BigEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	magic, err := get32()
	if err != nil || magic != stateMagic {
		return errBadState
	}
	pc, err := get32()
	if err != nil {
		return err
	}
	if off >= len(b) {
		return errBadState
	}
	halted := b[off] == 1
	off++
	slices := make([][]int64, 3)
	for i := range slices {
		n, err := get32()
		if err != nil {
			return err
		}
		if n > 1<<20 || off+int(n)*8 > len(b) {
			return errBadState
		}
		sl := make([]int64, n)
		for j := range sl {
			sl[j] = int64(binary.BigEndian.Uint64(b[off:]))
			off += 8
		}
		slices[i] = sl
	}
	st.PC = int(pc)
	st.Halted = halted
	st.Data, st.Ret, st.Mem = slices[0], slices[1], slices[2]
	return nil
}
