package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Capsule is the unit of code distribution between nodes: a named program
// plus an integrity checksum. Receiving nodes run Verify (the paper's
// "software attestation", §3.1.1 op 8) before admitting the code.
type Capsule struct {
	TaskID  string
	Version uint8
	Code    []byte
}

const capsuleMagic = 0x4556 // "EV"

// Capsule errors.
var (
	ErrBadCapsule  = errors.New("vm: malformed capsule")
	ErrAttestation = errors.New("vm: capsule attestation failed")
)

// Checksum returns the capsule's attestation digest — the same FNV-64a
// value Encode appends and Decode verifies. Capsule stores expose it so
// operators can compare what is registered against what is deployed.
func (c *Capsule) Checksum() uint64 { return c.checksum() }

// checksum computes the FNV-64a attestation digest over the header+code.
func (c *Capsule) checksum() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.TaskID))
	_, _ = h.Write([]byte{c.Version})
	_, _ = h.Write(c.Code)
	return h.Sum64()
}

// Encode serializes the capsule with its attestation digest appended.
func (c *Capsule) Encode() ([]byte, error) {
	if len(c.TaskID) > 255 {
		return nil, fmt.Errorf("vm: task ID %q too long", c.TaskID)
	}
	if len(c.Code) > 1<<16 {
		return nil, fmt.Errorf("vm: code of %d bytes exceeds 64KiB", len(c.Code))
	}
	out := make([]byte, 0, 2+1+1+len(c.TaskID)+4+len(c.Code)+8)
	out = binary.BigEndian.AppendUint16(out, capsuleMagic)
	out = append(out, c.Version, byte(len(c.TaskID)))
	out = append(out, c.TaskID...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(c.Code)))
	out = append(out, c.Code...)
	out = binary.BigEndian.AppendUint64(out, c.checksum())
	return out, nil
}

// Decode parses and attests an encoded capsule. Corrupted capsules return
// ErrAttestation (or ErrBadCapsule for structural damage).
func Decode(b []byte) (Capsule, error) {
	var c Capsule
	if len(b) < 2+1+1+4+8 {
		return c, ErrBadCapsule
	}
	if binary.BigEndian.Uint16(b[0:2]) != capsuleMagic {
		return c, ErrBadCapsule
	}
	c.Version = b[2]
	idLen := int(b[3])
	off := 4
	if off+idLen+4 > len(b) {
		return c, ErrBadCapsule
	}
	c.TaskID = string(b[off : off+idLen])
	off += idLen
	codeLen := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if off+codeLen+8 > len(b) {
		return c, ErrBadCapsule
	}
	c.Code = append([]byte(nil), b[off:off+codeLen]...)
	off += codeLen
	want := binary.BigEndian.Uint64(b[off:])
	if c.checksum() != want {
		return Capsule{}, ErrAttestation
	}
	return c, nil
}
