package vm

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// testHost records OUT writes and serves IN reads from a map.
type testHost struct {
	inputs  map[uint8]int64
	outputs map[uint8][]int64
}

func newTestHost() *testHost {
	return &testHost{inputs: make(map[uint8]int64), outputs: make(map[uint8][]int64)}
}

func (h *testHost) In(port uint8) (int64, error) { return h.inputs[port], nil }

func (h *testHost) Out(port uint8, v int64) error {
	h.outputs[port] = append(h.outputs[port], v)
	return nil
}

func mustAssemble(t *testing.T, src string) []byte {
	t.Helper()
	code, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return code
}

func run(t *testing.T, src string, host Host) *Interp {
	t.Helper()
	in := New(mustAssemble(t, src), host)
	if err := in.Run(DefaultGas); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func top(t *testing.T, in *Interp) int64 {
	t.Helper()
	v, err := in.Peek()
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"PUSH 2\nPUSH 3\nADD\nHALT", 5},
		{"PUSH 10\nPUSH 3\nSUB\nHALT", 7},
		{"PUSH 4\nPUSH 5\nMUL\nHALT", 20},
		{"PUSH 17\nPUSH 5\nDIV\nHALT", 3},
		{"PUSH 17\nPUSH 5\nMOD\nHALT", 2},
		{"PUSH 5\nNEG\nHALT", -5},
		{"PUSH -9\nABS\nHALT", 9},
		{"PUSH 3\nPUSH 8\nMIN\nHALT", 3},
		{"PUSH 3\nPUSH 8\nMAX\nHALT", 8},
		{"PUSH 4\nPUSH 4\nEQ\nHALT", 1},
		{"PUSH 3\nPUSH 4\nLT\nHALT", 1},
		{"PUSH 3\nPUSH 4\nGT\nHALT", 0},
		{"PUSH 1\nPUSH 0\nAND\nHALT", 0},
		{"PUSH 1\nPUSH 0\nOR\nHALT", 1},
		{"PUSH 0\nNOT\nHALT", 1},
	}
	for _, c := range cases {
		in := run(t, c.src, nil)
		if got := top(t, in); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestStackManipulation(t *testing.T) {
	in := run(t, "PUSH 1\nPUSH 2\nSWAP\nHALT", nil)
	if top(t, in) != 1 {
		t.Fatal("SWAP failed")
	}
	in = run(t, "PUSH 1\nPUSH 2\nOVER\nHALT", nil)
	if top(t, in) != 1 {
		t.Fatal("OVER failed")
	}
	in = run(t, "PUSH 1\nPUSH 2\nPUSH 3\nROT\nHALT", nil) // ( 1 2 3 -- 2 3 1 )
	if top(t, in) != 1 {
		t.Fatal("ROT failed")
	}
	in = run(t, "PUSH 7\nDUP\nADD\nHALT", nil)
	if top(t, in) != 14 {
		t.Fatal("DUP failed")
	}
}

func TestPush64(t *testing.T) {
	in := run(t, "PUSH 100000\nPUSH 3\nMUL\nHALT", nil)
	if top(t, in) != 300000 {
		t.Fatalf("PUSH64 path = %d", top(t, in))
	}
	in = run(t, "PUSH -100000\nHALT", nil)
	if top(t, in) != -100000 {
		t.Fatal("negative 64-bit literal")
	}
}

func TestMemory(t *testing.T) {
	in := run(t, "PUSH 42\nPUSH 7\nSTORE\nPUSH 7\nLOAD\nHALT", nil)
	if top(t, in) != 42 {
		t.Fatal("STORE/LOAD round trip failed")
	}
}

func TestMemoryBounds(t *testing.T) {
	in := New(mustAssemble(t, "PUSH 1\nPUSH 9999\nSTORE\nHALT"), nil)
	if err := in.Run(DefaultGas); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestLoopSumsToTen(t *testing.T) {
	// sum = 0; for i = 5; i > 0; i-- { sum += ... }: compute 5+4+3+2+1.
	src := `
	PUSH 0      ; sum at mem[0]
	PUSH 0
	STORE
	PUSH 5      ; i at mem[1]
	PUSH 1
	STORE
loop:
	PUSH 1
	LOAD
	JZ done
	PUSH 0
	LOAD
	PUSH 1
	LOAD
	ADD
	PUSH 0
	STORE
	PUSH 1
	LOAD
	PUSH 1
	SUB
	PUSH 1
	STORE
	JMP loop
done:
	PUSH 0
	LOAD
	HALT`
	in := run(t, src, nil)
	if got := top(t, in); got != 15 {
		t.Fatalf("loop sum = %d, want 15", got)
	}
}

func TestCallRet(t *testing.T) {
	src := `
	PUSH 3
	CALL double
	PUSH 1
	ADD
	HALT
double:
	PUSH 2
	MUL
	RET`
	in := run(t, src, nil)
	if got := top(t, in); got != 7 {
		t.Fatalf("call/ret = %d, want 7", got)
	}
}

func TestHostIO(t *testing.T) {
	h := newTestHost()
	h.inputs[0] = 50
	in := run(t, "IN 0\nPUSH 2\nMUL\nOUT 1\nHALT", h)
	if in.Depth() != 0 {
		t.Fatal("stack not consumed")
	}
	if len(h.outputs[1]) != 1 || h.outputs[1][0] != 100 {
		t.Fatalf("outputs = %v", h.outputs)
	}
}

func TestIOWithoutHost(t *testing.T) {
	in := New(mustAssemble(t, "IN 0\nHALT"), nil)
	if err := in.Run(DefaultGas); !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestFixedPoint(t *testing.T) {
	in := run(t, "PUSHQ 1.5\nPUSHQ 2.5\nMULQ\nHALT", nil)
	if got := FromQ(top(t, in)); math.Abs(got-3.75) > 0.001 {
		t.Fatalf("1.5*2.5 = %f", got)
	}
	in = run(t, "PUSHQ 1.0\nPUSHQ 4.0\nDIVQ\nHALT", nil)
	if got := FromQ(top(t, in)); math.Abs(got-0.25) > 0.001 {
		t.Fatalf("1/4 = %f", got)
	}
}

func TestDivByZero(t *testing.T) {
	for _, src := range []string{"PUSH 1\nPUSH 0\nDIV\nHALT", "PUSH 1\nPUSH 0\nMOD\nHALT", "PUSHQ 1.0\nPUSH 0\nDIVQ\nHALT"} {
		in := New(mustAssemble(t, src), nil)
		if err := in.Run(DefaultGas); !errors.Is(err, ErrDivByZero) {
			t.Fatalf("%q err = %v, want ErrDivByZero", src, err)
		}
	}
}

func TestGasExhaustion(t *testing.T) {
	in := New(mustAssemble(t, "loop:\nJMP loop"), nil)
	if err := in.Run(1000); !errors.Is(err, ErrGasExhausted) {
		t.Fatalf("err = %v, want ErrGasExhausted", err)
	}
}

func TestStackUnderflow(t *testing.T) {
	in := New(mustAssemble(t, "ADD\nHALT"), nil)
	if err := in.Run(10); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want underflow", err)
	}
}

func TestStackOverflow(t *testing.T) {
	src := "start:\nPUSH 1\nJMP start"
	in := New(mustAssemble(t, src), nil)
	if err := in.Run(10000); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want overflow", err)
	}
}

func TestRuntimeExtensionOpcode(t *testing.T) {
	// The EVM's instruction set is extensible at runtime: register a
	// custom "square" op and call it from byte code.
	code := append(mustAssemble(t, "PUSH 9"), byte(ExtBase), byte(OpHalt))
	in := New(code, nil)
	err := in.RegisterOp(ExtBase, "SQUARE", func(i *Interp) error {
		v, err := i.Pop()
		if err != nil {
			return err
		}
		return i.Push(v * v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(DefaultGas); err != nil {
		t.Fatal(err)
	}
	if got := top(t, in); got != 81 {
		t.Fatalf("ext op = %d, want 81", got)
	}
	// Below ExtBase and duplicates rejected.
	if err := in.RegisterOp(OpAdd, "X", nil); err == nil {
		t.Fatal("low opcode registration accepted")
	}
	if err := in.RegisterOp(ExtBase, "DUP2", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestUnknownOpcode(t *testing.T) {
	in := New([]byte{byte(ExtBase + 5)}, nil)
	if err := in.Run(10); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want unknown op", err)
	}
}

func TestResetPreservesMemory(t *testing.T) {
	in := run(t, "PUSH 5\nPUSH 0\nSTORE\nHALT", nil)
	in.Reset()
	if in.Halted() {
		t.Fatal("still halted after reset")
	}
	v, err := in.Mem(0)
	if err != nil || v != 5 {
		t.Fatalf("mem[0] = %d after reset, want 5", v)
	}
	// Re-running the same program works.
	if err := in.Run(DefaultGas); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := "PUSH 1\nPUSH 2\nPUSH 3\nHALT"
	in := New(mustAssemble(t, src), nil)
	// Execute only two instructions, then snapshot mid-program.
	if err := in.Run(2); !errors.Is(err, ErrGasExhausted) {
		t.Fatalf("expected gas exhaustion, got %v", err)
	}
	_ = in.SetMem(3, 77)
	snap := in.Snapshot()

	// "Migrate": restore into a fresh interpreter with the same code.
	dst := New(mustAssemble(t, src), nil)
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := dst.Run(DefaultGas); err != nil {
		t.Fatal(err)
	}
	if got := top(t, dst); got != 3 {
		t.Fatalf("resumed top = %d, want 3", got)
	}
	if dst.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", dst.Depth())
	}
	v, _ := dst.Mem(3)
	if v != 77 {
		t.Fatal("memory lost in migration")
	}
}

func TestStateBinaryRoundTrip(t *testing.T) {
	st := State{PC: 12, Data: []int64{1, -2, 3}, Ret: []int64{9}, Mem: []int64{0, 5}, Halted: true}
	b, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got State
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.PC != 12 || !got.Halted || len(got.Data) != 3 || got.Data[1] != -2 ||
		len(got.Ret) != 1 || got.Mem[1] != 5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := got.UnmarshalBinary(b[:5]); err == nil {
		t.Fatal("truncated state accepted")
	}
	b[0] ^= 0xFF
	if err := got.UnmarshalBinary(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestStateMarshalProperty(t *testing.T) {
	f := func(pc uint8, data []int64, mem []int64) bool {
		st := State{PC: int(pc), Data: data, Mem: mem}
		b, err := st.MarshalBinary()
		if err != nil {
			return false
		}
		var got State
		if err := got.UnmarshalBinary(b); err != nil {
			return false
		}
		if got.PC != st.PC || len(got.Data) != len(data) || len(got.Mem) != len(mem) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCapsuleRoundTrip(t *testing.T) {
	code := mustAssemble(t, "PUSH 1\nHALT")
	c := Capsule{TaskID: "lts-level-pid", Version: 3, Code: code}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskID != c.TaskID || got.Version != 3 || len(got.Code) != len(code) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCapsuleAttestationDetectsCorruption(t *testing.T) {
	c := Capsule{TaskID: "t", Version: 1, Code: mustAssemble(t, "PUSH 5\nHALT")}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position in turn: every single-bit-level corruption
	// of the body must be caught.
	caught := 0
	for i := 2; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := Decode(bad); err != nil {
			caught++
		}
	}
	if caught != len(enc)-2 {
		t.Fatalf("caught %d corruptions of %d", caught, len(enc)-2)
	}
}

func TestCapsuleStructuralErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrBadCapsule) {
		t.Fatal("short capsule accepted")
	}
	long := Capsule{TaskID: strings.Repeat("x", 300)}
	if _, err := long.Encode(); err == nil {
		t.Fatal("oversize task ID accepted")
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"BOGUS",
		"PUSH",
		"PUSH abc",
		"JMP",          // missing label
		"JMP nowhere",  // undefined label
		"x:\nx:\nHALT", // duplicate label
		"ADD 5",        // operand on no-operand op
		"IN",           // missing port
		"IN 300",       // port out of range
		"PUSH 1 2",     // too many operands
		":",            // empty label
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembler accepted %q", src)
		}
	}
}

func TestDisassembleRoundTripish(t *testing.T) {
	src := "PUSH 5\nPUSH 1000\nloop:\nDUP\nJZ end\nPUSH 1\nSUB\nJMP loop\nend:\nIN 2\nOUT 3\nHALT"
	code := mustAssemble(t, src)
	dis := Disassemble(code)
	for _, want := range []string{"PUSH 5", "PUSH 1000", "JZ", "JMP", "IN 2", "OUT 3", "HALT"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
	; a comment line
	PUSH 4   ; trailing comment

	HALT`
	in := run(t, src, nil)
	if top(t, in) != 4 {
		t.Fatal("comments broke assembly")
	}
}

func TestHaltedRunReturnsError(t *testing.T) {
	in := run(t, "HALT", nil)
	if err := in.Run(10); !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
}

func TestProgramFallsOffEndHalts(t *testing.T) {
	in := New(mustAssemble(t, "PUSH 1"), nil)
	if err := in.Run(10); err != nil {
		t.Fatal(err)
	}
	if !in.Halted() {
		t.Fatal("program end did not halt")
	}
}
