// Package trace records time series and summary statistics from
// simulation runs and renders them as CSV — the raw material for every
// figure and table in EXPERIMENTS.md.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Point is one sample of a series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// At returns the value of the latest sample at or before t (zero-order
// hold), and false if no sample precedes t.
func (s *Series) At(t time.Duration) (float64, bool) {
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if idx == 0 {
		return 0, false
	}
	return s.Points[idx-1].V, true
}

// Window returns the samples with T in [from, to).
func (s *Series) Window(from, to time.Duration) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Recorder collects multiple named series.
type Recorder struct {
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if needed) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV renders all series on a shared time axis (union of sample
// times, zero-order hold per series).
func (r *Recorder) WriteCSV(w io.Writer) error {
	timesSet := make(map[time.Duration]bool)
	for _, s := range r.series {
		for _, p := range s.Points {
			timesSet[p.T] = true
		}
	}
	times := make([]time.Duration, 0, len(timesSet))
	for t := range timesSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	header := make([]string, 0, len(r.order)+1)
	header = append(header, "t_seconds")
	header = append(header, r.order...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(t.Seconds(), 'f', 3, 64)
		for i, name := range r.order {
			if v, ok := r.series[name].At(t); ok {
				row[i+1] = strconv.FormatFloat(v, 'f', 4, 64)
			} else {
				row[i+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a sample of values.
type Stats struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes summary statistics (returns zero Stats for empty
// input).
func Summarize(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Stats{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
		P50:  percentile(sorted, 0.50),
		P95:  percentile(sorted, 0.95),
		P99:  percentile(sorted, 0.99),
	}
}

// percentile returns the p-quantile (nearest-rank on a sorted slice).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// DurationStats summarizes durations (reported in the same units).
func DurationStats(ds []time.Duration) Stats {
	vs := make([]float64, len(ds))
	for i, d := range ds {
		vs[i] = float64(d)
	}
	return Summarize(vs)
}
