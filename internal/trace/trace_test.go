package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesAddAndAt(t *testing.T) {
	var s Series
	s.Add(time.Second, 1)
	s.Add(2*time.Second, 2)
	s.Add(3*time.Second, 3)
	if v, ok := s.At(2500 * time.Millisecond); !ok || v != 2 {
		t.Fatalf("At(2.5s) = %v,%v", v, ok)
	}
	if v, ok := s.At(3 * time.Second); !ok || v != 3 {
		t.Fatalf("At(3s) = %v,%v", v, ok)
	}
	if _, ok := s.At(500 * time.Millisecond); ok {
		t.Fatal("At before first sample should be false")
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 || w[0].V != 3 || w[2].V != 5 {
		t.Fatalf("window = %v", w)
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder()
	r.Series("level").Add(0, 50)
	r.Series("level").Add(time.Second, 49)
	r.Series("flow").Add(time.Second, 100)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "t_seconds,level,flow" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0.000,50.0000,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// flow has no sample at t=0 -> empty cell.
	if !strings.HasSuffix(lines[1], ",") {
		t.Fatalf("missing empty cell: %q", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	st := Summarize(vals)
	if st.N != 5 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-3) > 1e-9 {
		t.Fatalf("mean = %f", st.Mean)
	}
	if st.P50 != 3 {
		t.Fatalf("p50 = %f", st.P50)
	}
	if st.P99 != 5 {
		t.Fatalf("p99 = %f", st.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.N != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestDurationStats(t *testing.T) {
	ds := []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	st := DurationStats(ds)
	if st.Max != float64(3*time.Millisecond) {
		t.Fatalf("max = %f", st.Max)
	}
}

func TestRecorderNamesOrder(t *testing.T) {
	r := NewRecorder()
	r.Series("b")
	r.Series("a")
	r.Series("b") // existing
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := percentile(sorted, 0.5); p != 50 {
		t.Fatalf("p50 = %f", p)
	}
	if p := percentile(sorted, 0.95); p != 100 {
		t.Fatalf("p95 = %f", p)
	}
	if p := percentile(sorted, 0.01); p != 10 {
		t.Fatalf("p1 = %f", p)
	}
}
