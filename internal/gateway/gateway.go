// Package gateway implements the bridge node from the paper's testbed
// (Fig. 5): every sensor/controller/actuator node reaches the plant
// through a gateway that speaks RT-Link on the wireless side and ModBus
// toward the (simulated) UniSim workstation.
//
// The gateway also hosts the "operation switch" (OS-1 in Fig. 6(a)): for
// each actuator it tracks which controller node is Active and forwards
// only that node's commands to the plant.
package gateway

import (
	"fmt"
	"time"

	"evm/internal/modbus"
	"evm/internal/plant"
	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/sim"
	"evm/internal/wire"
)

// Plant register map (holding registers).
const (
	RegLTSLevel    uint16 = 0 // x100, percent
	RegSepLiq      uint16 = 1 // x10, kmol/h
	RegLTSLiq      uint16 = 2 // x10, kmol/h
	RegTowerFeed   uint16 = 3 // x10, kmol/h
	RegInletLevel  uint16 = 4 // x100, percent
	RegBottomsC3   uint16 = 5 // x10000, mole fraction
	RegValveCmd    uint16 = 6 // x100, percent (writeable actuator)
	RegLTSTemp     uint16 = 7 // x100, degrees C offset by +100 (unsigned)
	RegChillerDuty uint16 = 8 // x100, percent (writeable actuator)
	RegReboilDuty  uint16 = 9 // x100, percent (writeable actuator)
)

// tempOffsetC makes sub-zero temperatures storable in unsigned registers.
const tempOffsetC = 100

// Sensor/actuator port numbers used on the air.
const (
	PortLTSLevel    uint8 = 0
	PortSepLiq      uint8 = 1
	PortLTSLiq      uint8 = 2
	PortTowerFeed   uint8 = 3
	PortInletLevel  uint8 = 4
	PortLTSTemp     uint8 = 5
	PortBottomsC3   uint8 = 6
	PortLTSValve    uint8 = 10
	PortChillerDuty uint8 = 11
	PortReboilDuty  uint8 = 12
)

// PlantServer fronts the plant with a ModBus register bank, mirroring the
// UniSim workstation side of the testbed.
type PlantServer struct {
	Plant *plant.Plant
	Srv   *modbus.Server
}

// NewPlantServer builds the register bank and wires actuator writes back
// into the plant.
func NewPlantServer(p *plant.Plant, unit byte) *PlantServer {
	regs := modbus.NewRegisterMap(16)
	ps := &PlantServer{
		Plant: p,
		Srv:   &modbus.Server{UnitID: unit, Regs: regs},
	}
	regs.OnWrite = func(addr, value uint16) {
		switch addr {
		case RegValveCmd:
			p.SetLTSValve(modbus.FromReg(value, 100))
		case RegChillerDuty:
			p.SetChillerDuty(modbus.FromReg(value, 100))
		case RegReboilDuty:
			p.SetReboilDuty(modbus.FromReg(value, 100))
		}
	}
	ps.Refresh()
	return ps
}

// Refresh copies the current plant sensor values into the registers.
func (ps *PlantServer) Refresh() {
	p := ps.Plant
	f := p.Flows()
	ps.Srv.Regs.Write(RegLTSLevel, modbus.ToReg(p.LTSLevelPct(), 100))
	ps.Srv.Regs.Write(RegSepLiq, modbus.ToReg(f.SepLiq, 10))
	ps.Srv.Regs.Write(RegLTSLiq, modbus.ToReg(f.LTSLiq, 10))
	ps.Srv.Regs.Write(RegTowerFeed, modbus.ToReg(f.TowerFeed, 10))
	ps.Srv.Regs.Write(RegInletLevel, modbus.ToReg(p.InletSepLevelPct(), 100))
	ps.Srv.Regs.Write(RegBottomsC3, modbus.ToReg(p.BottomsC3(), 10000))
	ps.Srv.Regs.Write(RegLTSTemp, modbus.ToReg(p.LTSTempC()+tempOffsetC, 100))
}

// SensorMap binds an on-air port to a plant register. Offset is
// subtracted after register decoding (temperatures are stored shifted so
// they fit unsigned registers).
type SensorMap struct {
	Port   uint8
	Reg    uint16
	Scale  float64
	Offset float64
}

// ActuatorMap binds an on-air actuator port to a plant register. Offset
// is added before register encoding.
type ActuatorMap struct {
	Port   uint8
	Reg    uint16
	Scale  float64
	Offset float64
}

// Config parameterizes the gateway.
type Config struct {
	Sensors   []SensorMap
	Actuators []ActuatorMap
	// Poll is the sensor broadcast period (the control cycle).
	Poll time.Duration
	// ActiveNode maps task ID -> node currently allowed to actuate
	// (the operation switch's initial position).
	ActiveNode map[string]radio.NodeID
}

// DefaultConfig returns the port/register map for the gas plant with a
// 250 ms control cycle.
func DefaultConfig() Config {
	return Config{
		Sensors: []SensorMap{
			{Port: PortLTSLevel, Reg: RegLTSLevel, Scale: 100},
			{Port: PortSepLiq, Reg: RegSepLiq, Scale: 10},
			{Port: PortLTSLiq, Reg: RegLTSLiq, Scale: 10},
			{Port: PortTowerFeed, Reg: RegTowerFeed, Scale: 10},
			{Port: PortInletLevel, Reg: RegInletLevel, Scale: 100},
			{Port: PortLTSTemp, Reg: RegLTSTemp, Scale: 100, Offset: tempOffsetC},
			{Port: PortBottomsC3, Reg: RegBottomsC3, Scale: 10000},
		},
		Actuators: []ActuatorMap{
			{Port: PortLTSValve, Reg: RegValveCmd, Scale: 100},
			{Port: PortChillerDuty, Reg: RegChillerDuty, Scale: 100},
			{Port: PortReboilDuty, Reg: RegReboilDuty, Scale: 100},
		},
		Poll:       250 * time.Millisecond,
		ActiveNode: make(map[string]radio.NodeID),
	}
}

// Stats counts gateway activity.
type Stats struct {
	SensorBroadcasts int
	ActuationsOK     int
	ActuationsDenied int
	ModbusErrors     int
}

// Gateway is the bridge node runtime.
type Gateway struct {
	eng    *sim.Engine
	link   *rtlink.Link
	cli    *modbus.Client
	ps     *PlantServer
	cfg    Config
	ticker *sim.Ticker
	stats  Stats
	active map[string]radio.NodeID

	lastPollAt time.Duration
	// actuateSink is the facade's event-bus observer for accepted
	// actuations (ActuationEvent on evm.Cell.Events).
	actuateSink func(src radio.NodeID, taskID string, port uint8, value float64)
}

// SetActuateSink registers the facade-level actuation observer.
func (g *Gateway) SetActuateSink(fn func(src radio.NodeID, taskID string, port uint8, value float64)) {
	g.actuateSink = fn
}

// New creates a gateway on the given link, bridging to the plant server.
func New(eng *sim.Engine, link *rtlink.Link, ps *PlantServer, cfg Config) (*Gateway, error) {
	if cfg.Poll <= 0 {
		return nil, fmt.Errorf("gateway: poll period %v", cfg.Poll)
	}
	g := &Gateway{
		eng:    eng,
		link:   link,
		cli:    &modbus.Client{UnitID: ps.Srv.UnitID},
		ps:     ps,
		cfg:    cfg,
		active: make(map[string]radio.NodeID, len(cfg.ActiveNode)),
	}
	for task, node := range cfg.ActiveNode {
		g.active[task] = node
	}
	link.SetHandler(g.onMessage)
	return g, nil
}

// Stats returns a copy of the counters.
func (g *Gateway) Stats() Stats { return g.stats }

// ActiveNode returns the operation switch position for a task.
func (g *Gateway) ActiveNode(task string) (radio.NodeID, bool) {
	n, ok := g.active[task]
	return n, ok
}

// Start begins the poll/broadcast cycle.
func (g *Gateway) Start() {
	g.ticker = g.eng.Every(g.cfg.Poll, g.pollOnce)
}

// Stop halts the poll cycle.
func (g *Gateway) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

// LastPollAt returns when the latest sensor broadcast was queued.
func (g *Gateway) LastPollAt() time.Duration { return g.lastPollAt }

// pollOnce reads every mapped sensor register over ModBus and broadcasts
// the snapshot to the Virtual Component.
func (g *Gateway) pollOnce() {
	g.lastPollAt = g.eng.Now()
	g.ps.Refresh()
	readings := make([]wire.SensorReading, 0, len(g.cfg.Sensors))
	for _, sm := range g.cfg.Sensors {
		resp, err := g.ps.Srv.Handle(g.cli.ReadHoldingRequest(sm.Reg, 1))
		if err != nil {
			g.stats.ModbusErrors++
			continue
		}
		vals, err := g.cli.ParseReadResponse(resp)
		if err != nil || len(vals) != 1 {
			g.stats.ModbusErrors++
			continue
		}
		readings = append(readings, wire.SensorReading{
			Port:  sm.Port,
			Value: modbus.FromReg(vals[0], sm.Scale) - sm.Offset,
		})
	}
	payload, err := wire.SensorSnapshot{At: g.eng.Now(), Readings: readings}.Encode()
	if err != nil {
		g.stats.ModbusErrors++
		return
	}
	if err := g.link.Send(rtlink.Message{
		Dst:     radio.Broadcast,
		Kind:    wire.KindSensor,
		Payload: payload,
	}); err == nil {
		g.stats.SensorBroadcasts++
	}
}

// onMessage handles actuation commands and operation-switch updates.
func (g *Gateway) onMessage(msg rtlink.Message) {
	switch msg.Kind {
	case wire.KindActuate:
		g.onActuate(msg)
	case wire.KindRoleChange:
		rc, err := wire.DecodeRoleChange(msg.Payload)
		if err != nil {
			return
		}
		if rc.Role == wire.RoleActive {
			g.active[rc.TaskID] = radio.NodeID(rc.Node)
		}
	}
}

func (g *Gateway) onActuate(msg rtlink.Message) {
	act, err := wire.DecodeActuate(msg.Payload)
	if err != nil {
		return
	}
	// Operation switch: only the Active controller reaches the plant.
	if allowed, ok := g.active[act.TaskID]; ok && allowed != msg.Src {
		g.stats.ActuationsDenied++
		return
	}
	for _, am := range g.cfg.Actuators {
		if am.Port != act.Port {
			continue
		}
		req := g.cli.WriteSingleRequest(am.Reg, modbus.ToReg(act.Value+am.Offset, am.Scale))
		resp, err := g.ps.Srv.Handle(req)
		if err != nil || g.cli.CheckWriteResponse(resp) != nil {
			g.stats.ModbusErrors++
			return
		}
		g.stats.ActuationsOK++
		if g.actuateSink != nil {
			g.actuateSink(msg.Src, act.TaskID, act.Port, act.Value)
		}
		return
	}
	g.stats.ActuationsDenied++
}
