package gateway

import (
	"testing"
	"time"

	"evm/internal/plant"
	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/sim"
	"evm/internal/wire"
)

type rig struct {
	eng  *sim.Engine
	net  *rtlink.Network
	gw   *Gateway
	p    *plant.Plant
	ctrl *rtlink.Link
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	rcfg := radio.DefaultConfig()
	rcfg.RefPER = 0
	rcfg.Burst = radio.GilbertElliott{}
	med := radio.NewMedium(eng, sim.NewRNG(3), rcfg)
	for i, id := range []radio.NodeID{1, 2} {
		if _, err := med.Attach(id, radio.Position{X: float64(i * 3)}, nil, radio.DefaultEnergyModel()); err != nil {
			t.Fatal(err)
		}
	}
	lcfg := rtlink.DefaultConfig()
	sched, err := rtlink.BuildMeshScheduleK([]radio.NodeID{1, 2}, lcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rtlink.NewNetwork(med, lcfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	gwLink, err := net.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := net.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plant.New(plant.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPlantServer(p, 1)
	cfg := DefaultConfig()
	cfg.ActiveNode = map[string]radio.NodeID{"lts": 2}
	gw, err := New(eng, gwLink, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Every(50*time.Millisecond, func() { p.Step(0.05) })
	gw.Start()
	net.Start()
	return &rig{eng: eng, net: net, gw: gw, p: p, ctrl: ctrl}
}

func TestSensorBroadcastsFlow(t *testing.T) {
	r := newRig(t)
	var got []wire.SensorReading
	r.ctrl.SetHandler(func(m rtlink.Message) {
		if m.Kind == wire.KindSensor {
			rd, err := wire.DecodeSensors(m.Payload)
			if err == nil {
				got = rd
			}
		}
	})
	_ = r.eng.RunUntil(2 * time.Second)
	if len(got) != 7 {
		t.Fatalf("got %d readings, want 7", len(got))
	}
	// LTS level port present and near 50%.
	found := false
	for _, rd := range got {
		if rd.Port == PortLTSLevel {
			found = true
			if rd.Value < 45 || rd.Value > 55 {
				t.Fatalf("level reading %.2f", rd.Value)
			}
		}
	}
	if !found {
		t.Fatal("LTS level reading missing")
	}
	if r.gw.Stats().SensorBroadcasts == 0 {
		t.Fatal("broadcast counter zero")
	}
}

func sendActuate(t *testing.T, r *rig, task string, value float64) {
	t.Helper()
	payload, err := wire.Actuate{Port: PortLTSValve, Value: value, TaskID: task, Seq: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Send(rtlink.Message{Dst: 1, Kind: wire.KindActuate, Payload: payload}); err != nil {
		t.Fatal(err)
	}
}

func TestActuationReachesPlant(t *testing.T) {
	r := newRig(t)
	sendActuate(t, r, "lts", 42.5)
	_ = r.eng.RunUntil(time.Second)
	if got := r.p.ValveOpenPct(); got != 42.5 {
		t.Fatalf("valve = %.2f, want 42.5", got)
	}
	if r.gw.Stats().ActuationsOK != 1 {
		t.Fatalf("ActuationsOK = %d", r.gw.Stats().ActuationsOK)
	}
}

func TestOperationSwitchDeniesNonActive(t *testing.T) {
	r := newRig(t)
	// Move the switch to node 99 via a role-change broadcast.
	payload, err := wire.RoleChange{Node: 99, TaskID: "lts", Role: wire.RoleActive, Seq: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Send(rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindRoleChange, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	_ = r.eng.RunUntil(time.Second)
	before := r.p.ValveOpenPct()
	sendActuate(t, r, "lts", 99)
	_ = r.eng.RunUntil(2 * time.Second)
	if r.p.ValveOpenPct() != before {
		t.Fatal("non-active controller moved the valve")
	}
	if r.gw.Stats().ActuationsDenied == 0 {
		t.Fatal("denial not counted")
	}
	if n, ok := r.gw.ActiveNode("lts"); !ok || n != 99 {
		t.Fatalf("switch position = %v", n)
	}
}

func TestUnknownActuatorPortDenied(t *testing.T) {
	r := newRig(t)
	payload, err := wire.Actuate{Port: 200, Value: 1, TaskID: "lts", Seq: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Send(rtlink.Message{Dst: 1, Kind: wire.KindActuate, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	_ = r.eng.RunUntil(time.Second)
	if r.gw.Stats().ActuationsDenied == 0 {
		t.Fatal("unknown port accepted")
	}
}

func TestPlantServerRegisters(t *testing.T) {
	p, err := plant.New(plant.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPlantServer(p, 1)
	v, ok := ps.Srv.Regs.Read(RegLTSLevel)
	if !ok {
		t.Fatal("level register missing")
	}
	if lvl := float64(v) / 100; lvl < 45 || lvl > 55 {
		t.Fatalf("level register = %.2f", lvl)
	}
	// Writing the valve register drives the plant.
	ps.Srv.Regs.Write(RegValveCmd, 7500)
	if p.ValveOpenPct() != 75 {
		t.Fatalf("valve = %.1f after register write", p.ValveOpenPct())
	}
}

func TestActuateSinkAndLastPoll(t *testing.T) {
	r := newRig(t)
	var hookSrc radio.NodeID
	r.gw.SetActuateSink(func(src radio.NodeID, task string, port uint8, value float64) { hookSrc = src })
	_ = r.eng.RunUntil(time.Second)
	if r.gw.LastPollAt() == 0 {
		t.Fatal("LastPollAt never set")
	}
	sendActuate(t, r, "lts", 10)
	_ = r.eng.RunUntil(2 * time.Second)
	if hookSrc != 2 {
		t.Fatalf("hook src = %v", hookSrc)
	}
}

func TestBadPollPeriodRejected(t *testing.T) {
	p, err := plant.New(plant.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Poll = 0
	if _, err := New(nil, nil, NewPlantServer(p, 1), cfg); err == nil {
		t.Fatal("zero poll accepted")
	}
}
