package rtos

import (
	"testing"
	"time"

	"evm/internal/sim"
)

func newExec(t *testing.T, ts TaskSet) (*sim.Engine, *Executor) {
	t.Helper()
	eng := sim.New()
	ex, err := NewExecutor(eng, ts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ex
}

func TestExecutorSingleTaskMeetsDeadlines(t *testing.T) {
	eng, ex := newExec(t, AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(20)}}))
	ex.Start()
	_ = eng.RunUntil(time.Second)
	st := ex.Stats("a")
	if st.Released != 10 {
		t.Fatalf("released %d, want 10", st.Released)
	}
	if st.Completed != 10 || st.DeadlineMiss != 0 {
		t.Fatalf("completed %d misses %d", st.Completed, st.DeadlineMiss)
	}
	if st.MaxResponse != ms(20) {
		t.Fatalf("max response %v, want 20ms (no contention)", st.MaxResponse)
	}
}

func TestExecutorPreemption(t *testing.T) {
	// Low-prio long task gets preempted by high-prio short task; both
	// meet deadlines and the preemption is counted.
	ts := AssignRM(TaskSet{
		{ID: "hi", Period: ms(50), WCET: ms(10), Phase: ms(5)},
		{ID: "lo", Period: ms(200), WCET: ms(40)},
	})
	eng, ex := newExec(t, ts)
	ex.Start()
	_ = eng.RunUntil(400 * time.Millisecond)
	lo := ex.Stats("lo")
	hi := ex.Stats("hi")
	if hi.DeadlineMiss != 0 || lo.DeadlineMiss != 0 {
		t.Fatalf("misses hi=%d lo=%d", hi.DeadlineMiss, lo.DeadlineMiss)
	}
	if lo.Preemptions == 0 {
		t.Fatal("no preemption recorded for lo")
	}
	// lo runs 40ms but is interrupted by hi's 10ms job at t=5:
	// response = 50ms.
	if lo.MaxResponse != ms(50) {
		t.Fatalf("lo max response = %v, want 50ms", lo.MaxResponse)
	}
	if hi.MaxResponse != ms(10) {
		t.Fatalf("hi max response = %v, want 10ms", hi.MaxResponse)
	}
}

func TestExecutorResponseMatchesRTA(t *testing.T) {
	// The simulated worst-case response must equal analysis for a
	// synchronous release (critical instant).
	ts := AssignRM(TaskSet{
		{ID: "t1", Period: ms(50), WCET: ms(10)},
		{ID: "t2", Period: ms(80), WCET: ms(20)},
		{ID: "t3", Period: ms(100), WCET: ms(30)},
	})
	eng, ex := newExec(t, ts)
	ex.Start()
	_ = eng.RunUntil(2 * time.Second)
	for _, id := range []TaskID{"t1", "t2", "t3"} {
		want, ok := ResponseTime(ts, id)
		if !ok {
			t.Fatalf("analysis says %s unschedulable", id)
		}
		got := ex.Stats(id).MaxResponse
		if got != want {
			t.Fatalf("%s: simulated max response %v != RTA %v", id, got, want)
		}
	}
}

func TestExecutorOverloadMisses(t *testing.T) {
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(70)},
		{ID: "b", Period: ms(100), WCET: ms(60)},
	})
	eng, ex := newExec(t, ts)
	ex.Start()
	_ = eng.RunUntil(time.Second)
	if ex.Stats("b").DeadlineMiss == 0 {
		t.Fatal("overloaded low-priority task missed no deadlines")
	}
}

func TestExecutorAddTaskRuntime(t *testing.T) {
	eng, ex := newExec(t, AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(20)}}))
	ex.Start()
	_ = eng.RunUntil(200 * time.Millisecond)
	if err := ex.AddTask(Task{ID: "b", Period: ms(50), WCET: ms(10)}, TestRTA); err != nil {
		t.Fatal(err)
	}
	_ = eng.RunUntil(time.Second)
	if ex.Stats("b").Completed == 0 {
		t.Fatal("runtime-admitted task never ran")
	}
	if ex.Stats("b").DeadlineMiss != 0 || ex.Stats("a").DeadlineMiss != 0 {
		t.Fatal("admission produced deadline misses")
	}
	// Infeasible addition must be rejected.
	if err := ex.AddTask(Task{ID: "c", Period: ms(100), WCET: ms(90)}, TestRTA); err == nil {
		t.Fatal("infeasible task admitted")
	}
}

func TestExecutorRemoveTask(t *testing.T) {
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(20)},
		{ID: "b", Period: ms(50), WCET: ms(10)},
	})
	eng, ex := newExec(t, ts)
	ex.Start()
	_ = eng.RunUntil(200 * time.Millisecond)
	before := ex.Stats("b").Released
	ex.RemoveTask("b")
	_ = eng.RunUntil(time.Second)
	if got := ex.Stats("b").Released; got != before {
		t.Fatalf("removed task still releasing (%d -> %d)", before, got)
	}
	if len(ex.Tasks()) != 1 {
		t.Fatalf("task set size = %d, want 1", len(ex.Tasks()))
	}
}

func TestCPUReservationThrottles(t *testing.T) {
	// One task with WCET 40ms/100ms but a CPU budget of only 20ms/100ms:
	// jobs are throttled and complete late.
	ts := AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(40)}})
	eng, ex := newExec(t, ts)
	if err := ex.Reserves().Set("a", Reservation{Kind: ResourceCPU, Budget: 0.020, Period: ms(100)}, 0); err != nil {
		t.Fatal(err)
	}
	ex.Start()
	_ = eng.RunUntil(time.Second)
	st := ex.Stats("a")
	if st.Throttled == 0 {
		t.Fatal("reservation never throttled the task")
	}
	if st.DeadlineMiss == 0 {
		t.Fatal("throttled task should miss deadlines (40ms demand vs 20ms budget)")
	}
}

func TestCPUReservationIsolation(t *testing.T) {
	// A misbehaving high-priority task with a reservation cannot starve a
	// low-priority task: enforcement caps its CPU share.
	ts := TaskSet{
		{ID: "rogue", Period: ms(100), WCET: ms(90), Priority: 1},
		{ID: "victim", Period: ms(100), WCET: ms(20), Priority: 2},
	}
	eng, ex := newExec(t, ts)
	if err := ex.Reserves().Set("rogue", Reservation{Kind: ResourceCPU, Budget: 0.030, Period: ms(100)}, 0); err != nil {
		t.Fatal(err)
	}
	ex.Start()
	_ = eng.RunUntil(time.Second)
	victim := ex.Stats("victim")
	if victim.Completed == 0 {
		t.Fatal("victim starved despite reservation enforcement")
	}
	if victim.DeadlineMiss != 0 {
		t.Fatalf("victim missed %d deadlines", victim.DeadlineMiss)
	}
}

func TestExecTimeJitter(t *testing.T) {
	ts := AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(50)}})
	eng, ex := newExec(t, ts)
	rng := sim.NewRNG(3)
	ex.SetExecTime("a", func() time.Duration {
		return ms(10 + rng.Intn(40))
	})
	ex.Start()
	_ = eng.RunUntil(time.Second)
	st := ex.Stats("a")
	if st.Completed != 10 {
		t.Fatalf("completed %d", st.Completed)
	}
	if st.MaxResponse > ms(50) {
		t.Fatalf("jittered exec exceeded WCET: %v", st.MaxResponse)
	}
	if st.MaxResponse == st.AvgResponse() {
		t.Fatal("no jitter observed")
	}
}

func TestReservationWindowReplenishes(t *testing.T) {
	rs := NewReserveState(Reservation{Kind: ResourceCPU, Budget: 10, Period: ms(100)}, 0)
	if !rs.TryConsume(0, 8) {
		t.Fatal("initial consume failed")
	}
	if rs.TryConsume(ms(50), 5) {
		t.Fatal("over-budget consume succeeded")
	}
	if rs.Overruns != 1 {
		t.Fatalf("overruns = %d", rs.Overruns)
	}
	if !rs.TryConsume(ms(100), 5) {
		t.Fatal("consume after replenish failed")
	}
	if got := rs.Remaining(ms(150)); got != 5 {
		t.Fatalf("remaining = %f, want 5", got)
	}
}

func TestReservationTable(t *testing.T) {
	rt := NewReservationTable()
	if err := rt.Set("a", Reservation{Kind: ResourceCPU, Budget: 0.02, Period: ms(100)}, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Set("a", Reservation{Kind: ResourceNetwork, Budget: 2, Period: ms(250)}, 0); err != nil {
		t.Fatal(err)
	}
	if rt.Get("a", ResourceCPU) == nil || rt.Get("a", ResourceNetwork) == nil {
		t.Fatal("reservations missing")
	}
	if rt.Get("a", ResourceEnergy) != nil {
		t.Fatal("phantom reservation")
	}
	if f := rt.TotalCPUFraction(); f < 0.19 || f > 0.21 {
		t.Fatalf("cpu fraction = %f, want 0.2", f)
	}
	rt.Remove("a")
	if rt.Get("a", ResourceCPU) != nil {
		t.Fatal("remove failed")
	}
	if err := rt.Set("b", Reservation{Kind: ResourceCPU, Budget: -1, Period: ms(10)}, 0); err == nil {
		t.Fatal("invalid reservation accepted")
	}
}

func TestExecutorStop(t *testing.T) {
	eng, ex := newExec(t, AssignRM(TaskSet{{ID: "a", Period: ms(10), WCET: ms(1)}}))
	ex.Start()
	_ = eng.RunUntil(50 * time.Millisecond)
	ex.Stop()
	before := ex.Stats("a").Released
	_ = eng.RunUntil(100 * time.Millisecond)
	if ex.Stats("a").Released != before {
		t.Fatal("stopped executor kept releasing")
	}
}
