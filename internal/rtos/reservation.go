package rtos

import (
	"fmt"
	"time"

	"evm/internal/sim"
)

// ResourceKind names a reservable resource, mirroring nano-RK's CPU,
// network and virtual-energy reserves.
type ResourceKind int

// Reservable resources.
const (
	ResourceCPU ResourceKind = iota + 1
	ResourceNetwork
	ResourceEnergy
)

// String implements fmt.Stringer.
func (k ResourceKind) String() string {
	switch k {
	case ResourceCPU:
		return "cpu"
	case ResourceNetwork:
		return "network"
	case ResourceEnergy:
		return "energy"
	default:
		return fmt.Sprintf("resource(%d)", int(k))
	}
}

// Reservation is a budget that replenishes every period: CPU time per
// period, network slots per frame, or millijoules per period.
type Reservation struct {
	Kind   ResourceKind
	Budget float64 // units: seconds (CPU), slots (network), mJ (energy)
	Period time.Duration
}

// Validate checks reservation sanity.
func (r Reservation) Validate() error {
	if r.Kind < ResourceCPU || r.Kind > ResourceEnergy {
		return fmt.Errorf("rtos: reservation kind %d", r.Kind)
	}
	if r.Budget <= 0 || r.Period <= 0 {
		return fmt.Errorf("rtos: reservation %v budget %f period %v", r.Kind, r.Budget, r.Period)
	}
	return nil
}

// ReserveState tracks runtime consumption against a reservation.
type ReserveState struct {
	Res       Reservation
	consumed  float64
	windowEnd time.Duration
	// Overruns counts attempts to consume past the budget.
	Overruns int
}

// NewReserveState creates state starting its first window at now.
func NewReserveState(res Reservation, now time.Duration) *ReserveState {
	return &ReserveState{Res: res, windowEnd: now + res.Period}
}

// advance rolls the replenishment window forward to cover now.
func (s *ReserveState) advance(now time.Duration) {
	for now >= s.windowEnd {
		s.windowEnd += s.Res.Period
		s.consumed = 0
	}
}

// TryConsume consumes amount at virtual time now if budget remains,
// returning false (and counting an overrun) on enforcement.
func (s *ReserveState) TryConsume(now time.Duration, amount float64) bool {
	s.advance(now)
	if s.consumed+amount > s.Res.Budget {
		s.Overruns++
		return false
	}
	s.consumed += amount
	return true
}

// Remaining returns the budget left in the current window.
func (s *ReserveState) Remaining(now time.Duration) float64 {
	s.advance(now)
	return s.Res.Budget - s.consumed
}

// NextReplenish returns when the current window ends.
func (s *ReserveState) NextReplenish(now time.Duration) time.Duration {
	s.advance(now)
	return s.windowEnd
}

// ReservationTable holds all reservations on one node.
type ReservationTable struct {
	states map[TaskID]map[ResourceKind]*ReserveState
}

// NewReservationTable returns an empty table.
func NewReservationTable() *ReservationTable {
	return &ReservationTable{states: make(map[TaskID]map[ResourceKind]*ReserveState)}
}

// Set installs (or replaces) a reservation for a task.
func (rt *ReservationTable) Set(id TaskID, res Reservation, now time.Duration) error {
	if err := res.Validate(); err != nil {
		return err
	}
	m, ok := rt.states[id]
	if !ok {
		m = make(map[ResourceKind]*ReserveState)
		rt.states[id] = m
	}
	m[res.Kind] = NewReserveState(res, now)
	return nil
}

// Get returns the reserve state for a task/resource, or nil.
func (rt *ReservationTable) Get(id TaskID, kind ResourceKind) *ReserveState {
	if m, ok := rt.states[id]; ok {
		return m[kind]
	}
	return nil
}

// Remove drops all reservations for a task (e.g. after migration away).
func (rt *ReservationTable) Remove(id TaskID) { delete(rt.states, id) }

// Tasks returns the IDs with at least one reservation, sorted, so
// callers iterating the result stay deterministic.
func (rt *ReservationTable) Tasks() []TaskID {
	return sim.SortedKeys(rt.states)
}

// TotalCPUFraction returns the sum of CPU budget/period fractions — the
// CPU bandwidth promised to reservations. The sum runs in sorted task
// order: float addition is not associative, and admission decisions
// compare this value, so a map-order sum could flip an admission
// between same-seed runs.
func (rt *ReservationTable) TotalCPUFraction() float64 {
	var f float64
	for _, id := range sim.SortedKeys(rt.states) {
		if s, ok := rt.states[id][ResourceCPU]; ok {
			f += s.Res.Budget / s.Res.Period.Seconds()
		}
	}
	return f
}
