package rtos

import (
	"fmt"
	"sort"
	"time"

	"evm/internal/sim"
)

// JobStats aggregates per-task execution statistics.
type JobStats struct {
	Released      int
	Completed     int
	DeadlineMiss  int
	Preemptions   int
	Throttled     int // suspensions due to CPU reservation enforcement
	MaxResponse   time.Duration
	TotalResponse time.Duration
}

// AvgResponse returns the mean response time of completed jobs.
func (s JobStats) AvgResponse() time.Duration {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalResponse / time.Duration(s.Completed)
}

type job struct {
	task      Task
	release   time.Duration
	remaining time.Duration
	started   bool
}

// Executor simulates fully-preemptive fixed-priority scheduling of a task
// set on one node's CPU, with optional nano-RK-style CPU reservation
// enforcement. It runs entirely on virtual time.
type Executor struct {
	eng        *sim.Engine
	tasks      TaskSet
	ready      []*job
	running    *job
	runEv      *sim.Event
	chunkStart time.Duration
	stats      map[TaskID]*JobStats
	tickers    map[TaskID]*sim.Ticker
	reserves   *ReservationTable
	// OnComplete, when set, fires after every job completion with the
	// job's release and completion times.
	OnComplete func(t Task, release, finish time.Duration)
	// execTime optionally overrides WCET with an actual execution time
	// generator per task (WCET jitter).
	execTime map[TaskID]func() time.Duration
	stopped  bool
}

// NewExecutor creates an executor for the task set. The set must be valid;
// priorities must already be assigned (see AssignRM / AssignDM).
func NewExecutor(eng *sim.Engine, ts TaskSet) (*Executor, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	ex := &Executor{
		eng:      eng,
		tasks:    ts.ByPriority(),
		stats:    make(map[TaskID]*JobStats, len(ts)),
		tickers:  make(map[TaskID]*sim.Ticker, len(ts)),
		reserves: NewReservationTable(),
		execTime: make(map[TaskID]func() time.Duration),
	}
	for _, t := range ts {
		ex.stats[t.ID] = &JobStats{}
	}
	return ex, nil
}

// Reserves exposes the node's reservation table.
func (ex *Executor) Reserves() *ReservationTable { return ex.reserves }

// SetExecTime installs an actual-execution-time generator for a task
// (values are clamped to WCET).
func (ex *Executor) SetExecTime(id TaskID, fn func() time.Duration) {
	ex.execTime[id] = fn
}

// Stats returns a copy of the statistics for a task.
func (ex *Executor) Stats(id TaskID) JobStats {
	if s, ok := ex.stats[id]; ok {
		return *s
	}
	return JobStats{}
}

// Tasks returns the current task set.
func (ex *Executor) Tasks() TaskSet { return append(TaskSet(nil), ex.tasks...) }

// Start begins releasing jobs at each task's phase and period.
func (ex *Executor) Start() {
	for _, t := range ex.tasks {
		ex.startTask(t)
	}
}

func (ex *Executor) startTask(t Task) {
	first := ex.eng.Now() + t.Phase
	ex.tickers[t.ID] = ex.eng.EveryAt(first, t.Period, func() { ex.release(t) })
}

// Stop cancels all future releases; in-flight jobs are abandoned.
// Tickers stop in sorted task order so engine-event cancellation — and
// therefore the engine's internal queue shape — is deterministic.
func (ex *Executor) Stop() {
	ex.stopped = true
	for _, id := range sim.SortedKeys(ex.tickers) {
		ex.tickers[id].Stop()
	}
	if ex.runEv != nil {
		ex.eng.Cancel(ex.runEv)
		ex.runEv = nil
	}
	ex.running = nil
	ex.ready = nil
}

// AddTask admits a task at runtime, subject to the schedulability test,
// and begins releasing its jobs. Returns an error if admission fails.
func (ex *Executor) AddTask(t Task, test AdmissionTest) error {
	grown, ok := Admit(ex.tasks, t, test)
	if !ok {
		return fmt.Errorf("rtos: task %s rejected by %v admission", t.ID, test)
	}
	ex.tasks = grown.ByPriority()
	if _, exists := ex.stats[t.ID]; !exists {
		ex.stats[t.ID] = &JobStats{}
	}
	admitted, _ := ex.tasks.Find(t.ID)
	ex.startTask(admitted)
	return nil
}

// RemoveTask stops releasing a task's jobs and drops it from the set
// (used when a task migrates away).
func (ex *Executor) RemoveTask(id TaskID) {
	if tk, ok := ex.tickers[id]; ok {
		tk.Stop()
		delete(ex.tickers, id)
	}
	ex.tasks = ex.tasks.Without(id)
	ex.reserves.Remove(id)
	// Drop queued jobs of the removed task.
	kept := ex.ready[:0]
	for _, j := range ex.ready {
		if j.task.ID != id {
			kept = append(kept, j)
		}
	}
	ex.ready = kept
	if ex.running != nil && ex.running.task.ID == id {
		if ex.runEv != nil {
			ex.eng.Cancel(ex.runEv)
			ex.runEv = nil
		}
		ex.running = nil
		ex.dispatch()
	}
}

func (ex *Executor) release(t Task) {
	if ex.stopped {
		return
	}
	st := ex.stats[t.ID]
	st.Released++
	exec := t.WCET
	if fn, ok := ex.execTime[t.ID]; ok {
		exec = fn()
		if exec > t.WCET {
			exec = t.WCET
		}
		if exec <= 0 {
			exec = time.Nanosecond
		}
	}
	ex.ready = append(ex.ready, &job{task: t, release: ex.eng.Now(), remaining: exec})
	ex.dispatch()
}

// higherPrio reports whether a should run before b.
func higherPrio(a, b *job) bool {
	if a.task.Priority != b.task.Priority {
		return a.task.Priority < b.task.Priority
	}
	return a.release < b.release
}

// dispatch ensures the highest-priority ready/running job is executing.
func (ex *Executor) dispatch() {
	if len(ex.ready) == 0 && ex.running == nil {
		return
	}
	// Pick the best ready job.
	var best *job
	bestIdx := -1
	for i, j := range ex.ready {
		if best == nil || higherPrio(j, best) {
			best, bestIdx = j, i
		}
	}
	if ex.running != nil {
		if best == nil || !higherPrio(best, ex.running) {
			return // current job keeps the CPU
		}
		// Preempt: bank the progress of the running job.
		ran := ex.chunkProgress()
		ex.running.remaining -= ran
		if rs := ex.reserves.Get(ex.running.task.ID, ResourceCPU); rs != nil && ran > 0 {
			rs.TryConsume(ex.eng.Now(), ran.Seconds())
		}
		ex.running.started = true
		ex.stats[ex.running.task.ID].Preemptions++
		if ex.runEv != nil {
			ex.eng.Cancel(ex.runEv)
			ex.runEv = nil
		}
		ex.ready = append(ex.ready, ex.running)
		ex.running = nil
	}
	if best == nil {
		return
	}
	ex.ready = append(ex.ready[:bestIdx], ex.ready[bestIdx+1:]...)
	ex.runJob(best)
}

// chunkProgress returns how long the running job has executed in the
// current chunk.
func (ex *Executor) chunkProgress() time.Duration {
	return ex.eng.Now() - ex.chunkStart
}

// runJob starts (or resumes) a job, honoring any CPU reservation.
func (ex *Executor) runJob(j *job) {
	chunk := j.remaining
	if rs := ex.reserves.Get(j.task.ID, ResourceCPU); rs != nil {
		now := ex.eng.Now()
		remBudget := time.Duration(rs.Remaining(now) * float64(time.Second))
		if remBudget <= 0 {
			// Budget exhausted: suspend until replenishment.
			ex.stats[j.task.ID].Throttled++
			resume := rs.NextReplenish(now)
			ex.eng.At(resume, func() {
				if ex.stopped {
					return
				}
				ex.ready = append(ex.ready, j)
				ex.dispatch()
			})
			ex.dispatch()
			return
		}
		if remBudget < chunk {
			chunk = remBudget
		}
	}
	ex.running = j
	ex.chunkStart = ex.eng.Now()
	ex.runEv = ex.eng.At(ex.chunkStart+chunk, func() { ex.chunkDone(j, chunk) })
}

func (ex *Executor) chunkDone(j *job, chunk time.Duration) {
	if ex.stopped || ex.running != j {
		return
	}
	ex.runEv = nil
	ex.running = nil
	if rs := ex.reserves.Get(j.task.ID, ResourceCPU); rs != nil {
		rs.TryConsume(ex.eng.Now(), chunk.Seconds())
	}
	j.remaining -= chunk
	if j.remaining > 0 {
		// Reservation boundary hit mid-job: requeue (runJob will suspend
		// until replenishment when the budget is empty).
		ex.ready = append(ex.ready, j)
		ex.dispatch()
		return
	}
	st := ex.stats[j.task.ID]
	st.Completed++
	resp := ex.eng.Now() - j.release
	st.TotalResponse += resp
	if resp > st.MaxResponse {
		st.MaxResponse = resp
	}
	if resp > j.task.EffectiveDeadline() {
		st.DeadlineMiss++
	}
	if ex.OnComplete != nil {
		ex.OnComplete(j.task, j.release, ex.eng.Now())
	}
	ex.dispatch()
}

// TaskIDs returns the IDs of the current task set, sorted.
func (ex *Executor) TaskIDs() []TaskID {
	ids := make([]TaskID, 0, len(ex.tasks))
	for _, t := range ex.tasks {
		ids = append(ids, t.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
