package rtos

import (
	"math"
	"time"
)

// AdmissionTest selects the schedulability test used for runtime
// admission control.
type AdmissionTest int

// Admission tests. TestUB is the Liu-Layland utilization bound (cheap,
// sufficient but not necessary); TestRTA is exact response-time analysis
// for fixed priorities with deadlines <= periods.
const (
	TestUB AdmissionTest = iota + 1
	TestRTA
)

// String implements fmt.Stringer.
func (t AdmissionTest) String() string {
	switch t {
	case TestUB:
		return "utilization-bound"
	case TestRTA:
		return "response-time-analysis"
	default:
		return "unknown"
	}
}

// UtilizationBound returns the Liu-Layland bound n(2^(1/n)-1) for n tasks.
func UtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// SchedulableUB applies the utilization-bound test. It is sufficient only
// for implicit deadlines; sets with constrained deadlines fall back to RTA.
func SchedulableUB(ts TaskSet) bool {
	if len(ts) == 0 {
		return true
	}
	for _, t := range ts {
		if t.EffectiveDeadline() != t.Period {
			return SchedulableRTA(ts)
		}
	}
	return ts.Utilization() <= UtilizationBound(len(ts))
}

// ResponseTime computes the worst-case response time of task in the set
// using the standard recurrence R = C + sum_hp ceil(R/T_j) C_j. It returns
// false if the recurrence diverges past the deadline.
func ResponseTime(ts TaskSet, id TaskID) (time.Duration, bool) {
	target, ok := ts.Find(id)
	if !ok {
		return 0, false
	}
	var hp TaskSet
	for _, t := range ts {
		if t.ID == id {
			continue
		}
		// Higher priority = lower value; ties interfere conservatively.
		if t.Priority <= target.Priority {
			hp = append(hp, t)
		}
	}
	deadline := target.EffectiveDeadline()
	r := target.WCET
	for iter := 0; iter < 1000; iter++ {
		interference := time.Duration(0)
		for _, h := range hp {
			n := int64(math.Ceil(float64(r) / float64(h.Period)))
			interference += time.Duration(n) * h.WCET
		}
		next := target.WCET + interference
		if next == r {
			return r, r <= deadline
		}
		if next > deadline {
			return next, false
		}
		r = next
	}
	return r, false
}

// SchedulableRTA applies exact response-time analysis to every task.
func SchedulableRTA(ts TaskSet) bool {
	for _, t := range ts {
		if _, ok := ResponseTime(ts, t.ID); !ok {
			return false
		}
	}
	return true
}

// Schedulable dispatches on the admission test.
func Schedulable(ts TaskSet, test AdmissionTest) bool {
	switch test {
	case TestUB:
		return SchedulableUB(ts)
	case TestRTA:
		return SchedulableRTA(ts)
	default:
		return false
	}
}

// Admit checks whether adding task to the set keeps it schedulable, and
// returns the grown set if so. Priorities are re-assigned rate-
// monotonically as nano-RK's admission does.
func Admit(ts TaskSet, task Task, test AdmissionTest) (TaskSet, bool) {
	if err := task.Validate(); err != nil {
		return ts, false
	}
	if _, dup := ts.Find(task.ID); dup {
		return ts, false
	}
	grown := AssignRM(append(append(TaskSet(nil), ts...), task))
	if err := grown.Validate(); err != nil {
		return ts, false
	}
	if !Schedulable(grown, test) {
		return ts, false
	}
	return grown, true
}

// Hyperperiod returns the LCM of all task periods (capped at 1h to avoid
// overflow on pathological sets).
func Hyperperiod(ts TaskSet) time.Duration {
	const cap = time.Hour
	h := time.Duration(1)
	for _, t := range ts {
		h = lcm(h, t.Period)
		if h > cap {
			return cap
		}
	}
	return h
}

func gcd(a, b time.Duration) time.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b time.Duration) time.Duration {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
