package rtos

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestUtilizationBoundValues(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1.0},
		{2, 0.828},
		{3, 0.780},
		{10, 0.718},
	}
	for _, c := range cases {
		got := UtilizationBound(c.n)
		if math.Abs(got-c.want) > 0.001 {
			t.Errorf("UB(%d) = %.3f, want %.3f", c.n, got, c.want)
		}
	}
	if UtilizationBound(0) != 0 {
		t.Error("UB(0) != 0")
	}
}

func TestUBBoundDecreasesTowardLn2(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%50) + 1
		ub := UtilizationBound(k)
		return ub >= math.Ln2-1e-9 && ub <= 1.0+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulableUBAccepts(t *testing.T) {
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(20)},
		{ID: "b", Period: ms(200), WCET: ms(40)},
	}) // U = 0.4 <= 0.828
	if !SchedulableUB(ts) {
		t.Fatal("feasible set rejected by UB")
	}
}

func TestSchedulableUBRejectsOverload(t *testing.T) {
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(60)},
		{ID: "b", Period: ms(200), WCET: ms(90)},
	}) // U = 1.05
	if SchedulableUB(ts) {
		t.Fatal("overloaded set accepted by UB")
	}
}

func TestRTAClassicExample(t *testing.T) {
	// Classic 3-task RM example: T=(50,80,100) C=(10,20,30).
	// R1=10, R2=30, R3=10+10+20+30? compute: all schedulable, U=0.75.
	ts := AssignRM(TaskSet{
		{ID: "t1", Period: ms(50), WCET: ms(10)},
		{ID: "t2", Period: ms(80), WCET: ms(20)},
		{ID: "t3", Period: ms(100), WCET: ms(30)},
	})
	r1, ok1 := ResponseTime(ts, "t1")
	if !ok1 || r1 != ms(10) {
		t.Fatalf("R(t1) = %v ok=%v, want 10ms", r1, ok1)
	}
	r2, ok2 := ResponseTime(ts, "t2")
	if !ok2 || r2 != ms(30) {
		t.Fatalf("R(t2) = %v ok=%v, want 30ms", r2, ok2)
	}
	r3, ok3 := ResponseTime(ts, "t3")
	if !ok3 {
		t.Fatalf("R(t3) = %v not schedulable", r3)
	}
	// R3 = 30 + ceil(R/50)*10 + ceil(R/80)*20: fixed point at 80:
	// 30+20+20=70 -> 30+20+20=70? iterate: r=30: 30+10+20=60; r=60:
	// 30+20+20=70; r=70: 30+20+20=70. Fixed point 70.
	if r3 != ms(70) {
		t.Fatalf("R(t3) = %v, want 70ms", r3)
	}
}

func TestRTAAcceptsWhatUBRejects(t *testing.T) {
	// U = 0.9 > UB(2) = 0.828, yet harmonic periods make it feasible.
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(50)},
		{ID: "b", Period: ms(200), WCET: ms(80)},
	})
	if SchedulableUB(ts) {
		t.Fatal("UB accepted U=0.9 with 2 tasks")
	}
	if !SchedulableRTA(ts) {
		t.Fatal("RTA rejected a feasible harmonic set")
	}
}

func TestRTARejectsInfeasible(t *testing.T) {
	ts := AssignRM(TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(60)},
		{ID: "b", Period: ms(150), WCET: ms(80)},
	}) // U = 1.13
	if SchedulableRTA(ts) {
		t.Fatal("RTA accepted an overloaded set")
	}
}

func TestConstrainedDeadlineFallsBackToRTA(t *testing.T) {
	// Low utilization but a deadline tighter than interference allows.
	ts := TaskSet{
		{ID: "a", Period: ms(100), WCET: ms(30), Priority: 1},
		{ID: "b", Period: ms(1000), WCET: ms(50), Deadline: ms(60), Priority: 2},
	}
	if SchedulableUB(ts) {
		t.Fatal("UB path accepted constrained-deadline set that RTA rejects")
	}
}

func TestAdmitGrowsSet(t *testing.T) {
	base := AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(20)}})
	grown, ok := Admit(base, Task{ID: "b", Period: ms(50), WCET: ms(10)}, TestRTA)
	if !ok {
		t.Fatal("feasible admission rejected")
	}
	if len(grown) != 2 {
		t.Fatalf("grown set has %d tasks", len(grown))
	}
	// RM must have put b (shorter period) at higher priority.
	b, _ := grown.Find("b")
	a, _ := grown.Find("a")
	if b.Priority >= a.Priority {
		t.Fatal("RM priorities not reassigned on admission")
	}
}

func TestAdmitRejects(t *testing.T) {
	base := AssignRM(TaskSet{{ID: "a", Period: ms(100), WCET: ms(70)}})
	if _, ok := Admit(base, Task{ID: "b", Period: ms(100), WCET: ms(50)}, TestRTA); ok {
		t.Fatal("overload admitted")
	}
	if _, ok := Admit(base, Task{ID: "a", Period: ms(100), WCET: ms(1)}, TestRTA); ok {
		t.Fatal("duplicate ID admitted")
	}
	if _, ok := Admit(base, Task{ID: "c", Period: 0, WCET: ms(1)}, TestRTA); ok {
		t.Fatal("invalid task admitted")
	}
}

func TestUBNeverAcceptsWhatRTARejects(t *testing.T) {
	// Property: UB is sufficient — any UB-accepted implicit-deadline set
	// must also pass exact analysis.
	rngSeed := int64(1)
	f := func(p1, p2, p3 uint16) bool {
		rngSeed++
		mk := func(p uint16, id TaskID) Task {
			period := ms(int(p%200) + 10)
			wcet := period / 8
			return Task{ID: id, Period: period, WCET: wcet}
		}
		ts := AssignRM(TaskSet{mk(p1, "a"), mk(p2, "b"), mk(p3, "c")})
		if !SchedulableUB(ts) {
			return true // vacuous
		}
		return SchedulableRTA(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHyperperiod(t *testing.T) {
	ts := TaskSet{
		{ID: "a", Period: ms(20), WCET: ms(1)},
		{ID: "b", Period: ms(30), WCET: ms(1)},
	}
	if h := Hyperperiod(ts); h != ms(60) {
		t.Fatalf("hyperperiod = %v, want 60ms", h)
	}
}

func TestPriorityAssignment(t *testing.T) {
	ts := TaskSet{
		{ID: "slow", Period: ms(300), WCET: ms(10)},
		{ID: "fast", Period: ms(50), WCET: ms(5)},
		{ID: "mid", Period: ms(100), WCET: ms(10), Deadline: ms(30)},
	}
	rm := AssignRM(ts)
	fast, _ := rm.Find("fast")
	if fast.Priority != 1 {
		t.Fatalf("RM: fast priority = %d, want 1", fast.Priority)
	}
	dm := AssignDM(ts)
	mid, _ := dm.Find("mid")
	if mid.Priority != 1 {
		t.Fatalf("DM: mid (D=30ms) priority = %d, want 1", mid.Priority)
	}
}

func TestTaskValidation(t *testing.T) {
	bad := []Task{
		{ID: "", Period: ms(10), WCET: ms(1)},
		{ID: "x", Period: 0, WCET: ms(1)},
		{ID: "x", Period: ms(10), WCET: 0},
		{ID: "x", Period: ms(10), WCET: ms(20)},
		{ID: "x", Period: ms(10), WCET: ms(5), Deadline: ms(2)},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid task accepted: %+v", i, b)
		}
	}
	dup := TaskSet{
		{ID: "x", Period: ms(10), WCET: ms(1)},
		{ID: "x", Period: ms(20), WCET: ms(1)},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestTaskSetHelpers(t *testing.T) {
	ts := TaskSet{
		{ID: "a", Period: ms(10), WCET: ms(2)},
		{ID: "b", Period: ms(20), WCET: ms(4)},
	}
	if u := ts.Utilization(); math.Abs(u-0.4) > 1e-9 {
		t.Fatalf("utilization = %f", u)
	}
	if _, ok := ts.Find("b"); !ok {
		t.Fatal("Find failed")
	}
	less := ts.Without("a")
	if len(less) != 1 || less[0].ID != "b" {
		t.Fatalf("Without = %+v", less)
	}
}
