package rtos

import (
	"testing"
	"time"
)

func TestDMSchedulesWhatRMCannot(t *testing.T) {
	// Classic result: with constrained deadlines, deadline-monotonic
	// priority ordering is optimal among fixed-priority assignments.
	// Task b has a long period but a tight deadline; RM gives it low
	// priority and it misses, DM gives it top priority and all fits.
	ts := TaskSet{
		{ID: "a", Period: ms(50), WCET: ms(25)},
		{ID: "b", Period: ms(1000), WCET: ms(20), Deadline: ms(30)},
	}
	rm := AssignRM(ts)
	if SchedulableRTA(rm) {
		t.Fatal("RM unexpectedly schedulable — test premise broken")
	}
	dm := AssignDM(ts)
	if !SchedulableRTA(dm) {
		t.Fatal("DM failed to schedule a DM-feasible set")
	}
}

func TestDMSimulationConfirmsAnalysis(t *testing.T) {
	ts := AssignDM(TaskSet{
		{ID: "a", Period: ms(50), WCET: ms(25)},
		{ID: "b", Period: ms(1000), WCET: ms(20), Deadline: ms(30)},
	})
	eng, ex := newExec(t, ts)
	ex.Start()
	_ = eng.RunUntil(5 * time.Second)
	for _, id := range []TaskID{"a", "b"} {
		if m := ex.Stats(id).DeadlineMiss; m != 0 {
			t.Fatalf("task %s missed %d deadlines under DM", id, m)
		}
	}
}

func TestRMOptimalForImplicitDeadlines(t *testing.T) {
	// For implicit deadlines RM and DM coincide.
	ts := TaskSet{
		{ID: "x", Period: ms(100), WCET: ms(10)},
		{ID: "y", Period: ms(40), WCET: ms(10)},
		{ID: "z", Period: ms(250), WCET: ms(30)},
	}
	rm := AssignRM(ts)
	dm := AssignDM(ts)
	for _, task := range ts {
		a, _ := rm.Find(task.ID)
		b, _ := dm.Find(task.ID)
		if a.Priority != b.Priority {
			t.Fatalf("RM and DM disagree on %s with implicit deadlines", task.ID)
		}
	}
}
