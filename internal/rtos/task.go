// Package rtos models the nano-RK resource kernel the EVM runs on: a
// fully-preemptive fixed-priority real-time task model with CPU, network
// and energy reservations, classical schedulability analysis (Liu-Layland
// utilization bound and exact response-time analysis), rate- and
// deadline-monotonic priority assignment, and a discrete-event executor
// that simulates preemptive scheduling on virtual time.
//
// The EVM (internal/core) uses this package for runtime admission control:
// a migrated or replicated task is only activated on a node if the node's
// task set remains schedulable (paper §3.1.1, operations 2-4).
package rtos

import (
	"fmt"
	"sort"
	"time"
)

// TaskID names a task within a node.
type TaskID string

// Task is a periodic real-time task in the nano-RK sense.
type Task struct {
	ID       TaskID
	Period   time.Duration
	WCET     time.Duration // worst-case execution time per job
	Deadline time.Duration // relative; 0 means implicit (= Period)
	Phase    time.Duration // release offset of the first job
	// Priority is the fixed scheduling priority; lower value = higher
	// priority (nano-RK convention). Assign with AssignRM/AssignDM or
	// set explicitly.
	Priority int
}

// EffectiveDeadline returns the relative deadline (Period when implicit).
func (t Task) EffectiveDeadline() time.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Utilization returns WCET/Period.
func (t Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return float64(t.WCET) / float64(t.Period)
}

// Validate checks task sanity.
func (t Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("rtos: task with empty ID")
	}
	if t.Period <= 0 {
		return fmt.Errorf("rtos: task %s period %v", t.ID, t.Period)
	}
	if t.WCET <= 0 {
		return fmt.Errorf("rtos: task %s wcet %v", t.ID, t.WCET)
	}
	if t.WCET > t.Period {
		return fmt.Errorf("rtos: task %s wcet %v exceeds period %v", t.ID, t.WCET, t.Period)
	}
	if t.Deadline < 0 || (t.Deadline > 0 && t.Deadline < t.WCET) {
		return fmt.Errorf("rtos: task %s deadline %v infeasible", t.ID, t.Deadline)
	}
	return nil
}

// TaskSet is a collection of tasks on one node.
type TaskSet []Task

// Validate checks every task and ID uniqueness.
func (ts TaskSet) Validate() error {
	seen := make(map[TaskID]bool, len(ts))
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("rtos: duplicate task ID %s", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Utilization returns the total CPU utilization of the set.
func (ts TaskSet) Utilization() float64 {
	var u float64
	for _, t := range ts {
		u += t.Utilization()
	}
	return u
}

// ByPriority returns a copy sorted by ascending priority value (highest
// priority first), ties broken by shorter period then ID.
func (ts TaskSet) ByPriority() TaskSet {
	out := append(TaskSet(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		if out[i].Period != out[j].Period {
			return out[i].Period < out[j].Period
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Find returns the task with the given ID.
func (ts TaskSet) Find(id TaskID) (Task, bool) {
	for _, t := range ts {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

// Without returns a copy of the set with the given task removed.
func (ts TaskSet) Without(id TaskID) TaskSet {
	out := make(TaskSet, 0, len(ts))
	for _, t := range ts {
		if t.ID != id {
			out = append(out, t)
		}
	}
	return out
}

// AssignRM assigns rate-monotonic priorities (shorter period = higher
// priority). Returns a new set; priorities start at 1.
func AssignRM(ts TaskSet) TaskSet {
	out := append(TaskSet(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Period != out[j].Period {
			return out[i].Period < out[j].Period
		}
		return out[i].ID < out[j].ID
	})
	for i := range out {
		out[i].Priority = i + 1
	}
	return out
}

// AssignDM assigns deadline-monotonic priorities (shorter relative
// deadline = higher priority).
func AssignDM(ts TaskSet) TaskSet {
	out := append(TaskSet(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].EffectiveDeadline(), out[j].EffectiveDeadline()
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	for i := range out {
		out[i].Priority = i + 1
	}
	return out
}
