package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}

func BenchmarkEngineChurn1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			d := time.Duration(j%97) * time.Microsecond
			e.After(d, func() {})
		}
		e.Run()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestEngineFiresInTimeOrderProperty(t *testing.T) {
	// Whatever the scheduling order, events fire in non-decreasing time.
	f := func(delays []uint16) bool {
		e := New()
		var fired []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
