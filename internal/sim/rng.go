package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// used everywhere instead of math/rand so that simulations are reproducible
// from a single seed and independent of Go version.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Fork returns a new independent generator derived from this one's stream.
// Use it to give each subsystem its own stream so that adding draws in one
// subsystem does not perturb another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Shuffle permutes the first n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
