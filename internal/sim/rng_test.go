package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn with n<=0 should return 0")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %f, want ~1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %f", p)
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(42)
	fork := a.Fork()
	// Draw from fork; the parent's subsequent stream must be unaffected
	// by HOW MANY draws the fork makes.
	b := NewRNG(42)
	_ = b.Fork()
	for i := 0; i < 100; i++ {
		fork.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork draws perturbed parent stream")
		}
	}
}

func TestShufflePermutation(t *testing.T) {
	r := NewRNG(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
