// Package sim provides a deterministic discrete-event simulation engine.
//
// All higher layers (radio medium, RT-Link TDMA, the nano-RK task model,
// the EVM runtime and the gas-plant dynamics) run on the virtual clock
// provided by Engine. Nothing in the repository sleeps on the wall clock;
// every experiment is reproducible bit-for-bit from a PRNG seed.
package sim

import (
	"container/heap"
	"errors"
	"time"

	"evm/internal/span"
)

// ErrHorizon is returned by RunUntil when the event queue drains before the
// requested horizon is reached.
var ErrHorizon = errors.New("sim: event queue drained before horizon")

// Event is a scheduled callback on the virtual timeline. Events are created
// through Engine.At / Engine.After and may be cancelled until they fire.
type Event struct {
	at       time.Duration
	prio     int
	seq      uint64
	fn       func()
	index    int // heap index, -1 once removed
	canceled bool
}

// At reports the virtual time at which the event is (or was) scheduled.
func (ev *Event) At() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler over virtual time.
// The zero value is not usable; construct with New.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
	// tracer, when non-nil, records causal spans for this engine's run.
	// Every subsystem holding an engine reference reaches it through
	// Tracer(), so enabling tracing never changes constructor signatures.
	tracer *span.Tracer
}

// New returns an engine with the virtual clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// SetTracer attaches (or with nil detaches) a span tracer. Tracing is
// off by default; a nil tracer costs one pointer check per dispatch.
func (e *Engine) SetTracer(t *span.Tracer) { e.tracer = t }

// Tracer returns the attached span tracer, or nil when tracing is off.
func (e *Engine) Tracer() *span.Tracer { return e.tracer }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// clamps to the current time (the event fires on the next Step).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	return e.atPrio(t, 0, fn)
}

// AtPrio schedules fn at time t with an explicit tie-break priority; among
// events at the same instant, lower prio fires first.
func (e *Engine) AtPrio(t time.Duration, prio int, fn func()) *Event {
	return e.atPrio(t, prio, fn)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.atPrio(e.now+d, 0, fn)
}

func (e *Engine) atPrio(t time.Duration, prio int, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, prio: prio, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Step fires the next event, advancing the clock to it. It returns false
// when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		if t := e.tracer; t != nil && t.Dispatch() {
			// Dispatch spans are zero-width in virtual time (the clock
			// does not advance inside a callback) but give every span
			// recorded within the callback its causal parent.
			id := t.Enter("dispatch", "sim", "engine", e.now)
			ev.fn()
			t.Exit(id, e.now)
		} else {
			ev.fn()
		}
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock reaches horizon. Events
// scheduled exactly at the horizon do not fire. The clock is left at the
// horizon on success. If the queue drains early the clock is advanced to the
// horizon and ErrHorizon is returned.
func (e *Engine) RunUntil(horizon time.Duration) error {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at >= horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	e.now = horizon
	return ErrHorizon
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	eng    *Engine
	period time.Duration
	fn     func()
	ev     *Event
	stop   bool
}

// Every schedules fn to fire every period, first at now+period.
// The returned Ticker must be stopped to release it.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, period: period, fn: fn}
	t.schedule()
	return t
}

// EveryAt is like Every but fires first at the absolute time first.
func (e *Engine) EveryAt(first, period time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, period: period, fn: fn}
	t.ev = e.At(first, t.tick)
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.period, t.tick)
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn()
	if !t.stop {
		t.schedule()
	}
}

// Stop cancels the ticker; pending fires are removed.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
	}
}
