package sim

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. Go randomizes map
// iteration order, so deterministic code must never let a map range
// decide anything order-sensitive — event scheduling, float
// accumulation, early returns, tie-breaks. Range over SortedKeys(m)
// instead and same-seed runs stay byte-identical. The evmvet maporder
// analyzer machine-enforces this convention.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
