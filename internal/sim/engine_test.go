package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(3*time.Millisecond, func() { got = append(got, 3) })
	e.At(1*time.Millisecond, func() { got = append(got, 1) })
	e.At(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineTieBreakPriority(t *testing.T) {
	e := New()
	var got []string
	e.AtPrio(time.Millisecond, 5, func() { got = append(got, "low") })
	e.AtPrio(time.Millisecond, 1, func() { got = append(got, "high") })
	e.Run()
	if got[0] != "high" || got[1] != "low" {
		t.Fatalf("priority tie-break failed: %v", got)
	}
}

func TestEngineAfterRelative(t *testing.T) {
	e := New()
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.After(5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 15*time.Millisecond {
		t.Fatalf("After fired at %v, want 15ms", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(time.Millisecond, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineSchedulePastClamps(t *testing.T) {
	e := New()
	var firedAt time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { firedAt = e.Now() }) // in the past
	})
	e.Run()
	if firedAt != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", firedAt)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	e := New()
	count := 0
	e.Every(time.Millisecond, func() { count++ })
	if err := e.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	// Ticks at 1..9 ms fire; the tick at exactly 10ms does not.
	if count != 9 {
		t.Fatalf("count = %d, want 9", count)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want horizon", e.Now())
	}
}

func TestRunUntilDrained(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func() {})
	err := e.RunUntil(time.Second)
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	if e.Now() != time.Second {
		t.Fatalf("Now = %v, want horizon even when drained", e.Now())
	}
}

func TestTickerStop(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEveryAt(t *testing.T) {
	e := New()
	var times []time.Duration
	tk := e.EveryAt(5*time.Millisecond, 2*time.Millisecond, func() {
		times = append(times, e.Now())
	})
	_ = e.RunUntil(10 * time.Millisecond)
	tk.Stop()
	want := []time.Duration{5 * time.Millisecond, 7 * time.Millisecond, 9 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func() {})
	e.At(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}
