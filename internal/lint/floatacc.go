package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatAcc guards the metrics/QoS numerics: float equality is
// representation-error roulette, and float accumulation over a map
// range sums in random order — float addition is not associative, so
// the total (and every metric derived from it) can differ between
// same-seed runs.
var FloatAcc = &Analyzer{
	Name: "floatacc",
	Doc: `floatacc flags == and != on floating-point operands and float
accumulation inside map ranges.

Equality on computed floats compares accumulated representation error;
comparisons against the exact literal 0 (zero-value/sentinel checks)
are allowed. Compound float accumulation (sum += v) inside a map range
is order-dependent because float addition is not associative: iterate
a sorted key slice instead. Deliberate exceptions carry
//evm:allow-floatacc <reason>.`,
	Run: runFloatAcc,
}

func runFloatAcc(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEquality(p, e)
			case *ast.RangeStmt:
				if isMap(p.TypeOf(e.X)) {
					checkFloatAccumulation(p, e)
				}
			}
			return true
		})
	}
	return nil
}

func checkFloatEquality(p *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !isFloat(p.TypeOf(e.X)) && !isFloat(p.TypeOf(e.Y)) {
		return
	}
	// x == 0 against the exact literal zero is a well-defined
	// zero-value/sentinel check, not an accumulated-value comparison.
	if isExactZero(p, e.X) || isExactZero(p, e.Y) {
		return
	}
	p.Reportf(e.Pos(), "%s on floating-point values compares accumulated representation error and can flip between platforms/orders; compare within an epsilon or restructure", e.Op)
}

func isExactZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// checkFloatAccumulation flags float compound-assignment accumulation
// in the body of a map range (nested function literals excluded: they
// do not execute during the iteration unless called, and calls inside
// the body are flagged via their own bodies when in scope).
func checkFloatAccumulation(p *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if isFloat(p.TypeOf(lhs)) {
				p.Reportf(as.Pos(), "float accumulation inside a map range: float addition is not associative, so the randomized iteration order changes the sum between same-seed runs; extract and sort the keys, then accumulate in sorted order")
				return true
			}
		}
		return true
	})
}
