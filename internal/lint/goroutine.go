package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Goroutine keeps deterministic engine/core/federation code
// single-threaded: the simulation executes as one serial virtual-time
// loop, and concurrency belongs only to the Runner worker pool and the
// evmd service layer, which parallelize across runs, never inside one.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc: `goroutine flags go statements and unbuffered-channel handoffs in
deterministic packages.

A goroutine inside engine/core/federation code races the virtual-time
loop: scheduling order leaks into event order and same-seed runs
diverge. Unbuffered channels are the synchronous-handoff primitive that
smuggles such cross-goroutine coupling in. Concurrency lives in the
Runner/evmd layers, which fan out whole runs; anything inside one run
is serial. Host-boundary exceptions carry //evm:allow-goroutine
<reason>.`,
	Run: runGoroutine,
}

func runGoroutine(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				p.Reportf(s.Pos(), "go statement in deterministic code: goroutine scheduling order would leak into the event stream; concurrency belongs to the Runner/evmd layers")
			case *ast.CallExpr:
				if unbufferedChanMake(p, s) {
					p.Reportf(s.Pos(), "unbuffered channel in deterministic code: synchronous handoffs couple event order to goroutine scheduling; deterministic code is single-threaded")
				}
			}
			return true
		})
	}
	return nil
}

// unbufferedChanMake matches make(chan T) and make(chan T, 0).
func unbufferedChanMake(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := p.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv, ok := p.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	sz, ok := constant.Int64Val(tv.Value)
	return ok && sz == 0
}
