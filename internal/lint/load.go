package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Load expands the go-list patterns (e.g. "./...") relative to dir and
// returns every matched package parsed and type-checked. Test files are
// not loaded: the determinism contracts govern shipped code, and tests
// legitimately poll wall clocks and spawn goroutines.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, p)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	// One importer for the whole sweep: the source importer caches each
	// dependency after its first type-check. Import resolution is
	// module-aware relative to the process working directory, so pin it
	// to the module root for the duration of the load.
	restore, err := pushd(dir)
	if err != nil {
		return nil, err
	}
	defer restore()
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := check(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.PkgPath = lp.ImportPath
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files directly under dir as a
// single package (the fixture loader: analysistest packages import only
// the standard library, so no go-list pass is needed).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := check(fset, imp, dir, files)
	if err != nil {
		return nil, err
	}
	pkg.PkgPath = filepath.Base(dir)
	pkg.Dir = dir
	return pkg, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, err)
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// pushd chdirs to dir and returns a restore func.
func pushd(dir string) (func(), error) {
	prev, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if err := os.Chdir(dir); err != nil {
		return nil, err
	}
	return func() { _ = os.Chdir(prev) }, nil
}
