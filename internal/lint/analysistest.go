package lint

// This file is the fixture harness: the stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest. Fixture packages live
// under testdata/<analyzer>/ and mark expected diagnostics with the
// analysistest "want" convention — a trailing comment on the offending
// line holding one or more quoted regular expressions:
//
//	for k := range m { // want `range over map m`
//
// A fixture passes when every surviving (non-suppressed) diagnostic on
// a line matches one of that line's want patterns, and every want
// pattern is matched by at least one diagnostic. Known-good fixture
// files simply carry no want comments: any diagnostic there fails the
// fixture, which is how the benign idioms and //evm:allow-* escape
// hatches are proven to pass.

import (
	"fmt"
	"regexp"
	"strings"
)

// wantExpect is one parsed expectation from a // want comment.
type wantExpect struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// wantArgRe pulls the individual quoted patterns out of a want comment;
// both backtick and double-quote forms are accepted.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// CheckFixture loads the single package under dir, runs the analyzer
// over it with //evm:allow-* suppression applied (malformed annotations
// surface as "annotation" diagnostics, exactly as in a real sweep), and
// compares the surviving diagnostics against the fixture's want
// comments. The returned strings are human-readable mismatches; an
// empty slice means the fixture passed.
func CheckFixture(dir string, a *Analyzer) ([]string, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	anns := collectAnnotations(pkg)
	diags, err := a.run(pkg)
	if err != nil {
		return nil, err
	}
	findings := append([]Finding(nil), anns.malformed...)
	for _, d := range diags {
		f := Finding{Analyzer: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message}
		if _, ok := anns.allows(a.Name, f.Pos); ok {
			continue
		}
		findings = append(findings, f)
	}
	sortFindings(findings)
	wants, err := collectWants(pkg)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, f := range findings {
		if !claimWant(wants, f) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s: %s (%s)", f.Pos, f.Message, f.Analyzer))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw))
		}
	}
	return problems, nil
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(pkg *Package) ([]*wantExpect, error) {
	var wants []*wantExpect
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(rest, -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment holds no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range args {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &wantExpect{file: pos.Filename, line: pos.Line, raw: raw, re: re})
				}
			}
		}
	}
	return wants, nil
}

// claimWant marks the first unmatched want on the finding's line whose
// pattern matches the message, reporting whether one was found.
func claimWant(wants []*wantExpect, f Finding) bool {
	for _, w := range wants {
		if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			if !w.matched {
				w.matched = true
			}
			return true
		}
	}
	return false
}
