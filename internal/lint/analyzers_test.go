package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// testFixture runs one analyzer over its testdata package and compares
// the diagnostics against the fixture's want comments: seeded-bad code
// must be flagged with the expected message, known-good code (benign
// idioms, reasoned escape hatches) must stay silent.
func testFixture(t *testing.T, name string) {
	t.Helper()
	a := AnalyzerByName(name)
	if a == nil {
		t.Fatalf("no analyzer %q in the suite", name)
	}
	problems, err := CheckFixture(filepath.Join("testdata", name), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestMapOrderFixture(t *testing.T)   { testFixture(t, "maporder") }
func TestWallClockFixture(t *testing.T)  { testFixture(t, "wallclock") }
func TestGoroutineFixture(t *testing.T)  { testFixture(t, "goroutine") }
func TestEventOrderFixture(t *testing.T) { testFixture(t, "eventorder") }
func TestFloatAccFixture(t *testing.T)   { testFixture(t, "floatacc") }

// TestAnnotationContract: a suppression with no reason, or naming an
// unknown analyzer, is itself a finding and suppresses nothing. (These
// are asserted directly rather than through want comments: a want
// comment on the annotation's own line would become its reason text.)
func TestAnnotationContract(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "annotation"))
	if err != nil {
		t.Fatal(err)
	}
	anns := collectAnnotations(pkg)
	if len(anns.byKey) != 0 {
		t.Errorf("malformed annotations suppressed %d line keys, want 0", len(anns.byKey))
	}
	if len(anns.malformed) != 2 {
		t.Fatalf("got %d malformed-annotation findings, want 2: %v", len(anns.malformed), anns.malformed)
	}
	for _, f := range anns.malformed {
		if f.Analyzer != "annotation" {
			t.Errorf("finding %v attributed to %q, want \"annotation\"", f, f.Analyzer)
		}
	}
	if !strings.Contains(anns.malformed[0].Message, "missing its reason") {
		t.Errorf("first finding %q, want the missing-reason diagnostic", anns.malformed[0].Message)
	}
	if !strings.Contains(anns.malformed[1].Message, "names no analyzer") {
		t.Errorf("second finding %q, want the unknown-analyzer diagnostic", anns.malformed[1].Message)
	}
	// The bare annotation must not have silenced the map ranges below it.
	diags, err := MapOrder.run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Errorf("maporder found %d ranges in the annotation fixture, want 2", len(diags))
	}
}

// TestSweepClean is the integration gate: the repository's own tree
// must pass the full suite, so every escape hatch carries a reason and
// no new nondeterminism slips in. This is the same sweep CI runs via
// cmd/evmvet.
func TestSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check sweep")
	}
	res, err := RunSuite(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	if res.Packages == 0 {
		t.Error("sweep loaded 0 packages")
	}
	for _, s := range res.Suppressed {
		if strings.TrimSpace(s.Reason) == "" {
			t.Errorf("%s: suppressed without a reason", s.Pos)
		}
	}
}
