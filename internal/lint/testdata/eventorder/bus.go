// Package eventorder is the seeded-bad / known-good fixture for the
// eventorder analyzer.
package eventorder

import "sync"

// Event is the fixture payload.
type Event struct{ Name string }

// Bus is a minimal synchronous event bus with the shape the analyzer
// recognizes (a named type ending in "Bus" with Publish/Subscribe).
type Bus struct {
	mu   sync.Mutex
	subs []func(Event)
}

// Subscribe registers a handler; handlers run synchronously inside
// Publish, in subscription order.
func (b *Bus) Subscribe(fn func(Event)) {
	b.subs = append(b.subs, fn)
}

// Publish delivers ev to every subscriber before returning.
func (b *Bus) Publish(ev Event) {
	for _, fn := range b.subs {
		fn(ev)
	}
}
