package eventorder

// BadPublishLocked publishes while the mutex is held, handing every
// subscriber arbitrary code under the lock.
func (b *Bus) BadPublishLocked(ev Event) {
	b.mu.Lock()
	b.Publish(ev) // want `publish while holding a mutex`
	b.mu.Unlock()
}

// BadDeferredUnlock holds the lock for the whole function body, so the
// publish still runs under it.
func (b *Bus) BadDeferredUnlock(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Publish(ev) // want `publish while holding a mutex`
}

// BadBridge republishes from inside a subscriber callback, nesting one
// event's delivery inside another's.
func BadBridge(from, to *Bus) {
	from.Subscribe(func(ev Event) {
		to.Publish(ev) // want `publish from inside a subscriber callback`
	})
}
