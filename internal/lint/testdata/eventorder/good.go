package eventorder

// GoodPublishAfter releases the lock before delivering.
func (b *Bus) GoodPublishAfter(ev Event) {
	b.mu.Lock()
	b.subs = b.subs[:len(b.subs):len(b.subs)]
	b.mu.Unlock()
	b.Publish(ev)
}

// GoodRecordThenPublish collects inside the callback and publishes
// after delivery returns — the fix the diagnostic suggests.
func GoodRecordThenPublish(from, to *Bus) {
	var pending []Event
	from.Subscribe(func(ev Event) {
		pending = append(pending, ev)
	})
	for _, ev := range pending {
		to.Publish(ev)
	}
}
