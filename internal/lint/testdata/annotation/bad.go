// Package annotation seeds malformed escape hatches: an annotation
// with no reason and one naming an analyzer that does not exist. Both
// must surface as findings instead of silently suppressing anything
// (asserted directly by TestAnnotationContract, not via want comments —
// a want on the annotation's own line would change how it parses).
package annotation

import "fmt"

// MissingReason carries a bare escape hatch: the suppression is
// rejected and the annotation itself becomes a finding.
//
//evm:allow-maporder
func MissingReason(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// UnknownAnalyzer misspells the analyzer name, so it suppresses
// nothing and is flagged.
//
//evm:allow-sloppy the reason does not help if the name is wrong
func UnknownAnalyzer(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
