// Package maporder is the seeded-bad / known-good fixture for the
// maporder analyzer.
package maporder

import "fmt"

// emit is an order-dependent sink: any non-builtin call inside a map
// range makes the iteration order observable.
func emit(s string) { fmt.Println(s) }

// BadEmit streams map entries in randomized iteration order.
func BadEmit(m map[string]int) {
	for k := range m { // want `range over map m in deterministic code`
		emit(k)
	}
}

// BadAppendNoSort extracts the keys but never sorts them, so the slice
// order is the randomized map order.
func BadAppendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m`
		out = append(out, k)
	}
	return out
}

// BadFirstWins keeps whichever entry the iterator happens to visit
// first: plain assignment is not a commutative aggregation.
func BadFirstWins(m map[string]int) string {
	first := ""
	for k := range m { // want `range over map m`
		if first == "" {
			first = k
		}
	}
	return first
}
