package maporder

import "sort"

// GoodSorted is the canonical fix: extract the keys, sort them, then
// range over the slice.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// GoodCount aggregates with a commutative integer operation, which no
// iteration order can change.
func GoodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodKeyedCopy writes each entry to an independent key: the writes
// commute, so visit order is unobservable.
func GoodKeyedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// GoodDelete clears matching entries; deletions of distinct keys
// commute.
func GoodDelete(m map[string]int, cutoff int) {
	for k, v := range m {
		if v < cutoff {
			delete(m, k)
		}
	}
}
