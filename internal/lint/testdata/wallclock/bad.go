// Package wallclock is the seeded-bad / known-good fixture for the
// wallclock analyzer.
package wallclock

import (
	"math/rand"
	"time"
)

// BadStamp reads the host clock on the simulated path.
func BadStamp() time.Time {
	return time.Now() // want `time\.Now reads the host clock`
}

// BadElapsed measures host time.
func BadElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the host clock`
}

// BadWait blocks on the host timer.
func BadWait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
}

// BadJitter draws from the global, Go-version-dependent generator.
func BadJitter() int {
	return rand.Intn(8) // want `math/rand is banned on the simulation path`
}
