package wallclock

import "time"

// GoodVirtual threads virtual time through as data instead of asking
// the host.
func GoodVirtual(now, step time.Duration) time.Duration {
	return now + step
}

// GoodBoundary is a genuine host-boundary site: the reasoned escape
// hatch suppresses the finding, which is exactly the annotated form the
// sweep accepts.
//
//evm:allow-wallclock fixture: demonstrates the reasoned escape-hatch form for genuine host-boundary sites
func GoodBoundary() time.Time { return time.Now() }
