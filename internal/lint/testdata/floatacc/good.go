package floatacc

import "sort"

const eps = 1e-9

// GoodEpsilon compares within a tolerance.
func GoodEpsilon(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// GoodZeroSentinel compares against the exact literal zero — a
// well-defined zero-value check, not an accumulated-error comparison.
func GoodZeroSentinel(v float64) bool { return v == 0 }

// GoodSortedSum accumulates in sorted key order, the fix the
// diagnostic suggests.
func GoodSortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// GoodIntSum: integer accumulation is exact and commutative.
func GoodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
