// Package floatacc is the seeded-bad / known-good fixture for the
// floatacc analyzer.
package floatacc

// BadEqual compares computed floats exactly.
func BadEqual(a, b float64) bool {
	return a/3 == b/3 // want `== on floating-point values`
}

// BadNotEqual is the negated form.
func BadNotEqual(a, b float64) bool {
	return a != b // want `!= on floating-point values`
}

// BadMapSum accumulates a float in randomized map order: addition is
// not associative, so the total depends on the visit order.
func BadMapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside a map range`
	}
	return sum
}
