package goroutine

// GoodSerial runs work inline, in slice order, on the single
// deterministic thread.
func GoodSerial(fs []func()) {
	for _, f := range fs {
		f()
	}
}

// GoodBuffered builds a bounded queue, not a synchronous handoff.
func GoodBuffered() chan int {
	return make(chan int, 8)
}

// GoodMakeOthers: non-channel makes are none of this analyzer's
// business.
func GoodMakeOthers() ([]int, map[string]int) {
	return make([]int, 0), make(map[string]int)
}
