// Package goroutine is the seeded-bad / known-good fixture for the
// goroutine analyzer.
package goroutine

// BadSpawn forks execution off the virtual-time loop.
func BadSpawn(f func()) {
	go f() // want `go statement in deterministic code`
}

// BadHandoff makes a synchronous rendezvous channel.
func BadHandoff() chan int {
	return make(chan int) // want `unbuffered channel in deterministic code`
}

// BadExplicitZero is the same handoff with the capacity spelled out.
func BadExplicitZero() chan int {
	return make(chan int, 0) // want `unbuffered channel in deterministic code`
}
