package lint

import (
	"go/ast"
)

// wallclockBanned lists the time package's wall-clock and host-timer
// entry points. Virtual time comes from the engine (sim.Engine.Now);
// any of these on the simulated path couples results to the host.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// WallClock forbids host time and the global math/rand generator in
// simulation-path and host-boundary packages. Genuine boundary code
// (HTTP timestamps, harness stopwatches) carries an
// //evm:allow-wallclock <reason> annotation instead.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: `wallclock flags host-time and math/rand use.

Simulated time must come from the engine (Cell.Now / Campus.Now /
sim.Engine.Now) and randomness from seeded sim.NewRNG streams —
time.Now/Since/Until/After/AfterFunc/Tick/NewTicker/NewTimer/Sleep and
every math/rand (and math/rand/v2) reference couple run results to the
host machine, destroying the same-seed ⇒ byte-identical-stream
contract. Host-boundary code (evmd's HTTP timestamps, cmd/ harness
stopwatches) annotates each site: //evm:allow-wallclock <reason>.`,
	Run: runWallClock,
}

func runWallClock(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(p.TypesInfo, sel)
			if !ok {
				return true
			}
			switch path {
			case "time":
				if wallclockBanned[name] {
					p.Reportf(sel.Pos(), "time.%s reads the host clock: simulation-path code must use virtual time (engine Now) so same-seed runs stay byte-identical", name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s: math/rand is banned on the simulation path (globally seeded and Go-version-dependent); draw from a seeded sim.NewRNG stream instead", path, name)
			}
			return true
		})
	}
	return nil
}
