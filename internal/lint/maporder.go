package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// MapOrder generalizes the PR-1 radio-medium bug (per-slot loss draws
// consumed in Go map order made same-seed runs diverge): in
// deterministic packages, ranging over a map is only legal when the
// iteration is provably order-insensitive or the keys are extracted
// into a slice that is sorted before use.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `maporder flags range statements over maps in deterministic packages.

Go randomizes map iteration order, so any map range whose body's effect
depends on visit order makes same-seed runs diverge. Allowed forms:
  - key/value extraction into a slice that a later statement in the same
    function sorts (sort.Strings/Ints/Slice/SliceStable, slices.Sort*);
  - commutative writes into another map, or delete;
  - exactly-commutative integer aggregation (n++, sum += v on integer
    types);
  - the above under call-free if conditions or nested ranges over
    slices (calls in a guard may consume RNG draws or otherwise depend
    on visit order, so they disqualify).
Everything else must iterate a sorted key slice instead, or carry an
//evm:allow-maporder <reason> annotation.`,
	Run: runMapOrder,
}

func runMapOrder(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn := funcBody(n)
			if fn == nil {
				return true
			}
			checkMapRanges(p, fn)
			return true
		})
	}
	return nil
}

// funcBody returns the body when n declares a function.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch d := n.(type) {
	case *ast.FuncDecl:
		return d.Body
	case *ast.FuncLit:
		return d.Body
	}
	return nil
}

// checkMapRanges flags the map ranges directly inside body (nested
// function literals are visited as their own functions).
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMap(p.TypeOf(rs.X)) {
			return true
		}
		if benignMapRange(p, rs, body) {
			return true
		}
		p.Reportf(rs.Pos(), "range over map %s in deterministic code: iteration order is randomized, so the result can differ between same-seed runs; extract the keys into a slice, sort it, and range over that instead", render(p.Fset, rs.X))
		return true
	})
}

// benignMapRange reports whether every statement in the range body is
// order-insensitive. fnBody is the enclosing function body, searched
// for the sort call that legalizes the extract-keys idiom.
func benignMapRange(p *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	var extracted []ast.Expr // slices collecting keys/values, must be sorted later
	if !benignStmts(p, rs.Body.List, &extracted, false) {
		return false
	}
	for _, slice := range extracted {
		if !sortedAfter(p, fnBody, slice, rs.End()) {
			return false
		}
	}
	return true
}

// benignStmts checks a statement list for order-insensitivity,
// recording extraction targets that need a later sort. allowBreak is
// true inside nested loops, where break exits the inner loop only; at
// the map range's own level a break makes the outcome depend on which
// entry is visited first.
func benignStmts(p *Pass, stmts []ast.Stmt, extracted *[]ast.Expr, allowBreak bool) bool {
	for _, st := range stmts {
		if !benignStmt(p, st, extracted, allowBreak) {
			return false
		}
	}
	return true
}

func benignStmt(p *Pass, st ast.Stmt, extracted *[]ast.Expr, allowBreak bool) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return benignAssign(p, s, extracted)
	case *ast.IncDecStmt:
		// n++ / n-- on integers is exactly commutative.
		return isInteger(p.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(other, k) removes by key: order-insensitive.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		// A call-free guard cannot consume RNG draws or mutate state, so
		// guarded benign statements stay order-insensitive. Guarded
		// scalar selection ("best so far") is still rejected because
		// plain scalar assignment is not in the benign set.
		if hasCall(p, s.Cond) || initHasCall(p, s.Init) {
			return false
		}
		if !benignStmts(p, s.Body.List, extracted, allowBreak) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return benignStmts(p, e.List, extracted, allowBreak)
		case *ast.IfStmt:
			return benignStmt(p, e, extracted, allowBreak)
		default:
			return false
		}
	case *ast.RangeStmt:
		// A nested range over a slice/array (deterministic order, no
		// calls in the operand) is benign when its body is.
		if isMap(p.TypeOf(s.X)) || hasCall(p, s.X) {
			return false
		}
		return benignStmts(p, s.Body.List, extracted, true)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			return true
		case token.BREAK:
			return allowBreak
		}
		return false
	}
	return false
}

func initHasCall(p *Pass, init ast.Stmt) bool {
	if init == nil {
		return false
	}
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return true
	}
	for _, rhs := range as.Rhs {
		if hasCall(p, rhs) {
			return true
		}
	}
	return false
}

func benignAssign(p *Pass, s *ast.AssignStmt, extracted *[]ast.Expr) bool {
	// keys = append(keys, k): extraction, legal iff sorted later.
	if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isAppendTo(p, call, s.Lhs[0]) {
			*extracted = append(*extracted, s.Lhs[0])
			return true
		}
		// dst[k] = v: keyed map write, commutative across distinct keys.
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && isMap(p.TypeOf(ix.X)) && !hasCall(p, s.Rhs[0]) {
			return true
		}
	}
	return isIntCompound(p, s)
}

// isIntCompound matches sum += v / sum |= v ... on integer types with a
// call-free right-hand side.
func isIntCompound(p *Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || hasCall(p, s.Rhs[0]) {
		return false
	}
	return isInteger(p.TypeOf(s.Lhs[0]))
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAppendTo matches append(dst, ...) assigned back to dst, where dst
// is an identifier or a field-selector path (r.Checkers).
func isAppendTo(p *Pass, call *ast.CallExpr, dst ast.Expr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) < 1 {
		return false
	}
	return exprPath(call.Args[0]) != "" && exprPath(call.Args[0]) == exprPath(dst)
}

// exprPath renders an identifier or selector chain ("r.Checkers") as a
// comparison key; non-path expressions render as "".
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// sortedAfter reports whether slice is passed to a sort call after pos
// in the same function body.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, slice ast.Expr, pos token.Pos) bool {
	want := exprPath(slice)
	if want == "" {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgFunc(p.TypesInfo, sel)
		if !ok {
			return true
		}
		isSort := path == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")
		isSlices := path == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc")
		if !isSort && !isSlices {
			return true
		}
		for _, arg := range call.Args {
			if exprPath(arg) == want {
				found = true
			}
		}
		return true
	})
	return found
}

// hasCall reports whether expr contains a function call that could
// have side effects or order-dependent results. Type conversions and
// the pure builtins len/cap/min/max do not count.
func hasCall(p *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	has := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion: inspect the operand, not the "call"
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "len", "cap", "min", "max", "make":
					return true
				}
			}
		}
		has = true
		return false
	})
	return has
}

// render pretty-prints an expression for diagnostics.
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
