package lint

import (
	"go/ast"
	"strings"
)

// EventOrder guards the event bus's delivery contract: publish is
// synchronous and subscriber callbacks run in subscription order, so
// publishing while holding a mutex invites lock-order deadlocks
// (subscribers are arbitrary code), and publishing from inside another
// subscriber callback interleaves event streams re-entrantly, breaking
// the deterministic publication order the byte-identical logs rely on.
var EventOrder = &Analyzer{
	Name: "eventorder",
	Doc: `eventorder flags event-bus Publish calls made while holding a mutex
or from inside a subscriber callback.

Bus delivery is synchronous: Publish runs every subscriber before it
returns. Under a held mutex that hands arbitrary subscriber code the
lock (deadlock and lock-order hazard); inside another subscriber it
nests one event's delivery inside another's, so observers see the
streams interleaved re-entrantly instead of in publication order.
Publish after the critical section, or trampoline through the engine.
Deliberate exceptions carry //evm:allow-eventorder <reason>.`,
	Run: runEventOrder,
}

// busReceiver reports whether call is a method call on the event bus
// (a named type "Bus" or "*Bus"; the suffix match also covers fixture
// and future per-subsystem buses like "CampusBus").
func busReceiver(p *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	name := recvTypeName(p.TypesInfo, call)
	return name == "Bus" || strings.HasSuffix(name, "Bus")
}

// isPublish matches Bus.Publish and the unexported Bus.publish.
func isPublish(p *Pass, call *ast.CallExpr) bool {
	return busReceiver(p, call, "Publish") || busReceiver(p, call, "publish")
}

// isMutexOp matches sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock calls
// (including through embedding) and returns the method name.
func isMutexOp(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	return sel.Sel.Name, true
}

func runEventOrder(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if body := funcBody(n); body != nil {
				checkPublishUnderLock(p, body)
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkSubscriberPublish(p, call)
			}
			return true
		})
	}
	return nil
}

// checkPublishUnderLock walks one function body in source order,
// tracking how many mutexes are held; a Publish at depth > 0 is
// flagged. defer'd Unlocks do not release (the lock is held for the
// rest of the function). Nested function literals are separate
// functions with their own (empty) lock state.
func checkPublishUnderLock(p *Pass, body *ast.BlockStmt) {
	depth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held; skip so the Unlock
			// inside is not counted as a release here.
			return false
		case *ast.CallExpr:
			if op, ok := isMutexOp(p, s); ok {
				switch op {
				case "Lock", "RLock":
					depth++
				case "Unlock", "RUnlock":
					if depth > 0 {
						depth--
					}
				}
				return true
			}
			if depth > 0 && isPublish(p, s) {
				p.Reportf(s.Pos(), "event-bus publish while holding a mutex: delivery is synchronous and runs arbitrary subscriber code under the lock (deadlock/ordering hazard); publish after the critical section")
			}
		}
		return true
	})
}

// checkSubscriberPublish flags Publish calls inside a function literal
// passed to Bus.Subscribe.
func checkSubscriberPublish(p *Pass, call *ast.CallExpr) {
	if !busReceiver(p, call, "Subscribe") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if ok && isPublish(p, inner) {
				p.Reportf(inner.Pos(), "event-bus publish from inside a subscriber callback: delivery would nest re-entrantly and interleave event streams out of publication order; record and publish after delivery, or schedule via the engine")
			}
			return true
		})
	}
}
