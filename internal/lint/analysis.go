// Package lint is the project's static-analysis suite: five analyzers
// that machine-enforce the determinism and safety conventions the
// simulation's byte-identical-per-seed contract rests on (map-iteration
// order, wall-clock isolation, single-threaded engine code, event-bus
// ordering, float accumulation order).
//
// The framework mirrors the golang.org/x/tools/go/analysis shapes
// (Analyzer, Pass, Diagnostic) so the analyzers port mechanically to a
// real multichecker if that dependency ever becomes vendorable; the
// build environment pins the module to the standard library, so the
// loader (load.go), driver (lint.go) and fixture harness
// (analysistest.go) are self-contained reimplementations of the slices
// of x/tools this suite needs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check, the stdlib-only mirror of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in its suppression
	// annotation: a `//evm:allow-<Name> <reason>` comment on the flagged
	// line (or the line above it) silences the finding. The reason is
	// mandatory — an annotation without one is itself a finding.
	Name string
	// Doc is the one-paragraph contract shown by `evmvet -doc`.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// Pass.Report/Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// run executes the analyzer over the package and returns its raw
// diagnostics (suppression annotations are applied by the caller, so
// the fixture harness and the sweep driver share one mechanism).
func (a *Analyzer) run(pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.diags, nil
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t's underlying type is float32 or float64
// (or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgFunc resolves a selector like time.Now to (package path, func
// name); ok is false when sel is not a package-level function
// reference.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// recvTypeName returns the named-type name of a method call's receiver
// (pointers unwrapped), or "" when the callee is not a method call on a
// named type. Used to recognize event-bus receivers ("Bus" or *Bus).
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
