package lint

import (
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one confirmed diagnostic after suppression annotations are
// applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Message + " (" + f.Analyzer + ")"
}

// Suppressed is one finding silenced by an //evm:allow-<analyzer>
// annotation, kept for -v reporting so the escape hatches stay visible.
type Suppressed struct {
	Finding
	Reason string
}

// suiteEntry binds an analyzer to the import paths it governs.
type suiteEntry struct {
	analyzer *Analyzer
	applies  func(pkgPath string) bool
}

// deterministic reports whether pkgPath is on the simulated path, where
// every run must be byte-identical per seed: the root evm package, the
// internal engine/core/federation tree, and the seeded fuzz generator.
func deterministic(pkgPath string) bool {
	return pkgPath == "evm" ||
		strings.HasPrefix(pkgPath, "evm/internal/") ||
		pkgPath == "evm/fuzz"
}

// hostBoundary reports whether pkgPath is host-harness code (daemons,
// CLIs) where wall-clock use is legitimate at the edges but still must
// be visible: the wallclock analyzer runs there too and real boundary
// sites carry reasoned //evm:allow-wallclock annotations.
func hostBoundary(pkgPath string) bool {
	return pkgPath == "evm/evmd" || strings.HasPrefix(pkgPath, "evm/cmd/")
}

// Suite is the project checker set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, Goroutine, EventOrder, FloatAcc}
}

func suite() []suiteEntry {
	return []suiteEntry{
		{MapOrder, deterministic},
		{WallClock, func(p string) bool { return deterministic(p) || hostBoundary(p) }},
		{Goroutine, deterministic},
		{EventOrder, deterministic},
		{FloatAcc, deterministic},
	}
}

// AnalyzerByName returns the suite analyzer with that name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result is one sweep's outcome.
type Result struct {
	Findings   []Finding
	Suppressed []Suppressed
	// Packages is how many packages were analyzed.
	Packages int
}

// RunSuite loads the packages matched by patterns (relative to dir,
// default "./...") and runs every applicable analyzer, honoring
// //evm:allow-<analyzer> annotations. The sweep fails closed: loader or
// type-check errors surface as errors, not silence.
func RunSuite(dir string, patterns ...string) (*Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		anns := collectAnnotations(pkg)
		res.Findings = append(res.Findings, anns.malformed...)
		for _, entry := range suite() {
			if !entry.applies(pkg.PkgPath) {
				continue
			}
			diags, err := entry.analyzer.run(pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				f := Finding{
					Analyzer: entry.analyzer.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				}
				if reason, ok := anns.allows(entry.analyzer.Name, f.Pos); ok {
					res.Suppressed = append(res.Suppressed, Suppressed{Finding: f, Reason: reason})
					continue
				}
				res.Findings = append(res.Findings, f)
			}
		}
	}
	sortFindings(res.Findings)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return lessPos(res.Suppressed[i].Pos, res.Suppressed[j].Pos)
	})
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos != fs[j].Pos {
			return lessPos(fs[i].Pos, fs[j].Pos)
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

func lessPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// annotationRe matches the escape-hatch comment form. The reason text
// (everything after the analyzer name) is mandatory.
var annotationRe = regexp.MustCompile(`^//evm:allow-([a-z]+)(.*)$`)

// annotation is one parsed //evm:allow-<analyzer> <reason> comment.
type annotation struct {
	analyzer string
	reason   string
	line     int
	file     string
}

// annotations indexes a package's escape hatches by file and line. An
// annotation covers its own source line and the line directly below
// it, so it works both as an end-of-line comment and as a standalone
// comment above the flagged statement.
type annotations struct {
	byKey     map[string]string // "file:line:analyzer" -> reason
	malformed []Finding
}

func (a *annotations) allows(analyzer string, pos token.Position) (string, bool) {
	reason, ok := a.byKey[annKey(pos.Filename, pos.Line, analyzer)]
	return reason, ok
}

func annKey(file string, line int, analyzer string) string {
	return file + ":" + itoa(line) + ":" + analyzer
}

func itoa(n int) string {
	// strconv-free to keep the hot path allocation-simple.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func collectAnnotations(pkg *Package) *annotations {
	anns := &annotations{byKey: make(map[string]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := annotationRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason := m[1], strings.TrimSpace(m[2])
				if AnalyzerByName(name) == nil {
					anns.malformed = append(anns.malformed, Finding{
						Analyzer: "annotation",
						Pos:      pos,
						Message:  "evm:allow-" + name + " names no analyzer in the suite",
					})
					continue
				}
				if reason == "" {
					anns.malformed = append(anns.malformed, Finding{
						Analyzer: "annotation",
						Pos:      pos,
						Message:  "evm:allow-" + name + " annotation is missing its reason: every escape hatch must say why the wall-clock/nondeterminism is safe here",
					})
					continue
				}
				anns.byKey[annKey(pos.Filename, pos.Line, name)] = reason
				anns.byKey[annKey(pos.Filename, pos.Line+1, name)] = reason
			}
		}
	}
	return anns
}
