package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"evm/internal/control"
	"evm/internal/vm"
)

// TaskLogic is the executable body of a control task. Implementations
// must support state snapshot/restore so the EVM can migrate a running
// task between nodes (or let a backup resume from replicated state).
type TaskLogic interface {
	// Step consumes one sensor sample and produces the actuator command.
	Step(input, dt float64) (float64, error)
	// Snapshot serializes the task's mutable state.
	Snapshot() ([]byte, error)
	// Restore loads state produced by Snapshot.
	Restore([]byte) error
}

// --- PID logic ---------------------------------------------------------------

// PIDLogic is the paper's LTS controller: second-order filtering followed
// by a PID regulator (§4.2).
type PIDLogic struct {
	ctl      *control.FilteredPID
	Setpoint float64
}

var _ TaskLogic = (*PIDLogic)(nil)

// PIDParams configures PIDLogic.
type PIDParams struct {
	Kp, Ki, Kd       float64
	OutMin, OutMax   float64
	Setpoint         float64
	CutoffHz, RateHz float64
	// Reverse selects reverse control action (output grows when the
	// measurement exceeds the setpoint — the LTS level valve).
	Reverse bool
}

// NewPIDLogic builds the composite controller.
func NewPIDLogic(p PIDParams) (*PIDLogic, error) {
	ctl, err := control.NewFilteredPID(p.Kp, p.Ki, p.Kd, p.OutMin, p.OutMax, p.CutoffHz, p.RateHz)
	if err != nil {
		return nil, err
	}
	ctl.PID.Reverse = p.Reverse
	return &PIDLogic{ctl: ctl, Setpoint: p.Setpoint}, nil
}

// Step implements TaskLogic.
func (l *PIDLogic) Step(input, dt float64) (float64, error) {
	return l.ctl.Update(l.Setpoint, input, dt), nil
}

const pidStateLen = 8 * 8

// Snapshot implements TaskLogic.
func (l *PIDLogic) Snapshot() ([]byte, error) {
	out := make([]byte, 0, pidStateLen)
	integ, prevErr, primed := l.ctl.PID.State()
	fs := l.ctl.Filter.State()
	for _, v := range []float64{l.Setpoint, integ, prevErr, b2f(primed), fs[0], fs[1], fs[2], fs[3]} {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// Restore implements TaskLogic.
func (l *PIDLogic) Restore(b []byte) error {
	if len(b) != pidStateLen {
		return fmt.Errorf("core: pid state of %d bytes, want %d", len(b), pidStateLen)
	}
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	l.Setpoint = vals[0]
	l.ctl.PID.SetState(vals[1], vals[2], vals[3] != 0)
	l.ctl.Filter.SetState([4]float64{vals[4], vals[5], vals[6], vals[7]})
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- VM logic ----------------------------------------------------------------

// VM port conventions for control capsules: the interpreter reads the
// sensor sample (Q16.16) from port 0 and the cycle time in milliseconds
// from port 1, and writes its actuator command (Q16.16) to port 0.
const (
	VMPortInput  uint8 = 0
	VMPortDTms   uint8 = 1
	VMPortOutput uint8 = 0
)

// vmHost adapts the per-step I/O to the vm.Host interface.
type vmHost struct {
	input  int64
	dtMS   int64
	output int64
	hasOut bool
}

func (h *vmHost) In(port uint8) (int64, error) {
	switch port {
	case VMPortInput:
		return h.input, nil
	case VMPortDTms:
		return h.dtMS, nil
	default:
		return 0, fmt.Errorf("core: vm read from unknown port %d", port)
	}
}

func (h *vmHost) Out(port uint8, v int64) error {
	if port != VMPortOutput {
		return fmt.Errorf("core: vm write to unknown port %d", port)
	}
	h.output = v
	h.hasOut = true
	return nil
}

// VMLogic runs a control law expressed as EVM byte code. Each Step resets
// the program (memory persists across cycles — it is the controller
// state) and runs it to completion under a gas bound.
type VMLogic struct {
	capsule vm.Capsule
	interp  *vm.Interp
	host    *vmHost
	gas     int
}

var _ TaskLogic = (*VMLogic)(nil)

// NewVMLogic instantiates the capsule after attestation-style re-encoding
// checks (the capsule is assumed already attested by the migration path).
func NewVMLogic(c vm.Capsule, gas int) (*VMLogic, error) {
	if len(c.Code) == 0 {
		return nil, errors.New("core: empty capsule")
	}
	if gas <= 0 {
		gas = vm.DefaultGas
	}
	h := &vmHost{}
	return &VMLogic{capsule: c, interp: vm.New(c.Code, h), host: h, gas: gas}, nil
}

// Capsule returns the code capsule backing the logic.
func (l *VMLogic) Capsule() vm.Capsule { return l.capsule }

// Step implements TaskLogic.
func (l *VMLogic) Step(input, dt float64) (float64, error) {
	l.host.input = vm.ToQ(input)
	l.host.dtMS = int64(dt * 1000)
	l.host.hasOut = false
	l.interp.Reset()
	if err := l.interp.Run(l.gas); err != nil {
		return 0, fmt.Errorf("capsule %s: %w", l.capsule.TaskID, err)
	}
	if !l.host.hasOut {
		return 0, fmt.Errorf("core: capsule %s produced no output", l.capsule.TaskID)
	}
	return vm.FromQ(l.host.output), nil
}

// Snapshot implements TaskLogic.
func (l *VMLogic) Snapshot() ([]byte, error) {
	return l.interp.Snapshot().MarshalBinary()
}

// Restore implements TaskLogic.
func (l *VMLogic) Restore(b []byte) error {
	var st vm.State
	if err := st.UnmarshalBinary(b); err != nil {
		return err
	}
	return l.interp.Restore(st)
}
