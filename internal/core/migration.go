package core

import (
	"fmt"

	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/rtos"
	"evm/internal/vm"
	"evm/internal/wire"
)

// MigrateTask ships this node's replica of a task to another node: the
// code capsule first (for VM tasks), then the serialized state. The
// transfer rides ordinary RT-Link slots and is fragmented automatically.
func (n *Node) MigrateTask(taskID string, dest radio.NodeID) error {
	r, ok := n.replicas[taskID]
	if !ok {
		return fmt.Errorf("core: node %v holds no task %s", n.id, taskID)
	}
	if vl, isVM := r.logic.(*VMLogic); isVM {
		if err := n.sendCapsule(vl.Capsule(), dest); err != nil {
			return err
		}
	}
	blob, err := r.logic.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot %s: %w", taskID, err)
	}
	payload, err := wire.StateXfer{TaskID: taskID, Seq: r.outSeq, Blob: blob}.Encode()
	if err != nil {
		return err
	}
	n.send(rtlink.Message{Dst: dest, Kind: wire.KindState, Payload: payload})
	n.stats.MigrationsOut++
	return nil
}

func (n *Node) sendCapsule(c vm.Capsule, dest radio.NodeID) error {
	enc, err := c.Encode()
	if err != nil {
		return err
	}
	n.send(rtlink.Message{Dst: dest, Kind: wire.KindCapsule, Payload: enc})
	return nil
}

// DeployCapsule ships a (possibly brand-new) control-law capsule to dest
// over the air: the receiver attests it, runs schedulability admission
// and installs it as a replica of the task named by the capsule. This is
// the EVM's runtime reprogramming path — new code reaches a live Virtual
// Component without redeploying nodes.
func (n *Node) DeployCapsule(c vm.Capsule, dest radio.NodeID) error {
	if _, ok := n.cfg.TaskByID(c.TaskID); !ok {
		return fmt.Errorf("core: capsule names unknown task %q", c.TaskID)
	}
	if dest == n.id {
		return fmt.Errorf("core: deploy to self — install directly")
	}
	n.stats.MigrationsOut++
	return n.sendCapsule(c, dest)
}

// onMigrateCmd executes a head-ordered migration.
func (n *Node) onMigrateCmd(msg rtlink.Message) {
	mc, err := wire.DecodeMigrateCmd(msg.Payload)
	if err != nil {
		return
	}
	_ = n.MigrateTask(mc.TaskID, radio.NodeID(mc.Dest))
}

// onCapsule receives migrated code: attestation happens inside vm.Decode
// (checksum over the capsule), then the task is admitted against the
// node's schedulability test before a replica is created — the paper's
// §3.1.1 op 8 ("the node executes a basic attestation test to ensure the
// code/data is not corrupted and passes the schedulability test").
func (n *Node) onCapsule(msg rtlink.Message) {
	c, err := vm.Decode(msg.Payload)
	if err != nil {
		return // attestation failed: drop
	}
	spec, ok := n.cfg.TaskByID(c.TaskID)
	if !ok {
		return
	}
	logic, err := NewVMLogic(c, 0)
	if err != nil {
		return
	}
	if !n.ensureAdmitted(spec) {
		return
	}
	n.installReplica(spec, logic)
}

// onState receives migrated task state. For tasks whose logic can be
// instantiated from the shared spec (PID controllers), state alone
// suffices; VM tasks need a capsule first.
func (n *Node) onState(msg rtlink.Message) {
	sx, err := wire.DecodeStateXfer(msg.Payload)
	if err != nil {
		return
	}
	r, ok := n.replicas[sx.TaskID]
	if !ok {
		spec, specOK := n.cfg.TaskByID(sx.TaskID)
		if !specOK {
			return
		}
		logic, err := spec.MakeLogic()
		if err != nil {
			return
		}
		if !n.ensureAdmitted(spec) {
			return
		}
		r = n.installReplica(spec, logic)
	}
	if err := r.logic.Restore(sx.Blob); err != nil {
		return
	}
	r.outSeq = sx.Seq
	n.stats.MigrationsIn++
	if n.migrationSink != nil {
		n.migrationSink(sx.TaskID, msg.Src)
	}
}

// HasReplica reports whether the node holds a replica of the task
// (regardless of role).
func (n *Node) HasReplica(taskID string) bool {
	_, ok := n.replicas[taskID]
	return ok
}

// ReplicaCount returns how many task replicas the node holds.
func (n *Node) ReplicaCount() int { return len(n.replicas) }

// ExportTask packages this node's replica of a task for out-of-band
// transfer: the serialized state, the output sequence number and, for
// byte-code tasks, the encoded code capsule. The federation layer ships
// the export over the campus backbone when a cell can no longer host the
// task locally.
func (n *Node) ExportTask(taskID string) (wire.TaskExport, error) {
	r, ok := n.replicas[taskID]
	if !ok {
		return wire.TaskExport{}, fmt.Errorf("core: node %v holds no task %s", n.id, taskID)
	}
	blob, err := r.logic.Snapshot()
	if err != nil {
		return wire.TaskExport{}, fmt.Errorf("snapshot %s: %w", taskID, err)
	}
	ex := wire.TaskExport{TaskID: taskID, Seq: r.outSeq, Blob: blob}
	if vl, isVM := r.logic.(*VMLogic); isVM {
		c := vl.Capsule()
		enc, err := c.Encode()
		if err != nil {
			return wire.TaskExport{}, err
		}
		ex.Capsule = enc
	}
	return ex, nil
}

// ImportTask installs a replica of a foreign task delivered out-of-band
// (cross-cell migration over the federation backbone). The capsule, when
// present, is attested by vm.Decode; the task passes schedulability
// admission like any migrated task; the state snapshot is restored; and
// with activate the replica starts as the task's master immediately —
// the importing cell's head does not arbitrate foreign tasks.
func (n *Node) ImportTask(spec TaskSpec, ex wire.TaskExport, activate bool) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.ID != ex.TaskID {
		return fmt.Errorf("core: export names task %q, spec %q", ex.TaskID, spec.ID)
	}
	if _, exists := n.replicas[spec.ID]; exists {
		return fmt.Errorf("core: node %v already holds task %s", n.id, spec.ID)
	}
	var logic TaskLogic
	if len(ex.Capsule) > 0 {
		c, err := vm.Decode(ex.Capsule) // attestation
		if err != nil {
			return fmt.Errorf("core: capsule attestation: %w", err)
		}
		logic, err = NewVMLogic(c, 0)
		if err != nil {
			return err
		}
	} else {
		var err error
		logic, err = spec.MakeLogic()
		if err != nil {
			return err
		}
	}
	if !n.ensureAdmitted(spec) {
		return fmt.Errorf("core: node %v cannot schedule imported task %s", n.id, spec.ID)
	}
	r := n.installReplica(spec, logic)
	if len(ex.Blob) > 0 {
		if err := r.logic.Restore(ex.Blob); err != nil {
			return fmt.Errorf("restore %s: %w", spec.ID, err)
		}
	}
	r.outSeq = ex.Seq
	if activate {
		r.role = wire.RoleActive
		r.activeNode = n.id
	}
	n.stats.MigrationsIn++
	return nil
}

// RetireTask removes this node's replica of a task and frees its
// admission slot. The federation layer retires foreign copies after a
// rebalanced task resumed in its origin cell, so exactly one master
// survives campus-wide.
func (n *Node) RetireTask(taskID string) error {
	if _, ok := n.replicas[taskID]; !ok {
		return fmt.Errorf("core: node %v holds no task %s", n.id, taskID)
	}
	delete(n.replicas, taskID)
	kept := make(rtos.TaskSet, 0, len(n.taskset))
	for _, t := range n.taskset {
		if t.ID != rtos.TaskID(taskID) {
			kept = append(kept, t)
		}
	}
	n.taskset = kept
	return nil
}

// AdoptState restores an out-of-band state snapshot into this node's
// existing replica of the task (or imports a fresh replica when none
// exists). Used when a rebalanced task returns to a home node that kept
// its replica through the outage: the stale local state is overwritten
// by the checkpoint the foreign host shipped back.
func (n *Node) AdoptState(spec TaskSpec, ex wire.TaskExport) error {
	r, ok := n.replicas[ex.TaskID]
	if !ok {
		return n.ImportTask(spec, ex, false)
	}
	if len(ex.Blob) > 0 {
		if err := r.logic.Restore(ex.Blob); err != nil {
			return fmt.Errorf("restore %s: %w", ex.TaskID, err)
		}
	}
	r.outSeq = ex.Seq
	n.stats.MigrationsIn++
	return nil
}

// ensureAdmitted runs schedulability admission for a task not yet in the
// node's task set.
func (n *Node) ensureAdmitted(spec TaskSpec) bool {
	if _, has := n.taskset.Find(rtos.TaskID(spec.ID)); has {
		return true
	}
	grown, ok := rtos.Admit(n.taskset, spec.RTOSTask(), rtos.TestRTA)
	if !ok {
		return false
	}
	n.taskset = grown
	return true
}

// installReplica creates (or replaces) the local replica in Backup role;
// activation is the head's decision.
func (n *Node) installReplica(spec TaskSpec, logic TaskLogic) *replica {
	r, ok := n.replicas[spec.ID]
	if !ok {
		r = &replica{spec: spec, activeNode: spec.Candidates[0], enabled: true}
		n.replicas[spec.ID] = r
	}
	r.logic = logic
	if r.role == 0 {
		r.role = wire.RoleBackup
	}
	return r
}
