package core

import (
	"testing"
	"time"

	"evm/internal/radio"
)

func TestTransferValidation(t *testing.T) {
	bad := []Transfer{
		{Type: TransferDirectional, From: 1, To: 1},
		{Type: TransferHealth, From: 2, To: 2},
		{Type: TransferTemporal, From: 1, To: 2, MaxAge: 0},
		{Type: TransferCausal, From: 1, To: 2},
		{Type: TransferType(99), From: 1, To: 2},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid transfer accepted: %+v", i, tr)
		}
	}
	good := []Transfer{
		{Type: TransferDisjoint, From: 1, To: 2},
		{Type: TransferDirectional, From: 1, To: 2},
		{Type: TransferBidirectional, From: 1, To: 2},
		{Type: TransferTemporal, From: 1, To: 2, MaxAge: time.Second},
		{Type: TransferCausal, From: 1, To: 2, After: "x"},
		{Type: TransferHealth, From: 1, To: 2},
	}
	for i, tr := range good {
		if err := tr.Validate(); err != nil {
			t.Errorf("case %d: valid transfer rejected: %v", i, err)
		}
	}
}

func TestDisjointConflict(t *testing.T) {
	_, err := NewTransferGraph([]Transfer{
		{Type: TransferDisjoint, From: 1, To: 2},
		{Type: TransferDirectional, From: 2, To: 1},
	})
	if err == nil {
		t.Fatal("disjoint + directional between same pair accepted")
	}
}

func TestAllowedSendDirectionality(t *testing.T) {
	g, err := NewTransferGraph([]Transfer{
		{Type: TransferDirectional, From: 1, To: 2},
		{Type: TransferBidirectional, From: 3, To: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.AllowedSend(1, 2) {
		t.Fatal("directional forward denied")
	}
	if g.AllowedSend(2, 1) {
		t.Fatal("directional reverse allowed")
	}
	if !g.AllowedSend(3, 4) || !g.AllowedSend(4, 3) {
		t.Fatal("bidirectional broken")
	}
	if g.AllowedSend(1, 4) {
		t.Fatal("unrelated pair allowed")
	}
}

func TestMaxAgeTightest(t *testing.T) {
	g, err := NewTransferGraph([]Transfer{
		{Type: TransferTemporal, From: 1, To: 2, MaxAge: 3 * time.Second},
		{Type: TransferTemporal, From: 1, To: 2, MaxAge: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MaxAgeFor(1, 2); got != time.Second {
		t.Fatalf("MaxAgeFor = %v, want tightest 1s", got)
	}
	if got := g.MaxAgeFor(2, 1); got != 0 {
		t.Fatalf("unconstrained pair returned %v", got)
	}
}

func TestHealthPeers(t *testing.T) {
	g, err := NewTransferGraph([]Transfer{
		{Type: TransferHealth, From: 1, To: 2},
		{Type: TransferHealth, From: 3, To: 1},
		{Type: TransferHealth, From: 2, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	peers := g.HealthPeers(1)
	if len(peers) != 2 {
		t.Fatalf("peers of 1 = %v", peers)
	}
}

func TestDefaultTransfersDerivation(t *testing.T) {
	cfg := defaultCfg()
	cfg.Tasks[0].MaxInputAge = time.Second
	edges := cfg.DefaultTransfers()
	g, err := NewTransferGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	// Gateway -> candidate sensor flow.
	if !g.AllowedSend(gwID, ctrlA) || !g.AllowedSend(ctrlA, gwID) {
		t.Fatal("gateway transfers missing")
	}
	// Health assessment between the two candidates.
	peers := g.HealthPeers(ctrlA)
	found := false
	for _, p := range peers {
		if p == ctrlB {
			found = true
		}
	}
	if !found {
		t.Fatal("candidates lack a health-assessment edge")
	}
	if g.MaxAgeFor(gwID, ctrlA) != time.Second {
		t.Fatal("temporal constraint not derived")
	}
}

func TestVCConfigValidation(t *testing.T) {
	cfg := defaultCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := defaultCfg()
	bad.Tasks[0].Candidates = []radio.NodeID{gwID}
	if err := bad.Validate(); err == nil {
		t.Fatal("controller on gateway accepted")
	}
	bad = defaultCfg()
	bad.Tasks = append(bad.Tasks, bad.Tasks[0])
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate task accepted")
	}
	bad = defaultCfg()
	bad.Tasks[0].DeviationWindow = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero deviation window accepted")
	}
	bad = defaultCfg()
	bad.Tasks[0].MakeLogic = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing logic factory accepted")
	}
}

func TestInitialRoles(t *testing.T) {
	cfg := defaultCfg()
	if ro := cfg.InitialRole("lts", ctrlA); !ro.Holds || !ro.Active {
		t.Fatalf("ctrlA role = %+v", ro)
	}
	if ro := cfg.InitialRole("lts", ctrlB); !ro.Holds || ro.Active {
		t.Fatalf("ctrlB role = %+v", ro)
	}
	if ro := cfg.InitialRole("lts", spareID); ro.Holds {
		t.Fatalf("spare role = %+v", ro)
	}
	if ro := cfg.InitialRole("nope", ctrlA); ro.Holds {
		t.Fatalf("unknown task role = %+v", ro)
	}
}
