package core

import (
	"testing"
	"time"

	"evm/internal/vm"
)

// otaCapsule assembles a proportional law out = gain x (setpoint - in)
// as an attested capsule.
func otaCapsule(t *testing.T, taskID string, version uint8, setpoint, gain string) vm.Capsule {
	t.Helper()
	code, err := vm.Assemble(`
		PUSHQ ` + setpoint + `
		IN 0
		SUB
		PUSHQ ` + gain + `
		MULQ
		PUSH 0
		MAX
		PUSHQ 100.0
		MIN
		OUT 0
		HALT`)
	if err != nil {
		t.Fatal(err)
	}
	return vm.Capsule{TaskID: taskID, Version: version, Code: code}
}

// vmRig builds the standard rig with the lts task running capsule v1
// (out = 2 x (50 - in)) instead of the PID law.
func vmRig(t *testing.T) *rig {
	t.Helper()
	cfg := defaultCfg()
	spec := testSpec()
	spec.MakeLogic = func() (TaskLogic, error) {
		return NewVMLogic(otaCapsule(t, "lts", 1, "50.0", "2.0"), 0)
	}
	cfg.Tasks = []TaskSpec{spec}
	r := newRig(t, cfg)
	r.sensor = func() float64 { return 40 }
	return r
}

// TestStageActivateSwapsLaw drives the per-node half of a rollout:
// staging leaves the old law running, activation swaps both code and
// version at one instant, and the new law's commands flow immediately.
func TestStageActivateSwapsLaw(t *testing.T) {
	r := vmRig(t)
	r.run(t, 3*time.Second)
	primary := r.nodes[ctrlA]
	if out, ok := primary.LastOutput("lts"); !ok || out != 20 {
		t.Fatalf("v1 output = %v, %t, want 2 x (50-40) = 20", out, ok)
	}
	if v, ok := primary.CapsuleVersion("lts"); !ok || v != 1 {
		t.Fatalf("capsule version = %d, %t, want v1", v, ok)
	}

	v2 := otaCapsule(t, "lts", 2, "70.0", "3.0")
	if err := primary.StageCapsule(v2); err != nil {
		t.Fatal(err)
	}
	if v, ok := primary.StagedVersion("lts"); !ok || v != 2 {
		t.Fatalf("staged version = %d, %t, want v2", v, ok)
	}
	// Staged-but-inactive: the running law and version are untouched.
	r.run(t, time.Second)
	if v, _ := primary.CapsuleVersion("lts"); v != 1 {
		t.Fatalf("running version = %d after staging, want still v1", v)
	}
	if out, _ := primary.LastOutput("lts"); out != 20 {
		t.Fatalf("output = %v after staging, want still 20", out)
	}

	if err := primary.ActivateStaged("lts"); err != nil {
		t.Fatal(err)
	}
	if v, _ := primary.CapsuleVersion("lts"); v != 2 {
		t.Fatalf("running version = %d after activation, want v2", v)
	}
	if _, staged := primary.StagedVersion("lts"); staged {
		t.Fatal("capsule still staged after activation")
	}
	r.run(t, time.Second)
	if out, _ := primary.LastOutput("lts"); out != 90 {
		t.Fatalf("v2 output = %v, want 3 x (70-40) = 90", out)
	}
}

// TestRevertRestoresPriorLaw checks the rollback half: reverting resumes
// the prior version's logic (state intact) and reverting twice is an
// error. Both candidates upgrade together — exactly what a rollout
// commit does — because a lone v2 primary against a v1 backup trips the
// deviation detector (|90 - 20| > tol) and gets demoted.
func TestRevertRestoresPriorLaw(t *testing.T) {
	r := vmRig(t)
	r.run(t, 3*time.Second)
	replicas := []*Node{r.nodes[ctrlA], r.nodes[ctrlB]}
	for _, n := range replicas {
		if err := n.StageCapsule(otaCapsule(t, "lts", 2, "70.0", "3.0")); err != nil {
			t.Fatal(err)
		}
		if err := n.ActivateStaged("lts"); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t, time.Second)
	if out, _ := r.nodes[ctrlA].LastOutput("lts"); out != 90 {
		t.Fatalf("v2 output = %v, want 3 x (70-40) = 90", out)
	}
	for _, n := range replicas {
		if err := n.RevertCapsule("lts"); err != nil {
			t.Fatal(err)
		}
		if v, _ := n.CapsuleVersion("lts"); v != 1 {
			t.Fatalf("version after revert = %d, want v1", v)
		}
	}
	r.run(t, time.Second)
	if out, _ := r.nodes[ctrlA].LastOutput("lts"); out != 20 {
		t.Fatalf("output after revert = %v, want the v1 law's 20", out)
	}
	if err := r.nodes[ctrlA].RevertCapsule("lts"); err == nil {
		t.Fatal("second revert succeeded with no prior version retained")
	}
}

// TestStagingErrorPaths covers the refusal surface: unknown tasks,
// malformed capsules, activation without a stage, and ClearStaged.
func TestStagingErrorPaths(t *testing.T) {
	r := vmRig(t)
	r.run(t, time.Second)
	primary := r.nodes[ctrlA]
	if err := primary.StageCapsule(otaCapsule(t, "ghost", 2, "70.0", "3.0")); err == nil {
		t.Fatal("staged a capsule for a task the node does not hold")
	}
	if err := primary.StageCapsule(vm.Capsule{TaskID: "lts", Version: 2}); err == nil {
		t.Fatal("staged an empty capsule")
	}
	if err := primary.ActivateStaged("lts"); err == nil {
		t.Fatal("activated with nothing staged")
	}
	if err := primary.ActivateStaged("ghost"); err == nil {
		t.Fatal("activated a task the node does not hold")
	}
	// Re-staging replaces; ClearStaged drops.
	if err := primary.StageCapsule(otaCapsule(t, "lts", 2, "70.0", "3.0")); err != nil {
		t.Fatal(err)
	}
	if err := primary.StageCapsule(otaCapsule(t, "lts", 3, "60.0", "1.0")); err != nil {
		t.Fatal(err)
	}
	if v, _ := primary.StagedVersion("lts"); v != 3 {
		t.Fatalf("staged version after re-stage = %d, want v3", v)
	}
	primary.ClearStaged("lts")
	if _, staged := primary.StagedVersion("lts"); staged {
		t.Fatal("capsule survived ClearStaged")
	}
	// A task running native (non-VM) logic reports no capsule version.
	if _, ok := primary.CapsuleVersion("ghost"); ok {
		t.Fatal("unknown task reported a capsule version")
	}
}

// TestActivateCarriesStateAcrossCompatibleLayouts proves controller
// state survives an upgrade between capsules sharing the persistent-
// memory convention: a law accumulating into memory keeps its
// accumulator through ActivateStaged.
func TestActivateCarriesStateAcrossCompatibleLayouts(t *testing.T) {
	counter := func(version uint8, step string) vm.Capsule {
		code, err := vm.Assemble(`
			PUSH 0
			LOAD
			PUSHQ ` + step + `
			ADD
			PUSH 0
			STORE
			PUSH 0
			LOAD
			OUT 0
			HALT`)
		if err != nil {
			t.Fatal(err)
		}
		return vm.Capsule{TaskID: "lts", Version: version, Code: code}
	}
	cfg := defaultCfg()
	spec := testSpec()
	spec.MakeLogic = func() (TaskLogic, error) { return NewVMLogic(counter(1, "1.0"), 0) }
	cfg.Tasks = []TaskSpec{spec}
	r := newRig(t, cfg)
	r.run(t, 3*time.Second)
	primary := r.nodes[ctrlA]
	before, ok := primary.LastOutput("lts")
	if !ok || before <= 0 {
		t.Fatalf("accumulator output = %v, %t", before, ok)
	}
	if err := primary.StageCapsule(counter(2, "2.0")); err != nil {
		t.Fatal(err)
	}
	if err := primary.ActivateStaged("lts"); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Second)
	after, _ := primary.LastOutput("lts")
	if after <= before {
		t.Fatalf("accumulator reset across activation: %v -> %v", before, after)
	}
}
