package core

import (
	"fmt"

	"evm/internal/vm"
)

// Over-the-air reprogramming: the per-node half of a capsule rollout.
// A rollout upgrades a live replica in two steps mirroring the
// federation's prepare/commit handshake — StageCapsule attests and
// admits the new code without running it, ActivateStaged swaps it in at
// the commit point — and keeps the previously active logic around so
// RevertCapsule can roll the replica back when a post-activation health
// window trips (paper §1: "runtime programmable WSAC networks allow for
// flexible item-by-item process customization").

// StageCapsule installs a new code capsule next to the node's live
// replica of the capsule's task without activating it: the capsule is
// instantiated (a malformed program fails here), but the running logic —
// and its state — keep executing until ActivateStaged. The capsule's
// attestation digest is verified by vm.Decode on the delivery path;
// staging a task the node holds no replica of is an error. Re-staging
// replaces a previously staged capsule. Admission needs no new
// schedulability test: the capsule reprograms a task already admitted
// with the same period and WCET.
func (n *Node) StageCapsule(c vm.Capsule) error {
	r, ok := n.replicas[c.TaskID]
	if !ok {
		return fmt.Errorf("core: node %v holds no replica of task %s to stage", n.id, c.TaskID)
	}
	logic, err := NewVMLogic(c, 0)
	if err != nil {
		return fmt.Errorf("core: stage %s v%d: %w", c.TaskID, c.Version, err)
	}
	r.staged = logic
	r.stagedVersion = c.Version
	return nil
}

// StagedVersion returns the version of the capsule staged for a task,
// if any.
func (n *Node) StagedVersion(taskID string) (uint8, bool) {
	if r, ok := n.replicas[taskID]; ok && r.staged != nil {
		return r.stagedVersion, true
	}
	return 0, false
}

// ClearStaged drops a staged capsule without activating it (rollout
// abort before the commit point). No-op when nothing is staged.
func (n *Node) ClearStaged(taskID string) {
	if r, ok := n.replicas[taskID]; ok {
		r.staged = nil
		r.stagedVersion = 0
	}
}

// ActivateStaged swaps the replica onto its staged capsule — the commit
// point of a rollout. The outgoing logic's state snapshot is restored
// into the new logic when the layouts are compatible (VM capsules share
// the persistent-memory convention, so controller state carries over);
// the outgoing logic itself is retained, state intact, so RevertCapsule
// can restore the previous version with full state continuity. The
// replica's role and output sequence are untouched: an active master
// keeps actuating, now running the new law.
func (n *Node) ActivateStaged(taskID string) error {
	r, ok := n.replicas[taskID]
	if !ok {
		return fmt.Errorf("core: node %v holds no replica of task %s", n.id, taskID)
	}
	if r.staged == nil {
		return fmt.Errorf("core: node %v has no staged capsule for task %s", n.id, taskID)
	}
	if blob, err := r.logic.Snapshot(); err == nil {
		_ = r.staged.Restore(blob) // best effort: incompatible layouts start fresh
	}
	r.prev = r.logic
	r.prevVersion, _ = n.CapsuleVersion(taskID)
	r.logic = r.staged
	r.staged = nil
	r.stagedVersion = 0
	return nil
}

// RevertCapsule rolls the replica back to the logic that was active
// before the last ActivateStaged. The retained previous logic kept its
// own state through the failed epoch, so the control law resumes where
// the prior version left off; role and output sequence continue
// unbroken. Reverting twice (or without a prior activation) is an error.
func (n *Node) RevertCapsule(taskID string) error {
	r, ok := n.replicas[taskID]
	if !ok {
		return fmt.Errorf("core: node %v holds no replica of task %s", n.id, taskID)
	}
	if r.prev == nil {
		return fmt.Errorf("core: node %v has no previous capsule for task %s", n.id, taskID)
	}
	r.logic = r.prev
	r.prev = nil
	r.prevVersion = 0
	return nil
}

// CapsuleVersion returns the version of the capsule currently executing
// a task's replica. Tasks running native (non-VM) logic report ok=false.
func (n *Node) CapsuleVersion(taskID string) (uint8, bool) {
	r, ok := n.replicas[taskID]
	if !ok {
		return 0, false
	}
	if vl, isVM := r.logic.(*VMLogic); isVM {
		return vl.Capsule().Version, true
	}
	return 0, false
}
