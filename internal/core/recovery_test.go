package core

import (
	"testing"
	"time"

	"evm/internal/rtlink"
	"evm/internal/wire"
)

func TestRecoveredPrimaryDemotedToBackup(t *testing.T) {
	// The primary crashes, the backup takes over; later the old primary
	// recovers still believing it is Active. The head must demote it so
	// the component has exactly one master.
	r := newRig(t, defaultCfg())
	r.run(t, 5*time.Second)
	r.nodes[ctrlA].Link().Radio().Fail()
	r.run(t, 15*time.Second)
	if r.nodes[ctrlB].Role("lts") != wire.RoleActive {
		t.Fatal("backup did not take over")
	}
	// Recover the old primary: it missed the role change, so its local
	// role is still Active.
	r.nodes[ctrlA].Link().Radio().Recover()
	if r.nodes[ctrlA].Role("lts") != wire.RoleActive {
		t.Skip("old primary role not stale — nothing to correct")
	}
	r.run(t, 10*time.Second)
	if got := r.nodes[ctrlA].Role("lts"); got != wire.RoleBackup {
		t.Fatalf("recovered primary role = %v, want demotion to backup", got)
	}
	if r.nodes[ctrlB].Role("lts") != wire.RoleActive {
		t.Fatal("current master disturbed by recovery")
	}
}

func TestTemporalConditionalDiscardsStaleInput(t *testing.T) {
	cfg := defaultCfg()
	cfg.Tasks[0].MaxInputAge = 100 * time.Millisecond
	r := newRig(t, cfg)
	r.ticker.Stop() // drive sensors by hand
	r.run(t, 2*time.Second)

	node := r.nodes[ctrlA]
	cyclesBefore := node.Stats().CyclesRun

	// A fresh snapshot runs a cycle.
	fresh, err := wire.SensorSnapshot{
		At:       r.eng.Now(),
		Readings: []wire.SensorReading{{Port: 0, Value: 50}},
	}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	node.onMessage(rtlink.Message{Src: gwID, Kind: wire.KindSensor, Payload: fresh})
	if node.Stats().CyclesRun != cyclesBefore+1 {
		t.Fatalf("fresh input did not run a cycle (%d -> %d)", cyclesBefore, node.Stats().CyclesRun)
	}

	// A stale snapshot (older than MaxInputAge) must be discarded.
	stale, err := wire.SensorSnapshot{
		At:       r.eng.Now() - time.Second,
		Readings: []wire.SensorReading{{Port: 0, Value: 50}},
	}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	node.onMessage(rtlink.Message{Src: gwID, Kind: wire.KindSensor, Payload: stale})
	if node.Stats().CyclesRun != cyclesBefore+1 {
		t.Fatal("stale input ran a cycle")
	}
	if node.Stats().StaleInputs != 1 {
		t.Fatalf("StaleInputs = %d, want 1", node.Stats().StaleInputs)
	}

	// Un-timestamped snapshots (At=0) are treated as fresh.
	legacy, err := wire.EncodeSensors([]wire.SensorReading{{Port: 0, Value: 50}})
	if err != nil {
		t.Fatal(err)
	}
	node.onMessage(rtlink.Message{Src: gwID, Kind: wire.KindSensor, Payload: legacy})
	if node.Stats().CyclesRun != cyclesBefore+2 {
		t.Fatal("untimestamped input not treated as fresh")
	}
}

func TestActiveStateReplicationResyncsBackup(t *testing.T) {
	cfg := defaultCfg()
	cfg.Tasks[0].ReplicateEvery = 4
	r := newRig(t, cfg)
	r.run(t, 3*time.Second)
	// Corrupt the backup's state: passive observation alone would leave
	// it diverged; active replication must pull it back in sync.
	bad, err := NewPIDLogic(PIDParams{Kp: 9, Ki: 9, OutMin: 0, OutMax: 100,
		Setpoint: 10, CutoffHz: 0.4, RateHz: 4})
	if err != nil {
		t.Fatal(err)
	}
	badState, err := bad.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nodes[ctrlB].replicas["lts"].logic.Restore(badState); err != nil {
		t.Fatal(err)
	}
	r.run(t, 5*time.Second)
	snapA, err := r.nodes[ctrlA].replicas["lts"].logic.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := r.nodes[ctrlB].replicas["lts"].logic.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The replicated snapshot lags the primary by at most a few cycles,
	// so compare output trajectories rather than raw snapshot bytes.
	outA, _ := r.nodes[ctrlA].LastOutput("lts")
	outB, _ := r.nodes[ctrlB].LastOutput("lts")
	diff := outA - outB
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("backup not resynced: outputs %f vs %f", outA, outB)
	}
	if len(snapA) != len(snapB) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(snapA), len(snapB))
	}
}

func TestStateSyncRejectedFromNonPrimary(t *testing.T) {
	cfg := defaultCfg()
	cfg.Tasks[0].ReplicateEvery = 4
	r := newRig(t, cfg)
	r.run(t, 3*time.Second)
	// Craft a poisoned state-sync claiming to come from the spare (not
	// the primary): the backup must ignore it.
	bad, err := NewPIDLogic(PIDParams{Kp: 9, Ki: 9, OutMin: 0, OutMax: 100,
		Setpoint: 10, CutoffHz: 0.4, RateHz: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := bad.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.StateXfer{TaskID: "lts", Seq: 999, Blob: blob}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	node := r.nodes[ctrlB]
	node.onMessage(rtlink.Message{Src: spareID, Kind: wire.KindStateSync, Payload: payload})
	// Setpoint must still be 50: next output close to the primary's.
	r.run(t, 2*time.Second)
	outA, _ := r.nodes[ctrlA].LastOutput("lts")
	outB, _ := node.LastOutput("lts")
	diff := outA - outB
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("poisoned state sync applied: %f vs %f", outA, outB)
	}
}

func TestDeterministicReplicaOrder(t *testing.T) {
	// With two tasks per node the behavior-visible iteration order must
	// be stable across runs (map-order independence).
	build := func() (float64, float64) {
		cfg := defaultCfg()
		second := testSpec()
		second.ID = "aux"
		second.ActuatorPort = 11
		cfg.Tasks = append(cfg.Tasks, second)
		r := newRig(t, cfg)
		r.run(t, 20*time.Second)
		a, _ := r.nodes[ctrlA].LastOutput("lts")
		b, _ := r.nodes[ctrlA].LastOutput("aux")
		return a, b
	}
	a1, b1 := build()
	a2, b2 := build()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("same-seed runs diverged: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}
