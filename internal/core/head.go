package core

import (
	"math"
	"sort"
	"time"

	"evm/internal/bqp"
	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/sim"
	"evm/internal/wire"
)

// HeadStats counts arbitration activity.
type HeadStats struct {
	Failovers       int
	ReportsIgnored  int
	Joins           int
	RoleChangesSent int
	Reoptimizations int
}

// Head is the Virtual Component's arbiter: it receives fault reports from
// backups, selects new masters, manages membership and triggers runtime
// re-optimization of the task assignment.
type Head struct {
	node *Node
	seq  uint32

	active     map[string]radio.NodeID
	lastHealth map[radio.NodeID]time.Duration
	cooldown   map[string]time.Duration
	members    map[radio.NodeID]wire.Join
	// adopted holds task specs imported from peer cells (federation
	// foreign-task adoption): the head arbitrates them like its own,
	// using the in-cell candidate set chosen at adoption time.
	adopted    map[string]TaskSpec
	dormantEvs []*sim.Event
	stats      HeadStats

	// failoverSink, joinSink and modeSink are the facade's event-bus
	// observers (FailoverEvent / JoinEvent / ModeChangeEvent on
	// evm.Cell.Events).
	failoverSink func(taskID string, from, to radio.NodeID)
	joinSink     func(id radio.NodeID)
	modeSink     func(mode uint8, atFrame uint64)
}

// SetFailoverSink registers the facade-level failover observer.
func (h *Head) SetFailoverSink(fn func(taskID string, from, to radio.NodeID)) {
	h.failoverSink = fn
}

// SetJoinSink registers the facade-level membership observer.
func (h *Head) SetJoinSink(fn func(id radio.NodeID)) { h.joinSink = fn }

// SetModeSink registers the facade-level mode-change observer, fired
// when the head issues a synchronized mode switch.
func (h *Head) SetModeSink(fn func(mode uint8, atFrame uint64)) { h.modeSink = fn }

func newHead(n *Node) *Head {
	h := &Head{
		node:       n,
		active:     make(map[string]radio.NodeID, len(n.cfg.Tasks)),
		lastHealth: make(map[radio.NodeID]time.Duration),
		cooldown:   make(map[string]time.Duration),
		members:    make(map[radio.NodeID]wire.Join),
	}
	for _, t := range n.cfg.Tasks {
		h.active[t.ID] = t.Candidates[0]
		for _, cand := range t.Candidates {
			if _, ok := h.members[cand]; !ok {
				h.members[cand] = wire.Join{Node: uint16(cand), CPUCapacity: 1, Battery: 1}
			}
		}
	}
	return h
}

func (h *Head) stop() {
	for _, ev := range h.dormantEvs {
		h.node.eng.Cancel(ev)
	}
}

// Stats returns a copy of the head counters.
func (h *Head) Stats() HeadStats { return h.stats }

// AdoptTask registers a task imported from a peer cell: the head records
// the spec (with its in-cell candidate set), marks the given node as the
// task's master, and admits the candidates as members. From then on the
// head arbitrates the foreign task's fail-over exactly like a native one.
func (h *Head) AdoptTask(spec TaskSpec, active radio.NodeID) {
	if h.adopted == nil {
		h.adopted = make(map[string]TaskSpec)
	}
	h.adopted[spec.ID] = spec
	h.active[spec.ID] = active
	for _, cand := range spec.Candidates {
		if _, ok := h.members[cand]; !ok {
			h.members[cand] = wire.Join{Node: uint16(cand), CPUCapacity: 1, Battery: 1}
		}
	}
}

// RetireMaster relinquishes a task's mastership without electing a
// successor: the recorded master (typically a stale primary that
// resumed after an outage while the live copy runs in a peer cell) is
// demoted to backup, and the head records no active node — so any later
// health bundle still claiming Active for the task is demoted too. The
// federation coordinator calls this when a recovered cell's task is
// hosted elsewhere; a subsequent Promote re-establishes a master.
func (h *Head) RetireMaster(taskID string) {
	cur, ok := h.active[taskID]
	if !ok || cur == 0 {
		return
	}
	h.broadcastRole(wire.RoleChange{Node: uint16(cur), TaskID: taskID, Role: wire.RoleBackup})
	h.active[taskID] = 0
}

// DropTask forgets an adopted task (its home cell took it back). Tasks
// of the cell's own Virtual Component are never dropped.
func (h *Head) DropTask(taskID string) {
	if _, native := h.node.cfg.TaskByID(taskID); native {
		return
	}
	delete(h.adopted, taskID)
	delete(h.active, taskID)
	delete(h.cooldown, taskID)
}

// taskSpec resolves a task the head arbitrates: the cell's own Virtual
// Component first, then adopted foreign tasks.
func (h *Head) taskSpec(id string) (TaskSpec, bool) {
	if s, ok := h.node.cfg.TaskByID(id); ok {
		return s, true
	}
	s, ok := h.adopted[id]
	return s, ok
}

// ActiveNode returns the current master for a task.
func (h *Head) ActiveNode(taskID string) (radio.NodeID, bool) {
	n, ok := h.active[taskID]
	return n, ok
}

// Members returns the known member IDs, sorted.
func (h *Head) Members() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(h.members))
	for id := range h.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h *Head) onHealthBundle(hb wire.HealthBundle) {
	h.lastHealth[radio.NodeID(hb.Node)] = h.node.eng.Now()
	// A node claiming Active for a task whose master is someone else is
	// stale (e.g. a crashed primary that recovered and missed the role
	// change): demote it so the component has a single master.
	for _, rec := range hb.Records {
		if rec.Role != wire.RoleActive {
			continue
		}
		if master, ok := h.active[rec.TaskID]; ok && master != radio.NodeID(hb.Node) {
			h.broadcastRole(wire.RoleChange{Node: hb.Node, TaskID: rec.TaskID, Role: wire.RoleBackup})
		}
	}
	if hb.Battery < 0.05 {
		// Energy fault: migrate duties away proactively if this node is
		// a master (paper §3.1.1 op 5). Adopted foreign tasks migrate
		// like native ones, in sorted order for determinism.
		for _, spec := range h.node.cfg.Tasks {
			if h.active[spec.ID] == radio.NodeID(hb.Node) {
				h.failover(spec.ID, radio.NodeID(hb.Node), 0)
			}
		}
		adoptedIDs := make([]string, 0, len(h.adopted))
		for id := range h.adopted {
			adoptedIDs = append(adoptedIDs, id)
		}
		sort.Strings(adoptedIDs)
		for _, id := range adoptedIDs {
			if h.active[id] == radio.NodeID(hb.Node) {
				h.failover(id, radio.NodeID(hb.Node), 0)
			}
		}
	}
}

// alive reports whether the head has heard the node recently.
func (h *Head) alive(id radio.NodeID, within time.Duration) bool {
	if id == h.node.id {
		return true
	}
	t, ok := h.lastHealth[id]
	if !ok {
		return false
	}
	return h.node.eng.Now()-t <= within
}

func (h *Head) onFaultReport(msg rtlink.Message) {
	fr, err := wire.DecodeFaultReport(msg.Payload)
	if err != nil {
		return
	}
	task := fr.TaskID
	cur, ok := h.active[task]
	if !ok || cur != radio.NodeID(fr.Suspect) {
		h.stats.ReportsIgnored++
		return // stale or duplicate report
	}
	if h.node.eng.Now() < h.cooldown[task] {
		h.stats.ReportsIgnored++
		return
	}
	h.failover(task, cur, radio.NodeID(fr.Reporter))
}

// failover selects a new master for the task: the highest-priority
// candidate that is alive and not the suspect, preferring the reporter as
// a tie-break fallback.
func (h *Head) failover(task string, suspect, reporter radio.NodeID) {
	spec, ok := h.taskSpec(task)
	if !ok {
		return
	}
	aliveWindow := time.Duration(spec.SilenceWindow) * spec.Period
	var next radio.NodeID
	found := false
	for _, cand := range spec.Candidates {
		if cand == suspect {
			continue
		}
		if cand == reporter || h.alive(cand, aliveWindow) {
			next = cand
			found = true
			break
		}
	}
	if !found {
		if reporter == 0 {
			return
		}
		next = reporter
	}
	h.cooldown[task] = h.node.eng.Now() + 4*aliveWindow
	h.promote(task, next, suspect)
}

// Promote performs an operator-planned master switch for a task: the
// same arbitration path as a fail-over, used for planned activations
// (e.g. after over-the-air deployment of new code).
func (h *Head) Promote(task string, next, old radio.NodeID) { h.promote(task, next, old) }

// promote issues the role changes of one fail-over: the new master goes
// Active, the old one goes Indicator, then Dormant after DormantAfter.
func (h *Head) promote(task string, next, old radio.NodeID) {
	h.stats.Failovers++
	h.broadcastRole(wire.RoleChange{Node: uint16(next), TaskID: task, Role: wire.RoleActive})
	if old != 0 && old != next {
		h.broadcastRole(wire.RoleChange{Node: uint16(old), TaskID: task, Role: wire.RoleIndicator})
		if h.node.cfg.DormantAfter > 0 {
			ev := h.node.eng.After(h.node.cfg.DormantAfter, func() {
				h.broadcastRole(wire.RoleChange{Node: uint16(old), TaskID: task, Role: wire.RoleDormant})
			})
			h.dormantEvs = append(h.dormantEvs, ev)
		}
	}
	h.active[task] = next
	if h.failoverSink != nil {
		h.failoverSink(task, old, next)
	}
}

func (h *Head) broadcastRole(rc wire.RoleChange) {
	h.seq++
	rc.Seq = h.seq
	payload, err := rc.Encode()
	if err != nil {
		return
	}
	msg := rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindRoleChange, Payload: payload}
	h.node.send(msg)
	h.stats.RoleChangesSent++
	// Broadcasts do not loop back; apply locally too.
	local := msg
	local.Src = h.node.id
	h.node.onRoleChange(local)
}

func (h *Head) onJoin(msg rtlink.Message) {
	j, err := wire.DecodeJoin(msg.Payload)
	if err != nil {
		return
	}
	h.members[radio.NodeID(j.Node)] = j
	h.lastHealth[radio.NodeID(j.Node)] = h.node.eng.Now()
	h.stats.Joins++
	if h.joinSink != nil {
		h.joinSink(radio.NodeID(j.Node))
	}
}

// SetMode broadcasts a synchronized mode change activating after the
// given number of frames.
func (h *Head) SetMode(mode uint8, inFrames uint64) {
	mc := wire.ModeChange{Mode: mode, AtFrame: h.node.net.Frame() + inFrames}
	payload, err := mc.Encode()
	if err != nil {
		return
	}
	msg := rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindModeChange, Payload: payload}
	h.node.send(msg)
	local := msg
	local.Src = h.node.id
	h.node.onModeChange(local)
	if h.modeSink != nil {
		h.modeSink(mc.Mode, mc.AtFrame)
	}
}

// CommandMigration orders the holder of a task to ship it to dest.
func (h *Head) CommandMigration(taskID string, holder, dest radio.NodeID) {
	mc := wire.MigrateCmd{TaskID: taskID, Dest: uint16(dest)}
	payload, err := mc.Encode()
	if err != nil {
		return
	}
	h.node.send(rtlink.Message{Dst: holder, Kind: wire.KindMigrateCmd, Payload: payload})
}

// Reoptimize recomputes the master assignment with the BQP solver over
// the currently-alive members and issues the necessary role changes
// (paper §3.1.1 op 7). It returns the number of tasks moved.
func (h *Head) Reoptimize(rng *sim.RNG) int {
	tasks := h.node.cfg.Tasks
	nodes := h.aliveMembers()
	if len(nodes) == 0 || len(tasks) == 0 {
		return 0
	}
	prob := h.buildProblem(tasks, nodes)
	sol, err := bqp.SolveAnneal(prob, rng, 20_000)
	if err != nil {
		return 0
	}
	h.stats.Reoptimizations++
	moved := 0
	for ti, spec := range tasks {
		target := nodes[sol.Assign[ti]]
		if h.active[spec.ID] == target {
			continue
		}
		old := h.active[spec.ID]
		// Ship state to the target if it is not a pre-provisioned
		// candidate (it will instantiate from the shared spec).
		if old != 0 && old != h.node.id {
			h.CommandMigration(spec.ID, old, target)
		} else if old == h.node.id {
			_ = h.node.MigrateTask(spec.ID, target)
		}
		h.promote(spec.ID, target, old)
		moved++
	}
	return moved
}

// aliveMembers lists members heard recently (the head itself always
// counts), excluding the gateway. The window matches the silent-fault
// detection horizon so a crashed node is never re-selected.
func (h *Head) aliveMembers() []radio.NodeID {
	window := h.node.minPeriod() * time.Duration(maxSilenceWindow(h.node.cfg))
	var out []radio.NodeID
	for _, id := range h.Members() {
		if id == h.node.cfg.Gateway {
			continue
		}
		if h.alive(id, window) {
			out = append(out, id)
		}
	}
	return out
}

func maxSilenceWindow(cfg VCConfig) int {
	max := 1
	for _, t := range cfg.Tasks {
		if t.SilenceWindow > max {
			max = t.SilenceWindow
		}
	}
	return max
}

// buildProblem constructs the BQP instance: placement cost follows the
// candidate priority order (non-candidates pay a migration premium), a
// pairwise penalty discourages stacking masters on one node, and CPU
// capacity bounds utilization.
func (h *Head) buildProblem(tasks []TaskSpec, nodes []radio.NodeID) *bqp.Problem {
	p := &bqp.Problem{
		Cost: make([][]float64, len(tasks)),
		Pair: make([][]float64, len(tasks)),
		Util: make([]float64, len(tasks)),
		Cap:  make([]float64, len(nodes)),
	}
	for ni := range nodes {
		p.Cap[ni] = 1
	}
	for ti, spec := range tasks {
		p.Cost[ti] = make([]float64, len(nodes))
		p.Pair[ti] = make([]float64, len(tasks))
		p.Util[ti] = spec.RTOSTask().Utilization()
		for ni, node := range nodes {
			cost := float64(len(spec.Candidates)) + 2 // migration premium
			for ci, cand := range spec.Candidates {
				if cand == node {
					cost = float64(ci)
					break
				}
			}
			p.Cost[ti][ni] = cost
		}
	}
	// Mild spreading penalty between every task pair.
	for ti := range tasks {
		for tj := ti + 1; tj < len(tasks); tj++ {
			p.Pair[ti][tj] = 0.5
			p.Pair[tj][ti] = 0.5
		}
	}
	// Guard against degenerate instances.
	for ti := range tasks {
		feasible := false
		for ni := range nodes {
			if !math.IsInf(p.Cost[ti][ni], 1) {
				feasible = true
				break
			}
		}
		if !feasible {
			p.Cost[ti][0] = 0
		}
	}
	return p
}
