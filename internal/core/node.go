package core

import (
	"fmt"
	"sort"
	"time"

	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/rtos"
	"evm/internal/sim"
	"evm/internal/wire"
)

// NodeStats counts one node's EVM activity.
type NodeStats struct {
	CyclesRun       int
	ActuationsSent  int
	HealthSent      int
	FaultsReported  int
	RoleChangesSeen int
	MigrationsIn    int
	MigrationsOut   int
	StaleInputs     int
	SendErrors      int
	LogicErrors     int
}

// replica is one node's copy of a control task.
type replica struct {
	spec  TaskSpec
	logic TaskLogic
	role  wire.Role

	outSeq     uint32
	lastOutput float64
	haveOutput bool

	// Observation of the current primary (passive state sharing).
	activeNode     radio.NodeID
	lastPrimaryOut float64
	havePrimary    bool
	lastPrimaryAt  time.Duration
	deviationCount int
	lastDevSeq     uint32 // primary health seq already judged
	cooldownUntil  time.Duration

	roleSeq uint32 // last applied role-change sequence
	enabled bool   // mode gating

	// OTA staging (see ota.go): staged holds an attested-but-inactive
	// capsule logic awaiting the rollout commit point; prev retains the
	// previously active logic (state intact) for rollback.
	staged        TaskLogic
	stagedVersion uint8
	prev          TaskLogic
	prevVersion   uint8
}

// Node is the EVM runtime on one physical node: it executes its task
// replicas every control cycle, publishes health assessments, passively
// observes primaries when in Backup role, reports faults to the VC head,
// and accepts migrated code/state.
type Node struct {
	eng   *sim.Engine
	link  *rtlink.Link
	net   *rtlink.Network
	cfg   VCConfig
	id    radio.NodeID
	graph *TransferGraph

	replicas map[string]*replica
	taskset  rtos.TaskSet
	head     *Head
	stats    NodeStats
	watchdog *sim.Ticker

	// computeFaults forces a replica's output to a fixed wrong value
	// (Fig. 6 failure injection: Ctrl-A "sets a wrong valve output
	// level, 75% instead of 11.48%").
	computeFaults map[string]float64

	mode        uint8
	modeTasks   map[uint8]map[string]bool // mode -> enabled task IDs
	pendingMode *wire.ModeChange

	// migrationSink is the facade's event-bus observer for completed
	// migrations (MigrationEvent on evm.Cell.Events).
	migrationSink func(taskID string, from radio.NodeID)

	// lastSensorAt is when the node last heard the gateway.
	lastSensorAt time.Duration
}

// SetMigrationSink registers the facade-level migration observer.
func (n *Node) SetMigrationSink(fn func(taskID string, from radio.NodeID)) {
	n.migrationSink = fn
}

// NewNode builds the EVM runtime for one member node. The node creates a
// replica for every task that lists it as a candidate.
func NewNode(net *rtlink.Network, link *rtlink.Link, cfg VCConfig) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := cfg.Transfers
	if edges == nil {
		edges = cfg.DefaultTransfers()
	}
	graph, err := NewTransferGraph(edges)
	if err != nil {
		return nil, err
	}
	n := &Node{
		eng:           net.Engine(),
		link:          link,
		net:           net,
		cfg:           cfg,
		id:            link.ID(),
		graph:         graph,
		replicas:      make(map[string]*replica),
		computeFaults: make(map[string]float64),
		modeTasks:     make(map[uint8]map[string]bool),
	}
	for _, spec := range cfg.Tasks {
		ro := cfg.InitialRole(spec.ID, n.id)
		if !ro.Holds {
			continue
		}
		logic, err := spec.MakeLogic()
		if err != nil {
			return nil, fmt.Errorf("task %s logic: %w", spec.ID, err)
		}
		role := wire.RoleBackup
		if ro.Active {
			role = wire.RoleActive
		}
		grown, ok := rtos.Admit(n.taskset, spec.RTOSTask(), rtos.TestRTA)
		if !ok {
			return nil, fmt.Errorf("core: node %v cannot schedule task %s", n.id, spec.ID)
		}
		n.taskset = grown
		n.replicas[spec.ID] = &replica{
			spec:       spec,
			logic:      logic,
			role:       role,
			activeNode: spec.Candidates[0],
			enabled:    true,
		}
	}
	link.SetHandler(n.onMessage)
	if n.id == cfg.Head {
		n.head = newHead(n)
	}
	return n, nil
}

// ID returns the node's network identity.
func (n *Node) ID() radio.NodeID { return n.id }

// Stats returns a copy of the node counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Head returns the head runtime if this node is the VC head.
func (n *Node) Head() *Head { return n.head }

// Link exposes the underlying RT-Link layer.
func (n *Node) Link() *rtlink.Link { return n.link }

// Graph returns the VC's object-transfer graph.
func (n *Node) Graph() *TransferGraph { return n.graph }

// TaskSet returns the node's admitted real-time task set.
func (n *Node) TaskSet() rtos.TaskSet { return append(rtos.TaskSet(nil), n.taskset...) }

// Role returns the node's role for a task (RoleDormant if no replica).
func (n *Node) Role(taskID string) wire.Role {
	if r, ok := n.replicas[taskID]; ok {
		return r.role
	}
	return wire.RoleDormant
}

// LastOutput returns the node's latest computed output for a task.
func (n *Node) LastOutput(taskID string) (float64, bool) {
	if r, ok := n.replicas[taskID]; ok {
		return r.lastOutput, r.haveOutput
	}
	return 0, false
}

// SetModeTasks registers the task set active in a mode. Tasks of
// unregistered modes stay enabled (mode 0 is "everything on").
func (n *Node) SetModeTasks(mode uint8, taskIDs []string) {
	m := make(map[string]bool, len(taskIDs))
	for _, id := range taskIDs {
		m[id] = true
	}
	n.modeTasks[mode] = m
}

// Mode returns the node's current operating mode.
func (n *Node) Mode() uint8 { return n.mode }

// InjectComputeFault makes the node's replica output a fixed wrong value.
func (n *Node) InjectComputeFault(taskID string, wrongOutput float64) {
	n.computeFaults[taskID] = wrongOutput
}

// ClearComputeFault removes the injected fault.
func (n *Node) ClearComputeFault(taskID string) {
	delete(n.computeFaults, taskID)
}

// Start launches the per-node silent-primary watchdog.
func (n *Node) Start() {
	period := n.minPeriod()
	n.watchdog = n.eng.Every(period, n.watchdogTick)
}

// Stop halts the watchdog.
func (n *Node) Stop() {
	if n.watchdog != nil {
		n.watchdog.Stop()
	}
	if n.head != nil {
		n.head.stop()
	}
}

func (n *Node) minPeriod() time.Duration {
	min := time.Duration(0)
	for _, r := range n.sortedReplicas() {
		if min == 0 || r.spec.Period < min {
			min = r.spec.Period
		}
	}
	if min == 0 {
		min = 250 * time.Millisecond
	}
	return min
}

// sortedReplicas returns the node's replicas in task-ID order. Every
// behavior-visible iteration uses this so runs are reproducible
// regardless of map layout.
func (n *Node) sortedReplicas() []*replica {
	out := make([]*replica, 0, len(n.replicas))
	for _, r := range n.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID < out[j].spec.ID })
	return out
}

// send transmits a message, dispatching locally when the destination is
// this node (the head talks to itself without the radio).
func (n *Node) send(msg rtlink.Message) {
	if msg.Dst == n.id {
		msg.Src = n.id
		n.onMessage(msg)
		return
	}
	if err := n.link.Send(msg); err != nil {
		n.stats.SendErrors++
	}
}

// onMessage is the RT-Link delivery handler.
func (n *Node) onMessage(msg rtlink.Message) {
	switch msg.Kind {
	case wire.KindSensor:
		n.onSensor(msg)
	case wire.KindHealth:
		n.onHealth(msg)
	case wire.KindRoleChange:
		n.onRoleChange(msg)
	case wire.KindFaultReport:
		if n.head != nil {
			n.head.onFaultReport(msg)
		}
	case wire.KindJoin:
		if n.head != nil {
			n.head.onJoin(msg)
		}
	case wire.KindModeChange:
		n.onModeChange(msg)
	case wire.KindMigrateCmd:
		n.onMigrateCmd(msg)
	case wire.KindCapsule:
		n.onCapsule(msg)
	case wire.KindState:
		n.onState(msg)
	case wire.KindStateSync:
		n.onStateSync(msg)
	}
}

// onSensor runs one control cycle for every replica fed by the snapshot.
func (n *Node) onSensor(msg rtlink.Message) {
	snap, err := wire.DecodeSnapshot(msg.Payload)
	if err != nil {
		return
	}
	n.lastSensorAt = n.eng.Now()
	n.applyPendingMode()
	byPort := make(map[uint8]float64, len(snap.Readings))
	for _, rd := range snap.Readings {
		byPort[rd.Port] = rd.Value
	}
	ran := false
	for _, r := range n.sortedReplicas() {
		if !r.enabled {
			continue
		}
		if r.role != wire.RoleActive && r.role != wire.RoleBackup {
			continue
		}
		input, ok := byPort[r.spec.SensorPort]
		if !ok {
			continue
		}
		// Temporal-conditional transfer: discard stale data (§3.1.2).
		if r.spec.MaxInputAge > 0 && snap.At > 0 && n.eng.Now()-snap.At > r.spec.MaxInputAge {
			n.stats.StaleInputs++
			continue
		}
		n.runCycle(r, input)
		ran = true
	}
	if ran {
		n.sendHealthBundle()
	}
}

func (n *Node) runCycle(r *replica, input float64) {
	dt := r.spec.Period.Seconds()
	out, err := r.logic.Step(input, dt)
	if err != nil {
		n.stats.LogicErrors++
		return
	}
	if wrong, faulty := n.computeFaults[r.spec.ID]; faulty {
		out = wrong
	}
	r.lastOutput = out
	r.haveOutput = true
	r.outSeq++
	n.stats.CyclesRun++

	if r.role == wire.RoleActive {
		n.sendActuate(r)
		if r.spec.ReplicateEvery > 0 && r.outSeq%uint32(r.spec.ReplicateEvery) == 0 {
			n.replicateState(r)
		}
	}
}

// replicateState implements active state sharing: the primary ships its
// snapshot to every other candidate so backups stay consistent even when
// they missed cycles.
func (n *Node) replicateState(r *replica) {
	blob, err := r.logic.Snapshot()
	if err != nil {
		return
	}
	payload, err := wire.StateXfer{TaskID: r.spec.ID, Seq: r.outSeq, Blob: blob}.Encode()
	if err != nil {
		return
	}
	for _, cand := range r.spec.Candidates {
		if cand == n.id {
			continue
		}
		n.send(rtlink.Message{Dst: cand, Kind: wire.KindStateSync, Payload: payload})
	}
}

// onStateSync applies an active-replication snapshot to a backup replica.
func (n *Node) onStateSync(msg rtlink.Message) {
	sx, err := wire.DecodeStateXfer(msg.Payload)
	if err != nil {
		return
	}
	r, ok := n.replicas[sx.TaskID]
	if !ok || r.role != wire.RoleBackup {
		return
	}
	// Only accept state from the node we believe is the primary.
	if msg.Src != r.activeNode {
		return
	}
	if err := r.logic.Restore(sx.Blob); err != nil {
		return
	}
	r.outSeq = sx.Seq
}

func (n *Node) sendActuate(r *replica) {
	payload, err := wire.Actuate{
		Port:   r.spec.ActuatorPort,
		Value:  r.lastOutput,
		TaskID: r.spec.ID,
		Seq:    r.outSeq,
	}.Encode()
	if err != nil {
		return
	}
	n.send(rtlink.Message{Dst: n.cfg.Gateway, Kind: wire.KindActuate, Payload: payload})
	n.stats.ActuationsSent++
}

// sendHealthBundle broadcasts one health-assessment frame covering every
// enabled replica on this node.
func (n *Node) sendHealthBundle() {
	battery := 1.0
	if b := n.link.Radio().Battery(); b != nil {
		battery = b.RemainingFraction()
	}
	records := make([]wire.HealthRecord, 0, len(n.replicas))
	for _, r := range n.sortedReplicas() {
		if !r.enabled {
			continue
		}
		if r.role != wire.RoleActive && r.role != wire.RoleBackup {
			continue
		}
		records = append(records, wire.HealthRecord{
			TaskID: r.spec.ID,
			Role:   r.role,
			Seq:    r.outSeq,
			Output: r.lastOutput,
			HasOut: r.haveOutput,
		})
	}
	if len(records) == 0 {
		return
	}
	payload, err := wire.HealthBundle{
		Node:    uint16(n.id),
		Battery: battery,
		Records: records,
	}.Encode()
	if err != nil {
		return
	}
	n.send(rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindHealth, Payload: payload})
	n.stats.HealthSent++
}

// onHealth implements the passive observation side of the health-
// assessment transfer: a backup compares the primary's announced output
// with its own computation.
func (n *Node) onHealth(msg rtlink.Message) {
	hb, err := wire.DecodeHealthBundle(msg.Payload)
	if err != nil {
		return
	}
	if n.head != nil {
		n.head.onHealthBundle(hb)
	}
	for _, rec := range hb.Records {
		for _, r := range n.sortedReplicas() {
			if r.spec.ID != rec.TaskID {
				continue
			}
			if radio.NodeID(hb.Node) != r.activeNode || hb.Node == uint16(n.id) {
				continue
			}
			r.lastPrimaryAt = n.eng.Now()
			if !rec.HasOut {
				continue
			}
			r.lastPrimaryOut = rec.Output
			r.havePrimary = true
			if r.role == wire.RoleBackup {
				n.checkDeviation(r, rec.Seq)
			}
		}
	}
}

// checkDeviation judges one primary health record against the backup's
// own latest computation. The primary's health for cycle k arrives after
// the backup computed cycle k in the same TDMA frame, so the comparison
// pairs fresh outputs; each primary sequence number is judged once.
func (n *Node) checkDeviation(r *replica, primarySeq uint32) {
	if !r.haveOutput || !r.havePrimary {
		return
	}
	if primarySeq == r.lastDevSeq {
		return
	}
	r.lastDevSeq = primarySeq
	dev := r.lastPrimaryOut - r.lastOutput
	if dev < 0 {
		dev = -dev
	}
	if dev > r.spec.DeviationTol {
		r.deviationCount++
	} else {
		r.deviationCount = 0
	}
	if r.deviationCount >= r.spec.DeviationWindow {
		n.reportFault(r, wire.FaultOutputDeviation, dev)
	}
}

// watchdogTick detects silent primaries (crash faults).
func (n *Node) watchdogTick() {
	now := n.eng.Now()
	for _, r := range n.sortedReplicas() {
		if r.role != wire.RoleBackup || !r.enabled {
			continue
		}
		if r.lastPrimaryAt == 0 {
			// Never heard: only alarm once sensor traffic is flowing.
			if n.lastSensorAt == 0 {
				continue
			}
			r.lastPrimaryAt = n.lastSensorAt
			continue
		}
		silence := now - r.lastPrimaryAt
		if silence > time.Duration(r.spec.SilenceWindow)*r.spec.Period {
			n.reportFault(r, wire.FaultSilent, silence.Seconds())
		}
	}
}

func (n *Node) reportFault(r *replica, reason wire.FaultReason, magnitude float64) {
	if n.eng.Now() < r.cooldownUntil {
		return
	}
	r.cooldownUntil = n.eng.Now() + 4*time.Duration(r.spec.SilenceWindow)*r.spec.Period
	r.deviationCount = 0
	payload, err := wire.FaultReport{
		Reporter:  uint16(n.id),
		Suspect:   uint16(r.activeNode),
		TaskID:    r.spec.ID,
		Reason:    reason,
		Deviation: magnitude,
		Cycles:    uint16(r.spec.DeviationWindow),
	}.Encode()
	if err != nil {
		return
	}
	n.send(rtlink.Message{Dst: n.cfg.Head, Kind: wire.KindFaultReport, Payload: payload})
	n.stats.FaultsReported++
}

// onRoleChange applies the head's arbitration decision.
func (n *Node) onRoleChange(msg rtlink.Message) {
	rc, err := wire.DecodeRoleChange(msg.Payload)
	if err != nil {
		return
	}
	n.stats.RoleChangesSeen++
	for _, r := range n.sortedReplicas() {
		if r.spec.ID != rc.TaskID {
			continue
		}
		if rc.Seq != 0 && rc.Seq <= r.roleSeq {
			continue // stale decision
		}
		r.roleSeq = rc.Seq
		if rc.Role == wire.RoleActive {
			// Everyone learns the new primary.
			r.activeNode = radio.NodeID(rc.Node)
			r.havePrimary = false
			r.deviationCount = 0
			r.lastPrimaryAt = n.eng.Now()
		}
		if radio.NodeID(rc.Node) == n.id {
			r.role = rc.Role
		} else if rc.Role == wire.RoleActive && r.role == wire.RoleActive {
			// Someone else became primary: demote self to backup unless
			// a separate decision says otherwise.
			r.role = wire.RoleBackup
		}
	}
}

// onModeChange schedules a synchronized task-set switch.
func (n *Node) onModeChange(msg rtlink.Message) {
	mc, err := wire.DecodeModeChange(msg.Payload)
	if err != nil {
		return
	}
	n.pendingMode = &mc
	n.applyPendingMode()
}

func (n *Node) applyPendingMode() {
	if n.pendingMode == nil {
		return
	}
	if n.net.Frame() < n.pendingMode.AtFrame {
		return
	}
	n.mode = n.pendingMode.Mode
	n.pendingMode = nil
	enabled, ok := n.modeTasks[n.mode]
	for _, r := range n.sortedReplicas() {
		if !ok {
			r.enabled = true
			continue
		}
		r.enabled = enabled[r.spec.ID]
	}
}
