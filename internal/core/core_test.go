package core

import (
	"testing"
	"time"

	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/sim"
	"evm/internal/wire"
)

// Node IDs used by the test rig.
const (
	gwID    radio.NodeID = 1
	ctrlA   radio.NodeID = 2
	ctrlB   radio.NodeID = 3
	headID  radio.NodeID = 4
	spareID radio.NodeID = 5
)

// rig is a miniature Virtual Component: a sensor-broadcasting gateway
// stub, two candidate controllers, a separate head and a spare node.
type rig struct {
	eng        *sim.Engine
	net        *rtlink.Network
	med        *radio.Medium
	nodes      map[radio.NodeID]*Node
	gwLink     *rtlink.Link
	actuations []actRecord
	sensor     func() float64
	ticker     *sim.Ticker
	cfg        VCConfig
}

type actRecord struct {
	src radio.NodeID
	act wire.Actuate
	at  time.Duration
}

func pidFactory() (TaskLogic, error) {
	return NewPIDLogic(PIDParams{
		Kp: 2, Ki: 0.5, Kd: 0,
		OutMin: 0, OutMax: 100,
		Setpoint: 50,
		CutoffHz: 0.4, RateHz: 4,
	})
}

func testSpec() TaskSpec {
	return TaskSpec{
		ID:              "lts",
		SensorPort:      0,
		ActuatorPort:    10,
		Period:          250 * time.Millisecond,
		WCET:            5 * time.Millisecond,
		Candidates:      []radio.NodeID{ctrlA, ctrlB},
		DeviationTol:    5,
		DeviationWindow: 3,
		SilenceWindow:   8,
		MakeLogic:       pidFactory,
	}
}

func newRig(t *testing.T, cfg VCConfig) *rig {
	t.Helper()
	eng := sim.New()
	rcfg := radio.DefaultConfig()
	rcfg.RefPER = 0
	rcfg.Burst = radio.GilbertElliott{}
	med := radio.NewMedium(eng, sim.NewRNG(77), rcfg)
	ids := []radio.NodeID{gwID, ctrlA, ctrlB, headID, spareID}
	for i, id := range ids {
		if _, err := med.Attach(id, radio.Position{X: float64(i * 3)}, radio.NewBattery(2600), radio.DefaultEnergyModel()); err != nil {
			t.Fatal(err)
		}
	}
	lcfg := rtlink.DefaultConfig()
	sched, err := rtlink.BuildMeshScheduleK(ids, lcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rtlink.NewNetwork(med, lcfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		eng:    eng,
		net:    net,
		med:    med,
		nodes:  make(map[radio.NodeID]*Node),
		sensor: func() float64 { return 50 },
		cfg:    cfg,
	}
	for _, id := range ids {
		link, err := net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		if id == gwID {
			r.gwLink = link
			link.SetHandler(func(m rtlink.Message) {
				if m.Kind == wire.KindActuate {
					act, err := wire.DecodeActuate(m.Payload)
					if err == nil {
						r.actuations = append(r.actuations, actRecord{src: m.Src, act: act, at: eng.Now()})
					}
				}
			})
			continue
		}
		node, err := NewNode(net, link, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		r.nodes[id] = node
	}
	// The gateway stub broadcasts the sensor snapshot every 250 ms.
	r.ticker = eng.Every(250*time.Millisecond, func() {
		payload, err := wire.EncodeSensors([]wire.SensorReading{{Port: 0, Value: r.sensor()}})
		if err != nil {
			return
		}
		_ = r.gwLink.Send(rtlink.Message{Dst: radio.Broadcast, Kind: wire.KindSensor, Payload: payload})
	})
	net.Start()
	return r
}

func defaultCfg() VCConfig {
	return VCConfig{
		Name:         "test-vc",
		Head:         headID,
		Gateway:      gwID,
		Tasks:        []TaskSpec{testSpec()},
		DormantAfter: 2 * time.Second,
	}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	_ = r.eng.RunUntil(r.eng.Now() + d)
}

func (r *rig) actuationsFrom(id radio.NodeID) int {
	n := 0
	for _, a := range r.actuations {
		if a.src == id {
			n++
		}
	}
	return n
}

func TestSteadyStateOnlyPrimaryActuates(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 10*time.Second)
	if r.actuationsFrom(ctrlA) == 0 {
		t.Fatal("primary never actuated")
	}
	if r.actuationsFrom(ctrlB) != 0 {
		t.Fatal("backup actuated in steady state")
	}
	a := r.nodes[ctrlA]
	b := r.nodes[ctrlB]
	if a.Role("lts") != wire.RoleActive || b.Role("lts") != wire.RoleBackup {
		t.Fatalf("roles: A=%v B=%v", a.Role("lts"), b.Role("lts"))
	}
	if a.Stats().HealthSent == 0 || b.Stats().HealthSent == 0 {
		t.Fatal("health assessments not flowing")
	}
	if b.Stats().FaultsReported != 0 {
		t.Fatal("false fault report in steady state")
	}
}

func TestBackupComputesInLockstep(t *testing.T) {
	// Passive state sharing: the backup runs the same law on the same
	// inputs, so its outputs track the primary's.
	r := newRig(t, defaultCfg())
	r.run(t, 10*time.Second)
	outA, okA := r.nodes[ctrlA].LastOutput("lts")
	outB, okB := r.nodes[ctrlB].LastOutput("lts")
	if !okA || !okB {
		t.Fatal("missing outputs")
	}
	diff := outA - outB
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("backup diverged: A=%f B=%f", outA, outB)
	}
}

func TestComputeFaultTriggersFailover(t *testing.T) {
	// The Fig. 6 scenario: the primary starts emitting a wrong output;
	// the backup detects the deviation, reports it, and the head
	// arbitrates the switch.
	r := newRig(t, defaultCfg())
	var failoverAt time.Duration
	var from, to radio.NodeID
	r.nodes[headID].Head().SetFailoverSink(func(task string, f, tn radio.NodeID) {
		failoverAt = r.eng.Now()
		from, to = f, tn
	})
	r.run(t, 5*time.Second)
	faultAt := r.eng.Now()
	r.nodes[ctrlA].InjectComputeFault("lts", 75)
	r.run(t, 10*time.Second)

	if failoverAt == 0 {
		t.Fatal("no failover occurred")
	}
	if from != ctrlA || to != ctrlB {
		t.Fatalf("failover %v -> %v, want A -> B", from, to)
	}
	detect := failoverAt - faultAt
	// 3-cycle deviation window at 250 ms plus messaging: ~1-3 s.
	if detect > 4*time.Second {
		t.Fatalf("failover took %v", detect)
	}
	if r.nodes[ctrlB].Role("lts") != wire.RoleActive {
		t.Fatalf("B role = %v after failover", r.nodes[ctrlB].Role("lts"))
	}
	// Actuations now come from B with healthy (non-75) outputs.
	before := len(r.actuations)
	r.run(t, 3*time.Second)
	for _, a := range r.actuations[before:] {
		if a.src == ctrlB && a.act.Value < 70 {
			return // healthy output restored
		}
	}
	t.Fatal("no healthy actuations from the new primary")
}

func TestDemotedPrimaryGoesIndicatorThenDormant(t *testing.T) {
	r := newRig(t, defaultCfg())
	fired := false
	r.nodes[headID].Head().SetFailoverSink(func(string, radio.NodeID, radio.NodeID) { fired = true })
	r.run(t, 3*time.Second)
	r.nodes[ctrlA].InjectComputeFault("lts", 75)
	for i := 0; i < 20 && !fired; i++ {
		r.run(t, 500*time.Millisecond)
	}
	if !fired {
		t.Fatal("no failover")
	}
	r.run(t, 500*time.Millisecond) // let the Indicator role change land
	if got := r.nodes[ctrlA].Role("lts"); got != wire.RoleIndicator {
		t.Fatalf("old primary role = %v, want indicator", got)
	}
	r.run(t, 3*time.Second) // DormantAfter = 2s
	if got := r.nodes[ctrlA].Role("lts"); got != wire.RoleDormant {
		t.Fatalf("old primary role = %v, want dormant", got)
	}
}

func TestSilentCrashTriggersFailover(t *testing.T) {
	r := newRig(t, defaultCfg())
	fired := false
	r.nodes[headID].Head().SetFailoverSink(func(string, radio.NodeID, radio.NodeID) { fired = true })
	r.run(t, 5*time.Second)
	r.nodes[ctrlA].Link().Radio().Fail()
	r.run(t, 15*time.Second)
	if !fired {
		t.Fatal("silent crash not detected")
	}
	if r.nodes[ctrlB].Role("lts") != wire.RoleActive {
		t.Fatalf("backup role = %v after crash failover", r.nodes[ctrlB].Role("lts"))
	}
	if r.actuationsFrom(ctrlB) == 0 {
		t.Fatal("new primary not actuating")
	}
}

func TestStateMigrationToSpareNode(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 5*time.Second)
	migrated := ""
	r.nodes[spareID].SetMigrationSink(func(task string, _ radio.NodeID) { migrated = task })
	if err := r.nodes[ctrlA].MigrateTask("lts", spareID); err != nil {
		t.Fatal(err)
	}
	r.run(t, 3*time.Second)
	if migrated != "lts" {
		t.Fatal("migration did not complete")
	}
	if r.nodes[spareID].Role("lts") != wire.RoleBackup {
		t.Fatalf("spare role = %v, want backup", r.nodes[spareID].Role("lts"))
	}
	if r.nodes[spareID].Stats().MigrationsIn != 1 {
		t.Fatal("MigrationsIn not counted")
	}
	// The spare now participates in control cycles.
	r.run(t, 2*time.Second)
	if _, ok := r.nodes[spareID].LastOutput("lts"); !ok {
		t.Fatal("migrated replica not computing")
	}
}

func TestHeadCommandedMigration(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 3*time.Second)
	r.nodes[headID].Head().CommandMigration("lts", ctrlA, spareID)
	r.run(t, 3*time.Second)
	if r.nodes[spareID].Stats().MigrationsIn != 1 {
		t.Fatal("head-commanded migration did not land")
	}
	if r.nodes[ctrlA].Stats().MigrationsOut != 1 {
		t.Fatal("holder did not record migration out")
	}
}

func TestMigratedStateMatchesSource(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 5*time.Second)
	// Stop cycles so state stays frozen during comparison.
	r.ticker.Stop()
	r.run(t, time.Second)
	if err := r.nodes[ctrlA].MigrateTask("lts", spareID); err != nil {
		t.Fatal(err)
	}
	r.run(t, 3*time.Second)
	src, err := r.nodes[ctrlA].replicas["lts"].logic.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := r.nodes[spareID].replicas["lts"].logic.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(dst) {
		t.Fatal("migrated state differs from source")
	}
}

func TestRoleChangeStaleSeqIgnored(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 2*time.Second)
	n := r.nodes[ctrlB]
	apply := func(seq uint32, role wire.Role) {
		payload, err := wire.RoleChange{Node: uint16(ctrlB), TaskID: "lts", Role: role, Seq: seq}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		n.onRoleChange(rtlink.Message{Src: headID, Kind: wire.KindRoleChange, Payload: payload})
	}
	apply(10, wire.RoleActive)
	if n.Role("lts") != wire.RoleActive {
		t.Fatal("role change not applied")
	}
	apply(5, wire.RoleDormant) // stale
	if n.Role("lts") != wire.RoleActive {
		t.Fatal("stale role change applied")
	}
}

func TestModeChangeDisablesTask(t *testing.T) {
	cfg := defaultCfg()
	second := testSpec()
	second.ID = "aux"
	second.SensorPort = 0
	second.ActuatorPort = 11
	cfg.Tasks = append(cfg.Tasks, second)
	r := newRig(t, cfg)
	for _, n := range r.nodes {
		n.SetModeTasks(1, []string{"lts"}) // mode 1: aux off
	}
	r.run(t, 3*time.Second)
	r.nodes[headID].Head().SetMode(1, 2)
	r.run(t, 3*time.Second)
	mark := len(r.actuations)
	r.run(t, 3*time.Second)
	for _, a := range r.actuations[mark:] {
		if a.act.TaskID == "aux" {
			t.Fatal("disabled task still actuating after mode change")
		}
	}
	// lts still runs.
	found := false
	for _, a := range r.actuations[mark:] {
		if a.act.TaskID == "lts" {
			found = true
		}
	}
	if !found {
		t.Fatal("enabled task stopped across mode change")
	}
	if r.nodes[ctrlA].Mode() != 1 {
		t.Fatalf("mode = %d, want 1", r.nodes[ctrlA].Mode())
	}
}

func TestEnergyFaultProactiveMigration(t *testing.T) {
	r := newRig(t, defaultCfg())
	fired := false
	r.nodes[headID].Head().SetFailoverSink(func(string, radio.NodeID, radio.NodeID) { fired = true })
	r.run(t, 2*time.Second)
	// Drain the primary's battery below the 5% threshold.
	b := r.nodes[ctrlA].Link().Radio().Battery()
	b.Drain(2600*0.97, time.Hour)
	r.run(t, 3*time.Second)
	if !fired {
		t.Fatal("low battery did not trigger proactive failover")
	}
	if r.nodes[ctrlB].Role("lts") != wire.RoleActive {
		t.Fatal("backup not promoted on energy fault")
	}
}

func TestQoSEvaluation(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 3*time.Second)
	nodes := []*Node{r.nodes[ctrlA], r.nodes[ctrlB], r.nodes[headID], r.nodes[spareID]}
	rep := EvaluateQoS(r.cfg, nodes)
	if rep.CoverageRatio != 1 || rep.Redundant != 1 {
		t.Fatalf("steady QoS = %+v", rep)
	}
	// Kill both candidates: coverage collapses.
	r.nodes[ctrlA].Link().Radio().Fail()
	r.nodes[ctrlB].Link().Radio().Fail()
	rep = EvaluateQoS(r.cfg, nodes)
	if rep.CoverageRatio != 0 {
		t.Fatalf("QoS after double failure = %+v", rep)
	}
}

func TestReoptimizeAfterNodeLoss(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 5*time.Second)
	// Kill the current primary; the silent-fault watchdog moves the
	// master, and a subsequent reoptimization must NOT move it back to
	// the dead node.
	r.nodes[ctrlA].Link().Radio().Fail()
	r.run(t, 5*time.Second)
	active, ok := r.nodes[headID].Head().ActiveNode("lts")
	if !ok || active == ctrlA {
		t.Fatalf("master still on dead node after crash: %v", active)
	}
	moved := r.nodes[headID].Head().Reoptimize(sim.NewRNG(5))
	if moved != 0 {
		t.Fatalf("reoptimize churned a correct assignment (%d moves)", moved)
	}
	active, _ = r.nodes[headID].Head().ActiveNode("lts")
	if active == ctrlA {
		t.Fatal("reoptimize moved the master back to a dead node")
	}
}

func TestReoptimizeRestoresPreferredPlacement(t *testing.T) {
	// Park the master on a non-candidate spare, then let runtime
	// optimization pull it back to the preferred (cheapest) candidate.
	r := newRig(t, defaultCfg())
	r.run(t, 5*time.Second)
	h := r.nodes[headID].Head()
	h.promote("lts", spareID, ctrlA)
	r.run(t, 2*time.Second)
	if a, _ := h.ActiveNode("lts"); a != spareID {
		t.Fatalf("setup failed: active = %v", a)
	}
	moved := h.Reoptimize(sim.NewRNG(5))
	r.run(t, 2*time.Second)
	if moved == 0 {
		t.Fatal("reoptimize left the master on an expensive non-candidate")
	}
	if a, _ := h.ActiveNode("lts"); a != ctrlA {
		t.Fatalf("reoptimize chose %v, want preferred candidate %v", a, ctrlA)
	}
}

func TestJoinExpandsMembership(t *testing.T) {
	r := newRig(t, defaultCfg())
	r.run(t, 2*time.Second)
	payload, err := wire.Join{Node: uint16(spareID), CPUCapacity: 0.8, Battery: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nodes[spareID].Link().Send(rtlink.Message{Dst: headID, Kind: wire.KindJoin, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 2*time.Second)
	h := r.nodes[headID].Head()
	if h.Stats().Joins != 1 {
		t.Fatal("join not processed")
	}
	found := false
	for _, m := range h.Members() {
		if m == spareID {
			found = true
		}
	}
	if !found {
		t.Fatal("spare not in membership")
	}
}

func TestLossyChannelStillFailsOver(t *testing.T) {
	// With 20% packet loss the failover must still complete, just
	// possibly slower.
	r := newRig(t, defaultCfg())
	r.med.ForcePER(0.2)
	fired := false
	r.nodes[headID].Head().SetFailoverSink(func(string, radio.NodeID, radio.NodeID) { fired = true })
	r.run(t, 5*time.Second)
	r.nodes[ctrlA].InjectComputeFault("lts", 75)
	r.run(t, 30*time.Second)
	if !fired {
		t.Fatal("failover lost under 20% PER")
	}
}
