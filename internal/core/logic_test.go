package core

import (
	"math"
	"testing"
	"time"

	"evm/internal/radio"
	"evm/internal/rtlink"
	"evm/internal/vm"
	"evm/internal/wire"
)

func TestPIDLogicStepAndSnapshot(t *testing.T) {
	a, err := pidFactory()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := a.Step(45+float64(i%3), 0.25); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pidFactory()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(blob); err != nil {
		t.Fatal(err)
	}
	// Identical futures after restore.
	for i := 0; i < 10; i++ {
		in := 48.0 + float64(i)
		outA, err := a.Step(in, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		outB, err := b.Step(in, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if outA != outB {
			t.Fatalf("step %d: %f vs %f", i, outA, outB)
		}
	}
}

func TestPIDLogicRestoreRejectsGarbage(t *testing.T) {
	l, err := pidFactory()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
}

// proportionalCapsule returns byte code implementing out = Kp*(SP - in)
// in Q16.16: setpoint 50, Kp 2, clamped to [0,100].
func proportionalCapsule(t *testing.T) vm.Capsule {
	t.Helper()
	src := `
	PUSHQ 50.0
	IN 0
	SUB        ; error = sp - in  (Q16.16)
	PUSHQ 2.0
	MULQ       ; Kp * error
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`
	code, err := vm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return vm.Capsule{TaskID: "lts", Version: 1, Code: code}
}

func TestVMLogicControlLaw(t *testing.T) {
	l, err := NewVMLogic(proportionalCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := l.Step(45, 0.25) // error 5 * 2 = 10
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out-10) > 0.01 {
		t.Fatalf("out = %f, want 10", out)
	}
	out, err = l.Step(100, 0.25) // error -50*2 = -100, clamp 0
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Fatalf("clamped out = %f, want 0", out)
	}
}

func TestVMLogicSnapshotRestore(t *testing.T) {
	a, err := NewVMLogic(proportionalCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(40, 0.25); err != nil {
		t.Fatal(err)
	}
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVMLogic(proportionalCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(blob); err != nil {
		t.Fatal(err)
	}
	outA, err := a.Step(42, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Step(42, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if outA != outB {
		t.Fatalf("restored VM diverged: %f vs %f", outA, outB)
	}
}

// piCapsule is a stateful PI controller: the integral lives in VM memory
// word 0, which persists across cycles (Reset clears stacks, not memory)
// and travels with the state snapshot on migration.
func piCapsule(t *testing.T) vm.Capsule {
	t.Helper()
	src := `
	IN 0
	PUSHQ 50.0
	SUB          ; e = level - sp (reverse acting)
	DUP
	PUSHQ 0.02
	MULQ
	PUSH 0
	LOAD
	ADD          ; integ' = integ + Ki*e
	DUP
	PUSH 0
	STORE
	SWAP
	PUSHQ 1.2
	MULQ
	ADD          ; u = integ' + Kp*e
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`
	code, err := vm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return vm.Capsule{TaskID: "lts", Version: 2, Code: code}
}

func TestVMPIControllerAccumulatesIntegral(t *testing.T) {
	l, err := NewVMLogic(piCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Constant positive error: output must ramp cycle over cycle
	// (integral action), proving memory persists across Reset.
	var prev float64
	for i := 0; i < 10; i++ {
		out, err := l.Step(55, 0.25) // e = +5
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && out <= prev {
			t.Fatalf("cycle %d: output %f did not ramp past %f", i, out, prev)
		}
		prev = out
	}
	// First-cycle output: Kp*5 + Ki*5 = 6 + 0.1.
	if prev < 6.5 || prev > 8 {
		t.Fatalf("output after 10 cycles = %f, want ~6.1+9*0.1", prev)
	}
}

func TestVMPIControllerIntegralMigrates(t *testing.T) {
	a, err := NewVMLogic(piCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := a.Step(55, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVMLogic(piCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(blob); err != nil {
		t.Fatal(err)
	}
	outA, err := a.Step(55, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Step(55, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if outA != outB {
		t.Fatalf("integral lost in migration: %f vs %f", outA, outB)
	}
	// A fresh replica without the state behaves differently (proves the
	// state actually matters).
	fresh, err := NewVMLogic(piCapsule(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	outFresh, err := fresh.Step(55, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if outFresh == outA {
		t.Fatal("fresh replica matched migrated one — integral not exercised")
	}
}

func TestVMLogicNoOutputErrors(t *testing.T) {
	code, err := vm.Assemble("PUSH 1\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewVMLogic(vm.Capsule{TaskID: "x", Code: code}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Step(1, 0.25); err == nil {
		t.Fatal("capsule with no OUT accepted")
	}
}

func TestVMLogicEmptyCapsuleRejected(t *testing.T) {
	if _, err := NewVMLogic(vm.Capsule{TaskID: "x"}, 0); err == nil {
		t.Fatal("empty capsule accepted")
	}
}

func TestCorruptedCapsuleDroppedOnAir(t *testing.T) {
	// A capsule whose bytes were corrupted in transit must fail
	// attestation at the receiver and never install a replica.
	r := newRig(t, defaultCfg())
	r.run(t, 2*time.Second)
	c := proportionalCapsule(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] ^= 0xFF // break the checksum
	r.nodes[spareID].onMessage(rtlink.Message{
		Src: ctrlA, Kind: wire.KindCapsule, Payload: enc,
	})
	r.run(t, time.Second)
	if _, ok := r.nodes[spareID].replicas["lts"]; ok {
		t.Fatal("corrupted capsule installed a replica")
	}
}

func TestMigrationDeniedBySchedulability(t *testing.T) {
	// The destination already carries a heavy task set; an incoming
	// migration that would overload it must be rejected by admission.
	cfg := defaultCfg()
	heavy := testSpec()
	heavy.ID = "heavy"
	heavy.WCET = 200 * time.Millisecond // 0.8 utilization at 250ms
	heavy.Candidates = []radio.NodeID{spareID}
	big := testSpec()
	big.ID = "lts"
	big.WCET = 100 * time.Millisecond // would push spare past 1.0
	cfg.Tasks = []TaskSpec{big, heavy}
	r := newRig(t, cfg)
	r.run(t, 2*time.Second)
	if err := r.nodes[ctrlA].MigrateTask("lts", spareID); err != nil {
		t.Fatal(err)
	}
	r.run(t, 3*time.Second)
	if r.nodes[spareID].Stats().MigrationsIn != 0 {
		t.Fatal("overloading migration admitted")
	}
	if _, ok := r.nodes[spareID].replicas["lts"]; ok {
		t.Fatal("unschedulable replica installed")
	}
}

func TestVMCapsuleMigrationOverNetwork(t *testing.T) {
	// End-to-end VM task migration: a node holding a VM-backed task
	// ships capsule + state to a spare; the spare attests, admits and
	// installs it.
	cfg := defaultCfg()
	cap := proportionalCapsule(t)
	cfg.Tasks[0].MakeLogic = func() (TaskLogic, error) { return NewVMLogic(cap, 0) }
	r := newRig(t, cfg)
	r.run(t, 3_000_000_000) // 3s
	if err := r.nodes[ctrlA].MigrateTask("lts", spareID); err != nil {
		t.Fatal(err)
	}
	r.run(t, 3_000_000_000)
	if r.nodes[spareID].Stats().MigrationsIn != 1 {
		t.Fatal("VM migration did not complete")
	}
	if _, ok := r.nodes[spareID].replicas["lts"].logic.(*VMLogic); !ok {
		t.Fatal("spare's replica is not VM-backed")
	}
}
