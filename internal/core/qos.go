package core

import "evm/internal/wire"

// QoSReport summarizes a Virtual Component's service level: the paper's
// "provably minimal QoS degradation" claim is about how much of the
// control function survives node failures.
type QoSReport struct {
	Tasks          int
	Covered        int     // tasks with a live Active controller
	Redundant      int     // tasks with at least one live Backup as well
	CoverageRatio  float64 // Covered / Tasks
	RedundancyMean float64 // mean live replicas per task
}

// EvaluateQoS inspects the nodes of a VC and reports coverage. Failed
// nodes (radio crashed) are excluded.
func EvaluateQoS(cfg VCConfig, nodes []*Node) QoSReport {
	rep := QoSReport{Tasks: len(cfg.Tasks)}
	if rep.Tasks == 0 {
		return rep
	}
	totalReplicas := 0
	for _, spec := range cfg.Tasks {
		liveActive := 0
		liveBackup := 0
		for _, n := range nodes {
			if n.link.Radio().Failed() {
				continue
			}
			switch n.Role(spec.ID) {
			case wire.RoleActive:
				liveActive++
			case wire.RoleBackup:
				liveBackup++
			}
		}
		if liveActive > 0 {
			rep.Covered++
		}
		if liveActive > 0 && liveBackup > 0 {
			rep.Redundant++
		}
		totalReplicas += liveActive + liveBackup
	}
	rep.CoverageRatio = float64(rep.Covered) / float64(rep.Tasks)
	rep.RedundancyMean = float64(totalReplicas) / float64(rep.Tasks)
	return rep
}
