// Package core implements the Embedded Virtual Machine runtime: Virtual
// Components spanning physical nodes, primary/backup control replication,
// passive fault detection, head arbitration and fail-over, task state
// migration in attested capsules, membership management, mode changes and
// BQP-based runtime re-optimization.
//
// This is the paper's primary contribution (§3): "an EVM is the
// distributed runtime system that dynamically selects primary-backup sets
// of controllers to guarantee QoS given spatial and temporal constraints
// of the underlying wireless network".
package core

import (
	"fmt"
	"time"

	"evm/internal/radio"
)

// TransferType classifies the five elementary object-transfer relations
// of §3.1.2: disjoint, (bi)directional, temporal-conditional,
// causal-conditional and health assessment.
type TransferType int

// Transfer types.
const (
	TransferDisjoint TransferType = iota + 1
	TransferDirectional
	TransferBidirectional
	TransferTemporal
	TransferCausal
	TransferHealth
)

// String implements fmt.Stringer.
func (t TransferType) String() string {
	switch t {
	case TransferDisjoint:
		return "disjoint"
	case TransferDirectional:
		return "directional"
	case TransferBidirectional:
		return "bidirectional"
	case TransferTemporal:
		return "temporal-conditional"
	case TransferCausal:
		return "causal-conditional"
	case TransferHealth:
		return "health-assessment"
	default:
		return fmt.Sprintf("transfer(%d)", int(t))
	}
}

// Transfer is one edge of the Virtual Component's object-transfer graph.
type Transfer struct {
	Type TransferType
	From radio.NodeID
	To   radio.NodeID
	// MaxAge bounds data staleness for temporal-conditional transfers
	// (data older than MaxAge must be discarded by the consumer).
	MaxAge time.Duration
	// After names the task whose output must precede this transfer in
	// the same cycle (causal-conditional).
	After string
}

// Validate checks a single transfer edge.
func (t Transfer) Validate() error {
	switch t.Type {
	case TransferDisjoint:
		// Valid: declares explicit independence.
	case TransferDirectional, TransferBidirectional, TransferHealth:
		if t.From == t.To {
			return fmt.Errorf("core: %v transfer from node to itself", t.Type)
		}
	case TransferTemporal:
		if t.MaxAge <= 0 {
			return fmt.Errorf("core: temporal transfer needs MaxAge > 0")
		}
	case TransferCausal:
		if t.After == "" {
			return fmt.Errorf("core: causal transfer needs After")
		}
	default:
		return fmt.Errorf("core: unknown transfer type %d", t.Type)
	}
	return nil
}

// TransferGraph is the set of object-transfer relations inside one
// Virtual Component.
type TransferGraph struct {
	edges []Transfer
}

// NewTransferGraph validates and assembles a graph.
func NewTransferGraph(edges []Transfer) (*TransferGraph, error) {
	g := &TransferGraph{edges: append([]Transfer(nil), edges...)}
	for i, e := range g.edges {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	// Disjoint pairs must not also have a communicating edge.
	for _, d := range g.edges {
		if d.Type != TransferDisjoint {
			continue
		}
		for _, e := range g.edges {
			if e.Type == TransferDisjoint {
				continue
			}
			if samePair(d, e) {
				return nil, fmt.Errorf("core: nodes %v and %v declared disjoint but share a %v transfer",
					d.From, d.To, e.Type)
			}
		}
	}
	return g, nil
}

func samePair(a, b Transfer) bool {
	return (a.From == b.From && a.To == b.To) || (a.From == b.To && a.To == b.From)
}

// Edges returns a copy of the edge list.
func (g *TransferGraph) Edges() []Transfer { return append([]Transfer(nil), g.edges...) }

// AllowedSend reports whether data may flow from -> to under the graph
// (directional respects direction; bidirectional and health allow both).
func (g *TransferGraph) AllowedSend(from, to radio.NodeID) bool {
	for _, e := range g.edges {
		switch e.Type {
		case TransferDirectional, TransferTemporal, TransferCausal:
			if e.From == from && e.To == to {
				return true
			}
		case TransferBidirectional, TransferHealth:
			if (e.From == from && e.To == to) || (e.From == to && e.To == from) {
				return true
			}
		}
	}
	return false
}

// MaxAgeFor returns the tightest temporal bound on data flowing
// from -> to, or 0 if unconstrained.
func (g *TransferGraph) MaxAgeFor(from, to radio.NodeID) time.Duration {
	var tightest time.Duration
	for _, e := range g.edges {
		if e.Type != TransferTemporal || e.From != from || e.To != to {
			continue
		}
		if tightest == 0 || e.MaxAge < tightest {
			tightest = e.MaxAge
		}
	}
	return tightest
}

// HealthPeers returns the nodes that monitor node id through health-
// assessment transfers.
func (g *TransferGraph) HealthPeers(id radio.NodeID) []radio.NodeID {
	var out []radio.NodeID
	seen := make(map[radio.NodeID]bool)
	for _, e := range g.edges {
		if e.Type != TransferHealth {
			continue
		}
		var peer radio.NodeID
		switch {
		case e.From == id:
			peer = e.To
		case e.To == id:
			peer = e.From
		default:
			continue
		}
		if !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	return out
}
