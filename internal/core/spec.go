package core

import (
	"fmt"
	"time"

	"evm/internal/radio"
	"evm/internal/rtos"
)

// TaskSpec describes one control task of a Virtual Component: which
// sensor it reads, which actuator it drives, its timing, its candidate
// controllers in fail-over order, and the fault-detection policy its
// backups apply.
type TaskSpec struct {
	ID           string
	SensorPort   uint8
	ActuatorPort uint8
	// Period is the control cycle (the paper targets <= 250 ms).
	Period time.Duration
	// WCET is the per-cycle execution demand used for schedulability
	// admission on migration.
	WCET time.Duration
	// Candidates lists the nodes able to run this task, in fail-over
	// priority order: Candidates[0] is the initial primary.
	Candidates []radio.NodeID
	// DeviationTol is the output difference beyond which a backup counts
	// a cycle as deviating.
	DeviationTol float64
	// DeviationWindow is the number of consecutive deviating cycles
	// before the backup reports a fault.
	DeviationWindow int
	// SilenceWindow is the number of cycles without hearing the
	// primary's health before reporting a silent fault.
	SilenceWindow int
	// MaxInputAge discards sensor data older than this (temporal-
	// conditional transfer); 0 disables the check.
	MaxInputAge time.Duration
	// ReplicateEvery enables active state sharing: every N cycles the
	// primary ships its state snapshot to the other candidates, keeping
	// backups consistent even when they miss cycles (paper §3: "state is
	// shared either passively or actively"). 0 keeps sharing passive.
	ReplicateEvery int
	// MakeLogic constructs a fresh replica of the control law. Every
	// candidate node instantiates its own copy ("multiple copies of each
	// algorithm are present on the physical nodes", §3).
	MakeLogic func() (TaskLogic, error)
}

// Validate checks the spec.
func (s TaskSpec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("core: task with empty ID")
	}
	if len(s.ID) > 32 {
		return fmt.Errorf("core: task ID %q too long for slot payloads", s.ID)
	}
	if s.Period <= 0 {
		return fmt.Errorf("core: task %s period %v", s.ID, s.Period)
	}
	if s.WCET <= 0 || s.WCET > s.Period {
		return fmt.Errorf("core: task %s wcet %v vs period %v", s.ID, s.WCET, s.Period)
	}
	if len(s.Candidates) == 0 {
		return fmt.Errorf("core: task %s has no candidate nodes", s.ID)
	}
	seen := make(map[radio.NodeID]bool, len(s.Candidates))
	for _, c := range s.Candidates {
		if seen[c] {
			return fmt.Errorf("core: task %s lists node %v twice", s.ID, c)
		}
		seen[c] = true
	}
	if s.DeviationTol < 0 {
		return fmt.Errorf("core: task %s negative deviation tolerance", s.ID)
	}
	if s.DeviationWindow <= 0 {
		return fmt.Errorf("core: task %s deviation window %d", s.ID, s.DeviationWindow)
	}
	if s.SilenceWindow <= 0 {
		return fmt.Errorf("core: task %s silence window %d", s.ID, s.SilenceWindow)
	}
	if s.MakeLogic == nil {
		return fmt.Errorf("core: task %s has no logic factory", s.ID)
	}
	return nil
}

// RTOSTask converts the spec to the nano-RK task used for admission.
func (s TaskSpec) RTOSTask() rtos.Task {
	return rtos.Task{ID: rtos.TaskID(s.ID), Period: s.Period, WCET: s.WCET}
}

// VCConfig describes a Virtual Component: its members, head, tasks and
// object-transfer graph.
type VCConfig struct {
	Name string
	// Head is the arbiter node ("the head of the Virtual Component",
	// §4.2).
	Head radio.NodeID
	// Gateway is the plant bridge node (excluded from task placement).
	Gateway radio.NodeID
	Tasks   []TaskSpec
	// Transfers is the object-transfer graph; if nil a default graph is
	// derived (health assessment among each task's candidates,
	// directional transfers to/from the gateway).
	Transfers []Transfer
	// DormantAfter is how long a demoted primary stays Indicator before
	// the head sets it Dormant (paper: T3 - T2 = 200 s).
	DormantAfter time.Duration
}

// Validate checks the VC configuration.
func (c VCConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: VC with empty name")
	}
	if len(c.Tasks) == 0 {
		return fmt.Errorf("core: VC %s has no tasks", c.Name)
	}
	seen := make(map[string]bool, len(c.Tasks))
	for _, t := range c.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("core: duplicate task %s", t.ID)
		}
		seen[t.ID] = true
		for _, cand := range t.Candidates {
			if cand == c.Gateway {
				return fmt.Errorf("core: task %s places a controller on the gateway", t.ID)
			}
		}
	}
	if c.DormantAfter < 0 {
		return fmt.Errorf("core: negative DormantAfter")
	}
	return nil
}

// DefaultTransfers derives the object-transfer graph: directional sensor
// flow gateway -> every candidate, directional actuation candidate ->
// gateway, and health-assessment edges among each task's candidates.
func (c VCConfig) DefaultTransfers() []Transfer {
	var out []Transfer
	addedHealth := make(map[[2]radio.NodeID]bool)
	for _, t := range c.Tasks {
		for _, cand := range t.Candidates {
			out = append(out,
				Transfer{Type: TransferDirectional, From: c.Gateway, To: cand},
				Transfer{Type: TransferDirectional, From: cand, To: c.Gateway},
			)
			if t.MaxInputAge > 0 {
				out = append(out, Transfer{
					Type: TransferTemporal, From: c.Gateway, To: cand, MaxAge: t.MaxInputAge,
				})
			}
		}
		for i := 0; i < len(t.Candidates); i++ {
			for j := i + 1; j < len(t.Candidates); j++ {
				a, b := t.Candidates[i], t.Candidates[j]
				key := [2]radio.NodeID{a, b}
				if a > b {
					key = [2]radio.NodeID{b, a}
				}
				if !addedHealth[key] {
					addedHealth[key] = true
					out = append(out, Transfer{Type: TransferHealth, From: a, To: b})
				}
			}
		}
	}
	return out
}

// TaskByID returns the spec for a task ID.
func (c VCConfig) TaskByID(id string) (TaskSpec, bool) {
	for _, t := range c.Tasks {
		if t.ID == id {
			return t, true
		}
	}
	return TaskSpec{}, false
}

// InitialRole returns the role a node starts with for a task: the first
// candidate is Active, later candidates are Backup, others Dormant.
func (c VCConfig) InitialRole(task string, node radio.NodeID) RoleOf {
	spec, ok := c.TaskByID(task)
	if !ok {
		return RoleOf{}
	}
	for i, cand := range spec.Candidates {
		if cand == node {
			if i == 0 {
				return RoleOf{Holds: true, Active: true}
			}
			return RoleOf{Holds: true}
		}
	}
	return RoleOf{}
}

// RoleOf describes a node's initial relationship to a task.
type RoleOf struct {
	Holds  bool // node is a candidate (has a replica)
	Active bool // node is the initial primary
}
