package evmd

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"evm"
)

// waitState polls until the run reaches a terminal state.
func waitState(t *testing.T, run *Run) RunState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		switch st := run.State(); st {
		case RunDone, RunFailed, RunCancelled:
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %s stuck in state %s", run.ID, run.State())
	return ""
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSubmitLifecycle drives one run end to end over HTTP: admission
// (202), completion, the status snapshot, the event stream, the CSV
// telemetry export and the qos_coverage control-quality metric.
func TestSubmitLifecycle(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 16})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/runs", SubmitRequest{
		Tenant: "acme", Scenario: evm.ScenarioEightController, Seed: 1, HorizonMS: 5000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.Runs) != 1 {
		t.Fatalf("submit admitted %d runs, want 1", len(sub.Runs))
	}
	run := s.Run(sub.Runs[0].ID)
	if run == nil {
		t.Fatalf("admitted run %s not in table", sub.Runs[0].ID)
	}
	if st := waitState(t, run); st != RunDone {
		t.Fatalf("run ended %s: %s", st, run.snapshot().Error)
	}

	snap := run.snapshot()
	if snap.Tenant != "acme" || snap.Scenario != evm.ScenarioEightController {
		t.Fatalf("snapshot identity wrong: %+v", snap)
	}
	if snap.Events == 0 {
		t.Fatalf("run streamed no events")
	}
	if len(snap.Cells) != 1 || snap.Cells[0].Members != 10 {
		t.Fatalf("cell table = %+v, want one 10-member cell", snap.Cells)
	}
	if cov, ok := snap.Metrics[evm.MetricQoSCoverage]; !ok || cov != 1 {
		t.Fatalf("qos_coverage = %v (present %v), want 1 on a fault-free run", cov, ok)
	}
	if _, ok := snap.Metrics[evm.MetricQoSRedundancy]; !ok {
		t.Fatalf("qos_redundancy_mean missing from run metrics")
	}

	// NDJSON event stream replays the full run.
	res, err := http.Get(ts.URL + "/v1/runs/" + run.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var lines []EventRecord
	dec := json.NewDecoder(res.Body)
	for dec.More() {
		var rec EventRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, rec)
	}
	res.Body.Close()
	if len(lines) != snap.Events {
		t.Fatalf("streamed %d events, snapshot says %d", len(lines), snap.Events)
	}

	// CSV telemetry has the flat header and a final metric sample.
	res, err = http.Get(ts.URL + "/v1/runs/" + run.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(res.Body).ReadAll()
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("telemetry CSV has %d rows", len(rows))
	}
	want := []string{"t", "run", "tenant", "scenario", "seed", "cell", "series", "value"}
	for i, col := range want {
		if rows[0][i] != col {
			t.Fatalf("telemetry header = %v, want %v", rows[0], want)
		}
	}
	foundQoS := false
	for _, row := range rows[1:] {
		if row[6] == "metric."+evm.MetricQoSCoverage {
			foundQoS = true
		}
	}
	if !foundQoS {
		t.Fatalf("telemetry lacks the metric.qos_coverage sample")
	}

	// Tenant table sees the run.
	res, err = http.Get(ts.URL + "/v1/tenants/acme")
	if err != nil {
		t.Fatal(err)
	}
	var tstat TenantStatus
	if err := json.NewDecoder(res.Body).Decode(&tstat); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if tstat.Counts[RunDone] != 1 || len(tstat.Recent) != 1 {
		t.Fatalf("tenant status = %+v, want one done run", tstat)
	}
}

// TestMultiTenantDeterminism is the isolation guarantee: several tenants
// hammering the daemon concurrently with the same scenario+seed receive
// byte-identical event streams, identical to a serial CLI-style run.
// Both single-cell and campus scenarios are covered.
func TestMultiTenantDeterminism(t *testing.T) {
	specs := []evm.RunSpec{
		{Scenario: evm.ScenarioEightController, Seed: 7, Horizon: 5 * time.Second},
		{Scenario: evm.ScenarioCampusFailover, Seed: 3, Horizon: 15 * time.Second},
	}
	serial := make([][]EventRecord, len(specs))
	for i, spec := range specs {
		events, err := SerialEvents(spec)
		if err != nil {
			t.Fatalf("serial %s: %v", spec.Label(), err)
		}
		if len(events) == 0 {
			t.Fatalf("serial %s produced no events", spec.Label())
		}
		serial[i] = events
	}

	s := NewServer(Config{Workers: 4, QueueDepth: 256})
	defer s.Drain(0)
	tenants := []string{"acme", "globex", "initech"}
	var wg sync.WaitGroup
	runs := make([][]*Run, len(tenants))
	for ti, tenant := range tenants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			admitted, err := s.Submit(tenant, specs...)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			runs[ti] = admitted
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for ti, tenant := range tenants {
		for si, run := range runs[ti] {
			if st := waitState(t, run); st != RunDone {
				t.Fatalf("%s %s ended %s: %s", tenant, run.Spec.Label(), st, run.snapshot().Error)
			}
			got := run.Events()
			if len(got) != len(serial[si]) {
				t.Fatalf("%s %s streamed %d events, serial run %d",
					tenant, run.Spec.Label(), len(got), len(serial[si]))
			}
			for i := range got {
				if got[i] != serial[si][i] {
					t.Fatalf("%s %s diverges from serial at event %d:\n  daemon: %+v\n  serial: %+v",
						tenant, run.Spec.Label(), i, got[i], serial[si][i])
				}
			}
		}
	}
}

// TestAdmissionBackpressure: a batch that exceeds the queue bound is
// rejected whole with 429, and the queue bound also caps one tenant's
// share.
func TestAdmissionBackpressure(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 2})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/runs", SubmitRequest{
		Tenant: "acme", Scenario: evm.ScenarioCapacity, Seeds: []uint64{1, 2, 3}, HorizonMS: 1000,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	if got := s.Stats().RejectedBackpressur; got != 3 {
		t.Fatalf("rejected_backpressure = %d, want 3", got)
	}
	// The daemon still serves within bounds after rejecting.
	resp, body = postJSON(t, ts.URL+"/v1/runs", SubmitRequest{
		Tenant: "acme", Scenario: evm.ScenarioCapacity, Seed: 1, HorizonMS: 1000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-bounds submit status = %d (%s), want 202", resp.StatusCode, body)
	}
}

// TestTenantQueueShare: the per-tenant bound rejects a hog tenant while
// admitting others.
func TestTenantQueueShare(t *testing.T) {
	q := newFairQueue(8, 2)
	mk := func(tenant string, n int) []*Run {
		runs := make([]*Run, n)
		for i := range runs {
			runs[i] = &Run{ID: fmt.Sprintf("%s-%d", tenant, i), Tenant: tenant, stream: newStream()}
		}
		return runs
	}
	if err := q.pushAll(mk("hog", 3)); err == nil {
		t.Fatalf("tenant share of 2 admitted 3 runs")
	}
	if err := q.pushAll(mk("hog", 2)); err != nil {
		t.Fatalf("in-share push rejected: %v", err)
	}
	if err := q.pushAll(mk("polite", 2)); err != nil {
		t.Fatalf("second tenant rejected despite free share: %v", err)
	}
}

// TestFairQueueRoundRobin: dispatch interleaves tenants regardless of
// submission order, FIFO within each tenant.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(16, 16)
	push := func(tenant string, ids ...string) {
		runs := make([]*Run, len(ids))
		for i, id := range ids {
			runs[i] = &Run{ID: id, Tenant: tenant, stream: newStream()}
		}
		if err := q.pushAll(runs); err != nil {
			t.Fatal(err)
		}
	}
	push("a", "a1", "a2", "a3", "a4")
	push("b", "b1", "b2")
	push("c", "c1")
	var got []string
	for i := 0; i < 7; i++ {
		run, ok := q.pop()
		if !ok {
			t.Fatalf("queue closed early at pop %d", i)
		}
		got = append(got, run.ID)
	}
	want := "a1 b1 c1 a2 b2 a3 a4"
	if strings.Join(got, " ") != want {
		t.Fatalf("dispatch order = %v, want %s", got, want)
	}
}

// TestGracefulShutdown: Drain refuses new submissions with 503, cancels
// queued-but-unstarted runs, lets in-flight runs finish, and the event
// CSVs of finished runs are flushed to EventDir.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Config{Workers: 1, QueueDepth: 64, EventDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runs, err := s.Submit("acme",
		evm.RunSpec{Scenario: evm.ScenarioEightController, Seed: 1, Horizon: 5 * time.Second},
		evm.RunSpec{Scenario: evm.ScenarioEightController, Seed: 2, Horizon: 5 * time.Second},
		evm.RunSpec{Scenario: evm.ScenarioEightController, Seed: 3, Horizon: 5 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Let the single worker pick up the first run so the drain really has
	// an in-flight run to wait for.
	for deadline := time.Now().Add(10 * time.Second); runs[0].State() == RunQueued; {
		if time.Now().After(deadline) {
			t.Fatalf("first run never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	rep := s.Drain(20 * time.Second)
	if rep.TimedOut {
		t.Fatalf("drain timed out with bounded runs in flight")
	}

	resp, body := postJSON(t, ts.URL+"/v1/runs", SubmitRequest{
		Tenant: "acme", Scenario: evm.ScenarioCapacity, Seed: 9,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d (%s), want 503", resp.StatusCode, body)
	}
	// Liveness stays green through the drain; readiness flips to 503 so
	// orchestrators stop routing new work without killing the process.
	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness)", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", res.StatusCode)
	}

	doneRuns, cancelled := 0, 0
	for _, run := range runs {
		switch st := waitState(t, run); st {
		case RunDone:
			doneRuns++
			// Flushed CSV telemetry for every completed run.
			matches, _ := filepath.Glob(filepath.Join(dir, run.ID, "*.csv"))
			if len(matches) == 0 {
				t.Fatalf("run %s completed but flushed no event CSV under %s", run.ID, dir)
			}
		case RunCancelled:
			cancelled++
			if n, _ := run.stream.lens(); n != 0 {
				t.Fatalf("cancelled run %s has %d streamed events", run.ID, n)
			}
		default:
			t.Fatalf("run %s ended %s after drain", run.ID, st)
		}
	}
	if doneRuns+cancelled != len(runs) {
		t.Fatalf("done %d + cancelled %d != %d submitted", doneRuns, cancelled, len(runs))
	}
	if doneRuns == 0 {
		t.Fatalf("drain completed no in-flight run")
	}
	if int(s.Stats().Cancelled) != cancelled || rep.Cancelled != cancelled {
		t.Fatalf("cancel counters disagree: stats %d, report %d, observed %d",
			s.Stats().Cancelled, rep.Cancelled, cancelled)
	}
}

// TestSubmitValidation: unknown scenarios are rejected before admission.
func TestSubmitValidation(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 4})
	defer s.Drain(0)
	if _, err := s.Submit("acme", evm.RunSpec{Scenario: "no-such-scenario"}); err == nil {
		t.Fatalf("unknown scenario admitted")
	}
	if got := s.Stats().Accepted; got != 0 {
		t.Fatalf("accepted = %d after rejected submit", got)
	}
}

// TestStreamFollowsLiveRun: a subscriber attached before the run starts
// receives the full stream and the handler terminates when the run does.
func TestStreamFollowsLiveRun(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 8})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runs, err := s.Submit("acme", evm.RunSpec{Scenario: evm.ScenarioGasPlant, Seed: 5, Horizon: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe immediately — likely mid-run — and read to EOF.
	res, err := http.Get(ts.URL + "/v1/runs/" + runs[0].ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	dec := json.NewDecoder(res.Body)
	for dec.More() {
		var rec EventRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		n++
	}
	res.Body.Close()
	if st := waitState(t, runs[0]); st != RunDone {
		t.Fatalf("run ended %s", st)
	}
	if want, _ := runs[0].stream.lens(); n != want {
		t.Fatalf("live subscriber read %d events, run recorded %d", n, want)
	}
}

// BenchmarkSubmissionThroughput measures the service path the load
// harness exercises: HTTP submission into the admission queue, execution
// on the worker pool, status polling to completion. The reported metric
// is end-to-end runs/sec through the daemon.
func BenchmarkSubmissionThroughput(b *testing.B) {
	s := NewServer(Config{Workers: 0 /* GOMAXPROCS */, QueueDepth: 1 << 16})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := func(seed int) *bytes.Reader {
		data, _ := json.Marshal(SubmitRequest{
			Tenant:   fmt.Sprintf("t%d", seed%8),
			Scenario: evm.ScenarioCapacity,
			Seed:     uint64(seed + 1),
			// Short horizon: the benchmark targets admission + dispatch,
			// not simulation depth.
			HorizonMS: 500,
		})
		return bytes.NewReader(data)
	}
	start := time.Now()
	b.ResetTimer()
	runIDs := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/runs", "application/json", body(i))
		if err != nil {
			b.Fatal(err)
		}
		var sub SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit status %d", resp.StatusCode)
		}
		runIDs = append(runIDs, sub.Runs[0].ID)
	}
	for _, id := range runIDs {
		run := s.Run(id)
		for {
			st := run.State()
			if st == RunDone {
				break
			}
			if st == RunFailed || st == RunCancelled {
				b.Fatalf("run %s ended %s", id, st)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	b.StopTimer()
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "runs/sec")
	}
}
