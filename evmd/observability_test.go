package evmd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// submitAndWait posts one run and blocks until it reaches a terminal
// state, returning the run ID.
func submitAndWait(t *testing.T, s *Server, base string) string {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/runs", SubmitRequest{
		Tenant: "obs", Scenario: "eight-controller", Seed: 1, HorizonMS: 2000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil || len(sub.Runs) != 1 {
		t.Fatalf("submit response %s: %v", body, err)
	}
	id := sub.Runs[0].ID
	s.mu.Lock()
	run := s.runs[id]
	s.mu.Unlock()
	if st := waitState(t, run); st != RunDone {
		t.Fatalf("run ended %s, want done", st)
	}
	return id
}

// TestMetricsEndpoint scrapes GET /metrics after a completed run and
// checks the exposition format plus cross-consistency with /v1/stats.
func TestMetricsEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 16})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitAndWait(t, s, ts.URL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE evmd_workers gauge",
		"evmd_workers 2",
		"# TYPE evmd_submissions_accepted_total counter",
		"evmd_submissions_accepted_total 1",
		"evmd_runs_completed_total 1",
		`evmd_runs{state="done"} 1`,
		"# TYPE evmd_admission_latency_seconds histogram",
		"evmd_admission_latency_seconds_count 1",
		"evmd_run_wall_seconds_count 1",
		"evmd_stream_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals the
	// count, and counts never decrease across ascending bounds.
	last := -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "evmd_admission_latency_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
	if last != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", last)
	}
}

// TestTraceEndpoint exercises GET /v1/runs/{id}/trace: 200 with a
// Perfetto-loadable JSON document when tracing is on, 404 when the
// daemon runs without tracing, and 404 for unknown runs.
func TestTraceEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 16, Trace: true})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := submitAndWait(t, s, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// The run status snapshot must advertise that a trace exists.
	stResp, body := getBody(t, ts.URL+"/v1/runs/"+id)
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", stResp.StatusCode)
	}
	var st RunStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Trace {
		t.Error("run status does not advertise the trace")
	}

	if resp, err := http.Get(ts.URL + "/v1/runs/no-such-run/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown run trace status %d, want 404", resp.StatusCode)
		}
	}

	// A daemon without tracing serves 404 for finished runs' traces.
	s2 := NewServer(Config{Workers: 1, QueueDepth: 4})
	defer s2.Drain(0)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	id2 := submitAndWait(t, s2, ts2.URL)
	if resp, err := http.Get(ts2.URL + "/v1/runs/" + id2 + "/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("untraced run trace status %d, want 404", resp.StatusCode)
		}
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTelemetryCarriesSpanMetrics checks the streamed telemetry log of
// a traced daemon includes metric.span_* samples — the span-derived
// percentiles ride the same surface as the control-quality metrics.
func TestTelemetryCarriesSpanMetrics(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 4, Trace: true})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := submitAndWait(t, s, ts.URL)

	resp, body := getBody(t, ts.URL+"/v1/runs/"+id+"/telemetry")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "metric.span_slot_p95_ms") {
		t.Error("telemetry missing metric.span_slot_p95_ms sample")
	}
}

// TestPprofGate checks /debug/pprof/ is mounted only behind the flag.
func TestPprofGate(t *testing.T) {
	open := NewServer(Config{Workers: 1, QueueDepth: 4, EnablePprof: true})
	defer open.Drain(0)
	tsOpen := httptest.NewServer(open.Handler())
	defer tsOpen.Close()
	if resp, err := http.Get(tsOpen.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof status %d with EnablePprof", resp.StatusCode)
		}
	}
	closed := NewServer(Config{Workers: 1, QueueDepth: 4})
	defer closed.Drain(0)
	tsClosed := httptest.NewServer(closed.Handler())
	defer tsClosed.Close()
	if resp, err := http.Get(tsClosed.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pprof status %d without EnablePprof, want 404", resp.StatusCode)
		}
	}
}

// TestReadyzProbe checks the liveness/readiness split on a healthy
// daemon: both probes are 200 until drain (TestGracefulShutdown covers
// the draining side).
func TestReadyzProbe(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 4})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, resp.StatusCode)
		}
	}
}
