package evmd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"evm"
)

// waitFinished polls until the daemon has finished (done/failed/
// cancelled) at least n runs.
func waitFinished(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Completed+st.Failed+st.Cancelled >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("daemon stuck: %+v", s.Stats())
}

// TestEvictionUnderLoad drives submission waves through a MaxRuns-capped
// table and checks the retention contract: the cap holds once work
// drains, the oldest finished runs leave first, the newest survive, and
// evicted IDs answer 410 Gone while never-issued IDs stay 404.
func TestEvictionUnderLoad(t *testing.T) {
	const tableCap = 10
	s := NewServer(Config{Workers: 4, QueueDepth: 256, MaxRuns: tableCap})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := evm.RunSpec{Scenario: evm.ScenarioEightController, Seed: 1, Horizon: 500 * time.Millisecond}
	var last *Run
	for wave := 0; wave < 4; wave++ {
		for i := 0; i < 10; i++ {
			runs, err := s.Submit("load", spec)
			if err != nil {
				t.Fatal(err)
			}
			last = runs[0]
		}
		waitFinished(t, s, int64((wave+1)*10))
	}

	// All 40 runs finished; completion-time eviction alone must have
	// already squeezed the table back to the cap.
	if got := len(s.Runs("", "")); got > tableCap {
		t.Fatalf("run table holds %d runs after drain, cap is %d", got, tableCap)
	}
	if ev := s.Stats().Evicted; ev < 30 {
		t.Fatalf("evicted %d runs, want ≥ 30", ev)
	}
	// Retention keeps the most recent history: the last admitted run is
	// still present, the first is long gone.
	if s.Run(last.ID) == nil {
		t.Fatalf("most recent run %s was evicted", last.ID)
	}
	if s.Run("r-000001") != nil {
		t.Fatal("oldest run survived 30 evictions")
	}

	// HTTP status mapping: evicted → 410, never issued → 404.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/runs/r-000001", http.StatusGone},
		{"/v1/runs/r-000001/telemetry", http.StatusGone},
		{"/v1/runs/r-000001/events", http.StatusGone},
		{"/v1/runs/" + last.ID, http.StatusOK},
		{"/v1/runs/r-999999", http.StatusNotFound},
		{"/v1/runs/bogus", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// fakeClock is a manually-advanced Clock injected via Config.Clock so
// TTL tests control elapsed time instead of sleeping through it.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that never fires: tests wait for work to
// finish before draining, so a drain that would need the timeout is a
// bug and should surface as a hang, not a silent pass.
func (c *fakeClock) After(time.Duration) <-chan time.Time {
	return make(chan time.Time)
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestEvictionTTL: finished runs expire RunTTL after completion; live
// state is never evicted. The injected fake clock makes the TTL window
// explicit — nothing is evicted one tick short of it, everything at it.
func TestEvictionTTL(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{Workers: 2, QueueDepth: 16, RunTTL: 30 * time.Second, Clock: clk})
	defer s.Drain(0)

	spec := evm.RunSpec{Scenario: evm.ScenarioEightController, Seed: 1, Horizon: 500 * time.Millisecond}
	runs, err := s.Submit("ttl", spec, spec, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		waitState(t, r)
	}
	// Every run finished at the fake clock's current instant; just short
	// of the TTL the table must be untouched.
	clk.Advance(30*time.Second - time.Nanosecond)
	if n := s.EvictNow(); n != 0 {
		t.Fatalf("EvictNow evicted %d runs before the TTL elapsed, want 0", n)
	}
	if got := len(s.Runs("", "")); got != 3 {
		t.Fatalf("run table holds %d runs inside TTL, want 3", got)
	}
	clk.Advance(time.Nanosecond)
	if n := s.EvictNow(); n != 3 {
		t.Fatalf("EvictNow evicted %d runs, want 3", n)
	}
	if got := len(s.Runs("", "")); got != 0 {
		t.Fatalf("run table still holds %d runs past TTL", got)
	}
	if run, evicted := s.lookupRun(runs[0].ID); run != nil || !evicted {
		t.Fatalf("lookupRun(%s) = (%v, %v), want evicted", runs[0].ID, run, evicted)
	}
}

// TestFuzzEndpoint: POST /v1/fuzz generates, registers and admits a
// sweep slice; repeating the identical request is idempotent at the
// registry layer and admits a fresh batch of runs.
func TestFuzzEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 4, QueueDepth: 64})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := FuzzRequest{Tenant: "fz", GenSeed: 1, Count: 2, Seeds: []uint64{1, 2}}
	resp, body := postJSON(t, ts.URL+"/v1/fuzz", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fuzz status = %d, body %s", resp.StatusCode, body)
	}
	var fr FuzzResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Scenarios) != 2 || len(fr.Runs) != 4 {
		t.Fatalf("fuzz admitted %d scenarios / %d runs, want 2/4", len(fr.Scenarios), len(fr.Runs))
	}
	for _, name := range fr.Scenarios {
		if !strings.HasPrefix(name, "fuzz-") {
			t.Fatalf("unexpected generated scenario name %q", name)
		}
	}
	waitFinished(t, s, 4)
	if st := s.Stats(); st.Failed != 0 {
		t.Fatalf("%d fuzz runs failed: %+v", st.Failed, s.Runs("fz", RunFailed))
	}

	// Same request again: the specs re-register as no-ops and the runs
	// re-admit.
	resp, body = postJSON(t, ts.URL+"/v1/fuzz", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat fuzz status = %d, body %s", resp.StatusCode, body)
	}
	waitFinished(t, s, 8)

	resp, body = postJSON(t, ts.URL+"/v1/fuzz", FuzzRequest{GenSeed: 1, Profile: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad profile status = %d, body %s", resp.StatusCode, body)
	}
}
