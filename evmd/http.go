package evmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"evm"
)

// SubmitRequest is the POST /v1/runs body. One request fans out to one
// run per seed (Seeds, or the single Seed when Seeds is empty), all
// admitted atomically for the tenant.
type SubmitRequest struct {
	Tenant   string   `json:"tenant"`
	Scenario string   `json:"scenario"`
	Seed     uint64   `json:"seed"`
	Seeds    []uint64 `json:"seeds,omitempty"`
	// HorizonMS bounds the run in virtual milliseconds (0 = scenario
	// default).
	HorizonMS int64 `json:"horizon_ms,omitempty"`
	// Policy names the placement policy for campus scenarios.
	Policy string `json:"policy,omitempty"`
	// FaultCell targets the fault plan in campus scenarios.
	FaultCell string `json:"fault_cell,omitempty"`
	// Faults is an optional declarative fault plan.
	Faults *FaultPlanSpec `json:"faults,omitempty"`
}

// FaultPlanSpec is the JSON form of an evm.FaultPlan (the subset that
// round-trips cleanly over the wire).
type FaultPlanSpec struct {
	Name  string          `json:"name,omitempty"`
	Steps []FaultStepSpec `json:"steps"`
}

// FaultStepSpec is one JSON fault step.
type FaultStepSpec struct {
	AtMS        int64 `json:"at_ms"`
	CrashNode   int   `json:"crash_node,omitempty"`
	RecoverNode int   `json:"recover_node,omitempty"`
	// PER forces cell-wide loss in [0,1] for PERForMS milliseconds.
	PER      float64 `json:"per,omitempty"`
	PERForMS int64   `json:"per_for_ms,omitempty"`
	// LinkDownA/B sever the named backbone link; LinkUpA/B restore it.
	LinkDownA string `json:"link_down_a,omitempty"`
	LinkDownB string `json:"link_down_b,omitempty"`
	LinkUpA   string `json:"link_up_a,omitempty"`
	LinkUpB   string `json:"link_up_b,omitempty"`
}

// plan converts the wire form to an evm.FaultPlan.
func (f *FaultPlanSpec) plan() evm.FaultPlan {
	p := evm.FaultPlan{Name: f.Name}
	for _, st := range f.Steps {
		step := evm.FaultStep{
			At:          time.Duration(st.AtMS) * time.Millisecond,
			CrashNode:   evm.NodeID(st.CrashNode),
			RecoverNode: evm.NodeID(st.RecoverNode),
		}
		if st.PER > 0 || st.PERForMS > 0 {
			step.PERBurst = &evm.PERBurst{PER: st.PER, For: time.Duration(st.PERForMS) * time.Millisecond}
		}
		if st.LinkDownA != "" || st.LinkDownB != "" {
			step.LinkDown = &evm.LinkRef{A: st.LinkDownA, B: st.LinkDownB}
		}
		if st.LinkUpA != "" || st.LinkUpB != "" {
			step.LinkUp = &evm.LinkRef{A: st.LinkUpA, B: st.LinkUpB}
		}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// Specs expands the request into concrete run specs.
func (req *SubmitRequest) Specs() []evm.RunSpec {
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{req.Seed}
	}
	specs := make([]evm.RunSpec, 0, len(seeds))
	for _, seed := range seeds {
		spec := evm.RunSpec{
			Scenario:  req.Scenario,
			Seed:      seed,
			Horizon:   time.Duration(req.HorizonMS) * time.Millisecond,
			Policy:    req.Policy,
			FaultCell: req.FaultCell,
		}
		if req.Faults != nil {
			spec.Faults = req.Faults.plan()
		}
		specs = append(specs, spec)
	}
	return specs
}

// SubmitResponse acknowledges an admitted submission (HTTP 202).
type SubmitResponse struct {
	Runs       []RunStatus `json:"runs"`
	QueueDepth int         `json:"queue_depth"`
}

// Handler mounts the daemon's HTTP API:
//
//	POST /v1/runs                  submit (202; 429 backpressure; 503 draining)
//	POST /v1/fuzz                  generate + register + submit fuzz specs (202)
//	GET  /v1/runs                  list run snapshots (?tenant=, ?state=)
//	GET  /v1/runs/{id}             one run snapshot (410 once evicted)
//	GET  /v1/runs/{id}/events      stream events (SSE or NDJSON; replays from start)
//	GET  /v1/runs/{id}/telemetry   flat samples (?format=csv|ndjson)
//	GET  /v1/runs/{id}/trace       Chrome-trace JSON (Config.Trace; Perfetto-loadable)
//	GET  /v1/tenants               tenant names
//	GET  /v1/tenants/{id}          tenant status table
//	GET  /v1/scenarios             registered scenarios and policies
//	GET  /v1/stats                 daemon counters
//	GET  /v1/healthz               liveness: 200 while the process serves
//	GET  /v1/readyz                readiness: 200 serving / 503 draining
//	GET  /metrics                  Prometheus text exposition
//	GET  /debug/pprof/...          profiling (Config.EnablePprof only)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("POST /v1/fuzz", s.handleFuzz)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tenants": s.Tenants()})
	})
	mux.HandleFunc("GET /v1/tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Tenant(r.PathValue("id")))
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"scenarios": evm.Scenarios(),
			"policies":  evm.PlacementPolicies(),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	// Liveness and readiness are distinct probes: a draining daemon is
	// still alive (it is finishing in-flight runs and serving reads) but
	// not ready for new work — an orchestrator should stop routing
	// submissions to it without killing it mid-drain.
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleTrace serves a finished run's Chrome-trace JSON. Runs still in
// flight answer 409 (the trace exports at completion); runs executed
// without Config.Trace answer 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run := s.fetchRun(w, r)
	if run == nil {
		return
	}
	run.mu.Lock()
	trace := run.trace
	state := run.state
	run.mu.Unlock()
	if len(trace) == 0 {
		switch state {
		case RunQueued, RunRunning:
			httpError(w, http.StatusConflict,
				fmt.Errorf("evmd: run %s is %s; its trace exports at completion", run.ID, state))
		default:
			httpError(w, http.StatusNotFound,
				fmt.Errorf("evmd: no trace recorded for run %s (daemon tracing disabled?)", run.ID))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(trace)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The admission histogram measures the full handler — decode through
	// queue admission — on the injected clock, so evmload can check its
	// own client-side percentiles against the served buckets.
	start := s.cfg.Clock.Now()
	defer func() { s.admitHist.observe(s.cfg.Clock.Now().Sub(start).Seconds()) }()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: bad submit body: %w", err))
		return
	}
	if req.Scenario == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: submission needs a scenario"))
		return
	}
	runs, err := s.Submit(req.Tenant, req.Specs()...)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := SubmitResponse{Runs: make([]RunStatus, len(runs))}
	for i, run := range runs {
		resp.Runs[i] = run.snapshot()
	}
	resp.QueueDepth, _ = s.queue.depths()
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	runs := s.Runs(r.URL.Query().Get("tenant"), RunState(r.URL.Query().Get("state")))
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs, "count": len(runs)})
}

// fetchRun resolves the {id} path value to a run, writing 404 for IDs
// the daemon never issued and 410 Gone for runs evicted by the
// RunTTL/MaxRuns retention policy.
func (s *Server) fetchRun(w http.ResponseWriter, r *http.Request) *Run {
	id := r.PathValue("id")
	run, evicted := s.lookupRun(id)
	switch {
	case run != nil:
		return run
	case evicted:
		httpError(w, http.StatusGone, fmt.Errorf("evmd: run %q evicted by retention policy", id))
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("evmd: unknown run %q", id))
	}
	return nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run := s.fetchRun(w, r)
	if run == nil {
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

// handleEvents streams the run's event records from the start: SSE when
// the client asks for text/event-stream (or ?format=sse), NDJSON
// otherwise. The stream ends when the run completes; a disconnected
// client unblocks via the context watcher.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.fetchRun(w, r)
	if run == nil {
		return
	}
	s.streamSubs.Add(1)
	defer s.streamSubs.Add(-1)
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		run.stream.wake()
	}()
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		rec, ok := run.stream.next(i, func() bool { return ctx.Err() != nil })
		if !ok {
			return
		}
		if sse {
			fmt.Fprint(w, "data: ")
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if sse {
			fmt.Fprint(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	run := s.fetchRun(w, r)
	if run == nil {
		return
	}
	samples := run.Samples()
	switch r.URL.Query().Get("format") {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := WriteSamplesCSV(w, samples); err != nil {
			return
		}
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, sm := range samples {
			if err := enc.Encode(sm); err != nil {
				return
			}
		}
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: unknown telemetry format %q", r.URL.Query().Get("format")))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
