package evmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"evm"
	"evm/fuzz"
)

// FuzzRequest is the POST /v1/fuzz body: generate Count scenario specs
// from consecutive generator seeds starting at GenSeed, register them,
// and admit one run per (spec, run seed) pair for the tenant — the
// daemon-side form of an evmfuzz sweep slice.
type FuzzRequest struct {
	Tenant  string   `json:"tenant"`
	GenSeed uint64   `json:"gen_seed"`
	Count   int      `json:"count"`
	Seeds   []uint64 `json:"seeds,omitempty"`
	// Profile picks the generator profile: "default" or "multihop".
	Profile string `json:"profile,omitempty"`
}

// maxFuzzCount bounds one request's registry growth; sweeps larger than
// this belong in the evmfuzz CLI, not a daemon run table.
const maxFuzzCount = 256

// FuzzResponse acknowledges an admitted fuzz submission (HTTP 202).
type FuzzResponse struct {
	Scenarios  []string    `json:"scenarios"`
	Runs       []RunStatus `json:"runs"`
	QueueDepth int         `json:"queue_depth"`
}

func (s *Server) handleFuzz(w http.ResponseWriter, r *http.Request) {
	var req FuzzRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: bad fuzz body: %w", err))
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > maxFuzzCount {
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: fuzz count %d exceeds %d per request", req.Count, maxFuzzCount))
		return
	}
	prof := fuzz.DefaultProfile()
	switch req.Profile {
	case "", "default":
	case "multihop":
		prof = fuzz.MultihopProfile()
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("evmd: unknown fuzz profile %q", req.Profile))
		return
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	var (
		names []string
		specs []evm.RunSpec
	)
	for i := 0; i < req.Count; i++ {
		spec := fuzz.GenerateWith(req.GenSeed+uint64(i), prof)
		if err := fuzz.EnsureRegistered(spec); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		names = append(names, spec.Name)
		for _, seed := range seeds {
			specs = append(specs, evm.RunSpec{Scenario: spec.Name, Seed: seed})
		}
	}
	runs, err := s.Submit(req.Tenant, specs...)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := FuzzResponse{Scenarios: names, Runs: make([]RunStatus, len(runs))}
	for i, run := range runs {
		resp.Runs[i] = run.snapshot()
	}
	resp.QueueDepth, _ = s.queue.depths()
	writeJSON(w, http.StatusAccepted, resp)
}
