package evmd

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"evm"
)

// EventRecord is one streamed event line: the run's virtual timestamp,
// the cell the event is attributed to (campus streams; "" for
// single-cell runs), the event's telemetry series and its stable
// one-line rendering. Event strings are byte-identical across equal-seed
// runs, so two subscribers — or two tenants — comparing streams see
// exactly the library's determinism guarantee.
type EventRecord struct {
	T      float64 `json:"t"` // virtual seconds
	Cell   string  `json:"cell,omitempty"`
	Series string  `json:"series"`
	Event  string  `json:"event"`
}

// Sample is one flat telemetry measurement in the vpnctl-Metric style:
// every field is a column, ready for CSV or a TSDB row. The daemon emits
// one cumulative-count sample per event on its (cell, series) pair —
// per-cell load, backbone drops, rollout phases — plus one sample per
// final run metric (failover latency, qos_coverage, ...) stamped at the
// horizon with series "metric.<name>".
type Sample struct {
	T        float64 `json:"t"` // virtual seconds
	Run      string  `json:"run"`
	Tenant   string  `json:"tenant"`
	Scenario string  `json:"scenario"`
	Seed     uint64  `json:"seed"`
	Cell     string  `json:"cell,omitempty"`
	Series   string  `json:"series"`
	Value    float64 `json:"value"`
}

// sampleSeries refines evm.SeriesName for telemetry: backbone drops get
// their own series (the bus folds deliver/drop into one event type), and
// rollout events carry their phase as the series suffix so a dashboard
// can plot rollout progress directly.
func sampleSeries(ev evm.Event) string {
	if ce, ok := ev.(evm.CellEvent); ok {
		return sampleSeries(ce.Inner)
	}
	switch e := ev.(type) {
	case evm.BackboneEvent:
		if e.Kind == evm.BackboneDrop {
			return "backbone_drops"
		}
	case evm.RolloutEvent:
		return "rollout_phase." + string(e.Phase)
	}
	return evm.SeriesName(ev)
}

// stream is one run's append-only observation log: event records for
// streaming subscribers and flat samples for telemetry export. Writers
// (the run's worker goroutine) append under mu; readers follow the log
// by index and block on cond until more arrives or the stream closes.
// Late subscribers replay from the start — runs are deterministic and
// bounded, so replay-from-zero is both cheap and the property the
// determinism tests lean on.
type stream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	events  []EventRecord
	samples []Sample
	counts  map[string]float64
	closed  bool
}

func newStream() *stream {
	s := &stream{counts: make(map[string]float64)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// observe appends one bus event as a stream record plus a cumulative
// (cell, series) count sample. It runs synchronously on the simulation
// goroutine, so ordering is the bus's deterministic publication order.
func (s *stream) observe(run *Run, ev evm.Event) {
	cell := ""
	if ce, ok := ev.(evm.CellEvent); ok {
		cell = ce.Cell
	}
	series := sampleSeries(ev)
	rec := EventRecord{
		T:      ev.When().Seconds(),
		Cell:   cell,
		Series: series,
		Event:  ev.String(),
	}
	s.mu.Lock()
	s.events = append(s.events, rec)
	key := cell + "|" + series
	s.counts[key]++
	s.samples = append(s.samples, Sample{
		T:        rec.T,
		Run:      run.ID,
		Tenant:   run.Tenant,
		Scenario: run.Spec.Scenario,
		Seed:     run.Spec.Seed,
		Cell:     cell,
		Series:   series,
		Value:    s.counts[key],
	})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finalize stamps every final run metric as a sample at the horizon.
// Metric keys are emitted in sorted order so the sample log, like the
// event log, is byte-deterministic.
func (s *stream) finalize(run *Run, now time.Duration, metrics map[string]float64) {
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	for _, k := range keys {
		s.samples = append(s.samples, Sample{
			T:        now.Seconds(),
			Run:      run.ID,
			Tenant:   run.Tenant,
			Scenario: run.Spec.Scenario,
			Seed:     run.Spec.Seed,
			Series:   "metric." + k,
			Value:    metrics[k],
		})
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// close ends the stream; blocked readers drain and return. Idempotent.
func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// next returns the record at index i, blocking until it exists. ok is
// false once the stream is closed and fully drained, or when cancel
// (checked after every wakeup) reports the reader is gone; callers pair
// it with a goroutine that broadcasts on context cancellation.
func (s *stream) next(i int, cancelled func() bool) (EventRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if i < len(s.events) {
			return s.events[i], true
		}
		if s.closed || (cancelled != nil && cancelled()) {
			return EventRecord{}, false
		}
		s.cond.Wait()
	}
}

// wake re-broadcasts the stream condition (used to unblock readers when
// their HTTP context is cancelled).
func (s *stream) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// lens returns the current event and sample counts.
func (s *stream) lens() (events, samples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events), len(s.samples)
}

// snapshotEvents copies the event records seen so far.
func (s *stream) snapshotEvents() []EventRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]EventRecord(nil), s.events...)
}

// snapshotSamples copies the samples seen so far.
func (s *stream) snapshotSamples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Events returns the run's streamed event records so far (all of them
// once the run finishes).
func (r *Run) Events() []EventRecord { return r.stream.snapshotEvents() }

// Samples returns the run's flat telemetry samples so far.
func (r *Run) Samples() []Sample { return r.stream.snapshotSamples() }

// WriteSamplesCSV renders samples as one flat CSV table
// (t,run,tenant,scenario,seed,cell,series,value).
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "run", "tenant", "scenario", "seed", "cell", "series", "value"}); err != nil {
		return err
	}
	for _, sm := range samples {
		rec := []string{
			strconv.FormatFloat(sm.T, 'g', -1, 64),
			sm.Run, sm.Tenant, sm.Scenario,
			strconv.FormatUint(sm.Seed, 10),
			sm.Cell, sm.Series,
			strconv.FormatFloat(sm.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SerialEvents executes the spec synchronously on the calling goroutine
// — no daemon, no queue — and returns exactly the event records evmd
// would stream for it. This is the reference side of the multi-tenant
// determinism guarantee: a run streamed through the daemon under load
// must be byte-identical to its SerialEvents output. evmload -verify and
// the evmd test suite both compare against it.
func SerialEvents(spec evm.RunSpec) ([]EventRecord, error) {
	ref := &Run{ID: "serial", Tenant: "serial", Spec: spec, stream: newStream()}
	runner := &evm.Runner{
		Workers: 1,
		Instrument: func(_ evm.RunSpec, exp *evm.Experiment) func(map[string]float64) {
			bus := exp.Cell.Events
			if exp.Campus != nil {
				bus = exp.Campus.Events
			}
			sub := bus().Subscribe(func(ev evm.Event) { ref.stream.observe(ref, ev) })
			return func(map[string]float64) { sub.Cancel() }
		},
	}
	res := runner.RunOne(spec)
	if res.Err != nil {
		return nil, res.Err
	}
	ref.stream.close()
	return ref.stream.snapshotEvents(), nil
}
