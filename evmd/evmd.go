// Package evmd is the campus-as-a-service daemon: a long-running,
// multi-tenant front end over the evm library. Tenants submit scenario
// runs over HTTP (POST /v1/runs); an admission-controlled worker pool
// executes them through the existing evm.Runner one spec at a time, so
// every run keeps the library's per-run RNG/engine isolation and its
// byte-identical-per-seed event stream — concurrency changes throughput,
// never results. Each run's typed event bus is re-published as a
// streaming subscription (SSE or NDJSON) and as flat, CSV/TSDB-friendly
// telemetry samples; per-run and per-tenant status snapshots round out
// the observation surface.
package evmd

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evm"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers bounds run concurrency (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue across all tenants; further
	// submissions are rejected with backpressure (HTTP 429). Default 1024.
	QueueDepth int
	// TenantQueueDepth bounds one tenant's share of the queue so a noisy
	// tenant cannot occupy it wholesale (default: QueueDepth, i.e. off).
	TenantQueueDepth int
	// EventDir, when non-empty, flushes every run's event log as a CSV
	// under <EventDir>/<runID>/ (the Runner's per-run recorder output).
	EventDir string
	// DrainTimeout bounds Drain when the caller passes zero (default 30s).
	DrainTimeout time.Duration
	// RunTTL, when positive, evicts finished runs (done/failed/cancelled)
	// from the run table once they have been finished this long. Evicted
	// runs answer HTTP 410 Gone. Zero keeps runs forever.
	RunTTL time.Duration
	// MaxRuns, when positive, caps the run table: whenever it grows past
	// the cap, the oldest finished runs are evicted until it fits (live
	// runs are never evicted, so the table may transiently exceed the cap
	// under a burst of in-flight work). Zero means unbounded.
	MaxRuns int
	// Clock supplies the host time used for run timestamps, TTL eviction
	// and drain timeouts. Nil means the real wall clock; tests inject a
	// fake so TTL behavior is exercised without sleeping.
	Clock Clock
	// Trace enables per-run causal tracing: each run records seeded
	// virtual-time spans, span-derived latency metrics join the run's
	// metric map, and the Chrome-trace JSON is served at
	// GET /v1/runs/{id}/trace until the run is evicted.
	Trace bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon handler. Off by default: profiling endpoints expose host
	// internals and belong behind an operator flag.
	EnablePprof bool
}

// Clock abstracts the host wall clock at the daemon boundary. The
// simulation itself never sees it — runs advance on virtual time — but
// admission timestamps, TTL eviction and drain timeouts are genuinely
// host-side concerns, and injecting the clock lets tests drive them
// deterministically.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

//evm:allow-wallclock host boundary: evmd stamps real submission/start/finish times when no fake clock is injected
func (realClock) Now() time.Time { return time.Now() }

//evm:allow-wallclock host boundary: real drain timeout when no fake clock is injected
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.TenantQueueDepth <= 0 || c.TenantQueueDepth > c.QueueDepth {
		c.TenantQueueDepth = c.QueueDepth
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// RunState is a run's lifecycle phase.
type RunState string

// Run lifecycle states.
const (
	RunQueued    RunState = "queued"
	RunRunning   RunState = "running"
	RunDone      RunState = "done"
	RunFailed    RunState = "failed"
	RunCancelled RunState = "cancelled"
)

// Run is one admitted submission. Mutable fields are guarded by mu; the
// identity fields (ID, Tenant, Spec) are immutable after admission.
type Run struct {
	ID     string
	Tenant string
	Spec   evm.RunSpec

	stream *stream

	mu          sync.Mutex
	state       RunState
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	cells       []CellStatus
	metrics     map[string]float64
	trace       []byte // Chrome-trace JSON (Config.Trace)
	allocBytes  uint64 // host alloc delta over the run
	err         string
}

// CellStatus is one row of a run's NodeStatus-style cell table.
type CellStatus struct {
	Cell    string `json:"cell"`
	Members int    `json:"members"`
	Nodes   int    `json:"nodes"`
}

// RunStatus is the wire snapshot of a run (GET /v1/runs/{id}).
type RunStatus struct {
	ID          string             `json:"id"`
	Tenant      string             `json:"tenant"`
	Scenario    string             `json:"scenario"`
	Seed        uint64             `json:"seed"`
	Label       string             `json:"label"`
	State       RunState           `json:"state"`
	SubmittedAt time.Time          `json:"submitted_at"`
	StartedAt   *time.Time         `json:"started_at,omitempty"`
	FinishedAt  *time.Time         `json:"finished_at,omitempty"`
	QueueWaitMS float64            `json:"queue_wait_ms"`
	WallMS      float64            `json:"wall_ms"`
	AllocBytes  uint64             `json:"alloc_bytes,omitempty"`
	Trace       bool               `json:"trace,omitempty"`
	Events      int                `json:"events"`
	Samples     int                `json:"samples"`
	Cells       []CellStatus       `json:"cells,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Error       string             `json:"error,omitempty"`
}

func (r *Run) snapshot() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:          r.ID,
		Tenant:      r.Tenant,
		Scenario:    r.Spec.Scenario,
		Seed:        r.Spec.Seed,
		Label:       r.Spec.Label(),
		State:       r.state,
		SubmittedAt: r.submittedAt,
		Cells:       append([]CellStatus(nil), r.cells...),
		Error:       r.err,
	}
	if !r.startedAt.IsZero() {
		t := r.startedAt
		st.StartedAt = &t
		st.QueueWaitMS = float64(r.startedAt.Sub(r.submittedAt)) / float64(time.Millisecond)
	}
	if !r.finishedAt.IsZero() {
		t := r.finishedAt
		st.FinishedAt = &t
		st.WallMS = float64(r.finishedAt.Sub(r.startedAt)) / float64(time.Millisecond)
	}
	st.AllocBytes = r.allocBytes
	st.Trace = len(r.trace) > 0
	if r.metrics != nil {
		st.Metrics = make(map[string]float64, len(r.metrics))
		for k, v := range r.metrics {
			st.Metrics[k] = v
		}
	}
	st.Events, st.Samples = r.stream.lens()
	return st
}

// State returns the run's current lifecycle state.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Stats is the daemon-wide counter snapshot (GET /v1/stats).
type Stats struct {
	Workers             int   `json:"workers"`
	QueueDepth          int   `json:"queue_depth"`
	PeakQueueDepth      int   `json:"peak_queue_depth"`
	QueueBound          int   `json:"queue_bound"`
	Running             int   `json:"running"`
	Accepted            int64 `json:"accepted"`
	RejectedBackpressur int64 `json:"rejected_backpressure"`
	RejectedDraining    int64 `json:"rejected_draining"`
	Completed           int64 `json:"completed"`
	Failed              int64 `json:"failed"`
	Cancelled           int64 `json:"cancelled"`
	Evicted             int64 `json:"evicted"`
	Draining            bool  `json:"draining"`
}

// Server owns the tenant fleet: the run table, the fair admission queue
// and the worker pool. Create one with NewServer and mount Handler on an
// http.Server; call Drain on shutdown.
type Server struct {
	cfg   Config
	queue *fairQueue

	mu      sync.Mutex
	seq     int
	runs    map[string]*Run
	order   []string // run IDs in admission order
	tenants map[string][]*Run

	running  atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64 // backpressure
	refused  atomic.Int64 // draining
	done     atomic.Int64
	failed   atomic.Int64
	cancels  atomic.Int64
	evicted  atomic.Int64
	draining atomic.Bool

	// Scrape-surface instruments (GET /metrics).
	admitHist   *histogram   // POST /v1/runs handler latency, seconds
	runWallHist *histogram   // per-run wall execution time, seconds
	streamSubs  atomic.Int64 // open event-stream subscriptions

	workers sync.WaitGroup
}

// NewServer builds the daemon and starts its worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		queue:       newFairQueue(cfg.QueueDepth, cfg.TenantQueueDepth),
		runs:        make(map[string]*Run),
		tenants:     make(map[string][]*Run),
		admitHist:   newHistogram(admissionBuckets()...),
		runWallHist: newHistogram(runWallBuckets()...),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				run, ok := s.queue.pop()
				if !ok {
					return
				}
				s.execute(run)
			}
		}()
	}
	return s
}

// Admission errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is backpressure: the admission queue (or the tenant's
	// share of it) is at its bound.
	ErrQueueFull = errors.New("evmd: admission queue full")
	// ErrDraining means the daemon is shutting down and refuses new work.
	ErrDraining = errors.New("evmd: draining, not accepting submissions")
)

// Submit admits one run per spec, all under the same tenant, atomically:
// either every spec is queued or none is (ErrQueueFull/ErrDraining).
// Scenario names are validated against the registry before admission.
func (s *Server) Submit(tenant string, specs ...evm.RunSpec) ([]*Run, error) {
	if tenant == "" {
		tenant = "default"
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("evmd: submission carries no specs")
	}
	if s.draining.Load() {
		s.refused.Add(int64(len(specs)))
		return nil, ErrDraining
	}
	known := make(map[string]bool)
	for _, name := range evm.Scenarios() {
		known[name] = true
	}
	for _, spec := range specs {
		if !known[spec.Scenario] {
			return nil, fmt.Errorf("evmd: unknown scenario %q", spec.Scenario)
		}
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	runs := make([]*Run, len(specs))
	for i, spec := range specs {
		s.seq++
		runs[i] = &Run{
			ID:          fmt.Sprintf("r-%06d", s.seq),
			Tenant:      tenant,
			Spec:        spec,
			state:       RunQueued,
			submittedAt: now,
			stream:      newStream(),
		}
	}
	s.mu.Unlock()
	if err := s.queue.pushAll(runs); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejected.Add(int64(len(specs)))
		} else {
			s.refused.Add(int64(len(specs)))
		}
		return nil, err
	}
	s.mu.Lock()
	for _, run := range runs {
		s.runs[run.ID] = run
		s.order = append(s.order, run.ID)
		s.tenants[tenant] = append(s.tenants[tenant], run)
	}
	s.evictLocked(s.cfg.Clock.Now())
	s.mu.Unlock()
	s.accepted.Add(int64(len(specs)))
	return runs, nil
}

// evictLocked enforces Config.RunTTL and Config.MaxRuns over the run
// table. Only finished runs are candidates; they leave in admission
// order, so the table always keeps the most recent history. Callers
// hold s.mu. Returns how many runs were evicted.
func (s *Server) evictLocked(now time.Time) int {
	if s.cfg.RunTTL <= 0 && s.cfg.MaxRuns <= 0 {
		return 0
	}
	finished := func(r *Run) (time.Time, bool) {
		r.mu.Lock()
		defer r.mu.Unlock()
		switch r.state {
		case RunDone, RunFailed, RunCancelled:
			return r.finishedAt, true
		}
		return time.Time{}, false
	}
	evict := make(map[string]bool)
	if s.cfg.RunTTL > 0 {
		for _, id := range s.order {
			if at, ok := finished(s.runs[id]); ok && now.Sub(at) >= s.cfg.RunTTL {
				evict[id] = true
			}
		}
	}
	if s.cfg.MaxRuns > 0 {
		excess := len(s.runs) - len(evict) - s.cfg.MaxRuns
		for _, id := range s.order {
			if excess <= 0 {
				break
			}
			if evict[id] {
				continue
			}
			if _, ok := finished(s.runs[id]); ok {
				evict[id] = true
				excess--
			}
		}
	}
	if len(evict) == 0 {
		return 0
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict[id] {
			delete(s.runs, id)
		} else {
			kept = append(kept, id)
		}
	}
	s.order = kept
	for tenant, runs := range s.tenants {
		keptRuns := runs[:0]
		for _, r := range runs {
			if !evict[r.ID] {
				keptRuns = append(keptRuns, r)
			}
		}
		s.tenants[tenant] = keptRuns
	}
	s.evicted.Add(int64(len(evict)))
	return len(evict)
}

// EvictNow applies the eviction policy immediately (it otherwise runs
// on every admission and completion) and reports how many runs left
// the table.
func (s *Server) EvictNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictLocked(s.cfg.Clock.Now())
}

// lookupRun distinguishes a live run, an evicted run, and an ID the
// daemon never issued. Run IDs are sequential, so any well-formed ID
// at or below the admission sequence that is no longer in the table
// must have been evicted — that is the HTTP 410 watermark.
func (s *Server) lookupRun(id string) (run *Run, evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok {
		return r, false
	}
	var n int
	if _, err := fmt.Sscanf(id, "r-%06d", &n); err == nil && n >= 1 && n <= s.seq {
		return nil, true
	}
	return nil, false
}

// execute runs one admitted submission on the calling worker goroutine.
func (s *Server) execute(run *Run) {
	s.running.Add(1)
	defer s.running.Add(-1)
	run.mu.Lock()
	run.state = RunRunning
	run.startedAt = s.cfg.Clock.Now()
	run.mu.Unlock()

	runner := &evm.Runner{
		Workers:   1,
		Trace:     s.cfg.Trace,
		HostStats: true,
		Instrument: func(spec evm.RunSpec, exp *evm.Experiment) func(map[string]float64) {
			var bus *evm.Bus
			var now func() time.Duration
			var cells []CellStatus
			if exp.Campus != nil {
				bus, now = exp.Campus.Events(), exp.Campus.Now
				for _, c := range exp.Campus.Cells() {
					cells = append(cells, CellStatus{Cell: c.Name(), Members: len(c.Members()), Nodes: len(c.Nodes())})
				}
			} else {
				bus, now = exp.Cell.Events(), exp.Cell.Now
				name := exp.Cell.Name()
				if name == "" {
					name = "cell"
				}
				cells = []CellStatus{{Cell: name, Members: len(exp.Cell.Members()), Nodes: len(exp.Cell.Nodes())}}
			}
			run.mu.Lock()
			run.cells = cells
			run.mu.Unlock()
			sub := bus.Subscribe(func(ev evm.Event) { run.stream.observe(run, ev) })
			return func(metrics map[string]float64) {
				sub.Cancel()
				run.stream.finalize(run, now(), metrics)
			}
		},
	}
	if s.cfg.EventDir != "" {
		dir := filepath.Join(s.cfg.EventDir, run.ID)
		if err := os.MkdirAll(dir, 0o755); err == nil {
			runner.EventDir = dir
		}
	}
	res := runner.RunOne(run.Spec)

	run.mu.Lock()
	run.finishedAt = s.cfg.Clock.Now()
	run.metrics = res.Metrics
	run.trace = res.TraceJSON
	run.allocBytes = res.HostAllocBytes
	wall := run.finishedAt.Sub(run.startedAt)
	if res.Err != nil {
		run.state = RunFailed
		run.err = res.Err.Error()
	} else {
		run.state = RunDone
	}
	run.mu.Unlock()
	s.runWallHist.observe(wall.Seconds())
	run.stream.close()
	if res.Err != nil {
		s.failed.Add(1)
	} else {
		s.done.Add(1)
	}
	s.mu.Lock()
	s.evictLocked(s.cfg.Clock.Now())
	s.mu.Unlock()
}

// Run returns the run record by ID (nil when unknown).
func (s *Server) Run(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Runs returns every run snapshot in admission order, optionally filtered
// by tenant and state ("" = no filter).
func (s *Server) Runs(tenant string, state RunState) []RunStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	runs := s.runs
	out := make([]RunStatus, 0, len(ids))
	for _, id := range ids {
		r := runs[id]
		if tenant != "" && r.Tenant != tenant {
			continue
		}
		out = append(out, r.snapshot())
	}
	s.mu.Unlock()
	if state == "" {
		return out
	}
	filtered := out[:0]
	for _, st := range out {
		if st.State == state {
			filtered = append(filtered, st)
		}
	}
	return filtered
}

// TenantStatus is the wire snapshot of one tenant (GET /v1/tenants/{id}):
// a NodeStatus-style table of the tenant's runs plus rollup counters.
type TenantStatus struct {
	Tenant string             `json:"tenant"`
	Counts map[RunState]int   `json:"counts"`
	Active []RunStatus        `json:"active"`
	Recent []RunStatus        `json:"recent"`
	Totals map[string]float64 `json:"totals,omitempty"`
}

// Tenant snapshots one tenant. Active lists queued+running runs; Recent
// the last finished ones (up to 20); Totals sums selected metrics over
// every finished run (actuations, failovers, qos_coverage mean).
func (s *Server) Tenant(tenant string) TenantStatus {
	s.mu.Lock()
	runs := append([]*Run(nil), s.tenants[tenant]...)
	s.mu.Unlock()
	st := TenantStatus{Tenant: tenant, Counts: make(map[RunState]int)}
	var finished []RunStatus
	totals := make(map[string]float64)
	qosN := 0
	for _, r := range runs {
		snap := r.snapshot()
		st.Counts[snap.State]++
		switch snap.State {
		case RunQueued, RunRunning:
			st.Active = append(st.Active, snap)
		default:
			finished = append(finished, snap)
			for _, k := range []string{evm.MetricActuations, evm.MetricFailovers, evm.MetricBackboneDropped} {
				totals[k] += snap.Metrics[k]
			}
			if v, ok := snap.Metrics[evm.MetricQoSCoverage]; ok {
				totals[evm.MetricQoSCoverage] += v
				qosN++
			}
		}
	}
	if qosN > 0 {
		totals[evm.MetricQoSCoverage] /= float64(qosN)
	}
	if len(finished) > 20 {
		finished = finished[len(finished)-20:]
	}
	st.Recent = finished
	if len(totals) > 0 {
		st.Totals = totals
	}
	return st
}

// Tenants lists the tenants seen so far, sorted.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for t := range s.tenants {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	depth, peak := s.queue.depths()
	return Stats{
		Workers:             s.cfg.Workers,
		QueueDepth:          depth,
		PeakQueueDepth:      peak,
		QueueBound:          s.cfg.QueueDepth,
		Running:             int(s.running.Load()),
		Accepted:            s.accepted.Load(),
		RejectedBackpressur: s.rejected.Load(),
		RejectedDraining:    s.refused.Load(),
		Completed:           s.done.Load(),
		Failed:              s.failed.Load(),
		Cancelled:           s.cancels.Load(),
		Evicted:             s.evicted.Load(),
		Draining:            s.draining.Load(),
	}
}

// Draining reports whether the daemon has begun shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainReport summarizes a graceful shutdown.
type DrainReport struct {
	// Cancelled is how many queued-but-unstarted runs were abandoned.
	Cancelled int
	// TimedOut is true when in-flight runs were still executing at the
	// deadline (their goroutines keep running; streams close when they
	// finish).
	TimedOut bool
}

// Drain begins graceful shutdown: new submissions are refused with
// ErrDraining (HTTP 503), queued-but-unstarted runs are cancelled (their
// streams close immediately), and in-flight runs — which are bounded by
// their virtual-time horizons — are waited for up to timeout (zero =
// Config.DrainTimeout). Event CSVs and telemetry are flushed by the runs
// themselves as they complete. Drain is idempotent.
func (s *Server) Drain(timeout time.Duration) DrainReport {
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	var rep DrainReport
	if !s.draining.CompareAndSwap(false, true) {
		s.workers.Wait()
		return rep
	}
	for _, run := range s.queue.close() {
		run.mu.Lock()
		run.state = RunCancelled
		run.finishedAt = s.cfg.Clock.Now()
		run.mu.Unlock()
		run.stream.close()
		s.cancels.Add(1)
		rep.Cancelled++
	}
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-s.cfg.Clock.After(timeout):
		rep.TimedOut = true
	}
	return rep
}
