package evmd

import "sync"

// fairQueue is the admission layer: a bounded multi-tenant queue drained
// round-robin across tenants, so one tenant's burst of a thousand
// submissions cannot starve another tenant's single run. Within a tenant,
// runs dispatch FIFO. The total bound produces backpressure (ErrQueueFull
// -> HTTP 429); the per-tenant bound caps any one tenant's share.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// perTenant holds each tenant's FIFO of queued runs.
	perTenant map[string][]*Run
	// ring lists tenants with queued work in round-robin order; next
	// indexes the tenant to serve first on the next pop.
	ring []string
	next int

	depth       int
	peak        int
	bound       int
	tenantBound int
	closed      bool
}

func newFairQueue(bound, tenantBound int) *fairQueue {
	q := &fairQueue{
		perTenant:   make(map[string][]*Run),
		bound:       bound,
		tenantBound: tenantBound,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pushAll admits every run or none: the whole batch is rejected when the
// queue (or the batch tenant's share) cannot hold it.
func (q *fairQueue) pushAll(runs []*Run) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.depth+len(runs) > q.bound {
		return ErrQueueFull
	}
	perTenant := make(map[string]int)
	for _, run := range runs {
		perTenant[run.Tenant]++
	}
	for tenant, n := range perTenant {
		if len(q.perTenant[tenant])+n > q.tenantBound {
			return ErrQueueFull
		}
	}
	for _, run := range runs {
		if len(q.perTenant[run.Tenant]) == 0 {
			q.ring = append(q.ring, run.Tenant)
		}
		q.perTenant[run.Tenant] = append(q.perTenant[run.Tenant], run)
		q.depth++
	}
	if q.depth > q.peak {
		q.peak = q.depth
	}
	q.cond.Broadcast()
	return nil
}

// pop blocks until a run is available and returns the next one by
// tenant round-robin. It returns false once the queue is closed (closing
// discards queued runs, so there is nothing left to drain).
func (q *fairQueue) pop() (*Run, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if q.depth > 0 {
			break
		}
		q.cond.Wait()
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	fifo := q.perTenant[tenant]
	run := fifo[0]
	fifo = fifo[1:]
	q.depth--
	if len(fifo) == 0 {
		delete(q.perTenant, tenant)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// next now indexes the following tenant already; wrap via the
		// check at the top of the next pop.
	} else {
		q.perTenant[tenant] = fifo
		q.next++
	}
	return run, true
}

// close stops the queue and returns every still-queued run (for the
// caller to mark cancelled). Blocked pops return false.
func (q *fairQueue) close() []*Run {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var orphans []*Run
	for q.depth > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tenant := q.ring[q.next]
		fifo := q.perTenant[tenant]
		orphans = append(orphans, fifo[0])
		if len(fifo) == 1 {
			delete(q.perTenant, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		} else {
			q.perTenant[tenant] = fifo[1:]
			q.next++
		}
		q.depth--
	}
	q.cond.Broadcast()
	return orphans
}

// depths returns the current and peak queue depth.
func (q *fairQueue) depths() (depth, peak int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth, q.peak
}
