package evmd

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text-exposition metrics for the daemon, with no dependency
// beyond the standard library: a fixed-bucket histogram plus formatting
// helpers, served at GET /metrics. Gauges and counters read straight off
// the Server's existing atomics and queue, so the scrape surface can
// never drift from the /v1/stats JSON — both views render the same
// state.

// histogram is a fixed-bucket, cumulative-on-render histogram matching
// Prometheus semantics: bucket le="bounds[i]" counts observations
// <= bounds[i]. Safe for concurrent observation.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, last is the +Inf overflow
	sum    float64
	total  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns the per-bucket counts, the sum and the total count.
func (h *histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.total
}

// write renders the histogram in exposition format.
func (h *histogram) write(b *strings.Builder, name, help string) {
	counts, sum, total := h.snapshot()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

func writeCounter(b *strings.Builder, name, help string, v int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// admissionBuckets spans sub-millisecond in-process admissions through
// multi-second stalls behind a saturated queue.
func admissionBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
}

// runWallBuckets spans fast single-cell runs through long campus sweeps.
func runWallBuckets() []float64 {
	return []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// runStateCounts tallies the run table by lifecycle state.
func (s *Server) runStateCounts() map[RunState]int {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	out := make(map[RunState]int)
	for _, r := range runs {
		out[r.State()]++
	}
	return out
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	byState := s.runStateCounts()
	var b strings.Builder
	writeGauge(&b, "evmd_workers", "Size of the run worker pool.", float64(st.Workers))
	writeGauge(&b, "evmd_queue_depth", "Current admission queue depth.", float64(st.QueueDepth))
	writeGauge(&b, "evmd_queue_depth_peak", "Peak admission queue depth since start.", float64(st.PeakQueueDepth))
	writeGauge(&b, "evmd_queue_bound", "Admission queue capacity.", float64(st.QueueBound))
	writeGauge(&b, "evmd_running_runs", "Runs executing right now.", float64(st.Running))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	writeGauge(&b, "evmd_draining", "1 while the daemon refuses new submissions.", draining)
	fmt.Fprintf(&b, "# HELP evmd_runs Runs in the table by lifecycle state.\n# TYPE evmd_runs gauge\n")
	for _, state := range []RunState{RunQueued, RunRunning, RunDone, RunFailed, RunCancelled} {
		fmt.Fprintf(&b, "evmd_runs{state=%q} %d\n", string(state), byState[state])
	}
	writeGauge(&b, "evmd_stream_subscribers", "Open event-stream subscriptions.", float64(s.streamSubs.Load()))
	writeCounter(&b, "evmd_submissions_accepted_total", "Specs admitted to the queue.", st.Accepted)
	writeCounter(&b, "evmd_submissions_rejected_backpressure_total", "Specs rejected because the queue was full.", st.RejectedBackpressur)
	writeCounter(&b, "evmd_submissions_rejected_draining_total", "Specs refused while draining.", st.RejectedDraining)
	writeCounter(&b, "evmd_runs_completed_total", "Runs finished successfully.", st.Completed)
	writeCounter(&b, "evmd_runs_failed_total", "Runs finished with an error.", st.Failed)
	writeCounter(&b, "evmd_runs_cancelled_total", "Queued runs cancelled by drain.", st.Cancelled)
	writeCounter(&b, "evmd_runs_evicted_total", "Finished runs evicted by the retention policy.", st.Evicted)
	s.admitHist.write(&b, "evmd_admission_latency_seconds", "POST /v1/runs handler latency.")
	s.runWallHist.write(&b, "evmd_run_wall_seconds", "Wall-clock execution time per run.")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
