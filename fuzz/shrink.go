package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"evm"
)

// ShrinkResult is the outcome of delta-debugging one failing run.
type ShrinkResult struct {
	// Spec is the minimized still-failing spec.
	Spec Spec
	// Seed is the run seed the failure reproduces under.
	Seed uint64
	// Violations are the violations the minimized spec still trips.
	Violations []evm.Violation
	// Attempts counts candidate runs, Accepted the reductions that kept
	// the failure alive.
	Attempts, Accepted int
}

// checkerSet extracts the set of checker names behind a failure — the
// shrinking oracle's identity: a reduction is only accepted if at least
// one of the *original* checkers still fires, so the shrinker cannot
// wander off to a different (possibly self-inflicted) failure mode.
func checkerSet(viols []evm.Violation) map[string]bool {
	set := make(map[string]bool, len(viols))
	for _, v := range viols {
		set[v.Checker] = true
	}
	return set
}

func matchesChecker(viols []evm.Violation, want map[string]bool) bool {
	for _, v := range viols {
		if want[v.Checker] {
			return true
		}
	}
	return false
}

// Shrink delta-debugs a failing (spec, seed) run down to a minimal spec
// that still trips at least one of the original failure's checkers. It
// greedily applies reduction passes — drop fault steps, drop the
// rollout, drop whole cells, shave tasks and spares, halve the horizon,
// simplify topology and knobs — re-running the oracle after each
// candidate, and loops to a fixed point. Everything is deterministic:
// the same failing run shrinks to the same minimal spec.
func Shrink(s Spec, seed uint64, orig []evm.Violation) ShrinkResult {
	want := checkerSet(orig)
	res := ShrinkResult{Spec: s, Seed: seed, Violations: orig}
	try := func(cand Spec) bool {
		if cand.Validate() != nil {
			return false
		}
		res.Attempts++
		viols, err := RunOnce(cand, seed)
		if err != nil || !matchesChecker(viols, want) {
			return false
		}
		res.Accepted++
		res.Spec = cand
		res.Violations = viols
		return true
	}
	for changed := true; changed; {
		changed = false
		changed = shrinkFaults(&res.Spec, try) || changed
		changed = shrinkRollout(&res.Spec, try) || changed
		changed = shrinkCells(&res.Spec, try) || changed
		changed = shrinkTasks(&res.Spec, try) || changed
		changed = shrinkSpares(&res.Spec, try) || changed
		changed = shrinkHorizon(&res.Spec, try) || changed
		changed = shrinkKnobs(&res.Spec, try) || changed
	}
	res.Spec.Name = s.Name + "-min"
	return res
}

// shrinkFaults drops fault steps one-minimally, last first.
func shrinkFaults(s *Spec, try func(Spec) bool) bool {
	changed := false
	for i := len(s.Faults) - 1; i >= 0; i-- {
		cand := *s
		cand.Faults = append(append([]FaultGen(nil), s.Faults[:i]...), s.Faults[i+1:]...)
		if try(cand) {
			*s = cand
			changed = true
		}
	}
	return changed
}

func shrinkRollout(s *Spec, try func(Spec) bool) bool {
	if s.Rollout == nil {
		return false
	}
	cand := *s
	cand.Rollout = nil
	if try(cand) {
		*s = cand
		return true
	}
	return false
}

// shrinkCells drops whole cells (last first), cascading away the links
// and faults that referenced them. Validate rejects candidates the drop
// disconnects, so only structurally sound reductions reach the oracle.
func shrinkCells(s *Spec, try func(Spec) bool) bool {
	changed := false
	for i := len(s.Cells) - 1; i >= 0 && len(s.Cells) > 1; i-- {
		name := s.Cells[i].Name
		cand := *s
		cand.Cells = append(append([]CellGen(nil), s.Cells[:i]...), s.Cells[i+1:]...)
		cand.Links = nil
		for _, l := range s.Links {
			if l.A != name && l.B != name {
				cand.Links = append(cand.Links, l)
			}
		}
		cand.Faults = nil
		for _, f := range s.Faults {
			if f.Cell == name || f.A == name || f.B == name {
				continue
			}
			cand.Faults = append(cand.Faults, f)
		}
		if try(cand) {
			*s = cand
			changed = true
		}
	}
	return changed
}

// shrinkTasks shaves the highest-numbered task off each cell, dropping
// faults aimed at its candidates and renumbering spare references down.
// Multi-hop cells are skipped — their station order and positions are
// bound to the task layout.
func shrinkTasks(s *Spec, try func(Spec) bool) bool {
	changed := false
	for i := range s.Cells {
		for s.Cells[i].Tasks > 1 && !s.Cells[i].Multihop {
			c := s.Cells[i]
			prim, back := 2*c.Tasks+1, 2*c.Tasks+2
			cand := *s
			cand.Cells = append([]CellGen(nil), s.Cells...)
			cand.Cells[i].Tasks--
			if c.Placement == PlacementScatter {
				cand.Cells[i].Positions = append([]Point(nil), c.Positions[:len(c.Positions)-2]...)
			}
			cand.Faults = remapFaults(s.Faults, c.Name, func(node int) (int, bool) {
				switch {
				case node == prim || node == back:
					return 0, false
				case node > back:
					return node - 2, true
				default:
					return node, true
				}
			})
			if try(cand) {
				*s = cand
				changed = true
			} else {
				break
			}
		}
	}
	return changed
}

// shrinkSpares removes each cell's highest-numbered spare.
func shrinkSpares(s *Spec, try func(Spec) bool) bool {
	changed := false
	for i := range s.Cells {
		for s.Cells[i].Spares > 0 && !s.Cells[i].Multihop {
			c := s.Cells[i]
			top := c.Nodes()
			cand := *s
			cand.Cells = append([]CellGen(nil), s.Cells...)
			cand.Cells[i].Spares--
			if c.Placement == PlacementScatter {
				cand.Cells[i].Positions = append([]Point(nil), c.Positions[:len(c.Positions)-1]...)
			}
			cand.Faults = remapFaults(s.Faults, c.Name, func(node int) (int, bool) {
				if node == top {
					return 0, false
				}
				return node, true
			})
			if try(cand) {
				*s = cand
				changed = true
			} else {
				break
			}
		}
	}
	return changed
}

// remapFaults rewrites node references of faults targeting one cell;
// remap returns the new node ID or false to drop the fault.
func remapFaults(faults []FaultGen, cell string, remap func(int) (int, bool)) []FaultGen {
	out := make([]FaultGen, 0, len(faults))
	for _, f := range faults {
		if f.Cell == cell && f.Node != 0 {
			node, keep := remap(f.Node)
			if !keep {
				continue
			}
			f.Node = node
		}
		out = append(out, f)
	}
	return out
}

// shrinkHorizon tries half, then three-quarters, of the current horizon.
func shrinkHorizon(s *Spec, try func(Spec) bool) bool {
	changed := false
	for _, num := range []int64{1, 3} {
		den := int64(2)
		if num == 3 {
			den = 4
		}
		cand := *s
		cand.HorizonMS = s.HorizonMS * num / den / 500 * 500
		if cand.HorizonMS < 1000 || cand.HorizonMS >= s.HorizonMS {
			continue
		}
		if try(cand) {
			*s = cand
			changed = true
		}
	}
	return changed
}

// shrinkKnobs zeroes the remaining incidental complexity: explicit
// links (back to the implicit mesh), link and cell loss, the placement
// policy, rebalancing, and — last — the seeded-bug switch itself (the
// oracle rejects that one whenever the switch is what makes it fail).
func shrinkKnobs(s *Spec, try func(Spec) bool) bool {
	changed := false
	cands := []func(Spec) Spec{
		func(c Spec) Spec { c.Links = nil; c.Topology = TopologyMesh; return c },
		func(c Spec) Spec {
			c.Links = append([]LinkGen(nil), c.Links...)
			for i := range c.Links {
				c.Links[i].PER = 0
				c.Links[i].LatencyMS = 0
			}
			return c
		},
		func(c Spec) Spec {
			c.Cells = append([]CellGen(nil), c.Cells...)
			for i := range c.Cells {
				c.Cells[i].PER = 0
			}
			return c
		},
		func(c Spec) Spec { c.Policy = ""; return c },
		func(c Spec) Spec { c.Rebalance = false; return c },
		func(c Spec) Spec { c.UnsafeSkipDemotion = false; return c },
	}
	for _, mk := range cands {
		cand := mk(*s)
		js1, _ := json.Marshal(cand)
		js2, _ := json.Marshal(*s)
		if string(js1) == string(js2) {
			continue
		}
		if try(cand) {
			*s = cand
			changed = true
		}
	}
	return changed
}

// Repro is a self-contained reproduction of one invariant violation:
// the minimized spec, the run seed, and the checkers it trips. It
// round-trips through JSON (`evmfuzz -repro file.json` replays it).
type Repro struct {
	Seed       uint64   `json:"seed"`
	Checkers   []string `json:"checkers"`
	Violations []string `json:"violations"`
	Spec       Spec     `json:"spec"`
}

// NewRepro records a failing run as a portable reproduction.
func NewRepro(s Spec, seed uint64, viols []evm.Violation) Repro {
	r := Repro{Seed: seed, Spec: s}
	for name := range checkerSet(viols) {
		r.Checkers = append(r.Checkers, name)
	}
	sort.Strings(r.Checkers)
	for _, v := range viols {
		r.Violations = append(r.Violations, v.String())
	}
	return r
}

// Replay re-runs the repro's spec under the full checker set.
func (r Repro) Replay() ([]evm.Violation, error) { return RunOnce(r.Spec, r.Seed) }

// Verify replays the repro and errors unless at least one of its
// recorded checkers fires again.
func (r Repro) Verify() error {
	viols, err := r.Replay()
	if err != nil {
		return fmt.Errorf("fuzz: repro %s failed to run: %w", r.Spec.Name, err)
	}
	want := make(map[string]bool, len(r.Checkers))
	for _, c := range r.Checkers {
		want[c] = true
	}
	if !matchesChecker(viols, want) {
		return fmt.Errorf("fuzz: repro %s no longer trips %v (got %d violations)",
			r.Spec.Name, r.Checkers, len(viols))
	}
	return nil
}

// WriteRepro saves the repro as indented JSON.
func WriteRepro(path string, r Repro) error {
	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// LoadRepro reads a repro written by WriteRepro.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	js, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(js, &r); err != nil {
		return r, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return r, nil
}

// RegressionTest renders the repro as a self-contained Go test file in
// package fuzz_test. The emitted test asserts ZERO violations, so it
// keeps failing while the underlying bug reproduces — drop the file
// into fuzz/ to promote a shrunken repro into a permanent regression
// test, and it goes green when the fix lands.
func RegressionTest(r Repro, testName string) ([]byte, error) {
	if testName == "" {
		testName = fmt.Sprintf("TestFuzzRepro%016X", r.Spec.GenSeed)
	}
	specJSON, err := json.MarshalIndent(r.Spec, "", "  ")
	if err != nil {
		return nil, err
	}
	src := fmt.Sprintf(`package fuzz_test

import (
	"encoding/json"
	"testing"

	"evm/fuzz"
)

// %s replays a shrunken evmfuzz reproduction (run seed %d) that
// originally tripped: %s. It fails while the violation reproduces.
func %s(t *testing.T) {
	const specJSON = %s

	var spec fuzz.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatalf("unmarshal repro spec: %%v", err)
	}
	viols, err := fuzz.RunOnce(spec, %d)
	if err != nil {
		t.Fatalf("run repro: %%v", err)
	}
	for _, v := range viols {
		t.Errorf("invariant violation: %%s", v)
	}
}
`, testName, r.Seed, fmt.Sprintf("%v", r.Checkers), testName,
		"`"+string(specJSON)+"`", r.Seed)
	return []byte(src), nil
}
