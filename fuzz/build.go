package fuzz

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"evm"
)

// TaskID names cell c's i-th control loop, campus-unique.
func TaskID(cell string, i int) string { return fmt.Sprintf("%s-loop-%d", cell, i) }

// LineOrder returns the physical station order along a multi-hop line
// cell, derived from roles: the gateway at the head end, the spares as
// relay stations, then the controllers at the far end arranged so every
// backup sits line-adjacent to both its primary and the segment head
// (silence detection and takeover reports only travel one hop, exactly
// the pipeline-scenario shape).
func LineOrder(c CellGen) []evm.NodeID {
	order := []evm.NodeID{1}
	for i := 0; i < c.Spares; i++ {
		order = append(order, evm.NodeID(3+2*c.Tasks+i))
	}
	if c.Tasks == 1 {
		return append(order, 2, 4, 3)
	}
	return append(order, 3, 4, 2, 6, 5)
}

// Builder returns a ScenarioBuilder that reconstructs the spec's system
// for any run seed — the registry-bypass hook for Runner corpus sweeps.
func Builder(s Spec) evm.ScenarioBuilder {
	return func(run evm.RunSpec) (*evm.Experiment, error) { return buildExperiment(s, run) }
}

// Checkers builds a fresh copy of the complete oracle: the default
// invariant set plus the timing invariants at their default bounds.
func Checkers() []evm.InvariantChecker {
	return append(evm.DefaultInvariants(), evm.TimingInvariants(0, 0)...)
}

var registered = struct {
	sync.Mutex
	specs map[string]string
}{specs: make(map[string]string)}

// EnsureRegistered registers the spec as an ordinary scenario under its
// name, so plain RunSpecs (and evmd submissions) can reference it
// through the global registry. Re-registering an identical spec is a
// no-op; a different spec under a taken name is an error.
func EnsureRegistered(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	js, err := json.Marshal(s)
	if err != nil {
		return err
	}
	registered.Lock()
	defer registered.Unlock()
	if prev, ok := registered.specs[s.Name]; ok {
		if prev == string(js) {
			return nil
		}
		return fmt.Errorf("fuzz: scenario %q already registered with a different spec", s.Name)
	}
	if err := evm.RegisterScenario(s.Name, Builder(s)); err != nil {
		return err
	}
	registered.specs[s.Name] = string(js)
	return nil
}

func buildExperiment(s Spec, run evm.RunSpec) (*evm.Experiment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Cells) == 1 && s.Cells[0].Multihop {
		return buildMultihop(s, run)
	}
	return buildCampus(s, run)
}

// fuzzPID is the shared native control law for generated cells.
func fuzzPID() (evm.TaskLogic, error) {
	return evm.NewPIDLogic(evm.PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
		Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
}

// taskSpecs declares the cell's control loops on the repo-wide candidate
// layout. VM cells pull their v1 capsule from the campus store.
func taskSpecs(c CellGen, store *evm.CapsuleStore) []evm.TaskSpec {
	tasks := make([]evm.TaskSpec, 0, c.Tasks)
	for i := 0; i < c.Tasks; i++ {
		id := TaskID(c.Name, i)
		spec := evm.TaskSpec{
			ID:              id,
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          time.Duration(c.PeriodMS) * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []evm.NodeID{evm.NodeID(3 + 2*i), evm.NodeID(4 + 2*i)},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic:       fuzzPID,
		}
		if c.VM {
			spec.MakeLogic = func() (evm.TaskLogic, error) {
				capsule, ok := store.Get(id, 1)
				if !ok {
					return nil, fmt.Errorf("fuzz: no v1 capsule for %s", id)
				}
				return evm.NewVMLogic(capsule)
			}
		}
		tasks = append(tasks, spec)
	}
	return tasks
}

// feedSample synthesizes one near-setpoint reading per loop.
func feedSample(tasks int) func() []evm.SensorReading {
	return func() []evm.SensorReading {
		out := make([]evm.SensorReading, tasks)
		for i := range out {
			out[i] = evm.SensorReading{Port: uint8(i), Value: float64(48 + i)}
		}
		return out
	}
}

func placementFor(c CellGen) evm.Placement {
	switch c.Placement {
	case PlacementLine:
		return evm.Line(3)
	case PlacementScatter:
		pos := make([]evm.Position, len(c.Positions))
		for i, p := range c.Positions {
			pos[i] = evm.Position{X: p.X, Y: p.Y}
		}
		return evm.Fixed(pos...)
	default:
		return evm.Grid(4, (c.Nodes()+3)/4)
	}
}

// campusCellSpec renders one generated cell as a declarative CellSpec.
func campusCellSpec(c CellGen, store *evm.CapsuleStore) evm.CellSpec {
	return evm.CellSpec{
		Name: c.Name,
		Options: []evm.CellOption{
			evm.WithNodeCount(c.Nodes()),
			evm.WithPlacement(placementFor(c)),
			evm.WithSlotsPerNode(3),
			evm.WithPER(c.PER),
		},
		VC: evm.VCConfig{
			Name: c.Name, Head: 2, Gateway: 1,
			Tasks:        taskSpecs(c, store),
			DormantAfter: 5 * time.Second,
		},
		Feed: &evm.FeedSpec{
			Source: 1,
			Period: time.Duration(c.PeriodMS) * time.Millisecond,
			Sample: feedSample(c.Tasks),
		},
	}
}

func ms(v int64) time.Duration { return time.Duration(v) * time.Millisecond }

type cellPlan struct {
	cell string
	plan evm.FaultPlan
}

// faultPlans groups the spec's declarative faults into per-cell
// FaultPlans, expanding cell-outage windows into crash-all/recover-all
// step pairs. Backbone link steps ride on the first cell's plan (they
// are campus-level either way).
func faultPlans(s Spec) []cellPlan {
	steps := make(map[string][]evm.FaultStep)
	add := func(cell string, st evm.FaultStep) { steps[cell] = append(steps[cell], st) }
	for _, f := range s.Faults {
		switch f.Kind {
		case KindCrash:
			add(f.Cell, evm.FaultStep{At: ms(f.AtMS), CrashNode: evm.NodeID(f.Node)})
		case KindRecover:
			add(f.Cell, evm.FaultStep{At: ms(f.AtMS), RecoverNode: evm.NodeID(f.Node)})
		case KindOutage:
			n := s.Cells[s.cell(f.Cell)].Nodes()
			for id := 1; id <= n; id++ {
				add(f.Cell, evm.FaultStep{At: ms(f.AtMS), CrashNode: evm.NodeID(id)})
			}
			for id := 1; id <= n; id++ {
				add(f.Cell, evm.FaultStep{At: ms(f.AtMS + f.ForMS), RecoverNode: evm.NodeID(id)})
			}
		case KindPERBurst:
			add(f.Cell, evm.FaultStep{At: ms(f.AtMS),
				PERBurst: &evm.PERBurst{PER: f.PER, For: ms(f.ForMS)}})
		case KindBattery:
			add(f.Cell, evm.FaultStep{At: ms(f.AtMS),
				BatteryDrain: &evm.BatteryDrain{Node: evm.NodeID(f.Node), Fraction: f.Fraction}})
		case KindDrift:
			add(f.Cell, evm.FaultStep{At: ms(f.AtMS),
				ClockDrift: &evm.ClockDrift{Node: evm.NodeID(f.Node), PPM: f.PPM}})
		case KindLinkDown:
			add(s.Cells[0].Name, evm.FaultStep{At: ms(f.AtMS), LinkDown: &evm.LinkRef{A: f.A, B: f.B}})
		case KindLinkUp:
			add(s.Cells[0].Name, evm.FaultStep{At: ms(f.AtMS), LinkUp: &evm.LinkRef{A: f.A, B: f.B}})
		}
	}
	out := make([]cellPlan, 0, len(steps))
	for _, c := range s.Cells {
		if st := steps[c.Name]; len(st) > 0 {
			out = append(out, cellPlan{cell: c.Name, plan: evm.FaultPlan{Name: "fuzz-" + c.Name, Steps: st}})
		}
	}
	return out
}

// buildCampus assembles the spec's campus: capsule store (for VM/OTA
// specs), backbone links, policy, fault plans and the scheduled rollout.
func buildCampus(s Spec, run evm.RunSpec) (*evm.Experiment, error) {
	policyName := run.Policy
	if policyName == "" {
		policyName = s.Policy
	}
	policy, err := evm.NewPlacementPolicy(policyName)
	if err != nil {
		return nil, err
	}
	var store *evm.CapsuleStore
	var taskIDs []string
	for _, c := range s.Cells {
		for i := 0; i < c.Tasks; i++ {
			taskIDs = append(taskIDs, TaskID(c.Name, i))
		}
	}
	anyVM := false
	for _, c := range s.Cells {
		anyVM = anyVM || c.VM
	}
	if anyVM {
		store = evm.NewCapsuleStore()
		if err := evm.RegisterOTACapsules(store, taskIDs); err != nil {
			return nil, err
		}
		if s.Rollout != nil && s.Rollout.Version == 3 {
			for _, id := range taskIDs {
				bad, err := evm.OTABadCapsule(id, 3)
				if err != nil {
					return nil, err
				}
				if err := store.Register(bad); err != nil {
					return nil, err
				}
			}
		}
	}
	cfg := evm.CampusConfig{
		Seed:      run.Seed,
		Placement: policy,
		Capsules:  store,

		UnsafeSkipStaleMasterDemotion: s.UnsafeSkipDemotion,
	}
	if s.Rebalance {
		cfg.Rebalance = evm.HomewardRebalance{}
	}
	for _, l := range s.Links {
		cfg.Links = append(cfg.Links, evm.BackboneLink{
			A: l.A, B: l.B,
			Config: evm.LinkConfig{Latency: ms(l.LatencyMS), PER: l.PER},
		})
	}
	specs := make([]evm.CellSpec, 0, len(s.Cells))
	for _, c := range s.Cells {
		specs = append(specs, campusCellSpec(c, store))
	}
	campus, err := evm.NewCampus(cfg, specs...)
	if err != nil {
		return nil, err
	}
	for _, pl := range faultPlans(s) {
		if err := campus.ApplyFaultPlan(pl.cell, pl.plan); err != nil {
			campus.Stop()
			return nil, err
		}
	}
	var rollout *evm.Rollout
	if r := s.Rollout; r != nil {
		spec := evm.RolloutSpec{Tasks: taskIDs, Version: r.Version, Strategy: r.Strategy}
		campus.Engine().After(ms(r.AtMS), func() {
			// A refused start (e.g. a task escalated away mid-stage)
			// surfaces through rollout_started staying 0.
			rollout, _ = campus.StartRollout(spec)
		})
	}
	return &evm.Experiment{
		Campus:         campus,
		Policy:         policy.Name(),
		DefaultHorizon: s.Horizon(),
		Metrics: func() map[string]float64 {
			placements := campus.TaskPlacements()
			foreign, alive := 0, 0
			//evm:allow-maporder commutative integer counts over pure read-only lookups; visit order cannot change the totals
			for _, p := range placements {
				if p.Foreign {
					foreign++
				}
				if r := campus.Cell(p.Cell).Medium().Radio(p.Node); r != nil && !r.Failed() {
					alive++
				}
			}
			m := map[string]float64{
				"tasks_total":   float64(len(placements)),
				"tasks_foreign": float64(foreign),
				"tasks_alive":   float64(alive),
			}
			if s.Rollout != nil {
				m["rollout_started"] = 0
				m["rollout_complete"] = 0
				m["rollout_rolled_back"] = 0
				if rollout != nil {
					m["rollout_started"] = 1
					if rollout.State() == evm.RolloutComplete {
						m["rollout_complete"] = 1
					}
					if rollout.State() == evm.RolloutRolledBack {
						m["rollout_rolled_back"] = 1
					}
				}
			}
			return m
		},
		Cleanup: campus.Stop,
	}, nil
}

// buildMultihop assembles the single multi-hop line cell: role-derived
// station order, pinned scatter positions, line schedule, per-hop routes
// and a unicast feed relayed to every controller.
func buildMultihop(s Spec, run evm.RunSpec) (*evm.Experiment, error) {
	c := s.Cells[0]
	order := LineOrder(c)
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: run.Seed},
		evm.WithNodes(order...),
		evm.WithPlacement(placementFor(c)),
		evm.WithSlotsPerNode(3),
		evm.WithPER(c.PER),
		evm.WithLineSchedule(order...))
	if err != nil {
		return nil, err
	}
	vc := evm.VCConfig{
		Name: c.Name, Head: 2, Gateway: 1,
		Tasks:        taskSpecs(c, nil),
		DormantAfter: 5 * time.Second,
	}
	if err := cell.Deploy(vc); err != nil {
		cell.Stop()
		return nil, err
	}
	if err := cell.InstallLineRoutes(order...); err != nil {
		cell.Stop()
		return nil, err
	}
	dsts := make([]evm.NodeID, 0, 2*c.Tasks)
	for _, t := range vc.Tasks {
		dsts = append(dsts, t.Candidates...)
	}
	feed, err := cell.StartSensorFeedTo(1, time.Duration(c.PeriodMS)*time.Millisecond,
		feedSample(c.Tasks), dsts...)
	if err != nil {
		cell.Stop()
		return nil, err
	}
	if plans := faultPlans(s); len(plans) > 0 {
		if err := cell.ApplyFaultPlan(plans[0].plan); err != nil {
			feed.Stop()
			cell.Stop()
			return nil, err
		}
	}
	return &evm.Experiment{
		Cell:           cell,
		DefaultHorizon: s.Horizon(),
		Metrics: func() map[string]float64 {
			relayed := 0
			duty := 0.0
			sched := cell.Network().Schedule()
			for _, id := range order {
				relayed += cell.Network().Link(id).Stats().FragsRelayed
				duty += sched.ActiveSlotFraction(id, cell.Network().Config())
			}
			return map[string]float64{
				"relayed_frags": float64(relayed),
				"line_duty":     duty / float64(len(order)),
			}
		},
		QoS:     func() evm.QoSReport { return evm.EvaluateQoS(vc, cell.Nodes()) },
		Cleanup: func() { feed.Stop(); cell.Stop() },
	}, nil
}
