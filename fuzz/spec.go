// Package fuzz turns the invariant harness into a fuzzing oracle: it
// generates random campus scenarios — topology, cell composition, node
// placement, placement policy, fault plan and optional OTA rollout — as
// plain serializable data derived deterministically from one uint64
// seed, sweeps them through the parallel Runner under the complete
// checker set, and on any violation delta-debugs the generating spec
// down to a minimal still-failing reproduction.
//
// The pipeline is seed → Spec → Experiment → violations → Shrink →
// repro. Every stage is deterministic: the same generator seed yields
// byte-identical specs, and the same spec + run seed yields
// byte-identical campus event streams, so any failure a sweep finds is
// exactly replayable from two integers.
package fuzz

import (
	"encoding/json"
	"fmt"
	"time"
)

// Fault kinds understood by FaultGen.
const (
	// KindCrash fails one node's radio.
	KindCrash = "crash"
	// KindRecover restores a crashed node's radio.
	KindRecover = "recover"
	// KindOutage crashes every node of a cell at AtMS and recovers them
	// all at AtMS+ForMS — the whole-cell escalation exercise.
	KindOutage = "cell-outage"
	// KindPERBurst forces cell-wide packet loss of PER for ForMS.
	KindPERBurst = "per-burst"
	// KindBattery instantly drains Fraction of a node's battery.
	KindBattery = "battery-drain"
	// KindDrift sets a node's oscillator drift to PPM.
	KindDrift = "clock-drift"
	// KindLinkDown severs the backbone link A—B; KindLinkUp restores it.
	KindLinkDown = "link-down"
	KindLinkUp   = "link-up"
)

// Cell placements understood by CellGen.
const (
	// PlacementGrid lays members on a 4-column 3 m lattice.
	PlacementGrid = "grid"
	// PlacementLine lays members on the X axis with 3 m spacing.
	PlacementLine = "line"
	// PlacementScatter places members at the explicit Positions — the
	// serialized form of a RandomUniform draw, fixed at generation time
	// so the field survives spec round-trips byte-for-byte.
	PlacementScatter = "scatter"
)

// Topology names for Spec.Topology (documentation only — the built
// campus follows Links; an empty Links slice is the implicit full mesh).
const (
	TopologyMesh   = "mesh"
	TopologyRing   = "ring"
	TopologyLine   = "line"
	TopologyRandom = "random"
	// TopologySingle marks a standalone one-cell spec (no backbone).
	TopologySingle = "single"
)

// Point is one node position in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// CellGen describes one generated cell. Node IDs follow the repo-wide
// convention: gateway 1, head 2, task i's candidates 3+2i (primary) and
// 4+2i (backup), spares above. For multi-hop cells the physical station
// order along the line is role-derived (see LineOrder) and Positions
// holds one point per station in that order.
type CellGen struct {
	Name string `json:"name"`
	// Tasks is the number of control loops (candidate pairs).
	Tasks int `json:"tasks"`
	// Spares is the number of idle members available for escalated
	// tasks (and, on multi-hop cells, as relay stations).
	Spares int `json:"spares"`
	// PeriodMS is the loop period and feed cadence.
	PeriodMS int64 `json:"period_ms"`
	// PER forces a fixed packet error rate on every in-range link
	// (0 = perfect channel).
	PER float64 `json:"per"`
	// Placement is grid, line or scatter.
	Placement string `json:"placement"`
	// Positions pins every member's location for PlacementScatter
	// (member-order for mesh cells, line-order for multi-hop cells).
	Positions []Point `json:"positions,omitempty"`
	// Multihop replaces the full-mesh TDMA schedule with a line
	// schedule plus per-hop routes: slots are heard only by line
	// neighbors, so traffic between distant stations must be relayed.
	// Only valid on single-cell specs.
	Multihop bool `json:"multihop,omitempty"`
	// VM runs every loop on the v1 VM control law instead of native
	// PID — required for cells targeted by an OTA rollout.
	VM bool `json:"vm,omitempty"`
}

// Nodes returns the cell's member count.
func (c CellGen) Nodes() int { return 2 + 2*c.Tasks + c.Spares }

// LinkGen describes one explicit backbone link.
type LinkGen struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	LatencyMS int64   `json:"latency_ms,omitempty"`
	PER       float64 `json:"per,omitempty"`
}

// FaultGen is one declarative fault step of a generated spec. Kind
// selects the action; the remaining fields parameterize it.
type FaultGen struct {
	AtMS int64  `json:"at_ms"`
	Kind string `json:"kind"`
	// Cell targets a cell by name (crash/recover/outage/per-burst/
	// battery/drift).
	Cell string `json:"cell,omitempty"`
	// Node targets one member inside Cell.
	Node int `json:"node,omitempty"`
	// PER is the burst loss rate for per-burst.
	PER float64 `json:"per,omitempty"`
	// ForMS is the burst window (per-burst) or outage length (cell-outage).
	ForMS int64 `json:"for_ms,omitempty"`
	// Fraction is the battery fraction to drain, in (0,1].
	Fraction float64 `json:"fraction,omitempty"`
	// PPM is the oscillator drift for clock-drift.
	PPM float64 `json:"ppm,omitempty"`
	// A and B name the backbone link for link-down / link-up.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
}

// RolloutGen schedules an OTA rollout against the generated campus.
type RolloutGen struct {
	AtMS int64 `json:"at_ms"`
	// Version is the capsule version rolled out: 2 is the retuned good
	// law, 3 the seeded never-actuating law (health window must trip
	// and roll back).
	Version uint8 `json:"version"`
	// Strategy names the RolloutPolicy ("" = canary-cell).
	Strategy string `json:"strategy,omitempty"`
}

// Spec is one generated scenario, fully described as plain data: it
// marshals to JSON, registers as an ordinary scenario, and rebuilds the
// identical campus on every run. GenSeed records the generator seed the
// spec was derived from (informational once the spec exists — shrinking
// edits the spec directly and never re-generates).
type Spec struct {
	Name     string    `json:"name"`
	GenSeed  uint64    `json:"gen_seed"`
	Topology string    `json:"topology"`
	Cells    []CellGen `json:"cells"`
	// Links is the explicit backbone topology (empty = full mesh).
	Links []LinkGen `json:"links,omitempty"`
	// Policy names the placement policy ("" = least-loaded).
	Policy string `json:"policy,omitempty"`
	// Rebalance enables homeward rebalancing of escalated tasks.
	Rebalance bool `json:"rebalance,omitempty"`
	// HorizonMS is the run length in virtual milliseconds.
	HorizonMS int64       `json:"horizon_ms"`
	Faults    []FaultGen  `json:"faults,omitempty"`
	Rollout   *RolloutGen `json:"rollout,omitempty"`
	// UnsafeSkipDemotion re-introduces the pre-handshake dual-master
	// bug (CampusConfig.UnsafeSkipStaleMasterDemotion) — the seeded
	// violation the shrinker self-test minimizes. Never set outside
	// tests.
	UnsafeSkipDemotion bool `json:"unsafe_skip_demotion,omitempty"`
}

// Horizon returns the spec's run length.
func (s Spec) Horizon() time.Duration { return time.Duration(s.HorizonMS) * time.Millisecond }

// MarshalIndent renders the spec as stable, human-diffable JSON.
func (s Spec) MarshalIndent() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// cell returns the named cell's index, or -1.
func (s Spec) cell(name string) int {
	for i, c := range s.Cells {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the spec's internal consistency — every reference
// resolves, every parameter is in range, and multi-hop constraints hold.
// Builders call it before constructing anything, and the shrinker uses
// it to discard ill-formed reduction candidates without running them.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("fuzz: spec needs a name")
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("fuzz: spec %s has no cells", s.Name)
	}
	if s.HorizonMS <= 0 {
		return fmt.Errorf("fuzz: spec %s horizon %d ms", s.Name, s.HorizonMS)
	}
	seen := make(map[string]bool, len(s.Cells))
	for i, c := range s.Cells {
		if c.Name == "" {
			return fmt.Errorf("fuzz: cell %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("fuzz: duplicate cell %q", c.Name)
		}
		seen[c.Name] = true
		if c.Tasks < 1 {
			return fmt.Errorf("fuzz: cell %s has %d tasks", c.Name, c.Tasks)
		}
		if c.Spares < 0 {
			return fmt.Errorf("fuzz: cell %s has %d spares", c.Name, c.Spares)
		}
		if c.PeriodMS <= 0 {
			return fmt.Errorf("fuzz: cell %s period %d ms", c.Name, c.PeriodMS)
		}
		if c.PER < 0 || c.PER > 1 {
			return fmt.Errorf("fuzz: cell %s PER %g outside [0,1]", c.Name, c.PER)
		}
		switch c.Placement {
		case PlacementGrid, PlacementLine:
			if len(c.Positions) != 0 {
				return fmt.Errorf("fuzz: cell %s: positions only valid with scatter placement", c.Name)
			}
		case PlacementScatter:
			if len(c.Positions) != c.Nodes() {
				return fmt.Errorf("fuzz: cell %s: %d positions for %d nodes", c.Name, len(c.Positions), c.Nodes())
			}
		default:
			return fmt.Errorf("fuzz: cell %s: unknown placement %q", c.Name, c.Placement)
		}
		if c.Multihop {
			if len(s.Cells) != 1 {
				return fmt.Errorf("fuzz: multi-hop cell %s in a %d-cell campus (single-cell only)", c.Name, len(s.Cells))
			}
			if c.Tasks > 2 {
				return fmt.Errorf("fuzz: multi-hop cell %s with %d tasks (max 2)", c.Name, c.Tasks)
			}
			if c.Placement != PlacementScatter {
				return fmt.Errorf("fuzz: multi-hop cell %s needs scatter placement", c.Name)
			}
		}
	}
	links := make(map[[2]string]bool, len(s.Links))
	for i, l := range s.Links {
		if s.cell(l.A) < 0 || s.cell(l.B) < 0 || l.A == l.B {
			return fmt.Errorf("fuzz: link %d (%s—%s) does not join two distinct cells", i, l.A, l.B)
		}
		key := linkKey(l.A, l.B)
		if links[key] {
			return fmt.Errorf("fuzz: duplicate link %s—%s", l.A, l.B)
		}
		links[key] = true
		if l.PER < 0 || l.PER >= 1 {
			return fmt.Errorf("fuzz: link %s—%s PER %g outside [0,1)", l.A, l.B, l.PER)
		}
		if l.LatencyMS < 0 {
			return fmt.Errorf("fuzz: link %s—%s latency %d ms", l.A, l.B, l.LatencyMS)
		}
	}
	if len(s.Links) > 0 && !s.connected() {
		return fmt.Errorf("fuzz: spec %s backbone does not connect all %d cells", s.Name, len(s.Cells))
	}
	for i, f := range s.Faults {
		if err := s.validateFault(i, f, links); err != nil {
			return err
		}
	}
	if r := s.Rollout; r != nil {
		if len(s.Cells) < 2 {
			return fmt.Errorf("fuzz: rollout needs a campus (%d cells)", len(s.Cells))
		}
		if r.AtMS <= 0 || r.AtMS >= s.HorizonMS {
			return fmt.Errorf("fuzz: rollout at %d ms outside horizon", r.AtMS)
		}
		if r.Version != 2 && r.Version != 3 {
			return fmt.Errorf("fuzz: rollout version %d (2 = good law, 3 = seeded bad law)", r.Version)
		}
		for _, c := range s.Cells {
			if !c.VM {
				return fmt.Errorf("fuzz: rollout over non-VM cell %s", c.Name)
			}
		}
	}
	return nil
}

func (s Spec) validateFault(i int, f FaultGen, links map[[2]string]bool) error {
	if f.AtMS < 0 || f.AtMS > s.HorizonMS {
		return fmt.Errorf("fuzz: fault %d at %d ms outside horizon %d ms", i, f.AtMS, s.HorizonMS)
	}
	needCell := func() (CellGen, error) {
		ci := s.cell(f.Cell)
		if ci < 0 {
			return CellGen{}, fmt.Errorf("fuzz: fault %d (%s) targets unknown cell %q", i, f.Kind, f.Cell)
		}
		return s.Cells[ci], nil
	}
	needNode := func(c CellGen) error {
		if f.Node < 1 || f.Node > c.Nodes() {
			return fmt.Errorf("fuzz: fault %d (%s) node %d outside cell %s (1..%d)", i, f.Kind, f.Node, c.Name, c.Nodes())
		}
		return nil
	}
	switch f.Kind {
	case KindCrash, KindRecover, KindBattery, KindDrift:
		c, err := needCell()
		if err != nil {
			return err
		}
		if err := needNode(c); err != nil {
			return err
		}
		if f.Kind == KindBattery && (f.Fraction <= 0 || f.Fraction > 1) {
			return fmt.Errorf("fuzz: fault %d drain fraction %g outside (0,1]", i, f.Fraction)
		}
	case KindOutage:
		if _, err := needCell(); err != nil {
			return err
		}
		if f.ForMS <= 0 {
			return fmt.Errorf("fuzz: fault %d outage needs a positive window", i)
		}
		if len(s.Cells) < 2 {
			return fmt.Errorf("fuzz: fault %d cell-outage needs a campus peer to escalate into", i)
		}
	case KindPERBurst:
		if _, err := needCell(); err != nil {
			return err
		}
		if f.PER < 0 || f.PER > 1 {
			return fmt.Errorf("fuzz: fault %d burst PER %g outside [0,1]", i, f.PER)
		}
		if f.ForMS <= 0 {
			return fmt.Errorf("fuzz: fault %d burst needs a positive window", i)
		}
	case KindLinkDown, KindLinkUp:
		if len(s.Links) == 0 {
			return fmt.Errorf("fuzz: fault %d (%s) with no explicit links", i, f.Kind)
		}
		if !links[linkKey(f.A, f.B)] {
			return fmt.Errorf("fuzz: fault %d (%s) targets unknown link %s—%s", i, f.Kind, f.A, f.B)
		}
	default:
		return fmt.Errorf("fuzz: fault %d unknown kind %q", i, f.Kind)
	}
	return nil
}

// linkKey normalizes an undirected link name pair.
func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// connected reports whether Links joins every cell into one component.
func (s Spec) connected() bool {
	adj := make(map[string][]string, len(s.Cells))
	for _, l := range s.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := map[string]bool{s.Cells[0].Name: true}
	frontier := []string{s.Cells[0].Name}
	for len(frontier) > 0 {
		next := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, peer := range adj[next] {
			if !seen[peer] {
				seen[peer] = true
				frontier = append(frontier, peer)
			}
		}
	}
	return len(seen) == len(s.Cells)
}

// connectedWithout reports whether the backbone stays connected with one
// link removed — the generator's guard before severing it.
func (s Spec) connectedWithout(a, b string) bool {
	drop := linkKey(a, b)
	kept := s
	kept.Links = nil
	for _, l := range s.Links {
		if linkKey(l.A, l.B) != drop {
			kept.Links = append(kept.Links, l)
		}
	}
	return kept.connected()
}
