package fuzz

import "evm"

// ScenarioRandomFieldMultihop is the registered name of the pinned
// random multi-hop field: a generated single-cell spec whose stations
// are scattered by a random walk wider than radio range, so the TDMA
// line schedule must relay every sensor snapshot and actuation hop by
// hop — the generated, seed-pinned form of the pipeline scenario. The
// far-end primary crashes mid-run and the one-hop-closer backup takes
// over across the surviving relays.
const ScenarioRandomFieldMultihop = "random-field-multihop"

// RandomFieldSeed is the generator seed behind the pinned scenario.
// Changing it changes the registered topology — tests pin the derived
// spec's shape, so treat it like a wire constant.
const RandomFieldSeed uint64 = 6

// RandomFieldSpec returns the pinned scenario's generating spec: six
// stations (gateway, two relay spares, head, backup, primary) on a
// random-walk line spanning well past the 30 m radio range, with the
// far-end primary crashing at ~10.5 s.
func RandomFieldSpec() Spec {
	s := GenerateWith(RandomFieldSeed, MultihopProfile())
	s.Name = ScenarioRandomFieldMultihop
	return s
}

func init() {
	evm.MustRegisterScenario(ScenarioRandomFieldMultihop, Builder(RandomFieldSpec()))
}
