package fuzz

import (
	"testing"
	"time"

	"evm"
)

// TestRandomFieldSpecPinned pins the shape of the registered
// random-field-multihop scenario. The spec is a pure function of
// RandomFieldSeed, so any drift here means the generator changed and
// the scenario silently became a different experiment.
func TestRandomFieldSpecPinned(t *testing.T) {
	s := RandomFieldSpec()
	if s.Name != ScenarioRandomFieldMultihop {
		t.Fatalf("spec name %q", s.Name)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("pinned spec invalid: %v", err)
	}
	if len(s.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(s.Cells))
	}
	c := s.Cells[0]
	if !c.Multihop || c.Tasks != 1 || c.Spares != 2 || c.Nodes() != 6 {
		t.Fatalf("unexpected cell shape: %+v", c)
	}
	if c.PER != 0 {
		t.Fatalf("multihop field must be loss-free, got PER %v", c.PER)
	}
	// The field must genuinely require relaying: each hop is within
	// reliable radio range, the whole field is not.
	for i := 1; i < len(c.Positions); i++ {
		if d := dist(c.Positions[i-1], c.Positions[i]); d >= 0.8*RadioRangeM {
			t.Fatalf("hop %d spans %.1f m", i, d)
		}
	}
	if span := dist(c.Positions[0], c.Positions[len(c.Positions)-1]); span <= RadioRangeM {
		t.Fatalf("field spans only %.1f m", span)
	}
	if len(s.Faults) != 1 || s.Faults[0].Kind != KindCrash || s.Faults[0].Node != 3 {
		t.Fatalf("want a single crash of the far-end primary, got %+v", s.Faults)
	}
}

// TestRandomFieldScheduleFeasible runs the registered scenario through
// the invariant-checked Runner and demands a feasible outcome: zero
// invariant or timing violations (actuations keep arriving across the
// crash within the failover bound), real multi-hop relaying, and a
// line-schedule duty cycle that fits the TDMA frame.
func TestRandomFieldScheduleFeasible(t *testing.T) {
	r := evm.Runner{Workers: 1, Checkers: Checkers}
	res := r.RunOne(evm.RunSpec{Scenario: ScenarioRandomFieldMultihop, Seed: 1, Horizon: 25 * time.Second})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Metrics["relayed_frags"] <= 0 {
		t.Errorf("no fragments relayed — field is not multi-hop (metrics %v)", res.Metrics)
	}
	if d := res.Metrics["line_duty"]; d <= 0 || d > 1 {
		t.Errorf("line schedule duty %v outside (0,1] — schedule infeasible", d)
	}
	if res.Metrics["qos_coverage"] <= 0 {
		t.Errorf("zero QoS coverage (metrics %v)", res.Metrics)
	}
}

// TestRandomFieldStreamDeterministic locks run-level determinism for
// the pinned scenario: same run seed, byte-identical event stream.
func TestRandomFieldStreamDeterministic(t *testing.T) {
	a, err := EventStrings(RandomFieldSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EventStrings(RandomFieldSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty event stream")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}
