package fuzz

import (
	"bytes"
	"strings"
	"testing"
)

// TestSweepSmallCorpusClean is the in-tree miniature of the evmfuzz
// acceptance sweep: a dozen generated campuses, two run seeds each,
// every run under the full checker set, zero violations expected. A
// failure here means either a real regression in the campus stack or a
// generator change that stepped outside the safety envelope — both
// block the merge.
func TestSweepSmallCorpusClean(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long; skipped in -short")
	}
	corpus := GenerateCorpus(1, 12, DefaultProfile())
	res := Sweep(corpus, []uint64{1, 2}, 0)
	if res.Runs != 24 {
		t.Fatalf("ran %d of 24 runs", res.Runs)
	}
	for _, f := range res.Failures {
		t.Errorf("failure: %s", f.Label())
	}
}

// TestEventStringsDeterministic locks the generator-to-stream contract
// on a full campus spec: one seed, two runs, byte-identical streams.
func TestEventStringsDeterministic(t *testing.T) {
	s := Generate(2)
	if len(s.Cells) < 2 || len(s.Faults) == 0 {
		t.Fatalf("seed 2 no longer generates a faulted campus: %d cells, %d faults", len(s.Cells), len(s.Faults))
	}
	a, err := EventStrings(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EventStrings(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestEnsureRegisteredIdempotentAndConflicting: re-registering the
// byte-identical spec is a no-op, re-registering a different spec under
// the same name is an error (it would silently change what a stored
// run name means).
func TestEnsureRegisteredIdempotentAndConflicting(t *testing.T) {
	s := Generate(4)
	s.Name = "fuzz-test-ensure-registered"
	if err := EnsureRegistered(s); err != nil {
		t.Fatal(err)
	}
	if err := EnsureRegistered(s); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	altered := s
	altered.HorizonMS += 500
	err := EnsureRegistered(altered)
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("conflicting re-register: got %v", err)
	}
}

// TestTraceJSONDeterministic: the violating-run trace evmfuzz attaches
// to a repro is a pure function of (spec, seed) and actually contains
// span events.
func TestTraceJSONDeterministic(t *testing.T) {
	s := Generate(11)
	a, err := TraceJSON(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceJSON(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("trace not deterministic (%d vs %d bytes)", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"traceEvents"`)) || !bytes.Contains(a, []byte(`"slot"`)) {
		t.Fatal("trace missing expected span events")
	}
}
