package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evm"
)

// seededDualMasterSpec hand-builds a spec that trips the
// single-master-per-task invariant on purpose: UnsafeSkipDemotion
// disables the coordinator's stale-master demotion (the test hook
// behind the historical nil-RebalancePolicy bug), so when cell c0
// blacks out, its tasks escalate to a peer, and on recovery the old
// master resumes actuating alongside the foreign replica. Three noise
// faults ride along so the shrinker has something real to strip.
func seededDualMasterSpec() Spec {
	return Spec{
		Name:     "fuzz-seeded-dual-master",
		Topology: TopologyMesh,
		Cells: []CellGen{
			{Name: "c0", Tasks: 1, Spares: 2, PeriodMS: 250, Placement: PlacementGrid},
			{Name: "c1", Tasks: 1, Spares: 2, PeriodMS: 250, Placement: PlacementGrid},
			{Name: "c2", Tasks: 1, Spares: 2, PeriodMS: 500, Placement: PlacementGrid},
		},
		HorizonMS:          30_000,
		UnsafeSkipDemotion: true,
		Faults: []FaultGen{
			{AtMS: 6_000, Kind: KindDrift, Cell: "c1", Node: 5, PPM: 180},
			{AtMS: 8_000, Kind: KindPERBurst, Cell: "c2", PER: 0.2, ForMS: 2_000},
			{AtMS: 10_500, Kind: KindOutage, Cell: "c0", ForMS: 8_000},
			{AtMS: 21_000, Kind: KindBattery, Cell: "c1", Node: 6, Fraction: 0.4},
		},
	}
}

// TestShrinkConvergesOnSeededViolation is the end-to-end shrinker
// proof: the seeded dual-master spec fails, Shrink strips the noise
// down to a minimal still-failing spec, and the emitted repro replays
// to the same violation class.
func TestShrinkConvergesOnSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulations; skipped in -short")
	}
	s := seededDualMasterSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("seeded spec invalid: %v", err)
	}
	const seed = 1
	viols, err := RunOnce(s, seed)
	if err != nil {
		t.Fatalf("seeded spec failed to run: %v", err)
	}
	if len(viols) == 0 {
		t.Fatal("seeded spec no longer violates any invariant — the dual-master hook lost its teeth")
	}
	sawDual := false
	for _, v := range viols {
		if v.Checker == "single-master-per-task" {
			sawDual = true
		}
	}
	if !sawDual {
		t.Fatalf("expected a single-master-per-task violation, got %v", viols)
	}

	sr := Shrink(s, seed, viols)
	t.Logf("shrink: %d attempts, %d accepted → %d cell(s), %d fault(s), %v horizon",
		sr.Attempts, sr.Accepted, len(sr.Spec.Cells), len(sr.Spec.Faults), sr.Spec.Horizon())
	if len(sr.Spec.Cells) > 3 {
		t.Errorf("shrunk spec still has %d cells (want ≤ 3)", len(sr.Spec.Cells))
	}
	if len(sr.Spec.Faults) > 5 {
		t.Errorf("shrunk spec still has %d fault steps (want ≤ 5)", len(sr.Spec.Faults))
	}
	// The outage is the only fault the failure actually needs; the
	// shrinker must have discovered that.
	if len(sr.Spec.Faults) != 1 || sr.Spec.Faults[0].Kind != KindOutage {
		t.Errorf("want the lone cell-outage to survive shrinking, got %+v", sr.Spec.Faults)
	}
	if !sr.Spec.UnsafeSkipDemotion {
		t.Error("shrinker dropped UnsafeSkipDemotion yet the spec still failed — oracle is broken")
	}
	if len(sr.Violations) == 0 {
		t.Fatal("shrink result carries no violations")
	}

	// Round-trip the repro through disk and replay it.
	rep := NewRepro(sr.Spec, sr.Seed, sr.Violations)
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(); err != nil {
		t.Errorf("repro does not replay to the recorded violation: %v", err)
	}

	// The generated regression test must be a self-contained Go file
	// that embeds the spec and asserts zero violations.
	src, err := RegressionTest(rep, "TestSeededDualMasterRepro")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package fuzz_test",
		"func TestSeededDualMasterRepro(t *testing.T)",
		"fuzz.RunOnce",
		"single-master-per-task",
	} {
		if !bytes.Contains(src, []byte(want)) {
			t.Errorf("regression test source missing %q:\n%s", want, src)
		}
	}
}

// TestShrinkerRejectsDifferentFailure: the oracle accepts a candidate
// only when it reproduces the original checker class, so shrinking
// never "wanders" onto an unrelated failure. Simulated here by handing
// Shrink a violation set naming a checker the spec never trips — the
// shrinker must then accept nothing and return the spec unchanged.
func TestShrinkerRejectsDifferentFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped in -short")
	}
	s := seededDualMasterSpec()
	fake := []evm.Violation{{Checker: "route-monotonicity", Detail: "synthetic"}}
	sr := Shrink(s, 1, fake)
	if sr.Accepted != 0 {
		t.Fatalf("shrinker accepted %d candidates against a checker the spec never trips", sr.Accepted)
	}
	// Shrink always stamps the result name with "-min"; everything else
	// must be untouched.
	sr.Spec.Name = s.Name
	if got, _ := sr.Spec.MarshalIndent(); !sameJSON(t, s, sr.Spec) {
		t.Fatalf("spec changed despite zero accepted candidates:\n%s", got)
	}
}

func sameJSON(t *testing.T, a, b Spec) bool {
	t.Helper()
	ja, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}

// TestReproJSONRoundTrip: a repro survives the disk round-trip with
// its spec and seed byte-for-byte intact.
func TestReproJSONRoundTrip(t *testing.T) {
	s := seededDualMasterSpec()
	rep := NewRepro(s, 9, nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := WriteRepro(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"gen_seed"`) {
		t.Fatalf("repro JSON missing embedded spec:\n%s", raw)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameJSON(t, s, loaded.Spec) || loaded.Seed != 9 {
		t.Fatal("repro round-trip mutated the spec or seed")
	}
}
