package fuzz

import (
	"bytes"
	"math"
	"testing"
)

// TestGenerateDeterministicAndValid locks the generator's contract: the
// mapping seed → spec is a pure function (byte-identical JSON on every
// call) and every generated spec passes Validate.
func TestGenerateDeterministicAndValid(t *testing.T) {
	for _, prof := range []Profile{DefaultProfile(), MultihopProfile()} {
		for seed := uint64(1); seed <= 300; seed++ {
			a := GenerateWith(seed, prof)
			b := GenerateWith(seed, prof)
			ja, err := a.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			jb, _ := b.MarshalIndent()
			if !bytes.Equal(ja, jb) {
				t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", seed, ja, jb)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("seed %d: invalid spec: %v\n%s", seed, err, ja)
			}
		}
	}
}

func dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// TestMultihopFieldsSpanPastRadioRange checks the carried PR-4 geometry
// on every multihop spec: consecutive stations stay comfortably inside
// radio range (reliable hops) while the field end-to-end spans wider
// than the range, so the line schedule genuinely has to relay.
func TestMultihopFieldsSpanPastRadioRange(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		s := GenerateWith(seed, MultihopProfile())
		c := s.Cells[0]
		if !c.Multihop || len(c.Positions) != c.Nodes() {
			t.Fatalf("seed %d: not a positioned multihop cell: %+v", seed, c)
		}
		for i := 1; i < len(c.Positions); i++ {
			if d := dist(c.Positions[i-1], c.Positions[i]); d >= 0.8*RadioRangeM {
				t.Fatalf("seed %d: hop %d spans %.1f m (want < %.0f m)", seed, i, d, 0.8*RadioRangeM)
			}
		}
		if span := dist(c.Positions[0], c.Positions[len(c.Positions)-1]); span <= RadioRangeM {
			t.Fatalf("seed %d: field spans only %.1f m, inside the %d m radio range", seed, span, RadioRangeM)
		}
	}
}

// TestGeneratedFaultsAreSerialized locks the generator's safety
// envelope: structural fault windows never overlap, so every
// disturbance resolves before the next begins.
func TestGeneratedFaultsAreSerialized(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		s := GenerateWith(seed, DefaultProfile())
		var last int64
		for i, f := range s.Faults {
			if f.AtMS < last {
				t.Fatalf("seed %d: fault %d (%s) at %d ms starts before %d ms", seed, i, f.Kind, f.AtMS, last)
			}
			switch f.Kind {
			case KindOutage, KindPERBurst:
				last = f.AtMS + f.ForMS
			default:
				last = f.AtMS
			}
		}
	}
}
