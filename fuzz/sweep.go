package fuzz

import (
	"fmt"

	"evm"
)

// Failure couples one failing corpus run with everything needed to
// reproduce it: the generating spec, the run seed, and either the
// violations observed or the build/run error (a generated spec that
// fails to build is a finding too).
type Failure struct {
	Spec       Spec
	Seed       uint64
	Violations []evm.Violation
	Err        error
}

// Label renders the failure one line.
func (f Failure) Label() string {
	if f.Err != nil {
		return fmt.Sprintf("%s/seed=%d: %v", f.Spec.Name, f.Seed, f.Err)
	}
	return fmt.Sprintf("%s/seed=%d: %d violation(s), first: %s",
		f.Spec.Name, f.Seed, len(f.Violations), f.Violations[0])
}

// SweepResult summarizes one corpus sweep.
type SweepResult struct {
	Runs     int
	Failures []Failure
}

// GenerateCorpus derives n specs from consecutive generator seeds
// starting at base — the corpus for one sweep.
func GenerateCorpus(base uint64, n int, p Profile) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = GenerateWith(base+uint64(i), p)
	}
	return specs
}

// Sweep runs every corpus spec × every run seed through a parallel
// Runner under the complete checker set (Checkers) and collects the
// failing runs. Results depend only on (spec, seed) pairs, never on
// worker count or interleaving.
func Sweep(corpus []Spec, seeds []uint64, workers int) SweepResult {
	byName := make(map[string]Spec, len(corpus))
	grid := make([]evm.RunSpec, 0, len(corpus)*len(seeds))
	for _, s := range corpus {
		byName[s.Name] = s
		for _, seed := range seeds {
			grid = append(grid, evm.RunSpec{Scenario: s.Name, Seed: seed})
		}
	}
	r := &evm.Runner{
		Workers: workers,
		Build: func(run evm.RunSpec) (*evm.Experiment, error) {
			s, ok := byName[run.Scenario]
			if !ok {
				return nil, fmt.Errorf("fuzz: run references unknown corpus spec %q", run.Scenario)
			}
			return buildExperiment(s, run)
		},
		Checkers: Checkers,
	}
	out := SweepResult{Runs: len(grid)}
	for _, res := range r.Run(grid) {
		if res.Err != nil || len(res.Violations) > 0 {
			out.Failures = append(out.Failures, Failure{
				Spec:       byName[res.Spec.Scenario],
				Seed:       res.Spec.Seed,
				Violations: res.Violations,
				Err:        res.Err,
			})
		}
	}
	return out
}

// RunOnce executes one spec under the full checker set and returns the
// violations observed (nil when every invariant held).
func RunOnce(s Spec, seed uint64) ([]evm.Violation, error) {
	r := &evm.Runner{
		Workers:  1,
		Build:    func(run evm.RunSpec) (*evm.Experiment, error) { return buildExperiment(s, run) },
		Checkers: Checkers,
	}
	res := r.RunOne(evm.RunSpec{Scenario: s.Name, Seed: seed})
	return res.Violations, res.Err
}

// EventStrings executes one spec and returns its full event stream as
// the events' stable one-line renderings — the byte-identical
// determinism surface: equal (spec, seed) pairs yield equal slices.
func EventStrings(s Spec, seed uint64) ([]string, error) {
	var lines []string
	r := &evm.Runner{
		Workers: 1,
		Build:   func(run evm.RunSpec) (*evm.Experiment, error) { return buildExperiment(s, run) },
		Instrument: func(_ evm.RunSpec, exp *evm.Experiment) func(map[string]float64) {
			bus := exp.Cell.Events
			if exp.Campus != nil {
				bus = exp.Campus.Events
			}
			sub := bus().Subscribe(func(ev evm.Event) { lines = append(lines, ev.String()) })
			return func(map[string]float64) { sub.Cancel() }
		},
	}
	res := r.RunOne(evm.RunSpec{Scenario: s.Name, Seed: seed})
	return lines, res.Err
}

// TraceJSON executes one spec with causal tracing enabled and returns
// the run's Chrome trace-event JSON. evmfuzz writes it next to a
// shrunken repro so a violation can be inspected on a Perfetto timeline
// (which slot, which frame, which handshake leg) rather than only
// replayed. Deterministic: equal (spec, seed) pairs yield equal bytes.
func TraceJSON(s Spec, seed uint64) ([]byte, error) {
	r := &evm.Runner{
		Workers:  1,
		Trace:    true,
		Build:    func(run evm.RunSpec) (*evm.Experiment, error) { return buildExperiment(s, run) },
		Checkers: Checkers,
	}
	res := r.RunOne(evm.RunSpec{Scenario: s.Name, Seed: seed})
	return res.TraceJSON, res.Err
}
