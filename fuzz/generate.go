package fuzz

import (
	"fmt"
	"math"

	"evm/internal/sim"
)

// Profile bounds the generator. The defaults are tuned so that every
// generated spec is *supposed* to pass the invariant harness on a
// correct implementation: faults are diverse but survivable (structural
// faults are serialized, severed links never partition the backbone,
// escalation targets always exist), so any violation a sweep finds is a
// bug in the system under test, not an impossible scenario.
type Profile struct {
	// MinCells/MaxCells bound campus width.
	MinCells, MaxCells int
	// MaxTasks bounds control loops per cell.
	MaxTasks int
	// MaxFaults bounds fault windows per spec (a window may expand to
	// two steps, e.g. crash+recover).
	MaxFaults int
	// MultihopWeight is the probability a spec is a single multi-hop
	// line cell scattered wider than radio range (1 = always).
	MultihopWeight float64
	// RolloutWeight is the probability a campus spec schedules an OTA
	// rollout concurrent with its fault plan.
	RolloutWeight float64
	// HorizonMinMS/HorizonMaxMS bound the virtual run length.
	HorizonMinMS, HorizonMaxMS int64
}

// DefaultProfile is the sweep profile: mostly multi-cell campuses with
// an occasional multi-hop random field.
func DefaultProfile() Profile {
	return Profile{
		MinCells:       2,
		MaxCells:       4,
		MaxTasks:       3,
		MaxFaults:      5,
		MultihopWeight: 0.15,
		RolloutWeight:  0.2,
		HorizonMinMS:   20_000,
		HorizonMaxMS:   32_000,
	}
}

// MultihopProfile makes every spec a single multi-hop line cell — the
// profile behind the pinned random-field-multihop scenario.
func MultihopProfile() Profile {
	p := DefaultProfile()
	p.MultihopWeight = 1
	return p
}

// Generate derives a complete scenario spec from one seed with the
// default profile. Equal seeds yield byte-identical specs.
func Generate(seed uint64) Spec { return GenerateWith(seed, DefaultProfile()) }

// GenerateWith derives a spec from a seed under a profile. The
// generator consumes a dedicated splitmix64 stream, so the mapping
// seed → spec is a pure function.
func GenerateWith(seed uint64, p Profile) Spec {
	rng := sim.NewRNG(seed)
	if rng.Float64() < p.MultihopWeight {
		return genMultihop(seed, rng, p)
	}
	return genCampus(seed, rng, p)
}

// RadioRangeM mirrors the radio medium's default maximum communication
// distance; multi-hop fields are scattered wider than this on purpose.
const RadioRangeM = 30

// genMultihop builds a single-cell spec whose members are scattered as
// a random walk wider than radio range: consecutive stations stay
// within ~22 m (a reliable hop) while the field end-to-end spans well
// past 30 m, so gateway↔controller traffic must relay hop by hop over
// the TDMA line schedule. This is the carried PR-4 "RandomUniform wider
// than radio range + line routing" item in generated form.
func genMultihop(seed uint64, rng *sim.RNG, p Profile) Spec {
	// One loop and 1–2 relay spares keep the line at 5–6 stations — the
	// pipeline-scenario length. Longer lines push the worst-case relay
	// latency of a far-end actuation past the invariant grace and the
	// feed's first delivery past the silence window, so a *correct*
	// implementation starts tripping checkers on pure physics.
	tasks := 1
	spares := 1 + rng.Intn(2)
	// The channel stays perfect: per-hop loss compounds down the line
	// and the Gilbert-Elliott overlay (active at any rate > 0) can
	// swallow enough consecutive frames to fake a silent primary. The
	// multi-hop exercise is relaying over the schedule, not loss.
	cell := CellGen{
		Name:      "field",
		Tasks:     tasks,
		Spares:    spares,
		PeriodMS:  250,
		Placement: PlacementScatter,
		Multihop:  true,
	}
	n := cell.Nodes()
	// Random-walk scatter: headings stay within ±45° of +X so the walk
	// always advances, hops span 14–22 m (< the 30 m range), and with
	// n ≥ 6 stations the end-to-end span exceeds the range.
	x := rng.Float64() * 5
	y := rng.Float64() * 5
	heading := (rng.Float64()*2 - 1) * math.Pi / 6
	pos := make([]Point, n)
	pos[0] = Point{X: round2(x), Y: round2(y)}
	for i := 1; i < n; i++ {
		heading += (rng.Float64()*2 - 1) * math.Pi / 5
		if heading > math.Pi/4 {
			heading = math.Pi / 4
		}
		if heading < -math.Pi/4 {
			heading = -math.Pi / 4
		}
		d := 14 + rng.Float64()*8
		x += d * math.Cos(heading)
		y += d * math.Sin(heading)
		pos[i] = Point{X: round2(x), Y: round2(y)}
	}
	cell.Positions = pos
	s := Spec{
		Name:      fmt.Sprintf("fuzz-mh-%016x", seed),
		GenSeed:   seed,
		Topology:  TopologySingle,
		Cells:     []CellGen{cell},
		HorizonMS: 25_000 + int64(rng.Intn(10))*1000,
	}
	// At most one crash (primary only, never recovered: the backup takes
	// over in-cell, and a recovered far-end master would resume
	// actuating before a line-relayed re-demotion could reach it), plus
	// an optional light PER burst or clock drift. Burst loss compounds
	// per hop on a line, so it stays mild and short.
	t := int64(8000 + rng.Intn(3000))
	if rng.Float64() < 0.6 {
		task := rng.Intn(tasks)
		primary := 3 + 2*task
		s.Faults = append(s.Faults, FaultGen{AtMS: t, Kind: KindCrash, Cell: cell.Name, Node: primary})
		t += int64(4000 + rng.Intn(2000))
	}
	if t < s.HorizonMS-8000 && rng.Float64() < 0.5 {
		s.Faults = append(s.Faults, FaultGen{
			AtMS: t, Kind: KindDrift, Cell: cell.Name,
			Node: 2 + 2*tasks + 1 + rng.Intn(spares), PPM: round2((rng.Float64()*2 - 1) * 250),
		})
	}
	return s
}

// genCampus builds a multi-cell campus spec: random cell compositions,
// a random backbone topology, random policy choices and a serialized
// random fault timeline (optionally concurrent with an OTA rollout).
func genCampus(seed uint64, rng *sim.RNG, p Profile) Spec {
	nc := p.MinCells + rng.Intn(p.MaxCells-p.MinCells+1)
	doRollout := rng.Float64() < p.RolloutWeight
	s := Spec{
		Name:    fmt.Sprintf("fuzz-%016x", seed),
		GenSeed: seed,
	}
	for i := 0; i < nc; i++ {
		c := CellGen{
			Name:     fmt.Sprintf("c%d", i),
			Tasks:    1 + rng.Intn(p.MaxTasks),
			Spares:   3 + rng.Intn(3),
			PeriodMS: []int64{250, 500}[rng.Intn(2)],
			VM:       doRollout,
		}
		if rng.Float64() < 0.3 {
			c.PER = round3(rng.Float64() * 0.12)
		}
		switch w := rng.Float64(); {
		case w < 0.5:
			c.Placement = PlacementGrid
		case w < 0.7:
			c.Placement = PlacementLine
		default:
			// In-range scatter: an 18 m box keeps every pair well inside
			// the 30 m radio range, so the mesh schedule stays reliable.
			c.Placement = PlacementScatter
			c.Positions = make([]Point, c.Nodes())
			for j := range c.Positions {
				c.Positions[j] = Point{X: round2(rng.Float64() * 18), Y: round2(rng.Float64() * 18)}
			}
		}
		s.Cells = append(s.Cells, c)
	}
	s.Topology, s.Links = genTopology(rng, s.Cells)
	switch w := rng.Float64(); {
	case w < 0.55:
		s.Policy = ""
	case w < 0.75:
		s.Policy = "least-loaded"
	case w < 0.9:
		s.Policy = "campus-bqp"
	default:
		s.Policy = "affinity"
	}
	s.Rebalance = rng.Float64() < 0.4
	span := p.HorizonMaxMS - p.HorizonMinMS
	s.HorizonMS = p.HorizonMinMS + int64(rng.Intn(int(span/500)+1))*500
	if doRollout {
		r := &RolloutGen{AtMS: int64(8000 + rng.Intn(4000)), Version: 2}
		if rng.Float64() < 0.2 {
			r.Version = 3 // seeded bad law: the health window must roll back
		}
		switch rng.Intn(3) {
		case 0:
			r.Strategy = "" // canary-cell
		case 1:
			r.Strategy = "cell-by-cell"
		case 2:
			r.Strategy = "all-at-once"
		}
		s.Rollout = r
	}
	genFaultTimeline(rng, &s, p)
	return s
}

// genTopology picks the backbone shape. Lossy links only appear where
// routing has an alternative (ring) or retries can absorb them; a
// chain's only path stays nearly clean.
func genTopology(rng *sim.RNG, cells []CellGen) (string, []LinkGen) {
	nc := len(cells)
	lat := func() int64 { return int64(5 + rng.Intn(35)) }
	per := func(max float64) float64 {
		if rng.Float64() < 0.65 {
			return 0
		}
		return round3(rng.Float64() * max)
	}
	if nc == 2 {
		if rng.Float64() < 0.5 {
			return TopologyMesh, nil
		}
		return TopologyLine, []LinkGen{{A: cells[0].Name, B: cells[1].Name, LatencyMS: lat(), PER: per(0.15)}}
	}
	switch w := rng.Float64(); {
	case w < 0.3:
		return TopologyMesh, nil
	case w < 0.6:
		links := make([]LinkGen, 0, nc)
		for i := 0; i < nc; i++ {
			links = append(links, LinkGen{
				A: cells[i].Name, B: cells[(i+1)%nc].Name, LatencyMS: lat(), PER: per(0.3),
			})
		}
		return TopologyRing, links
	case w < 0.8:
		links := make([]LinkGen, 0, nc-1)
		for i := 0; i < nc-1; i++ {
			links = append(links, LinkGen{
				A: cells[i].Name, B: cells[i+1].Name, LatencyMS: lat(), PER: per(0.15),
			})
		}
		return TopologyLine, links
	default:
		// Random spanning tree plus up to nc-1 extra edges.
		links := make([]LinkGen, 0, 2*nc)
		have := make(map[[2]string]bool)
		for i := 1; i < nc; i++ {
			peer := rng.Intn(i)
			links = append(links, LinkGen{
				A: cells[peer].Name, B: cells[i].Name, LatencyMS: lat(), PER: per(0.15),
			})
			have[linkKey(cells[peer].Name, cells[i].Name)] = true
		}
		for e := rng.Intn(nc); e > 0; e-- {
			a, b := rng.Intn(nc), rng.Intn(nc)
			if a == b || have[linkKey(cells[a].Name, cells[b].Name)] {
				continue
			}
			have[linkKey(cells[a].Name, cells[b].Name)] = true
			links = append(links, LinkGen{
				A: cells[a].Name, B: cells[b].Name, LatencyMS: lat(), PER: per(0.3),
			})
		}
		return TopologyRandom, links
	}
}

// genFaultTimeline appends a serialized random fault plan to the spec.
// Windows never overlap (each structural disturbance resolves before
// the next begins) and every crash leaves the task a way back — the
// backup, a recovery, or a campus peer to escalate into — so a correct
// implementation rides out the whole timeline within the timing bounds.
func genFaultTimeline(rng *sim.RNG, s *Spec, p Profile) {
	budget := rng.Intn(p.MaxFaults + 1)
	if budget == 0 {
		return
	}
	// aliveCands[cell][task] = candidate nodes not crashed-without-recovery.
	aliveCands := make([][][]int, len(s.Cells))
	for i, c := range s.Cells {
		aliveCands[i] = make([][]int, c.Tasks)
		for t := 0; t < c.Tasks; t++ {
			aliveCands[i][t] = []int{3 + 2*t, 4 + 2*t}
		}
	}
	outageDone, exhaustDone := false, false
	// Cells that ever see a PER burst are excluded from crash windows:
	// the burst's correlated losses can trigger a spontaneous silence
	// fail-over, after which the generator's master bookkeeping — and
	// therefore its guarantee that every crash leaves a usable candidate
	// — no longer holds. The same goes for cells with baseline loss.
	bursted := make([]bool, len(s.Cells))
	t := int64(6000 + rng.Intn(2000))
	for windows := 0; windows < budget && t < s.HorizonMS-9000; windows++ {
		switch rng.Intn(6) {
		case 0: // whole-cell outage → escalation → recovery → demotion
			// Loss-free victims only: the recovery-time stale-master
			// demotion is a radio exchange, and baseline loss can delay
			// it past the invariant grace.
			if outageDone {
				continue
			}
			victim := rng.Intn(len(s.Cells))
			if s.Cells[victim].PER > 0 {
				continue
			}
			outageDone = true
			forMS := int64(6000 + rng.Intn(3000))
			s.Faults = append(s.Faults, FaultGen{
				AtMS: t, Kind: KindOutage, Cell: s.Cells[victim].Name, ForMS: forMS,
			})
			t += forMS
		case 1: // candidate crash (± recovery), loss-free cells only
			ci := rng.Intn(len(s.Cells))
			if s.Cells[ci].PER > 0 || bursted[ci] {
				continue
			}
			task := rng.Intn(s.Cells[ci].Tasks)
			cands := aliveCands[ci][task]
			if len(cands) == 0 || (len(cands) == 1 && exhaustDone) {
				continue
			}
			node := cands[rng.Intn(len(cands))]
			s.Faults = append(s.Faults, FaultGen{AtMS: t, Kind: KindCrash, Cell: s.Cells[ci].Name, Node: node})
			// Recovery only in loss-free cells: a recovered stale master
			// resumes actuating until the head's re-demotion reaches it,
			// and baseline loss can push that exchange past the
			// invariant grace.
			if s.Cells[ci].PER == 0 && rng.Float64() < 0.6 {
				rec := t + int64(3000+rng.Intn(4000))
				s.Faults = append(s.Faults, FaultGen{AtMS: rec, Kind: KindRecover, Cell: s.Cells[ci].Name, Node: node})
				t = rec
			} else {
				kept := make([]int, 0, 1)
				for _, c := range cands {
					if c != node {
						kept = append(kept, c)
					}
				}
				aliveCands[ci][task] = kept
				if len(kept) == 0 {
					exhaustDone = true // the task escalates; allow that once per spec
				}
			}
		case 2: // cell-wide PER burst
			// Bursts stay below the loss level where the head's demotion
			// handshake itself starts getting swallowed: a demoted master
			// that never hears its demotion keeps actuating, and no
			// implementation can stay safe against unbounded loss.
			ci := rng.Intn(len(s.Cells))
			bursted[ci] = true
			forMS := int64(2000 + rng.Intn(2000))
			s.Faults = append(s.Faults, FaultGen{
				AtMS: t, Kind: KindPERBurst, Cell: s.Cells[ci].Name,
				PER: round3(0.15 + rng.Float64()*0.15), ForMS: forMS,
			})
			t += forMS
		case 3: // battery drain on a candidate
			ci := rng.Intn(len(s.Cells))
			task := rng.Intn(s.Cells[ci].Tasks)
			cands := aliveCands[ci][task]
			if len(cands) == 0 {
				continue
			}
			s.Faults = append(s.Faults, FaultGen{
				AtMS: t, Kind: KindBattery, Cell: s.Cells[ci].Name,
				Node: cands[rng.Intn(len(cands))], Fraction: round3(0.5 + rng.Float64()*0.49),
			})
		case 4: // clock drift on a spare
			ci := rng.Intn(len(s.Cells))
			c := s.Cells[ci]
			s.Faults = append(s.Faults, FaultGen{
				AtMS: t, Kind: KindDrift, Cell: c.Name,
				Node: 2 + 2*c.Tasks + 1 + rng.Intn(c.Spares), PPM: round2((rng.Float64()*2 - 1) * 250),
			})
		case 5: // backbone link sever window (never partitions)
			if len(s.Links) == 0 {
				continue
			}
			var severable []LinkGen
			for _, l := range s.Links {
				if s.connectedWithout(l.A, l.B) {
					severable = append(severable, l)
				}
			}
			if len(severable) == 0 {
				continue
			}
			l := severable[rng.Intn(len(severable))]
			up := t + int64(4000+rng.Intn(3000))
			s.Faults = append(s.Faults,
				FaultGen{AtMS: t, Kind: KindLinkDown, A: l.A, B: l.B},
				FaultGen{AtMS: up, Kind: KindLinkUp, A: l.A, B: l.B},
			)
			t = up
		}
		t += int64(2000 + rng.Intn(2500))
	}
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
