package evm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestTraceExportByteIdentical is the observability determinism
// guarantee: the same (scenario, seed) pair produces byte-identical
// Chrome trace JSON on every run, and a different seed produces a
// different trace.
func TestTraceExportByteIdentical(t *testing.T) {
	run := func(seed uint64) []byte {
		res := (&Runner{Workers: 1, Trace: true}).RunOne(RunSpec{
			Scenario: ScenarioCampusFailover, Seed: seed, Horizon: 20 * time.Second,
		})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.TraceJSON) == 0 {
			t.Fatalf("seed %d: no trace recorded", seed)
		}
		return res.TraceJSON
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed trace exports differ")
	}
	if bytes.Equal(a, run(4)) {
		t.Fatal("different seeds produced identical traces")
	}
	// The export must be a loadable Chrome trace: a traceEvents array of
	// events with phases, names and timestamps.
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	wantNames := map[string]bool{"slot": false, "frame": false, "tx": false, "escalation": false}
	for _, ev := range trace.TraceEvents {
		if _, ok := wantNames[ev.Name]; ok {
			wantNames[ev.Name] = true
		}
	}
	for name, seen := range wantNames {
		if !seen {
			t.Errorf("trace missing %q spans", name)
		}
	}
}

// TestRunnerTraceParallelMatchesSerial extends the multi-core guarantee
// to the observability surface: span-derived metrics and trace bytes
// are identical whether runs execute on one worker or eight.
func TestRunnerTraceParallelMatchesSerial(t *testing.T) {
	specs := SpecGrid(
		[]string{ScenarioCampusFailover, ScenarioEightController},
		[]uint64{1, 2},
		[]FaultPlan{{}, crashNode2()},
		20*time.Second)
	serial := (&Runner{Workers: 1, Trace: true}).Run(specs)
	parallel := (&Runner{Workers: 8, Trace: true}).Run(specs)
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s: serial err %v, parallel err %v",
				specs[i].Label(), serial[i].Err, parallel[i].Err)
		}
		if !bytes.Equal(serial[i].TraceJSON, parallel[i].TraceJSON) {
			t.Fatalf("%s: trace bytes diverge between serial and parallel", specs[i].Label())
		}
		for k, v := range serial[i].Metrics {
			if pv := parallel[i].Metrics[k]; pv != v {
				t.Fatalf("%s: metric %s = %v serial vs %v parallel", specs[i].Label(), k, v, pv)
			}
		}
	}
}

// TestTraceMetricsFlowIntoRunner checks that span-derived latency
// percentiles land in RunResult.Metrics under span_<name>_* keys.
func TestTraceMetricsFlowIntoRunner(t *testing.T) {
	res := (&Runner{Workers: 1, Trace: true}).RunOne(RunSpec{
		Scenario: ScenarioCampusFailover, Seed: 1, Horizon: 30 * time.Second,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, key := range []string{
		"span_slot_count", "span_slot_p95_ms",
		"span_frame_p50_ms", "span_tx_p99_ms",
		"span_escalation_count", "span_actuation-interval_p50_ms",
	} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
	if n := res.Metrics["span_escalation_count"]; n < 1 {
		t.Errorf("span_escalation_count = %v, want >= 1 (west crash escalates to east)", n)
	}
	// Tracing off: no span metrics, no trace bytes.
	off := (&Runner{Workers: 1}).RunOne(RunSpec{
		Scenario: ScenarioCampusFailover, Seed: 1, Horizon: 30 * time.Second,
	})
	if off.Err != nil {
		t.Fatal(off.Err)
	}
	if len(off.TraceJSON) != 0 {
		t.Error("trace recorded with Trace unset")
	}
	for k := range off.Metrics {
		if len(k) > 5 && k[:5] == "span_" {
			t.Errorf("span metric %s present with Trace unset", k)
		}
	}
}

// TestAggregatePercentiles pins the Aggregate summary statistics,
// including the p50/p95/p99 columns, to the nearest-rank convention.
func TestAggregatePercentiles(t *testing.T) {
	results := make([]RunResult, 100)
	for i := range results {
		results[i] = RunResult{
			Spec:    RunSpec{Scenario: "synthetic", Seed: uint64(i + 1)},
			Metrics: map[string]float64{"lat": float64(i + 1)},
		}
	}
	sum, ok := Aggregate(results)["synthetic"]["lat"]
	if !ok {
		t.Fatal("aggregate missing synthetic/lat")
	}
	if sum.N != 100 || sum.Min != 1 || sum.Max != 100 || sum.Mean != 50.5 {
		t.Fatalf("basic stats off: %+v", sum)
	}
	if sum.P50 != 50 || sum.P95 != 95 || sum.P99 != 99 {
		t.Fatalf("percentiles off: p50=%v p95=%v p99=%v", sum.P50, sum.P95, sum.P99)
	}
	want := "n=100 mean=50.500 min=1.000 max=100.000 p50=50.000 p95=95.000 p99=99.000"
	if got := sum.String(); got != want {
		t.Fatalf("summary string = %q, want %q", got, want)
	}
}

// TestRunnerHostStats checks the host-side accounting: wall time and
// allocation deltas are recorded outside Metrics, so enabling them
// cannot perturb the deterministic surface.
func TestRunnerHostStats(t *testing.T) {
	spec := RunSpec{Scenario: ScenarioEightController, Seed: 1, Horizon: 10 * time.Second}
	with := (&Runner{Workers: 1, HostStats: true}).RunOne(spec)
	without := (&Runner{Workers: 1}).RunOne(spec)
	if with.Err != nil || without.Err != nil {
		t.Fatalf("errs: %v / %v", with.Err, without.Err)
	}
	if with.HostWallMS <= 0 {
		t.Errorf("HostWallMS = %v, want > 0", with.HostWallMS)
	}
	if without.HostWallMS != 0 || without.HostAllocBytes != 0 {
		t.Error("host stats recorded without HostStats")
	}
	if fmt.Sprint(with.Metrics) != fmt.Sprint(without.Metrics) {
		t.Error("HostStats changed the deterministic metrics map")
	}
}
