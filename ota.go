package evm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
	"evm/internal/vm"
	"evm/internal/wire"
)

// Over-the-air reprogramming subsystem: a versioned CapsuleStore holds
// attested code capsules per task; Campus.StartRollout disseminates a
// registered version campus-wide over the backbone (wire.CapsuleMsg
// prepare/commit legs) and in-cell to every replica of the task, staged
// by a pluggable RolloutPolicy; each stage activates atomically per cell
// and is followed by a health window — an invariant violation or a
// missed-actuation signal during the window rolls every upgraded replica
// back to the prior version and publishes a RollbackEvent.

// --- capsule store ------------------------------------------------------------

// CapsuleInfo is one registered capsule version as reported by the store.
type CapsuleInfo struct {
	TaskID   string
	Version  uint8
	Checksum uint64
	Bytes    int
}

// CapsuleStore is the versioned capsule registry of a campus: every
// version of every task's control law, keyed (task, version), with the
// attestation checksum the receiving nodes verify on delivery.
// Registration validates the capsule encodes; the stored copy is
// immutable. Stores are safe for concurrent use.
type CapsuleStore struct {
	mu     sync.RWMutex
	byTask map[string]map[uint8]Capsule
}

// NewCapsuleStore builds an empty store.
func NewCapsuleStore() *CapsuleStore {
	return &CapsuleStore{byTask: make(map[string]map[uint8]Capsule)}
}

// Register adds a capsule version. Duplicate (task, version) pairs and
// capsules that do not encode are rejected.
func (s *CapsuleStore) Register(c Capsule) error {
	if c.TaskID == "" {
		return fmt.Errorf("evm: capsule with empty task ID")
	}
	if c.Version == 0 {
		return fmt.Errorf("evm: capsule %s needs a nonzero version", c.TaskID)
	}
	if _, err := c.Encode(); err != nil {
		return err
	}
	c.Code = append([]byte(nil), c.Code...)
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byTask[c.TaskID]
	if m == nil {
		m = make(map[uint8]Capsule)
		s.byTask[c.TaskID] = m
	}
	if _, dup := m[c.Version]; dup {
		return fmt.Errorf("evm: capsule %s v%d already registered", c.TaskID, c.Version)
	}
	m[c.Version] = c
	return nil
}

// Get returns the capsule registered for (task, version).
func (s *CapsuleStore) Get(taskID string, version uint8) (Capsule, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byTask[taskID][version]
	if ok {
		c.Code = append([]byte(nil), c.Code...)
	}
	return c, ok
}

// Latest returns the highest registered version of a task's capsule.
func (s *CapsuleStore) Latest(taskID string) (Capsule, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best Capsule
	found := false
	//evm:allow-maporder strict max over distinct version keys is commutative; the winner is the same in any visit order
	for v, c := range s.byTask[taskID] {
		if !found || v > best.Version {
			best, found = c, true
		}
	}
	if found {
		best.Code = append([]byte(nil), best.Code...)
	}
	return best, found
}

// Versions lists a task's registered capsules, ascending by version.
func (s *CapsuleStore) Versions(taskID string) []CapsuleInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CapsuleInfo, 0, len(s.byTask[taskID]))
	for _, c := range s.byTask[taskID] {
		out = append(out, CapsuleInfo{
			TaskID: c.TaskID, Version: c.Version, Checksum: c.Checksum(), Bytes: len(c.Code),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// --- rollout policies ---------------------------------------------------------

// Built-in rollout strategy names for RolloutSpec.Strategy and
// NewRolloutPolicy.
const (
	RolloutCanaryCell = "canary-cell"
	RolloutCellByCell = "cell-by-cell"
	RolloutAllAtOnce  = "all-at-once"
)

// RolloutCell is one cell's entry in a rollout-policy request: how many
// replicas of the rollout's tasks it hosts and how many of them are
// masters (the blast radius of upgrading the cell).
type RolloutCell struct {
	// Index is the cell's position in campus declaration order.
	Index int
	// Name is the cell name.
	Name string
	// Replicas counts the replicas of the rollout's tasks in the cell.
	Replicas int
	// Masters counts the rollout tasks whose master runs in the cell.
	Masters int
}

// RolloutPolicy decides how a capsule rollout is staged across the cells
// hosting replicas of the target tasks: Stages partitions the listed
// cells into ordered batches — each batch prepares, commits and passes
// its health window before the next begins. Implementations must be
// deterministic; the coordinator re-validates the plan (unknown or
// duplicate cells are dropped, unlisted cells are appended as a final
// stage) so a buggy policy can delay an upgrade but never skip a
// replica.
type RolloutPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Stages partitions the cells (given in declaration order) into
	// ordered batches of cell indices.
	Stages(cells []RolloutCell) [][]int
}

// AllAtOncePolicy upgrades every hosting cell in a single stage.
type AllAtOncePolicy struct{}

// Name implements RolloutPolicy.
func (AllAtOncePolicy) Name() string { return RolloutAllAtOnce }

// Stages implements RolloutPolicy.
func (AllAtOncePolicy) Stages(cells []RolloutCell) [][]int {
	batch := make([]int, len(cells))
	for i, cc := range cells {
		batch[i] = cc.Index
	}
	return [][]int{batch}
}

// CellByCellPolicy upgrades one cell per stage, in declaration order.
type CellByCellPolicy struct{}

// Name implements RolloutPolicy.
func (CellByCellPolicy) Name() string { return RolloutCellByCell }

// Stages implements RolloutPolicy.
func (CellByCellPolicy) Stages(cells []RolloutCell) [][]int {
	out := make([][]int, len(cells))
	for i, cc := range cells {
		out[i] = []int{cc.Index}
	}
	return out
}

// CanaryCellPolicy upgrades the cell with the smallest blast radius
// first — fewest master replicas, then fewest replicas, then lowest
// index — and, once the canary survives its health window, the rest in
// one batch.
type CanaryCellPolicy struct{}

// Name implements RolloutPolicy.
func (CanaryCellPolicy) Name() string { return RolloutCanaryCell }

// Stages implements RolloutPolicy.
func (CanaryCellPolicy) Stages(cells []RolloutCell) [][]int {
	if len(cells) <= 1 {
		return AllAtOncePolicy{}.Stages(cells)
	}
	canary := cells[0]
	for _, cc := range cells[1:] {
		better := cc.Masters < canary.Masters ||
			(cc.Masters == canary.Masters && cc.Replicas < canary.Replicas)
		if better {
			canary = cc
		}
	}
	rest := make([]int, 0, len(cells)-1)
	for _, cc := range cells {
		if cc.Index != canary.Index {
			rest = append(rest, cc.Index)
		}
	}
	return [][]int{{canary.Index}, rest}
}

// --- rollout policy registry --------------------------------------------------

var rolloutRegistry = struct {
	sync.RWMutex
	builders map[string]func() RolloutPolicy
}{builders: make(map[string]func() RolloutPolicy)}

// RegisterRolloutPolicy adds a named rollout strategy to the global
// registry, making it addressable from RolloutSpec.Strategy.
func RegisterRolloutPolicy(name string, build func() RolloutPolicy) error {
	if name == "" || build == nil {
		return fmt.Errorf("evm: rollout policy needs a name and a builder")
	}
	rolloutRegistry.Lock()
	defer rolloutRegistry.Unlock()
	if _, dup := rolloutRegistry.builders[name]; dup {
		return fmt.Errorf("evm: rollout policy %q already registered", name)
	}
	rolloutRegistry.builders[name] = build
	return nil
}

// MustRegisterRolloutPolicy is RegisterRolloutPolicy that panics on
// error — for package init blocks.
func MustRegisterRolloutPolicy(name string, build func() RolloutPolicy) {
	if err := RegisterRolloutPolicy(name, build); err != nil {
		panic(err)
	}
}

// RolloutPolicies lists the registered strategy names, sorted.
func RolloutPolicies() []string {
	rolloutRegistry.RLock()
	defer rolloutRegistry.RUnlock()
	out := make([]string, 0, len(rolloutRegistry.builders))
	for name := range rolloutRegistry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewRolloutPolicy instantiates a registered strategy by name. The empty
// name returns the default (canary-cell).
func NewRolloutPolicy(name string) (RolloutPolicy, error) {
	if name == "" {
		return CanaryCellPolicy{}, nil
	}
	rolloutRegistry.RLock()
	build := rolloutRegistry.builders[name]
	rolloutRegistry.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("evm: unknown rollout policy %q (registered: %v)", name, RolloutPolicies())
	}
	return build(), nil
}

func init() {
	MustRegisterRolloutPolicy(RolloutCanaryCell, func() RolloutPolicy { return CanaryCellPolicy{} })
	MustRegisterRolloutPolicy(RolloutCellByCell, func() RolloutPolicy { return CellByCellPolicy{} })
	MustRegisterRolloutPolicy(RolloutAllAtOnce, func() RolloutPolicy { return AllAtOncePolicy{} })
}

// --- rollout coordinator ------------------------------------------------------

// RolloutSpec parameterizes one campus rollout.
type RolloutSpec struct {
	// Tasks are the task IDs to upgrade. Every task must have a capsule
	// of the target Version registered in the campus CapsuleStore.
	Tasks []string
	// Version is the capsule version to roll out.
	Version uint8
	// Strategy names the RolloutPolicy ("" = canary-cell).
	Strategy string
	// Source names the cell whose gateway disseminates the capsules
	// ("" = the first cell).
	Source string
	// HealthWindow is how long each stage is observed after activation
	// before the next stage starts (default 3 s). A violation from the
	// health checkers or a missed-actuation signal during the window
	// rolls the whole rollout back. A window no longer than
	// ActuationBound could never observe a bound-length silence, so it
	// is extended to ActuationBound plus one task period when needed.
	HealthWindow time.Duration
	// StageTimeout bounds one stage's prepare/commit exchange (default
	// 10 s): a stage not fully activated by then aborts the rollout.
	StageTimeout time.Duration
	// ActuationBound is the missed-actuation threshold inside the health
	// window: a target task silent for longer trips the rollback.
	// Default: 8x the longest target task period (at least 2 s).
	ActuationBound time.Duration
	// Checkers builds the invariant checkers replayed over the health
	// window (nil = single-master, demoted-silence and the
	// actuation-deadline timing checker at ActuationBound).
	Checkers func() []InvariantChecker
}

// RolloutState is a rollout's lifecycle position.
type RolloutState string

// Rollout states.
const (
	RolloutRunning    RolloutState = "running"
	RolloutComplete   RolloutState = "complete"
	RolloutRolledBack RolloutState = "rolled-back"
	RolloutAborted    RolloutState = "aborted"
)

// Rollout is one in-flight (or finished) campus rollout. All methods are
// driven by the campus engine; inspect State after the campus has run.
type Rollout struct {
	c      *Campus
	spec   RolloutSpec
	policy RolloutPolicy
	src    int

	capsules map[string][]byte           // task -> encoded capsule at target version
	targets  map[int]map[string][]NodeID // cell -> task -> replica holders
	cellIdxs []int                       // targeted cells, ascending
	stages   [][]int

	stageIdx       int
	pendingPrepare map[string]bool // "<cell>/<task>"
	pendingCommit  map[string]bool
	activated      []rolloutActivation
	prevVersion    map[string]uint8 // task -> version before first activation
	catchUps       int              // post-plan rescan rounds consumed

	state  RolloutState
	reason string

	stageTimer  *sim.Event
	healthTimer *sim.Event
	healthSub   *Subscription
	checkers    []InvariantChecker
	lastAct     map[string]time.Duration
	healthStart time.Duration

	// spanID/stageSpan/healthSpan are the open trace spans for the whole
	// rollout, the current stage (prepare through activation) and the
	// current health window; zero when tracing is off. finish closes any
	// still open with the terminal state, so aborts never leak open spans.
	spanID     span.ID
	stageSpan  span.ID
	healthSpan span.ID
}

type rolloutActivation struct {
	cell int
	node NodeID
	task string
}

// State returns the rollout's lifecycle position.
func (r *Rollout) State() RolloutState { return r.state }

// Reason explains a rolled-back or aborted rollout ("" otherwise).
func (r *Rollout) Reason() string { return r.reason }

// Stages returns the validated stage plan as cell names.
func (r *Rollout) Stages() [][]string {
	out := make([][]string, len(r.stages))
	for i, batch := range r.stages {
		out[i] = make([]string, len(batch))
		for j, cell := range batch {
			out[i][j] = r.c.cellName(cell)
		}
	}
	return out
}

// Capsules returns the campus capsule store, creating it on first use.
// Pre-populate it through CampusConfig.Capsules or register versions
// directly before starting a rollout.
func (c *Campus) Capsules() *CapsuleStore {
	if c.capsules == nil {
		c.capsules = NewCapsuleStore()
	}
	return c.capsules
}

// StartRollout begins disseminating a registered capsule version to
// every replica of the spec's tasks, staged by the spec's strategy. The
// returned Rollout reports progress; the rollout itself advances on the
// campus engine. Tasks already part of an active rollout are rejected.
func (c *Campus) StartRollout(spec RolloutSpec) (*Rollout, error) {
	if len(spec.Tasks) == 0 {
		return nil, fmt.Errorf("evm: rollout needs at least one task")
	}
	if spec.HealthWindow <= 0 {
		spec.HealthWindow = 3 * time.Second
	}
	if spec.StageTimeout <= 0 {
		spec.StageTimeout = 10 * time.Second
	}
	policy, err := NewRolloutPolicy(spec.Strategy)
	if err != nil {
		return nil, err
	}
	src := 0
	if spec.Source != "" {
		i, ok := c.byName[spec.Source]
		if !ok {
			return nil, fmt.Errorf("evm: unknown source cell %q", spec.Source)
		}
		src = i
	}
	tasks := append([]string(nil), spec.Tasks...)
	sort.Strings(tasks)
	spec.Tasks = tasks
	var maxPeriod time.Duration
	capsules := make(map[string][]byte, len(tasks))
	for _, task := range tasks {
		key, known := c.taskKeys[task]
		if !known {
			return nil, fmt.Errorf("evm: rollout names unknown task %q", task)
		}
		if c.otaActive[task] {
			return nil, fmt.Errorf("evm: task %q already has a rollout in flight", task)
		}
		cap, ok := c.Capsules().Get(task, spec.Version)
		if !ok {
			return nil, fmt.Errorf("evm: no capsule registered for task %q v%d", task, spec.Version)
		}
		enc, err := cap.Encode()
		if err != nil {
			return nil, err
		}
		capsules[task] = enc
		if p := c.placements[key].spec.Period; p > maxPeriod {
			maxPeriod = p
		}
	}
	if spec.ActuationBound <= 0 {
		spec.ActuationBound = 8 * maxPeriod
		if spec.ActuationBound < 2*time.Second {
			spec.ActuationBound = 2 * time.Second
		}
	}
	// A health window that ends before ActuationBound elapses could
	// never witness a bound-length silence: a capsule that attests
	// cleanly but never actuates would sail through. Stretch the window
	// past the bound so missed-actuation stays detectable.
	if spec.HealthWindow <= spec.ActuationBound {
		slack := maxPeriod
		if slack <= 0 {
			slack = 500 * time.Millisecond
		}
		spec.HealthWindow = spec.ActuationBound + slack
	}
	r := &Rollout{
		c: c, spec: spec, policy: policy, src: src,
		capsules:    capsules,
		state:       RolloutRunning,
		prevVersion: make(map[string]uint8),
		lastAct:     make(map[string]time.Duration),
	}
	r.collectTargets()
	if len(r.cellIdxs) == 0 {
		return nil, fmt.Errorf("evm: no replica of %v found in any cell", spec.Tasks)
	}
	r.stages = r.validStages(policy.Stages(r.rolloutCells()))
	if c.otaActive == nil {
		c.otaActive = make(map[string]bool)
	}
	for _, task := range tasks {
		c.otaActive[task] = true
	}
	c.bus().publish(RolloutEvent{
		At: c.eng.Now(), Tasks: tasks, Version: spec.Version, Strategy: policy.Name(),
		Phase: RolloutPhaseStart, Stage: -1, Cells: r.cellNames(r.cellIdxs),
	})
	r.spanID = c.eng.Tracer().Open("rollout", "ota", "ota", c.eng.Now(),
		span.Arg{Key: "tasks", Val: strings.Join(tasks, "+")},
		span.Arg{Key: "version", Val: strconv.Itoa(int(spec.Version))},
		span.Arg{Key: "strategy", Val: policy.Name()})
	r.runStage()
	return r, nil
}

// collectTargets scans every cell for replicas of the rollout's tasks,
// in member order so the plan is deterministic.
func (r *Rollout) collectTargets() {
	r.targets = make(map[int]map[string][]NodeID)
	for i, cell := range r.c.cells {
		byTask := make(map[string][]NodeID)
		for _, task := range r.spec.Tasks {
			for _, id := range cell.ids {
				if n := cell.nodes[id]; n != nil && n.HasReplica(task) {
					byTask[task] = append(byTask[task], id)
				}
			}
		}
		if len(byTask) > 0 {
			r.targets[i] = byTask
			r.cellIdxs = append(r.cellIdxs, i)
		}
	}
}

// rolloutCells snapshots the targeted cells for the policy request.
func (r *Rollout) rolloutCells() []RolloutCell {
	out := make([]RolloutCell, 0, len(r.cellIdxs))
	for _, i := range r.cellIdxs {
		cc := RolloutCell{Index: i, Name: r.c.cellName(i)}
		for _, nodes := range r.targets[i] {
			cc.Replicas += len(nodes)
		}
		for _, task := range r.spec.Tasks {
			if p := r.c.placements[r.c.taskKeys[task]]; p.cell == i {
				cc.Masters++
			}
		}
		out = append(out, cc)
	}
	return out
}

// validStages sanitizes a policy's plan: unknown and duplicate cells are
// dropped, cells the policy missed are appended as one final stage.
func (r *Rollout) validStages(stages [][]int) [][]int {
	targeted := make(map[int]bool, len(r.cellIdxs))
	for _, i := range r.cellIdxs {
		targeted[i] = true
	}
	seen := make(map[int]bool)
	var out [][]int
	for _, batch := range stages {
		var keep []int
		for _, cell := range batch {
			if targeted[cell] && !seen[cell] {
				seen[cell] = true
				keep = append(keep, cell)
			}
		}
		if len(keep) > 0 {
			out = append(out, keep)
		}
	}
	var missing []int
	for _, i := range r.cellIdxs {
		if !seen[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		out = append(out, missing)
	}
	return out
}

func (r *Rollout) cellNames(idxs []int) []string {
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = r.c.cellName(idx)
	}
	return out
}

// runStage opens the current stage: prepare legs to every cell of the
// batch (local cells stage directly; remote cells over the backbone).
// Once the planned stages are exhausted, the campus is re-scanned for
// replicas that appeared mid-rollout before the complete verdict.
func (r *Rollout) runStage() {
	if r.stageIdx >= len(r.stages) {
		if !r.addCatchUpStage() {
			if r.state != RolloutRunning {
				return // the catch-up cap tripped; fail() closed the rollout
			}
			r.finish(RolloutComplete, "")
			r.c.bus().publish(RolloutEvent{
				At: r.c.eng.Now(), Tasks: r.spec.Tasks, Version: r.spec.Version,
				Strategy: r.policy.Name(), Phase: RolloutPhaseComplete, Stage: -1,
				Cells: r.cellNames(r.cellIdxs),
			})
			return
		}
	}
	batch := r.stages[r.stageIdx]
	r.stageSpan = r.c.eng.Tracer().Open("rollout-stage", "ota", "ota", r.c.eng.Now(),
		span.Arg{Key: "stage", Val: strconv.Itoa(r.stageIdx)},
		span.Arg{Key: "cells", Val: strings.Join(r.cellNames(batch), "+")})
	r.pendingPrepare = make(map[string]bool)
	r.pendingCommit = make(map[string]bool)
	for _, cell := range batch {
		for _, task := range r.stageTasks(cell) {
			r.pendingPrepare[pendKey(cell, task)] = true
		}
	}
	r.stageTimer = r.c.eng.After(r.spec.StageTimeout, func() { r.fail("stage-timeout") })
	for _, cell := range batch {
		for _, task := range r.stageTasks(cell) {
			if r.state != RolloutRunning {
				return // a synchronous local leg already failed the stage
			}
			payload, err := (wire.CapsuleMsg{
				Phase: wire.CapsulePrepare, TaskID: task,
				Version: r.spec.Version, Capsule: r.capsules[task],
			}).Encode()
			if err != nil {
				r.fail("encode")
				return
			}
			if cell == r.src {
				r.onPrepare(cell, payload)
				continue
			}
			cell := cell
			r.c.backbone.Send(r.src, cell, payload,
				func(b []byte) { r.onPrepare(cell, b) },
				func() { r.fail("prepare-lost") })
		}
	}
}

// stageTasks lists the rollout tasks hosted in a cell, sorted.
func (r *Rollout) stageTasks(cell int) []string {
	var out []string
	for _, task := range r.spec.Tasks {
		if len(r.targets[cell][task]) > 0 {
			out = append(out, task)
		}
	}
	return out
}

func pendKey(cell int, task string) string { return fmt.Sprintf("%d/%s", cell, task) }

func nodeKey(cell int, node NodeID, task string) string {
	return fmt.Sprintf("%d/%d/%s", cell, node, task)
}

// catchUpRounds bounds how many post-plan rescans a rollout runs before
// concluding the placement is diverging faster than it can upgrade.
const catchUpRounds = 3

// addCatchUpStage re-scans every cell after the planned stages finish:
// a replica of a target task created mid-rollout — cross-cell
// escalation, homeward rebalance, in-cell migration to a spare — was
// not in the start-of-rollout snapshot and would otherwise keep running
// the old version past a "complete" verdict. Each straggler joins one
// more stage (its own prepare/commit and health window); replicas that
// already carry the target version (a post-upgrade migration ships code
// with state) are skipped, so a later rollback can never "revert" one
// onto the new version. If stragglers keep appearing past
// catchUpRounds, the rollout fails — activated stages roll back —
// rather than completing with mixed versions.
func (r *Rollout) addCatchUpStage() bool {
	upgraded := make(map[string]bool, len(r.activated))
	for _, a := range r.activated {
		upgraded[nodeKey(a.cell, a.node, a.task)] = true
	}
	extra := make(map[int]map[string][]NodeID)
	for i, cell := range r.c.cells {
		for _, task := range r.spec.Tasks {
			for _, id := range cell.ids {
				n := cell.nodes[id]
				if n == nil || !n.HasReplica(task) || upgraded[nodeKey(i, id, task)] {
					continue
				}
				if v, ok := n.CapsuleVersion(task); ok && v == r.spec.Version {
					continue
				}
				if extra[i] == nil {
					extra[i] = make(map[string][]NodeID)
				}
				extra[i][task] = append(extra[i][task], id)
			}
		}
	}
	if len(extra) == 0 {
		return false
	}
	if r.catchUps >= catchUpRounds {
		r.fail("targets-diverged")
		return false
	}
	r.catchUps++
	batch := make([]int, 0, len(extra))
	for i := range extra {
		batch = append(batch, i)
	}
	sort.Ints(batch)
	known := make(map[int]bool, len(r.cellIdxs))
	for _, i := range r.cellIdxs {
		known[i] = true
	}
	for _, i := range batch {
		// The catch-up stage targets only the stragglers; the cell's
		// original holders are already activated (rollback tracks them
		// through r.activated, not r.targets).
		r.targets[i] = extra[i]
		if !known[i] {
			r.cellIdxs = append(r.cellIdxs, i)
		}
	}
	sort.Ints(r.cellIdxs)
	r.stages = append(r.stages, batch)
	return true
}

// onPrepare lands one prepare leg in a hosting cell: attest the capsule
// (vm.Decode verifies the checksum) and stage it on every replica
// holder. Holders retired since the start-of-rollout snapshot (a
// rebalance or migration moved the replica away) are dropped from the
// target list — the catch-up rescan finds wherever the replica went —
// but an attestation or staging failure on a live holder aborts the
// rollout: a cell must never commit with only part of its replicas
// staged.
func (r *Rollout) onPrepare(cell int, payload []byte) {
	if r.state != RolloutRunning {
		return // stale leg of an aborted rollout
	}
	msg, err := wire.DecodeCapsuleMsg(payload)
	if err != nil || msg.Phase != wire.CapsulePrepare {
		r.fail("decode")
		return
	}
	capsule, err := vm.Decode(msg.Capsule)
	if err != nil {
		r.fail("attestation")
		return
	}
	var live []NodeID
	for _, id := range r.targets[cell][msg.TaskID] {
		node := r.c.cells[cell].nodes[id]
		if node == nil || !node.HasReplica(msg.TaskID) {
			continue // retired mid-rollout; not this cell's to upgrade
		}
		err := node.StageCapsule(capsule)
		r.c.bus().publish(CapsuleDeliveryEvent{
			At: r.c.eng.Now(), Cell: r.c.cellName(cell), Node: id,
			Task: msg.TaskID, Version: msg.Version, OK: err == nil,
		})
		if err != nil {
			r.fail("admit")
			return
		}
		live = append(live, id)
	}
	r.targets[cell][msg.TaskID] = live
	delete(r.pendingPrepare, pendKey(cell, msg.TaskID))
	if len(r.pendingPrepare) == 0 {
		r.commitStage()
	}
}

// commitStage sends the commit legs once every cell of the stage is
// fully staged.
func (r *Rollout) commitStage() {
	batch := r.stages[r.stageIdx]
	r.c.bus().publish(RolloutEvent{
		At: r.c.eng.Now(), Tasks: r.spec.Tasks, Version: r.spec.Version,
		Strategy: r.policy.Name(), Phase: RolloutPhaseStaged,
		Stage: r.stageIdx, Cells: r.cellNames(batch),
	})
	for _, cell := range batch {
		for _, task := range r.stageTasks(cell) {
			r.pendingCommit[pendKey(cell, task)] = true
		}
	}
	if len(r.pendingCommit) == 0 {
		// Every holder in the batch vanished mid-rollout (rebalanced or
		// migrated away): nothing to activate here — the catch-up rescan
		// finds wherever the replicas went.
		r.c.eng.Cancel(r.stageTimer)
		r.c.eng.Tracer().Close(r.stageSpan, r.c.eng.Now(), span.Arg{Key: "outcome", Val: "no-holders"})
		r.stageIdx++
		r.runStage()
		return
	}
	for _, cell := range batch {
		for _, task := range r.stageTasks(cell) {
			if r.state != RolloutRunning {
				return // a synchronous local leg already failed the stage
			}
			payload, err := (wire.CapsuleMsg{
				Phase: wire.CapsuleCommit, TaskID: task, Version: r.spec.Version,
			}).Encode()
			if err != nil {
				r.fail("encode")
				return
			}
			if cell == r.src {
				r.onCommit(cell, payload)
				continue
			}
			cell := cell
			r.c.backbone.Send(r.src, cell, payload,
				func(b []byte) { r.onCommit(cell, b) },
				func() { r.fail("commit-lost") })
		}
	}
}

// onCommit lands one commit leg: every staged replica in the cell swaps
// to the new version at this instant, so the task's master and backups
// never run mixed versions past the commit point.
func (r *Rollout) onCommit(cell int, payload []byte) {
	if r.state != RolloutRunning {
		return
	}
	msg, err := wire.DecodeCapsuleMsg(payload)
	if err != nil || msg.Phase != wire.CapsuleCommit {
		r.fail("decode")
		return
	}
	for _, id := range r.targets[cell][msg.TaskID] {
		node := r.c.cells[cell].nodes[id]
		if node == nil || !node.HasReplica(msg.TaskID) {
			continue // retired between prepare and commit
		}
		if _, recorded := r.prevVersion[msg.TaskID]; !recorded {
			v, _ := node.CapsuleVersion(msg.TaskID)
			r.prevVersion[msg.TaskID] = v
		}
		if err := node.ActivateStaged(msg.TaskID); err != nil {
			r.fail("activate")
			return
		}
		r.activated = append(r.activated, rolloutActivation{cell: cell, node: id, task: msg.TaskID})
	}
	delete(r.pendingCommit, pendKey(cell, msg.TaskID))
	if len(r.pendingCommit) == 0 {
		r.c.eng.Cancel(r.stageTimer)
		r.c.eng.Tracer().Close(r.stageSpan, r.c.eng.Now(), span.Arg{Key: "outcome", Val: "activated"})
		r.c.bus().publish(RolloutEvent{
			At: r.c.eng.Now(), Tasks: r.spec.Tasks, Version: r.spec.Version,
			Strategy: r.policy.Name(), Phase: RolloutPhaseActivated,
			Stage: r.stageIdx, Cells: r.cellNames(r.stages[r.stageIdx]),
		})
		r.startHealthWindow()
	}
}

// startHealthWindow observes the campus for HealthWindow after a stage
// activates: the spec's invariant checkers replay the live stream and
// every target task's actuations are timestamped.
func (r *Rollout) startHealthWindow() {
	if r.spec.Checkers != nil {
		r.checkers = r.spec.Checkers()
	} else {
		r.checkers = []InvariantChecker{
			NewSingleMasterInvariant(0),
			NewDemotedSilenceInvariant(0),
			NewActuationDeadlineInvariant(r.spec.ActuationBound),
		}
	}
	r.healthStart = r.c.eng.Now()
	r.healthSpan = r.c.eng.Tracer().Open("health-window", "ota", "ota", r.c.eng.Now(),
		span.Arg{Key: "stage", Val: strconv.Itoa(r.stageIdx)})
	r.lastAct = make(map[string]time.Duration)
	watched := make(map[string]bool, len(r.spec.Tasks))
	for _, task := range r.spec.Tasks {
		watched[task] = true
	}
	r.healthSub = r.c.bus().Subscribe(func(ev Event) {
		for _, ch := range r.checkers {
			ch.Observe(ev)
		}
		_, inner := splitEvent(ev)
		if act, ok := inner.(ActuationEvent); ok && watched[act.Task] {
			r.lastAct[act.Task] = act.At
		}
	})
	r.healthTimer = r.c.eng.After(r.spec.HealthWindow, r.evaluateHealth)
}

// evaluateHealth closes a stage's health window: an invariant violation
// or a target task silent past ActuationBound rolls the whole rollout
// back; otherwise the next stage begins.
func (r *Rollout) evaluateHealth() {
	r.healthSub.Cancel()
	r.healthSub = nil
	now := r.c.eng.Now()
	for _, ch := range r.checkers {
		if vs := ch.Violations(); len(vs) > 0 {
			r.c.eng.Tracer().Close(r.healthSpan, now, span.Arg{Key: "outcome", Val: "violation"})
			r.rollback(fmt.Sprintf("invariant:%s", vs[0].Checker))
			return
		}
	}
	for _, task := range r.spec.Tasks {
		ref := r.healthStart
		if at, ok := r.lastAct[task]; ok && at > ref {
			ref = at
		}
		if now-ref > r.spec.ActuationBound {
			r.c.eng.Tracer().Close(r.healthSpan, now, span.Arg{Key: "outcome", Val: "missed-actuation"})
			r.rollback("missed-actuation:" + task)
			return
		}
	}
	r.c.eng.Tracer().Close(r.healthSpan, now, span.Arg{Key: "outcome", Val: "ok"})
	r.stageIdx++
	r.runStage()
}

// fail aborts the rollout mid-handshake. Stages already activated are
// rolled back so the campus never settles on a mix of versions; a
// failure before any activation just clears the staged capsules.
func (r *Rollout) fail(reason string) {
	if r.state != RolloutRunning {
		return
	}
	if len(r.activated) > 0 {
		r.rollback(reason)
		return
	}
	r.finish(RolloutAborted, reason)
	r.c.bus().publish(RolloutEvent{
		At: r.c.eng.Now(), Tasks: r.spec.Tasks, Version: r.spec.Version,
		Strategy: r.policy.Name(), Phase: RolloutPhaseAborted, Stage: r.stageIdx,
		Cells: r.cellNames(r.cellIdxs), Reason: reason,
	})
}

// rollback reverts every activated replica to its prior version and
// publishes one RollbackEvent per task, then closes the rollout.
func (r *Rollout) rollback(reason string) {
	cellsByTask := make(map[string][]string)
	for _, a := range r.activated {
		_ = r.c.cells[a.cell].nodes[a.node].RevertCapsule(a.task)
		name := r.c.cellName(a.cell)
		cells := cellsByTask[a.task]
		if len(cells) == 0 || cells[len(cells)-1] != name {
			cellsByTask[a.task] = append(cells, name)
		}
	}
	r.finish(RolloutRolledBack, reason)
	for _, task := range r.spec.Tasks {
		cells, was := cellsByTask[task]
		if !was {
			continue
		}
		r.c.bus().publish(RollbackEvent{
			At: r.c.eng.Now(), Task: task, FromVersion: r.spec.Version,
			ToVersion: r.prevVersion[task], Reason: reason, Cells: cells,
		})
	}
	r.c.bus().publish(RolloutEvent{
		At: r.c.eng.Now(), Tasks: r.spec.Tasks, Version: r.spec.Version,
		Strategy: r.policy.Name(), Phase: RolloutPhaseRolledBack, Stage: r.stageIdx,
		Cells: r.cellNames(r.cellIdxs), Reason: reason,
	})
}

// finish releases the rollout's timers, subscriptions, staged capsules
// and task locks.
func (r *Rollout) finish(state RolloutState, reason string) {
	r.state = state
	r.reason = reason
	// Close whatever spans are still open (stage/health spans already
	// closed with a specific outcome are untouched — Close is a no-op on
	// closed spans), then the rollout span with the terminal state.
	now := r.c.eng.Now()
	tr := r.c.eng.Tracer()
	tr.Close(r.healthSpan, now, span.Arg{Key: "outcome", Val: string(state)})
	tr.Close(r.stageSpan, now, span.Arg{Key: "outcome", Val: string(state)})
	args := []span.Arg{{Key: "outcome", Val: string(state)}}
	if reason != "" {
		args = append(args, span.Arg{Key: "reason", Val: reason})
	}
	tr.Close(r.spanID, now, args...)
	if r.stageTimer != nil {
		r.c.eng.Cancel(r.stageTimer)
	}
	if r.healthTimer != nil {
		r.c.eng.Cancel(r.healthTimer)
	}
	if r.healthSub != nil {
		r.healthSub.Cancel()
		r.healthSub = nil
	}
	for _, cell := range r.cellIdxs {
		//evm:allow-maporder teardown clears staged state per (task, node); entries are disjoint, so clear order is unobservable
		for task, nodes := range r.targets[cell] {
			for _, id := range nodes {
				r.c.cells[cell].nodes[id].ClearStaged(task)
			}
		}
	}
	for _, task := range r.spec.Tasks {
		delete(r.c.otaActive, task)
	}
}

// --- OTA events ---------------------------------------------------------------

// RolloutPhase classifies a RolloutEvent.
type RolloutPhase string

// Rollout phases.
const (
	RolloutPhaseStart      RolloutPhase = "start"
	RolloutPhaseStaged     RolloutPhase = "staged"
	RolloutPhaseActivated  RolloutPhase = "activated"
	RolloutPhaseComplete   RolloutPhase = "complete"
	RolloutPhaseAborted    RolloutPhase = "aborted"
	RolloutPhaseRolledBack RolloutPhase = "rolled-back"
)

// RolloutEvent traces one campus rollout: start, each stage's staged and
// activated transitions, and the terminal phase — complete, aborted
// (nothing had activated) or rolled-back (activated replicas reverted;
// the per-task detail rides the accompanying RollbackEvents). Stage is
// -1 for rollout-scoped phases.
type RolloutEvent struct {
	At       time.Duration
	Tasks    []string
	Version  uint8
	Strategy string
	Phase    RolloutPhase
	Stage    int
	Cells    []string
	Reason   string
}

// When implements Event.
func (e RolloutEvent) When() time.Duration { return e.At }

// String implements Event.
func (e RolloutEvent) String() string {
	s := fmt.Sprintf("%v rollout phase=%s tasks=%s v=%d strategy=%s stage=%d cells=%s",
		e.At, e.Phase, strings.Join(e.Tasks, "+"), e.Version, e.Strategy,
		e.Stage, strings.Join(e.Cells, "+"))
	if e.Reason != "" {
		s += " reason=" + e.Reason
	}
	return s
}

// CapsuleDeliveryEvent fires once per replica holder when a rollout's
// prepare leg stages a capsule on it (OK=false when attested code failed
// to instantiate or the node refused it).
type CapsuleDeliveryEvent struct {
	At      time.Duration
	Cell    string
	Node    NodeID
	Task    string
	Version uint8
	OK      bool
}

// When implements Event.
func (e CapsuleDeliveryEvent) When() time.Duration { return e.At }

// String implements Event.
func (e CapsuleDeliveryEvent) String() string {
	return fmt.Sprintf("%v capsule-delivery cell=%s node=%d task=%s v=%d ok=%t",
		e.At, e.Cell, e.Node, e.Task, e.Version, e.OK)
}

// RollbackEvent fires when a rollout's health window trips (or a later
// stage fails) and a task's replicas revert to the prior version.
type RollbackEvent struct {
	At          time.Duration
	Task        string
	FromVersion uint8
	ToVersion   uint8
	Reason      string
	Cells       []string
}

// When implements Event.
func (e RollbackEvent) When() time.Duration { return e.At }

// String implements Event.
func (e RollbackEvent) String() string {
	return fmt.Sprintf("%v rollback task=%s from=v%d to=v%d cells=%s reason=%s",
		e.At, e.Task, e.FromVersion, e.ToVersion, strings.Join(e.Cells, "+"), e.Reason)
}
