package evm

import (
	"fmt"

	"evm/internal/radio"
	"evm/internal/sim"
)

// Position is a 2-D node location in meters on the radio medium.
type Position = radio.Position

// Placement decides where cell members sit on the medium. Use Line, Grid,
// RandomUniform or Fixed; placements that draw randomness consume a
// dedicated fork of the cell's seeded stream, so cells remain reproducible
// bit-for-bit.
type Placement struct {
	name string
	// random placements get a forked RNG; deterministic ones get nil.
	random bool
	// capacity caps the number of placeable nodes (0 = unlimited).
	capacity int
	at       func(i int, rng *sim.RNG) Position
}

// Name returns a short description of the placement.
func (p Placement) Name() string { return p.name }

// Line places nodes on the X axis with the given spacing in meters.
// Line(3) is the classic seed topology: every node well inside radio
// range of every other.
func Line(spacingM float64) Placement {
	return Placement{
		name: fmt.Sprintf("line(%g)", spacingM),
		at:   func(i int, _ *sim.RNG) Position { return Position{X: float64(i) * spacingM} },
	}
}

// Grid places nodes row-major on a cols x rows lattice with 3 m pitch.
// The cell may hold at most cols*rows members.
func Grid(cols, rows int) Placement {
	const pitchM = 3
	return Placement{
		name:     fmt.Sprintf("grid(%dx%d)", cols, rows),
		capacity: cols * rows,
		at: func(i int, _ *sim.RNG) Position {
			return Position{X: float64(i%cols) * pitchM, Y: float64(i/cols) * pitchM}
		},
	}
}

// RandomUniform scatters nodes uniformly over a sideM x sideM square.
// Nodes can land out of radio range of each other; combine with a larger
// CellConfig.Radio.RangeM or accept the resulting loss as part of the
// experiment.
func RandomUniform(sideM float64) Placement {
	return Placement{
		name:   fmt.Sprintf("uniform(%g)", sideM),
		random: true,
		at: func(_ int, rng *sim.RNG) Position {
			return Position{X: rng.Float64() * sideM, Y: rng.Float64() * sideM}
		},
	}
}

// Fixed places node i at pos[i]; the cell may hold at most len(pos)
// members.
func Fixed(pos ...Position) Placement {
	own := append([]Position(nil), pos...)
	return Placement{
		name:     fmt.Sprintf("fixed(%d)", len(own)),
		capacity: len(own),
		at:       func(i int, _ *sim.RNG) Position { return own[i] },
	}
}

// cellSpec accumulates the functional options of NewCellWith.
type cellSpec struct {
	ids          []NodeID
	placement    Placement
	per          float64
	hasPER       bool
	slotsPerNode int
	line         bool
	lineOrder    []NodeID
}

// CellOption configures NewCellWith.
type CellOption func(*cellSpec)

// WithNodes sets the cell members explicitly.
func WithNodes(ids ...NodeID) CellOption {
	return func(s *cellSpec) { s.ids = append([]NodeID(nil), ids...) }
}

// WithNodeCount populates the cell with members 1..n — the convenient
// form for large synthetic cells.
func WithNodeCount(n int) CellOption {
	return func(s *cellSpec) {
		s.ids = make([]NodeID, n)
		for i := range s.ids {
			s.ids[i] = NodeID(i + 1)
		}
	}
}

// WithPlacement sets the node placement (default: Line(3)).
func WithPlacement(p Placement) CellOption {
	return func(s *cellSpec) { s.placement = p }
}

// WithPER forces a fixed packet error rate on every in-range link,
// overriding the distance-loss curve (radio range remains a hard cutoff,
// and the Gilbert-Elliott burst overlay stays active for rates > 0).
// WithPER(0) yields a fully perfect channel — loss curve and burst
// overlay disabled, the option form of CellConfig.PerfectChannel.
func WithPER(per float64) CellOption {
	return func(s *cellSpec) {
		s.per = per
		s.hasPER = true
	}
}

// WithSlotsPerNode sets the TX slots each member owns per TDMA frame.
func WithSlotsPerNode(k int) CellOption {
	return func(s *cellSpec) { s.slotsPerNode = k }
}

// WithLineSchedule replaces the default full-mesh TDMA schedule with a
// multi-hop line schedule (rtlink.BuildLineSchedule): each node's slots
// are heard only by its immediate line neighbors, so messages between
// distant stations must be relayed hop by hop (see
// Cell.InstallLineRoutes). order gives the station sequence along the
// line; empty means member order. The cell's slot budget (SlotsPerNode /
// WithSlotsPerNode) becomes the number of line rounds per frame.
func WithLineSchedule(order ...NodeID) CellOption {
	return func(s *cellSpec) {
		s.line = true
		s.lineOrder = append([]NodeID(nil), order...)
	}
}

func (s *cellSpec) validate() error {
	if len(s.ids) == 0 {
		return fmt.Errorf("evm: cell needs at least one node (WithNodes / WithNodeCount)")
	}
	if s.placement.capacity > 0 && len(s.ids) > s.placement.capacity {
		return fmt.Errorf("evm: placement %s holds at most %d nodes, got %d",
			s.placement.name, s.placement.capacity, len(s.ids))
	}
	if s.hasPER && (s.per < 0 || s.per > 1) {
		return fmt.Errorf("evm: packet error rate %g outside [0,1]", s.per)
	}
	if s.slotsPerNode < 0 {
		return fmt.Errorf("evm: %d slots per node", s.slotsPerNode)
	}
	if s.line && len(s.lineOrder) > 0 {
		if len(s.lineOrder) != len(s.ids) {
			return fmt.Errorf("evm: line order names %d nodes, cell has %d", len(s.lineOrder), len(s.ids))
		}
		member := make(map[NodeID]bool, len(s.ids))
		for _, id := range s.ids {
			member[id] = true
		}
		seen := make(map[NodeID]bool, len(s.lineOrder))
		for _, id := range s.lineOrder {
			if !member[id] || seen[id] {
				return fmt.Errorf("evm: line order must be a permutation of the cell members")
			}
			seen[id] = true
		}
	}
	return nil
}
