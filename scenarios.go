package evm

import (
	"fmt"
	"time"
)

// Built-in scenario names registered with the global registry.
const (
	ScenarioGasPlant        = "gas-plant"
	ScenarioEightController = "eight-controller"
	ScenarioCapacity        = "capacity"
)

func init() {
	MustRegisterScenario(ScenarioGasPlant, buildGasPlantScenario)
	MustRegisterScenario(ScenarioEightController, buildEightControllerScenario)
	MustRegisterScenario(ScenarioCapacity, buildCapacityScenario)
}

// buildGasPlantScenario wraps the paper's hardware-in-loop testbed
// (Fig. 5) as a registry scenario: closed-loop plant, gateway, and the
// three-task Virtual Component, with an 8-cycle deviation window so
// injected faults resolve within grid-sized horizons.
func buildGasPlantScenario(spec RunSpec) (*Experiment, error) {
	cfg := DefaultGasPlantConfig()
	cfg.Seed = spec.Seed
	cfg.DeviationWindow = 8
	s, err := NewGasPlant(cfg)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Cell:           s.Cell,
		DefaultHorizon: 120 * time.Second,
		Metrics: func() map[string]float64 {
			gw := s.GW.Stats()
			lat := s.ActuationLatencies()
			meanLat := 0.0
			for _, l := range lat {
				meanLat += l.Seconds()
			}
			if len(lat) > 0 {
				meanLat /= float64(len(lat))
			}
			return map[string]float64{
				"lts_level_pct":      s.Plant.LTSLevelPct(),
				"lts_temp_c":         s.Plant.LTSTempC(),
				"actuations_ok":      float64(gw.ActuationsOK),
				"actuations_denied":  float64(gw.ActuationsDenied),
				"mean_act_latency_s": meanLat,
				"active_controller":  float64(s.ActiveController()),
			}
		},
		QoS: func() QoSReport { return EvaluateQoS(s.VC, s.Cell.Nodes()) },
		Cleanup: func() {
			s.GW.Stop()
			s.Cell.Stop()
		},
	}, nil
}

// buildEightControllerScenario mirrors the paper's deployment ("8
// different controllers are used"): four control loops, each with a
// primary/backup pair, spread over eight controller nodes on a 5x2 grid
// around a gateway and a head.
func buildEightControllerScenario(spec RunSpec) (*Experiment, error) {
	cell, err := NewCellWith(CellConfig{Seed: spec.Seed},
		WithNodeCount(10),
		WithPlacement(Grid(5, 2)),
		WithSlotsPerNode(3),
		WithPER(0))
	if err != nil {
		return nil, err
	}
	tasks := make([]TaskSpec, 0, 4)
	for i := 0; i < 4; i++ {
		tasks = append(tasks, TaskSpec{
			ID:              fmt.Sprintf("loop-%d", i),
			SensorPort:      uint8(i),
			ActuatorPort:    uint8(10 + i),
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []NodeID{NodeID(2 + 2*i), NodeID(3 + 2*i)},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (TaskLogic, error) {
				return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		})
	}
	vc := VCConfig{Name: "eight", Head: 10, Gateway: 1, Tasks: tasks, DormantAfter: 5 * time.Second}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}
	feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{
			{Port: 0, Value: 50}, {Port: 1, Value: 49},
			{Port: 2, Value: 51}, {Port: 3, Value: 50},
		}
	})
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Cell:           cell,
		DefaultHorizon: 60 * time.Second,
		Metrics: func() map[string]float64 {
			rep := EvaluateQoS(vc, cell.Nodes())
			return map[string]float64{
				"coverage":  rep.CoverageRatio,
				"redundant": float64(rep.Redundant),
				"tasks":     float64(rep.Tasks),
			}
		},
		QoS: func() QoSReport { return EvaluateQoS(vc, cell.Nodes()) },
		Cleanup: func() {
			feed.Stop()
			cell.Stop()
		},
	}, nil
}

// buildCapacityScenario exercises on-line capacity expansion: a two-loop
// component runs on two controllers, a third node joins at runtime, one
// loop migrates to it, and the head re-optimizes the assignment with the
// BQP solver.
func buildCapacityScenario(spec RunSpec) (*Experiment, error) {
	const (
		gwNode  NodeID = 1
		ctrl1   NodeID = 2
		ctrl2   NodeID = 3
		headN   NodeID = 4
		newNode NodeID = 9
	)
	task := func(id string, sensor, actuator uint8, primary, backup NodeID) TaskSpec {
		return TaskSpec{
			ID:              id,
			SensorPort:      sensor,
			ActuatorPort:    actuator,
			Period:          250 * time.Millisecond,
			WCET:            40 * time.Millisecond,
			Candidates:      []NodeID{primary, backup},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (TaskLogic, error) {
				return NewPIDLogic(PIDParams{Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
					Setpoint: 50, CutoffHz: 0.4, RateHz: 4})
			},
		}
	}
	cell, err := NewCellWith(CellConfig{Seed: spec.Seed},
		WithNodes(gwNode, ctrl1, ctrl2, headN),
		WithPER(0))
	if err != nil {
		return nil, err
	}
	vc := VCConfig{
		Name:    "capacity",
		Head:    headN,
		Gateway: gwNode,
		Tasks: []TaskSpec{
			task("loop-a", 0, 1, ctrl1, ctrl2),
			task("loop-b", 1, 2, ctrl2, ctrl1),
		},
	}
	if err := cell.Deploy(vc); err != nil {
		return nil, err
	}
	feed, err := cell.StartSensorFeed(gwNode, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{{Port: 0, Value: 49}, {Port: 1, Value: 51}}
	})
	if err != nil {
		return nil, err
	}
	// The expansion timeline rides the virtual clock so the whole
	// scenario stays declarative: join at 10 s, migrate at 15 s,
	// re-optimize at 20 s.
	moved := 0
	cell.Engine().After(10*time.Second, func() {
		_, _ = cell.AddNodeRuntime(newNode, vc)
	})
	cell.Engine().After(15*time.Second, func() {
		if cell.Node(newNode) != nil {
			_ = cell.Node(ctrl1).MigrateTask("loop-a", newNode)
		}
	})
	cell.Engine().After(20*time.Second, func() {
		moved = cell.Node(headN).Head().Reoptimize(cell.RNG())
	})
	return &Experiment{
		Cell:           cell,
		DefaultHorizon: 40 * time.Second,
		Metrics: func() map[string]float64 {
			head := cell.Node(headN).Head()
			return map[string]float64{
				"members":         float64(len(head.Members())),
				"reopt_moved":     float64(moved),
				"reoptimizations": float64(head.Stats().Reoptimizations),
			}
		},
		QoS: func() QoSReport { return EvaluateQoS(vc, cell.Nodes()) },
		Cleanup: func() {
			feed.Stop()
			cell.Stop()
		},
	}, nil
}
