package evm

import (
	"strings"
	"testing"
	"time"
)

// --- capsule store ------------------------------------------------------------

func TestCapsuleStoreRegisterAndLookup(t *testing.T) {
	store := NewCapsuleStore()
	v1, err := AssembleCapsule("loop", 1, otaLawV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AssembleCapsule("loop", 2, otaLawV2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Capsule{v1, v2} {
		if err := store.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Register(v1); err == nil {
		t.Fatal("duplicate (task, version) registration accepted")
	}
	if err := store.Register(Capsule{TaskID: "loop", Version: 0, Code: v1.Code}); err == nil {
		t.Fatal("zero-version capsule accepted")
	}
	if err := store.Register(Capsule{Version: 3, Code: v1.Code}); err == nil {
		t.Fatal("empty-task capsule accepted")
	}
	got, ok := store.Get("loop", 1)
	if !ok || got.Version != 1 {
		t.Fatalf("Get(loop, 1) = %+v, %t", got, ok)
	}
	// The stored copy is immutable: mutating a returned capsule must not
	// corrupt later lookups.
	got.Code[0] ^= 0xff
	again, _ := store.Get("loop", 1)
	if again.Code[0] == got.Code[0] {
		t.Fatal("store returned aliased capsule bytes")
	}
	latest, ok := store.Latest("loop")
	if !ok || latest.Version != 2 {
		t.Fatalf("Latest(loop) = v%d, %t, want v2", latest.Version, ok)
	}
	infos := store.Versions("loop")
	if len(infos) != 2 || infos[0].Version != 1 || infos[1].Version != 2 {
		t.Fatalf("Versions(loop) = %+v", infos)
	}
	if infos[0].Checksum != v1.Checksum() {
		t.Fatalf("stored checksum %x, want %x", infos[0].Checksum, v1.Checksum())
	}
	if _, ok := store.Get("loop", 9); ok {
		t.Fatal("Get of unregistered version succeeded")
	}
}

// --- rollout policies ---------------------------------------------------------

func TestRolloutPolicyStages(t *testing.T) {
	cells := []RolloutCell{
		{Index: 0, Name: "a", Replicas: 4, Masters: 2},
		{Index: 1, Name: "b", Replicas: 2, Masters: 1},
		{Index: 2, Name: "c", Replicas: 6, Masters: 1},
	}
	if got := (AllAtOncePolicy{}).Stages(cells); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("all-at-once stages = %v", got)
	}
	got := (CellByCellPolicy{}).Stages(cells)
	if len(got) != 3 || got[0][0] != 0 || got[1][0] != 1 || got[2][0] != 2 {
		t.Fatalf("cell-by-cell stages = %v", got)
	}
	// Canary picks the smallest blast radius: fewest masters, then fewest
	// replicas — cell b (1 master, 2 replicas) beats c (1 master, 6).
	canary := (CanaryCellPolicy{}).Stages(cells)
	if len(canary) != 2 || len(canary[0]) != 1 || canary[0][0] != 1 {
		t.Fatalf("canary stages = %v, want [[1] [0 2]]", canary)
	}
	if len(canary[1]) != 2 || canary[1][0] != 0 || canary[1][1] != 2 {
		t.Fatalf("canary rest = %v, want [0 2]", canary[1])
	}
	if got := (CanaryCellPolicy{}).Stages(cells[:1]); len(got) != 1 {
		t.Fatalf("single-cell canary stages = %v, want one batch", got)
	}
}

func TestRolloutPolicyRegistry(t *testing.T) {
	names := RolloutPolicies()
	for _, want := range []string{RolloutAllAtOnce, RolloutCanaryCell, RolloutCellByCell} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from registry %v", want, names)
		}
	}
	p, err := NewRolloutPolicy("")
	if err != nil || p.Name() != RolloutCanaryCell {
		t.Fatalf("default policy = %v, %v; want canary-cell", p, err)
	}
	if _, err := NewRolloutPolicy("no-such-strategy"); err == nil {
		t.Fatal("unknown strategy resolved")
	}
	if err := RegisterRolloutPolicy("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
}

// buggyRolloutPolicy returns a plan with an unknown cell, a duplicate,
// and a missing cell — the coordinator must sanitize it so every replica
// is still covered.
type buggyRolloutPolicy struct{}

func (buggyRolloutPolicy) Name() string { return "buggy" }
func (buggyRolloutPolicy) Stages(cells []RolloutCell) [][]int {
	first := cells[0].Index
	return [][]int{{99, first}, {first}} // unknown cell, duplicate, rest missing
}

// --- campus rollout acceptance ------------------------------------------------

// otaRun replays the ota-campus scenario once and returns its rendered
// stream, raw events and final metrics.
func otaRun(t *testing.T, seed uint64) ([]string, []Event, map[string]float64) {
	t.Helper()
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioOTACampus, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	log := exp.Campus.Events().Log()
	exp.Campus.Run(exp.DefaultHorizon)
	return log.Strings(), log.Events(), exp.Metrics()
}

// TestOTACampusRolloutAcceptance is the PR's acceptance scenario: the
// staged canary rollout completes across all four cells — through the
// lossy ring backbone and unit-b's radio PER burst — with every loop
// master on v2, zero safety or timing invariant violations, no
// rollbacks, and byte-identical same-seed campus streams.
func TestOTACampusRolloutAcceptance(t *testing.T) {
	lines, events, metrics := otaRun(t, 1)

	var phases []RolloutPhase
	deliveries, rollbacks := 0, 0
	var stagePlans [][]string
	for _, ev := range events {
		switch e := ev.(type) {
		case RolloutEvent:
			phases = append(phases, e.Phase)
			if e.Phase == RolloutPhaseActivated {
				stagePlans = append(stagePlans, e.Cells)
			}
		case CapsuleDeliveryEvent:
			deliveries++
			if !e.OK {
				t.Fatalf("capsule delivery failed: %+v", e)
			}
			if e.Version != 2 {
				t.Fatalf("capsule delivery carried v%d, want v2", e.Version)
			}
		case RollbackEvent:
			rollbacks++
		}
	}
	wantPhases := []RolloutPhase{
		RolloutPhaseStart,
		RolloutPhaseStaged, RolloutPhaseActivated,
		RolloutPhaseStaged, RolloutPhaseActivated,
		RolloutPhaseComplete,
	}
	if len(phases) != len(wantPhases) {
		t.Fatalf("rollout phases = %v, want %v", phases, wantPhases)
	}
	for i, p := range wantPhases {
		if phases[i] != p {
			t.Fatalf("rollout phases = %v, want %v", phases, wantPhases)
		}
	}
	// The canary stage upgrades exactly one cell; the second stage the
	// other three.
	if len(stagePlans) != 2 || len(stagePlans[0]) != 1 || len(stagePlans[1]) != 3 {
		t.Fatalf("activated stages = %v, want canary then the rest", stagePlans)
	}
	// Every replica of every loop received exactly one capsule: 4 cells x
	// 2 tasks x 2 candidates.
	if deliveries != 16 {
		t.Fatalf("capsule deliveries = %d, want 16", deliveries)
	}
	if rollbacks != 0 {
		t.Fatalf("rollbacks = %d, want none", rollbacks)
	}
	if metrics["rollout_complete"] != 1 {
		t.Fatalf("rollout_complete = %v, want 1", metrics["rollout_complete"])
	}
	if metrics["tasks_v2"] != 8 {
		t.Fatalf("tasks_v2 = %v, want all 8 loop masters upgraded", metrics["tasks_v2"])
	}
	// Safety AND timing invariants hold across the whole stream,
	// including both health windows.
	checkers := append(DefaultInvariants(), TimingInvariants(0, 0)...)
	if vs := CheckEvents(events, checkers...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}

	again, _, _ := otaRun(t, 1)
	if len(lines) != len(again) {
		t.Fatalf("same-seed campus streams differ in length: %d vs %d", len(lines), len(again))
	}
	for i := range lines {
		if lines[i] != again[i] {
			t.Fatalf("same-seed campus streams diverge at line %d:\n  %s\n  %s", i, lines[i], again[i])
		}
	}
}

// TestOTABadCapsuleRollback seeds a bad capsule (attests cleanly, never
// actuates): the health window trips missed-actuation, exactly one
// RollbackEvent fires, and the task resumes on the prior version with
// its controller state intact.
func TestOTABadCapsuleRollback(t *testing.T) {
	campus, err := NewOTACampus(3)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	campus.Run(5 * time.Second)

	bad, err := OTABadCapsule("a-press-0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := campus.Capsules().Register(bad); err != nil {
		t.Fatal(err)
	}
	rollout, err := campus.StartRollout(RolloutSpec{
		Tasks:          []string{"a-press-0"},
		Version:        3,
		Strategy:       RolloutAllAtOnce,
		HealthWindow:   1500 * time.Millisecond,
		ActuationBound: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)

	if rollout.State() != RolloutRolledBack {
		t.Fatalf("rollout state = %s (%s), want rolled-back", rollout.State(), rollout.Reason())
	}
	if !strings.HasPrefix(rollout.Reason(), "missed-actuation") {
		t.Fatalf("rollback reason = %q, want missed-actuation", rollout.Reason())
	}
	var rollbacks []RollbackEvent
	var resumedAfter int
	for _, ev := range log.Events() {
		switch e := ev.(type) {
		case RollbackEvent:
			rollbacks = append(rollbacks, e)
		case CellEvent:
			if act, ok := e.Inner.(ActuationEvent); ok && act.Task == "a-press-0" &&
				len(rollbacks) > 0 && act.At > rollbacks[0].At {
				resumedAfter++
			}
		}
	}
	if len(rollbacks) != 1 {
		t.Fatalf("rollback events = %d, want exactly one", len(rollbacks))
	}
	rb := rollbacks[0]
	if rb.Task != "a-press-0" || rb.FromVersion != 3 || rb.ToVersion != 1 {
		t.Fatalf("rollback = %+v, want a-press-0 v3 -> v1", rb)
	}
	if len(rb.Cells) != 1 || rb.Cells[0] != "unit-a" {
		t.Fatalf("rollback cells = %v, want [unit-a]", rb.Cells)
	}
	// Both replicas run the prior version again, nothing stays staged,
	// and the loop actuates after the rollback.
	cell := campus.Cell("unit-a")
	for _, id := range []NodeID{3, 4} {
		if v, ok := cell.Node(id).CapsuleVersion("a-press-0"); !ok || v != 1 {
			t.Fatalf("node %d capsule version = %d, %t, want v1", id, v, ok)
		}
		if _, staged := cell.Node(id).StagedVersion("a-press-0"); staged {
			t.Fatalf("node %d still has a staged capsule after rollback", id)
		}
	}
	if resumedAfter == 0 {
		t.Fatal("task never actuated after the rollback")
	}
	// State continuity: the v1 law resumes where it left off — the
	// constant feed (48) yields the same command as before the upgrade,
	// out = 2 x (50 - 48) = 4.
	if out, ok := cell.Node(3).LastOutput("a-press-0"); !ok || out != 4 {
		t.Fatalf("post-rollback output = %v, %t, want 4 (v1 law, state intact)", out, ok)
	}
	// The untargeted sibling loop was never touched.
	if v, ok := cell.Node(5).CapsuleVersion("a-press-1"); !ok || v != 1 {
		t.Fatalf("sibling task capsule version = %d, %t, want untouched v1", v, ok)
	}
}

// TestHealthWindowStretchesToCoverActuationBound: with the default
// HealthWindow (3s) and a longer ActuationBound (5s), a bound-length
// silence could never fit inside the window — a bad capsule would sail
// through. The rollout must stretch the window past the bound so
// missed-actuation stays detectable.
func TestHealthWindowStretchesToCoverActuationBound(t *testing.T) {
	campus, err := NewOTACampus(13)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	campus.Run(5 * time.Second)
	bad, err := OTABadCapsule("a-press-0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := campus.Capsules().Register(bad); err != nil {
		t.Fatal(err)
	}
	rollout, err := campus.StartRollout(RolloutSpec{
		Tasks:          []string{"a-press-0"},
		Version:        3,
		Strategy:       RolloutAllAtOnce,
		ActuationBound: 5 * time.Second, // > the 3s default window
	})
	if err != nil {
		t.Fatal(err)
	}
	campus.Run(15 * time.Second)
	if rollout.State() != RolloutRolledBack {
		t.Fatalf("rollout state = %s (%s), want rolled-back — the health window must outlast the actuation bound",
			rollout.State(), rollout.Reason())
	}
	if !strings.HasPrefix(rollout.Reason(), "missed-actuation") {
		t.Fatalf("rollback reason = %q, want missed-actuation", rollout.Reason())
	}
}

// TestRolloutCatchesReplicasCreatedMidRollout kills unit-d wholesale
// right after a cell-by-cell rollout starts: its two loops escalate to
// peer cells mid-rollout, creating replicas that were not in the
// start-of-rollout snapshot (and still run v1). The rollout must
// re-scan after its planned stages and upgrade the stragglers in a
// catch-up stage instead of completing with mixed versions.
func TestRolloutCatchesReplicasCreatedMidRollout(t *testing.T) {
	campus, err := NewOTACampus(1)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	members := make([]NodeID, OTACellNodes)
	for i := range members {
		members[i] = NodeID(i + 1)
	}
	if err := campus.ApplyFaultPlan("unit-d",
		KillNodesPlan("kill-unit-d", 10500*time.Millisecond, members...)); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	rollout, err := campus.StartRollout(OTACampusRolloutSpec(RolloutCellByCell))
	if err != nil {
		t.Fatal(err)
	}
	campus.Run(30 * time.Second)

	if rollout.State() != RolloutComplete {
		t.Fatalf("rollout state = %s (%s), want complete", rollout.State(), rollout.Reason())
	}
	// The planned four stages gained at least one catch-up stage for the
	// escalated replicas.
	if got := len(rollout.Stages()); got < 5 {
		t.Fatalf("stages = %d (%v), want the 4 planned + a catch-up stage", got, rollout.Stages())
	}
	// No live master still runs v1: the escalated d-loops were caught.
	if n := tasksOnVersion(campus, 2); n != 8 {
		t.Fatalf("tasks on v2 = %d, want all 8 including the escalated d-loops", n)
	}
}

// TestRolloutSkipsReplicasRetiredMidRollout: a replica retired after
// the start-of-rollout snapshot (here the backup of c-press-0, pulled
// during an earlier stage's health window) must be dropped from the
// target list — not abort the whole rollout with a staging failure.
func TestRolloutSkipsReplicasRetiredMidRollout(t *testing.T) {
	campus, err := NewOTACampus(1)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	campus.Run(10 * time.Second)
	rollout, err := campus.StartRollout(OTACampusRolloutSpec(RolloutCellByCell))
	if err != nil {
		t.Fatal(err)
	}
	// Cell-by-cell reaches unit-c around 16s; retire its backup at 15s,
	// mid-rollout but before unit-c's prepare leg lands.
	campus.Engine().After(5*time.Second, func() {
		if err := campus.Cell("unit-c").Node(4).RetireTask("c-press-0"); err != nil {
			t.Errorf("retire: %v", err)
		}
	})
	campus.Run(30 * time.Second)

	if rollout.State() != RolloutComplete {
		t.Fatalf("rollout state = %s (%s), want complete despite the retired backup",
			rollout.State(), rollout.Reason())
	}
	deliveries := 0
	for _, ev := range log.Events() {
		if d, ok := ev.(CapsuleDeliveryEvent); ok {
			deliveries++
			if d.Cell == "unit-c" && d.Node == 4 && d.Task == "c-press-0" {
				t.Fatalf("capsule delivered to the retired replica: %+v", d)
			}
		}
	}
	if deliveries != 15 {
		t.Fatalf("capsule deliveries = %d, want 15 (16 replicas minus the retired one)", deliveries)
	}
	if v, ok := campus.Cell("unit-c").Node(3).CapsuleVersion("c-press-0"); !ok || v != 2 {
		t.Fatalf("c-press-0 master version = %d, %t, want v2", v, ok)
	}
}

// TestOTARolloutRollsBackWhenPartitionedMidRollout drives a FaultStep
// link choreography against a staged rollout: both of unit-a's ring
// links sever right after the canary stage activates, the second
// stage's prepare legs find no route, and the rollout rolls the canary
// back — the campus must never settle on mixed versions.
func TestOTARolloutRollsBackWhenPartitionedMidRollout(t *testing.T) {
	campus, err := NewOTACampus(5)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	sever := FaultPlan{
		Name: "isolate-unit-a",
		Steps: []FaultStep{
			{At: 10500 * time.Millisecond, LinkDown: &LinkRef{A: "unit-a", B: "unit-b"}},
			{At: 10500 * time.Millisecond, LinkDown: &LinkRef{A: "unit-d", B: "unit-a"}},
		},
	}
	if err := campus.ApplyFaultPlan("unit-a", sever); err != nil {
		t.Fatal(err)
	}
	campus.Run(10 * time.Second)
	rollout, err := campus.StartRollout(OTACampusRolloutSpec(RolloutCanaryCell))
	if err != nil {
		t.Fatal(err)
	}
	campus.Run(15 * time.Second)

	if rollout.State() != RolloutRolledBack {
		t.Fatalf("rollout state = %s (%s), want rolled-back after the partition", rollout.State(), rollout.Reason())
	}
	rollbacks := 0
	for _, ev := range log.Events() {
		if _, ok := ev.(RollbackEvent); ok {
			rollbacks++
		}
	}
	// The canary (unit-a) had activated both its loops; both revert.
	if rollbacks != 2 {
		t.Fatalf("rollback events = %d, want unit-a's two loops", rollbacks)
	}
	if n := tasksOnVersion(campus, 2); n != 0 {
		t.Fatalf("%d tasks still on v2 after rollback — mixed versions persisted", n)
	}
	if n := tasksOnVersion(campus, 1); n != 8 {
		t.Fatalf("tasks on v1 = %d, want all 8", n)
	}
}

// TestOTARolloutSanitizesBuggyPolicy registers a policy that emits
// unknown cells, duplicates and drops cells: the coordinator must still
// upgrade every replica exactly once.
func TestOTARolloutSanitizesBuggyPolicy(t *testing.T) {
	if err := RegisterRolloutPolicy("buggy", func() RolloutPolicy { return buggyRolloutPolicy{} }); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	campus, err := NewOTACampus(7)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	log := campus.Events().Log()
	campus.Run(5 * time.Second)
	rollout, err := campus.StartRollout(OTACampusRolloutSpec("buggy"))
	if err != nil {
		t.Fatal(err)
	}
	// Sanitized plan: the duplicate collapses, the unknown cell drops,
	// and the three missing cells arrive as a final stage.
	stages := rollout.Stages()
	if len(stages) != 2 || len(stages[0]) != 1 || len(stages[1]) != 3 {
		t.Fatalf("sanitized stages = %v", stages)
	}
	campus.Run(20 * time.Second)
	if rollout.State() != RolloutComplete {
		t.Fatalf("rollout state = %s (%s), want complete", rollout.State(), rollout.Reason())
	}
	deliveries := 0
	for _, ev := range log.Events() {
		if _, ok := ev.(CapsuleDeliveryEvent); ok {
			deliveries++
		}
	}
	if deliveries != 16 {
		t.Fatalf("capsule deliveries = %d, want every replica exactly once", deliveries)
	}
}

// TestRolloutRejectsBadSpecs covers StartRollout's validation surface.
func TestRolloutRejectsBadSpecs(t *testing.T) {
	campus, err := NewOTACampus(11)
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	if _, err := campus.StartRollout(RolloutSpec{Version: 2}); err == nil {
		t.Fatal("empty task list accepted")
	}
	if _, err := campus.StartRollout(RolloutSpec{Tasks: []string{"nope"}, Version: 2}); err == nil {
		t.Fatal("unknown task accepted")
	}
	if _, err := campus.StartRollout(RolloutSpec{Tasks: []string{"a-press-0"}, Version: 9}); err == nil {
		t.Fatal("unregistered version accepted")
	}
	if _, err := campus.StartRollout(RolloutSpec{Tasks: []string{"a-press-0"}, Version: 2, Strategy: "zigzag"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := campus.StartRollout(RolloutSpec{Tasks: []string{"a-press-0"}, Version: 2, Source: "mars"}); err == nil {
		t.Fatal("unknown source cell accepted")
	}
	if _, err := campus.StartRollout(OTACampusRolloutSpec("")); err != nil {
		t.Fatal(err)
	}
	// One rollout per task at a time.
	if _, err := campus.StartRollout(RolloutSpec{Tasks: []string{"a-press-0"}, Version: 2}); err == nil {
		t.Fatal("concurrent rollout for the same task accepted")
	}
}

// --- mode-change-line ---------------------------------------------------------

// TestModeChangeLineSwitchesLawsUnderLoss runs the mixed-workload
// scenario: four synchronized mode switches ride the line under baseline
// loss and a PER burst, the purge law actuates only inside its
// production windows, and same-seed streams are byte-identical.
func TestModeChangeLineSwitchesLawsUnderLoss(t *testing.T) {
	run := func() ([]string, []Event, map[string]float64) {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioModeChangeLine, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		log := exp.Cell.Events().Log()
		exp.Cell.Run(exp.DefaultHorizon)
		return log.Strings(), log.Events(), exp.Metrics()
	}
	lines, events, metrics := run()

	modeChanges := 0
	var purgeTimes, normalTimes []time.Duration
	for _, ev := range events {
		switch e := ev.(type) {
		case ModeChangeEvent:
			modeChanges++
		case ActuationEvent:
			switch e.Task {
			case ModeLinePurgeTask:
				purgeTimes = append(purgeTimes, e.At)
			case ModeLineNormalTask:
				normalTimes = append(normalTimes, e.At)
			}
		}
	}
	if modeChanges != 4 {
		t.Fatalf("mode changes = %d, want the 4 scheduled switches", modeChanges)
	}
	if metrics["normal_actuations"] == 0 || metrics["purge_actuations"] == 0 {
		t.Fatalf("metrics = %v, want both laws to have actuated", metrics)
	}
	// Outside its production windows the purge law must be silent:
	// between the 2s switch to normal and the 10s switch to purge, and
	// between the 18s and 26s switches. Each switch takes effect two
	// TDMA frames after it is issued (plus line relay latency), so the
	// windows carry slack on the trailing edge only.
	const slack = 2 * time.Second
	for _, at := range purgeTimes {
		inWindow := at <= 2*time.Second+slack ||
			(at > 10*time.Second && at <= 18*time.Second+slack) ||
			at > 26*time.Second
		if !inWindow {
			t.Fatalf("purge actuation at %v, outside every purge window", at)
		}
	}
	// The normal law owns the complementary windows.
	for _, at := range normalTimes {
		inWindow := at <= 10*time.Second+slack ||
			(at > 18*time.Second && at <= 26*time.Second+slack)
		if !inWindow {
			t.Fatalf("normal actuation at %v, outside every normal window", at)
		}
	}
	// Safety and timing invariants hold through every switch.
	checkers := append(DefaultInvariants(), TimingInvariants(0, 0)...)
	if vs := CheckEvents(events, checkers...); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}

	again, _, _ := run()
	if len(lines) != len(again) {
		t.Fatalf("same-seed streams differ in length: %d vs %d", len(lines), len(again))
	}
	for i := range lines {
		if lines[i] != again[i] {
			t.Fatalf("same-seed streams diverge at line %d:\n  %s\n  %s", i, lines[i], again[i])
		}
	}
}
