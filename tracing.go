package evm

import (
	"strconv"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
	"evm/internal/trace"
)

// Causal tracing facade: EnableTracing attaches a seeded span.Tracer to a
// cell or campus engine, turning on the span recording threaded through
// the simulation layers (engine dispatch, rtlink frames/slots, radio
// transmissions and drops, backbone transfers/hops/reroutes, federation
// escalations and rebalance handshakes, OTA rollout stages), and derives
// two more span families from the event bus:
//
//   - "failover": the outage interval from a node's crash fault to the
//     first fail-over promoting a new master away from it — the paper's
//     headline recovery-latency metric, now measurable per run as a
//     distribution instead of a single first_failover_s scalar.
//   - "actuation-interval": the gap between consecutive accepted
//     actuations of each task; its upper percentiles expose control-loop
//     stalls that a mean actuation count hides.
//
// Everything runs in virtual time on the run's own engine, so traces are
// byte-identical across same-seed runs and identical whether the Runner
// executes serially or across workers.

// EnableTracing attaches a fresh tracer seeded with seed to the cell's
// engine and installs the event-derived span families. Call it once,
// before the cell runs; the returned tracer exports via WriteJSON.
func (c *Cell) EnableTracing(seed uint64) *span.Tracer {
	t := span.New(seed)
	c.eng.SetTracer(t)
	installEventSpans(c.Events(), t)
	return t
}

// EnableTracing attaches a fresh tracer seeded with seed to the campus's
// shared engine and installs the event-derived span families over the
// merged campus stream. Call it once, before the campus runs.
func (c *Campus) EnableTracing(seed uint64) *span.Tracer {
	t := span.New(seed)
	c.eng.SetTracer(t)
	installEventSpans(c.Events(), t)
	return t
}

// installEventSpans subscribes the event-derived span families to a cell
// or campus bus. Failover spans key on (cell, crashed node): the span
// opens at the crash fault and closes at the first fail-over away from
// that node; re-crashes of a node already being measured fold into the
// open span.
func installEventSpans(bus *Bus, t *span.Tracer) {
	crashOpen := make(map[string]span.ID)
	lastAct := make(map[string]time.Duration)
	bus.Subscribe(func(ev Event) {
		cell, inner := splitEvent(ev)
		switch e := inner.(type) {
		case FaultEvent:
			if e.Kind != FaultCrash {
				return
			}
			key := cell + "/" + strconv.Itoa(int(e.Node))
			if _, open := crashOpen[key]; open {
				return
			}
			crashOpen[key] = t.Open("failover", "evm", "failover", e.At,
				span.Arg{Key: "cell", Val: cell},
				span.Arg{Key: "node", Val: strconv.Itoa(int(e.Node))})
		case FailoverEvent:
			key := cell + "/" + strconv.Itoa(int(e.From))
			if id, open := crashOpen[key]; open {
				t.Close(id, e.At,
					span.Arg{Key: "task", Val: e.Task},
					span.Arg{Key: "to", Val: strconv.Itoa(int(e.To))})
				delete(crashOpen, key)
			}
		case ActuationEvent:
			if last, ok := lastAct[e.Task]; ok {
				t.Complete("actuation-interval", "evm", "actuation", last, e.At,
					span.Arg{Key: "task", Val: e.Task})
			}
			lastAct[e.Task] = e.At
		}
	})
}

// TraceMetrics summarizes a tracer's closed spans into latency metrics:
// for every span name with at least one closed duration it reports
// span_<name>_count plus p50/p95/p99 in milliseconds. Spans carry virtual
// timestamps, so the summaries are deterministic and merge safely into
// RunResult.Metrics alongside the event counts.
func TraceMetrics(t *span.Tracer) map[string]float64 {
	if t == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, name := range t.Names() {
		ds := t.DurationsMS(name)
		if len(ds) == 0 {
			continue
		}
		st := trace.Summarize(ds)
		out["span_"+name+"_count"] = float64(st.N)
		out["span_"+name+"_p50_ms"] = st.P50
		out["span_"+name+"_p95_ms"] = st.P95
		out["span_"+name+"_p99_ms"] = st.P99
	}
	return out
}

// mergeSorted copies src into dst in sorted key order (plain overwrites,
// no accumulation; the sort keeps the write order reproducible for
// debugging, not for correctness).
func mergeSorted(dst, src map[string]float64) {
	for _, k := range sim.SortedKeys(src) {
		dst[k] = src[k]
	}
}
