package evm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
	"evm/internal/trace"
)

// RunResult is one completed grid point: the spec, the scenario's metrics
// and the event counts observed on the cell's bus. Failed runs carry Err
// and nil metrics.
type RunResult struct {
	Spec    RunSpec
	Err     error
	Metrics map[string]float64
	// Policy is the placement policy the scenario builder resolved
	// (Experiment.Policy; "" for single-cell scenarios).
	Policy string
	// Violations holds every invariant breach the Runner's checkers
	// (Runner.Checkers) observed on the live event stream; nil when no
	// checkers were configured or all invariants held.
	Violations []Violation
	// TraceJSON is the run's Chrome-trace-event export (Runner.Trace),
	// loadable in Perfetto / chrome://tracing. Byte-identical across
	// same-seed runs.
	TraceJSON []byte
	// HostWallMS and HostAllocBytes are host-side accounting
	// (Runner.HostStats): wall-clock execution time and the process's
	// TotalAlloc delta over the run. They live outside Metrics because
	// they are nondeterministic, and the alloc delta is process-wide —
	// exact only with Workers=1; concurrent runs bleed into each other.
	HostWallMS     float64
	HostAllocBytes uint64
}

// Metric keys the Runner derives from the event bus on top of whatever
// the scenario reports.
const (
	MetricFailovers      = "failovers"
	MetricActuations     = "actuations"
	MetricMigrations     = "migrations"
	MetricJoins          = "joins"
	MetricFaultsInjected = "faults_injected"
	// MetricFirstFailoverS is the virtual time of the first failover in
	// seconds (absent when no failover occurred).
	MetricFirstFailoverS = "first_failover_s"
	// Campus-level metrics (zero on single-cell scenarios).
	MetricInterCellMigrations = "intercell_migrations"
	MetricCellOverloads       = "cell_overloads"
	MetricBackboneDelivered   = "backbone_delivered"
	// MetricBackboneDropped counts per-hop backbone losses.
	MetricBackboneDropped = "backbone_dropped"
	// MetricRebalances counts homeward inter-cell migrations (recovered
	// origin cells taking tasks back); these are also included in
	// MetricInterCellMigrations.
	MetricRebalances = "rebalances"
	// MetricCellRecoveries counts head-down -> head-up transitions.
	MetricCellRecoveries = "cell_recoveries"
	// MetricBackboneLinkFaults counts backbone link severs (LinkDown
	// steps taking effect; restores are the tail end of a fault already
	// counted).
	MetricBackboneLinkFaults = "backbone_link_faults"
	// MetricBackboneReroutes counts retransmissions that picked a new
	// path because the link set changed mid-transfer.
	MetricBackboneReroutes = "backbone_reroutes"
	// MetricRollouts counts OTA rollouts started (RolloutEvent start
	// phases).
	MetricRollouts = "rollouts"
	// MetricRollbacks counts per-task OTA rollbacks (health-window trips
	// and mid-rollout failures reverting to the prior capsule version).
	MetricRollbacks = "rollbacks"
	// MetricCapsuleFrames counts per-replica capsule deliveries staged by
	// rollout prepare legs.
	MetricCapsuleFrames = "capsule_frames"
	// MetricRebalanceAborts counts aborted prepare/commit rebalance
	// handshakes (the foreign master kept the task).
	MetricRebalanceAborts = "rebalance_aborts"
	// MetricModeChanges counts synchronized mode switches issued by
	// component heads.
	MetricModeChanges = "mode_changes"
	// MetricQoSCoverage is the post-horizon control-quality signal from
	// EvaluateQoS: the fraction of tasks with a live Active controller.
	// Reported by every scenario that exposes Experiment.QoS, so
	// health-window gates and evmd dashboards read one shared signal.
	MetricQoSCoverage = "qos_coverage"
	// MetricQoSRedundancy is EvaluateQoS's mean live replicas per task at
	// the horizon (plant-deviation headroom: below 1 the plant has
	// uncovered loops, below 2 a single crash loses coverage).
	MetricQoSRedundancy = "qos_redundancy_mean"
)

// Runner executes a grid of RunSpecs across worker goroutines. Every
// cell's virtual-time engine is single-threaded, so runs shard perfectly:
// N workers give close to N-fold throughput on multi-core hosts, and the
// results are identical to serial execution because each run's
// determinism depends only on its spec.
type Runner struct {
	// Workers is the concurrency (default: GOMAXPROCS).
	Workers int
	// EventDir, when non-empty, captures every run's event log and
	// writes it as a CSV of cumulative per-type counters (one
	// trace.Recorder series per event type, sampled at each event) to
	// <EventDir>/<spec label>.csv — paper-style plots straight from a
	// grid sweep.
	EventDir string
	// Instrument, when non-nil, is invoked once per run on the worker
	// goroutine, after the scenario is built and before the fault plan is
	// applied, so callers can attach live observers (event-bus
	// subscriptions, telemetry taps) to the experiment. The returned
	// finish callback (may be nil) runs with the final metric map after
	// the horizon, once scenario metrics and QoS have been merged —
	// evmd's streaming layer hangs off this hook. Instrument must not
	// advance the experiment itself.
	Instrument func(spec RunSpec, exp *Experiment) func(metrics map[string]float64)
	// Build, when non-nil, replaces the global scenario registry for
	// spec resolution. Corpus sweeps (the fuzz package) run thousands of
	// generated specs through one Runner without registering each as a
	// named scenario.
	Build ScenarioBuilder
	// Checkers, when non-nil, supplies a fresh set of invariant checkers
	// per run. They observe the live event stream (no stored log needed)
	// and their findings land in RunResult.Violations.
	Checkers func() []InvariantChecker
	// Trace enables per-run causal tracing: each run gets a span tracer
	// seeded from its spec seed, the span-derived latency summaries
	// (span_<name>_p50_ms, ...) merge into RunResult.Metrics, and the
	// Chrome-trace JSON export lands in RunResult.TraceJSON.
	Trace bool
	// TraceDir, when non-empty, implies Trace and additionally writes
	// each run's export to <TraceDir>/<sanitized spec label>.trace.json.
	TraceDir string
	// HostStats enables wall-time and allocation accounting per run,
	// reported in RunResult.HostWallMS / HostAllocBytes.
	HostStats bool
}

// Run executes every spec and returns results in spec order. Individual
// run failures are reported in RunResult.Err; Run itself only allocates.
func (r *Runner) Run(specs []RunSpec) []RunResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]RunResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	//evm:allow-goroutine the Runner is the sanctioned host-side concurrency layer: it fans out whole independent runs, each run's engine stays single-threaded
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//evm:allow-goroutine worker pool over independent runs; results land in per-run slots, no shared simulation state
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunOne executes a single spec synchronously on the calling goroutine
// and returns its result. It is the single-run form of Run: evmd's
// admission workers dispatch individual submissions through it while the
// batch grid workflow keeps using Run.
func (r *Runner) RunOne(spec RunSpec) RunResult { return r.runOne(spec) }

// runOne wraps runSpec with optional host-side accounting. The wall-time
// and alloc readings never enter Metrics: serial and parallel execution
// must produce identical metric maps, and these depend on the host.
func (r *Runner) runOne(spec RunSpec) RunResult {
	if !r.HostStats {
		return r.runSpec(spec)
	}
	//evm:allow-wallclock host-side accounting of real execution cost; results stay out of the deterministic metric map
	start := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocStart := ms.TotalAlloc
	res := r.runSpec(spec)
	runtime.ReadMemStats(&ms)
	//evm:allow-wallclock host-side accounting of real execution cost; results stay out of the deterministic metric map
	res.HostWallMS = float64(time.Since(start)) / float64(time.Millisecond)
	res.HostAllocBytes = ms.TotalAlloc - allocStart
	return res
}

// runSpec executes a single grid point: build, instrument, fault, run,
// measure, clean up. Campus experiments are driven through the campus
// facade (merged event stream, cell-targeted fault plan, shared engine).
func (r *Runner) runSpec(spec RunSpec) RunResult {
	res := RunResult{Spec: spec}
	var exp *Experiment
	var err error
	if r.Build != nil {
		exp, err = r.Build(spec)
	} else {
		exp, err = BuildScenario(spec)
	}
	if err != nil {
		res.Err = err
		return res
	}
	if exp.Cleanup != nil {
		defer exp.Cleanup()
	}
	res.Policy = exp.Policy
	var tracer *span.Tracer
	if r.Trace || r.TraceDir != "" {
		if exp.Campus != nil {
			tracer = exp.Campus.EnableTracing(spec.Seed)
		} else {
			tracer = exp.Cell.EnableTracing(spec.Seed)
		}
	}
	var finish func(map[string]float64)
	if r.Instrument != nil {
		finish = r.Instrument(spec, exp)
	}
	var bus *Bus
	if exp.Campus != nil {
		bus = exp.Campus.Events()
	} else {
		bus = exp.Cell.Events()
	}
	counts := map[string]float64{
		MetricFailovers:           0,
		MetricActuations:          0,
		MetricMigrations:          0,
		MetricJoins:               0,
		MetricFaultsInjected:      0,
		MetricInterCellMigrations: 0,
		MetricCellOverloads:       0,
		MetricBackboneDelivered:   0,
		MetricBackboneDropped:     0,
		MetricRebalances:          0,
		MetricCellRecoveries:      0,
		MetricBackboneLinkFaults:  0,
		MetricBackboneReroutes:    0,
		MetricRollouts:            0,
		MetricRollbacks:           0,
		MetricCapsuleFrames:       0,
		MetricRebalanceAborts:     0,
		MetricModeChanges:         0,
	}
	firstFailover := time.Duration(-1)
	sub := bus.Subscribe(func(ev Event) {
		if ce, ok := ev.(CellEvent); ok {
			ev = ce.Inner // count campus streams by their inner type
		}
		switch ev.(type) {
		case FailoverEvent:
			counts[MetricFailovers]++
			if firstFailover < 0 {
				firstFailover = ev.When()
			}
		case ActuationEvent:
			counts[MetricActuations]++
		case MigrationEvent:
			counts[MetricMigrations]++
		case JoinEvent:
			counts[MetricJoins]++
		case InterCellMigrationEvent:
			counts[MetricInterCellMigrations]++
			if ev.(InterCellMigrationEvent).Rebalance {
				counts[MetricRebalances]++
			}
		case CellOverloadEvent:
			counts[MetricCellOverloads]++
		case CellRecoveredEvent:
			counts[MetricCellRecoveries]++
		case RolloutEvent:
			if ev.(RolloutEvent).Phase == RolloutPhaseStart {
				counts[MetricRollouts]++
			}
		case RollbackEvent:
			counts[MetricRollbacks]++
		case CapsuleDeliveryEvent:
			counts[MetricCapsuleFrames]++
		case RebalanceAbortEvent:
			counts[MetricRebalanceAborts]++
		case ModeChangeEvent:
			counts[MetricModeChanges]++
		case BackboneLinkEvent:
			if !ev.(BackboneLinkEvent).Up {
				counts[MetricBackboneLinkFaults]++
			}
		case BackboneRouteEvent:
			if ev.(BackboneRouteEvent).Reroute {
				counts[MetricBackboneReroutes]++
			}
		case BackboneEvent:
			switch ev.(BackboneEvent).Kind {
			case BackboneDeliver:
				counts[MetricBackboneDelivered]++
			case BackboneDrop:
				counts[MetricBackboneDropped]++
			}
		case FaultEvent:
			// Count injections only — clears and restores are the tail
			// end of a fault already counted.
			switch ev.(FaultEvent).Kind {
			case FaultCrash, FaultCompute, FaultPERBurst, FaultBatteryDrain, FaultClockDrift:
				counts[MetricFaultsInjected]++
			}
		}
	})
	defer sub.Cancel()
	var checkers []InvariantChecker
	if r.Checkers != nil {
		checkers = r.Checkers()
		csub := bus.Subscribe(func(ev Event) {
			for _, c := range checkers {
				c.Observe(ev)
			}
		})
		defer csub.Cancel()
	}
	var log *EventLog
	if r.EventDir != "" {
		log = bus.Log()
		defer log.Close()
	}
	if len(spec.Faults.Steps) > 0 {
		if exp.Campus != nil {
			err = exp.Campus.ApplyFaultPlan(spec.FaultCell, spec.Faults)
		} else {
			err = exp.Cell.ApplyFaultPlan(spec.Faults)
		}
		if err != nil {
			res.Err = err
			return res
		}
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = exp.DefaultHorizon
	}
	if horizon <= 0 {
		horizon = time.Minute
	}
	if exp.Campus != nil {
		exp.Campus.Run(horizon)
	} else {
		exp.Cell.Run(horizon)
	}
	res.Metrics = counts
	for _, c := range checkers {
		res.Violations = append(res.Violations, c.Violations()...)
	}
	if firstFailover >= 0 {
		res.Metrics[MetricFirstFailoverS] = firstFailover.Seconds()
	}
	if exp.Metrics != nil {
		for k, v := range exp.Metrics() {
			res.Metrics[k] = v
		}
	}
	if exp.QoS != nil {
		rep := exp.QoS()
		res.Metrics[MetricQoSCoverage] = rep.CoverageRatio
		res.Metrics[MetricQoSRedundancy] = rep.RedundancyMean
	}
	if tracer != nil {
		mergeSorted(res.Metrics, TraceMetrics(tracer))
		var buf bytes.Buffer
		if err := tracer.WriteJSON(&buf); err != nil {
			if res.Err == nil {
				res.Err = err
			}
		} else {
			res.TraceJSON = buf.Bytes()
			if r.TraceDir != "" {
				name := sanitizeLabel(spec.Label()) + ".trace.json"
				if err := os.WriteFile(filepath.Join(r.TraceDir, name), res.TraceJSON, 0o644); err != nil && res.Err == nil {
					res.Err = err
				}
			}
		}
	}
	if log != nil {
		if err := writeEventCSV(r.EventDir, spec, log); err != nil && res.Err == nil {
			res.Err = err
		}
	}
	if finish != nil {
		finish(res.Metrics)
	}
	return res
}

// sanitizeLabel makes a spec label safe as a file name.
func sanitizeLabel(label string) string {
	return strings.NewReplacer("/", "_", " ", "_", "@", "_").Replace(label)
}

// writeEventCSV renders one run's event log through a trace.Recorder and
// writes it as <dir>/<sanitized spec label>.csv.
func writeEventCSV(dir string, spec RunSpec, log *EventLog) error {
	name := sanitizeLabel(spec.Label()) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	werr := log.Recorder().WriteCSV(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// SpecGrid crosses scenarios x seeds x fault plans into a flat spec list
// (the experiment-grid workflow: hundreds of seeded runs as data). A nil
// or empty plans slice means one fault-free run per scenario/seed pair.
func SpecGrid(scenarios []string, seeds []uint64, plans []FaultPlan, horizon time.Duration) []RunSpec {
	if len(plans) == 0 {
		plans = []FaultPlan{{}}
	}
	specs := make([]RunSpec, 0, len(scenarios)*len(seeds)*len(plans))
	for _, sc := range scenarios {
		for _, seed := range seeds {
			for _, plan := range plans {
				specs = append(specs, RunSpec{Scenario: sc, Seed: seed, Horizon: horizon, Faults: plan})
			}
		}
	}
	return specs
}

// MetricSummary aggregates one metric across the runs that reported it.
// P50/P95/P99 are nearest-rank percentiles over the per-run values, so a
// sweep's tail behavior (one slow failover among fifty runs) is visible
// next to the mean.
type MetricSummary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

func (m MetricSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p95=%.3f p99=%.3f",
		m.N, m.Mean, m.Min, m.Max, m.P50, m.P95, m.P99)
}

// Aggregate groups successful results by scenario and summarizes every
// metric. The outer key is the scenario name, the inner key the metric.
func Aggregate(results []RunResult) map[string]map[string]MetricSummary {
	// Collect per-metric value lists in result order; all arithmetic
	// (including the mean's float sum) happens in trace.Summarize over
	// the sorted copy, so equal result sets aggregate byte-identically.
	vals := make(map[string]map[string][]float64)
	for _, r := range results {
		if r.Err != nil || r.Metrics == nil {
			continue
		}
		byMetric := vals[r.Spec.Scenario]
		if byMetric == nil {
			byMetric = make(map[string][]float64)
			vals[r.Spec.Scenario] = byMetric
		}
		for _, k := range sim.SortedKeys(r.Metrics) {
			byMetric[k] = append(byMetric[k], r.Metrics[k])
		}
	}
	out := make(map[string]map[string]MetricSummary, len(vals))
	for _, sc := range sim.SortedKeys(vals) {
		byMetric := vals[sc]
		out[sc] = make(map[string]MetricSummary, len(byMetric))
		for _, k := range sim.SortedKeys(byMetric) {
			st := trace.Summarize(byMetric[k])
			out[sc][k] = MetricSummary{
				N: st.N, Mean: st.Mean, Min: st.Min, Max: st.Max,
				P50: st.P50, P95: st.P95, P99: st.P99,
			}
		}
	}
	return out
}
