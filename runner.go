package evm

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"evm/internal/sim"
)

// RunResult is one completed grid point: the spec, the scenario's metrics
// and the event counts observed on the cell's bus. Failed runs carry Err
// and nil metrics.
type RunResult struct {
	Spec    RunSpec
	Err     error
	Metrics map[string]float64
	// Policy is the placement policy the scenario builder resolved
	// (Experiment.Policy; "" for single-cell scenarios).
	Policy string
	// Violations holds every invariant breach the Runner's checkers
	// (Runner.Checkers) observed on the live event stream; nil when no
	// checkers were configured or all invariants held.
	Violations []Violation
}

// Metric keys the Runner derives from the event bus on top of whatever
// the scenario reports.
const (
	MetricFailovers      = "failovers"
	MetricActuations     = "actuations"
	MetricMigrations     = "migrations"
	MetricJoins          = "joins"
	MetricFaultsInjected = "faults_injected"
	// MetricFirstFailoverS is the virtual time of the first failover in
	// seconds (absent when no failover occurred).
	MetricFirstFailoverS = "first_failover_s"
	// Campus-level metrics (zero on single-cell scenarios).
	MetricInterCellMigrations = "intercell_migrations"
	MetricCellOverloads       = "cell_overloads"
	MetricBackboneDelivered   = "backbone_delivered"
	// MetricBackboneDropped counts per-hop backbone losses.
	MetricBackboneDropped = "backbone_dropped"
	// MetricRebalances counts homeward inter-cell migrations (recovered
	// origin cells taking tasks back); these are also included in
	// MetricInterCellMigrations.
	MetricRebalances = "rebalances"
	// MetricCellRecoveries counts head-down -> head-up transitions.
	MetricCellRecoveries = "cell_recoveries"
	// MetricBackboneLinkFaults counts backbone link severs (LinkDown
	// steps taking effect; restores are the tail end of a fault already
	// counted).
	MetricBackboneLinkFaults = "backbone_link_faults"
	// MetricBackboneReroutes counts retransmissions that picked a new
	// path because the link set changed mid-transfer.
	MetricBackboneReroutes = "backbone_reroutes"
	// MetricRollouts counts OTA rollouts started (RolloutEvent start
	// phases).
	MetricRollouts = "rollouts"
	// MetricRollbacks counts per-task OTA rollbacks (health-window trips
	// and mid-rollout failures reverting to the prior capsule version).
	MetricRollbacks = "rollbacks"
	// MetricCapsuleFrames counts per-replica capsule deliveries staged by
	// rollout prepare legs.
	MetricCapsuleFrames = "capsule_frames"
	// MetricRebalanceAborts counts aborted prepare/commit rebalance
	// handshakes (the foreign master kept the task).
	MetricRebalanceAborts = "rebalance_aborts"
	// MetricModeChanges counts synchronized mode switches issued by
	// component heads.
	MetricModeChanges = "mode_changes"
	// MetricQoSCoverage is the post-horizon control-quality signal from
	// EvaluateQoS: the fraction of tasks with a live Active controller.
	// Reported by every scenario that exposes Experiment.QoS, so
	// health-window gates and evmd dashboards read one shared signal.
	MetricQoSCoverage = "qos_coverage"
	// MetricQoSRedundancy is EvaluateQoS's mean live replicas per task at
	// the horizon (plant-deviation headroom: below 1 the plant has
	// uncovered loops, below 2 a single crash loses coverage).
	MetricQoSRedundancy = "qos_redundancy_mean"
)

// Runner executes a grid of RunSpecs across worker goroutines. Every
// cell's virtual-time engine is single-threaded, so runs shard perfectly:
// N workers give close to N-fold throughput on multi-core hosts, and the
// results are identical to serial execution because each run's
// determinism depends only on its spec.
type Runner struct {
	// Workers is the concurrency (default: GOMAXPROCS).
	Workers int
	// EventDir, when non-empty, captures every run's event log and
	// writes it as a CSV of cumulative per-type counters (one
	// trace.Recorder series per event type, sampled at each event) to
	// <EventDir>/<spec label>.csv — paper-style plots straight from a
	// grid sweep.
	EventDir string
	// Instrument, when non-nil, is invoked once per run on the worker
	// goroutine, after the scenario is built and before the fault plan is
	// applied, so callers can attach live observers (event-bus
	// subscriptions, telemetry taps) to the experiment. The returned
	// finish callback (may be nil) runs with the final metric map after
	// the horizon, once scenario metrics and QoS have been merged —
	// evmd's streaming layer hangs off this hook. Instrument must not
	// advance the experiment itself.
	Instrument func(spec RunSpec, exp *Experiment) func(metrics map[string]float64)
	// Build, when non-nil, replaces the global scenario registry for
	// spec resolution. Corpus sweeps (the fuzz package) run thousands of
	// generated specs through one Runner without registering each as a
	// named scenario.
	Build ScenarioBuilder
	// Checkers, when non-nil, supplies a fresh set of invariant checkers
	// per run. They observe the live event stream (no stored log needed)
	// and their findings land in RunResult.Violations.
	Checkers func() []InvariantChecker
}

// Run executes every spec and returns results in spec order. Individual
// run failures are reported in RunResult.Err; Run itself only allocates.
func (r *Runner) Run(specs []RunSpec) []RunResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]RunResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	//evm:allow-goroutine the Runner is the sanctioned host-side concurrency layer: it fans out whole independent runs, each run's engine stays single-threaded
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//evm:allow-goroutine worker pool over independent runs; results land in per-run slots, no shared simulation state
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunOne executes a single spec synchronously on the calling goroutine
// and returns its result. It is the single-run form of Run: evmd's
// admission workers dispatch individual submissions through it while the
// batch grid workflow keeps using Run.
func (r *Runner) RunOne(spec RunSpec) RunResult { return r.runOne(spec) }

// runOne executes a single grid point: build, instrument, fault, run,
// measure, clean up. Campus experiments are driven through the campus
// facade (merged event stream, cell-targeted fault plan, shared engine).
func (r *Runner) runOne(spec RunSpec) RunResult {
	res := RunResult{Spec: spec}
	var exp *Experiment
	var err error
	if r.Build != nil {
		exp, err = r.Build(spec)
	} else {
		exp, err = BuildScenario(spec)
	}
	if err != nil {
		res.Err = err
		return res
	}
	if exp.Cleanup != nil {
		defer exp.Cleanup()
	}
	res.Policy = exp.Policy
	var finish func(map[string]float64)
	if r.Instrument != nil {
		finish = r.Instrument(spec, exp)
	}
	var bus *Bus
	if exp.Campus != nil {
		bus = exp.Campus.Events()
	} else {
		bus = exp.Cell.Events()
	}
	counts := map[string]float64{
		MetricFailovers:           0,
		MetricActuations:          0,
		MetricMigrations:          0,
		MetricJoins:               0,
		MetricFaultsInjected:      0,
		MetricInterCellMigrations: 0,
		MetricCellOverloads:       0,
		MetricBackboneDelivered:   0,
		MetricBackboneDropped:     0,
		MetricRebalances:          0,
		MetricCellRecoveries:      0,
		MetricBackboneLinkFaults:  0,
		MetricBackboneReroutes:    0,
		MetricRollouts:            0,
		MetricRollbacks:           0,
		MetricCapsuleFrames:       0,
		MetricRebalanceAborts:     0,
		MetricModeChanges:         0,
	}
	firstFailover := time.Duration(-1)
	sub := bus.Subscribe(func(ev Event) {
		if ce, ok := ev.(CellEvent); ok {
			ev = ce.Inner // count campus streams by their inner type
		}
		switch ev.(type) {
		case FailoverEvent:
			counts[MetricFailovers]++
			if firstFailover < 0 {
				firstFailover = ev.When()
			}
		case ActuationEvent:
			counts[MetricActuations]++
		case MigrationEvent:
			counts[MetricMigrations]++
		case JoinEvent:
			counts[MetricJoins]++
		case InterCellMigrationEvent:
			counts[MetricInterCellMigrations]++
			if ev.(InterCellMigrationEvent).Rebalance {
				counts[MetricRebalances]++
			}
		case CellOverloadEvent:
			counts[MetricCellOverloads]++
		case CellRecoveredEvent:
			counts[MetricCellRecoveries]++
		case RolloutEvent:
			if ev.(RolloutEvent).Phase == RolloutPhaseStart {
				counts[MetricRollouts]++
			}
		case RollbackEvent:
			counts[MetricRollbacks]++
		case CapsuleDeliveryEvent:
			counts[MetricCapsuleFrames]++
		case RebalanceAbortEvent:
			counts[MetricRebalanceAborts]++
		case ModeChangeEvent:
			counts[MetricModeChanges]++
		case BackboneLinkEvent:
			if !ev.(BackboneLinkEvent).Up {
				counts[MetricBackboneLinkFaults]++
			}
		case BackboneRouteEvent:
			if ev.(BackboneRouteEvent).Reroute {
				counts[MetricBackboneReroutes]++
			}
		case BackboneEvent:
			switch ev.(BackboneEvent).Kind {
			case BackboneDeliver:
				counts[MetricBackboneDelivered]++
			case BackboneDrop:
				counts[MetricBackboneDropped]++
			}
		case FaultEvent:
			// Count injections only — clears and restores are the tail
			// end of a fault already counted.
			switch ev.(FaultEvent).Kind {
			case FaultCrash, FaultCompute, FaultPERBurst, FaultBatteryDrain, FaultClockDrift:
				counts[MetricFaultsInjected]++
			}
		}
	})
	defer sub.Cancel()
	var checkers []InvariantChecker
	if r.Checkers != nil {
		checkers = r.Checkers()
		csub := bus.Subscribe(func(ev Event) {
			for _, c := range checkers {
				c.Observe(ev)
			}
		})
		defer csub.Cancel()
	}
	var log *EventLog
	if r.EventDir != "" {
		log = bus.Log()
		defer log.Close()
	}
	if len(spec.Faults.Steps) > 0 {
		if exp.Campus != nil {
			err = exp.Campus.ApplyFaultPlan(spec.FaultCell, spec.Faults)
		} else {
			err = exp.Cell.ApplyFaultPlan(spec.Faults)
		}
		if err != nil {
			res.Err = err
			return res
		}
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = exp.DefaultHorizon
	}
	if horizon <= 0 {
		horizon = time.Minute
	}
	if exp.Campus != nil {
		exp.Campus.Run(horizon)
	} else {
		exp.Cell.Run(horizon)
	}
	res.Metrics = counts
	for _, c := range checkers {
		res.Violations = append(res.Violations, c.Violations()...)
	}
	if firstFailover >= 0 {
		res.Metrics[MetricFirstFailoverS] = firstFailover.Seconds()
	}
	if exp.Metrics != nil {
		for k, v := range exp.Metrics() {
			res.Metrics[k] = v
		}
	}
	if exp.QoS != nil {
		rep := exp.QoS()
		res.Metrics[MetricQoSCoverage] = rep.CoverageRatio
		res.Metrics[MetricQoSRedundancy] = rep.RedundancyMean
	}
	if log != nil {
		if err := writeEventCSV(r.EventDir, spec, log); err != nil && res.Err == nil {
			res.Err = err
		}
	}
	if finish != nil {
		finish(res.Metrics)
	}
	return res
}

// writeEventCSV renders one run's event log through a trace.Recorder and
// writes it as <dir>/<sanitized spec label>.csv.
func writeEventCSV(dir string, spec RunSpec, log *EventLog) error {
	name := strings.NewReplacer("/", "_", " ", "_", "@", "_").Replace(spec.Label()) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	werr := log.Recorder().WriteCSV(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// SpecGrid crosses scenarios x seeds x fault plans into a flat spec list
// (the experiment-grid workflow: hundreds of seeded runs as data). A nil
// or empty plans slice means one fault-free run per scenario/seed pair.
func SpecGrid(scenarios []string, seeds []uint64, plans []FaultPlan, horizon time.Duration) []RunSpec {
	if len(plans) == 0 {
		plans = []FaultPlan{{}}
	}
	specs := make([]RunSpec, 0, len(scenarios)*len(seeds)*len(plans))
	for _, sc := range scenarios {
		for _, seed := range seeds {
			for _, plan := range plans {
				specs = append(specs, RunSpec{Scenario: sc, Seed: seed, Horizon: horizon, Faults: plan})
			}
		}
	}
	return specs
}

// MetricSummary aggregates one metric across the runs that reported it.
type MetricSummary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
}

func (m MetricSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", m.N, m.Mean, m.Min, m.Max)
}

// Aggregate groups successful results by scenario and summarizes every
// metric. The outer key is the scenario name, the inner key the metric.
func Aggregate(results []RunResult) map[string]map[string]MetricSummary {
	type acc struct {
		n        int
		sum      float64
		min, max float64
	}
	accs := make(map[string]map[string]*acc)
	for _, r := range results {
		if r.Err != nil || r.Metrics == nil {
			continue
		}
		byMetric := accs[r.Spec.Scenario]
		if byMetric == nil {
			byMetric = make(map[string]*acc)
			accs[r.Spec.Scenario] = byMetric
		}
		// Sorted metric order: float sums are order-dependent (addition
		// is not associative), so a fixed accumulation order keeps equal
		// result sets aggregating to byte-identical summaries.
		for _, k := range sim.SortedKeys(r.Metrics) {
			v := r.Metrics[k]
			a := byMetric[k]
			if a == nil {
				byMetric[k] = &acc{n: 1, sum: v, min: v, max: v}
				continue
			}
			a.n++
			a.sum += v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
		}
	}
	out := make(map[string]map[string]MetricSummary, len(accs))
	for _, sc := range sim.SortedKeys(accs) {
		byMetric := accs[sc]
		out[sc] = make(map[string]MetricSummary, len(byMetric))
		for _, k := range sim.SortedKeys(byMetric) {
			a := byMetric[k]
			out[sc][k] = MetricSummary{N: a.n, Mean: a.sum / float64(a.n), Min: a.min, Max: a.max}
		}
	}
	return out
}
