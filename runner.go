package evm

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// RunResult is one completed grid point: the spec, the scenario's metrics
// and the event counts observed on the cell's bus. Failed runs carry Err
// and nil metrics.
type RunResult struct {
	Spec    RunSpec
	Err     error
	Metrics map[string]float64
}

// Metric keys the Runner derives from the event bus on top of whatever
// the scenario reports.
const (
	MetricFailovers      = "failovers"
	MetricActuations     = "actuations"
	MetricMigrations     = "migrations"
	MetricJoins          = "joins"
	MetricFaultsInjected = "faults_injected"
	// MetricFirstFailoverS is the virtual time of the first failover in
	// seconds (absent when no failover occurred).
	MetricFirstFailoverS = "first_failover_s"
)

// Runner executes a grid of RunSpecs across worker goroutines. Every
// cell's virtual-time engine is single-threaded, so runs shard perfectly:
// N workers give close to N-fold throughput on multi-core hosts, and the
// results are identical to serial execution because each run's
// determinism depends only on its spec.
type Runner struct {
	// Workers is the concurrency (default: GOMAXPROCS).
	Workers int
}

// Run executes every spec and returns results in spec order. Individual
// run failures are reported in RunResult.Err; Run itself only allocates.
func (r *Runner) Run(specs []RunSpec) []RunResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]RunResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single grid point: build, instrument, fault, run,
// measure, clean up.
func runOne(spec RunSpec) RunResult {
	res := RunResult{Spec: spec}
	exp, err := BuildScenario(spec)
	if err != nil {
		res.Err = err
		return res
	}
	if exp.Cleanup != nil {
		defer exp.Cleanup()
	}
	counts := map[string]float64{
		MetricFailovers:      0,
		MetricActuations:     0,
		MetricMigrations:     0,
		MetricJoins:          0,
		MetricFaultsInjected: 0,
	}
	firstFailover := time.Duration(-1)
	sub := exp.Cell.Events().Subscribe(func(ev Event) {
		switch ev.(type) {
		case FailoverEvent:
			counts[MetricFailovers]++
			if firstFailover < 0 {
				firstFailover = ev.When()
			}
		case ActuationEvent:
			counts[MetricActuations]++
		case MigrationEvent:
			counts[MetricMigrations]++
		case JoinEvent:
			counts[MetricJoins]++
		case FaultEvent:
			// Count injections only — clears and restores are the tail
			// end of a fault already counted.
			switch ev.(FaultEvent).Kind {
			case FaultCrash, FaultCompute, FaultPERBurst:
				counts[MetricFaultsInjected]++
			}
		}
	})
	defer sub.Cancel()
	if len(spec.Faults.Steps) > 0 {
		if err := exp.Cell.ApplyFaultPlan(spec.Faults); err != nil {
			res.Err = err
			return res
		}
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = exp.DefaultHorizon
	}
	if horizon <= 0 {
		horizon = time.Minute
	}
	exp.Cell.Run(horizon)
	res.Metrics = counts
	if firstFailover >= 0 {
		res.Metrics[MetricFirstFailoverS] = firstFailover.Seconds()
	}
	if exp.Metrics != nil {
		for k, v := range exp.Metrics() {
			res.Metrics[k] = v
		}
	}
	return res
}

// SpecGrid crosses scenarios x seeds x fault plans into a flat spec list
// (the experiment-grid workflow: hundreds of seeded runs as data). A nil
// or empty plans slice means one fault-free run per scenario/seed pair.
func SpecGrid(scenarios []string, seeds []uint64, plans []FaultPlan, horizon time.Duration) []RunSpec {
	if len(plans) == 0 {
		plans = []FaultPlan{{}}
	}
	specs := make([]RunSpec, 0, len(scenarios)*len(seeds)*len(plans))
	for _, sc := range scenarios {
		for _, seed := range seeds {
			for _, plan := range plans {
				specs = append(specs, RunSpec{Scenario: sc, Seed: seed, Horizon: horizon, Faults: plan})
			}
		}
	}
	return specs
}

// MetricSummary aggregates one metric across the runs that reported it.
type MetricSummary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
}

func (m MetricSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", m.N, m.Mean, m.Min, m.Max)
}

// Aggregate groups successful results by scenario and summarizes every
// metric. The outer key is the scenario name, the inner key the metric.
func Aggregate(results []RunResult) map[string]map[string]MetricSummary {
	type acc struct {
		n        int
		sum      float64
		min, max float64
	}
	accs := make(map[string]map[string]*acc)
	for _, r := range results {
		if r.Err != nil || r.Metrics == nil {
			continue
		}
		byMetric := accs[r.Spec.Scenario]
		if byMetric == nil {
			byMetric = make(map[string]*acc)
			accs[r.Spec.Scenario] = byMetric
		}
		for k, v := range r.Metrics {
			a := byMetric[k]
			if a == nil {
				byMetric[k] = &acc{n: 1, sum: v, min: v, max: v}
				continue
			}
			a.n++
			a.sum += v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
		}
	}
	out := make(map[string]map[string]MetricSummary, len(accs))
	for sc, byMetric := range accs {
		out[sc] = make(map[string]MetricSummary, len(byMetric))
		for k, a := range byMetric {
			out[sc][k] = MetricSummary{N: a.n, Mean: a.sum / float64(a.n), Min: a.min, Max: a.max}
		}
	}
	return out
}
