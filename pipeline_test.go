package evm

import (
	"testing"
	"time"
)

// TestPipelineMultiHopControl drives the line-cell scenario end to end:
// sensor snapshots relayed down the line feed the far-end primary, its
// actuations relay back to the gateway, a primary crash fails over
// across the line, and the backup's actuations keep arriving through
// the surviving relays.
func TestPipelineMultiHopControl(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioPipeline, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	log := exp.Cell.Events().Log()
	exp.Cell.Run(10 * time.Second)
	isAct := func(ev Event) bool { _, ok := ev.(ActuationEvent); return ok }
	pre := log.Count(isAct)
	if pre == 0 {
		t.Fatal("no actuations reached the gateway over the line")
	}
	// Every pre-crash actuation must come from the far-end primary —
	// proof the message crossed the relays, since the primary is three
	// hops from the gateway.
	for _, ev := range log.Events() {
		if act, ok := ev.(ActuationEvent); ok && act.Node != PipePrimary {
			t.Fatalf("pre-crash actuation from node %d, want primary %d", act.Node, PipePrimary)
		}
	}
	if m := exp.Metrics(); m["relayed_frags"] == 0 {
		t.Fatal("line routes relayed no fragments")
	}

	if err := exp.Cell.ApplyFaultPlan(PipelinePrimaryCrashPlan(0)); err != nil {
		t.Fatal(err)
	}
	exp.Cell.Run(20 * time.Second)
	failovers := log.Count(func(ev Event) bool { _, ok := ev.(FailoverEvent); return ok })
	if failovers == 0 {
		t.Fatal("primary crash produced no fail-over across the line")
	}
	post := log.Count(isAct) - pre
	if post == 0 {
		t.Fatal("no actuations reached the gateway after the fail-over")
	}
	backupActs := 0
	for _, ev := range log.Events() {
		if act, ok := ev.(ActuationEvent); ok && act.Node == PipeBackup {
			backupActs++
		}
	}
	if backupActs == 0 {
		t.Fatal("backup's actuations never arrived at the gateway")
	}
	if m := exp.Metrics(); m["active_controller"] != float64(PipeBackup) {
		t.Fatalf("active controller = %v, want backup %d", m["active_controller"], PipeBackup)
	}
}

// TestPipelineLineDutyBelowMesh checks the energy story of the line
// schedule: stations listening only to their neighbors spend a smaller
// fraction of the frame awake than the full-mesh equivalent with the
// same slot budget.
func TestPipelineLineDutyBelowMesh(t *testing.T) {
	exp, err := BuildScenario(RunSpec{Scenario: ScenarioPipeline, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Cleanup()
	exp.Cell.Run(time.Second)
	duty := exp.Metrics()["line_duty"]
	if duty <= 0 {
		t.Fatal("line duty not measured")
	}
	// Mesh equivalent for 5 nodes x 3 slots in a 50-slot frame: sync +
	// 3 own + 12 listen slots = 0.32.
	const meshDuty = (1.0 + 3 + 3*4) / 50.0
	if duty >= meshDuty {
		t.Fatalf("line duty %.3f not below mesh-equivalent %.3f", duty, meshDuty)
	}
}

// TestPipelineDeterminism: equal seeds reproduce the line cell's event
// stream byte for byte, relays and multi-hop routing included.
func TestPipelineDeterminism(t *testing.T) {
	run := func() []string {
		exp, err := BuildScenario(RunSpec{Scenario: ScenarioPipeline, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer exp.Cleanup()
		if err := exp.Cell.ApplyFaultPlan(PipelinePrimaryCrashPlan(10 * time.Second)); err != nil {
			t.Fatal(err)
		}
		log := exp.Cell.Events().Log()
		exp.Cell.Run(25 * time.Second)
		return log.Strings()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestWithLineScheduleValidation covers the option's error paths: a
// non-permutation order and an oversized line are rejected.
func TestWithLineScheduleValidation(t *testing.T) {
	if _, err := NewCellWith(CellConfig{Seed: 1},
		WithNodes(1, 2, 3),
		WithLineSchedule(1, 2)); err == nil {
		t.Fatal("short line order accepted")
	}
	if _, err := NewCellWith(CellConfig{Seed: 1},
		WithNodes(1, 2, 3),
		WithLineSchedule(1, 2, 2)); err == nil {
		t.Fatal("duplicate line order accepted")
	}
	if _, err := NewCellWith(CellConfig{Seed: 1},
		WithNodes(1, 2, 3),
		WithLineSchedule(1, 2, 9)); err == nil {
		t.Fatal("line order naming a non-member accepted")
	}
	// 30 nodes x 2 slots = 60 line slots: too many for a 50-slot frame.
	if _, err := NewCellWith(CellConfig{Seed: 1},
		WithNodeCount(30),
		WithLineSchedule()); err == nil {
		t.Fatal("oversized line schedule accepted")
	}
}
