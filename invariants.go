package evm

import (
	"fmt"
	"strings"
	"time"
)

// Violation is one invariant breach found in a recorded event stream.
type Violation struct {
	At      time.Duration
	Checker string
	Detail  string
}

// String renders the violation one line.
func (v Violation) String() string {
	return fmt.Sprintf("%v %s: %s", v.At, v.Checker, v.Detail)
}

// InvariantChecker replays a recorded event stream and accumulates
// violations of one safety property. Checkers are pure observers: feed
// them every event of an EventLog in publication order (cell streams and
// merged campus streams both work — CellEvent wrappers are unwrapped)
// and read Violations at the end. A fresh checker per replay; they keep
// state.
//
// To write a custom checker, implement the three methods and derive your
// property's state machine from the typed events: FailoverEvent and
// InterCellMigrationEvent are the only ways mastership moves,
// ActuationEvent records which node's output reached a gateway, and
// BackboneLinkEvent brackets the epochs between link-set changes.
type InvariantChecker interface {
	// Name labels the checker in violations.
	Name() string
	// Observe feeds one event, in stream order.
	Observe(Event)
	// Violations returns every breach found so far.
	Violations() []Violation
}

// DefaultInvariantGrace is the settling window the built-in checkers
// allow around a legitimate transition: actuations already in TDMA
// flight when a master was demoted, and the demotion round-trip after a
// stale replica's radio recovers, are not violations within it. Four
// default 250 ms frames cover both.
const DefaultInvariantGrace = time.Second

// CheckEvents replays a recorded stream through the checkers and returns
// every violation found (nil when all invariants hold).
func CheckEvents(events []Event, checkers ...InvariantChecker) []Violation {
	for _, ev := range events {
		for _, c := range checkers {
			c.Observe(ev)
		}
	}
	var out []Violation
	for _, c := range checkers {
		out = append(out, c.Violations()...)
	}
	return out
}

// DefaultInvariants returns fresh instances of every built-in checker:
// single-master-per-task, no-actuation-from-demoted-replica and
// route-monotonicity.
func DefaultInvariants() []InvariantChecker {
	return []InvariantChecker{
		NewSingleMasterInvariant(DefaultInvariantGrace),
		NewDemotedSilenceInvariant(DefaultInvariantGrace),
		NewRouteMonotonicityInvariant(),
	}
}

// splitEvent unwraps a campus CellEvent into its cell name and inner
// event; bare cell-stream events carry the empty cell name.
func splitEvent(ev Event) (string, Event) {
	if ce, ok := ev.(CellEvent); ok {
		return ce.Cell, ce.Inner
	}
	return "", ev
}

// masterRef names one node in one cell ("" for single-cell streams).
type masterRef struct {
	cell string
	node NodeID
}

func (r masterRef) String() string {
	if r.cell == "" {
		return fmt.Sprintf("node %d", r.node)
	}
	return fmt.Sprintf("%s/%d", r.cell, r.node)
}

// masterTracker is the shared state machine of the actuation checkers:
// it derives, per task, the current master and the set of demoted
// ex-masters with their demotion times, from the only two events that
// move mastership. A FaultRecover refreshes a demoted node's timestamp —
// a recovered stale replica is granted one demotion round-trip before
// its silence is enforced.
type masterTracker struct {
	masters map[string]masterRef
	demoted map[string]map[masterRef]time.Duration
}

func newMasterTracker() masterTracker {
	return masterTracker{
		masters: make(map[string]masterRef),
		demoted: make(map[string]map[masterRef]time.Duration),
	}
}

func (t *masterTracker) promote(task string, next, old masterRef, at time.Duration) {
	t.masters[task] = next
	m := t.demoted[task]
	if m == nil {
		m = make(map[masterRef]time.Duration)
		t.demoted[task] = m
	}
	delete(m, next)
	if old.node != 0 {
		m[old] = at
	}
}

func (t *masterTracker) refresh(ref masterRef, at time.Duration) {
	for _, m := range t.demoted {
		if _, ok := m[ref]; ok {
			m[ref] = at
		}
	}
}

// observe updates the tracker from one event and reports whether it was
// consumed as a mastership/recovery transition.
func (t *masterTracker) observe(cell string, inner Event) {
	switch e := inner.(type) {
	case FailoverEvent:
		t.promote(e.Task, masterRef{cell, e.To}, masterRef{cell, e.From}, e.At)
	case InterCellMigrationEvent:
		t.promote(e.Task, masterRef{e.ToCell, e.To}, masterRef{e.FromCell, e.From}, e.At)
	case FaultEvent:
		if e.Kind == FaultRecover {
			t.refresh(masterRef{cell, e.Node}, e.At)
		}
	}
}

// singleMasterInvariant checks that every actuation comes from the
// task's current master (the first actuator seen is adopted as the
// initial master; a just-demoted master may drain in-flight actuations
// within the grace window).
type singleMasterInvariant struct {
	grace      time.Duration
	tracker    masterTracker
	violations []Violation
}

// NewSingleMasterInvariant builds the single-master-per-task checker.
// grace <= 0 uses DefaultInvariantGrace.
func NewSingleMasterInvariant(grace time.Duration) InvariantChecker {
	if grace <= 0 {
		grace = DefaultInvariantGrace
	}
	return &singleMasterInvariant{grace: grace, tracker: newMasterTracker()}
}

// Name implements InvariantChecker.
func (c *singleMasterInvariant) Name() string { return "single-master-per-task" }

// Observe implements InvariantChecker.
func (c *singleMasterInvariant) Observe(ev Event) {
	cell, inner := splitEvent(ev)
	c.tracker.observe(cell, inner)
	act, ok := inner.(ActuationEvent)
	if !ok {
		return
	}
	src := masterRef{cell, act.Node}
	master, known := c.tracker.masters[act.Task]
	if !known {
		c.tracker.masters[act.Task] = src
		return
	}
	if master == src {
		return
	}
	if at, was := c.tracker.demoted[act.Task][src]; was && act.At-at <= c.grace {
		return
	}
	c.violations = append(c.violations, Violation{
		At: act.At, Checker: c.Name(),
		Detail: fmt.Sprintf("task %s actuated from %s while master is %s", act.Task, src, master),
	})
}

// Violations implements InvariantChecker.
func (c *singleMasterInvariant) Violations() []Violation { return c.violations }

// demotedSilenceInvariant checks that a demoted replica never actuates
// again (outside the grace window) until re-promoted — the complementary
// view of single-master: even a node the stream never crowned master
// must stay silent once demoted.
type demotedSilenceInvariant struct {
	grace      time.Duration
	tracker    masterTracker
	violations []Violation
}

// NewDemotedSilenceInvariant builds the no-actuation-from-demoted-replica
// checker. grace <= 0 uses DefaultInvariantGrace.
func NewDemotedSilenceInvariant(grace time.Duration) InvariantChecker {
	if grace <= 0 {
		grace = DefaultInvariantGrace
	}
	return &demotedSilenceInvariant{grace: grace, tracker: newMasterTracker()}
}

// Name implements InvariantChecker.
func (c *demotedSilenceInvariant) Name() string { return "no-actuation-from-demoted-replica" }

// Observe implements InvariantChecker.
func (c *demotedSilenceInvariant) Observe(ev Event) {
	cell, inner := splitEvent(ev)
	c.tracker.observe(cell, inner)
	act, ok := inner.(ActuationEvent)
	if !ok {
		return
	}
	src := masterRef{cell, act.Node}
	if at, was := c.tracker.demoted[act.Task][src]; was && act.At-at > c.grace {
		c.violations = append(c.violations, Violation{
			At: act.At, Checker: c.Name(),
			Detail: fmt.Sprintf("task %s actuated from %s, demoted at %v", act.Task, src, at),
		})
	}
}

// Violations implements InvariantChecker.
func (c *demotedSilenceInvariant) Violations() []Violation { return c.violations }

// routeMonotonicityInvariant checks that backbone routing is
// deterministic between link faults: within one link epoch (the stretch
// of stream between BackboneLinkEvents) every transfer for a cell pair
// must follow the same path. Routes may only change when the link set
// does.
type routeMonotonicityInvariant struct {
	epoch      int
	seen       map[string]routeSeen
	violations []Violation
}

type routeSeen struct {
	epoch int
	path  string
}

// NewRouteMonotonicityInvariant builds the route-monotonicity checker.
func NewRouteMonotonicityInvariant() InvariantChecker {
	return &routeMonotonicityInvariant{seen: make(map[string]routeSeen)}
}

// Name implements InvariantChecker.
func (c *routeMonotonicityInvariant) Name() string { return "route-monotonicity" }

// Observe implements InvariantChecker.
func (c *routeMonotonicityInvariant) Observe(ev Event) {
	_, inner := splitEvent(ev)
	switch e := inner.(type) {
	case BackboneLinkEvent:
		c.epoch++
	case BackboneRouteEvent:
		key := e.From + ">" + e.To
		path := strings.Join(e.Path, ">")
		prev, ok := c.seen[key]
		if ok && prev.epoch == c.epoch && prev.path != path {
			c.violations = append(c.violations, Violation{
				At: e.At, Checker: c.Name(),
				Detail: fmt.Sprintf("route %s changed from %s to %s with no link fault in between",
					key, prev.path, path),
			})
		}
		c.seen[key] = routeSeen{epoch: c.epoch, path: path}
	}
}

// Violations implements InvariantChecker.
func (c *routeMonotonicityInvariant) Violations() []Violation { return c.violations }
