package evm

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Violation is one invariant breach found in a recorded event stream.
type Violation struct {
	At      time.Duration
	Checker string
	Detail  string
}

// String renders the violation one line.
func (v Violation) String() string {
	return fmt.Sprintf("%v %s: %s", v.At, v.Checker, v.Detail)
}

// InvariantChecker replays a recorded event stream and accumulates
// violations of one safety property. Checkers are pure observers: feed
// them every event of an EventLog in publication order (cell streams and
// merged campus streams both work — CellEvent wrappers are unwrapped)
// and read Violations at the end. A fresh checker per replay; they keep
// state.
//
// To write a custom checker, implement the three methods and derive your
// property's state machine from the typed events: FailoverEvent and
// InterCellMigrationEvent are the only ways mastership moves,
// ActuationEvent records which node's output reached a gateway, and
// BackboneLinkEvent brackets the epochs between link-set changes.
type InvariantChecker interface {
	// Name labels the checker in violations.
	Name() string
	// Observe feeds one event, in stream order.
	Observe(Event)
	// Violations returns every breach found so far.
	Violations() []Violation
}

// DefaultInvariantGrace is the settling window the built-in checkers
// allow around a legitimate transition: actuations already in TDMA
// flight when a master was demoted, and the demotion round-trip after a
// stale replica's radio recovers, are not violations within it. Four
// default 250 ms frames cover both.
const DefaultInvariantGrace = time.Second

// CheckEvents replays a recorded stream through the checkers and returns
// every violation found (nil when all invariants hold).
func CheckEvents(events []Event, checkers ...InvariantChecker) []Violation {
	for _, ev := range events {
		for _, c := range checkers {
			c.Observe(ev)
		}
	}
	var out []Violation
	for _, c := range checkers {
		out = append(out, c.Violations()...)
	}
	return out
}

// DefaultInvariants returns fresh instances of every built-in checker:
// single-master-per-task, no-actuation-from-demoted-replica and
// route-monotonicity.
func DefaultInvariants() []InvariantChecker {
	return []InvariantChecker{
		NewSingleMasterInvariant(DefaultInvariantGrace),
		NewDemotedSilenceInvariant(DefaultInvariantGrace),
		NewRouteMonotonicityInvariant(),
	}
}

// splitEvent unwraps a campus CellEvent into its cell name and inner
// event; bare cell-stream events carry the empty cell name.
func splitEvent(ev Event) (string, Event) {
	if ce, ok := ev.(CellEvent); ok {
		return ce.Cell, ce.Inner
	}
	return "", ev
}

// masterRef names one node in one cell ("" for single-cell streams).
type masterRef struct {
	cell string
	node NodeID
}

func (r masterRef) String() string {
	if r.cell == "" {
		return fmt.Sprintf("node %d", r.node)
	}
	return fmt.Sprintf("%s/%d", r.cell, r.node)
}

// masterTracker is the shared state machine of the actuation checkers:
// it derives, per task, the current master and the set of demoted
// ex-masters with their demotion times, from the only two events that
// move mastership. A FaultRecover refreshes a demoted node's timestamp —
// a recovered stale replica is granted one demotion round-trip before
// its silence is enforced.
type masterTracker struct {
	masters map[string]masterRef
	demoted map[string]map[masterRef]time.Duration
}

func newMasterTracker() masterTracker {
	return masterTracker{
		masters: make(map[string]masterRef),
		demoted: make(map[string]map[masterRef]time.Duration),
	}
}

func (t *masterTracker) promote(task string, next, old masterRef, at time.Duration) {
	t.masters[task] = next
	m := t.demoted[task]
	if m == nil {
		m = make(map[masterRef]time.Duration)
		t.demoted[task] = m
	}
	delete(m, next)
	if old.node != 0 {
		m[old] = at
	}
}

func (t *masterTracker) refresh(ref masterRef, at time.Duration) {
	for _, m := range t.demoted {
		if _, ok := m[ref]; ok {
			m[ref] = at
		}
	}
}

// observe updates the tracker from one event and reports whether it was
// consumed as a mastership/recovery transition.
func (t *masterTracker) observe(cell string, inner Event) {
	switch e := inner.(type) {
	case FailoverEvent:
		t.promote(e.Task, masterRef{cell, e.To}, masterRef{cell, e.From}, e.At)
	case InterCellMigrationEvent:
		t.promote(e.Task, masterRef{e.ToCell, e.To}, masterRef{e.FromCell, e.From}, e.At)
	case FaultEvent:
		if e.Kind == FaultRecover {
			t.refresh(masterRef{cell, e.Node}, e.At)
		}
	}
}

// singleMasterInvariant checks that every actuation comes from the
// task's current master (the first actuator seen is adopted as the
// initial master; a just-demoted master may drain in-flight actuations
// within the grace window).
type singleMasterInvariant struct {
	grace      time.Duration
	tracker    masterTracker
	violations []Violation
}

// NewSingleMasterInvariant builds the single-master-per-task checker.
// grace <= 0 uses DefaultInvariantGrace.
func NewSingleMasterInvariant(grace time.Duration) InvariantChecker {
	if grace <= 0 {
		grace = DefaultInvariantGrace
	}
	return &singleMasterInvariant{grace: grace, tracker: newMasterTracker()}
}

// Name implements InvariantChecker.
func (c *singleMasterInvariant) Name() string { return "single-master-per-task" }

// Observe implements InvariantChecker.
func (c *singleMasterInvariant) Observe(ev Event) {
	cell, inner := splitEvent(ev)
	c.tracker.observe(cell, inner)
	act, ok := inner.(ActuationEvent)
	if !ok {
		return
	}
	src := masterRef{cell, act.Node}
	master, known := c.tracker.masters[act.Task]
	if !known {
		c.tracker.masters[act.Task] = src
		return
	}
	if master == src {
		return
	}
	if at, was := c.tracker.demoted[act.Task][src]; was && act.At-at <= c.grace {
		return
	}
	c.violations = append(c.violations, Violation{
		At: act.At, Checker: c.Name(),
		Detail: fmt.Sprintf("task %s actuated from %s while master is %s", act.Task, src, master),
	})
}

// Violations implements InvariantChecker.
func (c *singleMasterInvariant) Violations() []Violation { return c.violations }

// demotedSilenceInvariant checks that a demoted replica never actuates
// again (outside the grace window) until re-promoted — the complementary
// view of single-master: even a node the stream never crowned master
// must stay silent once demoted.
type demotedSilenceInvariant struct {
	grace      time.Duration
	tracker    masterTracker
	violations []Violation
}

// NewDemotedSilenceInvariant builds the no-actuation-from-demoted-replica
// checker. grace <= 0 uses DefaultInvariantGrace.
func NewDemotedSilenceInvariant(grace time.Duration) InvariantChecker {
	if grace <= 0 {
		grace = DefaultInvariantGrace
	}
	return &demotedSilenceInvariant{grace: grace, tracker: newMasterTracker()}
}

// Name implements InvariantChecker.
func (c *demotedSilenceInvariant) Name() string { return "no-actuation-from-demoted-replica" }

// Observe implements InvariantChecker.
func (c *demotedSilenceInvariant) Observe(ev Event) {
	cell, inner := splitEvent(ev)
	c.tracker.observe(cell, inner)
	act, ok := inner.(ActuationEvent)
	if !ok {
		return
	}
	src := masterRef{cell, act.Node}
	if at, was := c.tracker.demoted[act.Task][src]; was && act.At-at > c.grace {
		c.violations = append(c.violations, Violation{
			At: act.At, Checker: c.Name(),
			Detail: fmt.Sprintf("task %s actuated from %s, demoted at %v", act.Task, src, at),
		})
	}
}

// Violations implements InvariantChecker.
func (c *demotedSilenceInvariant) Violations() []Violation { return c.violations }

// routeMonotonicityInvariant checks that backbone routing is
// deterministic between link faults: within one link epoch (the stretch
// of stream between BackboneLinkEvents) every transfer for a cell pair
// must follow the same path. Routes may only change when the link set
// does.
type routeMonotonicityInvariant struct {
	epoch      int
	seen       map[string]routeSeen
	violations []Violation
}

type routeSeen struct {
	epoch int
	path  string
}

// NewRouteMonotonicityInvariant builds the route-monotonicity checker.
func NewRouteMonotonicityInvariant() InvariantChecker {
	return &routeMonotonicityInvariant{seen: make(map[string]routeSeen)}
}

// Name implements InvariantChecker.
func (c *routeMonotonicityInvariant) Name() string { return "route-monotonicity" }

// Observe implements InvariantChecker.
func (c *routeMonotonicityInvariant) Observe(ev Event) {
	_, inner := splitEvent(ev)
	switch e := inner.(type) {
	case BackboneLinkEvent:
		c.epoch++
	case BackboneRouteEvent:
		key := e.From + ">" + e.To
		path := strings.Join(e.Path, ">")
		prev, ok := c.seen[key]
		if ok && prev.epoch == c.epoch && prev.path != path {
			c.violations = append(c.violations, Violation{
				At: e.At, Checker: c.Name(),
				Detail: fmt.Sprintf("route %s changed from %s to %s with no link fault in between",
					key, prev.path, path),
			})
		}
		c.seen[key] = routeSeen{epoch: c.epoch, path: path}
	}
}

// Violations implements InvariantChecker.
func (c *routeMonotonicityInvariant) Violations() []Violation { return c.violations }

// --- timing invariants --------------------------------------------------------

// DefaultActuationBound is the actuation-deadline checker's default gap
// bound: generous enough for every built-in scenario's slowest loop
// (1 s period x 8-cycle silence window, doubled).
const DefaultActuationBound = 16 * time.Second

// DefaultFailoverLatencyBound is the failover-latency checker's default
// detection bound: a crashed master must be replaced well within it
// (silence-window detection plus arbitration or one cross-cell
// escalation round-trip).
const DefaultFailoverLatencyBound = 10 * time.Second

// actuationDeadlineInvariant checks that a task's actuation stream never
// gaps longer than the bound without an explaining transition: once a
// task is actuating, consecutive actuations must stay within bound of
// each other unless a fault, fail-over, migration, mode change, rollout
// or rollback occurred in between (any of those resets every task's gap
// clock — they legitimately pause loops). A task that falls silent and
// never resumes is the failover-latency checker's domain; this one
// catches loops that resume late with no cause on record.
type actuationDeadlineInvariant struct {
	bound      time.Duration
	lastAct    map[string]time.Duration // task -> last actuation (or reset point)
	violations []Violation
}

// NewActuationDeadlineInvariant builds the actuation-deadline timing
// checker. bound <= 0 uses DefaultActuationBound; set it to a small
// multiple of the scenario's longest task period to tighten it.
func NewActuationDeadlineInvariant(bound time.Duration) InvariantChecker {
	if bound <= 0 {
		bound = DefaultActuationBound
	}
	return &actuationDeadlineInvariant{bound: bound, lastAct: make(map[string]time.Duration)}
}

// Name implements InvariantChecker.
func (c *actuationDeadlineInvariant) Name() string { return "actuation-deadline" }

// Observe implements InvariantChecker.
func (c *actuationDeadlineInvariant) Observe(ev Event) {
	_, inner := splitEvent(ev)
	switch act := inner.(type) {
	case ActuationEvent:
		if last, ok := c.lastAct[act.Task]; ok && act.At-last > c.bound {
			c.violations = append(c.violations, Violation{
				At: act.At, Checker: c.Name(),
				Detail: fmt.Sprintf("task %s actuation gap %v exceeds bound %v with no transition in between",
					act.Task, act.At-last, c.bound),
			})
		}
		c.lastAct[act.Task] = act.At
	case FaultEvent, FailoverEvent, MigrationEvent, InterCellMigrationEvent,
		CellOverloadEvent, CellRecoveredEvent, ModeChangeEvent,
		RolloutEvent, RollbackEvent, RebalanceAbortEvent, BackboneLinkEvent:
		// A recorded transition excuses the pause it causes: restart
		// every gap clock from here. (When() is hoisted out of the loop
		// so the map range stays a pure keyed write — order-insensitive.)
		at := inner.When()
		for task := range c.lastAct {
			c.lastAct[task] = at
		}
	}
}

// Violations implements InvariantChecker.
func (c *actuationDeadlineInvariant) Violations() []Violation { return c.violations }

// failoverLatencyInvariant checks the silence-window detection bound:
// when a task's current master crashes (FaultEvent{Crash} on its node),
// a replacement — an in-cell FailoverEvent or a cross-cell migration —
// must appear within the bound. The deadline disarms if the crashed
// radio recovers first (no fail-over was needed) or the task actuates
// again. Violations are flagged at the first event past the deadline, so
// a stream that ends with the deadline still pending flags nothing —
// checkers only judge what the stream can prove.
type failoverLatencyInvariant struct {
	bound      time.Duration
	tracker    masterTracker
	armed      map[string]armedFailover // task -> pending detection deadline
	violations []Violation
}

type armedFailover struct {
	at   time.Duration
	node masterRef
}

// NewFailoverLatencyInvariant builds the failover-latency timing
// checker. bound <= 0 uses DefaultFailoverLatencyBound.
func NewFailoverLatencyInvariant(bound time.Duration) InvariantChecker {
	if bound <= 0 {
		bound = DefaultFailoverLatencyBound
	}
	return &failoverLatencyInvariant{
		bound:   bound,
		tracker: newMasterTracker(),
		armed:   make(map[string]armedFailover),
	}
}

// Name implements InvariantChecker.
func (c *failoverLatencyInvariant) Name() string { return "failover-latency" }

// Observe implements InvariantChecker.
func (c *failoverLatencyInvariant) Observe(ev Event) {
	cell, inner := splitEvent(ev)
	c.expire(inner.When())
	switch e := inner.(type) {
	case ActuationEvent:
		src := masterRef{cell, e.Node}
		if _, known := c.tracker.masters[e.Task]; !known {
			c.tracker.masters[e.Task] = src
		}
		delete(c.armed, e.Task) // the loop is alive again
	case FailoverEvent:
		delete(c.armed, e.Task)
	case InterCellMigrationEvent:
		delete(c.armed, e.Task)
	case FaultEvent:
		switch e.Kind {
		case FaultCrash:
			crashed := masterRef{cell, e.Node}
			for task, master := range c.tracker.masters {
				if master == crashed {
					if _, pending := c.armed[task]; !pending {
						c.armed[task] = armedFailover{at: e.At, node: crashed}
					}
				}
			}
		case FaultRecover:
			back := masterRef{cell, e.Node}
			for task, arm := range c.armed {
				if arm.node == back {
					delete(c.armed, task) // the master returned; no fail-over due
				}
			}
		}
	}
	c.tracker.observe(cell, inner)
}

// expire flags every armed deadline the stream has provably blown, in
// task order for reproducible violation lists.
func (c *failoverLatencyInvariant) expire(now time.Duration) {
	var due []string
	for task, arm := range c.armed {
		if now-arm.at > c.bound {
			due = append(due, task)
		}
	}
	sort.Strings(due)
	for _, task := range due {
		arm := c.armed[task]
		delete(c.armed, task)
		c.violations = append(c.violations, Violation{
			At: arm.at + c.bound, Checker: c.Name(),
			Detail: fmt.Sprintf("task %s master %s crashed at %v with no fail-over within %v",
				task, arm.node, arm.at, c.bound),
		})
	}
}

// Violations implements InvariantChecker.
func (c *failoverLatencyInvariant) Violations() []Violation { return c.violations }

// TimingInvariants returns fresh instances of the timing checkers —
// actuation-deadline and failover-latency — at the given bounds (<= 0
// picks the defaults). They complement DefaultInvariants: safety
// checkers prove nothing wrong happened, timing checkers prove the right
// things happened soon enough.
func TimingInvariants(actuationBound, failoverBound time.Duration) []InvariantChecker {
	return []InvariantChecker{
		NewActuationDeadlineInvariant(actuationBound),
		NewFailoverLatencyInvariant(failoverBound),
	}
}
