package evm

import (
	"math"
	"testing"
	"time"
)

func TestChillerLoopHoldsTemperature(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(120 * time.Second)
	temp := s.Plant.LTSTempC()
	if math.Abs(temp-(-20)) > 2 {
		t.Fatalf("chiller loop settled at %.2fC, want ~-20C", temp)
	}
	// The chiller task is mastered by Ctrl-B.
	if id, _ := s.Cell.Node(GasHeadID).Head().ActiveNode(ChillerTaskID); id != GasCtrlBID {
		t.Fatalf("chiller master = %v, want Ctrl-B", id)
	}
}

func TestChillerLoopRejectsFeedDisturbance(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(120 * time.Second)
	s.Plant.DisturbFeedTemp(15) // feed heats up by 15C
	s.Run(180 * time.Second)
	temp := s.Plant.LTSTempC()
	if math.Abs(temp-(-20)) > 3 {
		t.Fatalf("after +15C feed disturbance temp = %.2fC, want pulled back near -20C", temp)
	}
}

func TestChillerFailoverIndependentOfLTS(t *testing.T) {
	// Faulting the chiller master (Ctrl-B) moves only the chiller task;
	// the LTS loop stays on Ctrl-A.
	cfg := DefaultGasPlantConfig()
	cfg.DeviationWindow = 8
	s := newGasPlant(t, cfg)
	s.Run(60 * time.Second)
	s.Cell.Node(GasCtrlBID).InjectComputeFault(ChillerTaskID, 0) // refrigeration off
	s.Run(60 * time.Second)
	head := s.Cell.Node(GasHeadID).Head()
	if id, _ := head.ActiveNode(ChillerTaskID); id != GasCtrlAID {
		t.Fatalf("chiller master = %v after fault, want Ctrl-A", id)
	}
	if id, _ := head.ActiveNode(LTSTaskID); id != GasCtrlAID {
		t.Fatalf("LTS master disturbed: %v", id)
	}
	// Temperature recovers under the new master.
	s.Run(120 * time.Second)
	if math.Abs(s.Plant.LTSTempC()-(-20)) > 3 {
		t.Fatalf("temperature %.2fC did not recover after chiller failover", s.Plant.LTSTempC())
	}
}

func TestReboilLoopHoldsComposition(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(300 * time.Second)
	c3 := s.Plant.BottomsC3()
	if math.Abs(c3-0.024) > 0.004 {
		t.Fatalf("bottoms C3 settled at %.4f, want ~0.024", c3)
	}
	if id, _ := s.Cell.Node(GasHeadID).Head().ActiveNode(ReboilTaskID); id != GasSensorID {
		t.Fatalf("reboil master = %v, want node 5", id)
	}
}

func TestReboilLoopRejectsFeedCompositionShift(t *testing.T) {
	// Heavier feed (+C3): the loop must raise the average reboil duty
	// and pull the bottoms composition back to spec. Point samples hunt
	// with the tower-feed oscillation, so compare window averages.
	s := newGasPlant(t, DefaultGasPlantConfig())
	avgDuty := func(window time.Duration) float64 {
		var sum float64
		n := 0
		for elapsed := time.Duration(0); elapsed < window; elapsed += 10 * time.Second {
			s.Run(10 * time.Second)
			sum += s.Plant.ReboilDutyPct()
			n++
		}
		return sum / float64(n)
	}
	s.Run(200 * time.Second)
	before := avgDuty(200 * time.Second)
	s.Plant.DisturbFeedC3(0.10)
	s.Run(200 * time.Second) // settle
	after := avgDuty(200 * time.Second)
	if after <= before+5 {
		t.Fatalf("avg reboil duty %.1f did not clearly rise after heavier feed (was %.1f)", after, before)
	}
	if c3 := s.Plant.BottomsC3(); math.Abs(c3-0.024) > 0.006 {
		t.Fatalf("bottoms C3 = %.4f after disturbance, want pulled near 0.024", c3)
	}
}

func TestAllThreeLoopsIndependentMasters(t *testing.T) {
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(30 * time.Second)
	head := s.Cell.Node(GasHeadID).Head()
	want := map[string]NodeID{
		LTSTaskID:     GasCtrlAID,
		ChillerTaskID: GasCtrlBID,
		ReboilTaskID:  GasSensorID,
	}
	for task, node := range want {
		if got, _ := head.ActiveNode(task); got != node {
			t.Fatalf("%s master = %v, want %v", task, got, node)
		}
	}
	if head.Stats().Failovers != 0 {
		t.Fatalf("%d spurious failovers with 3 loops", head.Stats().Failovers)
	}
}

func TestOverTheAirReprogramming(t *testing.T) {
	// A new capsule shipped to a live node replaces its control law
	// after attestation; a planned promotion activates it.
	v1, err := AssembleCapsule("loop", 1, "PUSHQ 50.0\nIN 0\nSUB\nPUSHQ 2.0\nMULQ\nOUT 0\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AssembleCapsule("loop", 2, "PUSHQ 70.0\nIN 0\nSUB\nPUSHQ 3.0\nMULQ\nOUT 0\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := NewCell(CellConfig{Seed: 5, PerfectChannel: true}, []NodeID{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	vc := VCConfig{
		Name: "ota", Head: 4, Gateway: 1,
		Tasks: []TaskSpec{{
			ID: "loop", SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []NodeID{2, 3},
			DeviationTol: 100, DeviationWindow: 8, SilenceWindow: 8,
			MakeLogic: func() (TaskLogic, error) { return NewVMLogic(v1) },
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		t.Fatal(err)
	}
	feed, err := cell.StartSensorFeed(1, 250*time.Millisecond, func() []SensorReading {
		return []SensorReading{{Port: 0, Value: 40}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	cell.Run(5 * time.Second)
	if out, _ := cell.Node(2).LastOutput("loop"); math.Abs(out-20) > 0.1 {
		t.Fatalf("v1 output = %f, want 20", out)
	}
	if err := cell.Node(2).DeployCapsule(v2, 3); err != nil {
		t.Fatal(err)
	}
	cell.Run(5 * time.Second)
	if out, _ := cell.Node(3).LastOutput("loop"); math.Abs(out-90) > 0.1 {
		t.Fatalf("v2 output = %f, want 90", out)
	}
	cell.Node(4).Head().Promote("loop", 3, 2)
	cell.Run(3 * time.Second)
	if id, _ := cell.Node(4).Head().ActiveNode("loop"); id != 3 {
		t.Fatalf("active = %v after planned promotion", id)
	}
	// Unknown task rejected.
	bad := v2
	bad.TaskID = "nope"
	if err := cell.Node(2).DeployCapsule(bad, 3); err == nil {
		t.Fatal("capsule for unknown task accepted")
	}
}

func TestBothLoopsSurviveDoubleRoleLoad(t *testing.T) {
	// Crash Ctrl-A: Ctrl-B ends up mastering BOTH loops; with 3 slots per
	// node the cell must sustain two actuations + health per cycle.
	s := newGasPlant(t, DefaultGasPlantConfig())
	s.Run(60 * time.Second)
	s.CrashPrimary()
	s.Run(60 * time.Second)
	head := s.Cell.Node(GasHeadID).Head()
	lts, _ := head.ActiveNode(LTSTaskID)
	ch, _ := head.ActiveNode(ChillerTaskID)
	if lts != GasCtrlBID || ch != GasCtrlBID {
		t.Fatalf("masters after crash: lts=%v chiller=%v, want both Ctrl-B", lts, ch)
	}
	// Both loops still controlled: level and temperature in band.
	s.Run(120 * time.Second)
	if l := s.Plant.LTSLevelPct(); l < 35 || l > 65 {
		t.Fatalf("level %.1f out of band under double load", l)
	}
	if tc := s.Plant.LTSTempC(); math.Abs(tc-(-20)) > 3 {
		t.Fatalf("temperature %.1f out of band under double load", tc)
	}
	// The link queue must not be growing (slot budget suffices).
	if q := s.Cell.Network().Link(GasCtrlBID).QueueLen(); q > 6 {
		t.Fatalf("Ctrl-B queue backlog %d — slot budget insufficient", q)
	}
}
