package evm

import (
	"fmt"
	"sort"
	"sync"

	"evm/internal/bqp"
)

// Built-in placement policy names for RunSpec.Policy and
// NewPlacementPolicy.
const (
	PolicyLeastLoaded = "least-loaded"
	PolicyCampusBQP   = "campus-bqp"
	PolicyAffinity    = "affinity"
)

// NodeLoad is one live runtime's entry in a CellCondition, so policies
// can pre-pick the host node, not just the cell. The built-in policies
// ignore it (the coordinator picks the host after the cell decision);
// custom policies can use it to weigh intra-cell balance.
type NodeLoad struct {
	// Node is the runtime's ID inside its cell.
	Node NodeID
	// Replicas counts the task replicas currently installed on the node.
	Replicas int
	// Eligible marks the node able to take the request's task (live and
	// not already holding a replica of it).
	Eligible bool
	// Head marks the cell's configured head (host of last resort).
	Head bool
}

// CellCondition is one cell's entry in a placement or rebalance request:
// the coordinator's deterministic snapshot of the cell's load, capacity
// and backbone distance at decision time.
type CellCondition struct {
	// Index is the cell's position in campus declaration order.
	Index int
	// Name is the cell name.
	Name string
	// Placed counts the tasks the coordinator currently places in the
	// cell, including transfers already in flight toward it.
	Placed int
	// EligibleHosts is the number of live runtimes able to take the task
	// (alive and not already holding a replica of it).
	EligibleHosts int
	// Utilization is the total CPU utilization demand of the tasks
	// placed in the cell.
	Utilization float64
	// Capacity is the total CPU capacity of the cell's live runtimes.
	Capacity float64
	// Hops is the backbone hop count from the cell the task currently
	// occupies; -1 means the backbone has no route.
	Hops int
	// Origin marks the task's declared home cell.
	Origin bool
	// Nodes snapshots the cell's live runtimes in member order: per-node
	// replica counts and task eligibility, for policies that pre-pick
	// the host.
	Nodes []NodeLoad
}

// PlacementRequest asks a PlacementPolicy to pick the destination cell
// for one stranded task. Cells lists every cell except the one the task
// is stranded in, in campus declaration order.
type PlacementRequest struct {
	// Task is the stranded task's spec.
	Task TaskSpec
	// Key is the coordinator placement key ("<origin-cell>/<task-id>").
	Key string
	// Origin and From are campus cell indices: where the task was
	// declared and where it is stranded now.
	Origin int
	From   int
	// Cells are the candidate destinations (every cell but From).
	Cells []CellCondition
	// Displaced lists every other task currently placed outside its
	// origin cell (or in flight), sorted by Key — context for policies
	// that reoptimize the whole campus assignment.
	Displaced []DisplacedTask
}

// DisplacedTask is one task running outside its origin cell, as seen by
// a placement policy.
type DisplacedTask struct {
	Key string
	// Cell is the index of the cell currently hosting the task (the
	// transfer destination if a move is in flight).
	Cell int
	// Util is the task's CPU utilization demand.
	Util float64
}

// PlacementPolicy decides which cell hosts a task the federation
// coordinator escalates across the backbone. Implementations must be
// deterministic — equal requests must produce equal picks — and must
// only return cells with EligibleHosts > 0 and Hops >= 0; the
// coordinator re-validates the pick and drops invalid ones (the task
// retries next tick).
type PlacementPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// PickCell returns the destination cell index, or false when no
	// listed cell should (or can) take the task.
	PickCell(req PlacementRequest) (int, bool)
}

// RebalanceRequest asks a RebalancePolicy whether a task displaced from
// its origin cell should migrate home now that the origin is healthy
// again.
type RebalanceRequest struct {
	Task TaskSpec
	Key  string
	// Origin describes the recovered home cell; Host the cell currently
	// running the task. Origin.Hops is measured from the host cell.
	Origin CellCondition
	Host   CellCondition
}

// RebalancePolicy is the federation coordinator's cell-recovery hook:
// every coordinator tick, each foreign task whose origin cell is healthy
// (live head, reachable, with an eligible host) is offered to the
// policy; an accepted task is checkpointed, shipped home over the
// backbone and re-activated by the origin cell's head, and the foreign
// replicas are retired. A nil policy keeps PR-2 behavior: recovered
// cells never get their tasks back.
type RebalancePolicy interface {
	Name() string
	// Rehome reports whether the task should migrate back to its origin.
	Rehome(req RebalanceRequest) bool
}

// HomewardRebalance migrates every foreign task home as soon as its
// origin cell is healthy again.
type HomewardRebalance struct{}

// Name implements RebalancePolicy.
func (HomewardRebalance) Name() string { return "homeward" }

// Rehome implements RebalancePolicy.
func (HomewardRebalance) Rehome(RebalanceRequest) bool { return true }

// viable reports whether a cell can take the task at all.
func (c CellCondition) viable() bool { return c.EligibleHosts > 0 && c.Hops >= 0 }

// LeastLoadedPolicy picks the live cell carrying the fewest tasks
// (counting transfers in flight), lowest index on ties — the campus
// default, byte-identical to the pre-policy coordinator.
type LeastLoadedPolicy struct{}

// Name implements PlacementPolicy.
func (LeastLoadedPolicy) Name() string { return PolicyLeastLoaded }

// PickCell implements PlacementPolicy.
func (LeastLoadedPolicy) PickCell(req PlacementRequest) (int, bool) {
	best, bestLoad, found := 0, 0, false
	for _, cc := range req.Cells {
		if !cc.viable() {
			continue
		}
		if !found || cc.Placed < bestLoad {
			best, bestLoad, found = cc.Index, cc.Placed, true
		}
	}
	return best, found
}

// AffinityPolicy is sticky-home with spillover: a task goes back to its
// origin cell whenever the origin can host it; otherwise it spills to
// the nearest cell by backbone hops, fewest placed tasks then lowest
// index on ties.
type AffinityPolicy struct{}

// Name implements PlacementPolicy.
func (AffinityPolicy) Name() string { return PolicyAffinity }

// PickCell implements PlacementPolicy.
func (AffinityPolicy) PickCell(req PlacementRequest) (int, bool) {
	for _, cc := range req.Cells {
		if cc.Origin && cc.viable() {
			return cc.Index, true
		}
	}
	best := CellCondition{}
	found := false
	for _, cc := range req.Cells {
		if !cc.viable() {
			continue
		}
		better := !found ||
			cc.Hops < best.Hops ||
			(cc.Hops == best.Hops && cc.Placed < best.Placed)
		if better {
			best, found = cc, true
		}
	}
	return best.Index, found
}

// CampusBQPPolicy reoptimizes task placement across cells with the
// internal BQP solver (the paper's §3.1.1 op 7 lifted to campus scope):
// cells are the assignment targets, every displaced task is a variable,
// placement cost combines backbone distance with cell load, cell CPU
// capacity bounds total placed utilization, and a pairwise penalty
// spreads displaced tasks. The deterministic greedy solver keeps equal
// seeds reproducing equal campuses; infeasible instances fall back to
// least-loaded.
type CampusBQPPolicy struct{}

// Name implements PlacementPolicy.
func (CampusBQPPolicy) Name() string { return PolicyCampusBQP }

// hopCostWeight prices one backbone hop in units of placed tasks: a
// two-hop destination must be at least eight tasks lighter than an
// adjacent one before the solver prefers it.
const hopCostWeight = 8

// PickCell implements PlacementPolicy.
func (CampusBQPPolicy) PickCell(req PlacementRequest) (int, bool) {
	var cells []CellCondition
	for _, cc := range req.Cells {
		if cc.viable() {
			cells = append(cells, cc)
		}
	}
	if len(cells) == 0 {
		return 0, false
	}
	nTasks := len(req.Displaced) + 1
	self := nTasks - 1
	p := &bqp.Problem{
		Cost: make([][]float64, nTasks),
		Pair: make([][]float64, nTasks),
		Util: make([]float64, nTasks),
		Cap:  make([]float64, len(cells)),
	}
	// Capacity left after the cell's settled (non-displaced) load; the
	// displaced tasks re-enter as variables.
	for ni, cc := range cells {
		settled := cc.Utilization
		for _, d := range req.Displaced {
			if d.Cell == cc.Index {
				settled -= d.Util
			}
		}
		if settled < 0 {
			settled = 0
		}
		p.Cap[ni] = cc.Capacity - settled
	}
	for ti := 0; ti < nTasks; ti++ {
		p.Cost[ti] = make([]float64, len(cells))
		p.Pair[ti] = make([]float64, nTasks)
	}
	for ti, d := range req.Displaced {
		p.Util[ti] = d.Util
		for ni, cc := range cells {
			// Keeping a displaced task where it is costs nothing; the
			// solver may propose moving it, but only the stranded task's
			// assignment is executed here.
			if cc.Index == d.Cell {
				p.Cost[ti][ni] = 0
			} else {
				p.Cost[ti][ni] = 40
			}
		}
	}
	p.Util[self] = req.Task.RTOSTask().Utilization()
	for ni, cc := range cells {
		p.Cost[self][ni] = float64(hopCostWeight*cc.Hops) + float64(cc.Placed)
	}
	for ti := 0; ti < nTasks; ti++ {
		for tj := ti + 1; tj < nTasks; tj++ {
			p.Pair[ti][tj] = 0.25
			p.Pair[tj][ti] = 0.25
		}
	}
	sol, err := bqp.SolveGreedy(p)
	if err != nil {
		return LeastLoadedPolicy{}.PickCell(req)
	}
	return cells[sol.Assign[self]].Index, true
}

// --- policy registry ----------------------------------------------------------

var policyRegistry = struct {
	sync.RWMutex
	builders map[string]func() PlacementPolicy
}{builders: make(map[string]func() PlacementPolicy)}

// RegisterPlacementPolicy adds a named placement policy to the global
// registry, making it addressable from RunSpec.Policy.
func RegisterPlacementPolicy(name string, build func() PlacementPolicy) error {
	if name == "" || build == nil {
		return fmt.Errorf("evm: placement policy needs a name and a builder")
	}
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	if _, dup := policyRegistry.builders[name]; dup {
		return fmt.Errorf("evm: placement policy %q already registered", name)
	}
	policyRegistry.builders[name] = build
	return nil
}

// MustRegisterPlacementPolicy is RegisterPlacementPolicy that panics on
// error — for package init blocks.
func MustRegisterPlacementPolicy(name string, build func() PlacementPolicy) {
	if err := RegisterPlacementPolicy(name, build); err != nil {
		panic(err)
	}
}

// PlacementPolicies lists the registered policy names, sorted.
func PlacementPolicies() []string {
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	out := make([]string, 0, len(policyRegistry.builders))
	for name := range policyRegistry.builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPlacementPolicy instantiates a registered policy by name. The empty
// name returns the campus default (least-loaded).
func NewPlacementPolicy(name string) (PlacementPolicy, error) {
	if name == "" {
		return LeastLoadedPolicy{}, nil
	}
	policyRegistry.RLock()
	build := policyRegistry.builders[name]
	policyRegistry.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("evm: unknown placement policy %q (registered: %v)", name, PlacementPolicies())
	}
	return build(), nil
}

func init() {
	MustRegisterPlacementPolicy(PolicyLeastLoaded, func() PlacementPolicy { return LeastLoadedPolicy{} })
	MustRegisterPlacementPolicy(PolicyCampusBQP, func() PlacementPolicy { return CampusBQPPolicy{} })
	MustRegisterPlacementPolicy(PolicyAffinity, func() PlacementPolicy { return AffinityPolicy{} })
}
