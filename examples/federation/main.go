// Command federation demonstrates the multi-cell campus: two TDMA cells
// bridged by a backbone, each running its own Virtual Component on a
// shared virtual timeline. At t=10s every radio in cell "west" crashes —
// a whole-cell outage that no in-cell fail-over can absorb. The campus
// coordinator detects the stranded control loop, ships its checkpointed
// state over the backbone and re-deploys it in cell "east", where it
// resumes actuating with state continuity.
//
// Everything is observable on the merged campus event stream: cell
// events arrive wrapped in CellEvent, and the federation publishes
// CellOverloadEvent, BackboneEvent and InterCellMigrationEvent.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"evm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// unit declares one cell: gateway 1, head 2, a primary/backup loop on
// nodes 3/4, spares 5/6, and a synthetic sensor feed.
func unit(name, taskID string) evm.CellSpec {
	return evm.CellSpec{
		Name: name,
		Options: []evm.CellOption{
			evm.WithNodeCount(6),
			evm.WithPlacement(evm.Grid(3, 2)),
			evm.WithSlotsPerNode(3),
			evm.WithPER(0),
		},
		VC: evm.VCConfig{
			Name: name, Head: 2, Gateway: 1,
			Tasks: []evm.TaskSpec{{
				ID:              taskID,
				SensorPort:      0,
				ActuatorPort:    10,
				Period:          250 * time.Millisecond,
				WCET:            5 * time.Millisecond,
				Candidates:      []evm.NodeID{3, 4},
				DeviationTol:    5,
				DeviationWindow: 4,
				SilenceWindow:   8,
				MakeLogic: func() (evm.TaskLogic, error) {
					return evm.NewPIDLogic(evm.PIDParams{
						Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
						Setpoint: 50, CutoffHz: 0.4, RateHz: 4,
					})
				},
			}},
			DormantAfter: 5 * time.Second,
		},
		Feed: &evm.FeedSpec{
			Source: 1,
			Period: 250 * time.Millisecond,
			Sample: func() []evm.SensorReading {
				return []evm.SensorReading{{Port: 0, Value: 50}}
			},
		},
	}
}

func run() error {
	campus, err := evm.NewCampus(evm.CampusConfig{Seed: 7},
		unit("west", "west-loop"),
		unit("east", "east-loop"))
	if err != nil {
		return err
	}
	defer campus.Stop()

	// The merged campus stream: cell events tagged by name, federation
	// events flat.
	campus.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.CellOverloadEvent:
			fmt.Printf("[%8v] overload: cell %s (%s), stranded %v\n", e.At, e.Cell, e.Reason, e.Tasks)
		case evm.BackboneEvent:
			fmt.Printf("[%8v] backbone: %s %s -> %s (%dB)\n", e.At, e.Kind, e.From, e.To, e.Bytes)
		case evm.InterCellMigrationEvent:
			fmt.Printf("[%8v] intercell: task %q %s/%v -> %s/%v\n",
				e.At, e.Task, e.FromCell, e.From, e.ToCell, e.To)
		}
	})

	// Kill the whole west cell at t=10s: gateway, head, both candidates.
	kill := evm.KillCellPlan(10*time.Second, campus.Cell("west"))
	if err := campus.ApplyFaultPlan("west", kill); err != nil {
		return err
	}

	fmt.Println("running 30s: 10s steady state, then cell west dies wholesale...")
	campus.Run(30 * time.Second)

	placements := campus.TaskPlacements()
	keys := make([]string, 0, len(placements))
	for key := range placements {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		p := placements[key]
		fmt.Printf("placement %-16s -> cell %s node %v (foreign=%v)\n", key, p.Cell, p.Node, p.Foreign)
	}
	bb := campus.Backbone().Stats()
	fmt.Printf("backbone: %d sent, %d delivered, %d dropped\n", bb.Sent, bb.Delivered, bb.Dropped)
	return nil
}
