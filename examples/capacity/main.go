// Command capacity demonstrates on-line capacity expansion (paper §4.2
// objective 2: "more controllers can be added to share the load and
// trigger re-distribution of tasks"): a new node joins the Virtual
// Component at runtime, receives the running task's state by migration,
// and the head's BQP re-optimization redistributes masters.
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

const (
	gwNode  evm.NodeID = 1
	ctrl1   evm.NodeID = 2
	ctrl2   evm.NodeID = 3
	headN   evm.NodeID = 4
	newNode evm.NodeID = 9
)

func task(id string, sensor, actuator uint8, primary, backup evm.NodeID) evm.TaskSpec {
	return evm.TaskSpec{
		ID:              id,
		SensorPort:      sensor,
		ActuatorPort:    actuator,
		Period:          250 * time.Millisecond,
		WCET:            40 * time.Millisecond,
		Candidates:      []evm.NodeID{primary, backup},
		DeviationTol:    5,
		DeviationWindow: 4,
		SilenceWindow:   8,
		MakeLogic: func() (evm.TaskLogic, error) {
			return evm.NewPIDLogic(evm.PIDParams{
				Kp: 2, Ki: 0.3, OutMin: 0, OutMax: 100,
				Setpoint: 50, CutoffHz: 0.4, RateHz: 4,
			})
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 11},
		evm.WithNodes(gwNode, ctrl1, ctrl2, headN),
		evm.WithPER(0))
	if err != nil {
		return err
	}
	// Watch the admission and the state transfer on the typed event bus.
	cell.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.JoinEvent:
			fmt.Printf("[%8v] head admitted node %v\n", e.At, e.Node)
		case evm.MigrationEvent:
			fmt.Printf("[%8v] task %q migrated %v -> %v\n", e.At, e.Task, e.From, e.To)
		case evm.FailoverEvent:
			fmt.Printf("[%8v] master switch: %q %v -> %v\n", e.At, e.Task, e.From, e.To)
		}
	})
	vc := evm.VCConfig{
		Name:    "capacity",
		Head:    headN,
		Gateway: gwNode,
		Tasks: []evm.TaskSpec{
			task("loop-a", 0, 1, ctrl1, ctrl2),
			task("loop-b", 1, 2, ctrl2, ctrl1),
		},
	}
	if err := cell.Deploy(vc); err != nil {
		return err
	}
	feed, err := cell.StartSensorFeed(gwNode, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 49}, {Port: 1, Value: 51}}
	})
	if err != nil {
		return err
	}
	defer feed.Stop()

	head := cell.Node(headN).Head()
	fmt.Println("running with 2 controllers...")
	cell.Run(10 * time.Second)
	fmt.Printf("members: %v\n", head.Members())

	fmt.Printf("admitting node %v at runtime...\n", newNode)
	added, err := cell.AddNodeRuntime(newNode, vc)
	if err != nil {
		return err
	}
	cell.Run(5 * time.Second)
	fmt.Printf("members after join: %v (joins seen by head: %d)\n",
		head.Members(), head.Stats().Joins)

	fmt.Println("migrating loop-a replica to the new node...")
	if err := cell.Node(ctrl1).MigrateTask("loop-a", newNode); err != nil {
		return err
	}
	cell.Run(5 * time.Second)
	fmt.Printf("new node: migrations-in=%d role(loop-a)=%v\n",
		added.Stats().MigrationsIn, added.Role("loop-a"))

	moved := head.Reoptimize(cell.RNG())
	cell.Run(5 * time.Second)
	fmt.Printf("BQP re-optimization moved %d masters\n", moved)
	for _, id := range []string{"loop-a", "loop-b"} {
		if n, ok := head.ActiveNode(id); ok {
			fmt.Printf("  %s -> %v\n", id, n)
		}
	}
	cell.Stop()
	return nil
}
