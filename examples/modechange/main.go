// Command modechange demonstrates planned reconfiguration (paper §1:
// "the assembly line stations can adapt to a schedule where every 3
// Camrys are interleaved with 2 Prius' with synchronized changes in
// operation modes"): two control tasks model a red-unit and a blue-unit
// station; the head switches the Virtual Component between modes at TDMA
// frame boundaries, and only the mode's task actuates.
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

const (
	feeder  evm.NodeID = 1
	station evm.NodeID = 2
	spare   evm.NodeID = 3
	headN   evm.NodeID = 4
)

func spec(id string, actuator uint8) evm.TaskSpec {
	return evm.TaskSpec{
		ID:              id,
		SensorPort:      0,
		ActuatorPort:    actuator,
		Period:          250 * time.Millisecond,
		WCET:            5 * time.Millisecond,
		Candidates:      []evm.NodeID{station, spare},
		DeviationTol:    5,
		DeviationWindow: 4,
		SilenceWindow:   8,
		MakeLogic: func() (evm.TaskLogic, error) {
			return evm.NewPIDLogic(evm.PIDParams{
				Kp: 1, Ki: 0.2, OutMin: 0, OutMax: 100,
				Setpoint: 50, CutoffHz: 0.4, RateHz: 4,
			})
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The four nodes sit on a 2x2 grid — any placement works for a
	// single-hop cell; the option form makes the topology explicit data.
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 3},
		evm.WithNodes(feeder, station, spare, headN),
		evm.WithPlacement(evm.Grid(2, 2)),
		evm.WithPER(0))
	if err != nil {
		return err
	}
	vc := evm.VCConfig{
		Name:    "assembly-line",
		Head:    headN,
		Gateway: feeder,
		Tasks:   []evm.TaskSpec{spec("red-station", 1), spec("blue-station", 2)},
	}
	if err := cell.Deploy(vc); err != nil {
		return err
	}
	// Mode 1 builds red units, mode 2 blue units.
	for _, n := range cell.Nodes() {
		n.SetModeTasks(1, []string{"red-station"})
		n.SetModeTasks(2, []string{"blue-station"})
	}
	feed, err := cell.StartSensorFeed(feeder, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 48}}
	})
	if err != nil {
		return err
	}
	defer feed.Stop()

	head := cell.Node(headN).Head()
	report := func(tag string) {
		st := cell.Node(station).Stats()
		fmt.Printf("[%8v] %-22s mode=%d cycles=%d actuations=%d\n",
			cell.Now(), tag, cell.Node(station).Mode(), st.CyclesRun, st.ActuationsSent)
	}

	// The schedule: 3 red batches interleaved with 2 blue batches.
	for batch := 0; batch < 5; batch++ {
		mode := uint8(1)
		name := "red batch"
		if batch%2 == 1 {
			mode = 2
			name = "blue batch"
		}
		head.SetMode(mode, 2) // synchronized switch 2 frames out
		cell.Run(5 * time.Second)
		report(name)
	}
	cell.Stop()
	return nil
}
