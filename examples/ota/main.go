// Command ota demonstrates over-the-air reprogramming: a live Virtual
// Component receives a brand-new control-law capsule (different gain and
// setpoint), the target node attests and admits it, and the head
// activates the new code — "runtime programmable WSAC networks allow for
// flexible item-by-item process customization" (paper §1).
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

const (
	feeder evm.NodeID = 1
	ctrl1  evm.NodeID = 2
	ctrl2  evm.NodeID = 3
	headID evm.NodeID = 4
	taskID            = "loop"
)

// v1 is the initially-deployed control law: out = 2*(50 - in), direct
// acting around setpoint 50.
const v1Source = `
	PUSHQ 50.0
	IN 0
	SUB
	PUSHQ 2.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// v2 retunes the law at runtime: setpoint 70, gain 3.
const v2Source = `
	PUSHQ 70.0
	IN 0
	SUB
	PUSHQ 3.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	v1, err := evm.AssembleCapsule(taskID, 1, v1Source)
	if err != nil {
		return err
	}
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 5},
		evm.WithNodes(feeder, ctrl1, ctrl2, headID),
		evm.WithPER(0))
	if err != nil {
		return err
	}
	// The capsule hand-off is visible on the event bus.
	cell.Events().Subscribe(func(ev evm.Event) {
		if e, ok := ev.(evm.MigrationEvent); ok {
			fmt.Printf("[%8v] state for %q arrived on %v (from %v)\n", e.At, e.Task, e.To, e.From)
		}
	})
	vc := evm.VCConfig{
		Name: "ota", Head: headID, Gateway: feeder,
		Tasks: []evm.TaskSpec{{
			ID: taskID, SensorPort: 0, ActuatorPort: 1,
			Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
			Candidates:   []evm.NodeID{ctrl1, ctrl2},
			DeviationTol: 50, DeviationWindow: 8, SilenceWindow: 8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return evm.NewVMLogic(v1)
			},
		}},
	}
	if err := cell.Deploy(vc); err != nil {
		return err
	}
	feed, err := cell.StartSensorFeed(feeder, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 40}}
	})
	if err != nil {
		return err
	}
	defer feed.Stop()

	cell.Run(5 * time.Second)
	out, _ := cell.Node(ctrl1).LastOutput(taskID)
	fmt.Printf("v1 law on %v: output %.1f (2x(50-40))\n", ctrl1, out)

	// Assemble the retuned law and ship it over the air to the backup.
	v2, err := evm.AssembleCapsule(taskID, 2, v2Source)
	if err != nil {
		return err
	}
	fmt.Printf("deploying v2 capsule (%d bytes) over the air to %v...\n", len(v2.Code), ctrl2)
	if err := cell.Node(ctrl1).DeployCapsule(v2, ctrl2); err != nil {
		return err
	}
	cell.Run(5 * time.Second)
	out2, _ := cell.Node(ctrl2).LastOutput(taskID)
	fmt.Printf("v2 law on %v: output %.1f (3x(70-40))\n", ctrl2, out2)

	// Activate the new code: the head promotes the reprogrammed node.
	cell.Node(headID).Head().CommandMigration(taskID, ctrl1, ctrl2) // state follows code
	cell.Run(2 * time.Second)
	promote(cell)
	cell.Run(5 * time.Second)
	fmt.Printf("active controller now %v running capsule v2\n", activeOf(cell))
	cell.Stop()
	return nil
}

func promote(cell *evm.Cell) {
	// The head arbitrates the switch exactly as in a fail-over, but here
	// it is an operator-planned activation.
	cell.Node(headID).Head().Promote(taskID, ctrl2, ctrl1)
}

func activeOf(cell *evm.Cell) evm.NodeID {
	id, _ := cell.Node(headID).Head().ActiveNode(taskID)
	return id
}
