// Command ota demonstrates the over-the-air reprogramming subsystem: a
// two-cell campus registers versioned control-law capsules in a
// CapsuleStore, rolls v2 out campus-wide with a staged canary strategy
// (attest/stage on every replica, then an atomic per-cell activation,
// then a health window), and finally seeds a deliberately bad v3 whose
// health window trips an automatic rollback — "runtime programmable
// WSAC networks allow for flexible item-by-item process customization"
// (paper §1), now as a fault-tolerant campus operation.
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

// v1 is the deployed control law: out = 2 x (50 - in).
const v1Source = `
	PUSHQ 50.0
	IN 0
	SUB
	PUSHQ 2.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// v2 retunes the law over the air: setpoint 70, gain 3.
const v2Source = `
	PUSHQ 70.0
	IN 0
	SUB
	PUSHQ 3.0
	MULQ
	PUSH 0
	MAX
	PUSHQ 100.0
	MIN
	OUT 0
	HALT`

// v3 is the bad batch: it attests and instantiates cleanly but never
// writes an actuator command, so the task falls silent the moment it
// activates.
const v3Source = `
	IN 0
	DROP
	HALT`

// unit declares one six-node cell (gateway 1, head 2, loop candidates
// 3/4) running taskID on the v1 capsule.
func unit(name, taskID string) evm.CellSpec {
	return evm.CellSpec{
		Name: name,
		Options: []evm.CellOption{
			evm.WithNodeCount(6),
			evm.WithPlacement(evm.Grid(3, 2)),
			evm.WithSlotsPerNode(3),
			evm.WithPER(0),
		},
		VC: evm.VCConfig{
			Name: name, Head: 2, Gateway: 1,
			Tasks: []evm.TaskSpec{{
				ID: taskID, SensorPort: 0, ActuatorPort: 10,
				Period: 250 * time.Millisecond, WCET: 5 * time.Millisecond,
				Candidates:   []evm.NodeID{3, 4},
				DeviationTol: 5, DeviationWindow: 4, SilenceWindow: 8,
				MakeLogic: func() (evm.TaskLogic, error) {
					c, err := evm.AssembleCapsule(taskID, 1, v1Source)
					if err != nil {
						return nil, err
					}
					return evm.NewVMLogic(c)
				},
			}},
			DormantAfter: 5 * time.Second,
		},
		Feed: &evm.FeedSpec{
			Source: 1,
			Period: 250 * time.Millisecond,
			Sample: func() []evm.SensorReading {
				return []evm.SensorReading{{Port: 0, Value: 40}}
			},
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tasks := []string{"north-loop", "south-loop"}

	// The versioned capsule store: v1 (deployed) and v2 (the retune) for
	// both loops. Registration validates encoding; the store keeps the
	// attestation checksum the receiving nodes verify on delivery.
	store := evm.NewCapsuleStore()
	for _, task := range tasks {
		for v, src := range map[uint8]string{1: v1Source, 2: v2Source} {
			c, err := evm.AssembleCapsule(task, v, src)
			if err != nil {
				return err
			}
			if err := store.Register(c); err != nil {
				return err
			}
		}
	}

	campus, err := evm.NewCampus(
		evm.CampusConfig{Seed: 5, Capsules: store},
		unit("north", "north-loop"), unit("south", "south-loop"))
	if err != nil {
		return err
	}
	defer campus.Stop()

	// The whole rollout is visible on the campus event bus.
	campus.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.RolloutEvent:
			fmt.Printf("[%8v] rollout %-9s stage=%d cells=%v %s\n", e.At, e.Phase, e.Stage, e.Cells, e.Reason)
		case evm.CapsuleDeliveryEvent:
			fmt.Printf("[%8v]   capsule v%d -> %s/%d (task %s, attested)\n", e.At, e.Version, e.Cell, e.Node, e.Task)
		case evm.RollbackEvent:
			fmt.Printf("[%8v] ROLLBACK %s v%d -> v%d: %s\n", e.At, e.Task, e.FromVersion, e.ToVersion, e.Reason)
		}
	})

	campus.Run(5 * time.Second)
	north := campus.Cell("north").Node(3)
	out, _ := north.LastOutput("north-loop")
	fmt.Printf("v1 law active: output %.1f (2 x (50-40))\n\n", out)

	// Campus-wide staged rollout to v2: the canary cell upgrades first,
	// passes its health window, then the rest follow. Each cell's
	// replicas attest + stage the capsule, and swap versions at one
	// commit instant — a task's master and backups never run mixed
	// versions.
	rollout, err := campus.StartRollout(evm.RolloutSpec{
		Tasks:    tasks,
		Version:  2,
		Strategy: evm.RolloutCanaryCell,
	})
	if err != nil {
		return err
	}
	campus.Run(10 * time.Second)
	out, _ = north.LastOutput("north-loop")
	fmt.Printf("\nrollout %s; v2 law active: output %.1f (3 x (70-40))\n\n", rollout.State(), out)

	// The bad batch: v3 attests fine but never actuates. The health
	// window after activation trips missed-actuation and the subsystem
	// reverts the task to v2 automatically — state intact, the loop
	// resumes where v2 left off.
	bad, err := evm.AssembleCapsule("north-loop", 3, v3Source)
	if err != nil {
		return err
	}
	if err := campus.Capsules().Register(bad); err != nil {
		return err
	}
	badRollout, err := campus.StartRollout(evm.RolloutSpec{
		Tasks:          []string{"north-loop"},
		Version:        3,
		Strategy:       evm.RolloutAllAtOnce,
		HealthWindow:   1500 * time.Millisecond,
		ActuationBound: time.Second,
	})
	if err != nil {
		return err
	}
	campus.Run(10 * time.Second)
	out, _ = north.LastOutput("north-loop")
	v, _ := north.CapsuleVersion("north-loop")
	fmt.Printf("\nbad rollout %s (%s); loop back on v%d, output %.1f\n",
		badRollout.State(), badRollout.Reason(), v, out)
	return nil
}
