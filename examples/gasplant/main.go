// Command gasplant reruns the paper's hardware-in-loop case study
// (Fig. 5/6): the natural-gas plant is controlled over RT-Link by a
// primary/backup pair; the primary sticks the LTS valve at 75% instead of
// 11.48%, the backup detects the deviation and the Virtual Component
// switches masters. The Fig. 6(b) time series is written as CSV.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"evm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		faultAt = flag.Duration("fault", 300*time.Second, "fault injection time")
		horizon = flag.Duration("horizon", 1000*time.Second, "simulation horizon")
		window  = flag.Int("window", 1200, "deviation window in cycles (1200 = paper's ~300s)")
		csvPath = flag.String("csv", "", "write the Fig. 6(b) series to this CSV file")
	)
	flag.Parse()

	cfg := evm.DefaultGasPlantConfig()
	cfg.DeviationWindow = *window
	s, err := evm.NewGasPlant(cfg)
	if err != nil {
		return err
	}
	// Narrate the timeline from the typed event bus as it unfolds.
	s.Cell.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.FaultEvent:
			fmt.Printf("[%8v] fault: %s on node %v\n", e.At, e.Kind, e.Node)
		case evm.FailoverEvent:
			fmt.Printf("[%8v] failover: %q %v -> %v\n", e.At, e.Task, e.From, e.To)
		}
	})
	res, err := s.RunFig6(*faultAt, *horizon)
	if err != nil {
		return err
	}

	fmt.Println("=== Fig. 6(b) reproduction ===")
	fmt.Printf("fault injected        T1 = %v (valve stuck at 75%% vs nominal 11.48%%)\n", res.FaultAt)
	fmt.Printf("backup took over      T2 = %v (active controller now %v)\n", res.FailoverAt, s.ActiveController())
	fmt.Printf("LTS level             %.1f%% -> min %.1f%% -> %.1f%% at horizon\n",
		res.LevelBefore, res.LevelMin, res.LevelEnd)
	fmt.Printf("tower feed            nominal %.1f kmol/h, peak %.1f kmol/h during fault\n",
		res.FlowNominal, res.FlowPeak)
	fmt.Printf("gateway               %d sensor broadcasts, %d actuations, %d denied\n",
		s.GW.Stats().SensorBroadcasts, s.GW.Stats().ActuationsOK, s.GW.Stats().ActuationsDenied)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.Recorder().WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
	return nil
}
