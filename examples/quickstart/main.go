// Command quickstart is the smallest complete EVM program: a Virtual
// Component of two controller candidates plus a head, fed by a synthetic
// sensor. The primary develops a compute fault; the backup detects it by
// passive observation and the head fails the task over.
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

const (
	sensorNode evm.NodeID = 1
	primary    evm.NodeID = 2
	backup     evm.NodeID = 3
	headNode   evm.NodeID = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cell, err := evm.NewCell(evm.CellConfig{Seed: 7, PerfectChannel: true},
		[]evm.NodeID{sensorNode, primary, backup, headNode})
	if err != nil {
		return err
	}

	vc := evm.VCConfig{
		Name:    "quickstart",
		Head:    headNode,
		Gateway: sensorNode,
		Tasks: []evm.TaskSpec{{
			ID:              "loop",
			SensorPort:      0,
			ActuatorPort:    1,
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []evm.NodeID{primary, backup},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return evm.NewPIDLogic(evm.PIDParams{
					Kp: 2, Ki: 0.5,
					OutMin: 0, OutMax: 100,
					Setpoint: 50,
					CutoffHz: 0.4, RateHz: 4,
				})
			},
		}},
		DormantAfter: 5 * time.Second,
	}
	if err := cell.Deploy(vc); err != nil {
		return err
	}

	// Synthetic sensor: the measured value sits at the setpoint.
	feed, err := cell.StartSensorFeed(sensorNode, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		return err
	}
	defer feed.Stop()

	head := cell.Node(headNode).Head()
	head.OnFailover = func(task string, from, to evm.NodeID) {
		fmt.Printf("[%8v] failover: task %q moved %v -> %v\n", cell.Now(), task, from, to)
	}

	fmt.Println("running 10s of steady state...")
	cell.Run(10 * time.Second)
	fmt.Printf("[%8v] roles: primary=%v backup=%v\n",
		cell.Now(), cell.Node(primary).Role("loop"), cell.Node(backup).Role("loop"))

	fmt.Println("injecting a compute fault on the primary (it now outputs 75)")
	cell.Node(primary).InjectComputeFault("loop", 75)
	cell.Run(20 * time.Second)

	fmt.Printf("[%8v] roles: old-primary=%v new-primary=%v\n",
		cell.Now(), cell.Node(primary).Role("loop"), cell.Node(backup).Role("loop"))
	rep := evm.EvaluateQoS(vc, cell.Nodes())
	fmt.Printf("QoS: coverage %.0f%%, %d/%d tasks redundant\n",
		rep.CoverageRatio*100, rep.Redundant, rep.Tasks)
	cell.Stop()
	return nil
}
