// Command quickstart is the smallest complete EVM program: a Virtual
// Component of two controller candidates plus a head, fed by a synthetic
// sensor. The primary develops a compute fault; the backup detects it by
// passive observation and the head fails the task over.
//
// It showcases the declarative experiment API: the cell is built from
// functional options, the fault is a FaultPlan applied as data, and all
// observability rides the typed event bus.
package main

import (
	"fmt"
	"log"
	"time"

	"evm"
)

const (
	sensorNode evm.NodeID = 1
	primary    evm.NodeID = 2
	backup     evm.NodeID = 3
	headNode   evm.NodeID = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cell, err := evm.NewCellWith(evm.CellConfig{Seed: 7},
		evm.WithNodes(sensorNode, primary, backup, headNode),
		evm.WithPlacement(evm.Line(3)),
		evm.WithPER(0))
	if err != nil {
		return err
	}

	vc := evm.VCConfig{
		Name:    "quickstart",
		Head:    headNode,
		Gateway: sensorNode,
		Tasks: []evm.TaskSpec{{
			ID:              "loop",
			SensorPort:      0,
			ActuatorPort:    1,
			Period:          250 * time.Millisecond,
			WCET:            5 * time.Millisecond,
			Candidates:      []evm.NodeID{primary, backup},
			DeviationTol:    5,
			DeviationWindow: 4,
			SilenceWindow:   8,
			MakeLogic: func() (evm.TaskLogic, error) {
				return evm.NewPIDLogic(evm.PIDParams{
					Kp: 2, Ki: 0.5,
					OutMin: 0, OutMax: 100,
					Setpoint: 50,
					CutoffHz: 0.4, RateHz: 4,
				})
			},
		}},
		DormantAfter: 5 * time.Second,
	}
	if err := cell.Deploy(vc); err != nil {
		return err
	}

	// Synthetic sensor: the measured value sits at the setpoint.
	feed, err := cell.StartSensorFeed(sensorNode, 250*time.Millisecond, func() []evm.SensorReading {
		return []evm.SensorReading{{Port: 0, Value: 50}}
	})
	if err != nil {
		return err
	}
	defer feed.Stop()

	// Observability is a typed event stream, not per-object callbacks.
	cell.Events().Subscribe(func(ev evm.Event) {
		switch e := ev.(type) {
		case evm.FaultEvent:
			fmt.Printf("[%8v] fault: %s on node %v (task %q -> %.0f)\n", e.At, e.Kind, e.Node, e.Task, e.Value)
		case evm.FailoverEvent:
			fmt.Printf("[%8v] failover: task %q moved %v -> %v\n", e.At, e.Task, e.From, e.To)
		}
	})

	// The failure timeline is declarative data: at t=10s the primary
	// starts emitting 75 instead of the correct output.
	plan := evm.FaultPlan{
		Name: "byzantine-primary",
		Steps: []evm.FaultStep{{
			At:           10 * time.Second,
			ComputeFault: &evm.ComputeFault{Node: primary, Task: "loop", Output: 75},
		}},
	}
	if err := cell.ApplyFaultPlan(plan); err != nil {
		return err
	}

	fmt.Println("running 30s: 10s steady state, then the planned fault...")
	cell.Run(30 * time.Second)

	fmt.Printf("[%8v] roles: old-primary=%v new-primary=%v\n",
		cell.Now(), cell.Node(primary).Role("loop"), cell.Node(backup).Role("loop"))
	rep := evm.EvaluateQoS(vc, cell.Nodes())
	fmt.Printf("QoS: coverage %.0f%%, %d/%d tasks redundant\n",
		rep.CoverageRatio*100, rep.Redundant, rep.Tasks)
	cell.Stop()
	return nil
}
