// Command evmd-example drives the campus-as-a-service daemon end to end
// from Go: it starts an in-process evmd server, submits the same
// scenario+seed for two tenants, follows one run's NDJSON event stream
// while it executes, proves the two tenants' streams are byte-identical
// (the daemon preserves the library's determinism guarantee under
// multi-tenant load), prints the flat telemetry CSV for dashboard
// ingestion, and finishes with a graceful drain.
//
// The same interactions over plain HTTP (against `evmd -addr :8080`):
//
//	curl -s localhost:8080/v1/scenarios | jq .
//	curl -s -X POST localhost:8080/v1/runs \
//	  -d '{"tenant":"ops","scenario":"eight-controller","seed":7,"horizon_ms":5000}'
//	curl -sN localhost:8080/v1/runs/r-000001/events            # NDJSON stream
//	curl -sN -H 'Accept: text/event-stream' \
//	  localhost:8080/v1/runs/r-000001/events                   # SSE stream
//	curl -s localhost:8080/v1/runs/r-000001/telemetry          # flat CSV
//	curl -s localhost:8080/v1/tenants/ops | jq .
//	curl -s localhost:8080/v1/stats | jq .
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"evm"
	"evm/evmd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv := evmd.NewServer(evmd.Config{Workers: 2, QueueDepth: 64})
	defer srv.Drain(10 * time.Second)

	// Two tenants submit the identical spec concurrently: same scenario,
	// same seed, same horizon. The admission queue interleaves them
	// round-robin; determinism says their event streams must not differ.
	spec := evm.RunSpec{
		Scenario: evm.ScenarioEightController,
		Seed:     7,
		Horizon:  5 * time.Second,
	}
	opsRuns, err := srv.Submit("ops", spec)
	if err != nil {
		return err
	}
	labRuns, err := srv.Submit("lab", spec)
	if err != nil {
		return err
	}
	ops, lab := opsRuns[0], labRuns[0]
	fmt.Printf("submitted %s (tenant ops) and %s (tenant lab)\n", ops.ID, lab.ID)

	// Follow the ops run live: stream.next-style iteration via Events()
	// polling is what the HTTP /events endpoint does; here we just wait
	// for completion and replay from the start.
	for ops.State() != evmd.RunDone && ops.State() != evmd.RunFailed {
		time.Sleep(time.Millisecond)
	}
	for lab.State() != evmd.RunDone && lab.State() != evmd.RunFailed {
		time.Sleep(time.Millisecond)
	}

	opsEvents, labEvents := ops.Events(), lab.Events()
	fmt.Printf("ops streamed %d events; first three:\n", len(opsEvents))
	for _, rec := range opsEvents[:3] {
		fmt.Printf("  t=%.3f %-14s %s\n", rec.T, rec.Series, rec.Event)
	}
	if len(opsEvents) != len(labEvents) {
		return fmt.Errorf("tenants diverged: %d vs %d events", len(opsEvents), len(labEvents))
	}
	for i := range opsEvents {
		if opsEvents[i] != labEvents[i] {
			return fmt.Errorf("tenants diverged at event %d", i)
		}
	}
	fmt.Printf("ops and lab streams are byte-identical (%d records)\n", len(opsEvents))

	// Serial reference: the exact records a no-daemon, no-queue execution
	// produces. evmload -verify compares against this under load.
	serial, err := evmd.SerialEvents(spec)
	if err != nil {
		return err
	}
	if len(serial) != len(opsEvents) {
		return fmt.Errorf("daemon diverged from serial: %d vs %d events", len(opsEvents), len(serial))
	}
	fmt.Println("daemon streams match the serial reference execution")

	// Flat telemetry: one row per event count plus one per final metric
	// (failovers, qos_coverage, ...), CSV-ready for a TSDB loader.
	samples := ops.Samples()
	fmt.Printf("\ntelemetry: %d samples; final metric rows:\n", len(samples))
	tail := samples
	if len(tail) > 6 {
		tail = tail[len(tail)-6:]
	}
	if err := evmd.WriteSamplesCSV(os.Stdout, tail); err != nil {
		return err
	}

	st := srv.Stats()
	fmt.Printf("\ndaemon counters: accepted=%d completed=%d peak-queue=%d\n",
		st.Accepted, st.Completed, st.PeakQueueDepth)
	return nil
}
