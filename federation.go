package evm

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"evm/internal/sim"
	"evm/internal/span"
	"evm/internal/wire"
)

// FeedSpec declares a synthetic sensor feed for one cell: Source
// broadcasts Sample() every Period, standing in for a plant gateway.
type FeedSpec struct {
	Source NodeID
	Period time.Duration
	Sample func() []SensorReading
}

// CellSpec declares one cell of a Campus: its name, topology options,
// Virtual Component and optional synthetic feed. Specs are data — a
// campus topology is a list of them.
type CellSpec struct {
	// Name identifies the cell in campus events ("cell-<i>" if empty).
	Name string
	// Config is the cell's TDMA/radio configuration. Seed is ignored:
	// campus cells draw from forks of the campus seed so the whole
	// campus reproduces from one number.
	Config CellConfig
	// Options configure membership and placement (WithNodes, WithPlacement...).
	Options []CellOption
	// VC is the cell's Virtual Component, deployed at construction.
	VC VCConfig
	// Feed, when set, starts a synthetic sensor feed on the cell.
	Feed *FeedSpec
}

// CampusConfig parameterizes a Campus.
type CampusConfig struct {
	// Seed drives every random stream of every cell and the backbone;
	// equal seeds reproduce campuses bit-for-bit.
	Seed uint64
	// Backbone configures the inter-cell network (zero value = defaults).
	Backbone BackboneConfig
	// Links declares an explicit per-link backbone topology (applied via
	// Backbone.AddLink in order). Empty keeps the implicit full mesh.
	Links []BackboneLink
	// Placement picks the destination cell when a task escalates across
	// the backbone (nil = LeastLoadedPolicy, the pre-policy behavior).
	Placement PlacementPolicy
	// Rebalance, when set, migrates foreign tasks home once their origin
	// cell recovers, via a prepare/commit handshake over the backbone.
	// Nil keeps tasks where fail-over put them; either way the
	// coordinator demotes a recovered cell's stale master as soon as its
	// radios come back, so the foreign copy stays the single master.
	Rebalance RebalancePolicy
	// CheckPeriod is the federation coordinator's scan-and-checkpoint
	// cadence (default 1 s): each tick snapshots every task's state and
	// escalates fail-over for stranded tasks.
	CheckPeriod time.Duration
	// HandshakeTimeout bounds one prepare/commit rebalance exchange
	// (default 10 x CheckPeriod): if the handshake has not committed by
	// then it aborts and the foreign master keeps the task.
	HandshakeTimeout time.Duration
	// Capsules is the campus's versioned capsule store for over-the-air
	// rollouts (nil = an empty store, created on first use).
	Capsules *CapsuleStore
	// UnsafeSkipStaleMasterDemotion disables the coordinator's
	// stale-master demotion on cell recovery, re-introducing the
	// pre-handshake dual-master bug (a recovered origin master resumes
	// actuating alongside the foreign copy when no RebalancePolicy is
	// set). It exists only as a seeded fault for validating violation
	// detection end to end — the fuzz shrinker's self-test depends on it.
	// Never set it outside tests.
	UnsafeSkipStaleMasterDemotion bool
}

// taskPlacement is the coordinator's view of one control task: where it
// runs now, its origin cell, and the latest state checkpoint used for
// cross-cell transfer.
type taskPlacement struct {
	origin int // cell index the task was declared in
	cell   int // cell index the task currently runs in
	node   NodeID
	spec   TaskSpec

	export    wire.TaskExport // latest checkpoint
	have      bool
	foreign   bool // true once migrated out of its origin cell
	migrating bool // transfer in flight on the backbone
	dest      int  // destination cell of the in-flight transfer
	// localCands are the in-cell candidates the hosting cell's head
	// adopted for a foreign task (master first), so fail-over stays
	// local to the cell.
	localCands []NodeID
	// hs is the in-flight prepare/commit rebalance handshake (nil when
	// none). Stale callbacks from an aborted handshake compare against
	// it and drop themselves.
	hs *rebalanceHandshake
}

// rebalanceHandshake tracks one prepare/commit exchange rehoming a
// foreign task: prepare ships the checkpoint host -> origin and restores
// it into an inactive home replica; commit travels origin -> host and its
// delivery retires the foreign master immediately before the home
// replica activates. Abort (lost leg, relapsed origin, or timeout)
// keeps the foreign master and discards a freshly imported home replica.
type rebalanceHandshake struct {
	// home is the origin-cell node holding the prepared replica.
	home NodeID
	// imported marks a freshly imported prepared replica (retired again
	// on abort); false when the prepare adopted state into a replica the
	// home node already had.
	imported bool
	export   wire.TaskExport
	deadline *sim.Event
	// spanID is the open rebalance-handshake trace span, closed with the
	// handshake's outcome on commit or abort (zero when tracing is off).
	spanID span.ID
}

// Campus federates N cells into one schedulable, fault-tolerant system:
// every cell keeps its own radio medium, TDMA network and Virtual
// Component, all driven by one shared simulation engine; a Backbone
// bridges the cell gateways; and the federation coordinator escalates
// fail-over across cells — when a cell exhausts local migration
// candidates (or its head dies), the task capsule is checkpointed,
// shipped over the backbone and re-deployed in a peer cell chosen by
// the campus PlacementPolicy. The hosting cell's head adopts foreign
// tasks (registering an in-cell backup candidate) so later fail-over is
// local, and a RebalancePolicy migrates tasks home when their origin
// cell recovers.
//
// All cell event streams, plus the campus-level CellOverloadEvent,
// InterCellMigrationEvent, CellRecoveredEvent, BackboneRouteEvent and
// BackboneEvent, merge into one deterministic campus event stream
// (Events): equal seeds reproduce the merged stream byte for byte.
type Campus struct {
	cfg      CampusConfig
	eng      *sim.Engine
	rng      *sim.RNG
	cells    []*Cell
	specs    []CellSpec
	byName   map[string]int
	backbone *Backbone
	busImpl  *Bus

	policy    PlacementPolicy
	rebalance RebalancePolicy

	placements map[string]*taskPlacement // key: originCell + "/" + taskID
	taskKeys   map[string]string         // task ID -> placement key
	cellDown   []bool                    // head-down state, for recovery events
	feeds      []*sim.Ticker
	ticker     *sim.Ticker

	// OTA rollout state: the versioned capsule store and the set of
	// tasks with a rollout in flight (one rollout per task at a time).
	capsules  *CapsuleStore
	otaActive map[string]bool
}

// NewCampus builds the federation: cells in spec order on one shared
// engine (each with a forked RNG and private radio medium), deployed
// VCs, synthetic feeds, the backbone, and the coordinator.
func NewCampus(cfg CampusConfig, specs ...CellSpec) (*Campus, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("evm: campus needs at least one cell")
	}
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * cfg.CheckPeriod
	}
	cfg.Backbone = cfg.Backbone.withDefaults()
	if err := cfg.Backbone.validate(); err != nil {
		return nil, err
	}
	c := &Campus{
		cfg:        cfg,
		eng:        sim.New(),
		rng:        sim.NewRNG(cfg.Seed),
		byName:     make(map[string]int, len(specs)),
		placements: make(map[string]*taskPlacement),
		taskKeys:   make(map[string]string),
		policy:     cfg.Placement,
		rebalance:  cfg.Rebalance,
		cellDown:   make([]bool, len(specs)),
		capsules:   cfg.Capsules,
		otaActive:  make(map[string]bool),
	}
	if c.policy == nil {
		c.policy = LeastLoadedPolicy{}
	}
	names := make([]string, len(specs))
	for i, cs := range specs {
		name := cs.Name
		if name == "" {
			name = fmt.Sprintf("cell-%d", i)
		}
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("evm: duplicate cell name %q", name)
		}
		c.byName[name] = i
		names[i] = name

		spec := cellSpec{placement: Line(3)}
		for _, opt := range cs.Options {
			opt(&spec)
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		cell, err := newCell(name, c.eng, c.rng.Fork(), cs.Config, spec)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		c.cells = append(c.cells, cell)
		c.specs = append(c.specs, cs)
		// Merge the cell's events into the campus stream, tagged with
		// the cell name. Cells share one engine, so the merged order is
		// the global virtual-time order and fully deterministic.
		cellName := name
		cell.Events().Subscribe(func(ev Event) {
			//evm:allow-eventorder synchronous bus-to-bus bridge: cells share one engine, campus subscribers never publish back into a cell bus, so delivery cannot re-enter or reorder
			c.bus().publish(CellEvent{Cell: cellName, Inner: ev})
		})
		if err := cell.Deploy(cs.VC); err != nil {
			c.Stop()
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		if f := cs.Feed; f != nil {
			tk, err := cell.StartSensorFeed(f.Source, f.Period, f.Sample)
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("evm: cell %s feed: %w", name, err)
			}
			c.feeds = append(c.feeds, tk)
		}
		for _, t := range cs.VC.Tasks {
			// Task IDs must be campus-unique: a cell cannot host a
			// foreign replica of a task ID its own head arbitrates.
			if _, dup := c.taskKeys[t.ID]; dup {
				c.Stop()
				return nil, fmt.Errorf("evm: task %q declared in more than one cell", t.ID)
			}
			key := name + "/" + t.ID
			c.placements[key] = &taskPlacement{
				origin: i, cell: i, node: t.Candidates[0], spec: t,
			}
			c.taskKeys[t.ID] = key
		}
	}
	c.backbone = newBackbone(c.eng, c.rng.Fork(), cfg.Backbone, names, c.bus())
	for _, l := range cfg.Links {
		if err := c.backbone.AddLink(l.A, l.B, l.Config); err != nil {
			c.Stop()
			return nil, err
		}
	}
	// Track local fail-overs so checkpoints follow the task to its new
	// master (adopted foreign tasks are arbitrated by the hosting cell's
	// head, so any placement currently in the event's cell moves here),
	// and demote stale origin masters the moment a radio recovers in a
	// cell whose tasks are hosted elsewhere — waiting for the next
	// coordinator tick would let the stale master actuate alongside the
	// foreign copy for up to a full CheckPeriod.
	c.bus().Subscribe(func(ev Event) {
		ce, ok := ev.(CellEvent)
		if !ok {
			return
		}
		idx, ok := c.byName[ce.Cell]
		if !ok {
			return
		}
		switch inner := ce.Inner.(type) {
		case FailoverEvent:
			key, ok := c.taskKeys[inner.Task]
			if !ok {
				return
			}
			if p := c.placements[key]; p.cell == idx {
				p.node = inner.To
			}
		case FaultEvent:
			if inner.Kind == FaultRecover {
				c.demoteStaleMasters(idx)
			}
		}
	})
	c.ticker = c.eng.Every(cfg.CheckPeriod, c.tick)
	return c, nil
}

// bus lazily creates the campus event bus (needed before the struct is
// fully built, during per-cell subscription wiring).
func (c *Campus) bus() *Bus {
	if c.busImpl == nil {
		c.busImpl = &Bus{}
	}
	return c.busImpl
}

// Events returns the merged campus event stream: every cell's events
// wrapped in CellEvent plus the federation-level events.
func (c *Campus) Events() *Bus { return c.bus() }

// Backbone returns the inter-cell network.
func (c *Campus) Backbone() *Backbone { return c.backbone }

// PlacementPolicy returns the campus placement policy.
func (c *Campus) PlacementPolicy() PlacementPolicy { return c.policy }

// Engine returns the shared virtual-time engine.
func (c *Campus) Engine() *sim.Engine { return c.eng }

// Cells returns the campus cells in declaration order.
func (c *Campus) Cells() []*Cell { return append([]*Cell(nil), c.cells...) }

// Cell returns the cell with the given name, or nil.
func (c *Campus) Cell(name string) *Cell {
	if i, ok := c.byName[name]; ok {
		return c.cells[i]
	}
	return nil
}

// Now returns the current virtual time.
func (c *Campus) Now() time.Duration { return c.eng.Now() }

// Run advances the whole campus by d on the shared engine.
func (c *Campus) Run(d time.Duration) {
	_ = c.eng.RunUntil(c.eng.Now() + d)
}

// Stop halts the coordinator, every feed and every cell.
func (c *Campus) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	for _, f := range c.feeds {
		f.Stop()
	}
	for _, cell := range c.cells {
		cell.Stop()
	}
}

// ApplyFaultPlan applies a fault plan to the named cell ("" = the first
// cell). The plan's cell-level events appear on the campus stream tagged
// with the cell name. Steps with LinkDown/LinkUp actions target the
// federation backbone instead of the cell: the named link is severed or
// restored at the step's offset (publishing BackboneLinkEvent), routes
// recompute, and frames in flight on a severed link drop.
func (c *Campus) ApplyFaultPlan(cell string, p FaultPlan) error {
	idx := 0
	if cell != "" {
		i, ok := c.byName[cell]
		if !ok {
			return fmt.Errorf("evm: unknown cell %q", cell)
		}
		idx = i
	}
	cellPlan := FaultPlan{Name: p.Name}
	var linkSteps []FaultStep
	for i, st := range p.Steps {
		if st.linkActions() {
			if st.At < 0 {
				return fmt.Errorf("evm: fault step %d at negative offset %v", i, st.At)
			}
			for _, l := range []*LinkRef{st.LinkDown, st.LinkUp} {
				if l == nil {
					continue
				}
				ai, ci, err := c.backbone.resolveLink(l.A, l.B)
				if err != nil {
					return fmt.Errorf("evm: fault step %d: %w", i, err)
				}
				// The topology is fixed after NewCampus, so a link absent
				// now will be absent at fire time too — reject instead of
				// silently no-opping the sever.
				if !c.backbone.hasLink(ai, ci) {
					return fmt.Errorf("evm: fault step %d targets nonexistent backbone link %s-%s", i, l.A, l.B)
				}
			}
			linkSteps = append(linkSteps, st)
			// A combined step keeps its cell-level actions on the cell.
			st.LinkDown, st.LinkUp = nil, nil
		}
		if st.cellActions() {
			cellPlan.Steps = append(cellPlan.Steps, st)
		}
	}
	if len(cellPlan.Steps) > 0 {
		if err := c.cells[idx].ApplyFaultPlan(cellPlan); err != nil {
			return err
		}
	}
	for _, st := range linkSteps {
		step := st
		c.eng.After(step.At, func() { c.runLinkStep(step) })
	}
	return nil
}

// runLinkStep executes the backbone actions of one campus fault step.
// Severing an already-severed link (or restoring a live one) is a no-op,
// so overlapping plans compose.
func (c *Campus) runLinkStep(st FaultStep) {
	if l := st.LinkDown; l != nil {
		_ = c.backbone.SetLinkDown(l.A, l.B)
	}
	if l := st.LinkUp; l != nil {
		_ = c.backbone.SetLinkUp(l.A, l.B)
	}
}

// TaskPlacement reports where a control task currently runs.
type TaskPlacement struct {
	Cell    string
	Node    NodeID
	Foreign bool // true once the task migrated out of its origin cell
}

// TaskPlacements returns the coordinator's current placement of every
// task, keyed "<origin-cell>/<task-id>".
func (c *Campus) TaskPlacements() map[string]TaskPlacement {
	out := make(map[string]TaskPlacement, len(c.placements))
	//evm:allow-maporder keyed map copy: each entry is written independently and cellName is a pure index lookup, so visit order cannot be observed
	for key, p := range c.placements {
		out[key] = TaskPlacement{Cell: c.cellName(p.cell), Node: p.node, Foreign: p.foreign}
	}
	return out
}

func (c *Campus) cellName(i int) string { return c.cells[i].Name() }

// sortedPlacementKeys returns placement keys in stable order; every
// coordinator iteration uses it so runs reproduce byte-for-byte.
func (c *Campus) sortedPlacementKeys() []string {
	keys := make([]string, 0, len(c.placements))
	for k := range c.placements {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// nodeFailed reports whether a node's radio is gone or crashed.
func (c *Campus) nodeFailed(cell int, id NodeID) bool {
	r := c.cells[cell].med.Radio(id)
	return r == nil || r.Failed()
}

// headDown reports whether a cell's configured head is unreachable.
func (c *Campus) headDown(cell int) bool {
	return c.nodeFailed(cell, c.specs[cell].VC.Head)
}

// tick is the coordinator heartbeat: detect cell recoveries, checkpoint
// every task's state, escalate fail-over for stranded tasks — tasks
// whose current node is dead while the hosting cell has no usable local
// candidate (or no live head to arbitrate one) — and offer foreign
// tasks of healthy origin cells to the rebalance policy.
func (c *Campus) tick() {
	c.detectRecoveries()
	type stranded struct {
		key    string
		p      *taskPlacement
		reason string
	}
	var found []stranded
	for _, key := range c.sortedPlacementKeys() {
		p := c.placements[key]
		if p.migrating {
			continue
		}
		cell := c.cells[p.cell]
		if !c.nodeFailed(p.cell, p.node) {
			if n := cell.nodes[p.node]; n != nil && n.HasReplica(p.spec.ID) {
				if ex, err := n.ExportTask(p.spec.ID); err == nil {
					p.export, p.have = ex, true
				}
			}
			continue
		}
		headDown := c.headDown(p.cell)
		// A local candidate plus a live head means in-cell fail-over will
		// handle it: declared candidates for native tasks, head-adopted
		// candidates for foreign ones.
		cands := p.spec.Candidates
		if p.foreign {
			cands = p.localCands
		}
		candidateAlive := false
		for _, cand := range cands {
			if cand != p.node && !c.nodeFailed(p.cell, cand) {
				candidateAlive = true
				break
			}
		}
		if candidateAlive && !headDown {
			continue
		}
		reason := "candidates-exhausted"
		if headDown {
			reason = "head-down"
		}
		found = append(found, stranded{key: key, p: p, reason: reason})
	}
	if len(found) > 0 {
		// One overload event per affected cell, in cell order.
		byCell := make(map[int][]string)
		for _, s := range found {
			byCell[s.p.cell] = append(byCell[s.p.cell], s.p.spec.ID)
		}
		cellIdxs := make([]int, 0, len(byCell))
		for i := range byCell {
			cellIdxs = append(cellIdxs, i)
		}
		sort.Ints(cellIdxs)
		for _, i := range cellIdxs {
			reason := "candidates-exhausted"
			if c.headDown(i) {
				reason = "head-down"
			}
			sort.Strings(byCell[i])
			c.bus().publish(CellOverloadEvent{
				At: c.eng.Now(), Cell: c.cellName(i), Reason: reason, Tasks: byCell[i],
			})
		}
		for _, s := range found {
			c.escalate(s.key, s.p)
		}
	}
	c.rebalanceTick()
}

// detectRecoveries publishes CellRecoveredEvent on a cell's head-down ->
// head-up transition and demotes the cell's stale masters — even with a
// nil RebalancePolicy, so a recovered cell can never run a second master
// for a task that failed over to a peer.
func (c *Campus) detectRecoveries() {
	for i := range c.cells {
		down := c.headDown(i)
		if down == c.cellDown[i] {
			continue
		}
		if !down {
			c.bus().publish(CellRecoveredEvent{At: c.eng.Now(), Cell: c.cellName(i)})
			c.demoteStaleMasters(i)
		}
		c.cellDown[i] = down
	}
}

// demoteStaleMasters retires the origin-cell mastership of every task
// currently hosted in a peer cell: after an outage the pre-outage master
// still holds an Active replica and would resume actuating alongside the
// foreign copy (a permanent split-brain when no RebalancePolicy is
// configured). Called on every radio recovery in the cell and again on
// CellRecoveredEvent; RetireMaster no-ops once the mastership is gone.
func (c *Campus) demoteStaleMasters(origin int) {
	if c.cfg.UnsafeSkipStaleMasterDemotion {
		return
	}
	if c.headDown(origin) {
		return
	}
	hn := c.cells[origin].nodes[c.specs[origin].VC.Head]
	if hn == nil || hn.Head() == nil {
		return
	}
	for _, key := range c.sortedPlacementKeys() {
		p := c.placements[key]
		if p.origin != origin || !p.foreign {
			continue
		}
		hn.Head().RetireMaster(p.spec.ID)
	}
}

// loads returns per-cell placement counts and utilization sums. Counts
// attribute an in-flight transfer to both endpoints (the legacy
// least-loaded accounting); utilization attributes it to the
// destination only, matching how DisplacedTask records it so capacity
// arithmetic stays consistent.
func (c *Campus) loads() (count []int, util []float64) {
	count = make([]int, len(c.cells))
	util = make([]float64, len(c.cells))
	// Sorted placement order: the per-cell utilization sums are float
	// accumulations, and placement policies compare them — a map-order
	// sum could flip a policy tie between same-seed runs.
	for _, key := range sim.SortedKeys(c.placements) {
		q := c.placements[key]
		u := q.spec.RTOSTask().Utilization()
		count[q.cell]++
		if q.migrating {
			count[q.dest]++
			util[q.dest] += u
		} else {
			util[q.cell] += u
		}
	}
	return count, util
}

// cellCondition snapshots one cell for a policy request. from is the
// cell the task currently occupies (hop distances are measured from it).
func (c *Campus) cellCondition(i, from, origin int, taskID string, count []int, util []float64) CellCondition {
	capacity := 0.0
	var nodes []NodeLoad
	head := c.specs[i].VC.Head
	for _, id := range c.cells[i].ids {
		n := c.cells[i].nodes[id]
		if n == nil || c.nodeFailed(i, id) {
			continue
		}
		capacity++
		nodes = append(nodes, NodeLoad{
			Node:     id,
			Replicas: n.ReplicaCount(),
			Eligible: !n.HasReplica(taskID),
			Head:     id == head,
		})
	}
	return CellCondition{
		Nodes:         nodes,
		Index:         i,
		Name:          c.cellName(i),
		Placed:        count[i],
		EligibleHosts: len(c.destNodes(i, taskID)),
		Utilization:   util[i],
		Capacity:      capacity,
		Hops:          c.backbone.Hops(from, i),
		Origin:        i == origin,
	}
}

// placementRequest assembles the policy view for one stranded task.
func (c *Campus) placementRequest(key string, p *taskPlacement) PlacementRequest {
	count, util := c.loads()
	req := PlacementRequest{
		Task:   p.spec,
		Key:    key,
		Origin: p.origin,
		From:   p.cell,
	}
	for i := range c.cells {
		if i == p.cell {
			continue
		}
		req.Cells = append(req.Cells, c.cellCondition(i, p.cell, p.origin, p.spec.ID, count, util))
	}
	for _, k := range c.sortedPlacementKeys() {
		q := c.placements[k]
		if k == key || (!q.foreign && !q.migrating) {
			continue
		}
		cell := q.cell
		if q.migrating {
			cell = q.dest
		}
		req.Displaced = append(req.Displaced, DisplacedTask{
			Key: k, Cell: cell, Util: q.spec.RTOSTask().Utilization(),
		})
	}
	return req
}

// escalate ships one stranded task to a peer cell over the backbone.
func (c *Campus) escalate(key string, p *taskPlacement) {
	dst, ok := c.policy.PickCell(c.placementRequest(key, p))
	if !ok {
		return // no peer can host it; retry next tick
	}
	// Re-validate the policy's pick; an invalid cell retries next tick.
	if dst < 0 || dst >= len(c.cells) || dst == p.cell ||
		c.backbone.Hops(p.cell, dst) < 0 || len(c.destNodes(dst, p.spec.ID)) == 0 {
		return
	}
	ex := p.export
	if !p.have {
		// Never checkpointed (task died before producing state): ship an
		// empty export — the peer re-instantiates from the spec catalog.
		ex = wire.TaskExport{TaskID: p.spec.ID}
	}
	payload, err := ex.Encode()
	if err != nil {
		return
	}
	p.migrating = true
	p.dest = dst
	src := p.cell
	esc := c.eng.Tracer().Open("escalation", "federation", "federation", c.eng.Now(),
		span.Arg{Key: "task", Val: p.spec.ID},
		span.Arg{Key: "from", Val: c.cellName(src)},
		span.Arg{Key: "to", Val: c.cellName(dst)})
	c.backbone.Send(src, dst, payload,
		func(b []byte) {
			c.deliver(key, p, dst, b)
			// dst != src is guaranteed above, so landing in dst means a
			// host admitted the task; anything else retries next tick.
			outcome := "no-host"
			if p.cell == dst {
				outcome = "placed"
			}
			c.eng.Tracer().Close(esc, c.eng.Now(), span.Arg{Key: "outcome", Val: outcome})
		},
		func() {
			p.migrating = false
			c.eng.Tracer().Close(esc, c.eng.Now(), span.Arg{Key: "outcome", Val: "transfer-failed"})
		})
}

// destNodes lists a cell's eligible hosts for a task — live runtimes not
// already holding a replica of it — least-loaded (fewest replicas)
// first, lowest ID on ties. The cell head sorts last: the arbiter is a
// host of last resort, so a hosting-node fault can still be resolved by
// in-cell fail-over.
func (c *Campus) destNodes(cell int, taskID string) []NodeID {
	var out []NodeID
	for _, id := range c.cells[cell].ids {
		n := c.cells[cell].nodes[id]
		if n == nil || c.nodeFailed(cell, id) {
			continue
		}
		if n.HasReplica(taskID) {
			continue
		}
		out = append(out, id)
	}
	cellNodes := c.cells[cell].nodes
	head := c.specs[cell].VC.Head
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i] == head) != (out[j] == head) {
			return out[j] == head
		}
		return cellNodes[out[i]].ReplicaCount() < cellNodes[out[j]].ReplicaCount()
	})
	return out
}

// deliver lands a task export in the destination cell: pick a host,
// attest + admit + restore via core.ImportTask, activate it, publish
// the InterCellMigrationEvent, and have the hosting cell's head adopt
// the task so subsequent fail-over is local.
func (c *Campus) deliver(key string, p *taskPlacement, dst int, payload []byte) {
	p.migrating = false
	ex, err := wire.DecodeTaskExport(payload)
	if err != nil {
		return
	}
	fromCell, fromNode := p.cell, p.node
	wasForeign, oldCands := p.foreign, p.localCands
	for _, id := range c.destNodes(dst, ex.TaskID) {
		if err := c.cells[dst].nodes[id].ImportTask(p.spec, ex, true); err != nil {
			continue // e.g. schedulability admission failed; try the next host
		}
		if wasForeign {
			// Leaving a foreign host: retire the stale copies there (the
			// dead master and any adopted backup — whose node may recover
			// later) and the old head's adoption, so the departed cell
			// can never re-promote the task into a second master.
			c.retireForeignCopies(fromCell, ex.TaskID, oldCands)
		}
		// A policy may escalate a stranded foreign task straight back to
		// its origin cell (e.g. affinity after the origin recovered):
		// that delivery is a homecoming, not a foreign placement.
		p.cell, p.node, p.foreign = dst, id, dst != p.origin
		c.bus().publish(InterCellMigrationEvent{
			At:       c.eng.Now(),
			Task:     ex.TaskID,
			FromCell: c.cellName(fromCell),
			ToCell:   c.cellName(dst),
			From:     fromNode,
			To:       id,
		})
		if p.foreign {
			c.adoptForeign(dst, p, ex)
		} else {
			p.localCands = nil
			// Realign the origin head's arbitration with the imported
			// master, or its next health bundle would demote it.
			if hn := c.cells[dst].nodes[c.specs[dst].VC.Head]; hn != nil && hn.Head() != nil && !c.headDown(dst) {
				if old, ok := hn.Head().ActiveNode(ex.TaskID); ok && old != id {
					hn.Head().Promote(ex.TaskID, id, old)
				}
			}
		}
		return
	}
	// No host could admit it; the next tick retries (possibly elsewhere).
}

// adoptForeign registers a freshly imported foreign task with the
// hosting cell's head and provisions an in-cell backup replica, so the
// next fault of the hosting node is resolved by ordinary in-cell
// fail-over instead of another backbone round-trip.
func (c *Campus) adoptForeign(dst int, p *taskPlacement, ex wire.TaskExport) {
	p.localCands = []NodeID{p.node}
	headID := c.specs[dst].VC.Head
	headNode := c.cells[dst].nodes[headID]
	if headNode == nil || headNode.Head() == nil || c.nodeFailed(dst, headID) {
		return // no live head to arbitrate; the coordinator stays in charge
	}
	if cands := c.destNodes(dst, ex.TaskID); len(cands) > 0 {
		backup := cands[0]
		spec := p.spec
		spec.Candidates = []NodeID{p.node, backup}
		if err := c.cells[dst].nodes[backup].ImportTask(spec, ex, false); err == nil {
			p.localCands = append(p.localCands, backup)
		}
	}
	adopted := p.spec
	adopted.Candidates = append([]NodeID(nil), p.localCands...)
	headNode.Head().AdoptTask(adopted, p.node)
}

// rebalanceTick offers every settled foreign task whose origin cell is
// healthy again to the rebalance policy, and ships accepted tasks home.
func (c *Campus) rebalanceTick() {
	if c.rebalance == nil {
		return
	}
	for _, key := range c.sortedPlacementKeys() {
		p := c.placements[key]
		if !p.foreign || p.migrating || !p.have {
			continue
		}
		if c.nodeFailed(p.cell, p.node) {
			continue // stranded, not settled: escalation handles it
		}
		origin := p.origin
		if c.headDown(origin) || c.backbone.Hops(p.cell, origin) < 0 {
			continue
		}
		if c.homeHost(origin, p.spec) == 0 {
			continue
		}
		count, util := c.loads()
		req := RebalanceRequest{
			Task:   p.spec,
			Key:    key,
			Origin: c.cellCondition(origin, p.cell, origin, p.spec.ID, count, util),
			Host:   c.cellCondition(p.cell, p.cell, origin, p.spec.ID, count, util),
		}
		if !c.rebalance.Rehome(req) {
			continue
		}
		c.startRebalance(key, p)
	}
}

// startRebalance opens the prepare/commit handshake for one foreign
// task: the prepare leg carries the latest checkpoint from the hosting
// cell to the recovered origin. The placement stays migrating (shielded
// from escalation and re-offers) until the handshake commits or aborts.
func (c *Campus) startRebalance(key string, p *taskPlacement) {
	exPayload, err := p.export.Encode()
	if err != nil {
		return
	}
	prep, err := (wire.RebalanceMsg{
		Phase: wire.RebalancePrepare, TaskID: p.spec.ID, Export: exPayload,
	}).Encode()
	if err != nil {
		return
	}
	hs := &rebalanceHandshake{}
	p.hs = hs
	p.migrating = true
	p.dest = p.origin
	hs.spanID = c.eng.Tracer().Open("handshake", "federation", "federation", c.eng.Now(),
		span.Arg{Key: "task", Val: p.spec.ID},
		span.Arg{Key: "host", Val: c.cellName(p.cell)},
		span.Arg{Key: "origin", Val: c.cellName(p.origin)})
	hs.deadline = c.eng.After(c.cfg.HandshakeTimeout, func() { c.abortRebalance(p, hs, "timeout") })
	leg := c.eng.Tracer().Open("prepare-leg", "federation", "federation", c.eng.Now(),
		span.Arg{Key: "task", Val: p.spec.ID})
	c.backbone.Send(p.cell, p.origin, prep,
		func(b []byte) {
			c.eng.Tracer().Close(leg, c.eng.Now(), span.Arg{Key: "outcome", Val: "delivered"})
			c.onPrepare(key, p, hs, b)
		},
		func() {
			c.eng.Tracer().Close(leg, c.eng.Now(), span.Arg{Key: "outcome", Val: "lost"})
			c.abortRebalance(p, hs, "prepare-lost")
		})
}

// onPrepare lands the prepare leg at the origin cell: restore the
// shipped checkpoint into an inactive home replica (nothing actuates
// yet) and send the commit leg back to the hosting cell. Any
// precondition lost since the handshake opened — origin head down again,
// no eligible home host, restore failure — aborts, keeping the foreign
// master.
func (c *Campus) onPrepare(key string, p *taskPlacement, hs *rebalanceHandshake, payload []byte) {
	if p.hs != hs {
		return // aborted while the prepare leg was in flight
	}
	msg, err := wire.DecodeRebalanceMsg(payload)
	if err != nil || msg.Phase != wire.RebalancePrepare {
		c.abortRebalance(p, hs, "decode")
		return
	}
	ex, err := wire.DecodeTaskExport(msg.Export)
	if err != nil {
		c.abortRebalance(p, hs, "decode")
		return
	}
	origin := p.origin
	if c.headDown(origin) {
		c.abortRebalance(p, hs, "origin-down")
		return
	}
	dst := c.homeHost(origin, p.spec)
	if dst == 0 {
		c.abortRebalance(p, hs, "no-home-host")
		return
	}
	destNode := c.cells[origin].nodes[dst]
	if destNode.HasReplica(ex.TaskID) {
		if err := destNode.AdoptState(p.spec, ex); err != nil {
			c.abortRebalance(p, hs, "restore")
			return
		}
	} else if err := destNode.ImportTask(p.spec, ex, false); err != nil {
		c.abortRebalance(p, hs, "restore")
		return
	} else {
		hs.imported = true
	}
	hs.home = dst
	hs.export = ex
	commit, err := (wire.RebalanceMsg{Phase: wire.RebalanceCommit, TaskID: p.spec.ID}).Encode()
	if err != nil {
		c.abortRebalance(p, hs, "encode")
		return
	}
	leg := c.eng.Tracer().Open("commit-leg", "federation", "federation", c.eng.Now(),
		span.Arg{Key: "task", Val: p.spec.ID})
	c.backbone.Send(origin, p.cell, commit,
		func([]byte) {
			c.eng.Tracer().Close(leg, c.eng.Now(), span.Arg{Key: "outcome", Val: "delivered"})
			c.onCommit(key, p, hs)
		},
		func() {
			c.eng.Tracer().Close(leg, c.eng.Now(), span.Arg{Key: "outcome", Val: "lost"})
			c.abortRebalance(p, hs, "commit-lost")
		})
}

// onCommit lands the commit leg at the hosting cell — the commit point:
// the foreign master and its adopted backup retire first, then the
// prepared home replica is promoted by the origin head, so no instant
// ever has two masters. If the origin relapsed while the commit leg was
// in flight the handshake aborts instead and the foreign master stays.
func (c *Campus) onCommit(key string, p *taskPlacement, hs *rebalanceHandshake) {
	if p.hs != hs {
		return
	}
	origin := p.origin
	headNode := c.cells[origin].nodes[c.specs[origin].VC.Head]
	if headNode == nil || headNode.Head() == nil || c.headDown(origin) {
		c.abortRebalance(p, hs, "origin-relapsed")
		return
	}
	host, hostNode := p.cell, p.node
	c.retireForeignCopies(host, p.spec.ID, p.localCands)
	old, _ := headNode.Head().ActiveNode(p.spec.ID)
	headNode.Head().Promote(p.spec.ID, hs.home, old)
	p.cell, p.node, p.foreign, p.localCands = origin, hs.home, false, nil
	p.export, p.have = hs.export, true
	c.eng.Tracer().Close(hs.spanID, c.eng.Now(), span.Arg{Key: "outcome", Val: "commit"})
	c.finishHandshake(p, hs)
	c.bus().publish(InterCellMigrationEvent{
		At:        c.eng.Now(),
		Task:      p.spec.ID,
		FromCell:  c.cellName(host),
		ToCell:    c.cellName(origin),
		From:      hostNode,
		To:        hs.home,
		Rebalance: true,
	})
}

// abortRebalance cancels an in-flight handshake: a freshly imported
// prepared replica is retired again (a pre-existing home replica just
// keeps its backup role), the foreign master keeps actuating, and the
// next coordinator tick may reopen the handshake. Every abort publishes
// a RebalanceAbortEvent naming its cause, so runs can count aborts
// directly instead of inferring them from backbone failures.
func (c *Campus) abortRebalance(p *taskPlacement, hs *rebalanceHandshake, reason string) {
	if p.hs != hs {
		return
	}
	if hs.imported && hs.home != 0 {
		if n := c.cells[p.origin].nodes[hs.home]; n != nil {
			_ = n.RetireTask(p.spec.ID)
		}
	}
	c.eng.Tracer().Close(hs.spanID, c.eng.Now(),
		span.Arg{Key: "outcome", Val: "abort"}, span.Arg{Key: "reason", Val: reason})
	c.finishHandshake(p, hs)
	c.bus().publish(RebalanceAbortEvent{
		At:     c.eng.Now(),
		Task:   p.spec.ID,
		Host:   c.cellName(p.cell),
		Origin: c.cellName(p.origin),
		Reason: reason,
	})
}

// finishHandshake releases the handshake's timeout and migration shield.
func (c *Campus) finishHandshake(p *taskPlacement, hs *rebalanceHandshake) {
	c.eng.Cancel(hs.deadline)
	p.hs = nil
	p.migrating = false
}

// retireForeignCopies removes a task's replicas from a cell that used
// to host it (the listed adopted candidates) and drops the cell head's
// adoption, so the departed cell can never arbitrate the task again.
func (c *Campus) retireForeignCopies(cell int, taskID string, cands []NodeID) {
	for _, id := range cands {
		if n := c.cells[cell].nodes[id]; n != nil {
			_ = n.RetireTask(taskID)
		}
	}
	if hn := c.cells[cell].nodes[c.specs[cell].VC.Head]; hn != nil && hn.Head() != nil {
		hn.Head().DropTask(taskID)
	}
}

// homeHost returns the node that should resume a rebalanced task in its
// origin cell: the first live declared candidate, else the least-loaded
// eligible host, else 0.
func (c *Campus) homeHost(origin int, spec TaskSpec) NodeID {
	for _, cand := range spec.Candidates {
		if c.cells[origin].nodes[cand] != nil && !c.nodeFailed(origin, cand) {
			return cand
		}
	}
	if nodes := c.destNodes(origin, spec.ID); len(nodes) > 0 {
		return nodes[0]
	}
	return 0
}

// KillNodesPlan returns a fault plan that crashes every listed radio at
// offset at. Unlike KillCellPlan it needs no live cell, so it also
// serves RunSpec grids built before any campus exists.
func KillNodesPlan(name string, at time.Duration, ids ...NodeID) FaultPlan {
	steps := make([]FaultStep, 0, len(ids))
	for _, id := range ids {
		steps = append(steps, FaultStep{At: at, CrashNode: id})
	}
	return FaultPlan{Name: name, Steps: steps}
}

// RecoverNodesPlan returns a fault plan that recovers every listed radio
// at offset at — the counterpart of KillNodesPlan for outage windows.
func RecoverNodesPlan(name string, at time.Duration, ids ...NodeID) FaultPlan {
	steps := make([]FaultStep, 0, len(ids))
	for _, id := range ids {
		steps = append(steps, FaultStep{At: at, RecoverNode: id})
	}
	return FaultPlan{Name: name, Steps: steps}
}

// OutageWindowPlan crashes every listed radio at from and recovers them
// at until: the whole-cell outage window that drives escalation out and
// — with a RebalancePolicy — migration back home.
func OutageWindowPlan(name string, from, until time.Duration, ids ...NodeID) FaultPlan {
	steps := make([]FaultStep, 0, 2*len(ids))
	for _, id := range ids {
		steps = append(steps, FaultStep{At: from, CrashNode: id})
	}
	for _, id := range ids {
		steps = append(steps, FaultStep{At: until, RecoverNode: id})
	}
	return FaultPlan{Name: name, Steps: steps}
}

// LinkOutagePlan severs the backbone link between two named cells at
// from and restores it at until — the link-level counterpart of
// OutageWindowPlan. Apply through Campus.ApplyFaultPlan.
func LinkOutagePlan(name string, from, until time.Duration, a, b string) FaultPlan {
	return FaultPlan{Name: name, Steps: []FaultStep{
		{At: from, LinkDown: &LinkRef{A: a, B: b}},
		{At: until, LinkUp: &LinkRef{A: a, B: b}},
	}}
}

// KillCellPlan returns a fault plan that crashes every member radio of
// the cell at offset at — the whole-cell outage that forces the
// federation coordinator to escalate fail-over across the backbone.
func KillCellPlan(at time.Duration, cell *Cell) FaultPlan {
	name := "kill-cell"
	if cell.Name() != "" {
		name = "kill-" + cell.Name()
	}
	return KillNodesPlan(name, at, cell.Members()...)
}

// --- campus events ------------------------------------------------------------

// CellEvent wraps one cell's event for the merged campus stream,
// attributing it to the cell by name.
type CellEvent struct {
	Cell  string
	Inner Event
}

// When implements Event.
func (e CellEvent) When() time.Duration { return e.Inner.When() }

// String implements Event.
func (e CellEvent) String() string {
	return fmt.Sprintf("cell=%s %s", e.Cell, e.Inner.String())
}

// CellOverloadEvent fires when the federation coordinator finds a cell
// unable to keep its tasks alive locally: every candidate of at least
// one task is dead, or the cell head is down with the task's master.
type CellOverloadEvent struct {
	At     time.Duration
	Cell   string
	Reason string // "candidates-exhausted" or "head-down"
	Tasks  []string
}

// When implements Event.
func (e CellOverloadEvent) When() time.Duration { return e.At }

// String implements Event.
func (e CellOverloadEvent) String() string {
	return fmt.Sprintf("%v cell-overload cell=%s reason=%s tasks=%s",
		e.At, e.Cell, e.Reason, strings.Join(e.Tasks, "+"))
}

// CellRecoveredEvent fires when a cell's head comes back after an
// outage — the trigger window in which the RebalancePolicy may migrate
// the cell's tasks home.
type CellRecoveredEvent struct {
	At   time.Duration
	Cell string
}

// When implements Event.
func (e CellRecoveredEvent) When() time.Duration { return e.At }

// String implements Event.
func (e CellRecoveredEvent) String() string {
	return fmt.Sprintf("%v cell-recovered cell=%s", e.At, e.Cell)
}

// InterCellMigrationEvent fires when a task capsule shipped over the
// backbone is re-deployed and activated in a peer cell. Rebalance marks
// the homeward direction: a recovered origin cell taking its task back.
type InterCellMigrationEvent struct {
	At        time.Duration
	Task      string
	FromCell  string
	ToCell    string
	From      NodeID
	To        NodeID
	Rebalance bool
}

// When implements Event.
func (e InterCellMigrationEvent) When() time.Duration { return e.At }

// String implements Event.
func (e InterCellMigrationEvent) String() string {
	kind := "intercell-migration"
	if e.Rebalance {
		kind = "intercell-rebalance"
	}
	return fmt.Sprintf("%v %s task=%s from=%s/%d to=%s/%d",
		e.At, kind, e.Task, e.FromCell, e.From, e.ToCell, e.To)
}

// RebalanceAbortEvent fires when a prepare/commit rebalance handshake
// aborts and the foreign master keeps the task: a lost leg
// ("prepare-lost"/"commit-lost"), the handshake timeout ("timeout"), a
// relapsed or unprepared origin ("origin-down"/"origin-relapsed"/
// "no-home-host"), or a failed restore ("restore"). The next coordinator
// tick may reopen the handshake.
type RebalanceAbortEvent struct {
	At     time.Duration
	Task   string
	Host   string // cell keeping the foreign master
	Origin string // recovered origin that failed to take the task back
	Reason string
}

// When implements Event.
func (e RebalanceAbortEvent) When() time.Duration { return e.At }

// String implements Event.
func (e RebalanceAbortEvent) String() string {
	return fmt.Sprintf("%v rebalance-abort task=%s host=%s origin=%s reason=%s",
		e.At, e.Task, e.Host, e.Origin, e.Reason)
}
