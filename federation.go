package evm

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"evm/internal/sim"
	"evm/internal/wire"
)

// FeedSpec declares a synthetic sensor feed for one cell: Source
// broadcasts Sample() every Period, standing in for a plant gateway.
type FeedSpec struct {
	Source NodeID
	Period time.Duration
	Sample func() []SensorReading
}

// CellSpec declares one cell of a Campus: its name, topology options,
// Virtual Component and optional synthetic feed. Specs are data — a
// campus topology is a list of them.
type CellSpec struct {
	// Name identifies the cell in campus events ("cell-<i>" if empty).
	Name string
	// Config is the cell's TDMA/radio configuration. Seed is ignored:
	// campus cells draw from forks of the campus seed so the whole
	// campus reproduces from one number.
	Config CellConfig
	// Options configure membership and placement (WithNodes, WithPlacement...).
	Options []CellOption
	// VC is the cell's Virtual Component, deployed at construction.
	VC VCConfig
	// Feed, when set, starts a synthetic sensor feed on the cell.
	Feed *FeedSpec
}

// CampusConfig parameterizes a Campus.
type CampusConfig struct {
	// Seed drives every random stream of every cell and the backbone;
	// equal seeds reproduce campuses bit-for-bit.
	Seed uint64
	// Backbone configures the inter-cell network (zero value = defaults).
	Backbone BackboneConfig
	// CheckPeriod is the federation coordinator's scan-and-checkpoint
	// cadence (default 1 s): each tick snapshots every task's state and
	// escalates fail-over for stranded tasks.
	CheckPeriod time.Duration
}

// taskPlacement is the coordinator's view of one control task: where it
// runs now, its origin cell, and the latest state checkpoint used for
// cross-cell transfer.
type taskPlacement struct {
	origin int // cell index the task was declared in
	cell   int // cell index the task currently runs in
	node   NodeID
	spec   TaskSpec

	export    wire.TaskExport // latest checkpoint
	have      bool
	foreign   bool // true once migrated out of its origin cell
	migrating bool // transfer in flight on the backbone
	dest      int  // destination cell of the in-flight transfer
}

// Campus federates N cells into one schedulable, fault-tolerant system:
// every cell keeps its own radio medium, TDMA network and Virtual
// Component, all driven by one shared simulation engine; a Backbone
// bridges the cell gateways; and the federation coordinator escalates
// fail-over across cells — when a cell exhausts local migration
// candidates (or its head dies), the task capsule is checkpointed,
// shipped over the backbone and re-deployed in a peer cell.
//
// All cell event streams, plus the campus-level CellOverloadEvent,
// InterCellMigrationEvent and BackboneEvent, merge into one
// deterministic campus event stream (Events): equal seeds reproduce the
// merged stream byte for byte.
type Campus struct {
	cfg      CampusConfig
	eng      *sim.Engine
	rng      *sim.RNG
	cells    []*Cell
	specs    []CellSpec
	byName   map[string]int
	backbone *Backbone
	busImpl  *Bus

	placements map[string]*taskPlacement // key: originCell + "/" + taskID
	feeds      []*sim.Ticker
	ticker     *sim.Ticker
}

// NewCampus builds the federation: cells in spec order on one shared
// engine (each with a forked RNG and private radio medium), deployed
// VCs, synthetic feeds, the backbone, and the coordinator.
func NewCampus(cfg CampusConfig, specs ...CellSpec) (*Campus, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("evm: campus needs at least one cell")
	}
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = time.Second
	}
	cfg.Backbone = cfg.Backbone.withDefaults()
	if err := cfg.Backbone.validate(); err != nil {
		return nil, err
	}
	c := &Campus{
		cfg:        cfg,
		eng:        sim.New(),
		rng:        sim.NewRNG(cfg.Seed),
		byName:     make(map[string]int, len(specs)),
		placements: make(map[string]*taskPlacement),
	}
	names := make([]string, len(specs))
	for i, cs := range specs {
		name := cs.Name
		if name == "" {
			name = fmt.Sprintf("cell-%d", i)
		}
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("evm: duplicate cell name %q", name)
		}
		c.byName[name] = i
		names[i] = name

		spec := cellSpec{placement: Line(3)}
		for _, opt := range cs.Options {
			opt(&spec)
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		cell, err := newCell(name, c.eng, c.rng.Fork(), cs.Config, spec)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		c.cells = append(c.cells, cell)
		c.specs = append(c.specs, cs)
		// Merge the cell's events into the campus stream, tagged with
		// the cell name. Cells share one engine, so the merged order is
		// the global virtual-time order and fully deterministic.
		cellName := name
		cell.Events().Subscribe(func(ev Event) {
			c.bus().publish(CellEvent{Cell: cellName, Inner: ev})
		})
		if err := cell.Deploy(cs.VC); err != nil {
			c.Stop()
			return nil, fmt.Errorf("evm: cell %s: %w", name, err)
		}
		if f := cs.Feed; f != nil {
			tk, err := cell.StartSensorFeed(f.Source, f.Period, f.Sample)
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("evm: cell %s feed: %w", name, err)
			}
			c.feeds = append(c.feeds, tk)
		}
		for _, t := range cs.VC.Tasks {
			// Task IDs must be campus-unique: a cell cannot host a
			// foreign replica of a task ID its own head arbitrates.
			for _, other := range c.placements {
				if other.spec.ID == t.ID {
					c.Stop()
					return nil, fmt.Errorf("evm: task %q declared in more than one cell", t.ID)
				}
			}
			c.placements[name+"/"+t.ID] = &taskPlacement{
				origin: i, cell: i, node: t.Candidates[0], spec: t,
			}
		}
	}
	c.backbone = newBackbone(c.eng, c.rng.Fork(), cfg.Backbone, names, c.bus())
	// Track local fail-overs so checkpoints follow the task to its new
	// master. Foreign tasks are never arbitrated by the hosting cell's
	// head, so only native placements move here.
	c.bus().Subscribe(func(ev Event) {
		ce, ok := ev.(CellEvent)
		if !ok {
			return
		}
		fo, ok := ce.Inner.(FailoverEvent)
		if !ok {
			return
		}
		idx := c.byName[ce.Cell]
		if p, ok := c.placements[ce.Cell+"/"+fo.Task]; ok && !p.foreign && p.cell == idx {
			p.node = fo.To
		}
	})
	c.ticker = c.eng.Every(cfg.CheckPeriod, c.tick)
	return c, nil
}

// bus lazily creates the campus event bus (needed before the struct is
// fully built, during per-cell subscription wiring).
func (c *Campus) bus() *Bus {
	if c.busImpl == nil {
		c.busImpl = &Bus{}
	}
	return c.busImpl
}

// Events returns the merged campus event stream: every cell's events
// wrapped in CellEvent plus the federation-level events.
func (c *Campus) Events() *Bus { return c.bus() }

// Backbone returns the inter-cell network.
func (c *Campus) Backbone() *Backbone { return c.backbone }

// Engine returns the shared virtual-time engine.
func (c *Campus) Engine() *sim.Engine { return c.eng }

// Cells returns the campus cells in declaration order.
func (c *Campus) Cells() []*Cell { return append([]*Cell(nil), c.cells...) }

// Cell returns the cell with the given name, or nil.
func (c *Campus) Cell(name string) *Cell {
	if i, ok := c.byName[name]; ok {
		return c.cells[i]
	}
	return nil
}

// Now returns the current virtual time.
func (c *Campus) Now() time.Duration { return c.eng.Now() }

// Run advances the whole campus by d on the shared engine.
func (c *Campus) Run(d time.Duration) {
	_ = c.eng.RunUntil(c.eng.Now() + d)
}

// Stop halts the coordinator, every feed and every cell.
func (c *Campus) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	for _, f := range c.feeds {
		f.Stop()
	}
	for _, cell := range c.cells {
		cell.Stop()
	}
}

// ApplyFaultPlan applies a fault plan to the named cell ("" = the first
// cell). The plan's events appear on the campus stream tagged with the
// cell name.
func (c *Campus) ApplyFaultPlan(cell string, p FaultPlan) error {
	idx := 0
	if cell != "" {
		i, ok := c.byName[cell]
		if !ok {
			return fmt.Errorf("evm: unknown cell %q", cell)
		}
		idx = i
	}
	return c.cells[idx].ApplyFaultPlan(p)
}

// TaskPlacement reports where a control task currently runs.
type TaskPlacement struct {
	Cell    string
	Node    NodeID
	Foreign bool // true once the task migrated out of its origin cell
}

// TaskPlacements returns the coordinator's current placement of every
// task, keyed "<origin-cell>/<task-id>".
func (c *Campus) TaskPlacements() map[string]TaskPlacement {
	out := make(map[string]TaskPlacement, len(c.placements))
	for key, p := range c.placements {
		out[key] = TaskPlacement{Cell: c.cellName(p.cell), Node: p.node, Foreign: p.foreign}
	}
	return out
}

func (c *Campus) cellName(i int) string { return c.cells[i].Name() }

// sortedPlacementKeys returns placement keys in stable order; every
// coordinator iteration uses it so runs reproduce byte-for-byte.
func (c *Campus) sortedPlacementKeys() []string {
	keys := make([]string, 0, len(c.placements))
	for k := range c.placements {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// nodeFailed reports whether a node's radio is gone or crashed.
func (c *Campus) nodeFailed(cell int, id NodeID) bool {
	r := c.cells[cell].med.Radio(id)
	return r == nil || r.Failed()
}

// tick is the coordinator heartbeat: checkpoint every task's state, then
// escalate fail-over for stranded tasks — tasks whose current node is
// dead while the hosting cell has no usable local candidate (or no live
// head to arbitrate one).
func (c *Campus) tick() {
	type stranded struct {
		key    string
		p      *taskPlacement
		reason string
	}
	var found []stranded
	for _, key := range c.sortedPlacementKeys() {
		p := c.placements[key]
		if p.migrating {
			continue
		}
		cell := c.cells[p.cell]
		if !c.nodeFailed(p.cell, p.node) {
			if n := cell.nodes[p.node]; n != nil && n.HasReplica(p.spec.ID) {
				if ex, err := n.ExportTask(p.spec.ID); err == nil {
					p.export, p.have = ex, true
				}
			}
			continue
		}
		headDown := c.nodeFailed(p.cell, c.specs[p.cell].VC.Head)
		if !p.foreign {
			candidateAlive := false
			for _, cand := range p.spec.Candidates {
				if cand != p.node && !c.nodeFailed(p.cell, cand) {
					candidateAlive = true
					break
				}
			}
			if candidateAlive && !headDown {
				continue // in-cell fail-over will handle it
			}
		}
		reason := "candidates-exhausted"
		if headDown {
			reason = "head-down"
		}
		found = append(found, stranded{key: key, p: p, reason: reason})
	}
	if len(found) == 0 {
		return
	}
	// One overload event per affected cell, in cell order.
	byCell := make(map[int][]string)
	for _, s := range found {
		byCell[s.p.cell] = append(byCell[s.p.cell], s.p.spec.ID)
	}
	cellIdxs := make([]int, 0, len(byCell))
	for i := range byCell {
		cellIdxs = append(cellIdxs, i)
	}
	sort.Ints(cellIdxs)
	for _, i := range cellIdxs {
		reason := "candidates-exhausted"
		if c.nodeFailed(i, c.specs[i].VC.Head) {
			reason = "head-down"
		}
		sort.Strings(byCell[i])
		c.bus().publish(CellOverloadEvent{
			At: c.eng.Now(), Cell: c.cellName(i), Reason: reason, Tasks: byCell[i],
		})
	}
	for _, s := range found {
		c.escalate(s.key, s.p)
	}
}

// escalate ships one stranded task to a peer cell over the backbone.
func (c *Campus) escalate(key string, p *taskPlacement) {
	dst, ok := c.pickDestCell(p)
	if !ok {
		return // no peer can host it; retry next tick
	}
	ex := p.export
	if !p.have {
		// Never checkpointed (task died before producing state): ship an
		// empty export — the peer re-instantiates from the spec catalog.
		ex = wire.TaskExport{TaskID: p.spec.ID}
	}
	payload, err := ex.Encode()
	if err != nil {
		return
	}
	p.migrating = true
	p.dest = dst
	src := p.cell
	c.backbone.Send(src, dst, payload,
		func(b []byte) { c.deliver(key, p, dst, b) },
		func() { p.migrating = false })
}

// pickDestCell selects the peer cell to host a stranded task: the live
// cell (at least one node able to take the task) carrying the fewest
// tasks — counting transfers already in flight toward it — lowest index
// on ties. A deterministic least-loaded policy.
func (c *Campus) pickDestCell(p *taskPlacement) (int, bool) {
	load := make([]int, len(c.cells))
	for _, q := range c.placements {
		load[q.cell]++
		if q.migrating {
			load[q.dest]++
		}
	}
	best, bestLoad, found := 0, 0, false
	for i := range c.cells {
		if i == p.cell {
			continue
		}
		if len(c.destNodes(i, p.spec.ID)) == 0 {
			continue
		}
		if !found || load[i] < bestLoad {
			best, bestLoad, found = i, load[i], true
		}
	}
	return best, found
}

// destNodes lists a cell's eligible hosts for a task — live runtimes not
// already holding a replica of it — least-loaded (fewest replicas)
// first, lowest ID on ties.
func (c *Campus) destNodes(cell int, taskID string) []NodeID {
	var out []NodeID
	for _, id := range c.cells[cell].ids {
		n := c.cells[cell].nodes[id]
		if n == nil || c.nodeFailed(cell, id) {
			continue
		}
		if n.HasReplica(taskID) {
			continue
		}
		out = append(out, id)
	}
	cellNodes := c.cells[cell].nodes
	sort.SliceStable(out, func(i, j int) bool {
		return cellNodes[out[i]].ReplicaCount() < cellNodes[out[j]].ReplicaCount()
	})
	return out
}

// deliver lands a task export in the destination cell: pick a host,
// attest + admit + restore via core.ImportTask, activate it, and publish
// the InterCellMigrationEvent.
func (c *Campus) deliver(key string, p *taskPlacement, dst int, payload []byte) {
	p.migrating = false
	ex, err := wire.DecodeTaskExport(payload)
	if err != nil {
		return
	}
	fromCell, fromNode := p.cell, p.node
	for _, id := range c.destNodes(dst, ex.TaskID) {
		if err := c.cells[dst].nodes[id].ImportTask(p.spec, ex, true); err != nil {
			continue // e.g. schedulability admission failed; try the next host
		}
		p.cell, p.node, p.foreign = dst, id, true
		c.bus().publish(InterCellMigrationEvent{
			At:       c.eng.Now(),
			Task:     ex.TaskID,
			FromCell: c.cellName(fromCell),
			ToCell:   c.cellName(dst),
			From:     fromNode,
			To:       id,
		})
		return
	}
	// No host could admit it; the next tick retries (possibly elsewhere).
}

// KillNodesPlan returns a fault plan that crashes every listed radio at
// offset at. Unlike KillCellPlan it needs no live cell, so it also
// serves RunSpec grids built before any campus exists.
func KillNodesPlan(name string, at time.Duration, ids ...NodeID) FaultPlan {
	steps := make([]FaultStep, 0, len(ids))
	for _, id := range ids {
		steps = append(steps, FaultStep{At: at, CrashNode: id})
	}
	return FaultPlan{Name: name, Steps: steps}
}

// KillCellPlan returns a fault plan that crashes every member radio of
// the cell at offset at — the whole-cell outage that forces the
// federation coordinator to escalate fail-over across the backbone.
func KillCellPlan(at time.Duration, cell *Cell) FaultPlan {
	name := "kill-cell"
	if cell.Name() != "" {
		name = "kill-" + cell.Name()
	}
	return KillNodesPlan(name, at, cell.Members()...)
}

// --- campus events ------------------------------------------------------------

// CellEvent wraps one cell's event for the merged campus stream,
// attributing it to the cell by name.
type CellEvent struct {
	Cell  string
	Inner Event
}

// When implements Event.
func (e CellEvent) When() time.Duration { return e.Inner.When() }

// String implements Event.
func (e CellEvent) String() string {
	return fmt.Sprintf("cell=%s %s", e.Cell, e.Inner.String())
}

// CellOverloadEvent fires when the federation coordinator finds a cell
// unable to keep its tasks alive locally: every candidate of at least
// one task is dead, or the cell head is down with the task's master.
type CellOverloadEvent struct {
	At     time.Duration
	Cell   string
	Reason string // "candidates-exhausted" or "head-down"
	Tasks  []string
}

// When implements Event.
func (e CellOverloadEvent) When() time.Duration { return e.At }

// String implements Event.
func (e CellOverloadEvent) String() string {
	return fmt.Sprintf("%v cell-overload cell=%s reason=%s tasks=%s",
		e.At, e.Cell, e.Reason, strings.Join(e.Tasks, "+"))
}

// InterCellMigrationEvent fires when a task capsule shipped over the
// backbone is re-deployed and activated in a peer cell.
type InterCellMigrationEvent struct {
	At       time.Duration
	Task     string
	FromCell string
	ToCell   string
	From     NodeID
	To       NodeID
}

// When implements Event.
func (e InterCellMigrationEvent) When() time.Duration { return e.At }

// String implements Event.
func (e InterCellMigrationEvent) String() string {
	return fmt.Sprintf("%v intercell-migration task=%s from=%s/%d to=%s/%d",
		e.At, e.Task, e.FromCell, e.From, e.ToCell, e.To)
}
