package evm

import (
	"reflect"
	"testing"
	"time"
)

// crashNode2 works across the built-in scenarios: node 2 is Ctrl-A in the
// gas plant, the first primary in the eight-controller cell, and ctrl1 in
// the capacity scenario.
func crashNode2() FaultPlan {
	return FaultPlan{
		Name:  "crash-2",
		Steps: []FaultStep{{At: 10 * time.Second, CrashNode: 2}},
	}
}

func TestSpecGridCrossProduct(t *testing.T) {
	specs := SpecGrid(
		[]string{ScenarioGasPlant, ScenarioCapacity},
		[]uint64{1, 2, 3},
		[]FaultPlan{{}, crashNode2()},
		30*time.Second)
	if len(specs) != 12 {
		t.Fatalf("grid size = %d, want 2x3x2 = 12", len(specs))
	}
	// No plans means one fault-free run per pair.
	specs = SpecGrid([]string{ScenarioCapacity}, []uint64{1, 2}, nil, 0)
	if len(specs) != 2 {
		t.Fatalf("plan-free grid size = %d, want 2", len(specs))
	}
	for _, s := range specs {
		if len(s.Faults.Steps) != 0 {
			t.Fatalf("plan-free grid spec %s carries fault steps", s.Label())
		}
	}
}

// TestRunnerParallelMatchesSerial is the multi-core guarantee: a 16-run
// scenario x seed x fault-plan grid produces identical per-run metrics
// whether executed on one worker or many.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	specs := SpecGrid(
		[]string{ScenarioEightController, ScenarioCapacity},
		[]uint64{1, 2, 3, 4},
		[]FaultPlan{{}, crashNode2()},
		30*time.Second)
	if len(specs) < 16 {
		t.Fatalf("grid has %d runs, want >= 16", len(specs))
	}
	serial := (&Runner{Workers: 1}).Run(specs)
	parallel := (&Runner{Workers: 8}).Run(specs)
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range specs {
		if serial[i].Err != nil {
			t.Fatalf("%s: serial run failed: %v", specs[i].Label(), serial[i].Err)
		}
		if parallel[i].Err != nil {
			t.Fatalf("%s: parallel run failed: %v", specs[i].Label(), parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Fatalf("%s: metrics diverge between serial and parallel:\n  serial:   %v\n  parallel: %v",
				specs[i].Label(), serial[i].Metrics, parallel[i].Metrics)
		}
	}
}

func TestRunnerAggregatesFailoverMetrics(t *testing.T) {
	specs := SpecGrid(
		[]string{ScenarioEightController},
		[]uint64{1, 2},
		[]FaultPlan{crashNode2()},
		30*time.Second)
	results := (&Runner{Workers: 4}).Run(specs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Label(), r.Err)
		}
		if r.Metrics[MetricFailovers] < 1 {
			t.Fatalf("%s: no failover recorded after crashing the primary", r.Spec.Label())
		}
		first, ok := r.Metrics[MetricFirstFailoverS]
		if !ok || first <= 10 {
			t.Fatalf("%s: first failover at %.2fs, want after the 10s crash", r.Spec.Label(), first)
		}
	}
	agg := Aggregate(results)
	sum, ok := agg[ScenarioEightController]
	if !ok {
		t.Fatal("aggregate missing the scenario")
	}
	if fo := sum[MetricFailovers]; fo.N != len(specs) || fo.Min < 1 {
		t.Fatalf("aggregate failovers = %+v", fo)
	}
	// Coverage survives the crash thanks to the backup.
	if cov := sum["coverage"]; cov.Min != 1 {
		t.Fatalf("coverage dropped below 1: %+v", cov)
	}
}

func TestRunnerUnknownScenario(t *testing.T) {
	results := (&Runner{}).Run([]RunSpec{{Scenario: "no-such-thing", Seed: 1}})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	if err := RegisterScenario(ScenarioGasPlant, func(RunSpec) (*Experiment, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterScenario("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	found := false
	for _, name := range Scenarios() {
		if name == ScenarioGasPlant {
			found = true
		}
	}
	if !found {
		t.Fatalf("built-in scenario missing from %v", Scenarios())
	}
}
